// Dumps the generated operation policy (the OPEC-Compiler artifact) for every
// bundled application — the equivalent of inspecting the policy files the
// original toolchain emits.
//
//   $ ./build/examples/policy_explorer [AppName]

#include <cstdio>
#include <cstring>

#include "src/apps/all_apps.h"
#include "src/apps/runner.h"

int main(int argc, char** argv) {
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    if (argc > 1 && factory.name != argv[1]) {
      continue;
    }
    std::unique_ptr<opec_apps::Application> app = factory.make();
    opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
    std::printf("################ %s ################\n%s\n", factory.name.c_str(),
                run.compile()->policy.ToText().c_str());
  }
  return 0;
}
