// The Section 6.1 case study, end to end: the same KEY-overwrite exploit is
// launched against (a) the vanilla PinLock binary, where it silently corrupts
// the lock, and (b) the OPEC-protected binary, where the MPU contains it.
//
//   $ ./build/examples/pinlock_attack

#include <cstdio>

#include "src/apps/pinlock.h"
#include "src/apps/runner.h"

using opec_apps::AppRun;
using opec_apps::BuildMode;
using opec_apps::PinLockApp;
using opec_apps::PinLockDevices;

int main() {
  PinLockApp app(3);

  std::printf("=== PinLock case study (Section 6.1) ===\n");
  std::printf("The HAL receive routine is 'buggy'; the attacker gets an arbitrary\n"
              "write while Lock_Task runs, and targets the unlock KEY.\n\n");

  // --- (a) vanilla: no isolation ---
  {
    AppRun run(app, BuildMode::kVanilla);
    uint32_t key_addr =
        run.engine().layout().AddrOf(run.module().FindGlobal("KEY"));
    opec_rt::AttackSpec attack;
    attack.function = "HAL_UART_Receive_IT";
    attack.occurrence = 2;  // the Lock_Task invocation
    attack.addr = key_addr;
    attack.value = 0xDEADBEEF;
    run.AddAttack(attack);
    opec_rt::RunResult r = run.Execute();
    auto& devices = static_cast<PinLockDevices&>(run.devices());
    std::printf("[vanilla] run ok=%d, attack blocked=%d\n", r.ok,
                run.engine().attacks()[0].blocked);
    std::printf("[vanilla] scenario check: %s\n",
                run.Check().empty() ? "PASSED (?!)" : run.Check().c_str());
    std::printf("[vanilla] UART transcript: %s\n\n", devices.uart->TxString().c_str());
  }

  // --- (b) OPEC: the KEY's public copy is monitor-owned and Lock_Task's
  //         operation data section has no KEY shadow ---
  {
    AppRun run(app, BuildMode::kOpec);
    const opec_compiler::Policy& policy = run.compile()->policy;
    int key_index = policy.FindExternalIndex(run.module().FindGlobal("KEY"));
    opec_rt::AttackSpec attack;
    attack.function = "HAL_UART_Receive_IT";
    attack.occurrence = 2;
    attack.addr = policy.externals[static_cast<size_t>(key_index)].public_addr;
    attack.value = 0xDEADBEEF;
    run.AddAttack(attack);
    opec_rt::RunResult r = run.Execute();
    auto& devices = static_cast<PinLockDevices&>(run.devices());
    std::printf("[OPEC]    run ok=%d, attack blocked=%d\n", r.ok,
                run.engine().attacks()[0].blocked);
    std::printf("[OPEC]    scenario check: %s\n",
                run.Check().empty() ? "PASSED" : run.Check().c_str());
    std::printf("[OPEC]    UART transcript: %s\n", devices.uart->TxString().c_str());
    std::printf("[OPEC]    monitor stats: %llu switches, %llu bytes synced, "
                "%llu stack bytes relocated\n",
                static_cast<unsigned long long>(run.monitor()->stats().operation_switches),
                static_cast<unsigned long long>(run.monitor()->stats().synced_bytes),
                static_cast<unsigned long long>(run.monitor()->stats().relocated_stack_bytes));
    // The denied write left a forensic report behind: which operation and
    // function were running, and which MPU region made the deny decision.
    for (const opec_obs::FaultReport& report : run.engine().fault_reports()) {
      std::printf("\n%s", report.Render().c_str());
    }
    return r.ok && run.engine().attacks()[0].blocked && run.Check().empty() &&
                   !run.engine().fault_reports().empty()
               ? 0
               : 1;
  }
}
