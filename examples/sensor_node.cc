// A from-scratch domain application built on the public API: an industrial
// sensor node with three operations — Sample (reads an ADC-like GPIO),
// Control (drives an actuator with a sanitized speed setpoint), and Report
// (sends telemetry over UART). Demonstrates how a downstream user would adopt
// the library for their own firmware.
//
//   $ ./build/examples/sensor_node

#include <cstdio>

#include "src/compiler/opec_compiler.h"
#include "src/hw/devices/gpio.h"
#include "src/hw/devices/uart.h"
#include "src/ir/builder.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"

using opec_ir::FunctionBuilder;
using opec_ir::Val;

namespace {
constexpr uint32_t kAdcBase = opec_hw::kGpioABase;   // sensor on GPIOA.IDR
constexpr uint32_t kMotorBase = opec_hw::kGpioDBase;  // actuator on GPIOD.ODR
}  // namespace

int main() {
  opec_ir::Module m("sensor_node");
  auto& tt = m.types();
  m.AddGlobal("samples", tt.ArrayOf(tt.U32(), 8));  // shared ring
  m.AddGlobal("sample_idx", tt.U32());
  m.AddGlobal("setpoint", tt.U32());  // safety-critical: sanitized [0,100]
  m.AddGlobal("telemetry_sent", tt.U32());

  {
    auto* fn = m.AddFunction("Sample_Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    fn->set_source_file("sample.c");
    FunctionBuilder b(m, fn);
    Val raw = b.Local("raw", tt.U32());
    b.Assign(raw, b.Mmio32(kAdcBase + 0x10));  // read the sensor
    b.Assign(b.Idx(b.G("samples"), b.G("sample_idx") % b.U32(8)), raw);
    b.Assign(b.G("sample_idx"), b.G("sample_idx") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("Control_Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    fn->set_source_file("control.c");
    FunctionBuilder b(m, fn);
    // Average the ring and derive a motor setpoint, clamped to [0, 100].
    Val sum = b.Local("sum", tt.U32());
    Val i = b.Local("i", tt.U32());
    b.Assign(sum, b.U32(0));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(8));
    {
      b.Assign(sum, sum + b.Idx(b.G("samples"), i));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.G("setpoint"), (sum / b.U32(8)) % b.U32(101));
    b.Assign(b.Mmio32(kMotorBase + 0x14), b.G("setpoint"));  // drive the motor
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("Report_Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    fn->set_source_file("report.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Mmio32(opec_hw::kUsart2Base + 0x04), b.U32('S'));
    b.Assign(b.Mmio32(opec_hw::kUsart2Base + 0x04), b.G("setpoint"));
    b.Assign(b.G("telemetry_sent"), b.G("telemetry_sent") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(m, fn);
    Val round = b.Local("round", tt.U32());
    b.Assign(round, b.U32(0));
    b.While(round < b.U32(5));
    {
      b.Call("Sample_Task");
      b.Call("Control_Task");
      b.Call("Report_Task");
      b.Assign(round, round + b.U32(1));
    }
    b.End();
    b.Ret(b.G("telemetry_sent"));
    b.Finish();
  }

  opec_compiler::PartitionConfig config;
  config.entries.push_back({"Sample_Task", {}});
  config.entries.push_back({"Control_Task", {}});
  config.entries.push_back({"Report_Task", {}});
  // The robot-arm-speed rule from the paper: the actuator setpoint must stay
  // in a safe range no matter which operation gets compromised.
  config.sanitize.push_back({"setpoint", 0, 100});

  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"ADC", kAdcBase, 0x400, false});
  soc.AddPeripheral({"MOTOR", kMotorBase, 0x400, false});
  soc.AddPeripheral({"USART2", opec_hw::kUsart2Base, 0x400, false});

  opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
  opec_hw::Gpio adc("ADC", kAdcBase);
  opec_hw::Gpio motor("MOTOR", kMotorBase);
  opec_hw::Uart uart("USART2", opec_hw::kUsart2Base);
  machine.bus().AttachDevice(&adc);
  machine.bus().AttachDevice(&motor);
  machine.bus().AttachDevice(&uart);
  adc.SetInput(400);  // the sensor reads 400 -> setpoint 400%101 = 97

  opec_compiler::CompileResult compile =
      opec_compiler::CompileOpec(m, soc, config, machine.board().board);
  opec_monitor::Monitor monitor(machine, compile.policy, soc);
  opec_compiler::LoadGlobals(machine, m, compile.layout);
  opec_rt::ExecutionEngine engine(machine, m, compile.layout, &monitor);

  // Attack 1: the compromised Report task tries to slam the motor peripheral
  // directly — MOTOR is not in Report's peripheral allowlist.
  opec_rt::AttackSpec motor_attack;
  motor_attack.function = "Report_Task";
  motor_attack.addr = kMotorBase + 0x14;
  motor_attack.value = 9999;
  engine.AddAttack(motor_attack);

  opec_rt::RunResult r = engine.Run("main");
  std::printf("sensor node: ok=%d telemetry=%u motor_setpoint=%u\n", r.ok, r.return_value,
              motor.output());
  std::printf("motor-slam attack from Report_Task: fired=%d blocked=%d\n",
              engine.attacks()[0].fired, engine.attacks()[0].blocked);
  std::printf("monitor: %llu switches, %llu virtualization faults\n",
              static_cast<unsigned long long>(monitor.stats().operation_switches),
              static_cast<unsigned long long>(monitor.stats().virtualization_faults));
  bool good = r.ok && r.return_value == 5 && engine.attacks()[0].blocked &&
              motor.output() <= 100;
  std::printf("%s\n", good ? "OK: actuator stayed in the safe range" : "FAILED");
  return good ? 0 : 1;
}
