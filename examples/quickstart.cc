// Quickstart: author a tiny two-task guest program, compile it with OPEC,
// run it on the machine model, and watch an injected arbitrary-write exploit
// get contained.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/compiler/opec_compiler.h"
#include "src/hw/devices/uart.h"
#include "src/ir/builder.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"

using opec_ir::FunctionBuilder;
using opec_ir::Val;

int main() {
  // --- 1. Author the guest program (normally: your firmware's C code) ---
  opec_ir::Module m("quickstart");
  auto& tt = m.types();
  m.AddGlobal("counter", tt.U32());  // shared between both tasks
  m.AddGlobal("secret", tt.U32());   // used only by TaskSecret

  {
    auto* fn = m.AddFunction("TaskSecret", tt.FunctionTy(tt.VoidTy(), {}), {});
    fn->set_source_file("secret.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.G("secret"), b.U32(0xC0FFEE));
    b.Assign(b.G("counter"), b.G("counter") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("TaskLog", tt.FunctionTy(tt.VoidTy(), {}), {});
    fn->set_source_file("log.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Mmio32(opec_hw::kUsart2Base + 0x04), b.U32('.') + b.G("counter") * b.U32(0));
    b.Assign(b.G("counter"), b.G("counter") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(m, fn);
    Val i = b.Local("i", tt.U32());
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(3));
    {
      b.Call("TaskSecret");
      b.Call("TaskLog");
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Ret(b.G("counter"));
    b.Finish();
  }

  // --- 2. Developer inputs: the operation entry list (Figure 5) ---
  opec_compiler::PartitionConfig config;
  config.entries.push_back({"TaskSecret", {}});
  config.entries.push_back({"TaskLog", {}});
  config.sanitize.push_back({"counter", 0, 1000});

  // --- 3. Compile for OPEC ---
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"USART2", opec_hw::kUsart2Base, 0x400, false});
  opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
  opec_hw::Uart uart("USART2", opec_hw::kUsart2Base);
  machine.bus().AttachDevice(&uart);

  opec_compiler::CompileResult compile =
      opec_compiler::CompileOpec(m, soc, config, machine.board().board);
  std::printf("=== Generated operation policy ===\n%s\n",
              compile.policy.ToText().c_str());

  // --- 4. Run under the monitor, with an injected exploit: compromised
  //        TaskLog tries to overwrite `secret` (not in its data section) ---
  opec_monitor::Monitor monitor(machine, compile.policy, soc);
  opec_compiler::LoadGlobals(machine, m, compile.layout);
  opec_rt::ExecutionEngine engine(machine, m, compile.layout, &monitor);

  opec_rt::AttackSpec attack;
  attack.function = "TaskLog";
  attack.addr = compile.layout.AddrOf(m.FindGlobal("secret"));
  attack.value = 0xBADBAD;
  engine.AddAttack(attack);

  opec_rt::RunResult result = engine.Run("main");
  std::printf("=== Run ===\nok=%d return=%u cycles=%llu switches=%llu synced_bytes=%llu\n",
              result.ok, result.return_value,
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(monitor.stats().operation_switches),
              static_cast<unsigned long long>(monitor.stats().synced_bytes));
  std::printf("attack fired=%d blocked=%d  (TaskLog cannot write TaskSecret's data)\n",
              engine.attacks()[0].fired, engine.attacks()[0].blocked);
  return result.ok && engine.attacks()[0].blocked ? 0 : 1;
}
