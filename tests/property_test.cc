// Parameterized property tests: arithmetic-semantics sweeps against a host
// oracle, MPU window-coverage properties, FAT16 file-size sweeps, and
// whole-app invariants under OPEC.

#include <gtest/gtest.h>

#include "src/apps/all_apps.h"
#include "src/apps/guest/fat16_host.h"
#include "src/apps/runner.h"
#include "src/compiler/layout.h"
#include "tests/guest_harness.h"

namespace {

using opec_ir::BinaryOp;
using opec_ir::FunctionBuilder;
using opec_test::GuestHarness;

// --- Guest arithmetic must match the host's uint32/int32 semantics ---

struct ArithCase {
  BinaryOp op;
  bool is_signed;
  uint32_t a;
  uint32_t b;
};

uint32_t HostEval(const ArithCase& c) {
  uint32_t a = c.a;
  uint32_t b = c.b;
  int32_t sa = static_cast<int32_t>(a);
  int32_t sb = static_cast<int32_t>(b);
  switch (c.op) {
    case BinaryOp::kAdd:
      return a + b;
    case BinaryOp::kSub:
      return a - b;
    case BinaryOp::kMul:
      return a * b;
    case BinaryOp::kDiv:
      return c.is_signed ? static_cast<uint32_t>(sa / sb) : a / b;
    case BinaryOp::kRem:
      return c.is_signed ? static_cast<uint32_t>(sa % sb) : a % b;
    case BinaryOp::kAnd:
      return a & b;
    case BinaryOp::kOr:
      return a | b;
    case BinaryOp::kXor:
      return a ^ b;
    case BinaryOp::kShl:
      return a << (b & 31);
    case BinaryOp::kShr:
      return c.is_signed ? static_cast<uint32_t>(sa >> (b & 31)) : a >> (b & 31);
    case BinaryOp::kLt:
      return c.is_signed ? (sa < sb) : (a < b);
    case BinaryOp::kLe:
      return c.is_signed ? (sa <= sb) : (a <= b);
    case BinaryOp::kGt:
      return c.is_signed ? (sa > sb) : (a > b);
    case BinaryOp::kGe:
      return c.is_signed ? (sa >= sb) : (a >= b);
    case BinaryOp::kEq:
      return a == b;
    case BinaryOp::kNe:
      return a != b;
    default:
      return 0;
  }
}

class ArithmeticOracle : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ArithmeticOracle, GuestMatchesHost) {
  const ArithCase& c = GetParam();
  GuestHarness h;
  auto& tt = h.module().types();
  const opec_ir::Type* ty = c.is_signed ? tt.I32() : tt.U32();
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  opec_ir::Val lhs = b.C(ty, static_cast<int32_t>(c.a));
  opec_ir::Val rhs = b.C(ty, static_cast<int32_t>(c.b));
  b.Ret(b.CastTo(tt.U32(), opec_ir::Val{opec_ir::MakeBinary(c.op, ty, lhs.expr, rhs.expr)}));
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, HostEval(c));
}

std::vector<ArithCase> ArithCases() {
  std::vector<ArithCase> cases;
  const BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
                          BinaryOp::kRem, BinaryOp::kAnd, BinaryOp::kOr,  BinaryOp::kXor,
                          BinaryOp::kShl, BinaryOp::kShr, BinaryOp::kLt,  BinaryOp::kLe,
                          BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kEq,  BinaryOp::kNe};
  const std::pair<uint32_t, uint32_t> operands[] = {
      {7, 3}, {0xFFFFFFF9, 3} /* -7, 3 */, {0x80000001, 2}, {1, 31}, {0xABCD1234, 0x0F0F0F0F}};
  for (BinaryOp op : ops) {
    for (auto [a, b] : operands) {
      for (bool is_signed : {false, true}) {
        cases.push_back({op, is_signed, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArithmeticOracle, ::testing::ValuesIn(ArithCases()));

// --- CoverRangeWithMpuWindows: full coverage, legality, bounded overshoot ---

class MpuWindowProperty
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(MpuWindowProperty, CoversExactlyAndLegally) {
  auto [base, len] = GetParam();
  auto windows = opec_compiler::CoverRangeWithMpuWindows(base, len);
  ASSERT_FALSE(windows.empty());
  uint64_t total = 0;
  for (const auto& w : windows) {
    EXPECT_GE(w.size_log2, 5);
    EXPECT_EQ(w.base & ((1u << w.size_log2) - 1), 0u);
    total += 1u << w.size_log2;
  }
  // Every byte covered.
  for (uint32_t off = 0; off < len; off += 16) {
    uint32_t probe = base + off;
    bool covered = false;
    for (const auto& w : windows) {
      covered |= probe >= w.base && probe - w.base < (1u << w.size_log2);
    }
    ASSERT_TRUE(covered) << std::hex << probe;
  }
  // Bounded overshoot: never more than 2x + one minimum region.
  EXPECT_LE(total, 2ull * len + 64);
}

INSTANTIATE_TEST_SUITE_P(Ranges, MpuWindowProperty,
                         ::testing::Values(std::pair<uint32_t, uint32_t>{0x40000000, 0x400},
                                           std::pair<uint32_t, uint32_t>{0x40000400, 0x400},
                                           std::pair<uint32_t, uint32_t>{0x40011000, 0x800},
                                           std::pair<uint32_t, uint32_t>{0x40020000, 0xC00},
                                           std::pair<uint32_t, uint32_t>{0x50000000, 0x20},
                                           std::pair<uint32_t, uint32_t>{0x40001000, 0x1234},
                                           std::pair<uint32_t, uint32_t>{0x4000FE00, 0x300}));

// --- FAT16-lite: round-trips across file sizes (cluster-boundary cases) ---

class Fat16SizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Fat16SizeSweep, HostRoundTrip) {
  uint32_t size = GetParam();
  opec_hw::BlockDevice disk("SD", 0x40012C00, 128);
  opec_apps::Fat16Host fs(disk);
  fs.Format();
  std::vector<uint8_t> content(size);
  for (uint32_t i = 0; i < size; ++i) {
    content[i] = static_cast<uint8_t>(i * 13 + 1);
  }
  fs.AddFile("SWP", content);
  std::vector<uint8_t> out;
  ASSERT_TRUE(fs.ReadFile("SWP", &out));
  EXPECT_EQ(out, content);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fat16SizeSweep,
                         ::testing::Values(1, 100, 511, 512, 513, 1024, 1025, 2048, 4000));

// --- Whole-app invariants under OPEC ---

class AppInvariants : public ::testing::TestWithParam<int> {};

TEST_P(AppInvariants, PolicyInvariantsHold) {
  auto factories = opec_apps::AllApps();
  auto factory = factories[static_cast<size_t>(GetParam())];
  std::unique_ptr<opec_apps::Application> app = factory.make();
  opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
  const opec_compiler::Policy& policy = run.compile()->policy;

  // (1) Every external variable has a unique reloc slot and public address.
  std::set<uint32_t> slots;
  std::set<uint32_t> publics;
  for (const auto& ev : policy.externals) {
    EXPECT_TRUE(slots.insert(ev.reloc_entry_addr).second);
    EXPECT_TRUE(publics.insert(ev.public_addr).second);
  }
  // (2) Every shadow lies inside its operation's section.
  for (const auto& op : policy.operations) {
    for (const auto& sp : op.shadows) {
      const auto& ev = policy.externals[static_cast<size_t>(sp.var_index)];
      EXPECT_GE(sp.addr, op.section_base) << factory.name;
      EXPECT_LE(sp.addr + ev.size, op.section_base + (1u << op.section_size_log2))
          << factory.name;
    }
    // (3) An operation shadows exactly the externals it needs.
    for (const auto& sp : op.shadows) {
      const auto& ev = policy.externals[static_cast<size_t>(sp.var_index)];
      EXPECT_EQ(op.needed_globals.count(ev.gv), 1u) << factory.name;
    }
  }
  // (4) Every operation's member set contains its entry.
  for (const auto& op : policy.operations) {
    const opec_ir::Function* entry = run.module().FindFunction(op.entry);
    EXPECT_EQ(op.members.count(entry), 1u) << factory.name << "/" << op.entry;
  }
  // (5) The scenario passes and the monitor never grants an unlisted range:
  // run with trace and verify executed functions all belong to the active op.
  run.EnableTrace();
  opec_rt::RunResult r = run.Execute();
  ASSERT_TRUE(r.ok) << factory.name << ": " << r.violation;
  EXPECT_EQ(run.Check(), "") << factory.name;
  for (const opec_rt::TraceEvent& e : run.trace().events()) {
    if (e.operation_id < 0) {
      continue;  // default operation window
    }
    const auto& op = policy.operations[static_cast<size_t>(e.operation_id)];
    EXPECT_EQ(op.members.count(e.fn), 1u)
        << factory.name << ": " << e.fn->name() << " executed inside " << op.name
        << " but is not a member (unsound call graph?)";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppInvariants, ::testing::Range(0, 7));

}  // namespace
