// Tests for the differential fuzzing harness (src/fuzz, DESIGN.md Section 12):
// generator determinism, pinned-seed oracle cleanliness, serial-vs-parallel
// digest identity (oracle 4 in-process), and the greedy shrinker.

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/campaign/campaign.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/program.h"
#include "src/fuzz/shrink.h"
#include "src/ir/printer.h"

namespace opec_fuzz {
namespace {

std::string ModuleText(const ProgramSpec& spec) {
  std::unique_ptr<opec_ir::Module> module = BuildModule(spec);
  return opec_ir::PrintModule(*module);
}

TEST(FuzzGeneratorTest, SameSeedProducesIdenticalPrograms) {
  for (uint64_t seed : {1u, 7u, 42u, 12345u}) {
    ProgramSpec a = GenerateProgram(seed);
    ProgramSpec b = GenerateProgram(seed);
    EXPECT_EQ(SpecSummary(a), SpecSummary(b)) << "seed " << seed;
    EXPECT_EQ(ModuleText(a), ModuleText(b)) << "seed " << seed;
  }
}

TEST(FuzzGeneratorTest, DifferentSeedsProduceDifferentPrograms) {
  // Not guaranteed in principle, but with this grammar two colliding adjacent
  // seeds would indicate a broken RNG hookup.
  std::set<std::string> texts;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    texts.insert(ModuleText(GenerateProgram(seed)));
  }
  EXPECT_GT(texts.size(), 12u);
}

TEST(FuzzGeneratorTest, GeneratedProgramsAreWellFormedAndCounted) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ProgramSpec spec = GenerateProgram(seed);
    ASSERT_FALSE(spec.funcs.empty());
    EXPECT_EQ(spec.funcs.back().name, "main");
    EXPECT_GT(CountStatements(spec), 0u);
    // Every referenced callee and global must be declared.
    std::map<std::string, int> callees;
    CollectCalleeRefs(spec, &callees);
    for (const auto& [name, n] : callees) {
      bool found = false;
      for (const FFunc& f : spec.funcs) {
        found = found || f.name == name;
      }
      EXPECT_TRUE(found) << "seed " << seed << " references undeclared fn " << name;
    }
    std::map<std::string, int> globals;
    CollectGlobalRefs(spec, &globals);
    for (const auto& [name, n] : globals) {
      bool found = false;
      for (const FGlobal& g : spec.globals) {
        found = found || g.name == name;
      }
      EXPECT_TRUE(found) << "seed " << seed << " references undeclared global " << name;
    }
  }
}

TEST(FuzzOracleTest, PinnedSeedRangeIsClean) {
  // The harness's own regression sweep: these seeds were all clean when the
  // harness landed; any divergence here is a new bug in the compiler, the
  // analyses, the runtime or the hardware model (or in the harness itself).
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    CaseResult r = RunCase(seed);
    EXPECT_TRUE(r.divergences.empty())
        << "seed " << seed << ": " << OracleName(r.divergences[0].oracle) << ": "
        << r.divergences[0].detail;
  }
}

TEST(FuzzOracleTest, DigestIsDeterministicAcrossReruns) {
  for (uint64_t seed : {3u, 11u, 19u}) {
    EXPECT_EQ(RunCase(seed).digest, RunCase(seed).digest) << "seed " << seed;
  }
}

TEST(FuzzOracleTest, SerialAndParallelCampaignDigestsAreIdentical) {
  // Oracle 4 in-process: the same 12 cases through ParallelMap on one worker
  // and on four must produce the same digests in the same order.
  constexpr size_t kCases = 12;
  auto run = [](size_t i) { return RunCase(1000 + i).digest; };
  std::vector<std::string> serial = opec_campaign::ParallelMap(1, kCases, run);
  std::vector<std::string> parallel = opec_campaign::ParallelMap(4, kCases, run);
  EXPECT_EQ(serial, parallel);
}

TEST(FuzzOracleTest, ExecOracleDetectsDisagreement) {
  // Sanity: the comparator itself must flag differing observations.
  ProgramSpec spec = GenerateProgram(1);
  ExecObservation a = RunOnce(spec, opec_apps::BuildMode::kVanilla);
  ExecObservation b = a;
  b.return_value ^= 1u;
  b.uart_tx += "X";
  std::vector<Divergence> divs = CompareExec(spec, a, b);
  EXPECT_GE(divs.size(), 2u);
  for (const Divergence& d : divs) {
    EXPECT_EQ(d.oracle, Oracle::kExecDiff);
  }
}

// Synthetic "diverging" recipe for the shrinker: main assigns a long mix of
// junk statements plus one trigger (g0 = 7) buried inside nested control
// flow. The predicate is structural — "some statement still assigns constant
// 7 to g0" — standing in for a real divergence trigger, so the test is fast
// and exact.
ProgramSpec SyntheticDivergingSpec() {
  ProgramSpec spec;
  spec.seed = 0;
  FGlobal g0;
  g0.k = FGlobal::K::kScalar;
  g0.name = "g0";
  g0.scalar = Scalar::kU32;
  spec.globals.push_back(g0);
  FGlobal g1 = g0;
  g1.name = "g1";
  spec.globals.push_back(g1);

  auto konst = [](uint64_t v) {
    FExpr e;
    e.k = FExpr::K::kConst;
    e.scalar = Scalar::kU32;
    e.value = v;
    return e;
  };
  auto global = [](const std::string& name) {
    FExpr e;
    e.k = FExpr::K::kGlobal;
    e.name = name;
    return e;
  };
  auto assign = [](FExpr lhs, FExpr rhs) {
    FStmt s;
    s.k = FStmt::K::kAssign;
    s.lhs = std::move(lhs);
    s.rhs = std::move(rhs);
    return s;
  };

  FFunc main_fn;
  main_fn.name = "main";
  main_fn.returns_u32 = true;
  // 20 junk assignments to g1.
  for (uint64_t i = 0; i < 20; ++i) {
    main_fn.body.push_back(assign(global("g1"), konst(i)));
  }
  // The trigger, nested two levels deep with junk around it.
  FStmt loop;
  loop.k = FStmt::K::kLoop;
  loop.loop_var = "i0";
  loop.loop_count = 3;
  FStmt iff;
  iff.k = FStmt::K::kIf;
  iff.rhs = konst(1);
  iff.body.push_back(assign(global("g1"), konst(99)));
  iff.body.push_back(assign(global("g0"), konst(7)));
  iff.orelse.push_back(assign(global("g1"), konst(98)));
  loop.body.push_back(iff);
  main_fn.body.push_back(loop);
  for (uint64_t i = 0; i < 10; ++i) {
    main_fn.body.push_back(assign(global("g1"), konst(100 + i)));
  }
  FStmt ret;
  ret.k = FStmt::K::kRet;
  ret.rhs = global("g0");
  main_fn.body.push_back(ret);
  main_fn.locals.emplace_back("i0", Scalar::kU32);
  spec.funcs.push_back(main_fn);
  spec.rx_input = "0123456789";
  return spec;
}

bool AssignsSevenToG0(const std::vector<FStmt>& body) {
  for (const FStmt& s : body) {
    if (s.k == FStmt::K::kAssign && s.lhs.k == FExpr::K::kGlobal && s.lhs.name == "g0" &&
        s.rhs.k == FExpr::K::kConst && s.rhs.value == 7) {
      return true;
    }
    if (AssignsSevenToG0(s.body) || AssignsSevenToG0(s.orelse)) {
      return true;
    }
  }
  return false;
}

TEST(FuzzShrinkTest, MinimizesSyntheticDivergenceToAtMostTenStatements) {
  ProgramSpec spec = SyntheticDivergingSpec();
  DivergePredicate diverges = [](const ProgramSpec& s) {
    for (const FFunc& f : s.funcs) {
      if (AssignsSevenToG0(f.body)) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(diverges(spec));
  ShrinkStats stats;
  ProgramSpec minimized = ShrinkProgram(spec, diverges, &stats);
  EXPECT_TRUE(diverges(minimized));
  EXPECT_EQ(stats.initial_statements, CountStatements(spec));
  EXPECT_EQ(stats.final_statements, CountStatements(minimized));
  EXPECT_LE(CountStatements(minimized), 10u);
  EXPECT_TRUE(minimized.rx_input.empty());
  // Minimized recipes must still build.
  EXPECT_NE(BuildModule(minimized), nullptr);
}

TEST(FuzzShrinkTest, ShrinkingIsDeterministic) {
  ProgramSpec spec = SyntheticDivergingSpec();
  DivergePredicate diverges = [](const ProgramSpec& s) {
    for (const FFunc& f : s.funcs) {
      if (AssignsSevenToG0(f.body)) {
        return true;
      }
    }
    return false;
  };
  ProgramSpec a = ShrinkProgram(spec, diverges);
  ProgramSpec b = ShrinkProgram(spec, diverges);
  EXPECT_EQ(SpecSummary(a), SpecSummary(b));
  EXPECT_EQ(ModuleText(a), ModuleText(b));
}

TEST(FuzzShrinkTest, ShrinksUnderExecutionPredicate) {
  // A predicate that actually builds and runs the candidate, the way the CLI
  // shrinks real divergences: keep any recipe whose vanilla run transmits at
  // least one UART byte. Find a seed that does, then minimize it.
  uint64_t seed = 0;
  for (uint64_t s = 1; s <= 20 && seed == 0; ++s) {
    ExecObservation obs = RunOnce(GenerateProgram(s), opec_apps::BuildMode::kVanilla);
    if (obs.run_ok && !obs.uart_tx.empty()) {
      seed = s;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed in 1..20 transmits UART bytes";
  DivergePredicate transmits = [](const ProgramSpec& s) {
    ExecObservation obs = RunOnce(s, opec_apps::BuildMode::kVanilla);
    return obs.run_ok && !obs.uart_tx.empty();
  };
  ProgramSpec spec = GenerateProgram(seed);
  ShrinkStats stats;
  ProgramSpec minimized = ShrinkProgram(spec, transmits, &stats);
  EXPECT_TRUE(transmits(minimized));
  EXPECT_LE(CountStatements(minimized), CountStatements(spec));
  EXPECT_GT(stats.probes, 0u);
}

}  // namespace
}  // namespace opec_fuzz
