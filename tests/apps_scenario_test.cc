// Scenario tests for every guest application: each must pass its output check
// both vanilla and under OPEC, and the OPEC build must produce the expected
// operation structure.

#include <gtest/gtest.h>

#include "src/apps/animation.h"
#include "src/apps/fatfs_usd.h"
#include "src/apps/camera.h"
#include "src/apps/coremark.h"
#include "src/apps/lcd_usd.h"
#include "src/apps/pinlock.h"
#include "src/apps/tcp_echo.h"
#include "src/apps/runner.h"

namespace opec_apps {
namespace {

void ExpectScenarioPasses(const Application& app, BuildMode mode) {
  AppRun run(app, mode);
  opec_rt::RunResult result = run.Execute();
  ASSERT_TRUE(result.ok) << app.name() << ": " << result.violation;
  EXPECT_EQ(run.Check(), "") << app.name();
  if (mode == BuildMode::kOpec) {
    EXPECT_GT(run.monitor()->stats().operation_switches, 0u) << app.name();
  }
}

TEST(AppScenarios, AnimationVanilla) { ExpectScenarioPasses(AnimationApp(), BuildMode::kVanilla); }
TEST(AppScenarios, AnimationOpec) { ExpectScenarioPasses(AnimationApp(), BuildMode::kOpec); }

TEST(AppScenarios, AnimationOperationCount) {
  AnimationApp app;
  AppRun run(app, BuildMode::kOpec);
  // 7 entries + default main = 8, matching Table 1's #OPs for Animation.
  EXPECT_EQ(run.compile()->policy.operations.size(), 8u);
}

TEST(AppScenarios, FatFsVanilla) { ExpectScenarioPasses(FatFsUsdApp(), BuildMode::kVanilla); }
TEST(AppScenarios, FatFsOpec) { ExpectScenarioPasses(FatFsUsdApp(), BuildMode::kOpec); }

TEST(AppScenarios, LcdUsdVanilla) { ExpectScenarioPasses(LcdUsdApp(), BuildMode::kVanilla); }
TEST(AppScenarios, LcdUsdOpec) { ExpectScenarioPasses(LcdUsdApp(), BuildMode::kOpec); }

TEST(AppScenarios, TcpEchoVanilla) { ExpectScenarioPasses(TcpEchoApp(), BuildMode::kVanilla); }
TEST(AppScenarios, TcpEchoOpec) { ExpectScenarioPasses(TcpEchoApp(), BuildMode::kOpec); }

TEST(AppScenarios, CameraVanilla) { ExpectScenarioPasses(CameraApp(), BuildMode::kVanilla); }
TEST(AppScenarios, CameraOpec) { ExpectScenarioPasses(CameraApp(), BuildMode::kOpec); }

TEST(AppScenarios, CoreMarkVanilla) { ExpectScenarioPasses(CoreMarkApp(), BuildMode::kVanilla); }
TEST(AppScenarios, CoreMarkOpec) { ExpectScenarioPasses(CoreMarkApp(), BuildMode::kOpec); }

// Table 1's #OPs column: 6/8/10/11/9/9/9 operations (including the default
// main operation for the apps built here).
TEST(AppScenarios, OperationCountsMatchTable1) {
  struct Expectation {
    std::unique_ptr<Application> app;
    size_t ops;
  };
  std::vector<Expectation> expectations;
  expectations.push_back({std::make_unique<LcdUsdApp>(), 11});
  expectations.push_back({std::make_unique<TcpEchoApp>(), 9});
  expectations.push_back({std::make_unique<CameraApp>(), 9});
  expectations.push_back({std::make_unique<CoreMarkApp>(), 9});
  for (const auto& e : expectations) {
    AppRun run(*e.app, BuildMode::kOpec);
    EXPECT_EQ(run.compile()->policy.operations.size(), e.ops) << e.app->name();
  }
}

TEST(AppScenarios, FatFsOperationCount) {
  FatFsUsdApp app;
  AppRun run(app, BuildMode::kOpec);
  // 9 entries + default main = 10, matching Table 1's #OPs for FatFs-uSD.
  EXPECT_EQ(run.compile()->policy.operations.size(), 10u);
  // MyFile and SDFatFs must be shared (external) variables.
  EXPECT_GE(run.compile()->policy.FindExternalIndex(run.module().FindGlobal("MyFile")), 0);
  EXPECT_GE(run.compile()->policy.FindExternalIndex(run.module().FindGlobal("SDFatFs")), 0);
}

}  // namespace
}  // namespace opec_apps
