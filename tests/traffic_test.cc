// Traffic layer tests: spec parsing, generator determinism, the guest-replica
// expectation model, and the long-running TCP-Echo server over both ethernet
// device models (PIO and DMA) in both build modes and both execution tiers.

#include <gtest/gtest.h>

#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/apps/tcp_echo.h"
#include "src/hw/state_io.h"
#include "src/traffic/traffic.h"

namespace opec_traffic {
namespace {

TEST(TrafficSpec, ParseAcceptsAnySubsetInAnyOrder) {
  TrafficSpec spec;
  std::string error;
  ASSERT_TRUE(ParseTrafficSpec("rate=5000,conns=2,seed=9", &spec, &error)) << error;
  EXPECT_EQ(spec.rate_rps, 5000u);
  EXPECT_EQ(spec.conns, 2u);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.requests, TrafficSpec().requests);  // untouched default

  TrafficSpec spec2;
  ASSERT_TRUE(
      ParseTrafficSpec("split=0,requests=40,malformed=0,reconnect=0,rate=100", &spec2, &error))
      << error;
  EXPECT_EQ(spec2.requests, 40u);
  EXPECT_EQ(spec2.malformed_permille, 0u);
  EXPECT_EQ(spec2.rate_rps, 100u);
}

TEST(TrafficSpec, ParseRejectsJunk) {
  TrafficSpec spec;
  std::string error;
  EXPECT_FALSE(ParseTrafficSpec("rate=0", &spec, &error));          // below range
  EXPECT_FALSE(ParseTrafficSpec("conns=17", &spec, &error));        // above range
  EXPECT_FALSE(ParseTrafficSpec("rate=12x", &spec, &error));        // trailing junk
  EXPECT_FALSE(ParseTrafficSpec("bogus=1", &spec, &error));         // unknown key
  EXPECT_FALSE(ParseTrafficSpec("rate", &spec, &error));            // missing value
  EXPECT_FALSE(ParseTrafficSpec("malformed=1001", &spec, &error));  // permille > 1000
  EXPECT_FALSE(error.empty());
}

TEST(TrafficSpec, ToStringRoundTrips) {
  TrafficSpec spec;
  spec.rate_rps = 777;
  spec.conns = 3;
  spec.requests = 55;
  spec.seed = 42;
  TrafficSpec parsed;
  std::string error;
  ASSERT_TRUE(ParseTrafficSpec(TrafficSpecToString(spec), &parsed, &error)) << error;
  EXPECT_EQ(parsed, spec);
}

TEST(TrafficGenerator, DeterministicPerSpecAndSensitiveToSeed) {
  TrafficSpec spec;
  spec.requests = 60;
  spec.seed = 7;
  GeneratedTraffic a = Generate(spec);
  GeneratedTraffic b = Generate(spec);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].bytes, b.frames[i].bytes);
    EXPECT_EQ(a.frames[i].gap_cycles, b.frames[i].gap_cycles);
  }
  EXPECT_EQ(a.expected_tx_digest, b.expected_tx_digest);
  EXPECT_EQ(a.expected_echoes, b.expected_echoes);

  spec.seed = 8;
  GeneratedTraffic c = Generate(spec);
  EXPECT_NE(a.expected_tx_digest, c.expected_tx_digest);
}

TEST(TrafficGenerator, ExpectationsAreInternallyConsistent) {
  TrafficSpec spec;
  spec.requests = 80;
  spec.seed = 3;
  GeneratedTraffic gen = Generate(spec);
  EXPECT_GT(gen.expected_echoes, 0u);
  EXPECT_EQ(gen.expected_tx_frames, gen.expected_tx.size());
  // The digest is the chained FNV over exactly the expected reply frames.
  uint64_t h = 0xCBF29CE484222325ull;
  for (const std::vector<uint8_t>& f : gen.expected_tx) {
    uint8_t len_le[4];
    for (int i = 0; i < 4; ++i) {
      len_le[i] = static_cast<uint8_t>(f.size() >> (8 * i));
    }
    h = opec_hw::Fnv1a64(len_le, 4, h);
    h = opec_hw::Fnv1a64(f.data(), f.size(), h);
  }
  EXPECT_EQ(h, gen.expected_tx_digest);
  // Higher rates mean tighter arrival gaps.
  TrafficSpec fast = spec;
  fast.rate_rps = 500'000;
  spec.rate_rps = 200;
  EXPECT_GT(GapCyclesForRate(spec.rate_rps), GapCyclesForRate(fast.rate_rps));
}

// --- The long-running server app against the generated workloads ---

opec_traffic::TrafficSpec SmallSpec() {
  TrafficSpec spec;
  spec.rate_rps = 50'000;
  spec.conns = 3;
  spec.requests = 40;
  spec.seed = 11;
  return spec;
}

void ExpectLoadScenarioPasses(const TrafficSpec& spec,
                              opec_apps::TcpEchoApp::EthVariant variant,
                              opec_apps::BuildMode mode, opec_apps::EngineKind engine,
                              uint64_t* cycles_out = nullptr) {
  opec_apps::TcpEchoApp app(spec, variant);
  opec_apps::AppRun run(app, mode, engine);
  opec_rt::RunResult result = run.Execute();
  ASSERT_TRUE(result.ok) << app.name() << ": " << result.violation;
  EXPECT_EQ(run.Check(), "") << app.name();
  if (cycles_out != nullptr) {
    *cycles_out = result.cycles;
  }
}

TEST(TrafficLoad, PioServerPassesInAllConfigurations) {
  for (opec_apps::BuildMode mode :
       {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec}) {
    uint64_t interp = 0, bytecode = 0;
    ExpectLoadScenarioPasses(SmallSpec(), opec_apps::TcpEchoApp::EthVariant::kPio, mode,
                             opec_apps::EngineKind::kInterp, &interp);
    ExpectLoadScenarioPasses(SmallSpec(), opec_apps::TcpEchoApp::EthVariant::kPio, mode,
                             opec_apps::EngineKind::kBytecode, &bytecode);
    EXPECT_EQ(interp, bytecode);  // modeled cycles are tier-invariant
  }
}

TEST(TrafficLoad, DmaServerPassesInAllConfigurations) {
  for (opec_apps::BuildMode mode :
       {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec}) {
    uint64_t interp = 0, bytecode = 0;
    ExpectLoadScenarioPasses(SmallSpec(), opec_apps::TcpEchoApp::EthVariant::kDma, mode,
                             opec_apps::EngineKind::kInterp, &interp);
    ExpectLoadScenarioPasses(SmallSpec(), opec_apps::TcpEchoApp::EthVariant::kDma, mode,
                             opec_apps::EngineKind::kBytecode, &bytecode);
    EXPECT_EQ(interp, bytecode);
  }
}

TEST(TrafficLoad, DmaVariantKeepsTheNineOperationPartition) {
  opec_apps::TcpEchoApp app(SmallSpec(), opec_apps::TcpEchoApp::EthVariant::kDma);
  opec_apps::AppRun run(app, opec_apps::BuildMode::kOpec);
  // 8 entries + default main = 9, matching the PIO app and Table 1.
  EXPECT_EQ(run.compile()->policy.operations.size(), 9u);
}

TEST(TrafficLoad, LongRunServicesThousandsOfRequestsWithBoundedRetention) {
  TrafficSpec spec;
  spec.rate_rps = 200'000;  // near saturation: gaps collapse, server stays busy
  spec.conns = 6;
  spec.requests = 2000;
  spec.seed = 5;
  spec.reconnect_permille = 20;
  opec_apps::TcpEchoApp app(spec, opec_apps::TcpEchoApp::EthVariant::kPio);
  opec_apps::AppRun run(app, opec_apps::BuildMode::kOpec);
  opec_rt::RunResult result = run.Execute();
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_EQ(run.Check(), "");
  // One boot served the whole workload…
  GeneratedTraffic gen = Generate(spec);
  EXPECT_GT(gen.expected_echoes, 1000u);
  EXPECT_EQ(result.return_value, gen.expected_echoes);
  // …and the retention cap kept the host-side frame window bounded while the
  // digest still covered every committed frame (Check() verified it).
  const auto& d = static_cast<const opec_apps::TcpEchoDevices&>(run.devices());
  EXPECT_LE(d.eth->tx_frames().size(), 64u);
  EXPECT_EQ(d.eth->tx_committed(), gen.expected_tx_frames);
  EXPECT_GT(d.eth->tx_committed(), 64u);
}

TEST(TrafficLoad, RegistryExposesTheTrafficVariants) {
  SetDefaultLoadSpec(SmallSpec());
  auto load = opec_apps::FindAppFactory("tcp_echo_load");
  auto dma = opec_apps::FindAppFactory("TCP-Echo-DMA");
  ASSERT_TRUE(load.has_value());
  ASSERT_TRUE(dma.has_value());
  EXPECT_EQ(load->make()->name(), "TCP-Echo-Load");
  EXPECT_EQ(dma->make()->name(), "TCP-Echo-DMA");
  // The paper line-up is untouched: figure/table output must not change.
  EXPECT_EQ(opec_apps::AllApps().size(), 7u);
  EXPECT_FALSE(opec_apps::FindAppFactory("no-such-app").has_value());
  SetDefaultLoadSpec(TrafficSpec());
}

}  // namespace
}  // namespace opec_traffic
