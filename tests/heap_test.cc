// Heap extension tests (Sections 5.2 "Heap" and 7): guest allocator
// correctness, cross-operation heap sharing under OPEC, and heap isolation
// from operations that do not use the allocator.

#include <gtest/gtest.h>

#include "src/apps/guest/heap_alloc.h"
#include "src/compiler/layout.h"
#include "src/compiler/opec_compiler.h"
#include "src/ir/builder.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"
#include "tests/guest_harness.h"

namespace opec_apps {
namespace {

using opec_ir::FunctionBuilder;
using opec_ir::Type;
using opec_ir::Val;

constexpr uint32_t kStack = 16 * 1024;
constexpr uint32_t kHeap = 4096;

struct HeapProgram {
  HeapProgram() : m("heap_test") {
    heap_base = opec_compiler::ComputeHeapPlacement(opec_hw::Board::kStm32F4Discovery, kStack,
                                                    kHeap, &heap_size);
    EmitHeapAllocator(m, heap_base, heap_size);
  }
  opec_ir::Module m;
  uint32_t heap_base = 0;
  uint32_t heap_size = 0;
};

// Guest program: allocate two blocks, write them, free one, reallocate
// (reusing the freed block), and verify contents.
void BuildAllocScenario(opec_ir::Module& m) {
  auto& tt = m.types();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  auto* fn = m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(m, fn);
  Val a = b.Local("a", p_u8);
  Val c = b.Local("c", p_u8);
  Val d = b.Local("d", p_u8);
  Val i = b.Local("i", tt.U32());
  b.Assign(a, b.CallV("malloc", {b.U32(100)}));
  b.Assign(c, b.CallV("malloc", {b.U32(200)}));
  b.If((b.CastTo(tt.U32(), a) == b.U32(0)) || (b.CastTo(tt.U32(), c) == b.U32(0)));
  b.Ret(b.U32(1));
  b.End();
  b.Assign(i, b.U32(0));
  b.While(i < b.U32(100));
  {
    b.Assign(b.Idx(a, i), b.U8(0xAA));
    b.Assign(i, i + b.U32(1));
  }
  b.End();
  b.Assign(i, b.U32(0));
  b.While(i < b.U32(200));
  {
    b.Assign(b.Idx(c, i), b.U8(0xCC));
    b.Assign(i, i + b.U32(1));
  }
  b.End();
  b.Call("free", {a});
  b.Assign(d, b.CallV("malloc", {b.U32(50)}));  // reuses the freed block
  b.If(b.CastTo(tt.U32(), d) != b.CastTo(tt.U32(), a));
  b.Ret(b.U32(2));
  b.End();
  // c's contents must have survived a's free + d's reuse.
  b.If(b.CastTo(tt.U32(), b.Idx(c, 0u)) != b.U32(0xCC));
  b.Ret(b.U32(3));
  b.End();
  b.If(b.CastTo(tt.U32(), b.Idx(c, 199u)) != b.U32(0xCC));
  b.Ret(b.U32(4));
  b.End();
  b.Ret(b.U32(0));
  b.Finish();
}

TEST(Heap, AllocatorWorksVanilla) {
  HeapProgram p;
  BuildAllocScenario(p.m);
  opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
  opec_compiler::VanillaImage image =
      opec_compiler::BuildVanillaImage(p.m, opec_hw::Board::kStm32F4Discovery);
  opec_compiler::LoadGlobals(machine, p.m, image.layout);
  opec_rt::ExecutionEngine engine(machine, p.m, image.layout);
  opec_rt::RunResult r = engine.Run("main");
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 0u);
}

TEST(Heap, ExhaustionReturnsNull) {
  HeapProgram p;
  auto& tt = p.m.types();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  auto* fn = p.m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(p.m, fn);
  Val count = b.Local("count", tt.U32());
  Val q = b.Local("q", p_u8);
  b.Assign(count, b.U32(0));
  b.While(b.U32(1));
  {
    b.Assign(q, b.CallV("malloc", {b.U32(256)}));
    b.If(b.CastTo(tt.U32(), q) == b.U32(0));
    b.Break();
    b.End();
    b.Assign(count, count + b.U32(1));
  }
  b.End();
  b.Ret(count);
  b.Finish();
  opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
  opec_compiler::VanillaImage image =
      opec_compiler::BuildVanillaImage(p.m, opec_hw::Board::kStm32F4Discovery);
  opec_compiler::LoadGlobals(machine, p.m, image.layout);
  opec_rt::ExecutionEngine engine(machine, p.m, image.layout);
  opec_rt::RunResult r = engine.Run("main");
  ASSERT_TRUE(r.ok) << r.violation;
  // 4 KB heap, 256+8-byte blocks: about 15 allocations, never runaway.
  EXPECT_GE(r.return_value, 14u);
  EXPECT_LE(r.return_value, 16u);
}

// Two operations share heap objects under OPEC: the producer allocates and
// fills a block, passes it (via a shared pointer global) to the consumer.
TEST(Heap, CrossOperationHeapSharingUnderOpec) {
  HeapProgram p;
  auto& tt = p.m.types();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  p.m.AddGlobal("msg_ptr", p_u8);
  p.m.AddGlobal("msg_sum", tt.U32());
  {
    auto* fn = p.m.AddFunction("Producer", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(p.m, fn);
    Val q = b.Local("q", p_u8);
    Val i = b.Local("i", tt.U32());
    b.Assign(q, b.CallV("malloc", {b.U32(64)}));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(64));
    {
      b.Assign(b.Idx(q, i), i);
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.G("msg_ptr"), q);
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = p.m.AddFunction("Consumer", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(p.m, fn);
    Val i = b.Local("i", tt.U32());
    b.Assign(b.G("msg_sum"), b.U32(0));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(64));
    {
      b.Assign(b.G("msg_sum"), b.G("msg_sum") + b.CastTo(tt.U32(), b.Idx(b.G("msg_ptr"), i)));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Call("free", {b.G("msg_ptr")});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = p.m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(p.m, fn);
    b.Call("Producer");
    b.Call("Consumer");
    b.Ret(b.G("msg_sum"));
    b.Finish();
  }
  opec_compiler::PartitionConfig config;
  config.entries.push_back({"Producer", {}});
  config.entries.push_back({"Consumer", {}});
  config.heap_size = kHeap;
  opec_hw::SocDescription soc;
  opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
  opec_compiler::CompileResult compile =
      opec_compiler::CompileOpec(p.m, soc, config, machine.board().board);
  // Both operations contain the allocator -> both marked heap users.
  EXPECT_TRUE(compile.policy.FindOperationByEntry("Producer")->uses_heap);
  EXPECT_TRUE(compile.policy.FindOperationByEntry("Consumer")->uses_heap);
  EXPECT_EQ(compile.policy.heap_base, p.heap_base);
  opec_monitor::Monitor monitor(machine, compile.policy, soc);
  opec_compiler::LoadGlobals(machine, p.m, compile.layout);
  opec_rt::ExecutionEngine engine(machine, p.m, compile.layout, &monitor);
  opec_rt::RunResult r = engine.Run("main");
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 64u * 63 / 2);  // sum 0..63
  // Heap accesses were demand-mapped via MemManage faults.
  EXPECT_GT(monitor.stats().virtualization_faults, 0u);
}

// Operations that do not use the allocator cannot touch the heap.
TEST(Heap, NonHeapOperationIsDeniedHeapAccess) {
  HeapProgram p;
  auto& tt = p.m.types();
  p.m.AddGlobal("scratch", tt.U32());
  {
    auto* fn = p.m.AddFunction("HeapUser", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(p.m, fn);
    Val q = b.Local("q", tt.PointerTo(tt.U8()));
    b.Assign(q, b.CallV("malloc", {b.U32(32)}));
    b.Assign(b.Idx(q, 0u), b.U8(0x77));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = p.m.AddFunction("Innocent", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(p.m, fn);
    b.Assign(b.G("scratch"), b.G("scratch") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = p.m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(p.m, fn);
    b.Call("HeapUser");
    b.Call("Innocent");
    b.Ret(b.G("scratch"));
    b.Finish();
  }
  opec_compiler::PartitionConfig config;
  config.entries.push_back({"HeapUser", {}});
  config.entries.push_back({"Innocent", {}});
  config.heap_size = kHeap;
  opec_hw::SocDescription soc;
  opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
  opec_compiler::CompileResult compile =
      opec_compiler::CompileOpec(p.m, soc, config, machine.board().board);
  EXPECT_TRUE(compile.policy.FindOperationByEntry("HeapUser")->uses_heap);
  EXPECT_FALSE(compile.policy.FindOperationByEntry("Innocent")->uses_heap);
  // `main` only calls entries -> not a heap user either.
  EXPECT_FALSE(compile.policy.FindOperationByEntry("main")->uses_heap);
  opec_monitor::Monitor monitor(machine, compile.policy, soc);
  opec_compiler::LoadGlobals(machine, p.m, compile.layout);
  opec_rt::ExecutionEngine engine(machine, p.m, compile.layout, &monitor);
  // The compromised Innocent operation tries to scribble on the heap.
  opec_rt::AttackSpec attack;
  attack.function = "Innocent";
  attack.addr = p.heap_base + 8;  // HeapUser's allocated payload
  attack.value = 0xDEAD;
  engine.AddAttack(attack);
  opec_rt::RunResult r = engine.Run("main");
  ASSERT_TRUE(r.ok) << r.violation;
  ASSERT_TRUE(engine.attacks()[0].fired);
  EXPECT_TRUE(engine.attacks()[0].blocked);
  // HeapUser's byte survived.
  uint32_t v = 0;
  machine.bus().DebugRead(p.heap_base + 8, 1, &v);
  EXPECT_EQ(v, 0x77u);
}

}  // namespace
}  // namespace opec_apps
