// Substrate tests: the FAT16-lite filesystem (host tooling + guest/host
// cross-validation) and the netstack-lite host framing.

#include <gtest/gtest.h>

#include "src/apps/guest/fat16_host.h"
#include "src/hw/devices/block_device.h"
#include "src/traffic/net_host.h"

namespace opec_apps {
namespace {

using namespace opec_traffic;  // NOLINT: the net framing helpers under test

TEST(Fat16Host, FormatMountRoundTrip) {
  opec_hw::BlockDevice disk("SD", 0x40012C00, 64);
  Fat16Host fs(disk);
  EXPECT_FALSE(fs.Mount());  // blank card
  fs.Format();
  EXPECT_TRUE(fs.Mount());
  EXPECT_TRUE(fs.ListFiles().empty());
}

TEST(Fat16Host, SingleFileRoundTrip) {
  opec_hw::BlockDevice disk("SD", 0x40012C00, 64);
  Fat16Host fs(disk);
  fs.Format();
  std::vector<uint8_t> content(300);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i);
  }
  fs.AddFile("DATA", content);
  std::vector<uint8_t> out;
  ASSERT_TRUE(fs.ReadFile("DATA", &out));
  EXPECT_EQ(out, content);
  EXPECT_FALSE(fs.ReadFile("NOPE", &out));
}

TEST(Fat16Host, MultiClusterChains) {
  opec_hw::BlockDevice disk("SD", 0x40012C00, 64);
  Fat16Host fs(disk);
  fs.Format();
  std::vector<uint8_t> big(512 * 3 + 100);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 7);
  }
  fs.AddFile("BIG", big);
  std::vector<uint8_t> out;
  ASSERT_TRUE(fs.ReadFile("BIG", &out));
  EXPECT_EQ(out.size(), big.size());
  EXPECT_EQ(out, big);
}

TEST(Fat16Host, MultipleFilesCoexist) {
  opec_hw::BlockDevice disk("SD", 0x40012C00, 128);
  Fat16Host fs(disk);
  fs.Format();
  for (int i = 0; i < 6; ++i) {
    std::vector<uint8_t> content(100 + static_cast<size_t>(i) * 200,
                                 static_cast<uint8_t>('a' + i));
    fs.AddFile("F" + std::to_string(i), content);
  }
  EXPECT_EQ(fs.ListFiles().size(), 6u);
  for (int i = 0; i < 6; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(fs.ReadFile("F" + std::to_string(i), &out)) << i;
    EXPECT_EQ(out.size(), 100u + static_cast<size_t>(i) * 200);
    EXPECT_EQ(out[0], static_cast<uint8_t>('a' + i));
  }
}

TEST(Fat16Host, NamePacking) {
  EXPECT_EQ(PackFatName("A"), 0x41u);
  EXPECT_EQ(PackFatName("AB"), 0x4241u);
  EXPECT_EQ(PackFatName("ABCD"), 0x44434241u);
  EXPECT_EQ(PackFatName("ABCDE"), PackFatName("ABCD"));  // truncated to 4
}

TEST(NetHost, ChecksumMatchesKnownProperties) {
  // A header with its own checksum inserted folds to 0xFFFF.
  TcpSegment seg;
  seg.flags = kTcpFlagSyn;
  std::vector<uint8_t> frame = BuildTcpFrame(seg);
  uint32_t sum = 0;
  for (size_t i = 14; i < 34; i += 2) {
    sum += static_cast<uint32_t>(frame[i] << 8) | frame[i + 1];
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  EXPECT_EQ(sum, 0xFFFFu);
}

TEST(NetHost, BuildParseRoundTrip) {
  TcpSegment seg;
  seg.src_port = 40123;
  seg.dst_port = kEchoPort;
  seg.seq = 0xAABBCCDD;
  seg.ack = 0x11223344;
  seg.flags = kTcpFlagPsh | kTcpFlagAck;
  seg.payload = {'h', 'e', 'l', 'l', 'o'};
  std::vector<uint8_t> frame = BuildTcpFrame(seg);
  TcpSegment parsed;
  ASSERT_TRUE(ParseTcpFrame(frame, &parsed));
  EXPECT_EQ(parsed.src_port, seg.src_port);
  EXPECT_EQ(parsed.dst_port, seg.dst_port);
  EXPECT_EQ(parsed.seq, seg.seq);
  EXPECT_EQ(parsed.ack, seg.ack);
  EXPECT_EQ(parsed.flags, seg.flags);
  EXPECT_EQ(parsed.payload, seg.payload);
}

TEST(NetHost, CorruptionsAreDetectable) {
  TcpSegment seg;
  seg.payload = {'x'};
  seg.flags = kTcpFlagAck;
  {
    FrameCorruption c;
    c.bad_ethertype = true;
    TcpSegment parsed;
    EXPECT_FALSE(ParseTcpFrame(BuildTcpFrame(seg, c), &parsed));
  }
  {
    FrameCorruption c;
    c.bad_protocol = true;
    TcpSegment parsed;
    EXPECT_FALSE(ParseTcpFrame(BuildTcpFrame(seg, c), &parsed));
  }
  {
    // A bad checksum still parses structurally but the checksum no longer
    // folds to 0xFFFF (which is what the guest validates).
    FrameCorruption c;
    c.bad_checksum = true;
    std::vector<uint8_t> frame = BuildTcpFrame(seg, c);
    uint32_t sum = 0;
    for (size_t i = 14; i < 34; i += 2) {
      sum += static_cast<uint32_t>(frame[i] << 8) | frame[i + 1];
    }
    while (sum >> 16) {
      sum = (sum & 0xFFFF) + (sum >> 16);
    }
    EXPECT_NE(sum, 0xFFFFu);
  }
}

}  // namespace
}  // namespace opec_apps
