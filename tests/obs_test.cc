// Observability-layer tests: ring-buffer wraparound, event ordering against
// modeled cycles, Chrome-trace / JSONL exporter well-formedness (golden +
// mini-parser validation), fault forensics on the denied PinLock attack, the
// Monitor::Stats-vs-event-stream agreement check on every app workload, and
// the zero-modeled-cost contract of attached sinks.

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/all_apps.h"
#include "src/apps/pinlock.h"
#include "src/apps/runner.h"
#include "src/monitor/monitor.h"
#include "src/obs/event.h"
#include "src/obs/export.h"
#include "src/obs/forensics.h"
#include "src/obs/profile.h"
#include "src/obs/recorder.h"

namespace opec_obs {
namespace {

using opec_apps::AppRun;
using opec_apps::BuildMode;
using opec_apps::PinLockApp;

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON validator (objects, arrays, strings,
// numbers, booleans, null), enough to prove exporter output is well-formed
// without a JSON dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Validate() {
    pos_ = 0;
    return Value() && (SkipWs(), pos_ == text_.size());
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        if (!String()) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return false;
        }
        ++pos_;
        if (!Value()) {
          return false;
        }
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '}') {
        return false;
      }
      ++pos_;
      return true;
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        if (!Value()) {
          return false;
        }
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ']') {
        return false;
      }
      ++pos_;
      return true;
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Counts events per kind and accumulates the kind-specific payloads the
// Monitor::Stats cross-check needs; O(1) memory on the long workloads.
class StatsSink : public Sink {
 public:
  void OnEvent(const Event& e) override {
    ++counts_[e.kind];
    switch (e.kind) {
      case EventKind::kShadowSync:
        synced_bytes_ += e.arg1;
        break;
      case EventKind::kMemFault:
        if ((e.arg2 & kFaultResolved) != 0) {
          ++resolved_mem_faults_;
        }
        break;
      case EventKind::kBusFault:
        if ((e.arg2 & kFaultResolved) != 0) {
          ++resolved_bus_faults_;
        }
        break;
      default:
        break;
    }
  }

  uint64_t count(EventKind kind) const {
    auto it = counts_.find(kind);
    return it == counts_.end() ? 0 : it->second;
  }
  uint64_t synced_bytes() const { return synced_bytes_; }
  uint64_t resolved_mem_faults() const { return resolved_mem_faults_; }
  uint64_t resolved_bus_faults() const { return resolved_bus_faults_; }

 private:
  std::map<EventKind, uint64_t> counts_;
  uint64_t synced_bytes_ = 0;
  uint64_t resolved_mem_faults_ = 0;
  uint64_t resolved_bus_faults_ = 0;
};

// ---------------------------------------------------------------------------

TEST(Recorder, RingBufferWraparound) {
  Recorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  for (uint32_t i = 0; i < 20; ++i) {
    rec.OnEvent(Event::Make(EventKind::kFunctionEnter, /*cycle=*/i, /*operation_id=*/-1,
                            /*depth=*/1, /*arg0=*/i));
  }
  EXPECT_EQ(rec.total(), 20u);
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  // Retained events are the 8 newest, oldest first.
  for (size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.at(i).arg0, 12u + i);
    EXPECT_EQ(rec.at(i).cycle, 12u + i);
  }
  std::vector<Event> snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().arg0, 12u);
  EXPECT_EQ(snap.back().arg0, 19u);

  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Recorder, BelowCapacityKeepsEverything) {
  Recorder rec(16);
  for (uint32_t i = 0; i < 5; ++i) {
    rec.OnEvent(Event::Make(EventKind::kSvc, i));
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.at(0).cycle, 0u);
  EXPECT_EQ(rec.at(4).cycle, 4u);
}

TEST(Hub, DispatchOnlyWhileAttached) {
  EXPECT_FALSE(Hub::active());
  Recorder rec(8);
  {
    ScopedSink attach(&rec);
    EXPECT_TRUE(Hub::active());
    OPEC_OBS_EVENT(EventKind::kSvc, 1);
  }
  EXPECT_FALSE(Hub::active());
  OPEC_OBS_EVENT(EventKind::kSvc, 2);  // no sink: must not be observed
  EXPECT_EQ(rec.total(), 1u);
  EXPECT_EQ(rec.at(0).cycle, 1u);
}

// Events must be emitted in modeled-cycle order: the stream is an observation
// of one single-threaded machine, so cycles never decrease.
TEST(EventStream, CyclesAreMonotonic) {
  PinLockApp app(3);
  AppRun run(app, BuildMode::kOpec);
  run.EnableEventRecording();
  ASSERT_TRUE(run.Execute().ok);
  ASSERT_NE(run.recorder(), nullptr);
  std::vector<Event> events = run.recorder()->Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(run.recorder()->dropped(), 0u) << "pinlock should fit in the default ring";
  uint64_t prev = 0;
  for (const Event& e : events) {
    EXPECT_GE(e.cycle, prev) << "event stream not in cycle order";
    prev = e.cycle;
  }
  // The stream contains the structural kinds an OPEC run must produce.
  StatsSink kinds;
  for (const Event& e : events) {
    kinds.OnEvent(e);
  }
  EXPECT_GT(kinds.count(EventKind::kFunctionEnter), 0u);
  EXPECT_GT(kinds.count(EventKind::kFunctionExit), 0u);
  EXPECT_GT(kinds.count(EventKind::kOperationEnter), 0u);
  EXPECT_GT(kinds.count(EventKind::kOperationExit), 0u);
  EXPECT_GT(kinds.count(EventKind::kSvc), 0u);
  EXPECT_GT(kinds.count(EventKind::kMpuReconfig), 0u);
  // Function enter/exit events balance on a completed run.
  EXPECT_EQ(kinds.count(EventKind::kFunctionEnter), kinds.count(EventKind::kFunctionExit));
  EXPECT_EQ(kinds.count(EventKind::kOperationEnter), kinds.count(EventKind::kOperationExit));
}

TEST(ChromeTrace, GoldenSmallStream) {
  std::vector<Event> events;
  events.push_back(Event::Make(EventKind::kFunctionEnter, 100, -1, 1, 0));
  events.push_back(Event::Make(EventKind::kMemFault, 120, Event::kNoOperation, 1, 0x20000000u,
                               4, kFaultWrite));
  events.push_back(Event::Make(EventKind::kFunctionExit, 150, -1, 1, 0));
  Naming naming;
  naming.functions = {"main"};
  std::string json = ChromeTraceJson(events, naming, "golden");

  const std::string expected =
      "{\n"
      "  \"traceEvents\": [\n"
      "    {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"golden\"}},\n"
      "    {\"ph\":\"B\",\"pid\":0,\"tid\":1,\"ts\":100,\"name\":\"main\"},\n"
      "    {\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":120,\"name\":\"MemFault 0x20000000\","
      "\"s\":\"t\",\"args\":{\"size\":4,\"write\":true,\"resolved\":false,"
      "\"attack\":false}},\n"
      "    {\"ph\":\"E\",\"pid\":0,\"tid\":1,\"ts\":150,\"name\":\"main\"},\n"
      "    {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"ts\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"operation default\"}},\n"
      "    {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"ts\":0,\"name\":\"thread_sort_index\","
      "\"args\":{\"sort_index\":1}}\n"
      "  ],\n"
      "  \"displayTimeUnit\": \"ms\",\n"
      "  \"otherData\": {\"generator\": \"opec-obs\", \"time_unit\": \"modeled cycles\", "
      "\"dropped_events\": 0}\n"
      "}\n";
  EXPECT_EQ(json, expected);
  EXPECT_TRUE(JsonValidator(json).Validate());
}

// A Recorder that wrapped must not export a trace that looks complete: both
// exporters surface the drop count. This failed before the exporters learned
// about Recorder::dropped() — the truncated stream serialized with no marker.
TEST(ChromeTrace, DroppedEventsSurfaceInExports) {
  Recorder rec(4);
  for (uint32_t i = 0; i < 10; ++i) {
    rec.OnEvent(Event::Make(EventKind::kSvc, /*cycle=*/i));
  }
  ASSERT_EQ(rec.dropped(), 6u);
  Naming naming;
  std::string json = ChromeTraceJson(rec.Snapshot(), naming, "wrapped", rec.dropped());
  EXPECT_NE(json.find("\"dropped_events\": 6"), std::string::npos) << json;
  EXPECT_TRUE(JsonValidator(json).Validate());

  std::string jsonl = JsonLines(rec.Snapshot(), naming, rec.dropped());
  std::istringstream in(jsonl);
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first, "{\"header\":\"opec-obs\",\"dropped_events\":6}");
  EXPECT_TRUE(JsonValidator(first).Validate());
  // A lossless stream emits no header line: existing consumers see only events.
  std::string clean = JsonLines(rec.Snapshot(), naming, 0);
  EXPECT_EQ(clean.find("header"), std::string::npos);
}

TEST(ChromeTrace, PinLockTraceIsWellFormed) {
  PinLockApp app(3);
  AppRun run(app, BuildMode::kOpec);
  run.EnableEventRecording();
  ASSERT_TRUE(run.Execute().ok);
  std::vector<Event> events = run.recorder()->Snapshot();
  Naming naming = run.EventNaming();
  std::string json = ChromeTraceJson(events, naming, "PinLock");
  EXPECT_TRUE(JsonValidator(json).Validate()) << "Chrome trace JSON is malformed";
  // Structural markers Perfetto relies on.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("op:"), std::string::npos) << "operations should render as slices";
}

TEST(JsonLinesExport, EveryLineIsAJsonObject) {
  PinLockApp app(3);
  AppRun run(app, BuildMode::kOpec);
  run.EnableEventRecording();
  ASSERT_TRUE(run.Execute().ok);
  std::vector<Event> events = run.recorder()->Snapshot();
  std::string jsonl = JsonLines(events, run.EventNaming());
  std::istringstream in(jsonl);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(JsonValidator(line).Validate()) << "bad JSONL line: " << line;
    EXPECT_EQ(line.front(), '{');
    ++lines;
  }
  EXPECT_EQ(lines, events.size());
}

// The Section 6.1 exploit, observed: the denied KEY overwrite must leave a
// fully populated forensic report.
TEST(FaultForensics, DeniedPinlockAttackProducesReport) {
  PinLockApp app(3);
  AppRun run(app, BuildMode::kOpec);
  const opec_compiler::Policy& policy = run.compile()->policy;
  int key_index = policy.FindExternalIndex(run.module().FindGlobal("KEY"));
  ASSERT_GE(key_index, 0);
  uint32_t key_addr = policy.externals[static_cast<size_t>(key_index)].public_addr;

  opec_rt::AttackSpec attack;
  attack.function = "HAL_UART_Receive_IT";
  attack.occurrence = 2;
  attack.addr = key_addr;
  attack.value = 0xDEADBEEF;
  run.AddAttack(attack);

  run.EnableEventRecording();
  opec_rt::RunResult r = run.Execute();
  ASSERT_TRUE(r.ok) << r.violation;
  ASSERT_TRUE(run.engine().attacks()[0].blocked);

  const std::vector<FaultReport>& reports = run.engine().fault_reports();
  ASSERT_EQ(reports.size(), 1u);
  const FaultReport& report = reports[0];
  EXPECT_TRUE(report.attack);
  EXPECT_TRUE(report.write);
  EXPECT_FALSE(report.privileged) << "exploited code runs unprivileged under OPEC";
  EXPECT_EQ(report.addr, key_addr);
  EXPECT_EQ(report.size, 4u);
  EXPECT_EQ(report.function, "HAL_UART_Receive_IT");
  EXPECT_GE(report.operation_id, 0) << "attack fires inside an operation";
  EXPECT_GT(report.depth, 0);
  EXPECT_GT(report.cycle, 0u);
  EXPECT_FALSE(report.deny_reason.empty());
  if (!report.bus_fault) {
    EXPECT_EQ(report.mpu_regions.size(),
              static_cast<size_t>(opec_hw::Mpu::kNumRegions));
  }
  std::string rendered = report.Render();
  EXPECT_NE(rendered.find("forensic report"), std::string::npos);
  EXPECT_NE(rendered.find("HAL_UART_Receive_IT"), std::string::npos);
  EXPECT_NE(rendered.find("injected attack write"), std::string::npos);
  // The recorded stream carries the matching fault instant.
  bool saw_attack_fault = false;
  for (const Event& e : run.recorder()->Snapshot()) {
    if ((e.kind == EventKind::kMemFault || e.kind == EventKind::kBusFault) &&
        (e.arg2 & kFaultAttack) != 0) {
      EXPECT_EQ(e.arg0, key_addr);
      saw_attack_fault = true;
    }
  }
  EXPECT_TRUE(saw_attack_fault);
}

// Satellite: the hand-incremented Monitor::Stats counters and the observed
// event stream must agree on every app workload — any drift means a counter
// was bumped without the matching event (or vice versa).
TEST(MonitorStatsAgreement, AllAppWorkloads) {
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    AppRun run(*app, BuildMode::kOpec);
    StatsSink sink;
    run.AttachSink(&sink);
    uint64_t config_writes_before = run.machine().mpu().config_writes();
    opec_rt::RunResult r = run.Execute();
    ASSERT_TRUE(r.ok) << factory.name << ": " << r.violation;
    const opec_monitor::MonitorStats& stats = run.monitor()->stats();

    EXPECT_EQ(stats.operation_switches, sink.count(EventKind::kOperationEnter) +
                                            sink.count(EventKind::kOperationExit))
        << factory.name;
    EXPECT_EQ(stats.synced_bytes, sink.synced_bytes()) << factory.name;
    EXPECT_EQ(stats.virtualization_faults, sink.resolved_mem_faults()) << factory.name;
    EXPECT_EQ(stats.emulated_core_accesses, sink.resolved_bus_faults()) << factory.name;
    // Every MPU reconfiguration during the observed window emitted one event.
    EXPECT_EQ(run.machine().mpu().config_writes() - config_writes_before,
              sink.count(EventKind::kMpuReconfig))
        << factory.name;
    // Each operation switch is SVC-mediated.
    EXPECT_EQ(sink.count(EventKind::kSvc), stats.operation_switches) << factory.name;
  }
}

// Acceptance: the per-operation profile table renders for every app workload.
TEST(Profiler, TableRendersForAllAppWorkloads) {
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    AppRun run(*app, BuildMode::kOpec);
    run.EnableEventRecording();
    ASSERT_TRUE(run.Execute().ok) << factory.name;
    std::vector<OperationProfile> profiles =
        AggregateProfiles(run.recorder()->Snapshot());
    ASSERT_FALSE(profiles.empty()) << factory.name;
    std::string table = RenderProfileTable(profiles, run.EventNaming());
    EXPECT_FALSE(table.empty()) << factory.name;
    EXPECT_NE(table.find("Operation"), std::string::npos) << factory.name;
    // Cycle attribution never exceeds the run: the per-operation sum is
    // bounded by the modeled cycle of the last event.
    uint64_t total = 0;
    for (const OperationProfile& p : profiles) {
      total += p.cycles;
    }
    uint64_t last_cycle = run.recorder()->Snapshot().back().cycle;
    EXPECT_LE(total, last_cycle) << factory.name;
  }
}

// The zero-modeled-cost contract, at unit level: an attached sink must not
// change cycles or statements.
TEST(Overhead, AttachedSinkLeavesModeledOutputsIdentical) {
  PinLockApp app(3);
  uint64_t cycles_plain = 0;
  uint64_t statements_plain = 0;
  {
    AppRun run(app, BuildMode::kOpec);
    opec_rt::RunResult r = run.Execute();
    ASSERT_TRUE(r.ok);
    cycles_plain = r.cycles;
    statements_plain = r.statements;
  }
  {
    AppRun run(app, BuildMode::kOpec);
    run.EnableEventRecording();
    StatsSink sink;
    run.AttachSink(&sink);
    opec_rt::RunResult r = run.Execute();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.cycles, cycles_plain);
    EXPECT_EQ(r.statements, statements_plain);
    EXPECT_GT(run.recorder()->total(), 0u);
  }
}

// Every EventKind has a real name: adding a kind without naming it would
// break every exporter and the RV reports at once. kNumEventKinds in
// src/rv/automaton.h static_asserts the enum width; this pins the names.
TEST(EventKinds, EveryKindHasAUniqueName) {
  constexpr EventKind kAll[] = {
      EventKind::kFunctionEnter, EventKind::kFunctionExit, EventKind::kOperationEnter,
      EventKind::kOperationExit, EventKind::kSvc,           EventKind::kMpuReconfig,
      EventKind::kMemFault,      EventKind::kBusFault,      EventKind::kMmioAccess,
      EventKind::kShadowSync,
  };
  ASSERT_EQ(sizeof(kAll) / sizeof(kAll[0]), 10u);
  std::set<std::string> names;
  for (EventKind kind : kAll) {
    std::string name = EventKindName(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find('?'), std::string::npos) << "placeholder name for kind "
                                                 << static_cast<int>(kind);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), 10u);
}

// Coverage: every event kind is actually emitted by some app workload on both
// engines — a kind nothing emits is dead weight in the monitors and a kind
// only one engine emits is a tier divergence waiting to happen.
TEST(EventKinds, EveryKindIsEmittedBySomeWorkloadOnBothEngines) {
  for (opec_apps::EngineKind engine :
       {opec_apps::EngineKind::kInterp, opec_apps::EngineKind::kBytecode}) {
    std::set<EventKind> seen;
    class KindSink : public Sink {
     public:
      explicit KindSink(std::set<EventKind>* seen) : seen_(seen) {}
      void OnEvent(const Event& e) override { seen_->insert(e.kind); }

     private:
      std::set<EventKind>* seen_;
    } sink(&seen);

    for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
      std::unique_ptr<opec_apps::Application> app = factory.make();
      for (BuildMode mode : {BuildMode::kVanilla, BuildMode::kOpec}) {
        AppRun run(*app, mode, engine);
        run.AttachSink(&sink);
        ASSERT_TRUE(run.Execute().ok) << factory.name;
      }
    }
    // The clean scenarios never fault; a blocked cross-section write covers
    // kMemFault and a write to an unmapped address covers kBusFault.
    {
      PinLockApp app(2);
      AppRun run(app, BuildMode::kOpec, engine);
      const opec_compiler::Policy& policy = run.compile()->policy;
      const opec_compiler::OperationPolicy* attacker = nullptr;
      const opec_compiler::OperationPolicy* victim = nullptr;
      for (const auto& op : policy.operations) {
        if (op.id != policy.default_op_id && attacker == nullptr) {
          attacker = &op;
        } else if (op.has_section && attacker != nullptr && op.id != attacker->id) {
          victim = &op;
        }
      }
      ASSERT_NE(attacker, nullptr);
      ASSERT_NE(victim, nullptr);
      opec_rt::AttackSpec mem_attack;
      mem_attack.function = attacker->entry;
      mem_attack.addr = victim->section_base;
      mem_attack.value = 0x41414141;
      run.AddAttack(mem_attack);
      opec_rt::AttackSpec bus_attack;
      bus_attack.function = attacker->entry;
      bus_attack.occurrence = 2;
      bus_attack.addr = 0xF0000000u;  // outside every mapped range
      bus_attack.value = 1;
      run.AddAttack(bus_attack);
      run.AttachSink(&sink);
      ASSERT_TRUE(run.Execute().ok);
    }

    EXPECT_EQ(seen.size(), 10u)
        << "engine " << opec_apps::EngineKindName(engine) << " covered only "
        << seen.size() << " of 10 event kinds";
  }
}

// The rebased ExecutionTrace consumes the same event stream.
TEST(ExecutionTraceSink, ReconstructsFunctionLog) {
  PinLockApp app(3);
  AppRun run(app, BuildMode::kOpec);
  run.EnableTrace();
  ASSERT_TRUE(run.Execute().ok);
  const opec_rt::ExecutionTrace& trace = run.trace();
  ASSERT_FALSE(trace.events().empty());
  EXPECT_GT(trace.executed_count(), 0u);
  const opec_ir::Function* main_fn = run.module().FindFunction("main");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_TRUE(trace.WasExecuted(main_fn));
  EXPECT_EQ(trace.events().front().fn, main_fn);
  // Cycle stamps inherited from the event stream are monotonic.
  uint64_t prev = 0;
  for (const opec_rt::TraceEvent& te : trace.events()) {
    EXPECT_GE(te.cycle, prev);
    prev = te.cycle;
  }
}

}  // namespace
}  // namespace opec_obs
