// ACES baseline and over-privilege metric tests.

#include <gtest/gtest.h>

#include "bench/aces_util.h"
#include "src/aces/aces.h"
#include "src/apps/pinlock.h"
#include "src/apps/runner.h"
#include "src/metrics/over_privilege.h"
#include "src/metrics/report.h"

namespace opec_aces {
namespace {

struct AcesFixture {
  AcesFixture() {
    opec_apps::PinLockApp app(1);
    module = app.BuildModule();
    soc = app.Soc();
    pta = std::make_unique<opec_analysis::PointsToAnalysis>(*module);
    cg = std::make_unique<opec_analysis::CallGraph>(
        opec_analysis::CallGraph::Build(*module, *pta));
    resources = opec_analysis::ResourceAnalysis::Run(*module, *pta, soc);
  }
  AcesResult Partition(AcesStrategy s) {
    return PartitionAces(*module, *cg, resources, soc, s);
  }
  std::unique_ptr<opec_ir::Module> module;
  opec_hw::SocDescription soc;
  std::unique_ptr<opec_analysis::PointsToAnalysis> pta;
  std::unique_ptr<opec_analysis::CallGraph> cg;
  std::map<const opec_ir::Function*, opec_analysis::FunctionResources> resources;
};

TEST(Aces, FilenameStrategyGroupsBySourceFile) {
  AcesFixture f;
  AcesResult result = f.Partition(AcesStrategy::kFilenameNoOpt);
  // PinLock has files: system.c uart.c hal_uart.c hash.c key.c lock.c
  // alarm.c main.c -> 8 compartments.
  EXPECT_EQ(result.compartments.size(), 8u);
  // Every function is assigned to exactly one compartment.
  for (const auto& fn : f.module->functions()) {
    EXPECT_GE(result.CompartmentOf(fn.get()), 0) << fn->name();
  }
}

TEST(Aces, OptimizationMergesCompartments) {
  AcesFixture f;
  AcesResult noopt = f.Partition(AcesStrategy::kFilenameNoOpt);
  AcesResult opt = f.Partition(AcesStrategy::kFilename);
  EXPECT_LT(opt.compartments.size(), noopt.compartments.size());
}

TEST(Aces, PeripheralStrategyGroupsByPeripheral) {
  AcesFixture f;
  AcesResult result = f.Partition(AcesStrategy::kPeripheral);
  // do_lock/do_unlock (GPIOA+USART2) must share a compartment distinct from
  // uart-only functions.
  int lock_c = result.CompartmentOf(f.module->FindFunction("do_lock"));
  int unlock_c = result.CompartmentOf(f.module->FindFunction("do_unlock"));
  EXPECT_EQ(lock_c, unlock_c);
}

TEST(Aces, CorePeripheralCompartmentsAreLifted) {
  AcesFixture f;
  AcesResult result = f.Partition(AcesStrategy::kFilenameNoOpt);
  // main reads DWT (core peripheral) -> its compartment runs privileged.
  int main_c = result.CompartmentOf(f.module->FindFunction("main"));
  EXPECT_TRUE(result.compartments[static_cast<size_t>(main_c)].privileged);
  // hash.c touches no core peripheral -> unprivileged.
  int hash_c = result.CompartmentOf(f.module->FindFunction("hash"));
  EXPECT_FALSE(result.compartments[static_cast<size_t>(hash_c)].privileged);
}

TEST(Aces, RegionBudgetForcesOverPrivilege) {
  AcesFixture f;
  AcesResult result = f.Partition(AcesStrategy::kFilenameNoOpt);
  // Accessible must always include needed...
  for (const Compartment& c : result.compartments) {
    for (const opec_ir::GlobalVariable* gv : c.needed_globals) {
      EXPECT_EQ(c.accessible_globals.count(gv), 1u) << c.name;
    }
  }
  // ...and at least one compartment got more than it needs (PinLock's shared
  // variables under a 2-region budget).
  bool over_privileged = false;
  for (const Compartment& c : result.compartments) {
    over_privileged |= c.accessible_globals.size() > c.needed_globals.size();
  }
  EXPECT_TRUE(over_privileged);
  // No compartment exceeds the region budget.
  for (const Compartment& c : result.compartments) {
    int regions = 0;
    for (const DataRegion& r : result.regions) {
      regions += r.compartments.count(c.id) > 0 ? 1 : 0;
    }
    EXPECT_LE(regions, kDataRegionBudget) << c.name;
  }
}

TEST(Aces, CaseStudyKeyReachableFromSomeCompartmentThatDoesNotNeedIt) {
  // The Section 6.1 contrast: under ACES's merged regions, compartments that
  // do not need KEY can nevertheless access it. (Under filename grouping
  // Lock_Task shares a compartment with Unlock_Task, which does need KEY, so
  // the over-privilege shows up in the surrounding compartments — e.g. the
  // HAL receive path, which is exactly where the exploited bug lives.)
  AcesFixture f;
  AcesResult result = f.Partition(AcesStrategy::kFilenameNoOpt);
  const opec_ir::GlobalVariable* key = f.module->FindGlobal("KEY");
  bool over_privileged_on_key = false;
  for (const Compartment& c : result.compartments) {
    if (c.needed_globals.count(key) == 0 && c.accessible_globals.count(key) == 1) {
      over_privileged_on_key = true;
    }
  }
  EXPECT_TRUE(over_privileged_on_key)
      << "region merging should expose KEY to a compartment that does not need it";
}

TEST(Metrics, PtEquation) {
  // Craft a compartment: accessible 100 bytes, 30 unneeded -> PT = 0.3.
  opec_metrics::DomainPt d;
  d.accessible_bytes = 100;
  d.unneeded_bytes = 30;
  EXPECT_DOUBLE_EQ(d.pt(), 0.3);
  opec_metrics::DomainPt empty;
  EXPECT_DOUBLE_EQ(empty.pt(), 0.0);
}

TEST(Metrics, EtEquation) {
  opec_metrics::TaskEt t;
  t.used_bytes = 60;
  t.needed_bytes = 100;
  EXPECT_DOUBLE_EQ(t.et(), 0.4);
  opec_metrics::TaskEt zero;
  EXPECT_DOUBLE_EQ(zero.et(), 0.0);
}

TEST(Metrics, OpecPtIsZeroByConstruction) {
  opec_apps::PinLockApp app(1);
  opec_apps::AppRun run(app, opec_apps::BuildMode::kOpec);
  auto pts = opec_metrics::ComputeOpecPt(run.compile()->policy);
  ASSERT_FALSE(pts.empty());
  for (const auto& d : pts) {
    EXPECT_DOUBLE_EQ(d.pt(), 0.0) << d.domain;
  }
}

TEST(Metrics, AcesPtIsPositiveForMergedRegions) {
  AcesFixture f;
  AcesResult result = f.Partition(AcesStrategy::kFilenameNoOpt);
  auto pts = opec_metrics::ComputeAcesPt(result);
  double max_pt = 0;
  for (const auto& d : pts) {
    max_pt = std::max(max_pt, d.pt());
  }
  EXPECT_GT(max_pt, 0.0);
}

TEST(Metrics, CdfIsMonotonic) {
  auto cdf = opec_metrics::Cdf({0.5, 0.1, 0.9, 0.1});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 0.1);
  EXPECT_DOUBLE_EQ(cdf.back().first, 0.9);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(Metrics, TableRendersAlignedColumns) {
  opec_metrics::Table table({"A", "Long header"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| A "), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_EQ(opec_metrics::Pct(0.0123), "1.23");
  EXPECT_EQ(opec_metrics::Num(1.005, 1), "1.0");
}

TEST(Aces, RuntimeCountsCompartmentSwitches) {
  opec_apps::PinLockApp app(2);
  auto module = app.BuildModule();
  opec_hw::SocDescription soc = app.Soc();
  opec_analysis::PointsToAnalysis pta(*module);
  auto cg = opec_analysis::CallGraph::Build(*module, pta);
  auto resources = opec_analysis::ResourceAnalysis::Run(*module, pta, soc);
  AcesResult partition = PartitionAces(*module, cg, resources, soc,
                                       AcesStrategy::kFilenameNoOpt);

  opec_hw::Machine machine(app.board());
  auto devices = app.CreateDevices(machine);
  opec_compiler::VanillaImage image =
      opec_compiler::BuildVanillaImage(*module, app.board());
  opec_compiler::LoadGlobals(machine, *module, image.layout);
  AcesRuntime runtime(machine, partition);
  opec_rt::ExecutionEngine engine(machine, *module, image.layout, &runtime);
  app.PrepareScenario(*devices);
  opec_rt::RunResult r = engine.Run("main");
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(app.CheckScenario(*devices, r), "");
  // File-granularity partitioning switches on the hot path: far more often
  // than OPEC's operation entries/exits.
  EXPECT_GT(runtime.compartment_switches(), 50u);
}

// The partition holds Function*/GlobalVariable* into the module it was built
// from; AcesRunResult must keep that module alive past the call, or consumers
// like ComputeAcesPt (Figure 10) dereference freed memory.
TEST(Aces, RunUnderAcesKeepsPartitionPointersValid) {
  opec_apps::PinLockApp app(2);
  opec_bench::AcesRunResult aces =
      opec_bench::RunUnderAces(app, AcesStrategy::kFilenameNoOpt);
  ASSERT_NE(aces.module, nullptr);

  std::set<const opec_ir::GlobalVariable*> owned;
  for (const auto& g : aces.module->globals()) {
    owned.insert(g.get());
  }
  std::set<const opec_ir::Function*> owned_fns;
  for (const auto& f : aces.module->functions()) {
    owned_fns.insert(f.get());
  }
  for (const Compartment& c : aces.partition.compartments) {
    for (const opec_ir::GlobalVariable* gv : c.needed_globals) {
      EXPECT_TRUE(owned.count(gv)) << "dangling needed_globals entry";
    }
    for (const opec_ir::GlobalVariable* gv : c.accessible_globals) {
      EXPECT_TRUE(owned.count(gv)) << "dangling accessible_globals entry";
    }
    for (const opec_ir::Function* fn : c.functions) {
      EXPECT_TRUE(owned_fns.count(fn)) << "dangling compartment function";
    }
  }
  for (const DataRegion& r : aces.partition.regions) {
    for (const opec_ir::GlobalVariable* gv : r.vars) {
      EXPECT_TRUE(owned.count(gv)) << "dangling region var";
    }
  }
  // And the over-privilege metric computed from the returned struct is
  // well-defined: accessible ⊇ needed per compartment implies PT ∈ [0, 1].
  for (const opec_metrics::DomainPt& d :
       opec_metrics::ComputeAcesPt(aces.partition)) {
    EXPECT_GE(d.pt(), 0.0);
    EXPECT_LE(d.pt(), 1.0);
    EXPECT_LE(d.unneeded_bytes, d.accessible_bytes);
  }
}

}  // namespace
}  // namespace opec_aces
