// Security property tests across all applications: the threat-model attacks
// of Section 3.3 must be contained by OPEC on every workload.

#include <gtest/gtest.h>

#include "src/apps/all_apps.h"
#include "src/apps/pinlock.h"
#include "src/apps/runner.h"
#include "src/hw/address_map.h"

namespace opec_apps {
namespace {

// For every app: a compromised operation entry cannot write another
// operation's data section.
TEST(SecurityProperties, CrossSectionWritesAreBlockedEverywhere) {
  for (const AppFactory& factory : AllApps()) {
    std::unique_ptr<Application> app = factory.make();
    AppRun run(*app, BuildMode::kOpec);
    const opec_compiler::Policy& policy = run.compile()->policy;

    // Pick an attacking operation (the first non-default entry) and a victim
    // section belonging to a different operation.
    const opec_compiler::OperationPolicy* attacker = nullptr;
    const opec_compiler::OperationPolicy* victim = nullptr;
    for (const auto& op : policy.operations) {
      if (op.id != policy.default_op_id && attacker == nullptr) {
        attacker = &op;
      } else if (op.has_section && attacker != nullptr && op.id != attacker->id) {
        victim = &op;
      }
    }
    if (attacker == nullptr || victim == nullptr) {
      continue;
    }
    opec_rt::AttackSpec attack;
    attack.function = attacker->entry;
    attack.addr = victim->section_base;
    attack.value = 0x41414141;
    run.AddAttack(attack);
    opec_rt::RunResult r = run.Execute();
    ASSERT_TRUE(r.ok) << factory.name << ": " << r.violation;
    if (run.engine().attacks()[0].fired) {
      EXPECT_TRUE(run.engine().attacks()[0].blocked)
          << factory.name << ": write into " << victim->name << "'s section landed";
    }
  }
}

// Writes to the relocation table (which the monitor owns) must be blocked —
// otherwise a compromised operation could repoint shared variables.
TEST(SecurityProperties, RelocationTableIsNotWritableFromOperations) {
  PinLockApp app(2);
  AppRun run(app, BuildMode::kOpec);
  const opec_compiler::Policy& policy = run.compile()->policy;
  ASSERT_FALSE(policy.externals.empty());
  opec_rt::AttackSpec attack;
  attack.function = "Unlock_Task";
  attack.addr = policy.externals[0].reloc_entry_addr;
  attack.value = 0x20000000;  // would repoint the shared variable
  run.AddAttack(attack);
  opec_rt::RunResult r = run.Execute();
  ASSERT_TRUE(r.ok) << r.violation;
  ASSERT_TRUE(run.engine().attacks()[0].fired);
  EXPECT_TRUE(run.engine().attacks()[0].blocked);
  EXPECT_EQ(run.Check(), "");
}

// The public copies of shared variables are monitor-owned too.
TEST(SecurityProperties, PublicCopiesAreNotWritableFromOperations) {
  PinLockApp app(2);
  AppRun run(app, BuildMode::kOpec);
  const opec_compiler::Policy& policy = run.compile()->policy;
  int key_index = policy.FindExternalIndex(run.module().FindGlobal("KEY"));
  ASSERT_GE(key_index, 0);
  opec_rt::AttackSpec attack;
  attack.function = "Lock_Task";
  attack.addr = policy.externals[static_cast<size_t>(key_index)].public_addr;
  attack.value = 0;
  run.AddAttack(attack);
  opec_rt::RunResult r = run.Execute();
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(run.engine().attacks()[0].blocked);
}

// Unprivileged code cannot write core peripherals directly, even in the
// operation that is allowed to access them (the monitor emulates instead).
TEST(SecurityProperties, MonitorMediatesCorePeripherals) {
  PinLockApp app(1);
  AppRun run(app, BuildMode::kOpec);
  opec_rt::RunResult r = run.Execute();
  ASSERT_TRUE(r.ok) << r.violation;
  // DWT reads happened (main profiles itself) and all were emulated.
  EXPECT_GT(run.monitor()->stats().emulated_core_accesses, 0u);
  // The machine ends the run unprivileged application-side.
  EXPECT_TRUE(run.machine().privileged());  // restored by OnProgramEnd
}

// Without OPEC, every attack in the matrix lands (no isolation): sanity-check
// the threat model itself.
TEST(SecurityProperties, VanillaHasNoIsolation) {
  PinLockApp app(1);
  AppRun run(app, BuildMode::kVanilla);
  const opec_ir::GlobalVariable* key = run.module().FindGlobal("KEY");
  opec_rt::AttackSpec attack;
  attack.function = "Lock_Task";
  attack.addr = run.engine().layout().AddrOf(key);
  attack.value = 0xBAD;
  run.AddAttack(attack);
  opec_rt::RunResult r = run.Execute();
  ASSERT_TRUE(r.ok) << r.violation;
  ASSERT_TRUE(run.engine().attacks()[0].fired);
  EXPECT_FALSE(run.engine().attacks()[0].blocked);
}

// Sanitization catches corrupted safety-critical values even when the write
// lands inside the compromised operation's own section.
TEST(SecurityProperties, SanitizationStopsCorruptShadows) {
  PinLockApp app(2);
  AppRun run(app, BuildMode::kOpec);
  const opec_compiler::Policy& policy = run.compile()->policy;
  int lock_state = policy.FindExternalIndex(run.module().FindGlobal("lock_state"));
  ASSERT_GE(lock_state, 0);
  // Find Unlock_Task's own shadow of lock_state: a write there is INSIDE the
  // attacker's section, so the MPU allows it — the sanitizer must catch it.
  const opec_compiler::OperationPolicy* op = policy.FindOperationByEntry("Unlock_Task");
  ASSERT_NE(op, nullptr);
  uint32_t shadow_addr = 0;
  for (const auto& sp : op->shadows) {
    if (sp.var_index == lock_state) {
      shadow_addr = sp.addr;
    }
  }
  ASSERT_NE(shadow_addr, 0u);
  opec_rt::AttackSpec attack;
  // uart_send call #3 (after Init_Lock's "LK" and the round-1 prompt) is the
  // "OK" transmission inside do_unlock, AFTER lock_state was legitimately
  // written — so the corrupted value survives until the operation switch.
  attack.function = "uart_send";
  attack.occurrence = 3;
  attack.addr = shadow_addr;
  attack.value = 77;  // outside the [0,1] sanitize range
  run.AddAttack(attack);
  opec_rt::RunResult r = run.Execute();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("sanitization"), std::string::npos) << r.violation;
}

}  // namespace
}  // namespace opec_apps
