// Tests for the bus (routing, PPB privilege rules, fault surfaces) and the
// memory-mapped device models.

#include <gtest/gtest.h>

#include "src/hw/address_map.h"
#include "src/hw/devices/block_device.h"
#include "src/hw/devices/camera.h"
#include "src/hw/devices/ethernet.h"
#include "src/hw/devices/gpio.h"
#include "src/hw/devices/lcd.h"
#include "src/hw/devices/rcc.h"
#include "src/hw/devices/uart.h"
#include "src/hw/machine.h"

namespace opec_hw {
namespace {

TEST(Bus, SramReadWriteRoundTrip) {
  Machine machine(Board::kStm32F4Discovery);
  AccessResult w = machine.bus().Write(kSramBase + 0x100, 4, 0xDEADBEEF, true);
  EXPECT_TRUE(w.ok());
  AccessResult r = machine.bus().Read(kSramBase + 0x100, 4, true);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 0xDEADBEEFu);
  // Sub-word access sees little-endian bytes.
  EXPECT_EQ(machine.bus().Read(kSramBase + 0x100, 1, true).value, 0xEFu);
  EXPECT_EQ(machine.bus().Read(kSramBase + 0x103, 1, true).value, 0xDEu);
}

TEST(Bus, FlashIsNotWritableAtRuntime) {
  Machine machine(Board::kStm32F4Discovery);
  EXPECT_EQ(machine.bus().Write(kFlashBase + 0x10, 4, 1, true).status, AccessStatus::kBusFault);
  // But readable (erased flash reads 0xFF).
  EXPECT_EQ(machine.bus().Read(kFlashBase + 0x10, 1, true).value, 0xFFu);
}

TEST(Bus, UnmappedAddressFaults) {
  Machine machine(Board::kStm32F4Discovery);
  EXPECT_EQ(machine.bus().Read(0x70000000, 4, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Read(0x00000000, 4, true).status, AccessStatus::kBusFault);
}

TEST(Bus, PpbIsPrivilegedOnlyRegardlessOfMpu) {
  Machine machine(Board::kStm32F4Discovery);
  machine.mpu().set_enabled(false);  // even with the MPU off
  EXPECT_EQ(machine.bus().Read(kDwtCyccnt, 4, false).status, AccessStatus::kBusFault);
  EXPECT_TRUE(machine.bus().Read(kDwtCyccnt, 4, true).ok());
}

TEST(Bus, DwtCyccntTracksMachineCycles) {
  Machine machine(Board::kStm32F4Discovery);
  machine.AddCycles(12345);
  EXPECT_EQ(machine.bus().Read(kDwtCyccnt, 4, true).value, 12345u);
}

TEST(Bus, DebugAccessBypassesProtection) {
  Machine machine(Board::kStm32F4Discovery);
  machine.mpu().set_enabled(true);  // background map blocks unpriv everything
  EXPECT_TRUE(machine.bus().DebugWrite(kSramBase, 4, 42));
  uint32_t v = 0;
  EXPECT_TRUE(machine.bus().DebugRead(kSramBase, 4, &v));
  EXPECT_EQ(v, 42u);
  machine.bus().DebugWriteBytes(kFlashBase, {1, 2, 3});
  EXPECT_EQ(machine.bus().DebugReadBytes(kFlashBase, 3), (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Bus, DeviceRangeOverlapIsRejected) {
  Machine machine(Board::kStm32F4Discovery);
  Uart a("U1", kUsart1Base);
  Uart b("U2", kUsart1Base + 0x100);  // overlaps
  machine.bus().AttachDevice(&a);
  EXPECT_DEATH(machine.bus().AttachDevice(&b), "overlap");
}

TEST(Uart, RxFifoAndTxLog) {
  Machine machine(Board::kStm32F4Discovery);
  Uart uart("USART2", kUsart2Base);
  machine.bus().AttachDevice(&uart);
  // No data: SR.RXNE clear.
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x00, 4, true).value & 1u, 0u);
  uart.PushRxString("hi");
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x00, 4, true).value & 1u, 1u);
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x04, 4, true).value, uint32_t('h'));
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x04, 4, true).value, uint32_t('i'));
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x00, 4, true).value & 1u, 0u);
  // Transmit.
  machine.bus().Write(kUsart2Base + 0x04, 4, 'o', true);
  machine.bus().Write(kUsart2Base + 0x04, 4, 'k', true);
  EXPECT_EQ(uart.TxString(), "ok");
  // Byte latency was charged.
  EXPECT_GT(machine.cycles(), 4 * Uart::kCyclesPerByte - 1);
}

TEST(Gpio, OutputHistoryAndInput) {
  Machine machine(Board::kStm32F4Discovery);
  Gpio gpio("GPIOA", kGpioABase);
  machine.bus().AttachDevice(&gpio);
  machine.bus().Write(kGpioABase + 0x00, 4, 1, true);  // MODER
  EXPECT_TRUE(gpio.configured());
  machine.bus().Write(kGpioABase + 0x14, 4, 1, true);
  machine.bus().Write(kGpioABase + 0x14, 4, 0, true);
  EXPECT_EQ(gpio.odr_history(), (std::vector<uint32_t>{1, 0}));
  gpio.SetInput(0x5);
  EXPECT_EQ(machine.bus().Read(kGpioABase + 0x10, 4, true).value, 0x5u);
}

TEST(BlockDevice, SectorReadWriteThroughPio) {
  Machine machine(Board::kStm32479iEval);
  BlockDevice sd("SDIO", kSdioBase, 8);
  machine.bus().AttachDevice(&sd);
  // Write sector 3 through the PIO window.
  machine.bus().Write(kSdioBase + 0x04, 4, 3, true);  // ARG
  machine.bus().Write(kSdioBase + 0x00, 4, 0, true);  // reset cursor
  for (uint32_t i = 0; i < 128; ++i) {
    machine.bus().Write(kSdioBase + 0x0C, 4, i * 3 + 1, true);
  }
  machine.bus().Write(kSdioBase + 0x00, 4, 2, true);  // commit
  std::vector<uint8_t> sector = sd.ReadSectorDirect(3);
  EXPECT_EQ(sector[0], 1u);
  EXPECT_EQ(sector[4], 4u);
  // Read it back through PIO.
  machine.bus().Write(kSdioBase + 0x04, 4, 3, true);
  machine.bus().Write(kSdioBase + 0x00, 4, 1, true);
  EXPECT_EQ(machine.bus().Read(kSdioBase + 0x0C, 4, true).value, 1u);
  EXPECT_EQ(machine.bus().Read(kSdioBase + 0x0C, 4, true).value, 4u);
  EXPECT_EQ(sd.sectors_read(), 1u);
  EXPECT_EQ(sd.sectors_written(), 1u);
}

TEST(BlockDevice, OutOfRangeSectorSetsErrorBit) {
  Machine machine(Board::kStm32479iEval);
  BlockDevice sd("SDIO", kSdioBase, 4);
  machine.bus().AttachDevice(&sd);
  machine.bus().Write(kSdioBase + 0x04, 4, 99, true);
  machine.bus().Write(kSdioBase + 0x00, 4, 1, true);
  EXPECT_EQ(machine.bus().Read(kSdioBase + 0x08, 4, true).value & 2u, 2u);
}

TEST(Lcd, PixelCursorAdvancesAndChecksums) {
  Machine machine(Board::kStm32479iEval);
  Lcd lcd("LCD", kLcdBase);
  machine.bus().AttachDevice(&lcd);
  machine.bus().Write(kLcdBase + 0x00, 4, 1, true);
  machine.bus().Write(kLcdBase + 0x04, 4, 0, true);
  machine.bus().Write(kLcdBase + 0x08, 4, 0, true);
  machine.bus().Write(kLcdBase + 0x0C, 4, 0xAB, true);
  machine.bus().Write(kLcdBase + 0x0C, 4, 0xCD, true);
  EXPECT_EQ(lcd.PixelAt(0, 0), 0xABu);
  EXPECT_EQ(lcd.PixelAt(1, 0), 0xCDu);
  EXPECT_EQ(lcd.pixels_written(), 2u);
  uint32_t c1 = lcd.FrameChecksum();
  machine.bus().Write(kLcdBase + 0x0C, 4, 0xEF, true);
  EXPECT_NE(lcd.FrameChecksum(), c1);
}

TEST(Ethernet, FrameQueueRoundTrip) {
  Machine machine(Board::kStm32479iEval);
  Ethernet eth("ETH", kEthBase);
  machine.bus().AttachDevice(&eth);
  eth.QueueRxFrame({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x00, 4, true).value, 1u);
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x04, 4, true).value, 8u);
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x08, 4, true).value, 0x04030201u);
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x08, 4, true).value, 0x08070605u);
  machine.bus().Write(kEthBase + 0x14, 4, 1, true);  // advance
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x00, 4, true).value, 0u);
  // Transmit a frame.
  machine.bus().Write(kEthBase + 0x0C, 4, 4, true);
  machine.bus().Write(kEthBase + 0x10, 4, 0xAABBCCDD, true);
  machine.bus().Write(kEthBase + 0x14, 4, 2, true);  // commit
  ASSERT_EQ(eth.tx_frames().size(), 1u);
  EXPECT_EQ(eth.tx_frames()[0], (std::vector<uint8_t>{0xDD, 0xCC, 0xBB, 0xAA}));
}

TEST(Camera, CaptureProvidesFrameWords) {
  Machine machine(Board::kStm32479iEval);
  Camera cam("DCMI", kDcmiBase);
  machine.bus().AttachDevice(&cam);
  cam.SetFrame({9, 8, 7, 6});
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x04, 4, true).value, 0u);  // not ready yet
  machine.bus().Write(kDcmiBase + 0x00, 4, 1, true);                   // capture
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x04, 4, true).value, 1u);
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x0C, 4, true).value, 4u);
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x08, 4, true).value, 0x06070809u);
  EXPECT_EQ(cam.captures(), 1u);
}

TEST(Rcc, PllReportsReadyAfterEnable) {
  Machine machine(Board::kStm32F4Discovery);
  Rcc rcc("RCC", kRccBase);
  machine.bus().AttachDevice(&rcc);
  machine.bus().Write(kRccBase + 0x00, 4, 1u << 24, true);
  EXPECT_EQ(machine.bus().Read(kRccBase + 0x00, 4, true).value & (1u << 25), 1u << 25);
  EXPECT_TRUE(rcc.configured());
}

TEST(Bus, MultiByteAccessStraddlingRegionEndFaults) {
  // Regression: a 4-byte access whose first byte is inside SRAM but which
  // runs past the end must fault — it touches unmapped space — rather than
  // read/write backing memory out of bounds or silently truncate.
  Machine machine(Board::kStm32F4Discovery);
  uint32_t sram_end = machine.bus().sram_end();
  uint32_t flash_end = machine.bus().flash_end();

  EXPECT_EQ(machine.bus().Read(sram_end - 2, 4, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Write(sram_end - 2, 4, 0xABCD, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Read(flash_end - 1, 4, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Read(flash_end - 2, 4, true).status, AccessStatus::kBusFault);
  // The same straddles through the debug interface must refuse, not clobber.
  uint32_t v = 0;
  EXPECT_FALSE(machine.bus().DebugRead(sram_end - 2, 4, &v));
  EXPECT_FALSE(machine.bus().DebugWrite(sram_end - 2, 4, 0xABCD));
  EXPECT_FALSE(machine.bus().DebugRead(flash_end - 3, 4, &v));
  // Accesses that end exactly at the region end are fine.
  EXPECT_TRUE(machine.bus().Write(sram_end - 4, 4, 0x11223344, true).ok());
  EXPECT_EQ(machine.bus().Read(sram_end - 4, 4, true).value, 0x11223344u);
  EXPECT_EQ(machine.bus().Read(sram_end - 2, 2, true).value, 0x1122u);
  EXPECT_TRUE(machine.bus().Read(flash_end - 4, 4, true).ok());
}

TEST(Bus, SysTickValReadClampsReloadToArchitecturalWidth) {
  // SYST_RVR is a 24-bit field. PpbWrite masks stored values, so a
  // wild reload can only appear through internal state corruption; the read
  // side still clamps defensively so VAL can never divide by a wrapped
  // (reload + 1) == 0. A zero reload falls back to the full 24-bit period.
  Machine machine(Board::kStm32F4Discovery);
  // Reload of zero: VAL derives from the free-running counter, no crash.
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x4, 4, 0, true).ok());
  machine.AddCycles(100);
  AccessResult val = machine.bus().Read(kSysTickBase + 0x8, 4, true);
  EXPECT_TRUE(val.ok());
  EXPECT_EQ(val.value, 0x00FFFFFFu - 100u);
  // An all-ones write is masked to 24 bits on the write side...
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x4, 4, 0xFFFFFFFFu, true).ok());
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x4, 4, true).value, 0x00FFFFFFu);
  // ...and VAL still counts down modulo the (masked) period.
  val = machine.bus().Read(kSysTickBase + 0x8, 4, true);
  EXPECT_TRUE(val.ok());
  EXPECT_EQ(val.value, 0x00FFFFFFu - 100u);
}

TEST(Bus, SysTickValWriteClearsCurrentCountAndCountFlag) {
  // ARMv7-M B3.3.3: a write of any value to SYST_CVR clears the current count
  // to zero and clears COUNTFLAG (SYST_CSR bit 16). Regression: the write was
  // silently dropped, leaving VAL derived from the free-running cycle counter.
  Machine machine(Board::kStm32F4Discovery);
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x4, 4, 1000, true).ok());
  machine.AddCycles(123);
  EXPECT_NE(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 0u);
  // Plant COUNTFLAG through a CTRL write, then clear it via the CVR write.
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x0, 4, (1u << 16) | 1u, true).ok());
  ASSERT_NE(machine.bus().Read(kSysTickBase + 0x0, 4, true).value & (1u << 16), 0u);

  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x8, 4, 0x12345678, true).ok());
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 0u);
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x0, 4, true).value & (1u << 16), 0u);

  // Counting restarts from the reload value on the next cycle.
  machine.AddCycles(1);
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 1000u);
  machine.AddCycles(10);
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 990u);
}

TEST(Bus, WordCopyOverlappingRangesUseMemmoveSemantics) {
  // Regression: a forward word loop over an overlapping src < dst range reads
  // bytes it already clobbered, smearing the first word across the region.
  // WordCopy must pick the copy direction like memmove does.
  Machine machine(Board::kStm32F4Discovery);
  auto fill = [&](uint32_t base, uint32_t n) {
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_TRUE(machine.bus().DebugWrite(base + i, 1, 0x10 + i));
    }
  };
  auto expect_bytes = [&](uint32_t base, uint32_t n, uint32_t first) {
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t v = 0;
      ASSERT_TRUE(machine.bus().DebugRead(base + i, 1, &v));
      ASSERT_EQ(v, first + i) << "offset " << i;
    }
  };

  // dst inside (src, src + n): must copy backward.
  uint32_t src = kSramBase + 0x200;
  fill(src, 40);
  ASSERT_TRUE(machine.bus().WordCopy(src, src + 12, 28, true));
  expect_bytes(src + 12, 28, 0x10);

  // src inside (dst, dst + n): forward copy is correct there.
  fill(src, 40);
  ASSERT_TRUE(machine.bus().WordCopy(src + 12, src, 28, true));
  expect_bytes(src, 28, 0x10 + 12);

  // Unaligned length exercises the tail-byte path in both directions.
  fill(src, 23);
  ASSERT_TRUE(machine.bus().WordCopy(src, src + 5, 18, true));
  expect_bytes(src + 5, 18, 0x10);
}

TEST(Bus, BulkCopyOverlappingRangesStayCorrect) {
  // Pin the fast path to the same memmove semantics as WordCopy.
  Machine machine(Board::kStm32F4Discovery);
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(machine.bus().DebugWrite(kSramBase + 0x300 + i, 1, 0x40 + i));
  }
  ASSERT_TRUE(machine.bus().BulkCopy(kSramBase + 0x300, kSramBase + 0x310, 48, true));
  for (uint32_t i = 0; i < 48; ++i) {
    uint32_t v = 0;
    ASSERT_TRUE(machine.bus().DebugRead(kSramBase + 0x310 + i, 1, &v));
    ASSERT_EQ(v, 0x40u + i) << "offset " << i;
  }
}

}  // namespace
}  // namespace opec_hw
