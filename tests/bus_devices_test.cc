// Tests for the bus (routing, PPB privilege rules, fault surfaces) and the
// memory-mapped device models.

#include <gtest/gtest.h>

#include "src/hw/address_map.h"
#include "src/hw/devices/block_device.h"
#include "src/hw/devices/camera.h"
#include "src/hw/devices/ethernet.h"
#include "src/hw/devices/ethernet_dma.h"
#include "src/hw/devices/gpio.h"
#include "src/hw/devices/lcd.h"
#include "src/hw/devices/rcc.h"
#include "src/hw/devices/uart.h"
#include "src/hw/machine.h"

namespace opec_hw {
namespace {

TEST(Bus, SramReadWriteRoundTrip) {
  Machine machine(Board::kStm32F4Discovery);
  AccessResult w = machine.bus().Write(kSramBase + 0x100, 4, 0xDEADBEEF, true);
  EXPECT_TRUE(w.ok());
  AccessResult r = machine.bus().Read(kSramBase + 0x100, 4, true);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, 0xDEADBEEFu);
  // Sub-word access sees little-endian bytes.
  EXPECT_EQ(machine.bus().Read(kSramBase + 0x100, 1, true).value, 0xEFu);
  EXPECT_EQ(machine.bus().Read(kSramBase + 0x103, 1, true).value, 0xDEu);
}

TEST(Bus, FlashIsNotWritableAtRuntime) {
  Machine machine(Board::kStm32F4Discovery);
  EXPECT_EQ(machine.bus().Write(kFlashBase + 0x10, 4, 1, true).status, AccessStatus::kBusFault);
  // But readable (erased flash reads 0xFF).
  EXPECT_EQ(machine.bus().Read(kFlashBase + 0x10, 1, true).value, 0xFFu);
}

TEST(Bus, UnmappedAddressFaults) {
  Machine machine(Board::kStm32F4Discovery);
  EXPECT_EQ(machine.bus().Read(0x70000000, 4, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Read(0x00000000, 4, true).status, AccessStatus::kBusFault);
}

TEST(Bus, PpbIsPrivilegedOnlyRegardlessOfMpu) {
  Machine machine(Board::kStm32F4Discovery);
  machine.mpu().set_enabled(false);  // even with the MPU off
  EXPECT_EQ(machine.bus().Read(kDwtCyccnt, 4, false).status, AccessStatus::kBusFault);
  EXPECT_TRUE(machine.bus().Read(kDwtCyccnt, 4, true).ok());
}

TEST(Bus, DwtCyccntTracksMachineCycles) {
  Machine machine(Board::kStm32F4Discovery);
  machine.AddCycles(12345);
  EXPECT_EQ(machine.bus().Read(kDwtCyccnt, 4, true).value, 12345u);
}

TEST(Bus, DebugAccessBypassesProtection) {
  Machine machine(Board::kStm32F4Discovery);
  machine.mpu().set_enabled(true);  // background map blocks unpriv everything
  EXPECT_TRUE(machine.bus().DebugWrite(kSramBase, 4, 42));
  uint32_t v = 0;
  EXPECT_TRUE(machine.bus().DebugRead(kSramBase, 4, &v));
  EXPECT_EQ(v, 42u);
  machine.bus().DebugWriteBytes(kFlashBase, {1, 2, 3});
  EXPECT_EQ(machine.bus().DebugReadBytes(kFlashBase, 3), (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Bus, DeviceRangeOverlapIsRejected) {
  Machine machine(Board::kStm32F4Discovery);
  Uart a("U1", kUsart1Base);
  Uart b("U2", kUsart1Base + 0x100);  // overlaps
  machine.bus().AttachDevice(&a);
  EXPECT_DEATH(machine.bus().AttachDevice(&b), "overlap");
}

TEST(Uart, RxFifoAndTxLog) {
  Machine machine(Board::kStm32F4Discovery);
  Uart uart("USART2", kUsart2Base);
  machine.bus().AttachDevice(&uart);
  // No data: SR.RXNE clear.
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x00, 4, true).value & 1u, 0u);
  uart.PushRxString("hi");
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x00, 4, true).value & 1u, 1u);
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x04, 4, true).value, uint32_t('h'));
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x04, 4, true).value, uint32_t('i'));
  EXPECT_EQ(machine.bus().Read(kUsart2Base + 0x00, 4, true).value & 1u, 0u);
  // Transmit.
  machine.bus().Write(kUsart2Base + 0x04, 4, 'o', true);
  machine.bus().Write(kUsart2Base + 0x04, 4, 'k', true);
  EXPECT_EQ(uart.TxString(), "ok");
  // Byte latency was charged.
  EXPECT_GT(machine.cycles(), 4 * Uart::kCyclesPerByte - 1);
}

TEST(Gpio, OutputHistoryAndInput) {
  Machine machine(Board::kStm32F4Discovery);
  Gpio gpio("GPIOA", kGpioABase);
  machine.bus().AttachDevice(&gpio);
  machine.bus().Write(kGpioABase + 0x00, 4, 1, true);  // MODER
  EXPECT_TRUE(gpio.configured());
  machine.bus().Write(kGpioABase + 0x14, 4, 1, true);
  machine.bus().Write(kGpioABase + 0x14, 4, 0, true);
  EXPECT_EQ(gpio.odr_history(), (std::vector<uint32_t>{1, 0}));
  gpio.SetInput(0x5);
  EXPECT_EQ(machine.bus().Read(kGpioABase + 0x10, 4, true).value, 0x5u);
}

TEST(BlockDevice, SectorReadWriteThroughPio) {
  Machine machine(Board::kStm32479iEval);
  BlockDevice sd("SDIO", kSdioBase, 8);
  machine.bus().AttachDevice(&sd);
  // Write sector 3 through the PIO window.
  machine.bus().Write(kSdioBase + 0x04, 4, 3, true);  // ARG
  machine.bus().Write(kSdioBase + 0x00, 4, 0, true);  // reset cursor
  for (uint32_t i = 0; i < 128; ++i) {
    machine.bus().Write(kSdioBase + 0x0C, 4, i * 3 + 1, true);
  }
  machine.bus().Write(kSdioBase + 0x00, 4, 2, true);  // commit
  std::vector<uint8_t> sector = sd.ReadSectorDirect(3);
  EXPECT_EQ(sector[0], 1u);
  EXPECT_EQ(sector[4], 4u);
  // Read it back through PIO.
  machine.bus().Write(kSdioBase + 0x04, 4, 3, true);
  machine.bus().Write(kSdioBase + 0x00, 4, 1, true);
  EXPECT_EQ(machine.bus().Read(kSdioBase + 0x0C, 4, true).value, 1u);
  EXPECT_EQ(machine.bus().Read(kSdioBase + 0x0C, 4, true).value, 4u);
  EXPECT_EQ(sd.sectors_read(), 1u);
  EXPECT_EQ(sd.sectors_written(), 1u);
}

TEST(BlockDevice, OutOfRangeSectorSetsErrorBit) {
  Machine machine(Board::kStm32479iEval);
  BlockDevice sd("SDIO", kSdioBase, 4);
  machine.bus().AttachDevice(&sd);
  machine.bus().Write(kSdioBase + 0x04, 4, 99, true);
  machine.bus().Write(kSdioBase + 0x00, 4, 1, true);
  EXPECT_EQ(machine.bus().Read(kSdioBase + 0x08, 4, true).value & 2u, 2u);
}

TEST(Lcd, PixelCursorAdvancesAndChecksums) {
  Machine machine(Board::kStm32479iEval);
  Lcd lcd("LCD", kLcdBase);
  machine.bus().AttachDevice(&lcd);
  machine.bus().Write(kLcdBase + 0x00, 4, 1, true);
  machine.bus().Write(kLcdBase + 0x04, 4, 0, true);
  machine.bus().Write(kLcdBase + 0x08, 4, 0, true);
  machine.bus().Write(kLcdBase + 0x0C, 4, 0xAB, true);
  machine.bus().Write(kLcdBase + 0x0C, 4, 0xCD, true);
  EXPECT_EQ(lcd.PixelAt(0, 0), 0xABu);
  EXPECT_EQ(lcd.PixelAt(1, 0), 0xCDu);
  EXPECT_EQ(lcd.pixels_written(), 2u);
  uint32_t c1 = lcd.FrameChecksum();
  machine.bus().Write(kLcdBase + 0x0C, 4, 0xEF, true);
  EXPECT_NE(lcd.FrameChecksum(), c1);
}

TEST(Ethernet, FrameQueueRoundTrip) {
  Machine machine(Board::kStm32479iEval);
  Ethernet eth("ETH", kEthBase);
  machine.bus().AttachDevice(&eth);
  eth.QueueRxFrame({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x00, 4, true).value, 1u);
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x04, 4, true).value, 8u);
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x08, 4, true).value, 0x04030201u);
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x08, 4, true).value, 0x08070605u);
  machine.bus().Write(kEthBase + 0x14, 4, 1, true);  // advance
  EXPECT_EQ(machine.bus().Read(kEthBase + 0x00, 4, true).value, 0u);
  // Transmit a frame.
  machine.bus().Write(kEthBase + 0x0C, 4, 4, true);
  machine.bus().Write(kEthBase + 0x10, 4, 0xAABBCCDD, true);
  machine.bus().Write(kEthBase + 0x14, 4, 2, true);  // commit
  ASSERT_EQ(eth.tx_frames().size(), 1u);
  EXPECT_EQ(eth.tx_frames()[0], (std::vector<uint8_t>{0xDD, 0xCC, 0xBB, 0xAA}));
}

// Regression (TXLEN bugfix): a guest-controlled TXLEN beyond the MTU used to
// be handed straight to tx_buffer_.assign(), letting one register write make
// the host allocate 4 GiB. It must be a device fault instead. This test fails
// on the pre-fix device model.
TEST(Ethernet, OversizeTxLenIsADeviceFault) {
  Ethernet eth("ETH", kEthBase);
  uint64_t cycles = 0;
  EXPECT_FALSE(eth.Write(0x0C, 0xFFFFFFFFu, &cycles));
  EXPECT_FALSE(eth.Write(0x0C, Ethernet::kMaxFrameBytes + 1, &cycles));
  // The MTU itself is fine, and the fault left no stale oversize state.
  EXPECT_TRUE(eth.Write(0x0C, Ethernet::kMaxFrameBytes, &cycles));
  EXPECT_TRUE(eth.Write(0x14, 2, &cycles));
  ASSERT_EQ(eth.tx_frames().size(), 1u);
  EXPECT_EQ(eth.tx_frames()[0].size(), Ethernet::kMaxFrameBytes);
}

// Regression (RXDATA tail-word bugfix): a frame whose length is not a
// multiple of 4 used to be charged a full word of wire time on the tail read;
// the charge must cover only the bytes actually present.
TEST(Ethernet, RxTailWordChargesOnlyActualBytes) {
  Ethernet eth("ETH", kEthBase);
  eth.QueueRxFrame({1, 2, 3, 4, 5, 6}, /*gap_cycles=*/0);
  uint32_t value = 0;
  uint64_t cycles = 0;
  EXPECT_TRUE(eth.Read(0x08, &value, &cycles));
  EXPECT_EQ(value, 0x04030201u);
  EXPECT_EQ(cycles, 4 * Ethernet::kCyclesPerByte);
  cycles = 0;
  EXPECT_TRUE(eth.Read(0x08, &value, &cycles));
  EXPECT_EQ(value, 0x00000605u);
  EXPECT_EQ(cycles, 2 * Ethernet::kCyclesPerByte);  // 2 bytes left, not 4
}

TEST(Ethernet, RxDataOnEmptyQueueIsInert) {
  Ethernet eth("ETH", kEthBase);
  uint32_t value = 0xFFFFFFFFu;
  uint64_t cycles = 0;
  EXPECT_TRUE(eth.Read(0x08, &value, &cycles));
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(cycles, 0u);  // no arrival gap, no wire time for a phantom frame
}

TEST(Ethernet, CommitWithPartialTxFillKeepsDeclaredLength) {
  Ethernet eth("ETH", kEthBase);
  uint64_t cycles = 0;
  EXPECT_TRUE(eth.Write(0x0C, 8, &cycles));
  EXPECT_TRUE(eth.Write(0x10, 0xAABBCCDDu, &cycles));  // only 4 of 8 bytes
  EXPECT_TRUE(eth.Write(0x14, 2, &cycles));
  ASSERT_EQ(eth.tx_frames().size(), 1u);
  EXPECT_EQ(eth.tx_frames()[0],
            (std::vector<uint8_t>{0xDD, 0xCC, 0xBB, 0xAA, 0, 0, 0, 0}));
}

TEST(Ethernet, AdvanceWithNoRxFrameIsANoOp) {
  Ethernet eth("ETH", kEthBase);
  uint64_t cycles = 0;
  EXPECT_TRUE(eth.Write(0x14, 1, &cycles));
  uint32_t value = 0;
  EXPECT_TRUE(eth.Read(0x00, &value, &cycles));
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(eth.rx_pending(), 0u);
}

TEST(Ethernet, SaveRestoreMidFrameResumesExactly) {
  Ethernet eth("ETH", kEthBase);
  eth.QueueRxFrame({1, 2, 3, 4, 5, 6, 7, 8}, /*gap_cycles=*/7);
  eth.QueueRxFrame({9, 10}, /*gap_cycles=*/11);
  uint32_t value = 0;
  uint64_t cycles = 0;
  EXPECT_TRUE(eth.Read(0x08, &value, &cycles));  // half-consumed rx frame
  EXPECT_TRUE(eth.Write(0x0C, 6, &cycles));      // plus a tx frame mid-build
  EXPECT_TRUE(eth.Write(0x10, 0x11223344u, &cycles));

  StateWriter w;
  eth.SaveState(w);
  Ethernet restored("ETH", kEthBase);
  StateReader r(w.data());
  restored.LoadState(r);
  EXPECT_TRUE(r.AtEnd());

  // Both devices continue identically: rest of frame 1, advance, frame 2.
  for (Ethernet* dev : {&eth, &restored}) {
    cycles = 0;
    EXPECT_TRUE(dev->Read(0x08, &value, &cycles));
    EXPECT_EQ(value, 0x08070605u);
    EXPECT_EQ(cycles, 4 * Ethernet::kCyclesPerByte);  // no re-charged gap
    EXPECT_TRUE(dev->Write(0x14, 1, &cycles));
    EXPECT_TRUE(dev->Read(0x04, &value, &cycles));
    EXPECT_EQ(value, 2u);
    EXPECT_TRUE(dev->Write(0x14, 2, &cycles));  // commit the half-built tx
  }
  ASSERT_EQ(restored.tx_frames().size(), 1u);
  EXPECT_EQ(restored.tx_frames()[0],
            (std::vector<uint8_t>{0x44, 0x33, 0x22, 0x11, 0, 0}));
  EXPECT_EQ(restored.tx_digest(), eth.tx_digest());
}

TEST(Ethernet, TxRetentionCapBoundsFramesButNotTheDigest) {
  Ethernet capped("ETH", kEthBase);
  Ethernet uncapped("ETH", kEthBase);
  capped.set_tx_retention_cap(2);
  uint64_t cycles = 0;
  for (uint32_t i = 0; i < 5; ++i) {
    for (Ethernet* dev : {&capped, &uncapped}) {
      EXPECT_TRUE(dev->Write(0x0C, 4, &cycles));
      EXPECT_TRUE(dev->Write(0x10, 0x1000 + i, &cycles));
      EXPECT_TRUE(dev->Write(0x14, 2, &cycles));
    }
  }
  EXPECT_EQ(capped.tx_frames().size(), 2u);
  EXPECT_EQ(uncapped.tx_frames().size(), 5u);
  EXPECT_EQ(capped.tx_committed(), 5u);
  // The digest covers every committed frame, retained or not.
  EXPECT_EQ(capped.tx_digest(), uncapped.tx_digest());
  // Draining hands over the window and keeps the running totals.
  std::deque<std::vector<uint8_t>> drained = capped.DrainTxFrames();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(capped.tx_frames().size(), 0u);
  EXPECT_EQ(capped.tx_committed(), 5u);
}

// --- EthernetDma: descriptor rings, coalescing, load-dependent arrivals ---

class EthernetDmaTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kRing = kSramBase + 0x1000;
  static constexpr uint32_t kBufs = kSramBase + 0x2000;

  EthernetDmaTest() : machine_(Board::kStm32479iEval), dma_("ETH", kEthBase, &machine_) {
    machine_.bus().AttachDevice(&dma_);
  }

  // Builds an n-descriptor ring in guest SRAM, every descriptor device-owned.
  void ConfigureRing(uint32_t n) {
    uint64_t cycles = 0;
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_TRUE(machine_.bus().DebugWrite(kRing + i * 8, 4, kBufs + i * 256));
      ASSERT_TRUE(machine_.bus().DebugWrite(kRing + i * 8 + 4, 4, 0x80000000u));
    }
    ASSERT_TRUE(dma_.Write(0x04, kRing, &cycles));
    ASSERT_TRUE(dma_.Write(0x08, n, &cycles));
  }

  uint32_t DescLen(uint32_t i) {
    uint32_t w1 = 0;
    EXPECT_TRUE(machine_.bus().DebugRead(kRing + i * 8 + 4, 4, &w1));
    return w1;
  }

  Machine machine_;
  EthernetDma dma_;
};

TEST_F(EthernetDmaTest, BogusRingConfigurationFaults) {
  uint64_t cycles = 0;
  EXPECT_FALSE(dma_.Write(0x08, 0, &cycles));
  EXPECT_FALSE(dma_.Write(0x08, EthernetDma::kMaxDescriptors + 1, &cycles));
  EXPECT_FALSE(dma_.Write(0x0C, 0, &cycles));
  EXPECT_FALSE(dma_.Write(0x14, EthernetDma::kMaxFrameBytes + 1, &cycles));
}

TEST_F(EthernetDmaTest, CoalescedDeliveryFillsDescriptorsInOrder) {
  ConfigureRing(4);
  dma_.QueueRxFrame({1, 2, 3}, /*gap_cycles=*/0);
  dma_.QueueRxFrame({4, 5, 6, 7}, /*gap_cycles=*/0);
  dma_.QueueRxFrame({8}, /*gap_cycles=*/0);
  uint64_t cycles = 0;
  ASSERT_TRUE(dma_.Write(0x18, 1, &cycles));  // one poll, coalesce default 4
  EXPECT_EQ(dma_.delivered(), 3u);
  EXPECT_EQ(DescLen(0), 3u);  // OWN cleared, length latched
  EXPECT_EQ(DescLen(1), 4u);
  EXPECT_EQ(DescLen(2), 1u);
  EXPECT_EQ(DescLen(3), 0x80000000u);  // still device-owned, untouched
  uint32_t byte = 0;
  EXPECT_TRUE(machine_.bus().DebugRead(kBufs + 0, 1, &byte));
  EXPECT_EQ(byte, 1u);
  EXPECT_TRUE(machine_.bus().DebugRead(kBufs + 256 + 3, 1, &byte));
  EXPECT_EQ(byte, 7u);
  // Wire + descriptor setup time for the 8 delivered bytes.
  EXPECT_EQ(cycles, 3 * EthernetDma::kDescriptorCycles + 8 * EthernetDma::kCyclesPerByte);
}

TEST_F(EthernetDmaTest, CoalesceBudgetAndOwnershipGateDelivery) {
  ConfigureRing(4);
  uint64_t cycles = 0;
  ASSERT_TRUE(dma_.Write(0x0C, 2, &cycles));  // coalesce = 2
  for (int i = 0; i < 4; ++i) {
    dma_.QueueRxFrame({static_cast<uint8_t>(i)}, /*gap_cycles=*/0);
  }
  ASSERT_TRUE(dma_.Write(0x18, 1, &cycles));
  EXPECT_EQ(dma_.delivered(), 2u);  // batch capped by COALESCE
  ASSERT_TRUE(dma_.Write(0x18, 1, &cycles));
  EXPECT_EQ(dma_.delivered(), 4u);
  // All descriptors now guest-owned: another poll cannot deliver.
  dma_.QueueRxFrame({9}, /*gap_cycles=*/0);
  ASSERT_TRUE(dma_.Write(0x18, 1, &cycles));
  EXPECT_EQ(dma_.delivered(), 4u);
  EXPECT_EQ(dma_.rx_pending(), 1u);
  uint32_t status = 0;
  EXPECT_TRUE(dma_.Read(0x00, &status, &cycles));
  EXPECT_EQ(status & 1u, 1u);  // work still pending
}

TEST_F(EthernetDmaTest, ArrivalScheduleChargesWaitOnlyUnderLightLoad) {
  ConfigureRing(4);
  dma_.QueueRxFrame({1}, /*gap_cycles=*/5'000);
  uint64_t cycles = 0;
  ASSERT_TRUE(dma_.Write(0x18, 1, &cycles));
  // Idle poll at cycle 0: waits out the full arrival gap plus transfer time.
  EXPECT_EQ(cycles,
            5'000 + EthernetDma::kDescriptorCycles + 1 * EthernetDma::kCyclesPerByte);
  // Saturation: the core clock has moved past the next arrival, so the wait
  // collapses and only transfer time is charged.
  machine_.AddCycles(1'000'000);
  dma_.QueueRxFrame({2}, /*gap_cycles=*/5'000);
  cycles = 0;
  ASSERT_TRUE(dma_.Write(0x18, 1, &cycles));
  EXPECT_EQ(cycles, EthernetDma::kDescriptorCycles + 1 * EthernetDma::kCyclesPerByte);
}

TEST_F(EthernetDmaTest, TxDmaReadsGuestMemoryAndFaultsOnBadAddress) {
  uint64_t cycles = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(machine_.bus().DebugWrite(kBufs + 0x800 + i, 1, 0xA0 + i));
  }
  ASSERT_TRUE(dma_.Write(0x10, kBufs + 0x800, &cycles));
  ASSERT_TRUE(dma_.Write(0x14, 4, &cycles));
  ASSERT_TRUE(dma_.Write(0x18, 2, &cycles));
  ASSERT_EQ(dma_.tx_frames().size(), 1u);
  EXPECT_EQ(dma_.tx_frames()[0], (std::vector<uint8_t>{0xA0, 0xA1, 0xA2, 0xA3}));
  // TXADDR outside RAM/flash: a device fault, never a host abort.
  ASSERT_TRUE(dma_.Write(0x10, 0x70000000u, &cycles));
  ASSERT_TRUE(dma_.Write(0x14, 4, &cycles));
  EXPECT_FALSE(dma_.Write(0x18, 2, &cycles));
  EXPECT_EQ(dma_.tx_committed(), 1u);
}

TEST_F(EthernetDmaTest, SaveRestoreRoundTripsQueueRingAndTxLog) {
  ConfigureRing(2);
  dma_.QueueRxFrame({1, 2, 3}, /*gap_cycles=*/100);
  dma_.QueueRxFrame({4, 5}, /*gap_cycles=*/0);  // same arrival: one coalesced batch
  uint64_t cycles = 0;
  ASSERT_TRUE(dma_.Write(0x18, 1, &cycles));  // deliver both, move the cursor
  ASSERT_TRUE(dma_.Write(0x10, kBufs, &cycles));
  ASSERT_TRUE(dma_.Write(0x14, 2, &cycles));
  ASSERT_TRUE(dma_.Write(0x18, 2, &cycles));
  dma_.QueueRxFrame({6}, /*gap_cycles=*/300);  // still queued at save time

  StateWriter w;
  dma_.SaveState(w);
  EthernetDma restored("ETH", kEthBase + 0x400, &machine_);
  StateReader r(w.data());
  restored.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  StateWriter w2;
  restored.SaveState(w2);
  EXPECT_EQ(w.data(), w2.data());
  EXPECT_EQ(restored.delivered(), 2u);
  EXPECT_EQ(restored.rx_pending(), 1u);
  EXPECT_EQ(restored.tx_committed(), 1u);
  EXPECT_EQ(restored.tx_digest(), dma_.tx_digest());
}

TEST(Camera, CaptureProvidesFrameWords) {
  Machine machine(Board::kStm32479iEval);
  Camera cam("DCMI", kDcmiBase);
  machine.bus().AttachDevice(&cam);
  cam.SetFrame({9, 8, 7, 6});
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x04, 4, true).value, 0u);  // not ready yet
  machine.bus().Write(kDcmiBase + 0x00, 4, 1, true);                   // capture
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x04, 4, true).value, 1u);
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x0C, 4, true).value, 4u);
  EXPECT_EQ(machine.bus().Read(kDcmiBase + 0x08, 4, true).value, 0x06070809u);
  EXPECT_EQ(cam.captures(), 1u);
}

TEST(Rcc, PllReportsReadyAfterEnable) {
  Machine machine(Board::kStm32F4Discovery);
  Rcc rcc("RCC", kRccBase);
  machine.bus().AttachDevice(&rcc);
  machine.bus().Write(kRccBase + 0x00, 4, 1u << 24, true);
  EXPECT_EQ(machine.bus().Read(kRccBase + 0x00, 4, true).value & (1u << 25), 1u << 25);
  EXPECT_TRUE(rcc.configured());
}

TEST(Bus, MultiByteAccessStraddlingRegionEndFaults) {
  // Regression: a 4-byte access whose first byte is inside SRAM but which
  // runs past the end must fault — it touches unmapped space — rather than
  // read/write backing memory out of bounds or silently truncate.
  Machine machine(Board::kStm32F4Discovery);
  uint32_t sram_end = machine.bus().sram_end();
  uint32_t flash_end = machine.bus().flash_end();

  EXPECT_EQ(machine.bus().Read(sram_end - 2, 4, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Write(sram_end - 2, 4, 0xABCD, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Read(flash_end - 1, 4, true).status, AccessStatus::kBusFault);
  EXPECT_EQ(machine.bus().Read(flash_end - 2, 4, true).status, AccessStatus::kBusFault);
  // The same straddles through the debug interface must refuse, not clobber.
  uint32_t v = 0;
  EXPECT_FALSE(machine.bus().DebugRead(sram_end - 2, 4, &v));
  EXPECT_FALSE(machine.bus().DebugWrite(sram_end - 2, 4, 0xABCD));
  EXPECT_FALSE(machine.bus().DebugRead(flash_end - 3, 4, &v));
  // Accesses that end exactly at the region end are fine.
  EXPECT_TRUE(machine.bus().Write(sram_end - 4, 4, 0x11223344, true).ok());
  EXPECT_EQ(machine.bus().Read(sram_end - 4, 4, true).value, 0x11223344u);
  EXPECT_EQ(machine.bus().Read(sram_end - 2, 2, true).value, 0x1122u);
  EXPECT_TRUE(machine.bus().Read(flash_end - 4, 4, true).ok());
}

TEST(Bus, SysTickValReadClampsReloadToArchitecturalWidth) {
  // SYST_RVR is a 24-bit field. PpbWrite masks stored values, so a
  // wild reload can only appear through internal state corruption; the read
  // side still clamps defensively so VAL can never divide by a wrapped
  // (reload + 1) == 0. A zero reload falls back to the full 24-bit period.
  Machine machine(Board::kStm32F4Discovery);
  // Reload of zero: VAL derives from the free-running counter, no crash.
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x4, 4, 0, true).ok());
  machine.AddCycles(100);
  AccessResult val = machine.bus().Read(kSysTickBase + 0x8, 4, true);
  EXPECT_TRUE(val.ok());
  EXPECT_EQ(val.value, 0x00FFFFFFu - 100u);
  // An all-ones write is masked to 24 bits on the write side...
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x4, 4, 0xFFFFFFFFu, true).ok());
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x4, 4, true).value, 0x00FFFFFFu);
  // ...and VAL still counts down modulo the (masked) period.
  val = machine.bus().Read(kSysTickBase + 0x8, 4, true);
  EXPECT_TRUE(val.ok());
  EXPECT_EQ(val.value, 0x00FFFFFFu - 100u);
}

TEST(Bus, SysTickValWriteClearsCurrentCountAndCountFlag) {
  // ARMv7-M B3.3.3: a write of any value to SYST_CVR clears the current count
  // to zero and clears COUNTFLAG (SYST_CSR bit 16). Regression: the write was
  // silently dropped, leaving VAL derived from the free-running cycle counter.
  Machine machine(Board::kStm32F4Discovery);
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x4, 4, 1000, true).ok());
  machine.AddCycles(123);
  EXPECT_NE(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 0u);
  // Plant COUNTFLAG through a CTRL write, then clear it via the CVR write.
  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x0, 4, (1u << 16) | 1u, true).ok());
  ASSERT_NE(machine.bus().Read(kSysTickBase + 0x0, 4, true).value & (1u << 16), 0u);

  EXPECT_TRUE(machine.bus().Write(kSysTickBase + 0x8, 4, 0x12345678, true).ok());
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 0u);
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x0, 4, true).value & (1u << 16), 0u);

  // Counting restarts from the reload value on the next cycle.
  machine.AddCycles(1);
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 1000u);
  machine.AddCycles(10);
  EXPECT_EQ(machine.bus().Read(kSysTickBase + 0x8, 4, true).value, 990u);
}

TEST(Bus, WordCopyOverlappingRangesUseMemmoveSemantics) {
  // Regression: a forward word loop over an overlapping src < dst range reads
  // bytes it already clobbered, smearing the first word across the region.
  // WordCopy must pick the copy direction like memmove does.
  Machine machine(Board::kStm32F4Discovery);
  auto fill = [&](uint32_t base, uint32_t n) {
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_TRUE(machine.bus().DebugWrite(base + i, 1, 0x10 + i));
    }
  };
  auto expect_bytes = [&](uint32_t base, uint32_t n, uint32_t first) {
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t v = 0;
      ASSERT_TRUE(machine.bus().DebugRead(base + i, 1, &v));
      ASSERT_EQ(v, first + i) << "offset " << i;
    }
  };

  // dst inside (src, src + n): must copy backward.
  uint32_t src = kSramBase + 0x200;
  fill(src, 40);
  ASSERT_TRUE(machine.bus().WordCopy(src, src + 12, 28, true));
  expect_bytes(src + 12, 28, 0x10);

  // src inside (dst, dst + n): forward copy is correct there.
  fill(src, 40);
  ASSERT_TRUE(machine.bus().WordCopy(src + 12, src, 28, true));
  expect_bytes(src, 28, 0x10 + 12);

  // Unaligned length exercises the tail-byte path in both directions.
  fill(src, 23);
  ASSERT_TRUE(machine.bus().WordCopy(src, src + 5, 18, true));
  expect_bytes(src + 5, 18, 0x10);
}

TEST(Bus, BulkCopyOverlappingRangesStayCorrect) {
  // Pin the fast path to the same memmove semantics as WordCopy.
  Machine machine(Board::kStm32F4Discovery);
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(machine.bus().DebugWrite(kSramBase + 0x300 + i, 1, 0x40 + i));
  }
  ASSERT_TRUE(machine.bus().BulkCopy(kSramBase + 0x300, kSramBase + 0x310, 48, true));
  for (uint32_t i = 0; i < 48; ++i) {
    uint32_t v = 0;
    ASSERT_TRUE(machine.bus().DebugRead(kSramBase + 0x310 + i, 1, &v));
    ASSERT_EQ(v, 0x40u + i) << "offset " << i;
  }
}

}  // namespace
}  // namespace opec_hw
