// Pinned-seed regression tests for divergences surfaced by the differential
// fuzzer (DESIGN.md Section 12.4). Each test reproduces one historical bug at
// the seed that found it, plus a direct unit-level repro where one exists:
// every test here fails on the pre-fix code.
//
// Corpus note: the pinned seeds below are the canonical corpus; when a future
// sweep diverges, `fuzz --corpus-dir DIR [--shrink]` dumps the (minimized)
// recipe as a standalone IR listing plus the oracle report for debugging.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/program.h"
#include "src/hw/mpu.h"

namespace opec_fuzz {
namespace {

using opec_hw::AccessKind;
using opec_hw::AccessPerm;
using opec_hw::Mpu;
using opec_hw::MpuRegionConfig;

// Seed 107008: the MPU-cache oracle's CheckRange probe reported
//   CheckRange(0xFFFFFFF3, len=35, write, unpriv) ranged=1 per-byte=0
// — a 35-byte range wrapping the top of the 32-bit address space was allowed
// wholesale. Root cause: CheckRange computed its last probe window with a
// 32-bit ~31u mask, so addr + len - 1 truncated below first_window and the
// probe loop never ran. Fixed with a 64-bit window walk in src/hw/mpu.cc.
TEST(FuzzRegressionTest, MpuCheckRangeWrappingRangeIsProbed_Seed107008) {
  // Direct repro: MPU enabled, no regions. The background map (PRIVDEFENA)
  // denies every unprivileged access, so a wrapped range must be denied too.
  Mpu mpu;
  mpu.set_enabled(true);
  EXPECT_FALSE(mpu.CheckRange(0xFFFFFFF3u, 35, AccessKind::kWrite, /*privileged=*/false));
  EXPECT_TRUE(mpu.CheckRange(0xFFFFFFF3u, 35, AccessKind::kWrite, /*privileged=*/true));
}

TEST(FuzzRegressionTest, MpuCheckRangeWrapProbesTheWrappedTail) {
  // A region grants the bytes below 2^32 but nothing maps address 0, so the
  // wrapped tail of the range decides: pre-fix the loop skipped every probe
  // and allowed the whole range.
  Mpu mpu;
  mpu.set_enabled(true);
  MpuRegionConfig top;
  top.enabled = true;
  top.base = 0xFFFFFF00u;
  top.size_log2 = 8;  // 256 bytes: 0xFFFFFF00..0xFFFFFFFF
  top.ap = AccessPerm::kFullAccess;
  mpu.ConfigureRegion(0, top);
  // Entirely inside the region: allowed.
  EXPECT_TRUE(mpu.CheckRange(0xFFFFFFF3u, 13, AccessKind::kWrite, false));
  // Wraps into unmapped address 0: the tail must deny the range.
  EXPECT_FALSE(mpu.CheckRange(0xFFFFFFF3u, 35, AccessKind::kWrite, false));
  // Map page zero too and the wrapped range becomes legal again.
  MpuRegionConfig zero;
  zero.enabled = true;
  zero.base = 0;
  zero.size_log2 = 8;
  zero.ap = AccessPerm::kFullAccess;
  mpu.ConfigureRegion(1, zero);
  EXPECT_TRUE(mpu.CheckRange(0xFFFFFFF3u, 35, AccessKind::kWrite, false));
}

TEST(FuzzRegressionTest, MpuCacheOracleIsClean_Seed107008) {
  // The full oracle replay at the finding seed: cached CheckAccess, uncached
  // CheckAccessUncached and ranged CheckRange must agree on all 300 steps.
  std::vector<Divergence> divs = DiffMpuCache(107008);
  EXPECT_TRUE(divs.empty()) << divs[0].detail;
}

// Seeds 4 and 8: early generator builds let random assignments target the
// bounded-loop counter variables (i0, i1, ...), resetting the counter inside
// the loop body — the generated "terminating" program spun until the engine's
// statement limit. The generator now draws assignment targets only from its
// writable-locals pool, which never contains loop counters.
TEST(FuzzRegressionTest, GeneratedProgramsTerminate_Seeds4And8) {
  for (uint64_t seed : {4u, 8u}) {
    ProgramSpec spec = GenerateProgram(seed);
    ExecObservation obs = RunOnce(spec, opec_apps::BuildMode::kVanilla);
    EXPECT_FALSE(obs.build_error) << "seed " << seed << ": " << obs.build_error_msg;
    EXPECT_TRUE(obs.run_ok) << "seed " << seed << ": " << obs.violation;
  }
}

void CollectLoopVars(const std::vector<FStmt>& body, std::set<std::string>* vars) {
  for (const FStmt& s : body) {
    if (s.k == FStmt::K::kLoop) {
      vars->insert(s.loop_var);
    }
    CollectLoopVars(s.body, vars);
    CollectLoopVars(s.orelse, vars);
  }
}

bool AssignsToAny(const std::vector<FStmt>& body, const std::set<std::string>& vars) {
  for (const FStmt& s : body) {
    if (s.k == FStmt::K::kAssign && s.lhs.k == FExpr::K::kLocal &&
        vars.count(s.lhs.name) > 0) {
      return true;
    }
    if (AssignsToAny(s.body, vars) || AssignsToAny(s.orelse, vars)) {
      return true;
    }
  }
  return false;
}

TEST(FuzzRegressionTest, GeneratorNeverAssignsToLoopCounters) {
  // The structural invariant behind the seed-4/8 fix, checked broadly.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ProgramSpec spec = GenerateProgram(seed);
    for (const FFunc& f : spec.funcs) {
      std::set<std::string> loop_vars;
      CollectLoopVars(f.body, &loop_vars);
      EXPECT_FALSE(AssignsToAny(f.body, loop_vars))
          << "seed " << seed << " fn " << f.name << " clobbers a loop counter";
    }
  }
}

// Seeds 3, 6 and 9: the execution oracle originally compared pointer-valued
// globals as raw little-endian bytes, flagging every recipe with a pointer
// global — the vanilla and OPEC layouts legitimately place targets at
// different addresses. Finals now render pointers symbolically ("ptr:g2+0",
// "fn:helper0"), resolving OPEC addresses through every shadow placement.
TEST(FuzzRegressionTest, PointerFinalsCompareSymbolically_Seeds3And6And9) {
  for (uint64_t seed : {3u, 6u, 9u}) {
    ProgramSpec spec = GenerateProgram(seed);
    ExecObservation vanilla = RunOnce(spec, opec_apps::BuildMode::kVanilla);
    ExecObservation opec = RunOnce(spec, opec_apps::BuildMode::kOpec);
    std::vector<Divergence> divs = CompareExec(spec, vanilla, opec);
    EXPECT_TRUE(divs.empty()) << "seed " << seed << ": " << divs[0].detail;
  }
}

TEST(FuzzRegressionTest, PointerFinalsRenderSymbolicTargets) {
  // Find a recipe with a pointer global and pin the rendering: its final must
  // name a symbolic target, never a raw layout address.
  bool checked = false;
  for (uint64_t seed = 1; seed <= 30 && !checked; ++seed) {
    ProgramSpec spec = GenerateProgram(seed);
    std::string ptr_name;
    for (const FGlobal& g : spec.globals) {
      if (g.k == FGlobal::K::kPtr) {
        ptr_name = g.name;
      }
    }
    if (ptr_name.empty()) {
      continue;
    }
    ExecObservation vanilla = RunOnce(spec, opec_apps::BuildMode::kVanilla);
    if (!vanilla.run_ok) {
      continue;
    }
    ASSERT_TRUE(vanilla.finals.count(ptr_name)) << "seed " << seed;
    const std::string& rendered = vanilla.finals.at(ptr_name);
    EXPECT_EQ(rendered.rfind("ptr:", 0), 0u) << "seed " << seed << ": " << rendered;
    EXPECT_EQ(rendered.find("raw:"), std::string::npos)
        << "seed " << seed << ": " << rendered;
    checked = true;
  }
  EXPECT_TRUE(checked) << "no seed in 1..30 produced a pointer global";
}

// Oracle 6 (bytecode-vs-interpreter, DESIGN.md §14.5): the bring-up sweep —
// 10,000 seeded programs, serial and --jobs 4 — finished with zero
// divergences, so unlike the cases above there is no historical
// disagreement seed to pin. This band keeps the oracle itself in tier-1 at
// fixed seeds: a future lowering or dispatch regression reproduces here
// deterministically instead of only in a long sweep. (The VM bugs found
// during bring-up were caught by tests/bytecode_test.cc's differential
// suite, which pins them at app granularity.)
TEST(FuzzRegressionTest, BytecodeTierAgreesAtPinnedSeeds) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ProgramSpec spec = GenerateProgram(seed);
    ExecObservation vanilla = RunOnce(spec, opec_apps::BuildMode::kVanilla);
    ExecObservation opec = RunOnce(spec, opec_apps::BuildMode::kOpec);
    std::vector<Divergence> divs = DiffBytecodeTier(spec, vanilla, opec);
    EXPECT_TRUE(divs.empty()) << "seed " << seed << ": " << divs[0].detail;
  }
}

}  // namespace
}  // namespace opec_fuzz
