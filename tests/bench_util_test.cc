// Regression tests for the shared CLI helpers in bench/bench_util.h.
//
// ParseCount: the four CLIs used to parse counts with bare std::atoi, which
// silently yields 0 on junk ("--jobs abc" fell into the jobs<1 error with no
// hint at the cause) and wraps on overflow. The strict full-string parse
// rejects all of that; these tests fail on the pre-fix behavior.
//
// NsPerStatement: host_speed used to compute exec_ns / statements unguarded —
// a zero-statement run emitted nan/inf into BENCH_host_speed.json, corrupting
// the deterministic-JSON contract. The guard must emit exactly 0.0.

#include <gtest/gtest.h>

#include <cmath>

#include "bench/bench_util.h"

namespace opec_bench {
namespace {

TEST(ParseCount, AcceptsPlainIntegersInRange) {
  int v = -1;
  EXPECT_TRUE(ParseCount("1", 1, 1024, &v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ParseCount("1024", 1, 1024, &v));
  EXPECT_EQ(v, 1024);
  EXPECT_TRUE(ParseCount("42", 1, 1024, &v));
  EXPECT_EQ(v, 42);
}

TEST(ParseCount, RejectsJunkThatAtoiAcceptedSilently) {
  int v = 99;
  EXPECT_FALSE(ParseCount("abc", 1, 1024, &v));   // atoi: 0
  EXPECT_FALSE(ParseCount("12x", 1, 1024, &v));   // atoi: 12 (trailing junk)
  EXPECT_FALSE(ParseCount("", 1, 1024, &v));      // atoi: 0
  EXPECT_FALSE(ParseCount(" 4", 1, 1024, &v));    // leading whitespace
  EXPECT_FALSE(ParseCount("4 ", 1, 1024, &v));    // trailing whitespace
  EXPECT_FALSE(ParseCount(nullptr, 1, 1024, &v));
  EXPECT_EQ(v, 99);  // out-param untouched on failure
}

TEST(ParseCount, RejectsOutOfRangeAndOverflow) {
  int v = 0;
  EXPECT_FALSE(ParseCount("0", 1, 1024, &v));
  EXPECT_FALSE(ParseCount("-3", 1, 1024, &v));
  EXPECT_FALSE(ParseCount("1025", 1, 1024, &v));
  EXPECT_FALSE(ParseCount("99999999999999999999", 1, 1024, &v));  // > LONG_MAX
}

TEST(NsPerStatement, ZeroStatementsYieldsZeroNotNan) {
  double r = NsPerStatement(123456, 0);
  EXPECT_EQ(r, 0.0);
  EXPECT_FALSE(std::isnan(r));
  EXPECT_FALSE(std::isinf(r));
  // 0/0 was the nan case; n/0 the inf case.
  EXPECT_EQ(NsPerStatement(0, 0), 0.0);
}

TEST(NsPerStatement, NormalDivision) {
  EXPECT_DOUBLE_EQ(NsPerStatement(1000, 250), 4.0);
}

}  // namespace
}  // namespace opec_bench
