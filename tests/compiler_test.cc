// OPEC-Compiler tests: partitioning, data layout, shadow placement,
// relocation-table instrumentation, peripheral window generation, image
// accounting.

#include <gtest/gtest.h>

#include "src/compiler/layout.h"
#include "src/compiler/opec_compiler.h"
#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace opec_compiler {
namespace {

using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

// Builds a small three-operation program:
//   main -> TaskA (reads/writes shared + a_only)
//        -> TaskB (reads/writes shared + b_only)
std::unique_ptr<Module> BuildThreeOpModule() {
  auto m = std::make_unique<Module>("threeop");
  auto& tt = m->types();
  m->AddGlobal("shared", tt.U32());
  m->AddGlobal("a_only", tt.U32());
  m->AddGlobal("b_only", tt.U32());
  {
    auto* fn = m->AddFunction("TaskA", tt.FunctionTy(tt.VoidTy(), {}), {});
    fn->set_source_file("a.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("a_only"), b.G("shared") + b.U32(1));
    b.Assign(b.G("shared"), b.G("a_only"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("TaskB", tt.FunctionTy(tt.VoidTy(), {}), {});
    fn->set_source_file("b.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("b_only"), b.G("shared") * b.U32(2));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    b.Call("TaskA");
    b.Call("TaskB");
    b.Ret(b.G("shared"));
    b.Finish();
  }
  return m;
}

PartitionConfig ThreeOpConfig() {
  PartitionConfig config;
  config.entries.push_back({"TaskA", {}});
  config.entries.push_back({"TaskB", {}});
  return config;
}

TEST(Partitioner, ClassifiesInternalAndExternalGlobals) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  const Policy& policy = result.policy;
  // `shared` is accessed by TaskA, TaskB and main -> external.
  EXPECT_GE(policy.FindExternalIndex(m->FindGlobal("shared")), 0);
  // `a_only`/`b_only` are single-operation -> internal (no reloc entry).
  EXPECT_EQ(policy.FindExternalIndex(m->FindGlobal("a_only")), -1);
  EXPECT_EQ(policy.FindExternalIndex(m->FindGlobal("b_only")), -1);
  // Internal vars still get addresses inside their op's section.
  const OperationPolicy* op_a = policy.FindOperationByEntry("TaskA");
  ASSERT_NE(op_a, nullptr);
  uint32_t a_addr = result.layout.AddrOf(m->FindGlobal("a_only"));
  EXPECT_GE(a_addr, op_a->section_base);
  EXPECT_LT(a_addr, op_a->section_base + (1u << op_a->section_size_log2));
}

TEST(Partitioner, EveryOperationGetsItsShadows) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  int shared_index = result.policy.FindExternalIndex(m->FindGlobal("shared"));
  for (const char* entry : {"main", "TaskA", "TaskB"}) {
    const OperationPolicy* op = result.policy.FindOperationByEntry(entry);
    ASSERT_NE(op, nullptr) << entry;
    bool has_shadow = false;
    for (const ShadowPlacement& sp : op->shadows) {
      has_shadow |= sp.var_index == shared_index;
    }
    EXPECT_TRUE(has_shadow) << entry << " needs a shadow of `shared`";
  }
}

TEST(Partitioner, SectionsAreMpuLegal) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  for (const OperationPolicy& op : result.policy.operations) {
    if (!op.has_section) {
      continue;
    }
    uint32_t size = 1u << op.section_size_log2;
    EXPECT_GE(size, 32u);
    EXPECT_EQ(op.section_base & (size - 1), 0u) << op.name;
    EXPECT_LE(op.section_payload, size);
  }
}

TEST(Partitioner, SectionsDoNotOverlap) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (const OperationPolicy& op : result.policy.operations) {
    if (op.has_section) {
      ranges.emplace_back(op.section_base, 1u << op.section_size_log2);
    }
  }
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      bool overlap = ranges[i].first < ranges[j].first + ranges[j].second &&
                     ranges[j].first < ranges[i].first + ranges[i].second;
      EXPECT_FALSE(overlap);
    }
  }
}

TEST(Instrument, ExternalAccessGoesThroughRelocTable) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  EXPECT_GT(result.instrument_stats.rewritten_global_accesses, 0);
  // TaskA's body must not contain a direct reference to `shared` anymore.
  std::string text = opec_ir::PrintFunction(*m->FindFunction("TaskA"));
  EXPECT_EQ(text.find("@shared"), std::string::npos) << text;
  // But internal variables stay direct.
  EXPECT_NE(text.find("@a_only"), std::string::npos);
}

TEST(Instrument, EntryCallSitesAreMarked) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  EXPECT_EQ(result.instrument_stats.instrumented_call_sites, 2);
  std::string text = opec_ir::PrintFunction(*m->FindFunction("main"));
  EXPECT_NE(text.find("svc<"), std::string::npos) << text;
}

TEST(Layout, PeripheralWindowsCoverMergedRanges) {
  for (uint32_t base : {0x40011000u, 0x40004400u, 0x50000000u}) {
    for (uint32_t len : {0x400u, 0x800u, 0x300u, 0x20u}) {
      std::vector<PeriphRegion> windows = CoverRangeWithMpuWindows(base, len);
      ASSERT_FALSE(windows.empty());
      // Property: every byte of the range is inside some window, and every
      // window is MPU-legal.
      for (const PeriphRegion& w : windows) {
        EXPECT_GE(w.size_log2, 5);
        EXPECT_EQ(w.base & ((1u << w.size_log2) - 1), 0u);
      }
      for (uint32_t probe : {base, base + len / 2, base + len - 1}) {
        bool covered = false;
        for (const PeriphRegion& w : windows) {
          covered |= probe >= w.base && probe - w.base < (1u << w.size_log2);
        }
        EXPECT_TRUE(covered) << std::hex << probe;
      }
    }
  }
}

TEST(Layout, AdjacentPeripheralsAreMerged) {
  auto m = std::make_unique<Module>("periph");
  auto& tt = m->types();
  {
    auto* fn = m->AddFunction("Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(0x40020000), b.U32(1));  // GPIOA
    b.Assign(b.Mmio32(0x40020400), b.U32(1));  // GPIOB (adjacent)
    b.Assign(b.Mmio32(0x40011000), b.U32(1));  // USART1 (separate)
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(*m, fn);
    b.Call("Task");
    b.Ret(b.U32(0));
    b.Finish();
  }
  opec_hw::SocDescription soc;
  soc.AddPeripheral({"GPIOA", 0x40020000, 0x400, false});
  soc.AddPeripheral({"GPIOB", 0x40020400, 0x400, false});
  soc.AddPeripheral({"USART1", 0x40011000, 0x400, false});
  PartitionConfig config;
  config.entries.push_back({"Task", {}});
  CompileResult result = CompileOpec(*m, soc, config, opec_hw::Board::kStm32F4Discovery);
  const OperationPolicy* op = result.policy.FindOperationByEntry("Task");
  ASSERT_NE(op, nullptr);
  // GPIOA+GPIOB merged into one range; USART1 separate (sorted by base).
  ASSERT_EQ(op->periph_ranges.size(), 2u);
  EXPECT_EQ(op->periph_ranges[0], (std::pair<uint32_t, uint32_t>{0x40011000, 0x400}));
  EXPECT_EQ(op->periph_ranges[1], (std::pair<uint32_t, uint32_t>{0x40020000, 0x800}));
  EXPECT_FALSE(op->virtualized);  // fits in the 4 reserved regions
}

TEST(Layout, ManyPeripheralsTriggerVirtualization) {
  auto m = std::make_unique<Module>("periph6");
  auto& tt = m->types();
  std::vector<uint32_t> bases = {0x40000000, 0x40002000, 0x40004000,
                                 0x40006000, 0x40008000, 0x4000A000};
  {
    auto* fn = m->AddFunction("Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(*m, fn);
    for (uint32_t base : bases) {
      b.Assign(b.Mmio32(base + 4), b.U32(1));
    }
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(*m, fn);
    b.Call("Task");
    b.Ret(b.U32(0));
    b.Finish();
  }
  opec_hw::SocDescription soc;
  for (size_t i = 0; i < bases.size(); ++i) {
    soc.AddPeripheral({"P" + std::to_string(i), bases[i], 0x400, false});
  }
  PartitionConfig config;
  config.entries.push_back({"Task", {}});
  CompileResult result = CompileOpec(*m, soc, config, opec_hw::Board::kStm32F4Discovery);
  const OperationPolicy* op = result.policy.FindOperationByEntry("Task");
  ASSERT_NE(op, nullptr);
  EXPECT_GT(op->periph_regions.size(), 4u);
  EXPECT_TRUE(op->virtualized);
}

TEST(Layout, PointerFieldOffsetsAreRecorded) {
  auto m = std::make_unique<Module>("ptrfields");
  auto& tt = m->types();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  const Type* s = tt.StructTy("H", {{"len", tt.U32(), 0}, {"buf", p_u8, 0},
                                    {"flags", tt.U32(), 0}, {"next", p_u8, 0}});
  m->AddGlobal("handle", s);
  auto add_task = [&](const std::string& name) {
    auto* fn = m->AddFunction(name, tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(*m, fn);
    b.Assign(b.Fld(b.G("handle"), "len"), b.U32(1));
    b.RetVoid();
    b.Finish();
  };
  add_task("T1");
  add_task("T2");
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(*m, fn);
    b.Call("T1");
    b.Call("T2");
    b.Ret(b.U32(0));
    b.Finish();
  }
  opec_hw::SocDescription soc;
  PartitionConfig config;
  config.entries.push_back({"T1", {}});
  config.entries.push_back({"T2", {}});
  CompileResult result = CompileOpec(*m, soc, config, opec_hw::Board::kStm32F4Discovery);
  int index = result.policy.FindExternalIndex(m->FindGlobal("handle"));
  ASSERT_GE(index, 0);
  const ExternalVar& ev = result.policy.externals[static_cast<size_t>(index)];
  EXPECT_EQ(ev.pointer_field_offsets, (std::vector<uint32_t>{4, 12}));
}

TEST(Layout, SanitizeSpecsAttachToExternals) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  PartitionConfig config = ThreeOpConfig();
  config.sanitize.push_back({"shared", 0, 100});
  CompileResult result = CompileOpec(*m, soc, config, opec_hw::Board::kStm32F4Discovery);
  int index = result.policy.FindExternalIndex(m->FindGlobal("shared"));
  ASSERT_GE(index, 0);
  const ExternalVar& ev = result.policy.externals[static_cast<size_t>(index)];
  EXPECT_TRUE(ev.sanitized);
  EXPECT_EQ(ev.san_min, 0u);
  EXPECT_EQ(ev.san_max, 100u);
}

TEST(Layout, StackIsPowerOfTwoAtTopOfSram) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  const StackPolicy& stack = result.policy.stack;
  uint32_t size = 1u << stack.size_log2;
  EXPECT_EQ(stack.base & (size - 1), 0u);
  EXPECT_EQ(stack.top, stack.base + size);
  EXPECT_EQ(stack.subregion_size(), size / 8);
  opec_hw::BoardSpec spec = opec_hw::GetBoardSpec(opec_hw::Board::kStm32F4Discovery);
  EXPECT_LE(stack.top, opec_hw::kSramBase + spec.sram_size);
}

TEST(Image, AccountingIsPopulated) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  CompileResult result = CompileOpec(*m, soc, ThreeOpConfig(),
                                     opec_hw::Board::kStm32F4Discovery);
  const MemoryAccounting& acc = result.policy.accounting;
  EXPECT_GT(acc.flash_app_code, 0u);
  EXPECT_GT(acc.flash_monitor_code, 8000u);
  EXPECT_GT(acc.flash_metadata, 0u);
  EXPECT_GT(acc.sram_sections, 0u);
  EXPECT_GT(acc.sram_stack, 0u);
  EXPECT_GT(acc.sram_reloc, 0u);
}

TEST(Image, VanillaLayoutPlacesEverything) {
  auto m = BuildThreeOpModule();
  VanillaImage image = BuildVanillaImage(*m, opec_hw::Board::kStm32F4Discovery);
  for (const auto& g : m->globals()) {
    EXPECT_NE(image.layout.AddrOf(g.get()), 0u) << g->name();
  }
  EXPECT_GT(image.layout.stack_top, image.layout.stack_base);
}

TEST(Partitioner, RejectsNonexistentEntry) {
  auto m = BuildThreeOpModule();
  opec_hw::SocDescription soc;
  PartitionConfig config;
  config.entries.push_back({"NoSuchTask", {}});
  EXPECT_DEATH(CompileOpec(*m, soc, config, opec_hw::Board::kStm32F4Discovery),
               "does not exist");
}

TEST(Helpers, NextPow2AndLog2) {
  EXPECT_EQ(NextPow2(0), 32u);
  EXPECT_EQ(NextPow2(1), 32u);
  EXPECT_EQ(NextPow2(33), 64u);
  EXPECT_EQ(NextPow2(64), 64u);
  EXPECT_EQ(NextPow2(65), 128u);
  EXPECT_EQ(Log2Ceil(32), 5);
  EXPECT_EQ(Log2Ceil(1024), 10);
}

}  // namespace
}  // namespace opec_compiler
