// Tests for the snapshot/restore subsystem (DESIGN.md §13): the state_io wire
// primitives, machine-level round trips, container versioning, delta mode,
// file I/O, warm-start (CaptureBoot/RestoreBoot) determinism across all apps,
// and the SVC-boundary round-trip probe.

#include "src/snapshot/snapshot.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/hw/address_map.h"
#include "src/hw/machine.h"
#include "src/hw/state_io.h"
#include "src/snapshot/probe.h"
#include "src/support/check.h"

namespace opec_snapshot {
namespace {

using opec_apps::AppFactory;
using opec_apps::AppRun;
using opec_apps::BuildMode;
using opec_hw::Board;
using opec_hw::Machine;
using opec_hw::StateReader;
using opec_hw::StateWriter;

const AppFactory& App(const std::string& name) {
  static const std::vector<AppFactory> kApps = opec_apps::AllApps();
  for (const AppFactory& f : kApps) {
    if (f.name == name) {
      return f;
    }
  }
  OPEC_CHECK_MSG(false, "no such app: " + name);
  return kApps[0];
}

TEST(StateIo, PrimitivesRoundTrip) {
  StateWriter w;
  w.U8(0xAB);
  w.Bool(true);
  w.Bool(false);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.Blob({1, 2, 3});
  w.Str("hello");

  StateReader r(w.data());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.Blob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(StateIo, TruncatedPayloadIsACheckError) {
  opec_support::ScopedCheckThrow guard;
  StateWriter w;
  w.U32(7);
  StateReader r(w.data());
  EXPECT_THROW(r.U64(), opec_support::CheckError);
}

TEST(Snapshot, MachineRoundTripRestoresMemoryMpuAndClock) {
  Machine machine(Board::kStm32F4Discovery);
  machine.bus().DebugWrite(opec_hw::kSramBase + 0x40, 4, 0x11223344);
  machine.AddCycles(777);
  opec_hw::MpuRegionConfig region;
  region.enabled = true;
  region.base = opec_hw::kSramBase;
  region.size_log2 = 12;
  region.ap = opec_hw::AccessPerm::kFullAccess;
  machine.mpu().set_enabled(true);
  machine.mpu().ConfigureRegion(0, region);

  Snapshot snap = Snapshot::Capture(machine);

  // Trash everything the snapshot should bring back.
  machine.bus().DebugWrite(opec_hw::kSramBase + 0x40, 4, 0);
  machine.AddCycles(123);
  machine.mpu().DisableRegion(0);
  EXPECT_FALSE(machine.mpu().CheckAccess(opec_hw::kSramBase + 0x40, 4,
                                         opec_hw::AccessKind::kWrite, false));

  Snapshot::Deserialize(snap.Serialize()).Restore(machine);

  uint32_t v = 0;
  EXPECT_TRUE(machine.bus().DebugRead(opec_hw::kSramBase + 0x40, 4, &v));
  EXPECT_EQ(v, 0x11223344u);
  EXPECT_EQ(machine.cycles(), 777u);
  EXPECT_TRUE(machine.mpu().CheckAccess(opec_hw::kSramBase + 0x40, 4,
                                        opec_hw::AccessKind::kWrite, false));
}

TEST(Snapshot, DirtyPageFastRestoreMatchesFullRestore) {
  Machine machine(Board::kStm32F4Discovery);
  machine.bus().DebugWrite(opec_hw::kSramBase + 0x100, 4, 0xAABBCCDD);
  machine.AddCycles(77);
  Snapshot snap = Snapshot::Capture(machine);
  machine.bus().CaptureMemoryBaseline();
  ASSERT_TRUE(machine.bus().has_memory_baseline());

  // Dirty several distinct pages through every mutation path the bus has:
  // the guest write fast path, debug writes (flash and SRAM), and a bulk
  // copy spanning multiple pages (its interior pages must be marked too).
  EXPECT_TRUE(machine.bus().Write(opec_hw::kSramBase + 0x100, 4, 0x01020304, true).ok());
  machine.bus().DebugWrite(opec_hw::kSramBase + 0x5004, 4, 0x55667788);
  machine.bus().DebugWrite(opec_hw::kFlashBase + 0x2000, 4, 0x99999999);
  EXPECT_TRUE(machine.bus().BulkCopy(opec_hw::kFlashBase, opec_hw::kSramBase + 0x8000,
                                     3 * 4096 + 8, true));
  machine.AddCycles(123);
  EXPECT_NE(Snapshot::Capture(machine).Digest(), snap.Digest());

  snap.RestoreFast(machine);
  EXPECT_EQ(Snapshot::Capture(machine).Digest(), snap.Digest());

  // A second fast restore after more writes works too (the dirty map was
  // cleared page-by-page as it restored).
  machine.bus().DebugWrite(opec_hw::kSramBase + 0xC000, 4, 0x13572468);
  snap.RestoreFast(machine);
  EXPECT_EQ(Snapshot::Capture(machine).Digest(), snap.Digest());
}

TEST(Snapshot, DigestIsStableAndSensitive) {
  Machine machine(Board::kStm32F4Discovery);
  Snapshot a = Snapshot::Capture(machine);
  Snapshot b = Snapshot::Capture(machine);
  EXPECT_EQ(a.Digest(), b.Digest());
  machine.bus().DebugWrite(opec_hw::kSramBase, 1, 1);
  EXPECT_NE(Snapshot::Capture(machine).Digest(), a.Digest());
}

TEST(Snapshot, MagicAndVersionAreChecked) {
  opec_support::ScopedCheckThrow guard;
  Machine machine(Board::kStm32F4Discovery);
  std::vector<uint8_t> good = Snapshot::Capture(machine).Serialize();

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(Snapshot::Deserialize(bad_magic), opec_support::CheckError);

  std::vector<uint8_t> bad_version = good;
  bad_version[4] += 1;  // little-endian version word follows the magic
  EXPECT_THROW(Snapshot::Deserialize(bad_version), opec_support::CheckError);
}

TEST(Snapshot, DeltaReconstructsAndRejectsWrongBaseline) {
  Machine machine(Board::kStm32F4Discovery);
  Snapshot base = Snapshot::Capture(machine);

  machine.bus().DebugWrite(opec_hw::kSramBase + 0x1000, 4, 0xCAFEF00D);
  machine.AddCycles(42);
  Snapshot cur = Snapshot::Capture(machine);

  SnapshotDelta delta = cur.DeltaFrom(base);
  // A few touched words must encode as a tiny fraction of the full image.
  EXPECT_LT(delta.PayloadBytes(), cur.Serialize().size() / 10);

  SnapshotDelta rewire = SnapshotDelta::Deserialize(delta.Serialize());
  Snapshot rebuilt = Snapshot::ApplyDelta(base, rewire);
  EXPECT_EQ(rebuilt.Digest(), cur.Digest());

  // A delta against baseline A must refuse to apply to baseline B.
  opec_support::ScopedCheckThrow guard;
  EXPECT_THROW(Snapshot::ApplyDelta(cur, delta), opec_support::CheckError);
}

TEST(Snapshot, FileRoundTrip) {
  Machine machine(Board::kStm32F4Discovery);
  machine.bus().DebugWrite(opec_hw::kSramBase + 8, 4, 0x5EED5EED);
  Snapshot snap = Snapshot::Capture(machine);
  std::string path = ::testing::TempDir() + "opec_snapshot_test.snap";
  snap.WriteFile(path);
  EXPECT_EQ(Snapshot::ReadFile(path).Digest(), snap.Digest());
  std::remove(path.c_str());
}

// Warm start: a run forked from the boot snapshot is bit-identical (modeled
// outputs) to a cold from-scratch run, repeatedly.
TEST(Snapshot, WarmRerunMatchesColdRunBothModes) {
  const AppFactory& factory = App("PinLock");
  for (BuildMode mode : {BuildMode::kOpec, BuildMode::kVanilla}) {
    SCOPED_TRACE(mode == BuildMode::kOpec ? "opec" : "vanilla");
    std::unique_ptr<opec_apps::Application> cold_app = factory.make();
    AppRun cold(*cold_app, mode);
    opec_rt::RunResult want = cold.Execute();
    ASSERT_TRUE(want.ok) << want.violation;
    EXPECT_EQ(cold.Check(), "");

    std::unique_ptr<opec_apps::Application> warm_app = factory.make();
    AppRun warm(*warm_app, mode);
    warm.CaptureBoot();
    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE(round);
      if (round > 0) {
        warm.RestoreBoot();
      }
      opec_rt::RunResult got = warm.Execute();
      ASSERT_TRUE(got.ok) << got.violation;
      EXPECT_EQ(warm.Check(), "");
      EXPECT_EQ(got.cycles, want.cycles);
      EXPECT_EQ(got.statements, want.statements);
      EXPECT_EQ(got.return_value, want.return_value);
    }
  }
}

// Restore-then-resume golden traces: for every registered app, the warm rerun
// replays the exact function-entry event sequence (function, depth, cycle,
// operation) of a cold run.
TEST(Snapshot, RestoreThenResumeMatchesGoldenTraceEveryApp) {
  for (const AppFactory& factory : opec_apps::AllApps()) {
    SCOPED_TRACE(factory.name);
    std::unique_ptr<opec_apps::Application> cold_app = factory.make();
    AppRun cold(*cold_app, BuildMode::kOpec);
    cold.EnableTrace();
    opec_rt::RunResult want = cold.Execute();

    std::unique_ptr<opec_apps::Application> warm_app = factory.make();
    AppRun warm(*warm_app, BuildMode::kOpec);
    warm.CaptureBoot();
    (void)warm.Execute();  // dirty the machine
    warm.RestoreBoot();
    warm.EnableTrace();
    opec_rt::RunResult got = warm.Execute();

    EXPECT_EQ(got.ok, want.ok);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.statements, want.statements);
    EXPECT_EQ(got.return_value, want.return_value);

    const auto& golden = cold.trace().events();
    const auto& replay = warm.trace().events();
    ASSERT_EQ(replay.size(), golden.size());
    for (size_t i = 0; i < golden.size(); ++i) {
      ASSERT_EQ(replay[i].fn->name(), golden[i].fn->name()) << "event " << i;
      ASSERT_EQ(replay[i].depth, golden[i].depth) << "event " << i;
      ASSERT_EQ(replay[i].cycle, golden[i].cycle) << "event " << i;
      ASSERT_EQ(replay[i].operation_id, golden[i].operation_id) << "event " << i;
    }
  }
}

// The SVC-boundary round-trip probe must be invisible: same modeled outputs
// as the unprobed run, zero digest mismatches, and the delta encoding of
// mid-run states must beat full images.
TEST(Snapshot, RoundTripProbeIsInvisibleAndClean) {
  const AppFactory& factory = App("PinLock");
  std::unique_ptr<opec_apps::Application> plain_app = factory.make();
  AppRun plain(*plain_app, BuildMode::kOpec);
  opec_rt::RunResult want = plain.Execute();
  ASSERT_TRUE(want.ok) << want.violation;

  std::unique_ptr<opec_apps::Application> probed_app = factory.make();
  AppRun probed(*probed_app, BuildMode::kOpec);
  probed.EnableSnapshotProbe();
  opec_rt::RunResult got = probed.Execute();

  ASSERT_TRUE(got.ok) << got.violation;
  ASSERT_NE(probed.probe(), nullptr);
  EXPECT_TRUE(probed.probe()->errors().empty())
      << probed.probe()->errors().front();
  // Program start + end, plus one per operation enter/exit SVC.
  EXPECT_GE(probed.probe()->probes(), 2u);
  EXPECT_LT(probed.probe()->delta_bytes(), probed.probe()->full_bytes());
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.statements, want.statements);
  EXPECT_EQ(got.return_value, want.return_value);
}

// Crash-state capture: with fault-state capture enabled, a denied injected
// write produces a FaultReport carrying the serialized machine state, and the
// blob decodes back into a Machine.
TEST(Snapshot, FaultReportCarriesRestorableMachineState) {
  const AppFactory& factory = App("PinLock");
  std::unique_ptr<opec_apps::Application> app = factory.make();
  AppRun run(*app, BuildMode::kOpec);
  run.engine().set_fault_state_capture(true);

  // A write into unmapped space: the bus faults it unconditionally and the
  // engine captures a report mid-run (the run itself continues).
  opec_rt::AttackSpec attack;
  attack.function = "main";
  attack.occurrence = 1;
  attack.addr = 0x70000000;
  attack.value = 0xBADF00D;
  (void)run.AddAttack(attack);
  (void)run.Execute();

  ASSERT_FALSE(run.engine().fault_reports().empty());
  const opec_obs::FaultReport& report = run.engine().fault_reports().front();
  ASSERT_NE(report.machine_state, nullptr);
  EXPECT_EQ(report.machine_state_digest,
            opec_hw::Fnv1a64(report.machine_state->data(), report.machine_state->size()));

  // The blob restores into a machine with the same SoC device complement
  // (device payloads are matched by name against the attached devices).
  std::unique_ptr<opec_apps::Application> scratch_app = factory.make();
  AppRun scratch(*scratch_app, BuildMode::kOpec);
  StateReader r(*report.machine_state);
  scratch.machine().LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(scratch.machine().cycles(), report.cycle);
}

}  // namespace
}  // namespace opec_snapshot
