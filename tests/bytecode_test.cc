// Bytecode-tier differential tests: the VM must be observationally
// indistinguishable from the tree-walking interpreter — same results, same
// modeled cycles and statement counts, same obs-event stream — on every
// bundled application, including under statement limits, attacks and the
// OPEC monitor protocol. The interpreter is the oracle; any mismatch here is
// a lowering or dispatch bug.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/hw/mpu.h"
#include "src/obs/event.h"
#include "src/rt/bytecode/vm.h"

namespace opec_test {
namespace {

using opec_apps::AppRun;
using opec_apps::BuildMode;
using opec_apps::EngineKind;

// FNV-1a digest over every field of every event — order-sensitive, so the
// two tiers must emit identical streams in identical order.
class DigestSink : public opec_obs::Sink {
 public:
  void OnEvent(const opec_obs::Event& e) override {
    Mix(static_cast<uint64_t>(e.kind));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(e.operation_id)));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(e.depth)));
    Mix(e.cycle);
    Mix(e.arg0);
    Mix(e.arg1);
    Mix(e.arg2);
  }
  uint64_t digest() const { return h_; }

 private:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ull;
    }
  }
  uint64_t h_ = 0xCBF29CE484222325ull;
};

struct TierObservation {
  bool ok = false;
  std::string violation;
  uint32_t return_value = 0;
  uint64_t cycles = 0;
  uint64_t statements = 0;
  uint64_t events_digest = 0;
  std::string check;
};

TierObservation Observe(const opec_apps::AppFactory& factory, BuildMode mode,
                        EngineKind engine, uint64_t statement_limit = 0) {
  auto app = factory.make();
  AppRun run(*app, mode, engine);
  DigestSink sink;
  run.AttachSink(&sink);
  if (statement_limit != 0) {
    run.engine().set_statement_limit(statement_limit);
  }
  opec_rt::RunResult r = run.Execute();
  TierObservation obs;
  obs.ok = r.ok;
  obs.violation = r.violation;
  obs.return_value = r.return_value;
  obs.cycles = r.cycles;
  obs.statements = r.statements;
  obs.events_digest = sink.digest();
  obs.check = run.Check();
  return obs;
}

void ExpectIdentical(const TierObservation& interp, const TierObservation& bc,
                     const std::string& label) {
  EXPECT_EQ(interp.ok, bc.ok) << label;
  EXPECT_EQ(interp.violation, bc.violation) << label;
  EXPECT_EQ(interp.return_value, bc.return_value) << label;
  EXPECT_EQ(interp.cycles, bc.cycles) << label;
  EXPECT_EQ(interp.statements, bc.statements) << label;
  EXPECT_EQ(interp.events_digest, bc.events_digest) << label;
  EXPECT_EQ(interp.check, bc.check) << label;
}

// Every app, both build modes: the full observation tuple must match.
TEST(BytecodeTier, AllAppsBothModesBitIdentical) {
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    for (BuildMode mode : {BuildMode::kVanilla, BuildMode::kOpec}) {
      std::string label = std::string(factory.name) +
                          (mode == BuildMode::kOpec ? "/opec" : "/vanilla");
      TierObservation interp = Observe(factory, mode, EngineKind::kInterp);
      TierObservation bc = Observe(factory, mode, EngineKind::kBytecode);
      ExpectIdentical(interp, bc, label);
      EXPECT_EQ(interp.check, "") << label;
    }
  }
}

// Statement-limit aborts must fire after the exact same statement, with the
// exact same cycle count (the per-instruction accounting replay): sweep a
// band of limits so crossings land mid-batch, not only on batch boundaries.
TEST(BytecodeTier, StatementLimitAbortParity) {
  const std::vector<opec_apps::AppFactory> apps = opec_apps::AllApps();
  const opec_apps::AppFactory& factory = apps[0];
  for (uint64_t limit : {1ull, 7ull, 100ull, 1001ull, 4999ull, 20000ull}) {
    for (BuildMode mode : {BuildMode::kVanilla, BuildMode::kOpec}) {
      std::string label = std::string(factory.name) + " limit=" + std::to_string(limit) +
                          (mode == BuildMode::kOpec ? " opec" : " vanilla");
      TierObservation interp = Observe(factory, mode, EngineKind::kInterp, limit);
      TierObservation bc = Observe(factory, mode, EngineKind::kBytecode, limit);
      ExpectIdentical(interp, bc, label);
      EXPECT_FALSE(interp.ok) << label;  // limits chosen to abort every app
    }
  }
}

// Injected attacks (the paper's threat-model primitive) must fire at the same
// occurrence, be blocked identically, and leave identical modeled state.
TEST(BytecodeTier, AttackInjectionParity) {
  const std::vector<opec_apps::AppFactory> apps = opec_apps::AllApps();
  const opec_apps::AppFactory& factory = apps[0];
  auto observe_with_attack = [&](EngineKind engine) {
    auto app = factory.make();
    AppRun run(*app, BuildMode::kOpec, engine);
    const auto& ops = run.compile()->policy.operations;
    opec_rt::AttackSpec attack;
    attack.function = ops.front().entry;
    attack.addr = ops.back().section_base;
    attack.value = 0x41414141;
    run.AddAttack(attack);
    DigestSink sink;
    run.AttachSink(&sink);
    opec_rt::RunResult r = run.Execute();
    TierObservation obs;
    obs.ok = r.ok;
    obs.violation = r.violation;
    obs.return_value = r.return_value;
    obs.cycles = r.cycles;
    obs.statements = r.statements;
    obs.events_digest = sink.digest();
    obs.check = run.Check();
    EXPECT_EQ(run.engine().attacks()[0].fired, true);
    return obs;
  };
  ExpectIdentical(observe_with_attack(EngineKind::kInterp),
                  observe_with_attack(EngineKind::kBytecode), "attack");
}

// The lowered module itself: every function gets an entry, and the verdict
// cache has one slot per instruction.
TEST(BytecodeTier, LoweringShape) {
  auto app = opec_apps::AllApps()[0].make();
  AppRun run(*app, BuildMode::kOpec, EngineKind::kBytecode);
  auto& vm = static_cast<opec_rt::bytecode::VM&>(run.engine());
  const opec_rt::bytecode::BytecodeModule& bc = vm.Bytecode();
  EXPECT_FALSE(bc.code.empty());
  EXPECT_EQ(bc.funcs.size(), run.module().functions().size());
  EXPECT_GT(bc.max_regs, 0u);
}

// The peephole superinstructions must actually fire: a representative app
// contains constant-operand arithmetic, compare-and-branch shapes, and
// indexed/offset addressing, so their fused forms must appear in the stream.
// (Their semantics are covered by the differential tests; this pins the
// lowering itself so a regressed peephole cannot silently fall back to the
// unfused forms.)
TEST(BytecodeTier, SuperinstructionsFire) {
  using opec_rt::bytecode::Op;
  std::map<Op, uint32_t> histo;
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    auto app = factory.make();
    AppRun run(*app, BuildMode::kOpec, EngineKind::kBytecode);
    auto& vm = static_cast<opec_rt::bytecode::VM&>(run.engine());
    for (const opec_rt::bytecode::Insn& ins : vm.Bytecode().code) {
      ++histo[ins.op];
    }
  }
  EXPECT_GT(histo[Op::kBinaryImm], 0u);
  EXPECT_GT(histo[Op::kBrCmpFalse] + histo[Op::kBrCmpImmFalse], 0u);
  EXPECT_GT(histo[Op::kLoadIdx] + histo[Op::kStoreIdx], 0u);
  for (const auto& [op, n] : histo) {
    std::printf("  %-14s %u\n", opec_rt::bytecode::OpName(op), n);
  }
}

// AllowedRange: verdicts match CheckAccess, and the returned interval is
// uniform — the contract the VM's verdict cache rests on.
TEST(BytecodeTier, MpuAllowedRangeContract) {
  opec_hw::Mpu mpu;
  uint32_t lo = 0;
  uint32_t hi = 0;
  // Disabled MPU: one allow interval spanning the whole address space.
  EXPECT_TRUE(mpu.AllowedRange(0x20000100u, opec_hw::AccessKind::kWrite, false, &lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0xFFFFFFFFu);

  mpu.set_enabled(true);
  opec_hw::MpuRegionConfig cfg;
  cfg.enabled = true;
  cfg.base = 0x20000000u;
  cfg.size_log2 = 10;  // 1 KB, 128-byte sub-regions
  cfg.srd = 0x02;      // sub-region 1 disabled
  cfg.ap = opec_hw::AccessPerm::kFullAccess;
  mpu.ConfigureRegion(0, cfg);

  // Inside sub-region 0: allowed, interval exactly that sub-region.
  EXPECT_TRUE(mpu.AllowedRange(0x20000010u, opec_hw::AccessKind::kWrite, false, &lo, &hi));
  EXPECT_EQ(lo, 0x20000000u);
  EXPECT_EQ(hi, 0x2000007Fu);
  // Inside the disabled sub-region: falls through to the background map,
  // denied for unprivileged, and the interval must not leak past it.
  EXPECT_FALSE(mpu.AllowedRange(0x20000080u, opec_hw::AccessKind::kWrite, false, &lo, &hi));
  EXPECT_EQ(lo, 0x20000080u);
  EXPECT_EQ(hi, 0x200000FFu);
  // Outside every region: background map, privileged-only, clipped at the
  // region's end so re-entering the region can't reuse this verdict.
  EXPECT_TRUE(mpu.AllowedRange(0x20000400u, opec_hw::AccessKind::kRead, true, &lo, &hi));
  EXPECT_EQ(lo, 0x20000400u);
  EXPECT_EQ(hi, 0xFFFFFFFFu);
  EXPECT_FALSE(mpu.AllowedRange(0x20000400u, opec_hw::AccessKind::kRead, false, &lo, &hi));
}

}  // namespace
}  // namespace opec_test
