// Execution-engine semantics: arithmetic, control flow, calls, memory,
// faults, limits, indirect calls.

#include <gtest/gtest.h>

#include "tests/guest_harness.h"

namespace opec_rt {
namespace {

using opec_ir::FunctionBuilder;
using opec_ir::Type;
using opec_ir::Val;
using opec_test::GuestHarness;

// Builds `u32 main() { return <expr built by f>; }`.
template <typename F>
RunResult RunExpr(F build_expr) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Ret(build_expr(b));
  b.Finish();
  return h.Run();
}

TEST(Engine, UnsignedArithmetic) {
  auto r = RunExpr([](FunctionBuilder& b) {
    return (b.U32(7) + b.U32(3)) * b.U32(2) - b.U32(5);  // 15
  });
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 15u);
}

TEST(Engine, UnsignedDivRem) {
  auto r = RunExpr([](FunctionBuilder& b) {
    return b.U32(17) / b.U32(5) * b.U32(100) + b.U32(17) % b.U32(5);  // 302
  });
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.return_value, 302u);
}

TEST(Engine, SignedComparisonAndDivision) {
  auto r = RunExpr([](FunctionBuilder& b) {
    // (-7)/2 = -3 (truncating); (-3 < 0) = 1
    Val neg = b.I32(-7) / b.I32(2);
    return b.CastTo(b.types().U32(), (neg < b.I32(0)) & (neg == b.I32(-3)));
  });
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 1u);
}

TEST(Engine, SubWordTruncationOnStore) {
  GuestHarness h;
  auto& tt = h.module().types();
  h.module().AddGlobal("b8", tt.U8());
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Assign(b.G("b8"), b.U32(0x1FF));
  b.Ret(b.CastTo(tt.U32(), b.G("b8")));
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.return_value, 0xFFu);
}

TEST(Engine, SignExtensionOnWideningCast) {
  GuestHarness h;
  auto& tt = h.module().types();
  h.module().AddGlobal("s8", tt.I8());
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Assign(b.G("s8"), b.C(tt.I8(), -2));
  b.Ret(b.CastTo(tt.U32(), b.CastTo(tt.I32(), b.G("s8"))));
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.return_value, 0xFFFFFFFEu);
}

TEST(Engine, ShortCircuitEvaluation) {
  // (1 || crash) && !(0 && crash) must not evaluate the crashing operand.
  GuestHarness h;
  auto& tt = h.module().types();
  h.module().AddGlobal("touched", tt.U32());
  auto* side = h.module().AddFunction("side", tt.FunctionTy(tt.U32(), {}), {});
  {
    FunctionBuilder b(h.module(), side);
    b.Assign(b.G("touched"), b.U32(1));
    b.Ret(b.U32(1));
    b.Finish();
  }
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Do(b.U32(1) || b.CallV("side"));
  b.Do(b.U32(0) && b.CallV("side"));
  b.Ret(b.G("touched"));
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.return_value, 0u) << "short-circuit operands were evaluated";
}

TEST(Engine, WhileBreakContinue) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  Val i = b.Local("i", tt.U32());
  Val sum = b.Local("sum", tt.U32());
  b.Assign(i, b.U32(0));
  b.Assign(sum, b.U32(0));
  b.While(b.U32(1));
  {
    b.Assign(i, i + b.U32(1));
    b.If(i > b.U32(10));
    b.Break();
    b.End();
    b.If((i % b.U32(2)) == b.U32(0));
    b.Continue();
    b.End();
    b.Assign(sum, sum + i);  // odd numbers 1..9
  }
  b.End();
  b.Ret(sum);
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.return_value, 25u);
}

TEST(Engine, RecursionUsesStackFrames) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* fib = h.module().AddFunction("fib", tt.FunctionTy(tt.U32(), {tt.U32()}), {"n"});
  {
    FunctionBuilder b(h.module(), fib);
    b.If(b.L("n") < b.U32(2));
    b.Ret(b.L("n"));
    b.End();
    b.Ret(b.CallV("fib", {b.L("n") - b.U32(1)}) + b.CallV("fib", {b.L("n") - b.U32(2)}));
    b.Finish();
  }
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Ret(b.CallV("fib", {b.U32(12)}));
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 144u);
}

TEST(Engine, LocalArraysLiveOnTheGuestStack) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  Val buf = b.Local("buf", tt.ArrayOf(tt.U32(), 8));
  Val i = b.Local("i", tt.U32());
  b.Assign(i, b.U32(0));
  b.While(i < b.U32(8));
  {
    b.Assign(b.Idx(buf, i), i * i);
    b.Assign(i, i + b.U32(1));
  }
  b.End();
  // The array's address must be inside the stack window.
  Val addr = b.CastTo(tt.U32(), b.Addr(b.Idx(buf, 0u)));
  b.Ret(b.Idx(buf, 7u) + (addr >> b.U32(28)));  // 49 + 2 (0x2XXXXXXX)
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.return_value, 51u);
}

TEST(Engine, PointerArgumentsAliasCallerLocals) {
  GuestHarness h;
  auto& tt = h.module().types();
  const Type* p_u32 = tt.PointerTo(tt.U32());
  auto* bump = h.module().AddFunction("bump", tt.FunctionTy(tt.VoidTy(), {p_u32}), {"p"});
  {
    FunctionBuilder b(h.module(), bump);
    b.Assign(b.Deref(b.L("p")), b.Deref(b.L("p")) + b.U32(10));
    b.RetVoid();
    b.Finish();
  }
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  Val x = b.Local("x", tt.U32());
  b.Assign(x, b.U32(5));
  b.Call("bump", {b.Addr(x)});
  b.Call("bump", {b.Addr(x)});
  b.Ret(x);
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.return_value, 25u);
}

TEST(Engine, DivisionByZeroAborts) {
  GuestHarness h;
  auto& tt = h.module().types();
  h.module().AddGlobal("zero", tt.U32());
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Ret(b.U32(1) / b.G("zero"));
  b.Finish();
  auto r = h.Run();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("division by zero"), std::string::npos);
}

TEST(Engine, NullDereferenceFaults) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  Val p = b.Local("p", tt.PointerTo(tt.U32()));
  b.Assign(p, b.Null(tt.PointerTo(tt.U32())));
  b.Ret(b.Deref(p));
  b.Finish();
  auto r = h.Run();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("BusFault"), std::string::npos);
}

TEST(Engine, MissingEntryFunctionFails) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Ret(b.U32(0));
  b.Finish();
  auto r = h.Run("does_not_exist");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("no such entry function"), std::string::npos);
}

TEST(Engine, InfiniteLoopHitsStatementLimit) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.While(b.U32(1));
  b.End();
  b.Ret(b.U32(0));
  b.Finish();
  opec_compiler::VanillaImage image =
      opec_compiler::BuildVanillaImage(h.module(), h.machine().board().board);
  opec_compiler::LoadGlobals(h.machine(), h.module(), image.layout);
  ExecutionEngine engine(h.machine(), h.module(), image.layout);
  engine.set_statement_limit(10000);
  RunResult limited = engine.Run("main");
  EXPECT_FALSE(limited.ok);
  EXPECT_NE(limited.violation.find("statement limit"), std::string::npos);
}

TEST(Engine, DeepRecursionOverflowsGuestStack) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* down = h.module().AddFunction("down", tt.FunctionTy(tt.U32(), {tt.U32()}), {"n"});
  {
    FunctionBuilder b(h.module(), down);
    // Large frame to exhaust the 16 KB stack quickly.
    b.Local("pad", tt.ArrayOf(tt.U32(), 64));
    b.Ret(b.CallV("down", {b.L("n") + b.U32(1)}));
    b.Finish();
  }
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Ret(b.CallV("down", {b.U32(0)}));
  b.Finish();
  auto r = h.Run();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.violation.find("stack overflow") != std::string::npos ||
              r.violation.find("depth limit") != std::string::npos)
      << r.violation;
}

TEST(Engine, ICallDispatchesThroughFunctionPointer) {
  GuestHarness h;
  auto& tt = h.module().types();
  const Type* sig = tt.FunctionTy(tt.U32(), {tt.U32()});
  h.module().AddGlobal("op", tt.PointerTo(sig));
  auto* dbl = h.module().AddFunction("dbl", sig, {"x"});
  {
    FunctionBuilder b(h.module(), dbl);
    b.Ret(b.L("x") * b.U32(2));
    b.Finish();
  }
  auto* inc = h.module().AddFunction("inc", sig, {"x"});
  {
    FunctionBuilder b(h.module(), inc);
    b.Ret(b.L("x") + b.U32(1));
    b.Finish();
  }
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Assign(b.G("op"), b.FnPtr("dbl"));
  Val a = b.Local("a", tt.U32());
  b.Assign(a, b.ICallV(sig, b.G("op"), {b.U32(21)}));
  b.Assign(b.G("op"), b.FnPtr("inc"));
  b.Ret(a + b.ICallV(sig, b.G("op"), {b.U32(57)}));
  b.Finish();
  auto r = h.Run();
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 100u);
}

TEST(Engine, ICallToNonFunctionAddressAborts) {
  GuestHarness h;
  auto& tt = h.module().types();
  const Type* sig = tt.FunctionTy(tt.U32(), {});
  h.module().AddGlobal("op", tt.PointerTo(sig));
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Assign(b.G("op"), b.CastTo(tt.PointerTo(sig), b.U32(0x12345678)));
  b.Ret(b.ICallV(sig, b.G("op"), {}));
  b.Finish();
  auto r = h.Run();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("indirect call"), std::string::npos);
}

TEST(Engine, TraceRecordsExecutedFunctions) {
  GuestHarness h;
  auto& tt = h.module().types();
  auto* helper = h.module().AddFunction("helper", tt.FunctionTy(tt.VoidTy(), {}), {});
  {
    FunctionBuilder b(h.module(), helper);
    b.RetVoid();
    b.Finish();
  }
  auto* unused = h.module().AddFunction("unused", tt.FunctionTy(tt.VoidTy(), {}), {});
  {
    FunctionBuilder b(h.module(), unused);
    b.RetVoid();
    b.Finish();
  }
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(h.module(), fn);
  b.Call("helper");
  b.Ret(b.U32(0));
  b.Finish();
  ExecutionTrace trace;
  h.set_trace(&trace);
  auto r = h.Run();
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(trace.WasExecuted(h.module().FindFunction("main")));
  EXPECT_TRUE(trace.WasExecuted(helper));
  EXPECT_FALSE(trace.WasExecuted(unused));
  ASSERT_GE(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].fn->name(), "main");
}

TEST(Engine, CyclesAccumulate) {
  auto r = RunExpr([](FunctionBuilder& b) { return b.U32(1) + b.U32(2); });
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Engine, SecondRunStartsFromCleanPerRunState) {
  // Regression: Run() must reset per-run state — in particular the
  // fired/blocked outputs of injected attacks and the per-function entry
  // counts they key on — so a second Run() on the same engine behaves like
  // the first, rather than seeing the attack as already fired.
  GuestHarness h;
  auto& tt = h.module().types();
  h.module().AddGlobal("sink", tt.U32());
  auto* leaf = h.module().AddFunction("leaf", tt.FunctionTy(tt.U32(), {tt.U32()}), {"x"});
  {
    FunctionBuilder b(h.module(), leaf);
    b.Ret(b.L("x"));
    b.Finish();
  }
  auto* fn = h.module().AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  {
    FunctionBuilder b(h.module(), fn);
    b.Ret(b.CallV("leaf", {b.U32(3)}) + b.CallV("leaf", {b.U32(4)}));
    b.Finish();
  }
  opec_compiler::VanillaImage image =
      opec_compiler::BuildVanillaImage(h.module(), h.machine().board().board);
  opec_compiler::LoadGlobals(h.machine(), h.module(), image.layout);
  ExecutionEngine engine(h.machine(), h.module(), image.layout);
  AttackSpec attack;
  attack.function = "leaf";
  attack.occurrence = 2;  // fires on the second entry of leaf, per run
  attack.addr = image.layout.AddrOf(h.module().FindGlobal("sink"));
  attack.value = 77;
  engine.AddAttack(attack);

  RunResult first = engine.Run("main");
  ASSERT_TRUE(first.ok) << first.violation;
  EXPECT_EQ(first.return_value, 7u);
  ASSERT_TRUE(engine.attacks()[0].fired);
  EXPECT_FALSE(engine.attacks()[0].blocked);
  uint32_t sink = 0;
  ASSERT_TRUE(h.machine().bus().DebugRead(attack.addr, 4, &sink));
  EXPECT_EQ(sink, 77u);

  // Clear the attack's footprint, then run again: with clean state the
  // attack must fire again on the second leaf entry of *this* run.
  ASSERT_TRUE(h.machine().bus().DebugWrite(attack.addr, 4, 0));
  RunResult second = engine.Run("main");
  ASSERT_TRUE(second.ok) << second.violation;
  EXPECT_EQ(second.return_value, first.return_value);
  EXPECT_EQ(second.statements, first.statements);
  EXPECT_TRUE(engine.attacks()[0].fired);
  EXPECT_FALSE(engine.attacks()[0].blocked);
  ASSERT_TRUE(h.machine().bus().DebugRead(attack.addr, 4, &sink));
  EXPECT_EQ(sink, 77u) << "stale fired flag suppressed the attack on the second run";
}

}  // namespace
}  // namespace opec_rt
