// Unit + property tests for the ARMv7-M MPU model (Section 2.2 semantics).

#include <gtest/gtest.h>

#include "src/hw/mpu.h"

namespace opec_hw {
namespace {

MpuRegionConfig Region(uint32_t base, uint8_t size_log2, AccessPerm ap, uint8_t srd = 0,
                       bool xn = true) {
  MpuRegionConfig r;
  r.enabled = true;
  r.base = base;
  r.size_log2 = size_log2;
  r.ap = ap;
  r.srd = srd;
  r.xn = xn;
  return r;
}

TEST(Mpu, DisabledMpuAllowsEverything) {
  Mpu mpu;
  EXPECT_TRUE(mpu.CheckAccess(0x1234, 4, AccessKind::kWrite, false));
}

TEST(Mpu, BackgroundMapIsPrivilegedOnly) {
  Mpu mpu;
  mpu.set_enabled(true);
  EXPECT_TRUE(mpu.CheckAccess(0x20000000, 4, AccessKind::kWrite, true));
  EXPECT_FALSE(mpu.CheckAccess(0x20000000, 4, AccessKind::kWrite, false));
  EXPECT_FALSE(mpu.CheckAccess(0x20000000, 4, AccessKind::kRead, false));
}

TEST(Mpu, AccessPermissionMatrix) {
  struct Case {
    AccessPerm ap;
    bool priv_r, priv_w, unpriv_r, unpriv_w;
  };
  const Case cases[] = {
      {AccessPerm::kNoAccess, false, false, false, false},
      {AccessPerm::kPrivRw, true, true, false, false},
      {AccessPerm::kPrivRwUnprivRo, true, true, true, false},
      {AccessPerm::kFullAccess, true, true, true, true},
      {AccessPerm::kPrivRo, true, false, false, false},
      {AccessPerm::kReadOnly, true, false, true, false},
  };
  for (const Case& c : cases) {
    Mpu mpu;
    mpu.set_enabled(true);
    mpu.ConfigureRegion(0, Region(0x20000000, 10, c.ap));
    SCOPED_TRACE(AccessPermName(c.ap));
    EXPECT_EQ(mpu.CheckAccess(0x20000010, 4, AccessKind::kRead, true), c.priv_r);
    EXPECT_EQ(mpu.CheckAccess(0x20000010, 4, AccessKind::kWrite, true), c.priv_w);
    EXPECT_EQ(mpu.CheckAccess(0x20000010, 4, AccessKind::kRead, false), c.unpriv_r);
    EXPECT_EQ(mpu.CheckAccess(0x20000010, 4, AccessKind::kWrite, false), c.unpriv_w);
  }
}

TEST(Mpu, HighestNumberedRegionWins) {
  Mpu mpu;
  mpu.set_enabled(true);
  mpu.ConfigureRegion(0, Region(0x20000000, 16, AccessPerm::kFullAccess));
  mpu.ConfigureRegion(5, Region(0x20000000, 10, AccessPerm::kNoAccess));
  // Inside region 5's window: denied despite region 0 allowing.
  EXPECT_FALSE(mpu.CheckAccess(0x20000004, 4, AccessKind::kRead, false));
  // Outside region 5 but inside region 0: allowed.
  EXPECT_TRUE(mpu.CheckAccess(0x20000400, 4, AccessKind::kRead, false));
}

TEST(Mpu, DisabledSubRegionFallsThroughToLowerRegion) {
  Mpu mpu;
  mpu.set_enabled(true);
  // Region 1: 4KB full access; region 7: same window no-access but with
  // sub-region 0 disabled -> accesses to the first 512 bytes fall through.
  mpu.ConfigureRegion(1, Region(0x20000000, 12, AccessPerm::kFullAccess));
  mpu.ConfigureRegion(7, Region(0x20000000, 12, AccessPerm::kNoAccess, /*srd=*/0x01));
  EXPECT_TRUE(mpu.CheckAccess(0x20000000, 4, AccessKind::kWrite, false));   // sub 0: disabled
  EXPECT_FALSE(mpu.CheckAccess(0x20000200, 4, AccessKind::kWrite, false));  // sub 1: active
}

TEST(Mpu, StackSubRegionProtectionPattern) {
  // The monitor's stack pattern: region 2 covers the whole stack, SRD bits
  // disable the sub-regions used by previous operations (Figure 8).
  Mpu mpu;
  mpu.set_enabled(true);
  uint32_t stack_base = 0x20004000;  // 16 KB region
  uint8_t srd = 0;
  for (int sub = 6; sub < 8; ++sub) {
    srd |= static_cast<uint8_t>(1 << sub);  // previous op used subs 6..7
  }
  mpu.ConfigureRegion(2, Region(stack_base, 14, AccessPerm::kFullAccess, srd));
  uint32_t sub_size = (1u << 14) / 8;
  EXPECT_TRUE(mpu.CheckAccess(stack_base + 0 * sub_size, 4, AccessKind::kWrite, false));
  EXPECT_TRUE(mpu.CheckAccess(stack_base + 5 * sub_size, 4, AccessKind::kWrite, false));
  EXPECT_FALSE(mpu.CheckAccess(stack_base + 6 * sub_size, 4, AccessKind::kWrite, false));
  EXPECT_FALSE(mpu.CheckAccess(stack_base + 7 * sub_size + 100, 4, AccessKind::kWrite, false));
}

TEST(Mpu, AccessSpanningRegionBoundaryChecksBothEnds) {
  Mpu mpu;
  mpu.set_enabled(true);
  mpu.ConfigureRegion(0, Region(0x20000000, 29, AccessPerm::kFullAccess));
  mpu.ConfigureRegion(3, Region(0x20000400, 10, AccessPerm::kNoAccess));
  // A 4-byte access whose last byte enters the forbidden region.
  EXPECT_FALSE(mpu.CheckAccess(0x200003FE, 4, AccessKind::kRead, false));
  EXPECT_TRUE(mpu.CheckAccess(0x200003F8, 4, AccessKind::kRead, false));
}

TEST(Mpu, ExecChecksHonorXn) {
  Mpu mpu;
  mpu.set_enabled(true);
  mpu.ConfigureRegion(0, Region(0x08000000, 20, AccessPerm::kReadOnly, 0, /*xn=*/false));
  mpu.ConfigureRegion(1, Region(0x20000000, 20, AccessPerm::kFullAccess, 0, /*xn=*/true));
  EXPECT_TRUE(mpu.CheckExec(0x08000100, false));
  EXPECT_FALSE(mpu.CheckExec(0x20000100, false));  // W^X: data is never executable
}

TEST(Mpu, ConfigWritesAreCounted) {
  Mpu mpu;
  uint64_t before = mpu.config_writes();
  mpu.ConfigureRegion(0, Region(0x20000000, 10, AccessPerm::kFullAccess));
  mpu.DisableRegion(0);
  EXPECT_EQ(mpu.config_writes(), before + 2);
}

// Property sweep: any power-of-two-sized, size-aligned region accepts its
// whole window and nothing outside it.
class MpuRegionSweep : public ::testing::TestWithParam<uint8_t> {};

TEST_P(MpuRegionSweep, WindowIsExact) {
  uint8_t size_log2 = GetParam();
  uint32_t size = 1u << size_log2;
  uint32_t base = 0x20000000 & ~(size - 1);
  Mpu mpu;
  mpu.set_enabled(true);
  mpu.ConfigureRegion(4, Region(base, size_log2, AccessPerm::kFullAccess));
  EXPECT_TRUE(mpu.CheckAccess(base, 1, AccessKind::kWrite, false));
  EXPECT_TRUE(mpu.CheckAccess(base + size - 1, 1, AccessKind::kWrite, false));
  EXPECT_FALSE(mpu.CheckAccess(base + size, 1, AccessKind::kWrite, false));
  if (base > 0) {
    EXPECT_FALSE(mpu.CheckAccess(base - 1, 1, AccessKind::kWrite, false));
  }
}

INSTANTIATE_TEST_SUITE_P(AllLegalSizes, MpuRegionSweep,
                         ::testing::Values(5, 6, 7, 8, 10, 12, 14, 16, 20, 24));

// Property sweep: with SRD, exactly the enabled sub-regions are accessible
// (no lower region to fall through to).
class MpuSrdSweep : public ::testing::TestWithParam<uint8_t> {};

TEST_P(MpuSrdSweep, SubRegionMaskIsRespected) {
  uint8_t srd = GetParam();
  Mpu mpu;
  mpu.set_enabled(true);
  uint32_t base = 0x20000000;
  mpu.ConfigureRegion(2, Region(base, 12, AccessPerm::kFullAccess, srd));
  uint32_t sub_size = (1u << 12) / 8;
  for (int sub = 0; sub < 8; ++sub) {
    bool disabled = (srd >> sub) & 1;
    EXPECT_EQ(mpu.CheckAccess(base + static_cast<uint32_t>(sub) * sub_size + 8, 4,
                              AccessKind::kWrite, false),
              !disabled)
        << "sub-region " << sub << " srd=0x" << std::hex << int(srd);
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, MpuSrdSweep,
                         ::testing::Values(0x00, 0x01, 0x80, 0xF0, 0x0F, 0xAA, 0x55, 0xFE));

using MpuDeathTest = Mpu;

TEST(MpuDeathTest, RejectsMisalignedBase) {
  Mpu mpu;
  EXPECT_DEATH(mpu.ConfigureRegion(0, Region(0x20000004, 10, AccessPerm::kFullAccess)),
               "not aligned");
}

TEST(MpuDeathTest, RejectsTinyRegions) {
  Mpu mpu;
  EXPECT_DEATH(mpu.ConfigureRegion(0, Region(0x20000000, 4, AccessPerm::kFullAccess)),
               "smaller than 32");
}

TEST(Mpu, LoadStateInvalidatesDecisionCache) {
  // Regression: restoring register state through LoadState must invalidate
  // the inline decision cache. Warm the cache with a deny decision, then
  // restore a config that allows the same access — the cached path must agree
  // with the uncached region walk, not serve the stale deny.
  Mpu allowing;
  allowing.set_enabled(true);
  allowing.ConfigureRegion(0, Region(0x20000000, 12, AccessPerm::kFullAccess));
  StateWriter w;
  allowing.SaveState(w);

  Mpu mpu;
  mpu.set_enabled(true);
  mpu.ConfigureRegion(0, Region(0x20000000, 12, AccessPerm::kNoAccess));
  ASSERT_FALSE(mpu.CheckAccess(0x20000010, 4, AccessKind::kWrite, false));  // cache warmed

  StateReader r(w.data());
  mpu.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(mpu.CheckAccess(0x20000010, 4, AccessKind::kWrite, false),
            mpu.CheckAccessUncached(0x20000010, 4, AccessKind::kWrite, false));
  EXPECT_TRUE(mpu.CheckAccess(0x20000010, 4, AccessKind::kWrite, false));
}

TEST(MpuDeathTest, RejectsSrdOnSmallRegions) {
  Mpu mpu;
  EXPECT_DEATH(mpu.ConfigureRegion(0, Region(0x20000000, 7, AccessPerm::kFullAccess, 0x01)),
               "sub-region");
}

}  // namespace
}  // namespace opec_hw
