// End-to-end smoke tests: PinLock runs correctly vanilla and under OPEC, and
// the Section 6.1 case-study attack is blocked by OPEC.

#include <gtest/gtest.h>

#include "src/apps/pinlock.h"
#include "src/apps/runner.h"
#include "src/ir/printer.h"

namespace opec_apps {
namespace {

TEST(PinLockSmoke, VanillaScenarioPasses) {
  PinLockApp app(10);
  AppRun run(app, BuildMode::kVanilla);
  opec_rt::RunResult result = run.Execute();
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_EQ(run.Check(), "");
  EXPECT_GT(result.cycles, 0u);
}

TEST(PinLockSmoke, OpecScenarioPasses) {
  PinLockApp app(10);
  AppRun run(app, BuildMode::kOpec);
  opec_rt::RunResult result = run.Execute();
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_EQ(run.Check(), "");

  // All six developer entries plus the default main operation.
  ASSERT_NE(run.compile(), nullptr);
  EXPECT_EQ(run.compile()->policy.operations.size(), 7u);
  // The monitor actually switched operations.
  EXPECT_GT(run.monitor()->stats().operation_switches, 0u);
  // Shared globals were synchronized.
  EXPECT_GT(run.monitor()->stats().synced_bytes, 0u);
  // The prompt buffer was relocated onto Unlock_Task's stack portion.
  EXPECT_GT(run.monitor()->stats().relocated_stack_bytes, 0u);
  // DWT reads from unprivileged main were emulated.
  EXPECT_GT(run.monitor()->stats().emulated_core_accesses, 0u);
}

TEST(PinLockSmoke, OpecMatchesVanillaOutputs) {
  PinLockApp app(5);
  AppRun vanilla(app, BuildMode::kVanilla);
  AppRun opec(app, BuildMode::kOpec);
  opec_rt::RunResult rv = vanilla.Execute();
  opec_rt::RunResult ro = opec.Execute();
  ASSERT_TRUE(rv.ok) << rv.violation;
  ASSERT_TRUE(ro.ok) << ro.violation;
  auto& duv = static_cast<PinLockDevices&>(vanilla.devices());
  auto& duo = static_cast<PinLockDevices&>(opec.devices());
  EXPECT_EQ(duv.uart->TxString(), duo.uart->TxString());
  EXPECT_EQ(rv.return_value, ro.return_value);
}

// Section 6.1: an attacker who compromised the HAL receive path (invoked from
// Lock_Task) tries to overwrite KEY. Under OPEC the write targets either the
// public copy or Unlock_Task's shadow — both outside Lock_Task's operation
// data section — and faults.
TEST(PinLockSmoke, CaseStudyAttackOnKeyIsBlocked) {
  PinLockApp app(3);
  AppRun run(app, BuildMode::kOpec);

  const opec_compiler::Policy& policy = run.compile()->policy;
  int key_index = -1;
  for (size_t i = 0; i < policy.externals.size(); ++i) {
    if (policy.externals[i].gv->name() == "KEY") {
      key_index = static_cast<int>(i);
    }
  }
  ASSERT_GE(key_index, 0) << "KEY must be a shared (external) variable";

  // Lock_Task's operation must NOT contain a shadow of KEY (that is the whole
  // point of the shadowing technique vs ACES's merged regions).
  const opec_compiler::OperationPolicy* lock_op = policy.FindOperationByEntry("Lock_Task");
  ASSERT_NE(lock_op, nullptr);
  for (const auto& sp : lock_op->shadows) {
    EXPECT_NE(sp.var_index, key_index) << "Lock_Task must not have a KEY shadow";
  }

  // Attack: 2nd invocation of the HAL routine happens inside Lock_Task
  // (Unlock_Task calls it first each round). Overwrite KEY's public copy with
  // hash("9999") so the wrong pin would unlock.
  opec_rt::AttackSpec attack;
  attack.function = "HAL_UART_Receive_IT";
  attack.occurrence = 2;  // inside Lock_Task
  attack.addr = policy.externals[static_cast<size_t>(key_index)].public_addr;
  attack.value = 0xDEADBEEF;
  run.AddAttack(attack);

  opec_rt::RunResult result = run.Execute();
  ASSERT_TRUE(result.ok) << result.violation;
  ASSERT_TRUE(run.engine().attacks()[0].fired);
  EXPECT_TRUE(run.engine().attacks()[0].blocked);
  // The scenario still behaves correctly: wrong pins never unlock.
  EXPECT_EQ(run.Check(), "");
}

// The same attack against the vanilla binary lands: no isolation.
TEST(PinLockSmoke, CaseStudyAttackLandsOnVanilla) {
  PinLockApp app(3);
  AppRun vanilla_probe(app, BuildMode::kVanilla);
  // Find KEY's address in the vanilla layout via the engine layout.
  const opec_ir::GlobalVariable* key = vanilla_probe.module().FindGlobal("KEY");
  ASSERT_NE(key, nullptr);
  uint32_t key_addr = vanilla_probe.engine().layout().AddrOf(key);
  ASSERT_NE(key_addr, 0u);

  opec_rt::AttackSpec attack;
  attack.function = "HAL_UART_Receive_IT";
  attack.occurrence = 2;
  attack.addr = key_addr;
  attack.value = 0xDEADBEEF;
  vanilla_probe.AddAttack(attack);
  opec_rt::RunResult result = vanilla_probe.Execute();
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_TRUE(vanilla_probe.engine().attacks()[0].fired);
  EXPECT_FALSE(vanilla_probe.engine().attacks()[0].blocked);
  // KEY was corrupted, so correct pins now fail: the check reports a mismatch.
  EXPECT_NE(vanilla_probe.Check(), "");
}

TEST(PinLockSmoke, PolicyTextIsGenerated) {
  PinLockApp app(1);
  AppRun run(app, BuildMode::kOpec);
  std::string text = run.compile()->policy.ToText();
  EXPECT_NE(text.find("Unlock_Task"), std::string::npos);
  EXPECT_NE(text.find("sanitize"), std::string::npos);
}

}  // namespace
}  // namespace opec_apps
