// Tests for the runtime-verification subsystem (src/rv, DESIGN.md §15): the
// automaton framework on synthetic event streams, the four standard monitors
// against hand-built protocol breaks, and the end-to-end contract on real
// workloads — clean runs trip nothing on either engine, blocked attacks trip
// the matching automaton, and the deterministic report is byte-identical
// across execution tiers.

#include "src/rv/rv.h"

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/hw/mpu.h"
#include "src/obs/event.h"
#include "src/rv/automaton.h"
#include "src/rv/monitors.h"

namespace {

using opec_obs::Event;
using opec_obs::EventKind;
using opec_rv::Automaton;
using opec_rv::BuildStandardMonitors;
using opec_rv::RvEnv;
using opec_rv::RvSink;
using opec_rv::StandardMonitorNames;

Event Ev(EventKind kind, uint32_t arg0 = 0, uint32_t arg1 = 0, uint32_t arg2 = 0,
         int32_t op = -1, int32_t depth = 0) {
  return Event::Make(kind, /*cycle=*/0, op, depth, arg0, arg1, arg2);
}

// --- Automaton framework -------------------------------------------------

TEST(AutomatonTest, RulesTransitionAndViolate) {
  Automaton a("toy");
  int s0 = a.AddState("closed");
  int s1 = a.AddState("open");
  a.AddRule(s0, EventKind::kSvc, s1);
  a.AddRule(s1, EventKind::kOperationEnter, s0);
  a.AddRule(s1, EventKind::kSvc, Automaton::kViolation, "nested svc");
  a.Compile();

  EXPECT_FALSE(a.Step(Ev(EventKind::kSvc)));
  EXPECT_EQ(a.current_state(), s1);
  EXPECT_FALSE(a.Step(Ev(EventKind::kOperationEnter)));
  EXPECT_EQ(a.current_state(), s0);
  EXPECT_EQ(a.violations(), 0u);

  EXPECT_FALSE(a.Step(Ev(EventKind::kSvc)));
  EXPECT_TRUE(a.Step(Ev(EventKind::kSvc)));  // "nested svc"
  EXPECT_EQ(a.violations(), 1u);
  EXPECT_EQ(a.last_violation_message(), "nested svc");
  EXPECT_EQ(a.last_violation_state(), s1);
  // A violation resets to the initial state.
  EXPECT_EQ(a.current_state(), s0);
}

TEST(AutomatonTest, NonStrictStatesSelfLoopStrictStatesViolate) {
  Automaton a("strictness");
  int loose = a.AddState("loose");
  int strict = a.AddState("strict", /*strict=*/true);
  a.AddRule(loose, EventKind::kSvc, strict);
  a.AddRule(strict, EventKind::kSvc, loose);
  a.Compile();

  // No rule for kMemFault in the loose state: self-loop, no violation.
  EXPECT_FALSE(a.Step(Ev(EventKind::kMemFault)));
  EXPECT_EQ(a.current_state(), loose);

  EXPECT_FALSE(a.Step(Ev(EventKind::kSvc)));
  EXPECT_EQ(a.current_state(), strict);
  // No rule for kMemFault in the strict state: violation.
  EXPECT_TRUE(a.Step(Ev(EventKind::kMemFault)));
  EXPECT_EQ(a.violations(), 1u);
  EXPECT_NE(a.last_violation_message().find("unexpected"), std::string::npos);
}

TEST(AutomatonTest, GuardedRulesAreFirstMatchWins) {
  Automaton a("guards");
  int s0 = a.AddState("s0");
  int s1 = a.AddState("s1");
  int s2 = a.AddState("s2");
  a.AddGuardedRule(s0, EventKind::kSvc, [](const Event& e) { return e.arg0 == 7; }, s1);
  a.AddRule(s0, EventKind::kSvc, s2);
  a.Compile();

  a.Step(Ev(EventKind::kSvc, /*arg0=*/7));
  EXPECT_EQ(a.current_state(), s1);

  Automaton b("guards2");
  b.AddState("s0");
  int b1 = b.AddState("s1");
  int b2 = b.AddState("s2");
  b.AddGuardedRule(0, EventKind::kSvc, [](const Event& e) { return e.arg0 == 7; }, b1);
  b.AddRule(0, EventKind::kSvc, b2);
  b.Compile();
  b.Step(Ev(EventKind::kSvc, /*arg0=*/3));  // guard fails -> unguarded rule
  EXPECT_EQ(b.current_state(), b2);
}

TEST(AutomatonTest, ResetHookRunsOnViolation) {
  int resets = 0;
  Automaton a("reset");
  a.AddState("s0", /*strict=*/true);
  a.SetResetHook([&resets] { ++resets; });
  a.Compile();
  EXPECT_TRUE(a.Step(Ev(EventKind::kSvc)));
  EXPECT_EQ(resets, 1);
}

TEST(AutomatonTest, FinishHookFiresOnceAndCountsAsViolation) {
  Automaton a("finish");
  a.AddState("s0");
  int open = a.AddState("open");
  a.AddRule(0, EventKind::kSvc, open);
  a.SetFinishHook([](bool aborted, int state) -> std::string {
    if (!aborted && state != 0) {
      return "ended mid-window";
    }
    return "";
  });
  a.Compile();
  a.Step(Ev(EventKind::kSvc));
  EXPECT_TRUE(a.Finish(/*aborted=*/false));
  EXPECT_EQ(a.violations(), 1u);
  EXPECT_EQ(a.last_violation_message(), "ended mid-window");
  // Idempotent: a second Finish neither fires nor recounts.
  EXPECT_FALSE(a.Finish(false));
  EXPECT_EQ(a.violations(), 1u);
}

TEST(AutomatonTest, VisitedStatesTracksDistinctStates) {
  Automaton a("visited");
  a.AddState("s0");
  int s1 = a.AddState("s1");
  a.AddState("s2");  // never visited
  a.AddRule(0, EventKind::kSvc, s1);
  a.AddRule(s1, EventKind::kSvc, 0);
  a.Compile();
  EXPECT_EQ(a.visited_states(), 1u);  // initial state counts
  a.Step(Ev(EventKind::kSvc));
  a.Step(Ev(EventKind::kSvc));
  a.Step(Ev(EventKind::kSvc));
  EXPECT_EQ(a.visited_states(), 2u);
  EXPECT_EQ(a.state_count(), 3u);
}

// --- Standard monitors on synthetic streams ------------------------------

std::unique_ptr<RvSink> SyntheticSink() {
  RvEnv env;  // no MPU, no shadow owners, vanilla-style
  return std::make_unique<RvSink>(BuildStandardMonitors(env));
}

TEST(StandardMonitors, CleanSwitchWindowPasses) {
  RvEnv env;
  env.opec_mode = true;
  env.shadow_owners = {{2, 0}, {2, 1}};
  RvSink sink(BuildStandardMonitors(env));
  // enter op 2: svc, write-back, copy-in, reconfig, enter.
  sink.OnEvent(Ev(EventKind::kSvc, /*op target=*/2, /*enter=*/0, 0, /*op=*/-1));
  sink.OnEvent(Ev(EventKind::kShadowSync, 1, 4, opec_obs::kSyncWriteBack, 2));
  sink.OnEvent(Ev(EventKind::kShadowSync, 0, 4, opec_obs::kSyncCopyIn, 2));
  sink.OnEvent(Ev(EventKind::kMpuReconfig, 0, 0x20000000, 0, Event::kNoOperation));
  sink.OnEvent(Ev(EventKind::kOperationEnter, 2, static_cast<uint32_t>(-1), 0, 2));
  // exit op 2 mirrored.
  sink.OnEvent(Ev(EventKind::kSvc, 2, /*exit=*/1, 0, 2));
  sink.OnEvent(Ev(EventKind::kShadowSync, 1, 4, opec_obs::kSyncWriteBack, 2));
  sink.OnEvent(Ev(EventKind::kMpuReconfig, 0, 0x20000000, 0, Event::kNoOperation));
  sink.OnEvent(Ev(EventKind::kOperationExit, 2, static_cast<uint32_t>(-1), 0, 2));
  sink.Finish(/*run_aborted=*/false);
  EXPECT_EQ(sink.total_violations(), 0u) << sink.Report();
}

TEST(StandardMonitors, LooseShadowSyncViolatesSwitchProtocol) {
  auto sink = SyntheticSink();
  sink->OnEvent(Ev(EventKind::kShadowSync, 0, 4, opec_obs::kSyncCopyIn));
  sink->Finish(false);
  std::vector<uint64_t> by = sink->ViolationsByMonitor();
  EXPECT_GE(by[0], 1u);  // switch-protocol
  ASSERT_FALSE(sink->details().empty());
  EXPECT_EQ(sink->details()[0].automaton, "switch-protocol");
}

TEST(StandardMonitors, MidWindowAbortIsFlaggedByFinish) {
  auto sink = SyntheticSink();
  // A window opens but the run aborts before the enter event: the unwind's
  // kFunctionExit lands in a strict window state.
  sink->OnEvent(Ev(EventKind::kSvc, 2, 0));
  sink->OnEvent(Ev(EventKind::kShadowSync, 0, 4, opec_obs::kSyncWriteBack));
  sink->OnEvent(Ev(EventKind::kFunctionExit, 5, 0, 0, -1, 1));
  sink->Finish(/*run_aborted=*/true);
  std::vector<uint64_t> by = sink->ViolationsByMonitor();
  EXPECT_GE(by[0], 1u) << sink->Report();
}

TEST(StandardMonitors, UnresolvedFaultViolatesShadowIsolation) {
  auto sink = SyntheticSink();
  sink->OnEvent(Ev(EventKind::kMemFault, 0x20001000, 4,
                   opec_obs::kFaultWrite | opec_obs::kFaultAttack));
  sink->Finish(false);
  std::vector<uint64_t> by = sink->ViolationsByMonitor();
  EXPECT_EQ(by[1], 1u);  // shadow-isolation
  // A resolved fault (demand-mapped peripheral) is not a violation.
  auto sink2 = SyntheticSink();
  sink2->OnEvent(Ev(EventKind::kMemFault, 0x40000000, 4,
                    opec_obs::kFaultWrite | opec_obs::kFaultResolved));
  sink2->Finish(false);
  EXPECT_EQ(sink2->total_violations(), 0u);
}

TEST(StandardMonitors, UnownedShadowSyncViolatesShadowIsolation) {
  RvEnv env;
  env.opec_mode = true;
  env.shadow_owners = {{1, 0}};
  RvSink sink(BuildStandardMonitors(env));
  // Open a window so switch-protocol accepts the sync; attribute the sync to
  // op 2 which owns nothing.
  sink.OnEvent(Ev(EventKind::kSvc, 2, 0));
  sink.OnEvent(Ev(EventKind::kShadowSync, 0, 4, opec_obs::kSyncCopyIn, /*op=*/2));
  std::vector<uint64_t> by = sink.ViolationsByMonitor();
  EXPECT_EQ(by[1], 1u) << sink.Report();
}

TEST(StandardMonitors, MpuCoherenceCrossChecksTheLiveMpu) {
  opec_hw::Mpu mpu;
  RvEnv env;
  env.mpu = &mpu;
  RvSink sink(BuildStandardMonitors(env));

  opec_hw::MpuRegionConfig cfg;
  cfg.enabled = true;
  cfg.base = 0x20000000;
  cfg.size_log2 = 8;
  cfg.ap = opec_hw::AccessPerm::kFullAccess;
  mpu.ConfigureRegion(0, cfg);
  uint32_t packed = opec_obs::PackMpuConfig(true, 8, 0,
                                            static_cast<uint8_t>(cfg.ap));
  // Matching payload + bumped generation: clean.
  sink.OnEvent(Ev(EventKind::kMpuReconfig, 0, 0x20000000, packed, Event::kNoOperation));
  EXPECT_EQ(sink.total_violations(), 0u) << sink.Report();

  // Replaying the event without any reconfiguration: the verdict cache was
  // not invalidated since the last observed reconfig.
  sink.OnEvent(Ev(EventKind::kMpuReconfig, 0, 0x20000000, packed, Event::kNoOperation));
  std::vector<uint64_t> by = sink.ViolationsByMonitor();
  EXPECT_EQ(by[2], 1u) << sink.Report();
  ASSERT_FALSE(sink.details().empty());
  EXPECT_NE(sink.details()[0].message.find("verdict-cache"), std::string::npos);

  // Reconfigure for real but report a payload that disagrees with the live
  // region state.
  mpu.ConfigureRegion(0, cfg);
  sink.OnEvent(Ev(EventKind::kMpuReconfig, 0, 0xDEAD0000, packed, Event::kNoOperation));
  by = sink.ViolationsByMonitor();
  EXPECT_EQ(by[2], 2u) << sink.Report();
}

TEST(StandardMonitors, CallDepthPairsLifo) {
  auto sink = SyntheticSink();
  sink->OnEvent(Ev(EventKind::kFunctionEnter, 1, 0, 0, -1, 1));
  sink->OnEvent(Ev(EventKind::kFunctionEnter, 2, 0, 0, -1, 2));
  sink->OnEvent(Ev(EventKind::kFunctionExit, 2, 0, 0, -1, 2));
  sink->OnEvent(Ev(EventKind::kFunctionExit, 1, 0, 0, -1, 1));
  sink->Finish(false);
  EXPECT_EQ(sink->total_violations(), 0u);

  auto bad = SyntheticSink();
  bad->OnEvent(Ev(EventKind::kFunctionEnter, 1, 0, 0, -1, 1));
  bad->OnEvent(Ev(EventKind::kFunctionExit, 9, 0, 0, -1, 1));  // wrong function
  bad->Finish(false);
  std::vector<uint64_t> by = bad->ViolationsByMonitor();
  EXPECT_EQ(by[3], 1u) << bad->Report();

  auto open = SyntheticSink();
  open->OnEvent(Ev(EventKind::kFunctionEnter, 1, 0, 0, -1, 1));
  open->Finish(/*run_aborted=*/false);  // clean end with an open frame
  by = open->ViolationsByMonitor();
  EXPECT_EQ(by[3], 1u) << open->Report();
}

// --- End-to-end on the real workloads ------------------------------------

TEST(RvEndToEnd, CleanRunsHaveZeroViolationsOnBothEngines) {
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    for (opec_apps::BuildMode mode :
         {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec}) {
      for (opec_apps::EngineKind engine :
           {opec_apps::EngineKind::kInterp, opec_apps::EngineKind::kBytecode}) {
        opec_apps::AppRun run(*app, mode, engine);
        run.EnableRv();
        opec_rt::RunResult r = run.Execute();
        ASSERT_TRUE(r.ok) << factory.name << ": " << r.violation;
        EXPECT_EQ(run.rv()->total_violations(), 0u)
            << factory.name << " "
            << (mode == opec_apps::BuildMode::kOpec ? "opec" : "vanilla") << " "
            << opec_apps::EngineKindName(engine) << "\n"
            << run.rv()->Report();
        // OPEC runs actually exercise the protocol automaton.
        if (mode == opec_apps::BuildMode::kOpec) {
          EXPECT_GT(run.rv()->states_visited(),
                    static_cast<uint64_t>(StandardMonitorNames().size()))
              << factory.name;
        }
      }
    }
  }
}

TEST(RvEndToEnd, ReportIsByteIdenticalAcrossEngines) {
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    for (opec_apps::BuildMode mode :
         {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec}) {
      std::string reports[2];
      int i = 0;
      for (opec_apps::EngineKind engine :
           {opec_apps::EngineKind::kInterp, opec_apps::EngineKind::kBytecode}) {
        opec_apps::AppRun run(*app, mode, engine);
        run.EnableRv();
        ASSERT_TRUE(run.Execute().ok);
        reports[i++] = run.rv()->Report();
      }
      EXPECT_EQ(reports[0], reports[1]) << factory.name;
      EXPECT_EQ(reports[0].rfind("RV report", 0), 0u);
    }
  }
}

TEST(RvEndToEnd, BlockedCrossSectionWriteTripsShadowIsolation) {
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
    const opec_compiler::Policy& policy = run.compile()->policy;
    const opec_compiler::OperationPolicy* attacker = nullptr;
    const opec_compiler::OperationPolicy* victim = nullptr;
    for (const auto& op : policy.operations) {
      if (op.id != policy.default_op_id && attacker == nullptr) {
        attacker = &op;
      } else if (op.has_section && attacker != nullptr && op.id != attacker->id) {
        victim = &op;
      }
    }
    if (attacker == nullptr || victim == nullptr) {
      continue;
    }
    opec_rt::AttackSpec attack;
    attack.function = attacker->entry;
    attack.addr = victim->section_base;
    attack.value = 0x41414141;
    run.AddAttack(attack);
    run.EnableRv();
    opec_rt::RunResult r = run.Execute();
    ASSERT_TRUE(r.ok) << factory.name << ": " << r.violation;
    const opec_rt::AttackSpec& echoed = run.engine().attacks()[0];
    if (!echoed.fired || !echoed.blocked) {
      continue;
    }
    std::vector<uint64_t> by = run.rv()->ViolationsByMonitor();
    EXPECT_GE(by[1], 1u) << factory.name << ": blocked attack tripped no monitor\n"
                         << run.rv()->Report();
    ASSERT_FALSE(run.rv()->details().empty()) << factory.name;
    const opec_rv::RvViolation& v = run.rv()->details()[0];
    EXPECT_EQ(v.automaton, "shadow-isolation");
    EXPECT_FALSE(v.recent.empty()) << "violation carries no event context";
  }
}

TEST(RvEndToEnd, ViolationDetailsCarryOffendingEventAndContext) {
  auto sink = SyntheticSink();
  for (int i = 0; i < 5; ++i) {
    sink->OnEvent(Ev(EventKind::kFunctionEnter, static_cast<uint32_t>(i), 0, 0, -1, i));
  }
  sink->OnEvent(Ev(EventKind::kMemFault, 0x20001000, 4, opec_obs::kFaultWrite));
  ASSERT_EQ(sink->details().size(), 1u);
  const opec_rv::RvViolation& v = sink->details()[0];
  EXPECT_EQ(v.event.kind, EventKind::kMemFault);
  EXPECT_EQ(v.recent.size(), 5u);
  EXPECT_NE(opec_rv::FormatEvent(v.event).find("mem_fault"), std::string::npos)
      << opec_rv::FormatEvent(v.event);
}

}  // namespace
