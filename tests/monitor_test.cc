// OPEC-Monitor runtime tests: shadow synchronization semantics (Figure 7),
// sanitization aborts, stack protection (Figure 8), MPU virtualization and
// core-peripheral emulation.

#include <gtest/gtest.h>

#include "src/compiler/opec_compiler.h"
#include "src/hw/address_map.h"
#include "src/hw/devices/gpio.h"
#include "src/ir/builder.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"

namespace opec_monitor {
namespace {

using opec_compiler::CompileOpec;
using opec_compiler::CompileResult;
using opec_compiler::PartitionConfig;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

// Harness that compiles a module for OPEC and runs it under the monitor.
struct OpecHarness {
  explicit OpecHarness(opec_hw::Board board = opec_hw::Board::kStm32F4Discovery)
      : module("t"), machine(board) {}

  opec_rt::RunResult Compile(const PartitionConfig& config,
                             const opec_hw::SocDescription& soc_in = {}) {
    soc = soc_in;
    compile = std::make_unique<CompileResult>(
        CompileOpec(module, soc, config, machine.board().board));
    monitor = std::make_unique<Monitor>(machine, compile->policy, soc);
    opec_compiler::LoadGlobals(machine, module, compile->layout);
    engine = std::make_unique<opec_rt::ExecutionEngine>(machine, module, compile->layout,
                                                        monitor.get());
    return engine->Run("main");
  }

  uint32_t DebugRead32(uint32_t addr) {
    uint32_t v = 0;
    machine.bus().DebugRead(addr, 4, &v);
    return v;
  }

  Module module;
  opec_hw::Machine machine;
  opec_hw::SocDescription soc;
  std::unique_ptr<CompileResult> compile;
  std::unique_ptr<Monitor> monitor;
  std::unique_ptr<opec_rt::ExecutionEngine> engine;
};

// Figure 7 reproduction: nested operations share `y`; values must travel
// shadow -> public -> shadow across switches.
//   main: y=1; TaskB();   check y==7 afterwards
//   TaskB: seen_b = y (must be 1); y=5; TaskC(); after_c = y (must be 7)
//   TaskC: seen_c = y (must be 5); y=7
TEST(Monitor, ShadowSynchronizationAcrossNestedSwitches) {
  OpecHarness h;
  auto& tt = h.module.types();
  h.module.AddGlobal("y", tt.U32());
  h.module.AddGlobal("seen_b", tt.U32());   // internal to TaskB
  h.module.AddGlobal("seen_c", tt.U32());   // internal to TaskC
  h.module.AddGlobal("after_c", tt.U32());  // internal to TaskB

  {
    auto* fn = h.module.AddFunction("TaskC", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.G("seen_c"), b.G("y"));
    b.Assign(b.G("y"), b.U32(7));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("TaskB", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.G("seen_b"), b.G("y"));
    b.Assign(b.G("y"), b.U32(5));
    b.Call("TaskC");
    b.Assign(b.G("after_c"), b.G("y"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.G("y"), b.U32(1));
    b.Call("TaskB");
    b.Ret(b.G("y"));
    b.Finish();
  }
  PartitionConfig config;
  config.entries.push_back({"TaskB", {}});
  config.entries.push_back({"TaskC", {}});
  opec_rt::RunResult r = h.Compile(config);
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 7u) << "main must observe TaskC's final write";

  // Internal recorder variables live at fixed addresses; read them directly.
  EXPECT_EQ(h.DebugRead32(h.compile->layout.AddrOf(h.module.FindGlobal("seen_b"))), 1u);
  EXPECT_EQ(h.DebugRead32(h.compile->layout.AddrOf(h.module.FindGlobal("seen_c"))), 5u);
  EXPECT_EQ(h.DebugRead32(h.compile->layout.AddrOf(h.module.FindGlobal("after_c"))), 7u);
  EXPECT_GE(h.monitor->stats().operation_switches, 4u);
  EXPECT_GT(h.monitor->stats().synced_bytes, 0u);
}

TEST(Monitor, SanitizationAbortsOnOutOfRangeValue) {
  OpecHarness h;
  auto& tt = h.module.types();
  h.module.AddGlobal("speed", tt.U32());
  {
    auto* fn = h.module.AddFunction("TaskBad", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.G("speed"), b.U32(9999));  // outside the developer range
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("TaskRead", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Ret(b.G("speed"));
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Call("TaskBad");
    b.Ret(b.CallV("TaskRead"));
    b.Finish();
  }
  PartitionConfig config;
  config.entries.push_back({"TaskBad", {}});
  config.entries.push_back({"TaskRead", {}});
  config.sanitize.push_back({"speed", 0, 100});
  opec_rt::RunResult r = h.Compile(config);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("sanitization"), std::string::npos) << r.violation;
  EXPECT_NE(h.monitor->last_violation().find("speed"), std::string::npos);
  // The corrupted value must NOT have propagated to the public copy.
  uint32_t public_addr = h.compile->layout.AddrOf(h.module.FindGlobal("speed"));
  EXPECT_NE(h.DebugRead32(public_addr), 9999u);
}

TEST(Monitor, InRangeValuesPassSanitization) {
  OpecHarness h;
  auto& tt = h.module.types();
  h.module.AddGlobal("speed", tt.U32());
  {
    auto* fn = h.module.AddFunction("TaskOk", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.G("speed"), b.U32(55));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Call("TaskOk");
    b.Ret(b.G("speed"));
    b.Finish();
  }
  PartitionConfig config;
  config.entries.push_back({"TaskOk", {}});
  config.sanitize.push_back({"speed", 0, 100});
  opec_rt::RunResult r = h.Compile(config);
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 55u);
  EXPECT_GT(h.monitor->stats().sanitization_checks, 0u);
}

// Figure 8 reproduction: a pointer argument into the caller's stack is
// relocated onto the callee operation's stack portion and copied back.
TEST(Monitor, StackArgumentRelocationAndCopyBack) {
  OpecHarness h;
  auto& tt = h.module.types();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  {
    auto* fn = h.module.AddFunction("Fill", tt.FunctionTy(tt.VoidTy(), {p_u8, tt.U32()}),
                                    {"buf", "n"});
    FunctionBuilder b(h.module, fn);
    Val i = b.Local("i", tt.U32());
    b.Assign(i, b.U32(0));
    b.While(i < b.L("n"));
    {
      b.Assign(b.Idx(b.L("buf"), i), b.U8('B'));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    Val buf = b.Local("buf", tt.ArrayOf(tt.U8(), 16));
    Val i = b.Local("i", tt.U32());
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(16));
    {
      b.Assign(b.Idx(buf, i), b.U8('A'));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Call("Fill", {b.Addr(b.Idx(buf, 0u)), b.U32(16)});
    // After copy-back, main's buffer must hold 'B's.
    b.Ret(b.CastTo(tt.U32(), b.Idx(buf, 0u)) * b.U32(256) +
          b.CastTo(tt.U32(), b.Idx(buf, 15u)));
    b.Finish();
  }
  PartitionConfig config;
  config.entries.push_back({"Fill", {{0, 16}}});
  opec_rt::RunResult r = h.Compile(config);
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, uint32_t('B') * 256 + 'B');
  EXPECT_EQ(h.monitor->stats().relocated_stack_bytes, 16u);
}

// An operation must not be able to write the previous operation's stack
// portion (the disabled sub-regions).
TEST(Monitor, WriteToPreviousStackSubRegionIsBlocked) {
  OpecHarness h;
  auto& tt = h.module.types();
  {
    auto* fn = h.module.AddFunction("Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    Val sentinel = b.Local("sentinel", tt.U32());
    b.Assign(sentinel, b.U32(0x5AFE5AFE));
    b.Call("Task");
    b.Ret(sentinel);
    b.Finish();
  }
  PartitionConfig config;
  config.entries.push_back({"Task", {}});
  // The attack fires inside Task and targets main's frame (near stack top).
  // Build first to learn the stack layout, then attack.
  OpecHarness probe;
  // (compile once on h below; attack uses the policy's stack top)
  opec_rt::RunResult dry = h.Compile(config);
  ASSERT_TRUE(dry.ok) << dry.violation;
  uint32_t target = h.compile->policy.stack.top - 16;  // inside main's sub-region

  // Fresh run with the attack injected.
  OpecHarness h2;
  auto& tt2 = h2.module.types();
  {
    auto* fn = h2.module.AddFunction("Task", tt2.FunctionTy(tt2.VoidTy(), {}), {});
    FunctionBuilder b(h2.module, fn);
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h2.module.AddFunction("main", tt2.FunctionTy(tt2.U32(), {}), {});
    FunctionBuilder b(h2.module, fn);
    Val sentinel = b.Local("sentinel", tt2.U32());
    b.Assign(sentinel, b.U32(0x5AFE5AFE));
    b.Call("Task");
    b.Ret(sentinel);
    b.Finish();
  }
  h2.compile = std::make_unique<CompileResult>(
      CompileOpec(h2.module, h2.soc, config, h2.machine.board().board));
  h2.monitor = std::make_unique<Monitor>(h2.machine, h2.compile->policy, h2.soc);
  opec_compiler::LoadGlobals(h2.machine, h2.module, h2.compile->layout);
  h2.engine = std::make_unique<opec_rt::ExecutionEngine>(h2.machine, h2.module,
                                                         h2.compile->layout, h2.monitor.get());
  opec_rt::AttackSpec attack;
  attack.function = "Task";
  attack.addr = target;
  attack.value = 0xBADBAD;
  h2.engine->AddAttack(attack);
  opec_rt::RunResult r = h2.engine->Run("main");
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(h2.engine->attacks()[0].fired);
  EXPECT_TRUE(h2.engine->attacks()[0].blocked);
  EXPECT_EQ(r.return_value, 0x5AFE5AFEu) << "main's stack frame was corrupted";
}

TEST(Monitor, PeripheralVirtualizationRoundRobin) {
  OpecHarness h;
  auto& tt = h.module.types();
  std::vector<uint32_t> bases = {0x40000000, 0x40002000, 0x40004000,
                                 0x40006000, 0x40008000, 0x4000A000};
  std::vector<std::unique_ptr<opec_hw::Gpio>> devices;
  for (size_t i = 0; i < bases.size(); ++i) {
    devices.push_back(std::make_unique<opec_hw::Gpio>("P" + std::to_string(i), bases[i]));
    h.machine.bus().AttachDevice(devices.back().get());
  }
  {
    auto* fn = h.module.AddFunction("Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    // Touch all six peripherals twice (exceeds the four reserved regions).
    for (int round = 0; round < 2; ++round) {
      for (uint32_t base : bases) {
        b.Assign(b.Mmio32(base + 0x14), b.U32(static_cast<uint32_t>(round + 1)));
      }
    }
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Call("Task");
    b.Ret(b.U32(0));
    b.Finish();
  }
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  for (size_t i = 0; i < bases.size(); ++i) {
    soc.AddPeripheral({"P" + std::to_string(i), bases[i], 0x400, false});
  }
  PartitionConfig config;
  config.entries.push_back({"Task", {}});
  opec_rt::RunResult r = h.Compile(config, soc);
  ASSERT_TRUE(r.ok) << r.violation;
  // The demand-mapper had to swap regions in.
  EXPECT_GT(h.monitor->stats().virtualization_faults, 0u);
  // All writes landed.
  for (const auto& d : devices) {
    EXPECT_EQ(d->output(), 2u) << d->name();
  }
}

TEST(Monitor, AccessToUnlistedPeripheralIsDenied) {
  OpecHarness h;
  auto& tt = h.module.types();
  opec_hw::Gpio allowed("ALLOWED", 0x40000000);
  opec_hw::Gpio forbidden("FORBIDDEN", 0x40002000);
  h.machine.bus().AttachDevice(&allowed);
  h.machine.bus().AttachDevice(&forbidden);
  {
    auto* fn = h.module.AddFunction("Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.Mmio32(0x40000014), b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Call("Task");
    b.Ret(b.U32(0));
    b.Finish();
  }
  opec_hw::SocDescription soc;
  soc.AddPeripheral({"ALLOWED", 0x40000000, 0x400, false});
  soc.AddPeripheral({"FORBIDDEN", 0x40002000, 0x400, false});
  PartitionConfig config;
  config.entries.push_back({"Task", {}});
  // Attack: from inside Task, write the forbidden peripheral.
  h.compile = std::make_unique<CompileResult>(
      CompileOpec(h.module, soc, config, h.machine.board().board));
  h.monitor = std::make_unique<Monitor>(h.machine, h.compile->policy, soc);
  opec_compiler::LoadGlobals(h.machine, h.module, h.compile->layout);
  h.engine = std::make_unique<opec_rt::ExecutionEngine>(h.machine, h.module, h.compile->layout,
                                                        h.monitor.get());
  opec_rt::AttackSpec attack;
  attack.function = "Task";
  attack.addr = 0x40002014;
  attack.value = 0xFF;
  h.engine->AddAttack(attack);
  opec_rt::RunResult r = h.engine->Run("main");
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(h.engine->attacks()[0].blocked);
  EXPECT_EQ(forbidden.output(), 0u);
  EXPECT_EQ(allowed.output(), 1u);
}

TEST(Monitor, CorePeripheralLoadIsEmulated) {
  OpecHarness h;
  auto& tt = h.module.types();
  h.module.AddGlobal("cycles_lo", tt.U32());
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.G("cycles_lo"), b.Mmio32(opec_hw::kDwtCyccnt));
    b.Ret(b.G("cycles_lo") > b.U32(0));
    b.Finish();
  }
  PartitionConfig config;  // only the default main operation
  opec_rt::RunResult r =
      h.Compile(config, opec_hw::SocDescription::WithCorePeripherals());
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 1u);
  EXPECT_GT(h.monitor->stats().emulated_core_accesses, 0u);
}

TEST(Monitor, PointerFieldsAreRedirectedAcrossSwitches) {
  // A shared handle holds a pointer to a shared buffer. TaskW writes through
  // the handle, TaskR reads through it; the monitor must repoint the pointer
  // field to each operation's own shadow of the buffer.
  OpecHarness h;
  auto& tt = h.module.types();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  const Type* handle_ty = tt.StructTy("H", {{"buf", p_u8, 0}, {"len", tt.U32(), 0}});
  h.module.AddGlobal("handle", handle_ty);
  h.module.AddGlobal("buffer", tt.ArrayOf(tt.U8(), 8));
  {
    auto* fn = h.module.AddFunction("TaskW", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.Idx(b.Fld(b.G("handle"), "buf"), 0u), b.U8(0x42));
    b.Assign(b.Fld(b.G("handle"), "len"), b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("TaskR", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Ret(b.CastTo(tt.U32(), b.Idx(b.Fld(b.G("handle"), "buf"), 0u)));
    b.Finish();
  }
  {
    auto* fn = h.module.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(h.module, fn);
    b.Assign(b.Fld(b.G("handle"), "buf"), b.Addr(b.Idx(b.G("buffer"), 0u)));
    b.Call("TaskW");
    b.Ret(b.CallV("TaskR"));
    b.Finish();
  }
  PartitionConfig config;
  config.entries.push_back({"TaskW", {}});
  config.entries.push_back({"TaskR", {}});
  opec_rt::RunResult r = h.Compile(config);
  ASSERT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.return_value, 0x42u);
  EXPECT_GT(h.monitor->stats().pointer_redirections, 0u);
}

}  // namespace
}  // namespace opec_monitor
