// Tests for the parallel campaign-execution subsystem (src/campaign):
// thread pool mechanics, ParallelMap ordering and exception propagation,
// OPEC_CHECK capture, cross-thread determinism of campaign reports, per-job
// failure isolation, fault-injection outcome classification, observability
// invariance under concurrency, and wall-clock timeouts.

#include "src/campaign/campaign.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/campaign/thread_pool.h"
#include "src/support/check.h"

namespace {

using opec_campaign::CampaignResult;
using opec_campaign::CampaignSpec;
using opec_campaign::Executor;
using opec_campaign::FaultClass;
using opec_campaign::JobKind;
using opec_campaign::JobSpec;
using opec_campaign::Outcome;
using opec_campaign::ParallelMap;
using opec_campaign::SplitMix64;
using opec_campaign::ThreadPool;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(pool.threads(), 4);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelMapTest, ResultsAreInIndexOrderOnAnyThreadCount) {
  for (int jobs : {1, 2, 8}) {
    std::vector<int> out = ParallelMap(jobs, 100, [](size_t i) {
      return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 100u) << "jobs=" << jobs;
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i)) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelMapTest, LowestIndexExceptionPropagates) {
  auto run = [](int jobs) {
    try {
      ParallelMap(jobs, 10, [](size_t i) -> int {
        if (i == 3 || i == 7) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
        return 0;
      });
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_EQ(run(1), "boom 3");
  EXPECT_EQ(run(4), "boom 3");
}

TEST(SplitMix64Test, JobSeedsAreStableAndDistinct) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 100; ++i) {
    seeds.insert(SplitMix64::JobSeed(1, i));
  }
  EXPECT_EQ(seeds.size(), 100u);
  // Stable across calls (replayability of fault campaigns).
  EXPECT_EQ(SplitMix64::JobSeed(1, 5), SplitMix64::JobSeed(1, 5));
  EXPECT_NE(SplitMix64::JobSeed(1, 5), SplitMix64::JobSeed(2, 5));
}

// The JobSeed mixing contract (campaign.h): distinct (campaign_seed, index)
// pairs yield distinct streams, at campaign scale.
TEST(SplitMix64Test, JobSeedMixingIsCollisionFreeAcrossCampaigns) {
  std::set<uint64_t> seeds;
  for (uint64_t campaign = 0; campaign < 100; ++campaign) {
    for (uint64_t index = 0; index < 100; ++index) {
      seeds.insert(SplitMix64::JobSeed(campaign, index));
    }
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(SplitMix64Test, JobSeedMixingBreaksXorLinearCollisions) {
  // The original scheme XORed (index * kOdd + 1) into the raw campaign seed
  // before a single finalization. Being XOR-linear pre-finalizer, it made
  // JobSeed(s, 0) collide with JobSeed(s ^ 1 ^ (i * kOdd + 1), i) for every
  // s and i — whole cross-campaign stream collisions. The sequential-
  // finalization fix must break every pair in that family.
  constexpr uint64_t kOdd = 0xA24BAED4963EE407ull;
  for (uint64_t s : {0ull, 1ull, 42ull, 0xDEADBEEFull, 0xFFFFFFFFFFFFFFFFull}) {
    for (uint64_t i = 1; i <= 64; ++i) {
      uint64_t sibling = s ^ 1ull ^ (i * kOdd + 1ull);
      EXPECT_NE(SplitMix64::JobSeed(s, 0), SplitMix64::JobSeed(sibling, i))
          << "s=" << s << " i=" << i;
    }
  }
}

TEST(ScopedCheckThrowTest, ConvertsCheckFailureIntoException) {
  opec_support::ScopedCheckThrow guard;
  bool caught = false;
  try {
    OPEC_CHECK_MSG(1 == 2, "expected failure");
  } catch (const opec_support::CheckError& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("expected failure"), std::string::npos);
  }
  EXPECT_TRUE(caught);
}

// Thread-safety audit of the CHECK capture machinery (src/support/check.cc):
// the capture depth is a thread_local, so concurrent jobs each convert their
// own CHECK failures without observing another thread's guard. This test
// hammers that from many pool threads — including nested guards — and relies
// on the OPEC_SANITIZE=thread CI configuration to flag any regression to
// shared state.
TEST(ScopedCheckThrowTest, CaptureIsThreadLocalUnderConcurrency) {
  ThreadPool pool(8);
  std::atomic<int> caught{0};
  std::atomic<int> wrong{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&caught, &wrong] {
      opec_support::ScopedCheckThrow outer;
      {
        opec_support::ScopedCheckThrow inner;
        try {
          OPEC_CHECK_MSG(false, "worker failure");
          wrong.fetch_add(1, std::memory_order_relaxed);
        } catch (const opec_support::CheckError&) {
          caught.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // The outer guard on this thread still captures after the inner one
      // unwound, regardless of what other threads' guards are doing.
      try {
        OPEC_CHECK_MSG(1 + 1 == 3, "outer failure");
        wrong.fetch_add(1, std::memory_order_relaxed);
      } catch (const opec_support::CheckError&) {
        caught.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(caught.load(), 400);
  EXPECT_EQ(wrong.load(), 0);
}

// The tentpole invariant: the deterministic report of a campaign is
// byte-identical whether it runs on one thread or many.
TEST(CampaignTest, DeterministicJsonIsIdenticalAcrossThreadCounts) {
  CampaignSpec spec;
  spec.seed = 42;
  spec.AddScenarioMatrix({"PinLock", "Animation"},
                         {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec});
  spec.AddFaultSweep({"PinLock", "Animation"}, 6);

  Executor::Options serial;
  serial.jobs = 1;
  CampaignResult r1 = Executor::Run(spec, serial);

  Executor::Options parallel;
  parallel.jobs = 4;
  CampaignResult r4 = Executor::Run(spec, parallel);

  EXPECT_EQ(r1.results.size(), 10u);
  EXPECT_EQ(r1.DeterministicJson(), r4.DeterministicJson());
  // Scenario jobs over healthy apps all pass.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r1.results[i].outcome, Outcome::kOk) << r1.results[i].detail;
  }
}

TEST(CampaignTest, UnknownAppBecomesStructuredFailureNotAbort) {
  CampaignSpec spec;
  JobSpec bad;
  bad.app = "NoSuchApp";
  spec.jobs.push_back(bad);
  JobSpec good;
  good.app = "PinLock";
  spec.jobs.push_back(good);

  Executor::Options options;
  options.jobs = 2;
  CampaignResult result = Executor::Run(spec, options);
  ASSERT_EQ(result.results.size(), 2u);
  EXPECT_EQ(result.results[0].outcome, Outcome::kException);
  EXPECT_FALSE(result.results[0].ok);
  EXPECT_NE(result.results[0].detail.find("NoSuchApp"), std::string::npos);
  EXPECT_EQ(result.results[1].outcome, Outcome::kOk) << result.results[1].detail;
  EXPECT_FALSE(result.AllOk());
}

// Observability invariance under concurrency: counting sinks attached to
// concurrent jobs observe only their own run, and modeled outputs match the
// sink-free serial run.
TEST(CampaignTest, ObsSinksAreIsolatedPerJobThread) {
  CampaignSpec spec;
  for (int i = 0; i < 4; ++i) {
    JobSpec job;
    job.app = "PinLock";
    job.attach_counting_sink = true;
    spec.jobs.push_back(job);
  }
  Executor::Options options;
  options.jobs = 4;
  CampaignResult with_sinks = Executor::Run(spec, options);

  CampaignSpec plain_spec;
  JobSpec plain_job;
  plain_job.app = "PinLock";
  plain_spec.jobs.push_back(plain_job);
  Executor::Options serial;
  serial.jobs = 1;
  CampaignResult plain = Executor::Run(plain_spec, serial);
  ASSERT_EQ(plain.results.size(), 1u);
  ASSERT_TRUE(plain.results[0].ok) << plain.results[0].detail;

  ASSERT_EQ(with_sinks.results.size(), 4u);
  for (const opec_campaign::JobResult& r : with_sinks.results) {
    ASSERT_TRUE(r.ok) << r.detail;
    // Every job saw its own full event stream (identical runs -> identical
    // counts), and observation changed no modeled output.
    EXPECT_EQ(r.events, with_sinks.results[0].events);
    EXPECT_GT(r.events, 0u);
    EXPECT_EQ(r.cycles, plain.results[0].cycles);
    EXPECT_EQ(r.statements, plain.results[0].statements);
  }
}

TEST(CampaignTest, FaultSweepNeverReportsSilentCorruptionAsSuccess) {
  CampaignSpec spec;
  spec.seed = 7;
  spec.AddFaultSweep({"PinLock", "Animation", "FatFs-uSD"}, 24);
  Executor::Options options;
  options.jobs = 4;
  CampaignResult result = Executor::Run(spec, options);
  ASSERT_EQ(result.results.size(), 24u);
  for (const opec_campaign::JobResult& r : result.results) {
    EXPECT_EQ(r.spec.kind, JobKind::kFault);
    // A fault job resolves its class and always lands in the taxonomy.
    EXPECT_NE(r.spec.fault, FaultClass::kAny);
    if (r.outcome == Outcome::kSilentCorruption) {
      EXPECT_FALSE(r.ok) << "silent corruption classified as success";
    }
    EXPECT_NE(r.outcome, Outcome::kException) << r.detail;
  }
  // The matrix renders without blowing up and mentions every app we swept.
  std::string matrix = result.FaultMatrix();
  EXPECT_NE(matrix.find("PinLock"), std::string::npos);
  EXPECT_NE(matrix.find("silent-corruption"), std::string::npos);
}

// Runtime verification is on by default: every job's report carries the rv
// summary, denied fault injections are flagged by the monitors, and turning
// it off removes the field (so old reports stay comparable).
TEST(CampaignTest, RvSummaryIsReportedAndDeniedWritesAreFlagged) {
  CampaignSpec spec;
  spec.seed = 7;
  spec.AddScenarioMatrix({"PinLock"}, {opec_apps::BuildMode::kOpec});
  spec.AddFaultSweep({"PinLock"}, 12, FaultClass::kShadowBitFlip);
  Executor::Options options;
  options.jobs = 2;
  CampaignResult result = Executor::Run(spec, options);
  ASSERT_EQ(result.results.size(), 13u);

  const opec_campaign::JobResult& scenario = result.results[0];
  EXPECT_EQ(scenario.outcome, Outcome::kOk) << scenario.detail;
  EXPECT_EQ(scenario.rv_violations, 0u);
  EXPECT_GT(scenario.rv_states, 0u);

  size_t denied = 0;
  for (const opec_campaign::JobResult& r : result.results) {
    if (r.outcome == Outcome::kDeniedMpu) {
      ++denied;
      EXPECT_GT(r.rv_violations, 0u)
          << "denied write was not flagged by any monitor: " << r.detail;
    }
  }
  EXPECT_GT(denied, 0u) << "shadow-bit-flip sweep produced no denied write";

  std::string json = result.DeterministicJson();
  EXPECT_NE(json.find("\"rv\": {\"states\":"), std::string::npos) << json;

  // rv off: the field disappears and clean scenarios still pass.
  CampaignSpec off;
  off.seed = 7;
  off.AddScenarioMatrix({"PinLock"}, {opec_apps::BuildMode::kOpec});
  off.jobs[0].rv = false;
  CampaignResult off_result = Executor::Run(off, options);
  EXPECT_EQ(off_result.results[0].outcome, Outcome::kOk);
  EXPECT_EQ(off_result.DeterministicJson().find("\"rv\""), std::string::npos);
}

// The rv summary is modeled data: reports stay bit-identical across thread
// counts and boot modes with the monitors attached.
TEST(CampaignTest, RvReportsAreDeterministicAcrossThreadsAndBootModes) {
  CampaignSpec spec;
  spec.seed = 21;
  spec.AddScenarioMatrix(
      {"PinLock", "Animation"},
      {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec});
  spec.AddFaultSweep({"PinLock"}, 6);

  Executor::Options serial;
  serial.jobs = 1;
  CampaignResult r1 = Executor::Run(spec, serial);
  Executor::Options parallel;
  parallel.jobs = 4;
  CampaignResult r4 = Executor::Run(spec, parallel);
  Executor::Options cold;
  cold.jobs = 1;
  cold.cold_boot = true;
  CampaignResult rc = Executor::Run(spec, cold);

  EXPECT_EQ(r1.DeterministicJson(), r4.DeterministicJson());
  EXPECT_EQ(r1.DeterministicJson(), rc.DeterministicJson());
  EXPECT_NE(r1.DeterministicJson().find("\"rv\""), std::string::npos);
}

TEST(CampaignTest, TimeoutCancelsRunawayJob) {
  CampaignSpec spec;
  JobSpec job;
  job.app = "CoreMark";  // the longest-running workload
  job.timeout_ms = 1;    // unreachably tight
  spec.jobs.push_back(job);
  Executor::Options options;
  options.jobs = 1;
  CampaignResult result = Executor::Run(spec, options);
  ASSERT_EQ(result.results.size(), 1u);
  EXPECT_EQ(result.results[0].outcome, Outcome::kTimeout);
  EXPECT_FALSE(result.results[0].ok);
  EXPECT_NE(result.results[0].detail.find("canceled"), std::string::npos)
      << result.results[0].detail;
}

// Warm-start (restore from a per-worker boot snapshot) is the executor
// default; it must be an implementation detail, invisible in the report.
TEST(CampaignTest, WarmStartIsBitIdenticalToColdBoot) {
  CampaignSpec spec;
  spec.seed = 13;
  spec.AddScenarioMatrix({"PinLock", "Animation"},
                         {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec});
  spec.AddFaultSweep({"PinLock", "Animation"}, 8);

  Executor::Options warm;  // cold_boot defaults to false
  warm.jobs = 1;
  CampaignResult warm_result = Executor::Run(spec, warm);

  Executor::Options cold;
  cold.cold_boot = true;
  cold.jobs = 1;
  CampaignResult cold_result = Executor::Run(spec, cold);

  EXPECT_EQ(warm_result.DeterministicJson(), cold_result.DeterministicJson());

  // And warm stays deterministic when the same worker replays many jobs of
  // the same app back to back (the cache-reuse path).
  Executor::Options warm4;
  warm4.jobs = 4;
  CampaignResult warm4_result = Executor::Run(spec, warm4);
  EXPECT_EQ(warm_result.DeterministicJson(), warm4_result.DeterministicJson());
}

// Crash-state forensics: --snapshot-dir dumps a restorable snapshot for every
// diverging job, with the digest folded into the deterministic report. The
// dumps themselves must be byte-identical across thread counts and across
// warm/cold boot.
TEST(CampaignTest, SnapshotDirDumpsAreDeterministicAcrossThreadsAndBootModes) {
  namespace fs = std::filesystem;
  CampaignSpec spec;
  spec.seed = 7;
  spec.AddFaultSweep({"PinLock", "Animation"}, 12);

  auto run = [&spec](int jobs, bool cold, const std::string& dir) {
    fs::create_directories(dir);
    Executor::Options options;
    options.jobs = jobs;
    options.cold_boot = cold;
    options.snapshot_dir = dir;
    return Executor::Run(spec, options);
  };
  auto dir_bytes = [](const std::string& dir) {
    std::map<std::string, std::string> files;
    for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
      std::ifstream in(e.path(), std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      files[e.path().filename().string()] = bytes;
    }
    return files;
  };

  std::string base = ::testing::TempDir() + "/opec_snapdir";
  CampaignResult serial = run(1, /*cold=*/false, base + "_serial");
  CampaignResult parallel = run(4, /*cold=*/false, base + "_parallel");
  CampaignResult coldrun = run(1, /*cold=*/true, base + "_cold");

  EXPECT_EQ(serial.DeterministicJson(), parallel.DeterministicJson());
  EXPECT_EQ(serial.DeterministicJson(), coldrun.DeterministicJson());

  auto serial_files = dir_bytes(base + "_serial");
  EXPECT_FALSE(serial_files.empty()) << "fault sweep produced no diverging jobs";
  EXPECT_EQ(serial_files, dir_bytes(base + "_parallel"));
  EXPECT_EQ(serial_files, dir_bytes(base + "_cold"));

  // Every diverging job advertised its snapshot digest in the report, and
  // only diverging jobs did.
  size_t tagged = 0;
  for (const opec_campaign::JobResult& r : serial.results) {
    if (r.snapshot_digest != 0) {
      ++tagged;
      EXPECT_NE(r.outcome, Outcome::kOk);
      EXPECT_NE(r.outcome, Outcome::kNotFired);
    }
  }
  EXPECT_GT(tagged, 0u);
}

TEST(CampaignSpecTest, ParseTextBuildsJobsAndReportsErrors) {
  CampaignSpec spec;
  std::string err = spec.ParseText("seed 9\n"
                                   "timeout-ms 5000\n"
                                   "# comment line\n"
                                   "scenario PinLock both\n"
                                   "fault Animation 3 stack-bit-flip\n",
                                   "inline");
  EXPECT_EQ(err, "");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.timeout_ms, 5000u);
  ASSERT_EQ(spec.jobs.size(), 5u);
  EXPECT_EQ(spec.jobs[0].kind, JobKind::kScenario);
  EXPECT_EQ(spec.jobs[4].kind, JobKind::kFault);
  EXPECT_EQ(spec.jobs[4].fault, FaultClass::kStackBitFlip);

  CampaignSpec bad;
  EXPECT_NE(bad.ParseText("scenario NoSuchApp opec\n", "inline"), "");
  EXPECT_NE(bad.ParseText("fault PinLock 3 no-such-class\n", "inline"), "");
  EXPECT_NE(bad.ParseText("frobnicate 1\n", "inline"), "");
}

}  // namespace
