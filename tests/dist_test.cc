// Tests of the distributed campaign service (src/dist, DESIGN.md §16):
// wire framing and struct round-trips, transport truncation/oversize error
// handling, the content-addressed artifact cache, and — the load-bearing
// property — byte-identity of the distributed executor's DeterministicJson
// against the in-process serial executor across worker counts, worker death
// mid-sweep, and lease expiry.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/dist/cache.h"
#include "src/dist/server.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"
#include "src/fuzz/oracles.h"
#include "src/hw/state_io.h"
#include "src/rt/bytecode/bytecode.h"
#include "src/rt/engine.h"
#include "src/support/check.h"
#include "src/support/fs.h"

namespace {

using opec_dist::ArtifactCache;
using opec_dist::CampaignServer;
using opec_dist::FdTransport;
using opec_dist::Frame;
using opec_dist::FrameType;
using opec_dist::LocalPair;
using opec_dist::MakeFrame;
using opec_dist::RunWorker;
using opec_dist::RunWorkerLoop;
using opec_dist::SweepKind;
using opec_dist::Transport;
using opec_dist::WorkerOptions;
using opec_hw::StateReader;
using opec_hw::StateWriter;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/opec_dist_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) {
    out.push_back(static_cast<uint8_t>(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Framing and transport error model.

TEST(DistTransport, FrameRoundTrip) {
  auto [a, b] = LocalPair();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  Frame f;
  f.type = FrameType::kResult;
  f.payload = Bytes({1, 2, 3, 0xFF, 0});
  ASSERT_EQ(a->Send(f), Transport::Status::kOk);

  Frame got;
  ASSERT_EQ(b->Recv(&got), Transport::Status::kOk);
  EXPECT_EQ(got.type, FrameType::kResult);
  EXPECT_EQ(got.payload, f.payload);

  // Empty payload is a legal frame.
  ASSERT_EQ(b->Send(MakeFrame(FrameType::kRequestWork)), Transport::Status::kOk);
  ASSERT_EQ(a->Recv(&got), Transport::Status::kOk);
  EXPECT_EQ(got.type, FrameType::kRequestWork);
  EXPECT_TRUE(got.payload.empty());

  // Closing one end is an orderly EOF at the frame boundary, not an error.
  a->Close();
  EXPECT_EQ(b->Recv(&got), Transport::Status::kEof);
}

TEST(DistTransport, MaxSizePayloadAcceptedOversizedRejected) {
  // Small test-only cap so the boundary is exercised without 64 MiB frames.
  constexpr uint32_t kCap = 256;
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport sender(fds[0]);  // default cap: large payloads leave fine
  FdTransport receiver(fds[1], kCap);

  Frame f;
  f.type = FrameType::kArtifactData;
  f.payload.assign(kCap, 0xAB);  // exactly at the cap: accepted
  ASSERT_EQ(sender.Send(f), Transport::Status::kOk);
  Frame got;
  ASSERT_EQ(receiver.Recv(&got), Transport::Status::kOk);
  EXPECT_EQ(got.payload.size(), kCap);

  f.payload.assign(kCap + 1, 0xAB);  // one past: rejected before allocation
  ASSERT_EQ(sender.Send(f), Transport::Status::kOk);
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "frame payload too large");
}

TEST(DistTransport, SenderRefusesOversizedPayload) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport sender(fds[0], 16);
  FdTransport receiver(fds[1]);
  Frame f;
  f.type = FrameType::kResult;
  f.payload.assign(17, 0);
  EXPECT_EQ(sender.Send(f), Transport::Status::kError);
  EXPECT_EQ(sender.error(), "frame payload too large");
}

TEST(DistTransport, TruncatedHeaderIsCleanError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport receiver(fds[1]);
  // Three header bytes, then hang up: EOF inside a frame.
  uint8_t partial[3] = {5, 0, 0};
  ASSERT_EQ(::send(fds[0], partial, sizeof(partial), 0), 3);
  ::close(fds[0]);
  Frame got;
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "truncated frame");
}

TEST(DistTransport, TruncatedPayloadIsCleanError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport receiver(fds[1]);
  // Full header claiming 10 payload bytes, only 4 delivered.
  uint8_t header[5] = {10, 0, 0, 0, static_cast<uint8_t>(FrameType::kResult)};
  uint8_t body[4] = {1, 2, 3, 4};
  ASSERT_EQ(::send(fds[0], header, sizeof(header), 0), 5);
  ASSERT_EQ(::send(fds[0], body, sizeof(body), 0), 4);
  ::close(fds[0]);
  Frame got;
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "truncated frame");
}

TEST(DistTransport, UnknownFrameTypeRejected) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport receiver(fds[1]);
  uint8_t header[5] = {0, 0, 0, 0, 0xEE};
  ASSERT_EQ(::send(fds[0], header, sizeof(header), 0), 5);
  ::close(fds[0]);
  Frame got;
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "unknown frame type");
}

// ---------------------------------------------------------------------------
// Message round-trips.

TEST(DistWire, HandshakeMessagesRoundTrip) {
  opec_dist::HelloMsg hello;
  hello.worker_name = "w-test";
  StateWriter hw;
  opec_dist::WriteHello(hw, hello);
  std::vector<uint8_t> hb = hw.Take();
  StateReader hr(hb);
  opec_dist::HelloMsg hello2 = opec_dist::ReadHello(hr);
  EXPECT_EQ(hello2.version, opec_dist::kProtocolVersion);
  EXPECT_EQ(hello2.worker_name, "w-test");

  opec_dist::WelcomeMsg welcome;
  welcome.sweep = SweepKind::kFuzz;
  welcome.cold_boot = true;
  welcome.snapshot_dir = "/tmp/snaps";
  StateWriter ww;
  opec_dist::WriteWelcome(ww, welcome);
  std::vector<uint8_t> wb = ww.Take();
  StateReader wr(wb);
  opec_dist::WelcomeMsg welcome2 = opec_dist::ReadWelcome(wr);
  EXPECT_EQ(welcome2.sweep, SweepKind::kFuzz);
  EXPECT_TRUE(welcome2.cold_boot);
  EXPECT_EQ(welcome2.snapshot_dir, "/tmp/snaps");
}

TEST(DistWire, JobSpecRoundTrip) {
  opec_campaign::JobSpec spec;
  spec.kind = opec_campaign::JobKind::kFault;
  spec.app = "PinLock";
  spec.mode = opec_apps::BuildMode::kVanilla;
  spec.engine = opec_apps::EngineKind::kBytecode;
  spec.seed = 0xDEADBEEFCAFEull;
  spec.fault = opec_campaign::FaultClass::kIcallForge;
  spec.timeout_ms = 1234;
  spec.trace_path = "/tmp/t.json";
  spec.attach_counting_sink = true;
  spec.rv = false;

  StateWriter w;
  opec_dist::WriteJobSpec(w, spec);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_campaign::JobSpec got = opec_dist::ReadJobSpec(r);
  EXPECT_EQ(got.kind, spec.kind);
  EXPECT_EQ(got.app, spec.app);
  EXPECT_EQ(got.mode, spec.mode);
  EXPECT_EQ(got.engine, spec.engine);
  EXPECT_EQ(got.seed, spec.seed);
  EXPECT_EQ(got.fault, spec.fault);
  EXPECT_EQ(got.timeout_ms, spec.timeout_ms);
  EXPECT_EQ(got.trace_path, spec.trace_path);
  EXPECT_EQ(got.attach_counting_sink, spec.attach_counting_sink);
  EXPECT_EQ(got.rv, spec.rv);
}

TEST(DistWire, JobResultRoundTrip) {
  opec_campaign::JobResult jr;
  jr.index = 17;
  jr.spec.app = "PinLock";
  jr.ok = true;
  jr.outcome = opec_campaign::Outcome::kDeniedMpu;
  jr.detail = "mpu denied write";
  jr.cycles = 123456;
  jr.statements = 789;
  jr.return_value = 42;
  jr.attack_fired = true;
  jr.attack_blocked = true;
  jr.events = 99;
  jr.rv_states = 7;
  jr.rv_violations = 1;
  jr.rv_by_automaton = {0, 1, 0};
  jr.snapshot_digest = 0x1122334455667788ull;
  jr.wall_ns = 555;

  StateWriter w;
  opec_dist::WriteJobResult(w, jr);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_campaign::JobResult got = opec_dist::ReadJobResult(r);
  EXPECT_EQ(got.index, jr.index);
  EXPECT_EQ(got.spec.app, "PinLock");
  EXPECT_EQ(got.ok, jr.ok);
  EXPECT_EQ(got.outcome, jr.outcome);
  EXPECT_EQ(got.detail, jr.detail);
  EXPECT_EQ(got.cycles, jr.cycles);
  EXPECT_EQ(got.statements, jr.statements);
  EXPECT_EQ(got.return_value, jr.return_value);
  EXPECT_EQ(got.attack_fired, jr.attack_fired);
  EXPECT_EQ(got.attack_blocked, jr.attack_blocked);
  EXPECT_EQ(got.events, jr.events);
  EXPECT_EQ(got.rv_states, jr.rv_states);
  EXPECT_EQ(got.rv_violations, jr.rv_violations);
  EXPECT_EQ(got.rv_by_automaton, jr.rv_by_automaton);
  EXPECT_EQ(got.snapshot_digest, jr.snapshot_digest);
  EXPECT_EQ(got.wall_ns, jr.wall_ns);
}

TEST(DistWire, CaseResultRoundTrip) {
  opec_fuzz::CaseResult cr;
  cr.seed = 31337;
  cr.summary = "3 sections, 2 ops";
  cr.digest = "abc123";
  opec_fuzz::Divergence d;
  d.oracle = opec_fuzz::Oracle::kExecDiff;
  d.detail = "cycles differ";
  cr.divergences.push_back(d);

  StateWriter w;
  opec_dist::WriteCaseResult(w, cr);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_fuzz::CaseResult got = opec_dist::ReadCaseResult(r);
  EXPECT_EQ(got.seed, cr.seed);
  EXPECT_EQ(got.summary, cr.summary);
  EXPECT_EQ(got.digest, cr.digest);
  ASSERT_EQ(got.divergences.size(), 1u);
  EXPECT_EQ(got.divergences[0].oracle, opec_fuzz::Oracle::kExecDiff);
  EXPECT_EQ(got.divergences[0].detail, "cycles differ");
}

TEST(DistWire, TruncatedPayloadDecodeIsCheckErrorNotHang) {
  opec_campaign::JobResult jr;
  jr.detail = "some detail text that makes the payload non-trivial";
  StateWriter w;
  opec_dist::WriteJobResult(w, jr);
  std::vector<uint8_t> bytes = w.Take();
  bytes.resize(bytes.size() / 2);  // chop mid-struct

  opec_support::ScopedCheckThrow capture;
  StateReader r(bytes);
  EXPECT_THROW(opec_dist::ReadJobResult(r), opec_support::CheckError);
}

TEST(DistWire, BytecodeArtifactRoundTrip) {
  opec_rt::bytecode::BytecodeModule bc;
  opec_rt::bytecode::Insn i0;
  i0.op = opec_rt::bytecode::Op::kConst;
  i0.a = 1;
  i0.imm = 42;
  opec_rt::bytecode::Insn i1;
  i1.op = opec_rt::bytecode::Op::kMove;
  i1.sub = 3;
  i1.a = 2;
  i1.b = 1;
  i1.stmt = 5;
  i1.imm2 = 0x99;
  i1.charge = 777;
  bc.code = {i0, i1};
  opec_rt::bytecode::BytecodeFunction fn;
  fn.entry = 0;
  fn.nregs = 3;
  bc.funcs = {fn};
  bc.arg_pool = {1, 2, 3};
  bc.messages = {"assert failed", "oob"};
  bc.acct = {{0, 2}, {2, 0}};
  bc.acct_pool = {10, -3};
  bc.max_regs = 3;
  opec_rt::CostModel costs;
  costs.op = 3;
  costs.svc = 50;

  StateWriter w;
  opec_dist::WriteBytecodeArtifact(w, bc, costs);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_rt::bytecode::BytecodeModule got;
  opec_rt::CostModel got_costs;
  ASSERT_TRUE(opec_dist::ReadBytecodeArtifact(r, &got, &got_costs));
  EXPECT_TRUE(got_costs == costs);
  ASSERT_EQ(got.code.size(), 2u);
  EXPECT_EQ(got.code[0].op, opec_rt::bytecode::Op::kConst);
  EXPECT_EQ(got.code[0].imm, 42u);
  EXPECT_EQ(got.code[1].op, opec_rt::bytecode::Op::kMove);
  EXPECT_EQ(got.code[1].sub, 3);
  EXPECT_EQ(got.code[1].a, 2);
  EXPECT_EQ(got.code[1].b, 1);
  EXPECT_EQ(got.code[1].stmt, 5);
  EXPECT_EQ(got.code[1].imm2, 0x99u);
  EXPECT_EQ(got.code[1].charge, 777u);
  ASSERT_EQ(got.funcs.size(), 1u);
  EXPECT_EQ(got.funcs[0].entry, 0u);
  EXPECT_EQ(got.funcs[0].nregs, 3);
  EXPECT_EQ(got.arg_pool, bc.arg_pool);
  EXPECT_EQ(got.messages, bc.messages);
  EXPECT_EQ(got.acct, bc.acct);
  EXPECT_EQ(got.acct_pool, bc.acct_pool);
  EXPECT_EQ(got.max_regs, 3);
}

TEST(DistWire, BytecodeArtifactWithBogusOpcodeRejected) {
  opec_rt::bytecode::BytecodeModule bc;
  opec_rt::bytecode::Insn bad;
  bad.op = static_cast<opec_rt::bytecode::Op>(0xEF);
  bc.code = {bad};
  opec_rt::CostModel costs;
  StateWriter w;
  opec_dist::WriteBytecodeArtifact(w, bc, costs);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_rt::bytecode::BytecodeModule got;
  opec_rt::CostModel got_costs;
  EXPECT_FALSE(opec_dist::ReadBytecodeArtifact(r, &got, &got_costs));
}

// ---------------------------------------------------------------------------
// Content-addressed artifact cache.

TEST(DistCache, MemoryHitMissAndIdempotentPut) {
  ArtifactCache cache("");
  ASSERT_TRUE(cache.ok());
  std::vector<uint8_t> a = Bytes({1, 2, 3});
  uint64_t da = cache.Put(a);
  EXPECT_EQ(cache.Put(a), da);  // idempotent
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.Get(da, &out));
  EXPECT_EQ(out, a);
  EXPECT_FALSE(cache.Get(da ^ 1, &out));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_TRUE(cache.Contains(da));
  EXPECT_FALSE(cache.Contains(da ^ 1));
}

TEST(DistCache, LruEvictionByBytes) {
  ArtifactCache cache("", /*max_bytes=*/150);
  std::vector<uint8_t> a(100, 0xAA);
  std::vector<uint8_t> b(100, 0xBB);
  uint64_t da = cache.Put(a);
  uint64_t db = cache.Put(b);  // 200 resident > 150: evict LRU (a)
  EXPECT_EQ(cache.stats().evictions, 1u);
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.Get(da, &out));
  EXPECT_TRUE(cache.Get(db, &out));
  EXPECT_LE(cache.resident_bytes(), 150u);
}

TEST(DistCache, DirBackedRoundTripAndSharedVisibility) {
  std::string dir = MakeTempDir();
  std::vector<uint8_t> a = Bytes({9, 8, 7, 6});
  uint64_t da = 0;
  {
    ArtifactCache cache(dir);
    ASSERT_TRUE(cache.ok());
    da = cache.Put(a);
  }
  // A *fresh* cache over the same directory sees the artifact (shared
  // --cache-dir across processes / runs).
  ArtifactCache cache2(dir);
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache2.Get(da, &out));
  EXPECT_EQ(out, a);
  EXPECT_EQ(cache2.stats().hits, 1u);
}

TEST(DistCache, DigestMismatchExpungedAndCounted) {
  std::string dir = MakeTempDir();
  ArtifactCache cache(dir);
  std::vector<uint8_t> a = Bytes({1, 1, 2, 3, 5, 8});
  uint64_t da = cache.Put(a);
  // Corrupt the artifact file on disk behind the cache's back.
  std::string path = dir + "/" + ArtifactCache::DigestFileName(da);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "corrupted";
  }
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.Get(da, &out));  // miss, never the wrong bytes
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cache.stats().digest_mismatches, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The corrupt file was expunged so a re-Put can repopulate.
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good());
  cache.Put(a);
  EXPECT_TRUE(cache.Get(da, &out));
  EXPECT_EQ(out, a);
}

TEST(DistCache, NamedRefsSurviveProcessRestart) {
  std::string dir = MakeTempDir();
  std::vector<uint8_t> a = Bytes({42, 43, 44});
  uint64_t da = 0;
  {
    ArtifactCache cache(dir);
    da = cache.Put(a);
    cache.PutRef("boot/PinLock/opec", da);
  }
  // Fresh cache, same dir: the key still resolves (warm-start across runs).
  ArtifactCache cache2(dir);
  uint64_t got = 0;
  ASSERT_TRUE(cache2.GetRef("boot/PinLock/opec", &got));
  EXPECT_EQ(got, da);
  EXPECT_FALSE(cache2.GetRef("boot/Other/opec", &got));
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache2.Get(da, &out));
  EXPECT_EQ(out, a);
}

TEST(DistCache, UnusableDirDegradesToMemoryWithError) {
  std::string dir = MakeTempDir();
  std::string file = dir + "/plainfile";
  {
    std::ofstream f(file);
    f << "x";
  }
  // A path *under a regular file* can never become a directory.
  ArtifactCache cache(file + "/sub");
  EXPECT_FALSE(cache.ok());
  EXPECT_NE(cache.error().find("artifact cache directory unusable"), std::string::npos);
  // Degrades to memory backing: still usable, never aborts.
  std::vector<uint8_t> a = Bytes({1});
  uint64_t da = cache.Put(a);
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.Get(da, &out));
}

// ---------------------------------------------------------------------------
// Unwritable output directories fail fast with a clear message (never an
// OPEC_CHECK abort). Regression: Executor::Run used to OPEC_CHECK-abort mid-
// campaign when snapshot_dir could not be created.

TEST(DistOutputs, ExecutorSnapshotDirUnwritableThrowsRuntimeError) {
  std::string dir = MakeTempDir();
  std::string file = dir + "/blocker";
  {
    std::ofstream f(file);
    f << "x";
  }
  opec_campaign::CampaignSpec spec;
  spec.seed = 3;
  spec.AddFaultSweep({"PinLock"}, 1);
  opec_campaign::Executor::Options options;
  options.jobs = 1;
  options.snapshot_dir = file + "/snaps";
  EXPECT_THROW(opec_campaign::Executor::Run(spec, options), std::runtime_error);
}

TEST(DistOutputs, ServerSnapshotDirUnwritableFailsServe) {
  std::string dir = MakeTempDir();
  std::string file = dir + "/blocker";
  {
    std::ofstream f(file);
    f << "x";
  }
  opec_campaign::CampaignSpec spec;
  spec.seed = 3;
  spec.AddFaultSweep({"PinLock"}, 1);
  CampaignServer::Options options;
  options.snapshot_dir = file + "/snaps";
  CampaignServer server(spec, options);
  // Regression: a connected worker must be hung up on when Serve bails early,
  // or self-hosted children deadlock against the parent's waitpid.
  auto [server_end, worker_end] = LocalPair();
  server.AddWorker(std::move(server_end));
  std::string worker_error;
  std::thread worker_thread([&, transport = worker_end.get()] {
    worker_error = RunWorker(*transport, WorkerOptions{});
  });
  std::string err = server.Serve();
  worker_thread.join();
  EXPECT_NE(err.find("campaign output directory unusable"), std::string::npos);
  EXPECT_NE(worker_error, "");
}

// ---------------------------------------------------------------------------
// End-to-end distributed sweeps. Workers run in-process threads over
// socketpairs — the same Transport/RunWorker code the forked and TCP modes
// use, minus the process boundary.

opec_campaign::CampaignSpec SmallFaultSweep(size_t count) {
  opec_campaign::CampaignSpec spec;
  spec.seed = 7;
  spec.AddFaultSweep({"PinLock"}, count);
  return spec;
}

struct DistRun {
  opec_campaign::CampaignResult result;
  std::string serve_error;
  std::vector<std::string> worker_errors;
};

DistRun RunDistCampaign(const opec_campaign::CampaignSpec& spec, size_t n_workers,
                        CampaignServer::Options options,
                        std::vector<WorkerOptions> worker_options = {}) {
  DistRun run;
  CampaignServer server(spec, options);
  std::vector<std::unique_ptr<Transport>> worker_ends;
  for (size_t i = 0; i < n_workers; ++i) {
    auto [server_end, worker_end] = LocalPair();
    server.AddWorker(std::move(server_end));
    worker_ends.push_back(std::move(worker_end));
  }
  run.worker_errors.resize(n_workers);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n_workers; ++i) {
    WorkerOptions wo = i < worker_options.size() ? worker_options[i] : WorkerOptions{};
    if (wo.name.empty()) {
      wo.name = "w" + std::to_string(i);
    }
    threads.emplace_back([&run, i, transport = worker_ends[i].get(), wo] {
      run.worker_errors[i] = RunWorker(*transport, wo);
    });
  }
  run.serve_error = server.Serve();
  for (std::thread& t : threads) {
    t.join();
  }
  run.result = server.TakeCampaignResult();
  return run;
}

TEST(DistSweep, MatchesInProcessExecutorAcrossWorkerCounts) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(10);
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  std::string serial = opec_campaign::Executor::Run(spec, serial_options).DeterministicJson();

  for (size_t n : {1u, 2u, 4u}) {
    CampaignServer::Options options;
    options.unit_size = 2;
    DistRun run = RunDistCampaign(spec, n, options);
    ASSERT_EQ(run.serve_error, "") << "workers=" << n;
    for (const std::string& we : run.worker_errors) {
      EXPECT_EQ(we, "");
    }
    EXPECT_EQ(run.result.DeterministicJson(), serial) << "workers=" << n;
    EXPECT_TRUE(run.result.dist.active);
    EXPECT_EQ(run.result.dist.workers, n);
  }
}

TEST(DistSweep, DistBlockInJsonButNotDeterministicJson) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(4);
  CampaignServer::Options options;
  options.unit_size = 2;
  DistRun run = RunDistCampaign(spec, 2, options);
  ASSERT_EQ(run.serve_error, "");
  EXPECT_NE(run.result.Json().find("\"dist\""), std::string::npos);
  EXPECT_EQ(run.result.DeterministicJson().find("\"dist\""), std::string::npos);
}

TEST(DistSweep, WorkerDeathMidSweepReissuesAndReportUnchanged) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(10);
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  std::string serial = opec_campaign::Executor::Run(spec, serial_options).DeterministicJson();

  CampaignServer::Options options;
  options.unit_size = 2;
  std::vector<WorkerOptions> worker_options(2);
  worker_options[0].die_after_jobs = 1;  // dies mid-unit, result never sent
  DistRun run = RunDistCampaign(spec, 2, options, worker_options);
  ASSERT_EQ(run.serve_error, "");
  EXPECT_EQ(run.result.DeterministicJson(), serial);
  EXPECT_GE(run.result.dist.workers_died, 1u);
  EXPECT_GE(run.result.dist.units_reissued, 1u);
}

TEST(DistSweep, LeaseExpiryReissuesToLiveWorker) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(8);
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  std::string serial = opec_campaign::Executor::Run(spec, serial_options).DeterministicJson();

  CampaignServer::Options options;
  options.unit_size = 2;
  options.lease_ms = 50;
  CampaignServer server(spec, options);

  // Stub worker: takes one unit, then stalls (connected but silent) until
  // shutdown. Its lease must expire and the unit reissue to the real worker.
  auto [stub_server_end, stub_end] = LocalPair();
  server.AddWorker(std::move(stub_server_end));
  auto [real_server_end, real_end] = LocalPair();
  server.AddWorker(std::move(real_server_end));

  // Pre-queue the stub's hello + work request so the server grants it a unit
  // before the real worker has even said hello (stub is poll index 0).
  opec_dist::HelloMsg hello;
  hello.worker_name = "staller";
  ASSERT_EQ(stub_end->Send(MakeFrame(FrameType::kHello,
                                     [&](StateWriter& w) { opec_dist::WriteHello(w, hello); })),
            Transport::Status::kOk);
  ASSERT_EQ(stub_end->Send(MakeFrame(FrameType::kRequestWork)), Transport::Status::kOk);

  bool stub_got_assign = false;
  std::thread stub([&, transport = stub_end.get()] {
    Frame f;
    while (transport->Recv(&f) == Transport::Status::kOk) {
      if (f.type == FrameType::kAssign) {
        stub_got_assign = true;  // stall: never report the result
      }
      if (f.type == FrameType::kShutdown) {
        break;
      }
    }
    transport->Close();  // let the server's drain phase see EOF promptly
  });
  std::string real_error;
  std::thread real([&, transport = real_end.get()] {
    WorkerOptions wo;
    wo.name = "real";
    real_error = RunWorker(*transport, wo);
  });

  std::string err = server.Serve();
  stub.join();
  real.join();
  ASSERT_EQ(err, "");
  EXPECT_EQ(real_error, "");
  EXPECT_TRUE(stub_got_assign);
  EXPECT_GE(server.dist_stats().leases_expired, 1u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

TEST(DistSweep, FuzzSweepMatchesSerialRunCase) {
  constexpr uint64_t kBase = 1000;
  constexpr uint64_t kCount = 6;
  CampaignServer::Options options;
  options.unit_size = 2;
  CampaignServer server(kBase, kCount, options);

  std::vector<std::unique_ptr<Transport>> ends;
  for (int i = 0; i < 2; ++i) {
    auto [server_end, worker_end] = LocalPair();
    server.AddWorker(std::move(server_end));
    ends.push_back(std::move(worker_end));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([transport = ends[static_cast<size_t>(i)].get()] {
      WorkerOptions wo;
      RunWorker(*transport, wo);
    });
  }
  std::string err = server.Serve();
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_EQ(err, "");

  std::vector<opec_fuzz::CaseResult> dist_results = server.TakeFuzzResults();
  ASSERT_EQ(dist_results.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    opec_fuzz::CaseResult serial = opec_fuzz::RunCase(kBase + i);
    EXPECT_EQ(dist_results[i].seed, serial.seed);
    EXPECT_EQ(dist_results[i].digest, serial.digest);
    EXPECT_EQ(dist_results[i].summary, serial.summary);
    EXPECT_EQ(dist_results[i].divergences.size(), serial.divergences.size());
  }
}

TEST(DistSweep, SharedCacheDirGivesArtifactHitsOnSecondRunSameReport) {
  std::string cache_dir = MakeTempDir();
  // Scenario jobs on both engines so boot snapshots *and* bytecode modules
  // flow through the cache.
  opec_campaign::CampaignSpec spec;
  spec.seed = 11;
  for (int engine = 0; engine < 2; ++engine) {
    for (int i = 0; i < 2; ++i) {
      opec_campaign::JobSpec job;
      job.kind = opec_campaign::JobKind::kScenario;
      job.app = "PinLock";
      job.mode = opec_apps::BuildMode::kOpec;
      job.engine = engine == 0 ? opec_apps::EngineKind::kInterp
                               : opec_apps::EngineKind::kBytecode;
      spec.jobs.push_back(job);
    }
  }

  CampaignServer::Options options;
  options.unit_size = 1;
  std::vector<WorkerOptions> worker_options(1);
  worker_options[0].cache_dir = cache_dir;

  DistRun cold = RunDistCampaign(spec, 1, options, worker_options);
  ASSERT_EQ(cold.serve_error, "");
  // Fresh server + fresh worker over the same cache dir: the worker resolves
  // boot/bcmod artifacts from named refs and adopts instead of rebuilding.
  DistRun warm = RunDistCampaign(spec, 1, options, worker_options);
  ASSERT_EQ(warm.serve_error, "");
  EXPECT_GT(warm.result.dist.artifact_hits, 0u);
  EXPECT_EQ(warm.result.DeterministicJson(), cold.result.DeterministicJson());

  // And both match the in-process executor (warm pool, cold boot — all the
  // same modeled outputs).
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  EXPECT_EQ(cold.result.DeterministicJson(),
            opec_campaign::Executor::Run(spec, serial_options).DeterministicJson());
}

// ---------------------------------------------------------------------------
// Fleet hardening (protocol v2): version negotiation, auth, CIDR
// allow-listing, truncation hygiene, streaming backpressure,
// reconnect-and-resume, adaptive unit sizing, chunked artifact replies.

std::string SerialJson(const opec_campaign::CampaignSpec& spec) {
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  return opec_campaign::Executor::Run(spec, serial_options).DeterministicJson();
}

TEST(DistWire, VersionNegotiation) {
  opec_dist::HelloMsg hello;  // defaults: a current-dialect peer
  EXPECT_EQ(opec_dist::NegotiateVersion(hello), opec_dist::kProtocolVersion);
  hello.version = 1;
  hello.min_version = 1;
  EXPECT_EQ(opec_dist::NegotiateVersion(hello), 1u);
  // A future peer that can still fall back to our dialect.
  hello.version = 99;
  hello.min_version = 1;
  EXPECT_EQ(opec_dist::NegotiateVersion(hello), opec_dist::kProtocolVersion);
  // A peer that demands a dialect newer than ours: no common version.
  hello.min_version = opec_dist::kProtocolVersion + 1;
  EXPECT_EQ(opec_dist::NegotiateVersion(hello), 0u);
}

TEST(DistWire, V1HelloCarriesOnlyVersionAndName) {
  opec_dist::HelloMsg hello;
  hello.version = 1;
  hello.worker_name = "legacy";
  hello.token = "never-sent-on-v1";
  hello.worker_id = "never-sent-on-v1";
  StateWriter w;
  opec_dist::WriteHello(w, hello);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_dist::HelloMsg got = opec_dist::ReadHello(r);
  EXPECT_EQ(got.version, 1u);
  EXPECT_EQ(got.worker_name, "legacy");
  EXPECT_EQ(got.token, "");
  EXPECT_EQ(got.worker_id, "");
  EXPECT_FALSE(got.resumable);
  EXPECT_EQ(got.resume_unit, opec_dist::kNoResumeUnit);
}

TEST(DistWire, V2HelloRoundTripsResumeCursor) {
  opec_dist::HelloMsg hello;
  hello.worker_name = "w7";
  hello.token = "sesame";
  hello.worker_id = "host7#3";
  hello.resumable = true;
  hello.resume_unit = 42;
  hello.resume_done = 3;
  StateWriter w;
  opec_dist::WriteHello(w, hello);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_dist::HelloMsg got = opec_dist::ReadHello(r);
  EXPECT_EQ(got.version, opec_dist::kProtocolVersion);
  EXPECT_EQ(got.token, "sesame");
  EXPECT_EQ(got.worker_id, "host7#3");
  EXPECT_TRUE(got.resumable);
  EXPECT_EQ(got.resume_unit, 42u);
  EXPECT_EQ(got.resume_done, 3u);
}

TEST(DistTransport, CidrParseAndMatch) {
  std::vector<opec_dist::Cidr> allow;
  std::string error;
  ASSERT_TRUE(opec_dist::ParseCidrList("127.0.0.1,10.0.0.0/8", &allow, &error)) << error;
  ASSERT_EQ(allow.size(), 2u);
  EXPECT_TRUE(opec_dist::CidrMatch(allow, 0x7F000001));   // 127.0.0.1
  EXPECT_FALSE(opec_dist::CidrMatch(allow, 0x7F000002));  // 127.0.0.2
  EXPECT_TRUE(opec_dist::CidrMatch(allow, 0x0A123456));   // inside 10/8
  EXPECT_FALSE(opec_dist::CidrMatch(allow, 0x0B000001));  // outside

  // An empty list means "no restriction configured".
  std::vector<opec_dist::Cidr> none;
  EXPECT_TRUE(opec_dist::CidrMatch(none, 0x01020304));
  // /0 matches everything.
  std::vector<opec_dist::Cidr> any;
  ASSERT_TRUE(opec_dist::ParseCidrList("0.0.0.0/0", &any, &error));
  EXPECT_TRUE(opec_dist::CidrMatch(any, 0xDEADBEEF));

  std::vector<opec_dist::Cidr> bad;
  EXPECT_FALSE(opec_dist::ParseCidrList("10.0.0.0/33", &bad, &error));
  EXPECT_FALSE(opec_dist::ParseCidrList("not-an-ip", &bad, &error));
  EXPECT_FALSE(opec_dist::ParseCidrList("10.0.0.0/x", &bad, &error));
  EXPECT_FALSE(opec_dist::ParseCidrList("", &bad, &error));
}

TEST(DistTransport, TruncationAtEveryOffsetIsCleanAndFreshLinkRecovers) {
  // Sweep a v2 hello and a campaign result frame: EOF at any byte offset
  // inside the frame must surface as a clean "truncated frame", and a fresh
  // transport (what a reconnect from the same worker id gets — the receive
  // buffer is per connection) must decode the full frame untainted.
  opec_dist::HelloMsg hello;
  hello.worker_name = "w-trunc";
  hello.token = "sesame";
  hello.worker_id = "alpha";
  hello.resumable = true;
  hello.resume_unit = 3;
  hello.resume_done = 1;
  Frame hello_frame = MakeFrame(FrameType::kHello,
                                [&](StateWriter& w) { opec_dist::WriteHello(w, hello); });

  opec_dist::ResultMsg rm;
  rm.unit_id = 3;
  rm.indexes = {4};
  opec_campaign::JobResult jr;
  jr.spec.app = "PinLock";
  jr.detail = "a detail string that pads the result payload a bit";
  rm.jobs = {jr};
  Frame result_frame = MakeFrame(FrameType::kResult, [&](StateWriter& w) {
    opec_dist::WriteResult(w, SweepKind::kCampaign, rm);
  });

  for (const Frame& frame : {hello_frame, result_frame}) {
    std::vector<uint8_t> encoded = opec_dist::EncodeFrame(frame);
    ASSERT_GT(encoded.size(), 5u);
    for (size_t cut = 0; cut < encoded.size(); ++cut) {
      int fds[2] = {-1, -1};
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
      FdTransport receiver(fds[1]);
      if (cut > 0) {
        ASSERT_EQ(::send(fds[0], encoded.data(), cut, 0), static_cast<ssize_t>(cut));
      }
      ::close(fds[0]);
      Frame got;
      Transport::Status status = receiver.Recv(&got);
      if (cut == 0) {
        EXPECT_EQ(status, Transport::Status::kEof);
      } else {
        ASSERT_EQ(status, Transport::Status::kError) << "cut=" << cut;
        EXPECT_EQ(receiver.error(), "truncated frame") << "cut=" << cut;
      }
    }
    // The successor connection starts with a clean buffer by construction.
    auto [a, b] = LocalPair();
    ASSERT_EQ(a->Send(frame), Transport::Status::kOk);
    Frame got;
    ASSERT_EQ(b->Recv(&got), Transport::Status::kOk);
    EXPECT_EQ(got.type, frame.type);
    EXPECT_EQ(got.payload, frame.payload);
  }
}

TEST(DistAuth, BadTokenHungUpOnBeforeAnyBytes) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(4);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.unit_size = 2;
  options.auth_token = "sesame";
  CampaignServer server(spec, options);

  auto [bad_server_end, bad_end] = LocalPair();
  server.AddWorker(std::move(bad_server_end));
  auto [good_server_end, good_end] = LocalPair();
  server.AddWorker(std::move(good_server_end));

  opec_dist::HelloMsg hello;
  hello.worker_name = "intruder";
  hello.token = "wrong";
  ASSERT_EQ(bad_end->Send(MakeFrame(FrameType::kHello,
                                    [&](StateWriter& w) { opec_dist::WriteHello(w, hello); })),
            Transport::Status::kOk);

  // kEof (not a frame, not a mid-frame error) proves the server hung up
  // without sending a single byte back.
  Transport::Status bad_status = Transport::Status::kOk;
  std::thread intruder([&, transport = bad_end.get()] {
    Frame f;
    bad_status = transport->Recv(&f);
  });
  std::string good_error;
  std::thread good([&, transport = good_end.get()] {
    WorkerOptions wo;
    wo.name = "legit";
    wo.token = "sesame";
    good_error = RunWorker(*transport, wo);
  });
  std::string err = server.Serve();
  intruder.join();
  good.join();
  ASSERT_EQ(err, "");
  EXPECT_EQ(good_error, "");
  EXPECT_EQ(bad_status, Transport::Status::kEof);
  EXPECT_EQ(server.dist_stats().peers_rejected, 1u);
  EXPECT_EQ(server.dist_stats().workers, 1u);  // the intruder never joined
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

TEST(DistAuth, TcpPeerOutsideAllowListRefusedAtAccept) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(4);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.unit_size = 2;
  std::string cidr_error;
  ASSERT_TRUE(opec_dist::ParseCidrList("10.0.0.0/8", &options.allow, &cidr_error));
  CampaignServer server(spec, options);

  std::string listen_error;
  int listen_fd = opec_dist::TcpListen(0, &listen_error);
  ASSERT_GE(listen_fd, 0) << listen_error;
  uint16_t port = opec_dist::TcpBoundPort(listen_fd);
  ASSERT_NE(port, 0);
  server.set_listen_fd(listen_fd);

  auto [server_end, worker_end] = LocalPair();
  server.AddWorker(std::move(server_end));

  std::string serve_error;
  std::thread serve_thread([&] { serve_error = server.Serve(); });

  // 127.0.0.1 is outside 10.0.0.0/8: the connection is closed at accept
  // time, before the server reads or writes a single frame.
  std::string connect_error;
  int cfd = opec_dist::TcpConnect("127.0.0.1:" + std::to_string(port), &connect_error);
  ASSERT_GE(cfd, 0) << connect_error;
  FdTransport refused(cfd);
  Frame f;
  EXPECT_EQ(refused.Recv(&f), Transport::Status::kEof);

  // Only now let the pre-connected (socketpair) worker run the sweep down.
  std::string worker_error;
  std::thread worker_thread([&, transport = worker_end.get()] {
    WorkerOptions wo;
    wo.name = "local";
    worker_error = RunWorker(*transport, wo);
  });
  serve_thread.join();
  worker_thread.join();
  ::close(listen_fd);
  ASSERT_EQ(serve_error, "");
  EXPECT_EQ(worker_error, "");
  EXPECT_GE(server.dist_stats().peers_rejected, 1u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

TEST(DistSweep, V1HelloPeerStillWelcomed) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(2);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.unit_size = 1;
  CampaignServer server(spec, options);
  auto [stub_server_end, stub_end] = LocalPair();
  server.AddWorker(std::move(stub_server_end));
  auto [real_server_end, real_end] = LocalPair();
  server.AddWorker(std::move(real_server_end));

  // A v1 peer completes the handshake and gets a v1 welcome; the v2 worker
  // runs the sweep alongside it.
  opec_dist::HelloMsg hello;
  hello.version = 1;
  hello.worker_name = "legacy";
  ASSERT_EQ(stub_end->Send(MakeFrame(FrameType::kHello,
                                     [&](StateWriter& w) { opec_dist::WriteHello(w, hello); })),
            Transport::Status::kOk);

  uint32_t welcomed_version = 0;
  std::thread legacy([&, transport = stub_end.get()] {
    Frame f;
    while (transport->Recv(&f) == Transport::Status::kOk) {
      if (f.type == FrameType::kWelcome) {
        StateReader r(f.payload);
        welcomed_version = opec_dist::ReadWelcome(r).version;
      }
      if (f.type == FrameType::kShutdown) {
        break;
      }
    }
    transport->Close();
  });
  std::string real_error;
  std::thread real([&, transport = real_end.get()] {
    WorkerOptions wo;
    wo.name = "real";
    real_error = RunWorker(*transport, wo);
  });
  std::string err = server.Serve();
  legacy.join();
  real.join();
  ASSERT_EQ(err, "");
  EXPECT_EQ(real_error, "");
  EXPECT_EQ(welcomed_version, 1u);
  EXPECT_EQ(server.dist_stats().peers_rejected, 0u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

// Regression (head-of-line blocking): a peer that stops reading used to
// freeze the whole fleet — the server sat in a blocking WriteAll to the
// stalled peer's socket and no other worker was served (this test timed out
// pre-fix). Post-fix the replies queue in the staller's per-peer outbox and
// everyone else proceeds.
TEST(DistSweep, StalledPeerDoesNotBlockTheFleet) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(6);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.unit_size = 2;
  options.drain_ms = 200;  // the staller never drains; don't wait on it long
  CampaignServer server(spec, options);

  auto [stall_server_end, stall_end] = LocalPair();
  server.AddWorker(std::move(stall_server_end));
  auto [real_server_end, real_end] = LocalPair();
  server.AddWorker(std::move(real_server_end));

  // The staller uploads a 256 KiB artifact, then floods fetches for it
  // without ever reading a reply: the kernel pipe back to it fills after the
  // first couple of replies and everything else lands in its outbox.
  std::vector<uint8_t> blob(256 * 1024, 0xCD);
  ArtifactCache scratch("");
  uint64_t digest = scratch.Put(blob);
  std::thread staller([&, transport = stall_end.get()] {
    opec_dist::HelloMsg hello;
    hello.worker_name = "staller";
    transport->Send(MakeFrame(FrameType::kHello,
                              [&](StateWriter& w) { opec_dist::WriteHello(w, hello); }));
    opec_dist::ArtifactAnnounceMsg ann;
    ann.key = "blob/stall";
    ann.digest = digest;
    ann.with_bytes = true;
    ann.bytes = blob;
    transport->Send(MakeFrame(FrameType::kArtifactAnnounce, [&](StateWriter& w) {
      opec_dist::WriteArtifactAnnounce(w, ann);
    }));
    opec_dist::ArtifactFetchMsg fetch;
    fetch.digest = digest;
    for (int i = 0; i < 64; ++i) {
      transport->Send(MakeFrame(FrameType::kArtifactFetch, [&](StateWriter& w) {
        opec_dist::WriteArtifactFetch(w, fetch);
      }));
    }
    // Keep the fd open (never read): the outbox must absorb ~16 MiB.
  });

  std::string real_error;
  std::thread real([&, transport = real_end.get()] {
    WorkerOptions wo;
    wo.name = "real";
    real_error = RunWorker(*transport, wo);
  });
  std::string err = server.Serve();
  staller.join();
  real.join();
  ASSERT_EQ(err, "");
  EXPECT_EQ(real_error, "");
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

// Regression (lease/reconnect stats race): a full result that lands *after*
// its lease expired completes the unit; the copy some other worker still
// holds must be cancelled silently. Pre-fix the holder's EOF re-queued the
// already-complete unit and units_reissued double-counted the recovery.
TEST(DistSweep, LateResultAfterLeaseExpiryCountedOnce) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(2);
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  opec_campaign::CampaignResult serial_result = opec_campaign::Executor::Run(spec, serial_options);
  std::string serial = serial_result.DeterministicJson();

  CampaignServer::Options options;
  options.unit_size = 2;  // one unit covers the whole sweep
  options.lease_ms = 100;
  CampaignServer server(spec, options);

  auto [slow_server_end, slow_end] = LocalPair();
  server.AddWorker(std::move(slow_server_end));
  auto [holder_server_end, holder_end] = LocalPair();
  server.AddWorker(std::move(holder_server_end));

  // Slow worker: takes the only unit, stalls past the lease, then delivers
  // the full (byte-identical) result late.
  std::thread slow([&, transport = slow_end.get()] {
    opec_dist::HelloMsg hello;
    hello.worker_name = "slow";
    transport->Send(MakeFrame(FrameType::kHello,
                              [&](StateWriter& w) { opec_dist::WriteHello(w, hello); }));
    Frame f;
    if (transport->Recv(&f) != Transport::Status::kOk) {  // welcome
      return;
    }
    transport->Send(MakeFrame(FrameType::kRequestWork));
    if (transport->Recv(&f) != Transport::Status::kOk || f.type != FrameType::kAssign) {
      return;
    }
    StateReader r(f.payload);
    opec_dist::AssignMsg assign = opec_dist::ReadAssign(r, SweepKind::kCampaign);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    opec_dist::ResultMsg rm;
    rm.unit_id = assign.unit_id;
    rm.indexes = assign.indexes;
    for (uint64_t index : assign.indexes) {
      rm.jobs.push_back(serial_result.results[index]);
    }
    transport->Send(MakeFrame(FrameType::kResult, [&](StateWriter& w) {
      opec_dist::WriteResult(w, SweepKind::kCampaign, rm);
    }));
    while (transport->Recv(&f) == Transport::Status::kOk) {
      if (f.type == FrameType::kShutdown) {
        break;
      }
    }
    transport->Close();
  });
  // Holder: waits out the expiry, grabs the re-issued copy, and sits on it
  // until shutdown — its EOF after the late completion must not re-queue.
  std::thread holder([&, transport = holder_end.get()] {
    opec_dist::HelloMsg hello;
    hello.worker_name = "holder";
    transport->Send(MakeFrame(FrameType::kHello,
                              [&](StateWriter& w) { opec_dist::WriteHello(w, hello); }));
    Frame f;
    if (transport->Recv(&f) != Transport::Status::kOk) {  // welcome
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    transport->Send(MakeFrame(FrameType::kRequestWork));
    while (transport->Recv(&f) == Transport::Status::kOk) {
      if (f.type == FrameType::kShutdown) {
        break;
      }
    }
    transport->Close();
  });

  std::string err = server.Serve();
  slow.join();
  holder.join();
  ASSERT_EQ(err, "");
  // The slow worker's expiry is the only legitimate bump (a heavily loaded
  // host can expire the holder's copy too, hence >=); the holder's EOF on the
  // already-complete unit must not count as a reissue — that double-count is
  // the regression.
  EXPECT_GE(server.dist_stats().leases_expired, 1u);
  EXPECT_EQ(server.dist_stats().units_reissued, 0u);
  EXPECT_GE(server.dist_stats().late_results, 1u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

// Tentpole end-to-end: real TCP on 127.0.0.1, two authenticated workers, one
// of which drops its link mid-unit and redials. The server parks the lease,
// adopts it on reconnect, re-assigns only the remainder under the original
// unit id — nothing is re-queued, and the report is byte-identical to
// `campaign --jobs 1`.
TEST(DistSweep, TcpReconnectResumesSameUnitByteIdentical) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(12);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.unit_size = 4;
  options.auth_token = "sesame";
  CampaignServer server(spec, options);

  std::string listen_error;
  int listen_fd = opec_dist::TcpListen(0, &listen_error);
  ASSERT_GE(listen_fd, 0) << listen_error;
  uint16_t port = opec_dist::TcpBoundPort(listen_fd);
  ASSERT_NE(port, 0);
  server.set_listen_fd(listen_fd);

  std::string serve_error;
  std::thread serve_thread([&] { serve_error = server.Serve(); });

  auto connect = [port]() -> std::unique_ptr<Transport> {
    std::string error;
    int fd = opec_dist::TcpConnect("127.0.0.1:" + std::to_string(port), &error);
    if (fd < 0) {
      return nullptr;
    }
    return std::make_unique<FdTransport>(fd);
  };
  std::string alpha_error;
  std::thread alpha([&] {
    WorkerOptions wo;
    wo.name = "alpha";
    wo.token = "sesame";
    wo.worker_id = "alpha";
    wo.reconnect_max = 5;
    wo.reconnect_delay_ms = 20;
    wo.chaos_drop_after = 1;  // drop mid-unit, once; resume on redial
    alpha_error = RunWorkerLoop(connect, wo);
  });
  std::string beta_error;
  std::thread beta([&] {
    WorkerOptions wo;
    wo.name = "beta";
    wo.token = "sesame";
    wo.worker_id = "beta";
    wo.reconnect_max = 5;
    wo.reconnect_delay_ms = 20;
    beta_error = RunWorkerLoop(connect, wo);
  });
  serve_thread.join();
  alpha.join();
  beta.join();
  ::close(listen_fd);

  ASSERT_EQ(serve_error, "");
  EXPECT_EQ(alpha_error, "");
  EXPECT_EQ(beta_error, "");
  const opec_campaign::DistStats& d = server.dist_stats();
  EXPECT_EQ(d.workers, 2u);  // distinct ids, not connections
  EXPECT_GE(d.links_lost, 1u);
  EXPECT_GE(d.reconnects, 1u);
  EXPECT_EQ(d.units_reissued, 0u);  // resumed in place, never re-queued
  EXPECT_EQ(d.leases_expired, 0u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

TEST(DistSweep, AdaptiveUnitSizingKeepsReportByteIdentical) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(10);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.adaptive_units = true;
  options.target_unit_ms = 2;  // tiny target: forces per-lease re-sizing
  options.max_unit_size = 4;
  for (size_t n : {1u, 2u}) {
    DistRun run = RunDistCampaign(spec, n, options);
    ASSERT_EQ(run.serve_error, "") << "workers=" << n;
    for (const std::string& we : run.worker_errors) {
      EXPECT_EQ(we, "");
    }
    EXPECT_EQ(run.result.DeterministicJson(), serial) << "workers=" << n;
    const opec_campaign::DistStats& d = run.result.dist;
    EXPECT_TRUE(d.adaptive_units);
    EXPECT_GE(d.unit_size_min, 1u);
    EXPECT_GE(d.unit_size_max, d.unit_size_min);
    EXPECT_LE(d.unit_size_max, 4u);
    // Sizing is observability, not part of the deterministic report.
    EXPECT_NE(run.result.Json().find("\"adaptive_units\": true"), std::string::npos);
    EXPECT_EQ(run.result.DeterministicJson().find("adaptive_units"), std::string::npos);
  }
}

TEST(DistSweep, OversizedArtifactRepliesStreamAsChunks) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(2);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.unit_size = 1;
  options.chunk_threshold = 256;
  CampaignServer server(spec, options);
  auto [stub_server_end, stub_end] = LocalPair();
  server.AddWorker(std::move(stub_server_end));
  auto [real_server_end, real_end] = LocalPair();
  server.AddWorker(std::move(real_server_end));

  std::string serve_error;
  std::thread serve_thread([&] { serve_error = server.Serve(); });

  // v2 stub: upload a 1000-byte artifact, fetch it back, and require the
  // reply to arrive as in-order kArtifactChunk slices bounded by the
  // advertised threshold.
  Transport* stub = stub_end.get();
  opec_dist::HelloMsg hello;
  hello.worker_name = "chunky";
  ASSERT_EQ(stub->Send(MakeFrame(FrameType::kHello,
                                 [&](StateWriter& w) { opec_dist::WriteHello(w, hello); })),
            Transport::Status::kOk);
  Frame f;
  ASSERT_EQ(stub->Recv(&f), Transport::Status::kOk);
  ASSERT_EQ(f.type, FrameType::kWelcome);
  {
    StateReader r(f.payload);
    opec_dist::WelcomeMsg welcome = opec_dist::ReadWelcome(r);
    EXPECT_EQ(welcome.version, opec_dist::kProtocolVersion);
    EXPECT_EQ(welcome.chunk_threshold, 256u);
  }

  std::vector<uint8_t> blob(1000);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(i * 7);
  }
  ArtifactCache scratch("");
  uint64_t digest = scratch.Put(blob);
  opec_dist::ArtifactAnnounceMsg ann;
  ann.key = "blob/chunky";
  ann.digest = digest;
  ann.with_bytes = true;
  ann.bytes = blob;
  ASSERT_EQ(stub->Send(MakeFrame(FrameType::kArtifactAnnounce, [&](StateWriter& w) {
              opec_dist::WriteArtifactAnnounce(w, ann);
            })),
            Transport::Status::kOk);
  opec_dist::ArtifactFetchMsg fetch;
  fetch.digest = digest;
  ASSERT_EQ(stub->Send(MakeFrame(FrameType::kArtifactFetch, [&](StateWriter& w) {
              opec_dist::WriteArtifactFetch(w, fetch);
            })),
            Transport::Status::kOk);

  std::vector<uint8_t> assembled;
  size_t chunks = 0;
  for (;;) {
    ASSERT_EQ(stub->Recv(&f), Transport::Status::kOk);
    ASSERT_EQ(f.type, FrameType::kArtifactChunk);
    StateReader r(f.payload);
    opec_dist::ArtifactChunkMsg chunk = opec_dist::ReadArtifactChunk(r);
    ASSERT_EQ(chunk.total, blob.size());
    ASSERT_EQ(chunk.offset, assembled.size());  // strictly in order
    ASSERT_LE(chunk.bytes.size(), 256u);
    assembled.insert(assembled.end(), chunk.bytes.begin(), chunk.bytes.end());
    ++chunks;
    if (assembled.size() == chunk.total) {
      break;
    }
  }
  EXPECT_EQ(assembled, blob);
  EXPECT_EQ(chunks, 4u);  // ceil(1000 / 256)

  // Run the sweep down and exit cleanly.
  std::string real_error;
  std::thread real([&, transport = real_end.get()] {
    WorkerOptions wo;
    wo.name = "real";
    real_error = RunWorker(*transport, wo);
  });
  while (stub->Recv(&f) == Transport::Status::kOk) {
    if (f.type == FrameType::kShutdown) {
      break;
    }
  }
  stub_end->Close();
  serve_thread.join();
  real.join();
  ASSERT_EQ(serve_error, "");
  EXPECT_EQ(real_error, "");
  EXPECT_GE(server.dist_stats().chunks_sent, 4u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

TEST(DistSweep, WorkerReassemblesChunkedArtifactEndToEnd) {
  // One scenario job. Worker X builds the boot snapshot cold, announces it
  // (bytes included), then exits before delivering its result; the job is
  // re-queued. Worker Y — whose local cache evicts everything — resolves the
  // key from the server, fetches the snapshot back as a chunk stream
  // (threshold far below snapshot size), reassembles and adopts it, and the
  // report still matches the in-process executor byte for byte.
  opec_campaign::CampaignSpec spec;
  spec.seed = 11;
  opec_campaign::JobSpec job;
  job.kind = opec_campaign::JobKind::kScenario;
  job.app = "PinLock";
  job.mode = opec_apps::BuildMode::kOpec;
  job.engine = opec_apps::EngineKind::kInterp;
  spec.jobs.push_back(job);
  std::string serial = SerialJson(spec);

  CampaignServer::Options options;
  options.unit_size = 1;
  options.chunk_threshold = 64;
  CampaignServer server(spec, options);

  auto [x_server_end, x_end] = LocalPair();
  server.AddWorker(std::move(x_server_end));
  auto [y_server_end, y_end] = LocalPair();
  server.AddWorker(std::move(y_server_end));

  std::string serve_error;
  std::thread serve_thread([&] { serve_error = server.Serve(); });

  std::string x_error;
  {
    WorkerOptions wo;
    wo.name = "builder";
    wo.die_after_jobs = 1;  // announce, then vanish without delivering
    x_error = RunWorker(*x_end, wo);
  }
  // X is gone and its unit re-queued; only now does Y join, so Y *must* go
  // through the server fetch path.
  std::string y_error;
  {
    WorkerOptions wo;
    wo.name = "fetcher";
    wo.cache_max_bytes = 1;  // evict everything: no local artifact survives
    y_error = RunWorker(*y_end, wo);
  }
  serve_thread.join();
  ASSERT_EQ(serve_error, "");
  EXPECT_EQ(x_error, "");
  EXPECT_EQ(y_error, "");
  EXPECT_GE(server.dist_stats().chunks_sent, 2u);
  EXPECT_GE(server.dist_stats().units_reissued, 1u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

}  // namespace
