// Tests of the distributed campaign service (src/dist, DESIGN.md §16):
// wire framing and struct round-trips, transport truncation/oversize error
// handling, the content-addressed artifact cache, and — the load-bearing
// property — byte-identity of the distributed executor's DeterministicJson
// against the in-process serial executor across worker counts, worker death
// mid-sweep, and lease expiry.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/dist/cache.h"
#include "src/dist/server.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"
#include "src/fuzz/oracles.h"
#include "src/hw/state_io.h"
#include "src/rt/bytecode/bytecode.h"
#include "src/rt/engine.h"
#include "src/support/check.h"
#include "src/support/fs.h"

namespace {

using opec_dist::ArtifactCache;
using opec_dist::CampaignServer;
using opec_dist::FdTransport;
using opec_dist::Frame;
using opec_dist::FrameType;
using opec_dist::LocalPair;
using opec_dist::MakeFrame;
using opec_dist::RunWorker;
using opec_dist::SweepKind;
using opec_dist::Transport;
using opec_dist::WorkerOptions;
using opec_hw::StateReader;
using opec_hw::StateWriter;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/opec_dist_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) {
    out.push_back(static_cast<uint8_t>(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Framing and transport error model.

TEST(DistTransport, FrameRoundTrip) {
  auto [a, b] = LocalPair();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  Frame f;
  f.type = FrameType::kResult;
  f.payload = Bytes({1, 2, 3, 0xFF, 0});
  ASSERT_EQ(a->Send(f), Transport::Status::kOk);

  Frame got;
  ASSERT_EQ(b->Recv(&got), Transport::Status::kOk);
  EXPECT_EQ(got.type, FrameType::kResult);
  EXPECT_EQ(got.payload, f.payload);

  // Empty payload is a legal frame.
  ASSERT_EQ(b->Send(MakeFrame(FrameType::kRequestWork)), Transport::Status::kOk);
  ASSERT_EQ(a->Recv(&got), Transport::Status::kOk);
  EXPECT_EQ(got.type, FrameType::kRequestWork);
  EXPECT_TRUE(got.payload.empty());

  // Closing one end is an orderly EOF at the frame boundary, not an error.
  a->Close();
  EXPECT_EQ(b->Recv(&got), Transport::Status::kEof);
}

TEST(DistTransport, MaxSizePayloadAcceptedOversizedRejected) {
  // Small test-only cap so the boundary is exercised without 64 MiB frames.
  constexpr uint32_t kCap = 256;
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport sender(fds[0]);  // default cap: large payloads leave fine
  FdTransport receiver(fds[1], kCap);

  Frame f;
  f.type = FrameType::kArtifactData;
  f.payload.assign(kCap, 0xAB);  // exactly at the cap: accepted
  ASSERT_EQ(sender.Send(f), Transport::Status::kOk);
  Frame got;
  ASSERT_EQ(receiver.Recv(&got), Transport::Status::kOk);
  EXPECT_EQ(got.payload.size(), kCap);

  f.payload.assign(kCap + 1, 0xAB);  // one past: rejected before allocation
  ASSERT_EQ(sender.Send(f), Transport::Status::kOk);
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "frame payload too large");
}

TEST(DistTransport, SenderRefusesOversizedPayload) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport sender(fds[0], 16);
  FdTransport receiver(fds[1]);
  Frame f;
  f.type = FrameType::kResult;
  f.payload.assign(17, 0);
  EXPECT_EQ(sender.Send(f), Transport::Status::kError);
  EXPECT_EQ(sender.error(), "frame payload too large");
}

TEST(DistTransport, TruncatedHeaderIsCleanError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport receiver(fds[1]);
  // Three header bytes, then hang up: EOF inside a frame.
  uint8_t partial[3] = {5, 0, 0};
  ASSERT_EQ(::send(fds[0], partial, sizeof(partial), 0), 3);
  ::close(fds[0]);
  Frame got;
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "truncated frame");
}

TEST(DistTransport, TruncatedPayloadIsCleanError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport receiver(fds[1]);
  // Full header claiming 10 payload bytes, only 4 delivered.
  uint8_t header[5] = {10, 0, 0, 0, static_cast<uint8_t>(FrameType::kResult)};
  uint8_t body[4] = {1, 2, 3, 4};
  ASSERT_EQ(::send(fds[0], header, sizeof(header), 0), 5);
  ASSERT_EQ(::send(fds[0], body, sizeof(body), 0), 4);
  ::close(fds[0]);
  Frame got;
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "truncated frame");
}

TEST(DistTransport, UnknownFrameTypeRejected) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport receiver(fds[1]);
  uint8_t header[5] = {0, 0, 0, 0, 0xEE};
  ASSERT_EQ(::send(fds[0], header, sizeof(header), 0), 5);
  ::close(fds[0]);
  Frame got;
  EXPECT_EQ(receiver.Recv(&got), Transport::Status::kError);
  EXPECT_EQ(receiver.error(), "unknown frame type");
}

// ---------------------------------------------------------------------------
// Message round-trips.

TEST(DistWire, HandshakeMessagesRoundTrip) {
  opec_dist::HelloMsg hello;
  hello.worker_name = "w-test";
  StateWriter hw;
  opec_dist::WriteHello(hw, hello);
  std::vector<uint8_t> hb = hw.Take();
  StateReader hr(hb);
  opec_dist::HelloMsg hello2 = opec_dist::ReadHello(hr);
  EXPECT_EQ(hello2.version, opec_dist::kProtocolVersion);
  EXPECT_EQ(hello2.worker_name, "w-test");

  opec_dist::WelcomeMsg welcome;
  welcome.sweep = SweepKind::kFuzz;
  welcome.cold_boot = true;
  welcome.snapshot_dir = "/tmp/snaps";
  StateWriter ww;
  opec_dist::WriteWelcome(ww, welcome);
  std::vector<uint8_t> wb = ww.Take();
  StateReader wr(wb);
  opec_dist::WelcomeMsg welcome2 = opec_dist::ReadWelcome(wr);
  EXPECT_EQ(welcome2.sweep, SweepKind::kFuzz);
  EXPECT_TRUE(welcome2.cold_boot);
  EXPECT_EQ(welcome2.snapshot_dir, "/tmp/snaps");
}

TEST(DistWire, JobSpecRoundTrip) {
  opec_campaign::JobSpec spec;
  spec.kind = opec_campaign::JobKind::kFault;
  spec.app = "PinLock";
  spec.mode = opec_apps::BuildMode::kVanilla;
  spec.engine = opec_apps::EngineKind::kBytecode;
  spec.seed = 0xDEADBEEFCAFEull;
  spec.fault = opec_campaign::FaultClass::kIcallForge;
  spec.timeout_ms = 1234;
  spec.trace_path = "/tmp/t.json";
  spec.attach_counting_sink = true;
  spec.rv = false;

  StateWriter w;
  opec_dist::WriteJobSpec(w, spec);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_campaign::JobSpec got = opec_dist::ReadJobSpec(r);
  EXPECT_EQ(got.kind, spec.kind);
  EXPECT_EQ(got.app, spec.app);
  EXPECT_EQ(got.mode, spec.mode);
  EXPECT_EQ(got.engine, spec.engine);
  EXPECT_EQ(got.seed, spec.seed);
  EXPECT_EQ(got.fault, spec.fault);
  EXPECT_EQ(got.timeout_ms, spec.timeout_ms);
  EXPECT_EQ(got.trace_path, spec.trace_path);
  EXPECT_EQ(got.attach_counting_sink, spec.attach_counting_sink);
  EXPECT_EQ(got.rv, spec.rv);
}

TEST(DistWire, JobResultRoundTrip) {
  opec_campaign::JobResult jr;
  jr.index = 17;
  jr.spec.app = "PinLock";
  jr.ok = true;
  jr.outcome = opec_campaign::Outcome::kDeniedMpu;
  jr.detail = "mpu denied write";
  jr.cycles = 123456;
  jr.statements = 789;
  jr.return_value = 42;
  jr.attack_fired = true;
  jr.attack_blocked = true;
  jr.events = 99;
  jr.rv_states = 7;
  jr.rv_violations = 1;
  jr.rv_by_automaton = {0, 1, 0};
  jr.snapshot_digest = 0x1122334455667788ull;
  jr.wall_ns = 555;

  StateWriter w;
  opec_dist::WriteJobResult(w, jr);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_campaign::JobResult got = opec_dist::ReadJobResult(r);
  EXPECT_EQ(got.index, jr.index);
  EXPECT_EQ(got.spec.app, "PinLock");
  EXPECT_EQ(got.ok, jr.ok);
  EXPECT_EQ(got.outcome, jr.outcome);
  EXPECT_EQ(got.detail, jr.detail);
  EXPECT_EQ(got.cycles, jr.cycles);
  EXPECT_EQ(got.statements, jr.statements);
  EXPECT_EQ(got.return_value, jr.return_value);
  EXPECT_EQ(got.attack_fired, jr.attack_fired);
  EXPECT_EQ(got.attack_blocked, jr.attack_blocked);
  EXPECT_EQ(got.events, jr.events);
  EXPECT_EQ(got.rv_states, jr.rv_states);
  EXPECT_EQ(got.rv_violations, jr.rv_violations);
  EXPECT_EQ(got.rv_by_automaton, jr.rv_by_automaton);
  EXPECT_EQ(got.snapshot_digest, jr.snapshot_digest);
  EXPECT_EQ(got.wall_ns, jr.wall_ns);
}

TEST(DistWire, CaseResultRoundTrip) {
  opec_fuzz::CaseResult cr;
  cr.seed = 31337;
  cr.summary = "3 sections, 2 ops";
  cr.digest = "abc123";
  opec_fuzz::Divergence d;
  d.oracle = opec_fuzz::Oracle::kExecDiff;
  d.detail = "cycles differ";
  cr.divergences.push_back(d);

  StateWriter w;
  opec_dist::WriteCaseResult(w, cr);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_fuzz::CaseResult got = opec_dist::ReadCaseResult(r);
  EXPECT_EQ(got.seed, cr.seed);
  EXPECT_EQ(got.summary, cr.summary);
  EXPECT_EQ(got.digest, cr.digest);
  ASSERT_EQ(got.divergences.size(), 1u);
  EXPECT_EQ(got.divergences[0].oracle, opec_fuzz::Oracle::kExecDiff);
  EXPECT_EQ(got.divergences[0].detail, "cycles differ");
}

TEST(DistWire, TruncatedPayloadDecodeIsCheckErrorNotHang) {
  opec_campaign::JobResult jr;
  jr.detail = "some detail text that makes the payload non-trivial";
  StateWriter w;
  opec_dist::WriteJobResult(w, jr);
  std::vector<uint8_t> bytes = w.Take();
  bytes.resize(bytes.size() / 2);  // chop mid-struct

  opec_support::ScopedCheckThrow capture;
  StateReader r(bytes);
  EXPECT_THROW(opec_dist::ReadJobResult(r), opec_support::CheckError);
}

TEST(DistWire, BytecodeArtifactRoundTrip) {
  opec_rt::bytecode::BytecodeModule bc;
  opec_rt::bytecode::Insn i0;
  i0.op = opec_rt::bytecode::Op::kConst;
  i0.a = 1;
  i0.imm = 42;
  opec_rt::bytecode::Insn i1;
  i1.op = opec_rt::bytecode::Op::kMove;
  i1.sub = 3;
  i1.a = 2;
  i1.b = 1;
  i1.stmt = 5;
  i1.imm2 = 0x99;
  i1.charge = 777;
  bc.code = {i0, i1};
  opec_rt::bytecode::BytecodeFunction fn;
  fn.entry = 0;
  fn.nregs = 3;
  bc.funcs = {fn};
  bc.arg_pool = {1, 2, 3};
  bc.messages = {"assert failed", "oob"};
  bc.acct = {{0, 2}, {2, 0}};
  bc.acct_pool = {10, -3};
  bc.max_regs = 3;
  opec_rt::CostModel costs;
  costs.op = 3;
  costs.svc = 50;

  StateWriter w;
  opec_dist::WriteBytecodeArtifact(w, bc, costs);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_rt::bytecode::BytecodeModule got;
  opec_rt::CostModel got_costs;
  ASSERT_TRUE(opec_dist::ReadBytecodeArtifact(r, &got, &got_costs));
  EXPECT_TRUE(got_costs == costs);
  ASSERT_EQ(got.code.size(), 2u);
  EXPECT_EQ(got.code[0].op, opec_rt::bytecode::Op::kConst);
  EXPECT_EQ(got.code[0].imm, 42u);
  EXPECT_EQ(got.code[1].op, opec_rt::bytecode::Op::kMove);
  EXPECT_EQ(got.code[1].sub, 3);
  EXPECT_EQ(got.code[1].a, 2);
  EXPECT_EQ(got.code[1].b, 1);
  EXPECT_EQ(got.code[1].stmt, 5);
  EXPECT_EQ(got.code[1].imm2, 0x99u);
  EXPECT_EQ(got.code[1].charge, 777u);
  ASSERT_EQ(got.funcs.size(), 1u);
  EXPECT_EQ(got.funcs[0].entry, 0u);
  EXPECT_EQ(got.funcs[0].nregs, 3);
  EXPECT_EQ(got.arg_pool, bc.arg_pool);
  EXPECT_EQ(got.messages, bc.messages);
  EXPECT_EQ(got.acct, bc.acct);
  EXPECT_EQ(got.acct_pool, bc.acct_pool);
  EXPECT_EQ(got.max_regs, 3);
}

TEST(DistWire, BytecodeArtifactWithBogusOpcodeRejected) {
  opec_rt::bytecode::BytecodeModule bc;
  opec_rt::bytecode::Insn bad;
  bad.op = static_cast<opec_rt::bytecode::Op>(0xEF);
  bc.code = {bad};
  opec_rt::CostModel costs;
  StateWriter w;
  opec_dist::WriteBytecodeArtifact(w, bc, costs);
  std::vector<uint8_t> bytes = w.Take();
  StateReader r(bytes);
  opec_rt::bytecode::BytecodeModule got;
  opec_rt::CostModel got_costs;
  EXPECT_FALSE(opec_dist::ReadBytecodeArtifact(r, &got, &got_costs));
}

// ---------------------------------------------------------------------------
// Content-addressed artifact cache.

TEST(DistCache, MemoryHitMissAndIdempotentPut) {
  ArtifactCache cache("");
  ASSERT_TRUE(cache.ok());
  std::vector<uint8_t> a = Bytes({1, 2, 3});
  uint64_t da = cache.Put(a);
  EXPECT_EQ(cache.Put(a), da);  // idempotent
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.Get(da, &out));
  EXPECT_EQ(out, a);
  EXPECT_FALSE(cache.Get(da ^ 1, &out));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_TRUE(cache.Contains(da));
  EXPECT_FALSE(cache.Contains(da ^ 1));
}

TEST(DistCache, LruEvictionByBytes) {
  ArtifactCache cache("", /*max_bytes=*/150);
  std::vector<uint8_t> a(100, 0xAA);
  std::vector<uint8_t> b(100, 0xBB);
  uint64_t da = cache.Put(a);
  uint64_t db = cache.Put(b);  // 200 resident > 150: evict LRU (a)
  EXPECT_EQ(cache.stats().evictions, 1u);
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.Get(da, &out));
  EXPECT_TRUE(cache.Get(db, &out));
  EXPECT_LE(cache.resident_bytes(), 150u);
}

TEST(DistCache, DirBackedRoundTripAndSharedVisibility) {
  std::string dir = MakeTempDir();
  std::vector<uint8_t> a = Bytes({9, 8, 7, 6});
  uint64_t da = 0;
  {
    ArtifactCache cache(dir);
    ASSERT_TRUE(cache.ok());
    da = cache.Put(a);
  }
  // A *fresh* cache over the same directory sees the artifact (shared
  // --cache-dir across processes / runs).
  ArtifactCache cache2(dir);
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache2.Get(da, &out));
  EXPECT_EQ(out, a);
  EXPECT_EQ(cache2.stats().hits, 1u);
}

TEST(DistCache, DigestMismatchExpungedAndCounted) {
  std::string dir = MakeTempDir();
  ArtifactCache cache(dir);
  std::vector<uint8_t> a = Bytes({1, 1, 2, 3, 5, 8});
  uint64_t da = cache.Put(a);
  // Corrupt the artifact file on disk behind the cache's back.
  std::string path = dir + "/" + ArtifactCache::DigestFileName(da);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "corrupted";
  }
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.Get(da, &out));  // miss, never the wrong bytes
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cache.stats().digest_mismatches, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The corrupt file was expunged so a re-Put can repopulate.
  std::ifstream gone(path);
  EXPECT_FALSE(gone.good());
  cache.Put(a);
  EXPECT_TRUE(cache.Get(da, &out));
  EXPECT_EQ(out, a);
}

TEST(DistCache, NamedRefsSurviveProcessRestart) {
  std::string dir = MakeTempDir();
  std::vector<uint8_t> a = Bytes({42, 43, 44});
  uint64_t da = 0;
  {
    ArtifactCache cache(dir);
    da = cache.Put(a);
    cache.PutRef("boot/PinLock/opec", da);
  }
  // Fresh cache, same dir: the key still resolves (warm-start across runs).
  ArtifactCache cache2(dir);
  uint64_t got = 0;
  ASSERT_TRUE(cache2.GetRef("boot/PinLock/opec", &got));
  EXPECT_EQ(got, da);
  EXPECT_FALSE(cache2.GetRef("boot/Other/opec", &got));
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache2.Get(da, &out));
  EXPECT_EQ(out, a);
}

TEST(DistCache, UnusableDirDegradesToMemoryWithError) {
  std::string dir = MakeTempDir();
  std::string file = dir + "/plainfile";
  {
    std::ofstream f(file);
    f << "x";
  }
  // A path *under a regular file* can never become a directory.
  ArtifactCache cache(file + "/sub");
  EXPECT_FALSE(cache.ok());
  EXPECT_NE(cache.error().find("artifact cache directory unusable"), std::string::npos);
  // Degrades to memory backing: still usable, never aborts.
  std::vector<uint8_t> a = Bytes({1});
  uint64_t da = cache.Put(a);
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.Get(da, &out));
}

// ---------------------------------------------------------------------------
// Unwritable output directories fail fast with a clear message (never an
// OPEC_CHECK abort). Regression: Executor::Run used to OPEC_CHECK-abort mid-
// campaign when snapshot_dir could not be created.

TEST(DistOutputs, ExecutorSnapshotDirUnwritableThrowsRuntimeError) {
  std::string dir = MakeTempDir();
  std::string file = dir + "/blocker";
  {
    std::ofstream f(file);
    f << "x";
  }
  opec_campaign::CampaignSpec spec;
  spec.seed = 3;
  spec.AddFaultSweep({"PinLock"}, 1);
  opec_campaign::Executor::Options options;
  options.jobs = 1;
  options.snapshot_dir = file + "/snaps";
  EXPECT_THROW(opec_campaign::Executor::Run(spec, options), std::runtime_error);
}

TEST(DistOutputs, ServerSnapshotDirUnwritableFailsServe) {
  std::string dir = MakeTempDir();
  std::string file = dir + "/blocker";
  {
    std::ofstream f(file);
    f << "x";
  }
  opec_campaign::CampaignSpec spec;
  spec.seed = 3;
  spec.AddFaultSweep({"PinLock"}, 1);
  CampaignServer::Options options;
  options.snapshot_dir = file + "/snaps";
  CampaignServer server(spec, options);
  // Regression: a connected worker must be hung up on when Serve bails early,
  // or self-hosted children deadlock against the parent's waitpid.
  auto [server_end, worker_end] = LocalPair();
  server.AddWorker(std::move(server_end));
  std::string worker_error;
  std::thread worker_thread([&, transport = worker_end.get()] {
    worker_error = RunWorker(*transport, WorkerOptions{});
  });
  std::string err = server.Serve();
  worker_thread.join();
  EXPECT_NE(err.find("campaign output directory unusable"), std::string::npos);
  EXPECT_NE(worker_error, "");
}

// ---------------------------------------------------------------------------
// End-to-end distributed sweeps. Workers run in-process threads over
// socketpairs — the same Transport/RunWorker code the forked and TCP modes
// use, minus the process boundary.

opec_campaign::CampaignSpec SmallFaultSweep(size_t count) {
  opec_campaign::CampaignSpec spec;
  spec.seed = 7;
  spec.AddFaultSweep({"PinLock"}, count);
  return spec;
}

struct DistRun {
  opec_campaign::CampaignResult result;
  std::string serve_error;
  std::vector<std::string> worker_errors;
};

DistRun RunDistCampaign(const opec_campaign::CampaignSpec& spec, size_t n_workers,
                        CampaignServer::Options options,
                        std::vector<WorkerOptions> worker_options = {}) {
  DistRun run;
  CampaignServer server(spec, options);
  std::vector<std::unique_ptr<Transport>> worker_ends;
  for (size_t i = 0; i < n_workers; ++i) {
    auto [server_end, worker_end] = LocalPair();
    server.AddWorker(std::move(server_end));
    worker_ends.push_back(std::move(worker_end));
  }
  run.worker_errors.resize(n_workers);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n_workers; ++i) {
    WorkerOptions wo = i < worker_options.size() ? worker_options[i] : WorkerOptions{};
    if (wo.name.empty()) {
      wo.name = "w" + std::to_string(i);
    }
    threads.emplace_back([&run, i, transport = worker_ends[i].get(), wo] {
      run.worker_errors[i] = RunWorker(*transport, wo);
    });
  }
  run.serve_error = server.Serve();
  for (std::thread& t : threads) {
    t.join();
  }
  run.result = server.TakeCampaignResult();
  return run;
}

TEST(DistSweep, MatchesInProcessExecutorAcrossWorkerCounts) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(10);
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  std::string serial = opec_campaign::Executor::Run(spec, serial_options).DeterministicJson();

  for (size_t n : {1u, 2u, 4u}) {
    CampaignServer::Options options;
    options.unit_size = 2;
    DistRun run = RunDistCampaign(spec, n, options);
    ASSERT_EQ(run.serve_error, "") << "workers=" << n;
    for (const std::string& we : run.worker_errors) {
      EXPECT_EQ(we, "");
    }
    EXPECT_EQ(run.result.DeterministicJson(), serial) << "workers=" << n;
    EXPECT_TRUE(run.result.dist.active);
    EXPECT_EQ(run.result.dist.workers, n);
  }
}

TEST(DistSweep, DistBlockInJsonButNotDeterministicJson) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(4);
  CampaignServer::Options options;
  options.unit_size = 2;
  DistRun run = RunDistCampaign(spec, 2, options);
  ASSERT_EQ(run.serve_error, "");
  EXPECT_NE(run.result.Json().find("\"dist\""), std::string::npos);
  EXPECT_EQ(run.result.DeterministicJson().find("\"dist\""), std::string::npos);
}

TEST(DistSweep, WorkerDeathMidSweepReissuesAndReportUnchanged) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(10);
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  std::string serial = opec_campaign::Executor::Run(spec, serial_options).DeterministicJson();

  CampaignServer::Options options;
  options.unit_size = 2;
  std::vector<WorkerOptions> worker_options(2);
  worker_options[0].die_after_jobs = 1;  // dies mid-unit, result never sent
  DistRun run = RunDistCampaign(spec, 2, options, worker_options);
  ASSERT_EQ(run.serve_error, "");
  EXPECT_EQ(run.result.DeterministicJson(), serial);
  EXPECT_GE(run.result.dist.workers_died, 1u);
  EXPECT_GE(run.result.dist.units_reissued, 1u);
}

TEST(DistSweep, LeaseExpiryReissuesToLiveWorker) {
  opec_campaign::CampaignSpec spec = SmallFaultSweep(8);
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  std::string serial = opec_campaign::Executor::Run(spec, serial_options).DeterministicJson();

  CampaignServer::Options options;
  options.unit_size = 2;
  options.lease_ms = 50;
  CampaignServer server(spec, options);

  // Stub worker: takes one unit, then stalls (connected but silent) until
  // shutdown. Its lease must expire and the unit reissue to the real worker.
  auto [stub_server_end, stub_end] = LocalPair();
  server.AddWorker(std::move(stub_server_end));
  auto [real_server_end, real_end] = LocalPair();
  server.AddWorker(std::move(real_server_end));

  // Pre-queue the stub's hello + work request so the server grants it a unit
  // before the real worker has even said hello (stub is poll index 0).
  opec_dist::HelloMsg hello;
  hello.worker_name = "staller";
  ASSERT_EQ(stub_end->Send(MakeFrame(FrameType::kHello,
                                     [&](StateWriter& w) { opec_dist::WriteHello(w, hello); })),
            Transport::Status::kOk);
  ASSERT_EQ(stub_end->Send(MakeFrame(FrameType::kRequestWork)), Transport::Status::kOk);

  bool stub_got_assign = false;
  std::thread stub([&, transport = stub_end.get()] {
    Frame f;
    while (transport->Recv(&f) == Transport::Status::kOk) {
      if (f.type == FrameType::kAssign) {
        stub_got_assign = true;  // stall: never report the result
      }
      if (f.type == FrameType::kShutdown) {
        break;
      }
    }
    transport->Close();  // let the server's drain phase see EOF promptly
  });
  std::string real_error;
  std::thread real([&, transport = real_end.get()] {
    WorkerOptions wo;
    wo.name = "real";
    real_error = RunWorker(*transport, wo);
  });

  std::string err = server.Serve();
  stub.join();
  real.join();
  ASSERT_EQ(err, "");
  EXPECT_EQ(real_error, "");
  EXPECT_TRUE(stub_got_assign);
  EXPECT_GE(server.dist_stats().leases_expired, 1u);
  EXPECT_EQ(server.TakeCampaignResult().DeterministicJson(), serial);
}

TEST(DistSweep, FuzzSweepMatchesSerialRunCase) {
  constexpr uint64_t kBase = 1000;
  constexpr uint64_t kCount = 6;
  CampaignServer::Options options;
  options.unit_size = 2;
  CampaignServer server(kBase, kCount, options);

  std::vector<std::unique_ptr<Transport>> ends;
  for (int i = 0; i < 2; ++i) {
    auto [server_end, worker_end] = LocalPair();
    server.AddWorker(std::move(server_end));
    ends.push_back(std::move(worker_end));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([transport = ends[static_cast<size_t>(i)].get()] {
      WorkerOptions wo;
      RunWorker(*transport, wo);
    });
  }
  std::string err = server.Serve();
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_EQ(err, "");

  std::vector<opec_fuzz::CaseResult> dist_results = server.TakeFuzzResults();
  ASSERT_EQ(dist_results.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    opec_fuzz::CaseResult serial = opec_fuzz::RunCase(kBase + i);
    EXPECT_EQ(dist_results[i].seed, serial.seed);
    EXPECT_EQ(dist_results[i].digest, serial.digest);
    EXPECT_EQ(dist_results[i].summary, serial.summary);
    EXPECT_EQ(dist_results[i].divergences.size(), serial.divergences.size());
  }
}

TEST(DistSweep, SharedCacheDirGivesArtifactHitsOnSecondRunSameReport) {
  std::string cache_dir = MakeTempDir();
  // Scenario jobs on both engines so boot snapshots *and* bytecode modules
  // flow through the cache.
  opec_campaign::CampaignSpec spec;
  spec.seed = 11;
  for (int engine = 0; engine < 2; ++engine) {
    for (int i = 0; i < 2; ++i) {
      opec_campaign::JobSpec job;
      job.kind = opec_campaign::JobKind::kScenario;
      job.app = "PinLock";
      job.mode = opec_apps::BuildMode::kOpec;
      job.engine = engine == 0 ? opec_apps::EngineKind::kInterp
                               : opec_apps::EngineKind::kBytecode;
      spec.jobs.push_back(job);
    }
  }

  CampaignServer::Options options;
  options.unit_size = 1;
  std::vector<WorkerOptions> worker_options(1);
  worker_options[0].cache_dir = cache_dir;

  DistRun cold = RunDistCampaign(spec, 1, options, worker_options);
  ASSERT_EQ(cold.serve_error, "");
  // Fresh server + fresh worker over the same cache dir: the worker resolves
  // boot/bcmod artifacts from named refs and adopts instead of rebuilding.
  DistRun warm = RunDistCampaign(spec, 1, options, worker_options);
  ASSERT_EQ(warm.serve_error, "");
  EXPECT_GT(warm.result.dist.artifact_hits, 0u);
  EXPECT_EQ(warm.result.DeterministicJson(), cold.result.DeterministicJson());

  // And both match the in-process executor (warm pool, cold boot — all the
  // same modeled outputs).
  opec_campaign::Executor::Options serial_options;
  serial_options.jobs = 1;
  EXPECT_EQ(cold.result.DeterministicJson(),
            opec_campaign::Executor::Run(spec, serial_options).DeterministicJson());
}

}  // namespace
