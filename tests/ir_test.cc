// Unit tests for the IR substrate: type system, module containers, builder.

#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/module.h"
#include "src/ir/printer.h"

namespace opec_ir {
namespace {

TEST(TypeTable, PrimitiveSizes) {
  TypeTable tt;
  EXPECT_EQ(tt.U8()->size(), 1u);
  EXPECT_EQ(tt.U16()->size(), 2u);
  EXPECT_EQ(tt.U32()->size(), 4u);
  EXPECT_EQ(tt.I32()->size(), 4u);
  EXPECT_TRUE(tt.I32()->is_signed());
  EXPECT_FALSE(tt.U32()->is_signed());
  EXPECT_EQ(tt.VoidTy()->size(), 0u);
}

TEST(TypeTable, InterningMakesEqualTypesIdentical) {
  TypeTable tt;
  EXPECT_EQ(tt.IntTy(32, false), tt.U32());
  EXPECT_EQ(tt.PointerTo(tt.U8()), tt.PointerTo(tt.U8()));
  EXPECT_EQ(tt.ArrayOf(tt.U32(), 7), tt.ArrayOf(tt.U32(), 7));
  EXPECT_NE(tt.ArrayOf(tt.U32(), 7), tt.ArrayOf(tt.U32(), 8));
  EXPECT_EQ(tt.FunctionTy(tt.VoidTy(), {tt.U32()}), tt.FunctionTy(tt.VoidTy(), {tt.U32()}));
}

TEST(TypeTable, PointerSizeIs4) {
  TypeTable tt;
  EXPECT_EQ(tt.PointerTo(tt.U8())->size(), 4u);
  EXPECT_EQ(tt.PointerTo(tt.ArrayOf(tt.U32(), 100))->size(), 4u);
}

TEST(TypeTable, StructLayoutUsesNaturalAlignment) {
  TypeTable tt;
  const Type* s = tt.StructTy("Mixed", {{"a", tt.U8(), 0}, {"b", tt.U32(), 0},
                                        {"c", tt.U16(), 0}});
  EXPECT_EQ(s->fields()[0].offset, 0u);
  EXPECT_EQ(s->fields()[1].offset, 4u);  // padded past the u8
  EXPECT_EQ(s->fields()[2].offset, 8u);
  EXPECT_EQ(s->size(), 12u);  // padded to 4-byte alignment
  EXPECT_EQ(s->alignment(), 4u);
}

TEST(TypeTable, StructsAreNominal) {
  TypeTable tt;
  const Type* a = tt.StructTy("A", {{"x", tt.U32(), 0}});
  const Type* b = tt.StructTy("B", {{"x", tt.U32(), 0}});
  EXPECT_NE(a, b);
  EXPECT_EQ(tt.FindStruct("A"), a);
  EXPECT_EQ(tt.FindStruct("missing"), nullptr);
}

TEST(TypeTable, FieldIndexLookup) {
  TypeTable tt;
  const Type* s = tt.StructTy("P", {{"x", tt.U32(), 0}, {"y", tt.U32(), 0}});
  EXPECT_EQ(s->FieldIndex("x"), 0);
  EXPECT_EQ(s->FieldIndex("y"), 1);
  EXPECT_EQ(s->FieldIndex("z"), -1);
}

TEST(Module, GlobalAndFunctionLookup) {
  Module m("t");
  auto* g = m.AddGlobal("g", m.types().U32());
  EXPECT_EQ(m.FindGlobal("g"), g);
  EXPECT_EQ(m.FindGlobal("h"), nullptr);
  auto* f = m.AddFunction("f", m.types().FunctionTy(m.types().VoidTy(), {}), {});
  EXPECT_EQ(m.FindFunction("f"), f);
  EXPECT_EQ(m.FindFunction("g"), nullptr);
}

TEST(Module, ConstGlobalsKeepInitialData) {
  Module m("t");
  auto* g = m.AddGlobal("msg", m.types().ArrayOf(m.types().U8(), 4), /*is_const=*/true);
  g->set_initial_data({'a', 'b', 'c', 'd'});
  EXPECT_TRUE(g->is_const());
  EXPECT_EQ(g->initial_data().size(), 4u);
}

TEST(Builder, OperatorsProduceTypedTrees) {
  Module m("t");
  auto* f = m.AddFunction("f", m.types().FunctionTy(m.types().U32(), {}), {});
  FunctionBuilder b(m, f);
  Val x = b.Local("x", m.types().U32());
  Val e = (x + b.U32(1)) * b.U32(2);
  EXPECT_EQ(e.type(), m.types().U32());
  EXPECT_EQ(e.expr->kind, ExprKind::kBinary);
  b.Ret(e);
  b.Finish();
  EXPECT_EQ(f->body().size(), 1u);
}

TEST(Builder, ControlFlowScopesNest) {
  Module m("t");
  auto* f = m.AddFunction("f", m.types().FunctionTy(m.types().U32(), {m.types().U32()}), {"n"});
  FunctionBuilder b(m, f);
  Val acc = b.Local("acc", m.types().U32());
  Val i = b.Local("i", m.types().U32());
  b.Assign(acc, b.U32(0));
  b.Assign(i, b.U32(0));
  b.While(i < b.L("n"));
  {
    b.If((i % b.U32(2)) == b.U32(0));
    b.Assign(acc, acc + i);
    b.Else();
    b.Assign(acc, acc + b.U32(1));
    b.End();
    b.Assign(i, i + b.U32(1));
  }
  b.End();
  b.Ret(acc);
  b.Finish();
  ASSERT_EQ(f->body().size(), 4u);
  EXPECT_EQ(f->body()[2]->kind, StmtKind::kWhile);
  EXPECT_EQ(f->body()[2]->body[0]->kind, StmtKind::kIf);
}

TEST(Builder, ImplicitIntConversionsOnAssign) {
  Module m("t");
  m.AddGlobal("b8", m.types().U8());
  auto* f = m.AddFunction("f", m.types().FunctionTy(m.types().VoidTy(), {}), {});
  FunctionBuilder b(m, f);
  b.Assign(b.G("b8"), b.U32(0x1FF));  // truncating store is legal
  b.RetVoid();
  b.Finish();
  const Stmt& s = *f->body()[0];
  EXPECT_EQ(s.expr->kind, ExprKind::kCast);
}

TEST(Builder, MmioIsDerefOfConstantCast) {
  Module m("t");
  auto* f = m.AddFunction("f", m.types().FunctionTy(m.types().VoidTy(), {}), {});
  FunctionBuilder b(m, f);
  Val reg = b.Mmio32(0x40011000);
  EXPECT_EQ(reg.expr->kind, ExprKind::kDeref);
  EXPECT_EQ(reg.expr->operands[0]->kind, ExprKind::kCast);
  EXPECT_EQ(reg.expr->operands[0]->operands[0]->kind, ExprKind::kIntConst);
  b.RetVoid();
  b.Finish();
}

TEST(Builder, FieldAndIndexLvalues) {
  Module m("t");
  const Type* s = m.types().StructTy("S", {{"a", m.types().U32(), 0},
                                           {"buf", m.types().ArrayOf(m.types().U8(), 8), 0}});
  m.AddGlobal("gs", s);
  auto* f = m.AddFunction("f", m.types().FunctionTy(m.types().VoidTy(), {}), {});
  FunctionBuilder b(m, f);
  b.Assign(b.Fld(b.G("gs"), "a"), b.U32(5));
  b.Assign(b.Idx(b.Fld(b.G("gs"), "buf"), 3u), b.U8(9));
  b.RetVoid();
  b.Finish();
  EXPECT_TRUE(f->body()[0]->lhs->IsLvalue());
  EXPECT_TRUE(f->body()[1]->lhs->IsLvalue());
}

TEST(Printer, RendersFunctions) {
  Module m("t");
  m.AddGlobal("counter", m.types().U32());
  auto* f = m.AddFunction("bump", m.types().FunctionTy(m.types().VoidTy(), {}), {});
  FunctionBuilder b(m, f);
  b.Assign(b.G("counter"), b.G("counter") + b.U32(1));
  b.RetVoid();
  b.Finish();
  std::string text = PrintModule(m);
  EXPECT_NE(text.find("@counter"), std::string::npos);
  EXPECT_NE(text.find("bump"), std::string::npos);
  EXPECT_NE(text.find("(@counter + 1)"), std::string::npos);
}

TEST(Expr, LvalueClassification) {
  Module m("t");
  m.AddGlobal("g", m.types().U32());
  auto* f = m.AddFunction("f", m.types().FunctionTy(m.types().VoidTy(), {}), {});
  FunctionBuilder b(m, f);
  EXPECT_TRUE(b.G("g").expr->IsLvalue());
  EXPECT_FALSE(b.U32(5).expr->IsLvalue());
  EXPECT_FALSE((b.G("g") + b.U32(1)).expr->IsLvalue());
  EXPECT_FALSE(b.Addr(b.G("g")).expr->IsLvalue());
  EXPECT_TRUE(b.Deref(b.Addr(b.G("g"))).expr->IsLvalue());
  b.RetVoid();
  b.Finish();
}

}  // namespace
}  // namespace opec_ir
