// Static-analysis tests: Andersen points-to, call-graph construction with
// icall resolution, and resource-dependency summaries.

#include <gtest/gtest.h>

#include "src/analysis/call_graph.h"
#include "src/analysis/points_to.h"
#include "src/analysis/resource_analysis.h"
#include "src/hw/address_map.h"
#include "src/ir/builder.h"

#include <random>

namespace opec_analysis {
namespace {

using opec_ir::FunctionBuilder;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

TEST(PointsTo, AddressOfGlobalFlowsThroughLocals) {
  Module m("t");
  auto& tt = m.types();
  m.AddGlobal("g", tt.U32());
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(m, fn);
  Val p = b.Local("p", tt.PointerTo(tt.U32()));
  Val q = b.Local("q", tt.PointerTo(tt.U32()));
  b.Assign(p, b.Addr(b.G("g")));
  b.Assign(q, p);
  b.Ret(b.Deref(q));
  b.Finish();

  PointsToAnalysis pta(m);
  pta.Run();
  // The deref site's pointer operand must point to g.
  const opec_ir::Stmt& ret = *fn->body()[2];
  const opec_ir::Expr* deref_ptr = ret.expr->operands[0].get();
  auto globals = pta.PointeeGlobals(deref_ptr);
  ASSERT_EQ(globals.size(), 1u);
  EXPECT_EQ((*globals.begin())->name(), "g");
}

TEST(PointsTo, StoreThroughPointerPropagates) {
  // *pp = &g; then p2 = *pp; deref(p2) -> g.
  Module m("t");
  auto& tt = m.types();
  m.AddGlobal("g", tt.U32());
  const Type* pu32 = tt.PointerTo(tt.U32());
  m.AddGlobal("slot", pu32);
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(m, fn);
  Val pp = b.Local("pp", tt.PointerTo(pu32));
  b.Assign(pp, b.Addr(b.G("slot")));
  b.Assign(b.Deref(pp), b.Addr(b.G("g")));
  Val p2 = b.Local("p2", pu32);
  b.Assign(p2, b.G("slot"));
  b.Ret(b.Deref(p2));
  b.Finish();

  PointsToAnalysis pta(m);
  pta.Run();
  const opec_ir::Stmt& ret = *fn->body()[3];
  auto globals = pta.PointeeGlobals(ret.expr->operands[0].get());
  ASSERT_EQ(globals.size(), 1u);
  EXPECT_EQ((*globals.begin())->name(), "g");
}

TEST(PointsTo, ParameterPassingIsInterprocedural) {
  Module m("t");
  auto& tt = m.types();
  m.AddGlobal("buf", tt.ArrayOf(tt.U8(), 16));
  const Type* pu8 = tt.PointerTo(tt.U8());
  auto* callee = m.AddFunction("writer", tt.FunctionTy(tt.VoidTy(), {pu8}), {"p"});
  {
    FunctionBuilder b(m, callee);
    b.Assign(b.Idx(b.L("p"), 0u), b.U8(1));
    b.RetVoid();
    b.Finish();
  }
  auto* caller = m.AddFunction("caller", tt.FunctionTy(tt.VoidTy(), {}), {});
  {
    FunctionBuilder b(m, caller);
    b.Call("writer", {b.Addr(b.Idx(b.G("buf"), 0u))});
    b.RetVoid();
    b.Finish();
  }
  PointsToAnalysis pta(m);
  opec_hw::SocDescription soc;
  auto resources = ResourceAnalysis::Run(m, pta, soc);
  // The callee writes buf *indirectly* through its parameter.
  EXPECT_EQ(resources[callee].writes.count(m.FindGlobal("buf")), 1u);
}

TEST(PointsTo, ConstantAddressesBecomeMemConstTargets) {
  Module m("t");
  auto& tt = m.types();
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.VoidTy(), {}), {});
  FunctionBuilder b(m, fn);
  b.Assign(b.Mmio32(0x40011000), b.U32(1));
  b.RetVoid();
  b.Finish();
  PointsToAnalysis pta(m);
  pta.Run();
  const opec_ir::Stmt& s = *fn->body()[0];
  auto addrs = pta.PointeeConstAddrs(s.lhs->operands[0].get());
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(*addrs.begin(), 0x40011000u);
}

TEST(CallGraph, DirectEdges) {
  Module m("t");
  auto& tt = m.types();
  auto* leaf = m.AddFunction("leaf", tt.FunctionTy(tt.VoidTy(), {}), {});
  {
    FunctionBuilder b(m, leaf);
    b.RetVoid();
    b.Finish();
  }
  auto* mid = m.AddFunction("mid", tt.FunctionTy(tt.VoidTy(), {}), {});
  {
    FunctionBuilder b(m, mid);
    b.Call("leaf");
    b.RetVoid();
    b.Finish();
  }
  auto* root = m.AddFunction("root", tt.FunctionTy(tt.VoidTy(), {}), {});
  {
    FunctionBuilder b(m, root);
    b.Call("mid");
    b.RetVoid();
    b.Finish();
  }
  PointsToAnalysis pta(m);
  CallGraph cg = CallGraph::Build(m, pta);
  EXPECT_EQ(cg.Callees(root).count(mid), 1u);
  EXPECT_EQ(cg.Callees(mid).count(leaf), 1u);
  EXPECT_EQ(cg.Callees(root).count(leaf), 0u);
}

TEST(CallGraph, ReachableBacktracksAtOtherEntries) {
  // root -> a -> entry2 -> b: the operation rooted at root includes a but
  // stops at entry2 (Section 4.3).
  Module m("t");
  auto& tt = m.types();
  auto add_fn = [&](const std::string& name, const std::string& callee) {
    auto* fn = m.AddFunction(name, tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(m, fn);
    if (!callee.empty()) {
      b.Call(callee);
    }
    b.RetVoid();
    b.Finish();
    return fn;
  };
  auto* b_fn = add_fn("b", "");
  auto* entry2 = add_fn("entry2", "b");
  auto* a = add_fn("a", "entry2");
  auto* root = add_fn("root", "a");
  PointsToAnalysis pta(m);
  CallGraph cg = CallGraph::Build(m, pta);

  auto members = cg.Reachable(root, {entry2});
  EXPECT_EQ(members.count(root), 1u);
  EXPECT_EQ(members.count(a), 1u);
  EXPECT_EQ(members.count(entry2), 0u);
  EXPECT_EQ(members.count(b_fn), 0u);
  // entry2's own operation includes b.
  auto members2 = cg.Reachable(entry2, {entry2});
  EXPECT_EQ(members2.count(entry2), 1u);
  EXPECT_EQ(members2.count(b_fn), 1u);
}

TEST(CallGraph, ICallResolvedByPointsTo) {
  Module m("t");
  auto& tt = m.types();
  const Type* sig = tt.FunctionTy(tt.U32(), {tt.U32()});
  m.AddGlobal("fp", tt.PointerTo(sig));
  auto* target = m.AddFunction("target", sig, {"x"});
  {
    FunctionBuilder b(m, target);
    b.Ret(b.L("x"));
    b.Finish();
  }
  // A decoy with the same type but never address-taken: must NOT appear.
  auto* decoy = m.AddFunction("decoy", sig, {"x"});
  {
    FunctionBuilder b(m, decoy);
    b.Ret(b.L("x"));
    b.Finish();
  }
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.U32(), {}), {});
  {
    FunctionBuilder b(m, fn);
    b.Assign(b.G("fp"), b.FnPtr("target"));
    b.Ret(b.ICallV(sig, b.G("fp"), {b.U32(1)}));
    b.Finish();
  }
  PointsToAnalysis pta(m);
  CallGraph cg = CallGraph::Build(m, pta);
  ICallStats stats = cg.Stats();
  EXPECT_EQ(stats.num_icalls, 1);
  EXPECT_EQ(stats.resolved_by_pta, 1);
  EXPECT_EQ(stats.resolved_by_type, 0);
  EXPECT_EQ(cg.Callees(fn).count(target), 1u);
  EXPECT_EQ(cg.Callees(fn).count(decoy), 0u);
}

TEST(CallGraph, UnresolvedICallFallsBackToTypeMatching) {
  Module m("t");
  auto& tt = m.types();
  const Type* sig = tt.FunctionTy(tt.VoidTy(), {tt.U32()});
  m.AddGlobal("fp", tt.PointerTo(sig));  // never assigned
  auto* match1 = m.AddFunction("match1", sig, {"x"});
  {
    FunctionBuilder b(m, match1);
    b.RetVoid();
    b.Finish();
  }
  auto* match2 = m.AddFunction("match2", sig, {"x"});
  {
    FunctionBuilder b(m, match2);
    b.RetVoid();
    b.Finish();
  }
  // Different pointer param type: excluded by the paper's rule.
  auto* other = m.AddFunction("other", tt.FunctionTy(tt.VoidTy(), {tt.PointerTo(tt.U8())}),
                              {"p"});
  {
    FunctionBuilder b(m, other);
    b.RetVoid();
    b.Finish();
  }
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.VoidTy(), {}), {});
  {
    FunctionBuilder b(m, fn);
    b.ICall(sig, b.G("fp"), {b.U32(1)});
    b.RetVoid();
    b.Finish();
  }
  PointsToAnalysis pta(m);
  CallGraph cg = CallGraph::Build(m, pta);
  ICallStats stats = cg.Stats();
  EXPECT_EQ(stats.resolved_by_pta, 0);
  EXPECT_EQ(stats.resolved_by_type, 1);
  EXPECT_EQ(cg.Callees(fn).count(match1), 1u);
  EXPECT_EQ(cg.Callees(fn).count(match2), 1u);
  EXPECT_EQ(cg.Callees(fn).count(other), 0u);
  EXPECT_EQ(stats.max_targets, 2);
}

TEST(TypeCompat, IntWidthsMatchButPointersMustBeExact) {
  Module m("t");
  auto& tt = m.types();
  const Type* a = tt.FunctionTy(tt.U32(), {tt.U8(), tt.PointerTo(tt.U32())});
  const Type* b = tt.FunctionTy(tt.I32(), {tt.U32(), tt.PointerTo(tt.U32())});
  const Type* c = tt.FunctionTy(tt.U32(), {tt.U8(), tt.PointerTo(tt.U8())});
  EXPECT_TRUE(TypesCompatibleForICall(a, b));   // int widths are flexible
  EXPECT_FALSE(TypesCompatibleForICall(a, c));  // pointer types are not
  const Type* d = tt.FunctionTy(tt.U32(), {tt.U8()});
  EXPECT_FALSE(TypesCompatibleForICall(a, d));  // arity differs
}

TEST(Resources, DirectReadsAndWrites) {
  Module m("t");
  auto& tt = m.types();
  m.AddGlobal("in", tt.U32());
  m.AddGlobal("out", tt.U32());
  m.AddGlobal("untouched", tt.U32());
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.VoidTy(), {}), {});
  FunctionBuilder b(m, fn);
  b.Assign(b.G("out"), b.G("in") + b.U32(1));
  b.RetVoid();
  b.Finish();
  PointsToAnalysis pta(m);
  opec_hw::SocDescription soc;
  auto resources = ResourceAnalysis::Run(m, pta, soc);
  EXPECT_EQ(resources[fn].reads.count(m.FindGlobal("in")), 1u);
  EXPECT_EQ(resources[fn].writes.count(m.FindGlobal("out")), 1u);
  EXPECT_EQ(resources[fn].AllGlobals().count(m.FindGlobal("untouched")), 0u);
}

TEST(Resources, PeripheralDetectionSplitsCoreAndGeneral) {
  Module m("t");
  auto& tt = m.types();
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.VoidTy(), {}), {});
  FunctionBuilder b(m, fn);
  b.Assign(b.Mmio32(opec_hw::kUsart2Base + 4), b.U32('x'));
  Val t = b.Local("t", tt.U32());
  b.Assign(t, b.Mmio32(opec_hw::kDwtCyccnt));
  b.RetVoid();
  b.Finish();
  PointsToAnalysis pta(m);
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"USART2", opec_hw::kUsart2Base, 0x400, false});
  auto resources = ResourceAnalysis::Run(m, pta, soc);
  EXPECT_EQ(resources[fn].peripherals.count("USART2"), 1u);
  EXPECT_EQ(resources[fn].core_peripherals.count("DWT"), 1u);
  EXPECT_EQ(resources[fn].peripherals.count("DWT"), 0u);
}

TEST(Resources, StructFieldAccessCollapsesToVariable) {
  Module m("t");
  auto& tt = m.types();
  const Type* s = tt.StructTy("H", {{"a", tt.U32(), 0}, {"b", tt.U32(), 0}});
  m.AddGlobal("handle", s);
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(m, fn);
  b.Ret(b.Fld(b.G("handle"), "b"));
  b.Finish();
  PointsToAnalysis pta(m);
  opec_hw::SocDescription soc;
  auto resources = ResourceAnalysis::Run(m, pta, soc);
  EXPECT_EQ(resources[fn].reads.count(m.FindGlobal("handle")), 1u);
}

// --- Differential tests: worklist vs exhaustive solver ---

TEST(PointsTo, WorklistMatchesExhaustiveOnRandomGraphs) {
  // Random base/copy/load/store constraint graphs over synthetic nodes,
  // solved by both strategies; the resulting points-to sets must be
  // identical node-for-node. Fixed seeds keep the test deterministic
  // (std::mt19937's sequence is pinned by the standard).
  for (uint32_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    std::mt19937 rng(seed);
    Module m("diff");  // empty module: constraints are injected directly
    PointsToAnalysis worklist(m, SolverMode::kWorklist);
    PointsToAnalysis exhaustive(m, SolverMode::kExhaustive);
    ASSERT_EQ(worklist.solver_mode(), SolverMode::kWorklist);
    ASSERT_EQ(exhaustive.solver_mode(), SolverMode::kExhaustive);
    const int n = 64;
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(worklist.InjectNode(), i);
      ASSERT_EQ(exhaustive.InjectNode(), i);
    }
    std::uniform_int_distribution<int> pick(0, n - 1);
    auto both = [&](void (PointsToAnalysis::*add)(int, int)) {
      int a = pick(rng);
      int b = pick(rng);
      (worklist.*add)(a, b);
      (exhaustive.*add)(a, b);
    };
    for (int i = 0; i < 48; ++i) {
      both(&PointsToAnalysis::InjectBase);
    }
    for (int i = 0; i < 96; ++i) {
      both(&PointsToAnalysis::InjectCopy);
    }
    for (int i = 0; i < 40; ++i) {
      both(&PointsToAnalysis::InjectLoad);
    }
    for (int i = 0; i < 40; ++i) {
      both(&PointsToAnalysis::InjectStore);
    }
    worklist.SolveInjected();
    exhaustive.SolveInjected();
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(worklist.PointsToSetOf(i), exhaustive.PointsToSetOf(i))
          << "solver divergence at seed " << seed << ", node " << i;
    }
  }
}

TEST(PointsTo, WorklistMatchesExhaustiveOnModuleWithICalls) {
  // A module exercising the on-the-fly icall wiring: a function-pointer
  // global holding two address-taken targets, called indirectly. Both
  // solvers must resolve the identical target set and pointee sets.
  Module m("t");
  auto& tt = m.types();
  const Type* sig = tt.FunctionTy(tt.U32(), {tt.U32()});
  m.AddGlobal("fp", tt.PointerTo(sig));
  m.AddGlobal("g", tt.U32());
  for (const char* name : {"t1", "t2"}) {
    auto* target = m.AddFunction(name, sig, {"x"});
    FunctionBuilder b(m, target);
    b.Ret(b.L("x"));
    b.Finish();
  }
  auto* fn = m.AddFunction("f", tt.FunctionTy(tt.U32(), {}), {});
  {
    FunctionBuilder b(m, fn);
    b.Assign(b.G("fp"), b.FnPtr("t1"));
    b.If(b.G("g"));
    b.Assign(b.G("fp"), b.FnPtr("t2"));
    b.End();
    b.Ret(b.ICallV(sig, b.G("fp"), {b.U32(1)}));
    b.Finish();
  }
  const opec_ir::Stmt& ret = *fn->body().back();
  const opec_ir::Expr* icall = ret.expr.get();

  PointsToAnalysis worklist(m, SolverMode::kWorklist);
  PointsToAnalysis exhaustive(m, SolverMode::kExhaustive);
  worklist.Run();
  exhaustive.Run();
  auto wl_targets = worklist.ICallTargets(icall);
  auto ex_targets = exhaustive.ICallTargets(icall);
  EXPECT_EQ(wl_targets, ex_targets);
  EXPECT_EQ(wl_targets.size(), 2u);
  // The fnptr operand's pointee sets must also agree.
  const opec_ir::Expr* fp_operand = icall->operands[0].get();
  EXPECT_EQ(worklist.PointeeGlobals(fp_operand), exhaustive.PointeeGlobals(fp_operand));
  EXPECT_EQ(worklist.PointeeConstAddrs(fp_operand), exhaustive.PointeeConstAddrs(fp_operand));
  EXPECT_EQ(worklist.MayPointToLocal(fp_operand), exhaustive.MayPointToLocal(fp_operand));
}

}  // namespace
}  // namespace opec_analysis
