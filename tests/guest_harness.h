// Test helper: builds a machine + vanilla image around a hand-written guest
// module and runs it.

#ifndef TESTS_GUEST_HARNESS_H_
#define TESTS_GUEST_HARNESS_H_

#include <memory>

#include "src/compiler/image.h"
#include "src/hw/machine.h"
#include "src/ir/builder.h"
#include "src/obs/event.h"
#include "src/rt/engine.h"
#include "src/rt/trace.h"

namespace opec_test {

class GuestHarness {
 public:
  explicit GuestHarness(opec_hw::Board board = opec_hw::Board::kStm32F4Discovery)
      : module_("test"), machine_(board) {}

  opec_ir::Module& module() { return module_; }
  opec_hw::Machine& machine() { return machine_; }

  // Builds the vanilla image and runs `entry`. Call after authoring the module.
  opec_rt::RunResult Run(const std::string& entry = "main",
                         const std::vector<uint32_t>& args = {},
                         opec_rt::Supervisor* supervisor = nullptr) {
    image_ = opec_compiler::BuildVanillaImage(module_, machine_.board().board);
    opec_compiler::LoadGlobals(machine_, module_, image_.layout);
    engine_ = std::make_unique<opec_rt::ExecutionEngine>(machine_, module_, image_.layout,
                                                         supervisor);
    if (trace_ != nullptr) {
      trace_->Bind(&module_);
    }
    opec_obs::ScopedSink trace_sink(trace_);  // no-op when no trace is set
    return engine_->Run(entry, args);
  }

  void set_trace(opec_rt::ExecutionTrace* trace) { trace_ = trace; }

  opec_rt::ExecutionEngine& engine() { return *engine_; }
  const opec_rt::AddressAssignment& layout() const { return image_.layout; }

  // Reads a u32 global's current value from guest memory.
  uint32_t ReadGlobal(const std::string& name) {
    const opec_ir::GlobalVariable* gv = module_.FindGlobal(name);
    uint32_t value = 0;
    machine_.bus().DebugRead(image_.layout.AddrOf(gv), gv->size() > 4 ? 4 : gv->size(), &value);
    return value;
  }

 private:
  opec_ir::Module module_;
  opec_hw::Machine machine_;
  opec_compiler::VanillaImage image_;
  std::unique_ptr<opec_rt::ExecutionEngine> engine_;
  opec_rt::ExecutionTrace* trace_ = nullptr;
};

}  // namespace opec_test

#endif  // TESTS_GUEST_HARNESS_H_
