// campaign: the parallel campaign-execution CLI (DESIGN.md Section 11).
//
// Runs a matrix of isolated scenario and/or fault-injection jobs on the
// work-stealing pool and prints a deterministic report: modeled outputs and
// the aggregated JSON are bit-identical across --jobs values; only the wall
// clock changes.
//
// Usage:
//   campaign [--spec FILE] [--apps a,b|all] [--modes opec|vanilla|both]
//            [--engine interp|bytecode] [--fault-sweep N] [--fault-class CLASS]
//            [--figures] [--jobs N] [--seed S] [--timeout-ms T]
//            [--report-json FILE] [--deterministic] [--trace-dir DIR]
//            [--snapshot-dir DIR] [--cold-boot]
//
//   --engine        execution tier for every job (default interp); modeled
//                   outputs are bit-identical across tiers, so
//                   --deterministic reports compare byte-equal between
//                   `--engine interp` and `--engine bytecode` campaigns
//   --spec FILE     line-oriented campaign spec (see CampaignSpec::ParseFile)
//   --apps/--modes  scenario matrix (default: all apps, both modes) used when
//                   no --spec/--fault-sweep is given; also the app pool for
//                   --fault-sweep
//   --fault-sweep N N fault-injection jobs round-robined over the app pool
//   --fault-class   stack-bit-flip | shadow-bit-flip | svc-arg | icall-forge |
//                   any (default)
//   --figures       instead of a job campaign, regenerate Figures 9, 10 and
//                   11 through the shared generators, fanned out over --jobs;
//                   output is bit-identical to the standalone drivers
//   --report-json   write the full report (with timing); with --deterministic
//                   write the timing-free report (byte-identical across
//                   thread counts)
//   --trace-dir     write a per-job Chrome trace into DIR
//   --snapshot-dir  diverging jobs dump final-state snapshots (and per-fault
//                   machine-state dumps) into DIR; also records a
//                   snapshot_digest per diverging job in the JSON report
//   --cold-boot     rebuild every job from scratch instead of forking from
//                   the per-worker post-boot snapshot (warm start, the
//                   default); results are bit-identical either way
//
// Exit status: 0 when every job succeeded (AllOk), 1 otherwise.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/figures_lib.h"
#include "src/apps/all_apps.h"
#include "src/campaign/campaign.h"
#include "src/rv/monitors.h"
#include "src/traffic/traffic.h"

namespace {

using opec_campaign::CampaignResult;
using opec_campaign::CampaignSpec;
using opec_campaign::Executor;
using opec_campaign::FaultClass;
using opec_campaign::Outcome;

int Usage() {
  std::fprintf(
      stderr,
      "usage: campaign [--spec FILE] [--apps a,b|all] [--modes opec|vanilla|both]\n"
      "                [--engine interp|bytecode] [--rv on|off|report]\n"
      "                [--fault-sweep N] [--fault-class CLASS] [--figures]\n"
      "                [--jobs N] [--seed S] [--timeout-ms T]\n"
      "                [--report-json FILE] [--deterministic] [--trace-dir DIR]\n"
      "                [--snapshot-dir DIR] [--cold-boot]\n"
      "                [--traffic rate=N,conns=M,seed=S[,requests=R,...]]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Full-string numeric parse: rejects empty strings, trailing junk, negative
// values and overflow, unlike bare atoi/strtoull (atoi silently yields 0 on
// "abc", which used to make `--jobs abc` fall through to the `jobs < 1`
// branch with no hint at the cause, and `--seed 12x` silently truncated).
bool ParseU64Flag(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || std::strchr(s, '-') != nullptr) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseFaultClass(const std::string& s, FaultClass* out) {
  if (s == "any") {
    *out = FaultClass::kAny;
  } else if (s == "stack-bit-flip") {
    *out = FaultClass::kStackBitFlip;
  } else if (s == "shadow-bit-flip") {
    *out = FaultClass::kShadowBitFlip;
  } else if (s == "svc-arg") {
    *out = FaultClass::kSvcArgCorrupt;
  } else if (s == "icall-forge") {
    *out = FaultClass::kIcallForge;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string apps_arg = "all";
  std::string modes_arg = "both";
  opec_apps::EngineKind engine = opec_apps::EngineKind::kInterp;
  std::string rv_arg = "on";
  size_t fault_sweep = 0;
  FaultClass fault_class = FaultClass::kAny;
  bool figures = false;
  int jobs = 1;
  uint64_t seed = 1;
  uint64_t timeout_ms = 0;
  std::string report_path;
  bool deterministic = false;
  std::string trace_dir;
  std::string snapshot_dir;
  bool cold_boot = false;

  for (int i = 1; i < argc; ++i) {
    // Flags accept both `--flag value` and `--flag=value`.
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    bool has_value = eq != std::string::npos;
    if (has_value) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto next = [&]() -> const char* {
      if (has_value) {
        return value.c_str();
      }
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return Usage();
      spec_path = v;
    } else if (arg == "--apps") {
      const char* v = next();
      if (v == nullptr) return Usage();
      apps_arg = v;
    } else if (arg == "--modes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      modes_arg = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "interp") == 0) {
        engine = opec_apps::EngineKind::kInterp;
      } else if (v != nullptr && std::strcmp(v, "bytecode") == 0) {
        engine = opec_apps::EngineKind::kBytecode;
      } else {
        std::fprintf(stderr, "invalid --engine '%s'; valid tiers are: interp bytecode\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--rv") {
      const char* v = next();
      if (v == nullptr || (std::strcmp(v, "on") != 0 && std::strcmp(v, "off") != 0 &&
                           std::strcmp(v, "report") != 0)) {
        std::fprintf(stderr, "invalid --rv '%s'; valid settings are: on off report\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
      rv_arg = v;
    } else if (arg == "--fault-sweep") {
      const char* v = next();
      int n = 0;
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1000000, &n)) {
        std::fprintf(stderr, "invalid --fault-sweep '%s'; expected an integer >= 1\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
      fault_sweep = static_cast<size_t>(n);
    } else if (arg == "--fault-class") {
      const char* v = next();
      if (v == nullptr || !ParseFaultClass(v, &fault_class)) return Usage();
    } else if (arg == "--figures") {
      figures = true;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1024, &jobs)) {
        std::fprintf(stderr, "invalid --jobs '%s'; expected an integer in [1, 1024]\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64Flag(v, &seed)) {
        std::fprintf(stderr, "invalid --seed '%s'; expected an unsigned integer\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr || !ParseU64Flag(v, &timeout_ms)) {
        std::fprintf(stderr, "invalid --timeout-ms '%s'; expected an unsigned integer\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--report-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      report_path = v;
    } else if (arg == "--deterministic") {
      deterministic = true;
    } else if (arg == "--trace-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_dir = v;
    } else if (arg == "--snapshot-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      snapshot_dir = v;
    } else if (arg == "--cold-boot") {
      cold_boot = true;
    } else if (arg == "--traffic") {
      const char* v = next();
      opec_traffic::TrafficSpec traffic_spec;
      std::string error;
      if (v == nullptr || !opec_traffic::ParseTrafficSpec(v, &traffic_spec, &error)) {
        std::fprintf(stderr, "invalid --traffic '%s': %s\n", v == nullptr ? "" : v,
                     error.c_str());
        return Usage();
      }
      // Set before any worker spawns: the traffic app factories read it.
      opec_traffic::SetDefaultLoadSpec(traffic_spec);
    } else {
      return Usage();
    }
  }

  if (figures) {
    std::fputs(opec_bench::Figure9Text(jobs).c_str(), stdout);
    std::fputs(opec_bench::Figure10Text(jobs).c_str(), stdout);
    std::fputs(opec_bench::Figure11Text(jobs).c_str(), stdout);
    return 0;
  }

  std::vector<std::string> apps;
  if (apps_arg == "all") {
    for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
      apps.push_back(factory.name);
    }
  } else {
    apps = SplitCommas(apps_arg);
  }
  std::vector<opec_apps::BuildMode> modes;
  if (modes_arg == "opec") {
    modes = {opec_apps::BuildMode::kOpec};
  } else if (modes_arg == "vanilla") {
    modes = {opec_apps::BuildMode::kVanilla};
  } else if (modes_arg == "both") {
    modes = {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec};
  } else {
    return Usage();
  }

  CampaignSpec spec;
  spec.seed = seed;
  spec.timeout_ms = timeout_ms;
  if (!spec_path.empty()) {
    std::string err = spec.ParseFile(spec_path);
    if (!err.empty()) {
      std::fprintf(stderr, "campaign: %s\n", err.c_str());
      return 2;
    }
  }
  if (fault_sweep > 0) {
    spec.AddFaultSweep(apps, fault_sweep, fault_class);
  }
  if (spec.jobs.empty()) {
    spec.AddScenarioMatrix(apps, modes);
  }
  for (opec_campaign::JobSpec& job : spec.jobs) {
    job.engine = engine;
    job.rv = rv_arg != "off";
  }

  Executor::Options options;
  options.jobs = jobs;
  options.default_timeout_ms = timeout_ms;
  options.trace_dir = trace_dir;
  options.snapshot_dir = snapshot_dir;
  options.cold_boot = cold_boot;
  CampaignResult result;
  try {
    result = Executor::Run(spec, options);
  } catch (const std::runtime_error& e) {
    // Environment problems (unwritable --snapshot-dir/--trace-dir, unknown
    // app) are usage-class errors, not crashes: clear message, exit 2.
    std::fprintf(stderr, "campaign: %s\n", e.what());
    return 2;
  }

  // Per-outcome summary, then the robustness matrix when faults were swept.
  std::printf("campaign: %zu jobs on %d worker(s), wall %.2f ms (serial %.2f ms, %.2fx)\n",
              result.results.size(), result.jobs_used, result.wall_ns / 1e6,
              result.SerialWallNs() / 1e6,
              result.wall_ns > 0
                  ? static_cast<double>(result.SerialWallNs()) /
                        static_cast<double>(result.wall_ns)
                  : 0.0);
  for (int o = 0; o <= static_cast<int>(Outcome::kRvViolation); ++o) {
    size_t n = result.CountOutcome(static_cast<Outcome>(o));
    if (n > 0) {
      std::printf("  %-18s %zu\n", opec_campaign::OutcomeName(static_cast<Outcome>(o)), n);
    }
  }
  bool have_faults = false;
  for (const opec_campaign::JobResult& r : result.results) {
    if (r.spec.kind == opec_campaign::JobKind::kFault) {
      have_faults = true;
    }
    if (!r.ok) {
      std::printf("  job %zu [%s %s]: %s — %s\n", r.index, r.spec.app.c_str(),
                  opec_campaign::JobKindName(r.spec.kind),
                  opec_campaign::OutcomeName(r.outcome), r.detail.c_str());
    }
  }
  if (have_faults) {
    std::fputs(result.FaultMatrix().c_str(), stdout);
  }
  if (rv_arg == "report") {
    // Deterministic per-automaton aggregate over every job that ran with RV.
    const std::vector<std::string>& names = opec_rv::StandardMonitorNames();
    std::vector<unsigned long long> by_automaton(names.size(), 0);
    unsigned long long rv_jobs = 0, states = 0, violations = 0;
    for (const opec_campaign::JobResult& r : result.results) {
      if (!r.spec.rv) {
        continue;
      }
      ++rv_jobs;
      states += r.rv_states;
      violations += r.rv_violations;
      for (size_t a = 0; a < r.rv_by_automaton.size() && a < by_automaton.size(); ++a) {
        by_automaton[a] += r.rv_by_automaton[a];
      }
    }
    std::printf("RV report (%llu job(s)): states-visited=%llu violations=%llu\n", rv_jobs,
                states, violations);
    for (size_t a = 0; a < names.size(); ++a) {
      std::printf("  %-20s violations=%llu\n", names[a].c_str(), by_automaton[a]);
    }
  }

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out.good()) {
      std::fprintf(stderr, "campaign: cannot write %s\n", report_path.c_str());
      return 2;
    }
    out << (deterministic ? result.DeterministicJson() : result.Json());
    std::printf("wrote %s\n", report_path.c_str());
  }
  return result.AllOk() ? 0 : 1;
}
