// Warm-start benchmark: what forking campaign jobs from a boot snapshot
// actually buys over cold-booting every job (DESIGN.md §13.3).
//
// Two measurements, both written to BENCH_warm_start.json:
//
//  1. Per-app microbench (OPEC mode): N cold jobs (AppRun construction +
//     Execute) vs N warm jobs (one construction + CaptureBoot, then
//     RestoreBoot + Execute per job). Warm amortizes compile/analysis/image
//     build; Execute itself is untouched, so the speedup ceiling per app is
//     wall / exec — reported alongside the measurement.
//  2. The campaign-level number the snapshot subsystem was built for: the
//     500-job all-apps fault sweep through the real Executor, warm (default)
//     vs --cold-boot, with the deterministic reports checked byte-identical.
//
// Usage: warm_start [--iters N] [--sweep-jobs N] [--out FILE] [--smoke]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/campaign/campaign.h"
#include "src/support/check.h"

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

struct AppRow {
  std::string key;
  uint64_t cold_ns_per_job = 0;
  uint64_t warm_ns_per_job = 0;
  uint64_t exec_ns_per_job = 0;  // the floor no boot strategy can beat
};

AppRow MeasureApp(const opec_apps::AppFactory& factory, int iters) {
  AppRow row;
  row.key = factory.name;

  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
    opec_rt::RunResult r = run.Execute();
    OPEC_CHECK_MSG(r.ok, factory.name + " cold run failed: " + r.violation);
  }
  row.cold_ns_per_job = NsSince(t0) / static_cast<uint64_t>(iters);

  std::unique_ptr<opec_apps::Application> app = factory.make();
  opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
  run.CaptureBoot();
  uint64_t exec_total = 0;
  t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    if (i > 0) {
      run.RestoreBoot();
    }
    Clock::time_point t1 = Clock::now();
    opec_rt::RunResult r = run.Execute();
    exec_total += NsSince(t1);
    OPEC_CHECK_MSG(r.ok, factory.name + " warm run failed: " + r.violation);
  }
  row.warm_ns_per_job = NsSince(t0) / static_cast<uint64_t>(iters);
  row.exec_ns_per_job = exec_total / static_cast<uint64_t>(iters);
  return row;
}

uint64_t TimeSweep(const opec_campaign::CampaignSpec& spec, bool cold_boot,
                   std::string* json) {
  opec_campaign::Executor::Options options;
  options.jobs = 1;
  options.cold_boot = cold_boot;
  Clock::time_point t0 = Clock::now();
  opec_campaign::CampaignResult result = opec_campaign::Executor::Run(spec, options);
  uint64_t ns = NsSince(t0);
  *json = result.DeterministicJson();
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 20;
  int sweep_jobs = 500;
  std::string out_path = "BENCH_warm_start.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      if (!opec_bench::ParseCount(argv[++i], 1, 1000000, &iters)) {
        std::fprintf(stderr, "invalid --iters '%s'; expected an integer >= 1\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sweep-jobs") == 0 && i + 1 < argc) {
      if (!opec_bench::ParseCount(argv[++i], 1, 1000000, &sweep_jobs)) {
        std::fprintf(stderr, "invalid --sweep-jobs '%s'; expected an integer >= 1\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      iters = 2;
      sweep_jobs = 10;
    } else {
      std::fprintf(stderr, "usage: warm_start [--iters N] [--sweep-jobs N] [--out FILE] [--smoke]\n");
      return 2;
    }
  }

  std::vector<AppRow> rows;
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    rows.push_back(MeasureApp(factory, iters));
    const AppRow& r = rows.back();
    std::printf("%-10s cold %8.3f ms/job  warm %8.3f ms/job  speedup %.2fx  (exec floor %.3f ms)\n",
                r.key.c_str(), r.cold_ns_per_job / 1e6, r.warm_ns_per_job / 1e6,
                static_cast<double>(r.cold_ns_per_job) / static_cast<double>(r.warm_ns_per_job),
                r.exec_ns_per_job / 1e6);
  }

  opec_campaign::CampaignSpec spec;
  spec.seed = 42;
  std::vector<std::string> all_apps;
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    all_apps.push_back(factory.name);
  }
  spec.AddFaultSweep(all_apps, sweep_jobs);
  std::string warm_json;
  std::string cold_json;
  uint64_t warm_ns = TimeSweep(spec, /*cold_boot=*/false, &warm_json);
  uint64_t cold_ns = TimeSweep(spec, /*cold_boot=*/true, &cold_json);
  OPEC_CHECK_MSG(warm_json == cold_json,
                 "warm and cold sweeps produced different deterministic reports");
  std::printf("%d-job fault sweep: cold %.1f ms, warm %.1f ms (%.2fx), reports identical\n",
              sweep_jobs, cold_ns / 1e6, warm_ns / 1e6,
              static_cast<double>(cold_ns) / static_cast<double>(warm_ns));

  std::ofstream out(out_path);
  out << "{\n  \"schema\": \"opec-warm-start-v1\",\n  \"iterations\": " << iters
      << ",\n  \"sweep_jobs\": " << sweep_jobs << ",\n  \"apps\": {\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const AppRow& r = rows[i];
    out << "    \"" << r.key << "\": {\"cold_ns\": " << r.cold_ns_per_job
        << ", \"warm_ns\": " << r.warm_ns_per_job << ", \"exec_ns\": " << r.exec_ns_per_job
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  },\n  \"sweep\": {\"cold_ns\": " << cold_ns << ", \"warm_ns\": " << warm_ns
      << "}\n}\n";
  return 0;
}
