// Ablation (DESIGN.md §3.2): operation-granularity partitioning follows the
// control flow, so domain switches happen only at entry/exit of tasks —
// file-granularity (ACES) partitioning switches on every cross-file call.
// Reports the domain-switch count per scenario for each application.
//
// The text is produced by opec_bench::AblationSwitchFrequencyText
// (bench/figures_lib.h); `--jobs N` measures the applications concurrently
// with bit-identical output.

#include <cstdio>

#include "bench/figures_lib.h"

int main(int argc, char** argv) {
  int jobs =
      opec_bench::ParseJobsFlag(argc, argv, "usage: ablation_switch_frequency [--jobs N]");
  std::fputs(opec_bench::AblationSwitchFrequencyText(jobs).c_str(), stdout);
  return 0;
}
