// Ablation (DESIGN.md §3.2): operation-granularity partitioning follows the
// control flow, so domain switches happen only at entry/exit of tasks —
// file-granularity (ACES) partitioning switches on every cross-file call.
// Reports the domain-switch count per scenario for each application.

#include <cstdio>

#include "bench/aces_util.h"
#include "bench/bench_util.h"
#include "src/metrics/report.h"

int main() {
  opec_metrics::Table table(
      {"Application", "OPEC switches", "ACES1 switches", "ACES2 switches", "ACES3 switches"});
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    opec_apps::AppRun opec(*app, opec_apps::BuildMode::kOpec);
    opec_rt::RunResult r = opec.Execute();
    OPEC_CHECK_MSG(r.ok, r.violation);
    std::vector<std::string> row{app->name(),
                                 std::to_string(opec.monitor()->stats().operation_switches)};
    for (opec_aces::AcesStrategy strategy :
         {opec_aces::AcesStrategy::kFilename, opec_aces::AcesStrategy::kFilenameNoOpt,
          opec_aces::AcesStrategy::kPeripheral}) {
      opec_bench::AcesRunResult aces = opec_bench::RunUnderAces(*app, strategy);
      row.push_back(std::to_string(aces.switches));
    }
    table.AddRow(std::move(row));
  }
  std::printf("Ablation: domain-switch frequency, OPEC vs ACES strategies\n%s",
              table.ToString().c_str());
  std::printf("\nExpected shape: OPEC switches only at operation entry/exit; ACES\n"
              "switches on the hot path (e.g. every HAL call crossing a file), which\n"
              "is the Section 3.1 argument for operation-based partitioning.\n");
  return 0;
}
