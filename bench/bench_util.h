// Shared helpers for the table/figure bench binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/support/check.h"

namespace opec_bench {

// Full-string bounded count parse for CLI flags. Bare atoi silently yields 0
// on junk like "abc" (and accepts trailing garbage like "12x"), which used to
// slip through several bench CLIs as an out-of-range or surprise value.
// Accepts exactly an optional-sign-free decimal integer in [min, max];
// returns false on anything else (empty, junk, overflow, out of range).
inline bool ParseCount(const char* s, long min, long max, int* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  if (s[0] < '0' || s[0] > '9') {
    return false;  // strtol would skip leading whitespace and accept signs
  }
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < min || v > max) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

// exec_ns / statements with the zero-statement guard: a workload that aborts
// before its first statement (or a malformed sample) must render as 0.0, not
// nan/inf, which would corrupt the emitted JSON (nan/inf are not valid JSON
// tokens and broke --baseline parsing downstream).
inline double NsPerStatement(uint64_t exec_ns, uint64_t statements) {
  if (statements == 0) {
    return 0.0;
  }
  return static_cast<double>(exec_ns) / static_cast<double>(statements);
}

// Runs an application in both configurations and reports the Figure 9 / Table
// 2 ratios.
struct OverheadResult {
  std::string app;
  uint64_t vanilla_cycles = 0;
  uint64_t opec_cycles = 0;
  uint32_t vanilla_flash = 0;
  uint32_t opec_flash = 0;
  uint32_t vanilla_sram = 0;
  uint32_t opec_sram = 0;
  uint32_t flash_capacity = 0;
  uint32_t sram_capacity = 0;

  double runtime_overhead() const {
    return static_cast<double>(opec_cycles) / static_cast<double>(vanilla_cycles) - 1.0;
  }
  double runtime_ratio() const {
    return static_cast<double>(opec_cycles) / static_cast<double>(vanilla_cycles);
  }
  double flash_overhead() const {
    return static_cast<double>(opec_flash - vanilla_flash) / flash_capacity;
  }
  double sram_overhead() const {
    return static_cast<double>(opec_sram - vanilla_sram) / sram_capacity;
  }
};

inline OverheadResult MeasureOverhead(const opec_apps::Application& app) {
  OverheadResult r;
  r.app = app.name();
  opec_hw::BoardSpec spec = opec_hw::GetBoardSpec(app.board());
  r.flash_capacity = spec.flash_size;
  r.sram_capacity = spec.sram_size;

  opec_apps::AppRun vanilla(app, opec_apps::BuildMode::kVanilla);
  opec_rt::RunResult rv = vanilla.Execute();
  OPEC_CHECK_MSG(rv.ok, app.name() + " vanilla run failed: " + rv.violation);
  OPEC_CHECK_MSG(vanilla.Check().empty(), app.name() + ": " + vanilla.Check());
  r.vanilla_cycles = rv.cycles;
  r.vanilla_flash = vanilla.accounting().flash_total();
  r.vanilla_sram = vanilla.accounting().sram_total();

  opec_apps::AppRun opec(app, opec_apps::BuildMode::kOpec);
  opec_rt::RunResult ro = opec.Execute();
  OPEC_CHECK_MSG(ro.ok, app.name() + " OPEC run failed: " + ro.violation);
  OPEC_CHECK_MSG(opec.Check().empty(), app.name() + ": " + opec.Check());
  r.opec_cycles = ro.cycles;
  r.opec_flash = opec.accounting().flash_total();
  r.opec_sram = opec.accounting().sram_total();
  return r;
}

}  // namespace opec_bench

#endif  // BENCH_BENCH_UTIL_H_
