// Shared figure/ablation text generators.
//
// Each function returns the exact console text of the corresponding bench
// driver. Both the standalone drivers (figure9_overhead, ...) and the
// campaign CLI build their output through these generators, so the two paths
// are bit-identical by construction. Per-item work (one application, one
// buffer size) dispatches through opec_campaign::ParallelMap: `jobs <= 1` is
// the inline serial path, `jobs > 1` fans out over the work-stealing pool —
// results are assembled in item order either way, so the returned text does
// not depend on the thread count.

#ifndef BENCH_FIGURES_LIB_H_
#define BENCH_FIGURES_LIB_H_

#include <string>

namespace opec_bench {

std::string Figure9Text(int jobs);
std::string Figure10Text(int jobs);
std::string Figure11Text(int jobs);
std::string AblationShadowSyncText(int jobs);
std::string AblationSwitchFrequencyText(int jobs);

// Argument parsing shared by the figure drivers: accepts only `--jobs N`
// (N >= 1). Returns the job count, or exits with status 2 after printing
// `usage` on any other argument.
int ParseJobsFlag(int argc, char** argv, const char* usage);

}  // namespace opec_bench

#endif  // BENCH_FIGURES_LIB_H_
