// Regenerates Table 2: runtime ratio (RO, x), Flash overhead (FO, %), SRAM
// overhead (SO, %) and privileged application code (PAC, %) for OPEC vs the
// three ACES strategies, over the five shared applications.

#include <cstdio>

#include "bench/aces_util.h"
#include "bench/bench_util.h"
#include "src/metrics/report.h"

int main() {
  using opec_aces::AcesStrategy;
  using opec_metrics::Num;
  using opec_metrics::Pct;

  opec_metrics::Table table({"Application", "Policy", "RO(X)", "FO(%)", "SO(%)", "PAC(%)"});

  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    if (!factory.in_aces_comparison) {
      continue;
    }
    std::unique_ptr<opec_apps::Application> app = factory.make();
    opec_hw::BoardSpec spec = opec_hw::GetBoardSpec(app->board());

    opec_bench::OverheadResult opec = opec_bench::MeasureOverhead(*app);
    // OPEC runs no application code privileged (core peripherals are emulated
    // instead of lifting compartments, Section 5.2).
    table.AddRow({app->name(), "OPEC", Num(opec.runtime_ratio()), Pct(opec.flash_overhead()),
                  Pct(opec.sram_overhead()), "0.00"});

    for (AcesStrategy strategy :
         {AcesStrategy::kFilename, AcesStrategy::kFilenameNoOpt, AcesStrategy::kPeripheral}) {
      opec_bench::AcesRunResult aces = opec_bench::RunUnderAces(*app, strategy);
      double ro = static_cast<double>(aces.cycles) / static_cast<double>(opec.vanilla_cycles);
      double fo = static_cast<double>(aces.partition.flash_overhead_bytes) / spec.flash_size;
      double so = static_cast<double>(aces.partition.sram_overhead_bytes) / spec.sram_size;
      uint32_t priv_code = 0;
      uint32_t total_code = 0;
      for (const opec_aces::Compartment& c : aces.partition.compartments) {
        total_code += c.code_bytes;
        if (c.privileged) {
          priv_code += c.code_bytes;
        }
      }
      double pac = total_code == 0 ? 0.0 : static_cast<double>(priv_code) / total_code;
      table.AddRow({"", opec_aces::StrategyName(strategy), Num(ro), Pct(fo), Pct(so), Pct(pac)});
    }
  }

  std::printf("Table 2: OPEC vs ACES comparison\n%s", table.ToString().c_str());
  std::printf("\nPaper reference (Table 2): OPEC RO ~1.00-1.01x (lower than ACES);\n"
              "OPEC SO larger than ACES (shadowing duplicates shared globals, ACES\n"
              "only moves them); OPEC PAC = 0 while ACES runs some application code\n"
              "privileged (up to 40.9%% for PinLock/ACES1).\n");
  return 0;
}
