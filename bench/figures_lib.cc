#include "bench/figures_lib.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/aces_util.h"
#include "bench/bench_util.h"
#include "src/campaign/campaign.h"
#include "src/compiler/opec_compiler.h"
#include "src/ir/builder.h"
#include "src/metrics/over_privilege.h"
#include "src/metrics/report.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"
#include "src/support/text.h"

namespace opec_bench {
namespace {

using opec_aces::AcesStrategy;
using opec_campaign::ParallelMap;
using opec_metrics::Cdf;
using opec_metrics::Num;
using opec_metrics::Pct;
using opec_support::StrPrintf;

constexpr AcesStrategy kAcesStrategies[] = {AcesStrategy::kFilename,
                                            AcesStrategy::kFilenameNoOpt,
                                            AcesStrategy::kPeripheral};

// The AllApps() subset Figures 10/11 evaluate (the ACES comparison set).
std::vector<opec_apps::AppFactory> AcesComparisonApps() {
  std::vector<opec_apps::AppFactory> out;
  for (opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    if (factory.in_aces_comparison) {
      out.push_back(std::move(factory));
    }
  }
  return out;
}

}  // namespace

std::string Figure9Text(int jobs) {
  const std::vector<opec_apps::AppFactory> apps = opec_apps::AllApps();
  std::vector<OverheadResult> results = ParallelMap(jobs, apps.size(), [&](size_t i) {
    std::unique_ptr<opec_apps::Application> app = apps[i].make();
    return MeasureOverhead(*app);
  });

  opec_metrics::Table table({"Application", "Runtime Overhead(%)", "Flash Overhead(%)",
                             "SRAM Overhead(%)", "Vanilla cycles", "OPEC cycles"});
  double sum_ro = 0;
  double sum_fo = 0;
  double sum_so = 0;
  int n = 0;
  for (const OverheadResult& r : results) {
    table.AddRow({r.app, Pct(r.runtime_overhead()), Pct(r.flash_overhead()),
                  Pct(r.sram_overhead()), std::to_string(r.vanilla_cycles),
                  std::to_string(r.opec_cycles)});
    sum_ro += r.runtime_overhead();
    sum_fo += r.flash_overhead();
    sum_so += r.sram_overhead();
    ++n;
  }
  table.AddRow({"Average", Pct(sum_ro / n), Pct(sum_fo / n), Pct(sum_so / n), "", ""});

  std::string out = StrPrintf("Figure 9: performance overhead of OPEC\n%s",
                              table.ToString().c_str());
  out += "\nPaper reference (Figure 9): average runtime 0.23% (max 1.1%, CoreMark),\n"
         "average Flash 1.79% (max 3.33%), average SRAM 5.35% (max 7.62%).\n"
         "Expected shape: runtime << Flash << SRAM; CoreMark has the largest\n"
         "runtime overhead because it never waits on I/O.\n";
  return out;
}

std::string Figure10Text(int jobs) {
  const std::vector<opec_apps::AppFactory> apps = AcesComparisonApps();
  std::vector<std::string> blocks = ParallelMap(jobs, apps.size(), [&](size_t i) {
    std::unique_ptr<opec_apps::Application> app = apps[i].make();
    std::string out =
        StrPrintf("=== Figure 10(%s): PT cumulative distribution ===\n", app->name().c_str());

    // OPEC: PT must be 0 for every operation.
    opec_apps::AppRun opec(*app, opec_apps::BuildMode::kOpec);
    std::vector<opec_metrics::DomainPt> opec_pt =
        opec_metrics::ComputeOpecPt(opec.compile()->policy);
    double opec_max = 0;
    for (const opec_metrics::DomainPt& d : opec_pt) {
      opec_max = std::max(opec_max, d.pt());
    }
    out += StrPrintf("OPEC: %zu operations, max PT = %.4f (shadowing: always 0)\n",
                     opec_pt.size(), opec_max);

    for (AcesStrategy strategy : kAcesStrategies) {
      AcesRunResult aces = RunUnderAces(*app, strategy);
      std::vector<opec_metrics::DomainPt> pts = opec_metrics::ComputeAcesPt(aces.partition);
      std::vector<double> values;
      for (const opec_metrics::DomainPt& d : pts) {
        values.push_back(d.pt());
      }
      auto cdf = Cdf(values);
      out += StrPrintf("%s (%zu compartments, %d region merges): CDF points (PT, ratio):",
                       opec_aces::StrategyName(strategy), pts.size(),
                       aces.partition.merge_steps);
      for (const auto& [pt, ratio] : cdf) {
        out += StrPrintf(" (%.3f, %.2f)", pt, ratio);
      }
      out += "\n";
    }
    out += "\n";
    return out;
  });

  std::string out;
  for (const std::string& block : blocks) {
    out += block;
  }
  out += "Paper reference (Figure 10): every ACES strategy except PinLock under\n"
         "ACES2/ACES3 shows compartments with PT > 0; OPEC is 0 everywhere.\n";
  return out;
}

std::string Figure11Text(int jobs) {
  const std::vector<opec_apps::AppFactory> apps = AcesComparisonApps();
  std::vector<std::string> blocks = ParallelMap(jobs, apps.size(), [&](size_t i) {
    std::unique_ptr<opec_apps::Application> app = apps[i].make();

    // Traced OPEC run: gives per-operation executed-function windows.
    opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
    run.EnableTrace();
    opec_rt::RunResult result = run.Execute();
    OPEC_CHECK_MSG(result.ok, result.violation);
    const opec_compiler::Policy& policy = run.compile()->policy;
    const auto& resources = run.compile()->resources;

    std::vector<opec_metrics::TaskEt> opec_et =
        opec_metrics::ComputeOpecEt(policy, run.trace(), resources);

    opec_metrics::Table table({"Task", "OPEC", "ACES1", "ACES2", "ACES3"});
    std::vector<std::vector<opec_metrics::TaskEt>> aces_et;
    for (AcesStrategy strategy : kAcesStrategies) {
      opec_aces::AcesResult partition =
          PartitionAcesFor(run.module(), app->Soc(), resources, strategy);
      aces_et.push_back(
          opec_metrics::ComputeAcesEt(policy, partition, run.trace(), resources));
    }
    for (size_t t = 0; t < opec_et.size(); ++t) {
      std::vector<std::string> row{opec_et[t].task, Num(opec_et[t].et())};
      for (const auto& ets : aces_et) {
        bool found = false;
        for (const opec_metrics::TaskEt& e : ets) {
          if (e.operation_id == opec_et[t].operation_id) {
            row.push_back(Num(e.et()));
            found = true;
            break;
          }
        }
        if (!found) {
          row.push_back("-");
        }
      }
      table.AddRow(std::move(row));
    }
    return StrPrintf("=== Figure 11(%s): ET per task ===\n%s\n", app->name().c_str(),
                     table.ToString().c_str());
  });

  std::string out;
  for (const std::string& block : blocks) {
    out += block;
  }
  out += "Paper reference (Figure 11): OPEC's ET is lower than ACES's on most\n"
         "tasks; a few tasks (LCD-uSD, TCP-Echo) can be higher for OPEC due to\n"
         "untaken branches and spurious icall targets in the operation.\n";
  return out;
}

namespace {

// One synthetic two-operation shadow-sync measurement (ablation_shadow_sync).
uint64_t MeasureSwitchPairCycles(uint32_t shared_bytes, int switches) {
  opec_ir::Module m("sync");
  auto& tt = m.types();
  m.AddGlobal("buf", tt.ArrayOf(tt.U8(), shared_bytes));
  {
    auto* fn = m.AddFunction("Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    opec_ir::FunctionBuilder b(m, fn);
    b.Assign(b.Idx(b.G("buf"), 0u), b.U8(1));  // touch the buffer (shares it)
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    opec_ir::FunctionBuilder b(m, fn);
    opec_ir::Val i = b.Local("i", tt.U32());
    b.Assign(b.Idx(b.G("buf"), 1u), b.U8(2));  // main shares it too
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(static_cast<uint32_t>(switches)));
    {
      b.Call("Task");
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Ret(b.U32(0));
    b.Finish();
  }
  opec_hw::SocDescription soc;
  opec_compiler::PartitionConfig config;
  config.entries.push_back({"Task", {}});
  opec_hw::Machine machine(opec_hw::Board::kStm32479iEval);
  opec_compiler::CompileResult compile =
      opec_compiler::CompileOpec(m, soc, config, machine.board().board);
  opec_monitor::Monitor monitor(machine, compile.policy, soc);
  opec_compiler::LoadGlobals(machine, m, compile.layout);
  opec_rt::ExecutionEngine engine(machine, m, compile.layout, &monitor);
  opec_rt::RunResult r = engine.Run("main");
  if (!r.ok) {
    std::fprintf(stderr, "run failed: %s\n", r.violation.c_str());
    return 0;
  }
  return r.cycles / static_cast<uint64_t>(switches);
}

}  // namespace

std::string AblationShadowSyncText(int jobs) {
  const std::vector<uint32_t> sizes = {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u};
  std::vector<uint64_t> cycles = ParallelMap(jobs, sizes.size(), [&](size_t i) {
    return MeasureSwitchPairCycles(sizes[i], 50);
  });

  opec_metrics::Table table({"Shared bytes", "Cycles per enter+exit pair"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow({std::to_string(sizes[i]), std::to_string(cycles[i])});
  }
  std::string out = StrPrintf("Ablation: shadow-synchronization cost vs shared-state size\n%s",
                              table.ToString().c_str());
  out += "\nExpected shape: cost grows linearly with the shared bytes — the price\n"
         "OPEC pays (in cycles and SRAM) for driving partition-time over-privilege\n"
         "to zero, vs ACES's free-but-over-privileged merged regions.\n";
  return out;
}

std::string AblationSwitchFrequencyText(int jobs) {
  const std::vector<opec_apps::AppFactory> apps = opec_apps::AllApps();
  std::vector<std::vector<std::string>> rows = ParallelMap(jobs, apps.size(), [&](size_t i) {
    std::unique_ptr<opec_apps::Application> app = apps[i].make();
    opec_apps::AppRun opec(*app, opec_apps::BuildMode::kOpec);
    opec_rt::RunResult r = opec.Execute();
    OPEC_CHECK_MSG(r.ok, r.violation);
    std::vector<std::string> row{app->name(),
                                 std::to_string(opec.monitor()->stats().operation_switches)};
    for (AcesStrategy strategy : kAcesStrategies) {
      AcesRunResult aces = RunUnderAces(*app, strategy);
      row.push_back(std::to_string(aces.switches));
    }
    return row;
  });

  opec_metrics::Table table(
      {"Application", "OPEC switches", "ACES1 switches", "ACES2 switches", "ACES3 switches"});
  for (std::vector<std::string>& row : rows) {
    table.AddRow(std::move(row));
  }
  std::string out = StrPrintf("Ablation: domain-switch frequency, OPEC vs ACES strategies\n%s",
                              table.ToString().c_str());
  out += "\nExpected shape: OPEC switches only at operation entry/exit; ACES\n"
         "switches on the hot path (e.g. every HAL call crossing a file), which\n"
         "is the Section 3.1 argument for operation-based partitioning.\n";
  return out;
}

int ParseJobsFlag(int argc, char** argv, const char* usage) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      if (!ParseCount(argv[++i], 1, 1024, &jobs)) {
        std::fprintf(stderr, "invalid --jobs '%s'; expected an integer in [1, 1024]\n",
                     argv[i]);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "%s\n", usage);
      std::exit(2);
    }
  }
  return jobs;
}

}  // namespace opec_bench
