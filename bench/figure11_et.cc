// Regenerates Figure 11: the execution-time over-privilege value (ET, Eq. 2)
// per task, for OPEC and the three ACES strategies, over the five shared
// applications. Tasks are the operation windows of a traced OPEC run (the
// paper's GDB single-stepping stand-in); under ACES a task's needed set is
// everything accessible to the compartments its execution flowed through.

#include <cstdio>

#include "bench/aces_util.h"
#include "bench/bench_util.h"
#include "src/metrics/over_privilege.h"
#include "src/metrics/report.h"

int main() {
  using opec_aces::AcesStrategy;
  using opec_metrics::Num;

  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    if (!factory.in_aces_comparison) {
      continue;
    }
    std::unique_ptr<opec_apps::Application> app = factory.make();

    // Traced OPEC run: gives per-operation executed-function windows.
    opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
    run.EnableTrace();
    opec_rt::RunResult result = run.Execute();
    OPEC_CHECK_MSG(result.ok, result.violation);
    const opec_compiler::Policy& policy = run.compile()->policy;
    const auto& resources = run.compile()->resources;

    std::vector<opec_metrics::TaskEt> opec_et =
        opec_metrics::ComputeOpecEt(policy, run.trace(), resources);

    opec_metrics::Table table({"Task", "OPEC", "ACES1", "ACES2", "ACES3"});
    std::vector<std::vector<opec_metrics::TaskEt>> aces_et;
    for (AcesStrategy strategy :
         {AcesStrategy::kFilename, AcesStrategy::kFilenameNoOpt, AcesStrategy::kPeripheral}) {
      opec_aces::AcesResult partition = opec_bench::PartitionAcesFor(
          run.module(), app->Soc(), resources, strategy);
      aces_et.push_back(
          opec_metrics::ComputeAcesEt(policy, partition, run.trace(), resources));
    }
    for (size_t t = 0; t < opec_et.size(); ++t) {
      std::vector<std::string> row{opec_et[t].task, Num(opec_et[t].et())};
      for (const auto& ets : aces_et) {
        bool found = false;
        for (const opec_metrics::TaskEt& e : ets) {
          if (e.operation_id == opec_et[t].operation_id) {
            row.push_back(Num(e.et()));
            found = true;
            break;
          }
        }
        if (!found) {
          row.push_back("-");
        }
      }
      table.AddRow(std::move(row));
    }
    std::printf("=== Figure 11(%s): ET per task ===\n%s\n", app->name().c_str(),
                table.ToString().c_str());
  }
  std::printf("Paper reference (Figure 11): OPEC's ET is lower than ACES's on most\n"
              "tasks; a few tasks (LCD-uSD, TCP-Echo) can be higher for OPEC due to\n"
              "untaken branches and spurious icall targets in the operation.\n");
  return 0;
}
