// Regenerates Figure 11: the execution-time over-privilege value (ET, Eq. 2)
// per task, for OPEC and the three ACES strategies, over the five shared
// applications. Tasks are the operation windows of a traced OPEC run (the
// paper's GDB single-stepping stand-in); under ACES a task's needed set is
// everything accessible to the compartments its execution flowed through.
//
// The text is produced by opec_bench::Figure11Text (bench/figures_lib.h), the
// same generator the campaign CLI uses; `--jobs N` measures the applications
// concurrently with bit-identical output.

#include <cstdio>

#include "bench/figures_lib.h"

int main(int argc, char** argv) {
  int jobs = opec_bench::ParseJobsFlag(argc, argv, "usage: figure11_et [--jobs N]");
  std::fputs(opec_bench::Figure11Text(jobs).c_str(), stdout);
  return 0;
}
