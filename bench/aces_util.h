// Helpers for the ACES-comparison benches (Figures 10/11, Table 2).

#ifndef BENCH_ACES_UTIL_H_
#define BENCH_ACES_UTIL_H_

#include <memory>

#include "src/aces/aces.h"
#include "src/apps/runner.h"
#include "src/compiler/image.h"
#include "src/support/check.h"

namespace opec_bench {

// Builds the ACES partitioning for an application module. `resources` must be
// the pre-instrumentation summaries (from CompileResult) when the module has
// been OPEC-instrumented; the call graph is rebuilt on the module as-is (call
// edges are unaffected by instrumentation).
inline opec_aces::AcesResult PartitionAcesFor(
    const opec_ir::Module& module, const opec_hw::SocDescription& soc,
    const std::map<const opec_ir::Function*, opec_analysis::FunctionResources>& resources,
    opec_aces::AcesStrategy strategy) {
  opec_analysis::PointsToAnalysis pta(module);
  opec_analysis::CallGraph cg = opec_analysis::CallGraph::Build(module, pta);
  return opec_aces::PartitionAces(module, cg, resources, soc, strategy);
}

// Runs the application on a vanilla image under the ACES runtime model and
// returns the cycle count (for Table 2's RO column).
struct AcesRunResult {
  uint64_t cycles = 0;
  uint64_t switches = 0;
  opec_aces::AcesResult partition;
  // Owns the module the partition's Function*/GlobalVariable* point into.
  // Without this, consumers that dereference partition pointers after
  // RunUnderAces returns (e.g. ComputeAcesPt) read freed memory.
  std::unique_ptr<opec_ir::Module> module;
};

inline AcesRunResult RunUnderAces(const opec_apps::Application& app,
                                  opec_aces::AcesStrategy strategy) {
  opec_hw::SocDescription soc = app.Soc();
  std::unique_ptr<opec_ir::Module> module = app.BuildModule();
  opec_analysis::PointsToAnalysis pta(*module);
  opec_analysis::CallGraph cg = opec_analysis::CallGraph::Build(*module, pta);
  auto resources = opec_analysis::ResourceAnalysis::Run(*module, pta, soc);

  AcesRunResult out;
  out.partition = opec_aces::PartitionAces(*module, cg, resources, soc, strategy);

  opec_hw::Machine machine(app.board());
  std::unique_ptr<opec_apps::AppDevices> devices = app.CreateDevices(machine);
  opec_compiler::VanillaImage image = opec_compiler::BuildVanillaImage(*module, app.board());
  opec_compiler::LoadGlobals(machine, *module, image.layout);

  opec_aces::AcesRuntime runtime(machine, out.partition);
  opec_rt::ExecutionEngine engine(machine, *module, image.layout, &runtime);
  app.PrepareScenario(*devices);
  opec_rt::RunResult result = engine.Run("main");
  OPEC_CHECK_MSG(result.ok, app.name() + " under ACES failed: " + result.violation);
  OPEC_CHECK_MSG(app.CheckScenario(*devices, result).empty(),
                 app.name() + " under ACES: " + app.CheckScenario(*devices, result));
  out.cycles = result.cycles;
  out.switches = runtime.compartment_switches();
  out.module = std::move(module);
  return out;
}

}  // namespace opec_bench

#endif  // BENCH_ACES_UTIL_H_
