// Regenerates Figure 9: runtime, Flash and SRAM overhead of OPEC vs the
// vanilla baseline for every application. Runtime overhead is the extra DWT
// cycle count; Flash/SRAM overheads are the image-size increase relative to
// the board's capacity (the paper's methodology, Section 6.3).
//
// The text is produced by opec_bench::Figure9Text (bench/figures_lib.h), the
// same generator the campaign CLI uses; `--jobs N` measures the applications
// concurrently with bit-identical output.

#include <cstdio>

#include "bench/figures_lib.h"

int main(int argc, char** argv) {
  int jobs = opec_bench::ParseJobsFlag(argc, argv, "usage: figure9_overhead [--jobs N]");
  std::fputs(opec_bench::Figure9Text(jobs).c_str(), stdout);
  return 0;
}
