// Regenerates Figure 9: runtime, Flash and SRAM overhead of OPEC vs the
// vanilla baseline for every application. Runtime overhead is the extra DWT
// cycle count; Flash/SRAM overheads are the image-size increase relative to
// the board's capacity (the paper's methodology, Section 6.3).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/metrics/report.h"

int main() {
  using opec_bench::MeasureOverhead;
  using opec_metrics::Pct;

  opec_metrics::Table table({"Application", "Runtime Overhead(%)", "Flash Overhead(%)",
                             "SRAM Overhead(%)", "Vanilla cycles", "OPEC cycles"});
  double sum_ro = 0;
  double sum_fo = 0;
  double sum_so = 0;
  int n = 0;
  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    opec_bench::OverheadResult r = MeasureOverhead(*app);
    table.AddRow({r.app, Pct(r.runtime_overhead()), Pct(r.flash_overhead()),
                  Pct(r.sram_overhead()), std::to_string(r.vanilla_cycles),
                  std::to_string(r.opec_cycles)});
    sum_ro += r.runtime_overhead();
    sum_fo += r.flash_overhead();
    sum_so += r.sram_overhead();
    ++n;
  }
  table.AddRow({"Average", Pct(sum_ro / n), Pct(sum_fo / n), Pct(sum_so / n), "", ""});

  std::printf("Figure 9: performance overhead of OPEC\n%s", table.ToString().c_str());
  std::printf("\nPaper reference (Figure 9): average runtime 0.23%% (max 1.1%%, CoreMark),\n"
              "average Flash 1.79%% (max 3.33%%), average SRAM 5.35%% (max 7.62%%).\n"
              "Expected shape: runtime << Flash << SRAM; CoreMark has the largest\n"
              "runtime overhead because it never waits on I/O.\n");
  return 0;
}
