// Micro-benchmarks (google-benchmark) for the system's primitives: MPU
// checks, bus accesses, interpreter throughput, points-to solving, and the
// end-to-end operation switch.

#include <benchmark/benchmark.h>

#include "src/analysis/points_to.h"
#include "src/apps/pinlock.h"
#include "src/apps/runner.h"
#include "src/hw/machine.h"
#include "src/ir/builder.h"

namespace {

using opec_ir::FunctionBuilder;
using opec_ir::Type;
using opec_ir::Val;

void BM_MpuCheckHit(benchmark::State& state) {
  opec_hw::Mpu mpu;
  mpu.set_enabled(true);
  opec_hw::MpuRegionConfig r;
  r.enabled = true;
  r.base = 0x20000000;
  r.size_log2 = 14;
  r.ap = opec_hw::AccessPerm::kFullAccess;
  mpu.ConfigureRegion(3, r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpu.CheckAccess(0x20001000, 4, opec_hw::AccessKind::kWrite, false));
  }
}
BENCHMARK(BM_MpuCheckHit);

void BM_MpuCheckBackgroundMiss(benchmark::State& state) {
  opec_hw::Mpu mpu;
  mpu.set_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpu.CheckAccess(0x20001000, 4, opec_hw::AccessKind::kWrite, false));
  }
}
BENCHMARK(BM_MpuCheckBackgroundMiss);

void BM_BusSramAccess(benchmark::State& state) {
  opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.bus().Read(0x20000100, 4, true));
  }
}
BENCHMARK(BM_BusSramAccess);

// Interpreter throughput: guest statements per second on an arithmetic loop.
void BM_EngineArithmeticLoop(benchmark::State& state) {
  opec_ir::Module m("bench");
  auto& tt = m.types();
  auto* fn = m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
  FunctionBuilder b(m, fn);
  Val i = b.Local("i", tt.U32());
  Val acc = b.Local("acc", tt.U32());
  b.Assign(i, b.U32(0));
  b.Assign(acc, b.U32(0));
  b.While(i < b.U32(static_cast<uint32_t>(state.range(0))));
  {
    b.Assign(acc, acc * b.U32(3) + i);
    b.Assign(i, i + b.U32(1));
  }
  b.End();
  b.Ret(acc);
  b.Finish();
  opec_compiler::VanillaImage image =
      opec_compiler::BuildVanillaImage(m, opec_hw::Board::kStm32F4Discovery);
  uint64_t statements = 0;
  for (auto _ : state) {
    opec_hw::Machine machine(opec_hw::Board::kStm32F4Discovery);
    opec_compiler::LoadGlobals(machine, m, image.layout);
    opec_rt::ExecutionEngine engine(machine, m, image.layout);
    opec_rt::RunResult r = engine.Run("main");
    benchmark::DoNotOptimize(r.return_value);
    statements += r.statements;
  }
  state.counters["guest_stmts/s"] =
      benchmark::Counter(static_cast<double>(statements), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineArithmeticLoop)->Arg(1000)->Arg(10000);

void BM_PointsToSolveChain(benchmark::State& state) {
  opec_ir::Module m("pta");
  auto& tt = m.types();
  const Type* p_u32 = tt.PointerTo(tt.U32());
  m.AddGlobal("target", tt.U32());
  int n = static_cast<int>(state.range(0));
  // Declare all functions first, then fill bodies (so forward calls resolve).
  for (int i = 0; i < n; ++i) {
    m.AddFunction("f" + std::to_string(i), tt.FunctionTy(tt.U32(), {p_u32}), {"p"});
  }
  for (int i = 0; i < n; ++i) {
    FunctionBuilder b(m, m.FindFunction("f" + std::to_string(i)));
    if (i + 1 < n) {
      b.Ret(b.CallV("f" + std::to_string(i + 1), {b.L("p")}));
    } else {
      b.Ret(b.Deref(b.L("p")));
    }
    b.Finish();
  }
  for (auto _ : state) {
    opec_analysis::PointsToAnalysis pta(m);
    pta.Run();
    benchmark::DoNotOptimize(pta.constraint_count());
  }
}
BENCHMARK(BM_PointsToSolveChain)->Arg(16)->Arg(64)->Arg(256);

// End-to-end operation switch cost in guest cycles, measured on PinLock.
void BM_OperationSwitchGuestCycles(benchmark::State& state) {
  uint64_t switches = 0;
  uint64_t extra_cycles = 0;
  for (auto _ : state) {
    opec_apps::PinLockApp app(5);
    opec_apps::AppRun vanilla(app, opec_apps::BuildMode::kVanilla);
    opec_rt::RunResult rv = vanilla.Execute();
    opec_apps::AppRun opec(app, opec_apps::BuildMode::kOpec);
    opec_rt::RunResult ro = opec.Execute();
    switches += opec.monitor()->stats().operation_switches;
    extra_cycles += ro.cycles - rv.cycles;
  }
  state.counters["guest_cycles/switch"] =
      switches == 0 ? 0 : static_cast<double>(extra_cycles) / static_cast<double>(switches);
}
BENCHMARK(BM_OperationSwitchGuestCycles)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
