// Regenerates Figure 10: the cumulative distribution of the partition-time
// over-privilege value (PT, Eq. 1) per compartment for the five applications
// ACES also evaluated, under the three ACES strategies. OPEC's PT is computed
// too — the shadowing technique makes it identically zero.

#include <cstdio>

#include "bench/aces_util.h"
#include "bench/bench_util.h"
#include "src/metrics/over_privilege.h"
#include "src/metrics/report.h"

int main() {
  using opec_aces::AcesStrategy;
  using opec_metrics::Cdf;
  using opec_metrics::Num;

  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    if (!factory.in_aces_comparison) {
      continue;
    }
    std::unique_ptr<opec_apps::Application> app = factory.make();
    std::printf("=== Figure 10(%s): PT cumulative distribution ===\n", app->name().c_str());

    // OPEC: PT must be 0 for every operation.
    opec_apps::AppRun opec(*app, opec_apps::BuildMode::kOpec);
    std::vector<opec_metrics::DomainPt> opec_pt =
        opec_metrics::ComputeOpecPt(opec.compile()->policy);
    double opec_max = 0;
    for (const opec_metrics::DomainPt& d : opec_pt) {
      opec_max = std::max(opec_max, d.pt());
    }
    std::printf("OPEC: %zu operations, max PT = %.4f (shadowing: always 0)\n", opec_pt.size(),
                opec_max);

    for (AcesStrategy strategy :
         {AcesStrategy::kFilename, AcesStrategy::kFilenameNoOpt, AcesStrategy::kPeripheral}) {
      opec_bench::AcesRunResult aces = opec_bench::RunUnderAces(*app, strategy);
      std::vector<opec_metrics::DomainPt> pts = opec_metrics::ComputeAcesPt(aces.partition);
      std::vector<double> values;
      for (const opec_metrics::DomainPt& d : pts) {
        values.push_back(d.pt());
      }
      auto cdf = Cdf(values);
      std::printf("%s (%zu compartments, %d region merges): CDF points (PT, ratio):",
                  opec_aces::StrategyName(strategy), pts.size(), aces.partition.merge_steps);
      for (const auto& [pt, ratio] : cdf) {
        std::printf(" (%.3f, %.2f)", pt, ratio);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Paper reference (Figure 10): every ACES strategy except PinLock under\n"
              "ACES2/ACES3 shows compartments with PT > 0; OPEC is 0 everywhere.\n");
  return 0;
}
