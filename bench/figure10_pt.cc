// Regenerates Figure 10: the cumulative distribution of the partition-time
// over-privilege value (PT, Eq. 1) per compartment for the five applications
// ACES also evaluated, under the three ACES strategies. OPEC's PT is computed
// too — the shadowing technique makes it identically zero.
//
// The text is produced by opec_bench::Figure10Text (bench/figures_lib.h), the
// same generator the campaign CLI uses; `--jobs N` measures the applications
// concurrently with bit-identical output.

#include <cstdio>

#include "bench/figures_lib.h"

int main(int argc, char** argv) {
  int jobs = opec_bench::ParseJobsFlag(argc, argv, "usage: figure10_pt [--jobs N]");
  std::fputs(opec_bench::Figure10Text(jobs).c_str(), stdout);
  return 0;
}
