// Regenerates Table 1: the security-evaluation metrics for every application
// under OPEC — number of operations, average functions per operation,
// privileged code size (vs the all-privileged baseline), and the average
// accessible global-variable bytes per operation (vs the baseline where every
// global is accessible everywhere).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/support/text.h"

int main() {
  using opec_metrics::Num;
  opec_metrics::Table table(
      {"Application", "#OPs", "#Avg. Funcs", "#Pri. Code(%)", "#Avg. GVars(%)"});

  double sum_ops = 0;
  double sum_funcs = 0;
  double sum_pri = 0;
  double sum_pri_pct = 0;
  double sum_gvars = 0;
  double sum_gvars_pct = 0;
  int n = 0;

  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    opec_apps::AppRun run(*app, opec_apps::BuildMode::kOpec);
    const opec_compiler::Policy& policy = run.compile()->policy;

    size_t ops = policy.operations.size();
    double avg_funcs = 0;
    double avg_gvar_bytes = 0;
    for (const opec_compiler::OperationPolicy& op : policy.operations) {
      avg_funcs += static_cast<double>(op.members.size());
      for (const opec_ir::GlobalVariable* gv : op.needed_globals) {
        avg_gvar_bytes += gv->size();
      }
    }
    avg_funcs /= static_cast<double>(ops);
    avg_gvar_bytes /= static_cast<double>(ops);

    // Baseline: all code privileged, all writable globals accessible.
    uint32_t total_gvar_bytes = 0;
    for (const auto& gv : run.module().globals()) {
      if (!gv->is_const()) {
        total_gvar_bytes += gv->size();
      }
    }
    uint32_t pri_code = policy.accounting.flash_monitor_code;
    uint32_t baseline_code =
        policy.accounting.flash_app_code + policy.accounting.flash_monitor_code;
    double pri_pct = 100.0 * pri_code / baseline_code;
    double gvar_pct =
        total_gvar_bytes == 0 ? 0.0 : 100.0 * avg_gvar_bytes / total_gvar_bytes;

    table.AddRow({app->name(), std::to_string(ops), Num(avg_funcs),
                  opec_support::StrPrintf("%u(%.2f)", pri_code, pri_pct),
                  opec_support::StrPrintf("%.2f(%.2f)", avg_gvar_bytes, gvar_pct)});
    sum_ops += static_cast<double>(ops);
    sum_funcs += avg_funcs;
    sum_pri += pri_code;
    sum_pri_pct += pri_pct;
    sum_gvars += avg_gvar_bytes;
    sum_gvars_pct += gvar_pct;
    ++n;
  }
  table.AddRow({"Average", Num(sum_ops / n), Num(sum_funcs / n),
                opec_support::StrPrintf("%.2f(%.2f)", sum_pri / n, sum_pri_pct / n),
                opec_support::StrPrintf("%.2f(%.2f)", sum_gvars / n, sum_gvars_pct / n)});

  std::printf("Table 1: security evaluation metrics (OPEC)\n%s", table.ToString().c_str());
  std::printf("\nPaper reference (Table 1): PinLock 6 ops, Animation 8, FatFs-uSD 10,\n"
              "LCD-uSD 11, TCP-Echo 9, Camera 9, CoreMark 9; avg priv code ~6.9%%;\n"
              "avg accessible globals ~41%% of baseline.\n");
  return 0;
}
