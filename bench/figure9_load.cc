// Figure 9 (load sweep): OPEC monitor overhead and RV work vs request rate
// for the long-running TCP-Echo server (ISSUE: traffic-at-saturation layer).
//
// For each request rate the generated workload (fixed conns/requests/seed) is
// run under vanilla and OPEC builds, plus an OPEC+RV pass, over both device
// models (PIO Ethernet and descriptor-ring EthernetDma) and both execution
// tiers. Every reported number is *modeled* (machine cycles, cycles/request,
// overhead %, RV automaton steps and states) — no wall clock — so the output
// is byte-identical across `--jobs` values and engines can be diffed
// byte-for-byte in CI. At low rates the inter-frame gap dominates the cycle
// count and the monitor overhead is diluted toward zero; as the rate rises
// the gap collapses and the overhead converges to the busy-loop figure — the
// saturation effect EXPERIMENTS.md's Figure 9 footnote predicts.
//
// Usage: figure9_load [--jobs N] [--engine interp|bytecode|both]
//                     [--requests N] [--seed S]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/apps/tcp_echo.h"
#include "src/campaign/campaign.h"
#include "src/support/check.h"
#include "src/support/table.h"
#include "src/support/text.h"
#include "src/traffic/traffic.h"

namespace {

constexpr uint32_t kRates[] = {200, 1000, 5000, 20000, 100000, 500000};

struct Row {
  uint32_t rate = 0;
  const char* variant = "";
  const char* engine = "";
  uint64_t vanilla_cycles = 0;
  uint64_t opec_cycles = 0;
  uint64_t rv_steps = 0;
  uint64_t rv_states = 0;
  uint32_t echoes = 0;
};

struct Unit {
  uint32_t rate;
  opec_apps::TcpEchoApp::EthVariant variant;
  opec_apps::EngineKind engine;
};

uint64_t RunCycles(const opec_apps::Application& app, opec_apps::BuildMode mode,
                   opec_apps::EngineKind engine, bool rv, uint64_t* rv_steps,
                   uint64_t* rv_states, uint32_t* echoes) {
  opec_apps::AppRun run(app, mode, engine);
  if (rv) {
    run.EnableRv();
  }
  opec_rt::RunResult result = run.Execute();
  OPEC_CHECK_MSG(result.ok, app.name() + " run failed: " + result.violation);
  OPEC_CHECK_MSG(run.Check().empty(), app.name() + ": " + run.Check());
  if (rv) {
    OPEC_CHECK_MSG(run.rv()->total_violations() == 0,
                   app.name() + ": rv violation on a clean load run:\n" +
                       run.rv()->Report());
    uint64_t steps = 0;
    for (size_t i = 0; i < run.rv()->monitor_count(); ++i) {
      steps += run.rv()->monitor(i).steps();
    }
    *rv_steps = steps;
    *rv_states = run.rv()->states_visited();
  }
  if (echoes != nullptr) {
    *echoes = result.return_value;
  }
  return result.cycles;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 1;
  int requests = 96;
  uint64_t seed = 1;
  std::string engine_arg = "both";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    bool has_value = eq != std::string::npos;
    if (has_value) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto take = [&]() -> const char* {
      if (has_value) {
        return value.c_str();
      }
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--jobs" && (v = take()) != nullptr &&
        opec_bench::ParseCount(v, 1, 1024, &jobs)) {
      continue;
    }
    if (arg == "--requests" && (v = take()) != nullptr &&
        opec_bench::ParseCount(v, 1, 1000000, &requests)) {
      continue;
    }
    if (arg == "--seed" && (v = take()) != nullptr) {
      int parsed = 0;
      if (opec_bench::ParseCount(v, 0, 1000000000, &parsed)) {
        seed = static_cast<uint64_t>(parsed);
        continue;
      }
    }
    if (arg == "--engine" && (v = take()) != nullptr &&
        (std::strcmp(v, "interp") == 0 || std::strcmp(v, "bytecode") == 0 ||
         std::strcmp(v, "both") == 0)) {
      engine_arg = v;
      continue;
    }
    std::fprintf(stderr,
                 "usage: figure9_load [--jobs N] [--engine interp|bytecode|both]\n"
                 "                    [--requests N] [--seed S]\n");
    return 2;
  }

  std::vector<opec_apps::EngineKind> engines;
  if (engine_arg == "interp" || engine_arg == "both") {
    engines.push_back(opec_apps::EngineKind::kInterp);
  }
  if (engine_arg == "bytecode" || engine_arg == "both") {
    engines.push_back(opec_apps::EngineKind::kBytecode);
  }

  std::vector<Unit> units;
  for (uint32_t rate : kRates) {
    for (auto variant : {opec_apps::TcpEchoApp::EthVariant::kPio,
                         opec_apps::TcpEchoApp::EthVariant::kDma}) {
      for (opec_apps::EngineKind engine : engines) {
        units.push_back({rate, variant, engine});
      }
    }
  }

  std::vector<Row> rows = opec_campaign::ParallelMap(jobs, units.size(), [&](size_t u) {
    const Unit& unit = units[u];
    opec_traffic::TrafficSpec spec;
    spec.rate_rps = unit.rate;
    spec.requests = static_cast<uint32_t>(requests);
    spec.seed = seed;
    opec_apps::TcpEchoApp app(spec, unit.variant);
    Row row;
    row.rate = unit.rate;
    row.variant = unit.variant == opec_apps::TcpEchoApp::EthVariant::kDma ? "dma" : "pio";
    row.engine = opec_apps::EngineKindName(unit.engine);
    row.vanilla_cycles = RunCycles(app, opec_apps::BuildMode::kVanilla, unit.engine,
                                   false, nullptr, nullptr, &row.echoes);
    row.opec_cycles = RunCycles(app, opec_apps::BuildMode::kOpec, unit.engine, false,
                                nullptr, nullptr, nullptr);
    // RV is a passive observer (modeled cycles are unchanged by construction);
    // its cost is reported as deterministic automaton work per request.
    uint64_t rv_cycles = RunCycles(app, opec_apps::BuildMode::kOpec, unit.engine, true,
                                   &row.rv_steps, &row.rv_states, nullptr);
    OPEC_CHECK_MSG(rv_cycles == row.opec_cycles,
                   "RV observer changed modeled cycles on the load run");
    return row;
  });

  std::printf("Figure 9 (load sweep): OPEC overhead and RV work vs request rate\n");
  std::printf("TCP-Echo server, %d requests, seed %llu; modeled cycles only\n\n", requests,
              static_cast<unsigned long long>(seed));
  opec_support::Table table({"rate (req/s)", "dev", "engine", "vanilla cycles",
                             "opec cycles", "overhead %", "rv steps/req", "rv states",
                             "echoes"});
  for (const Row& row : rows) {
    double overhead = row.vanilla_cycles == 0
                          ? 0.0
                          : 100.0 *
                                (static_cast<double>(row.opec_cycles) -
                                 static_cast<double>(row.vanilla_cycles)) /
                                static_cast<double>(row.vanilla_cycles);
    double steps_per_req =
        row.echoes == 0 ? 0.0
                        : static_cast<double>(row.rv_steps) / static_cast<double>(row.echoes);
    table.AddRow({opec_support::StrPrintf("%u", row.rate), row.variant, row.engine,
                  opec_support::StrPrintf("%llu",
                                          static_cast<unsigned long long>(row.vanilla_cycles)),
                  opec_support::StrPrintf("%llu",
                                          static_cast<unsigned long long>(row.opec_cycles)),
                  opec_support::StrPrintf("%.2f", overhead),
                  opec_support::StrPrintf("%.1f", steps_per_req),
                  opec_support::StrPrintf("%llu",
                                          static_cast<unsigned long long>(row.rv_states)),
                  opec_support::StrPrintf("%u", row.echoes)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
