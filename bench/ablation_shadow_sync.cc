// Ablation (DESIGN.md §3.1): the cost of global-data shadowing as the shared
// state grows. A synthetic two-operation program shares one buffer of size N;
// we report the guest-cycle cost of one enter+exit switch pair, which is
// dominated by the shadow synchronization (4 copies of the buffer per pair:
// write-back + copy-in on enter, and again on exit).

#include <cstdio>

#include "src/compiler/opec_compiler.h"
#include "src/ir/builder.h"
#include "src/metrics/report.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"

namespace {

using opec_ir::FunctionBuilder;
using opec_ir::Val;

uint64_t MeasureSwitchPairCycles(uint32_t shared_bytes, int switches) {
  opec_ir::Module m("sync");
  auto& tt = m.types();
  m.AddGlobal("buf", tt.ArrayOf(tt.U8(), shared_bytes));
  {
    auto* fn = m.AddFunction("Task", tt.FunctionTy(tt.VoidTy(), {}), {});
    FunctionBuilder b(m, fn);
    b.Assign(b.Idx(b.G("buf"), 0u), b.U8(1));  // touch the buffer (shares it)
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("main", tt.FunctionTy(tt.U32(), {}), {});
    FunctionBuilder b(m, fn);
    Val i = b.Local("i", tt.U32());
    b.Assign(b.Idx(b.G("buf"), 1u), b.U8(2));  // main shares it too
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(static_cast<uint32_t>(switches)));
    {
      b.Call("Task");
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Ret(b.U32(0));
    b.Finish();
  }
  opec_hw::SocDescription soc;
  opec_compiler::PartitionConfig config;
  config.entries.push_back({"Task", {}});
  opec_hw::Machine machine(opec_hw::Board::kStm32479iEval);
  opec_compiler::CompileResult compile =
      opec_compiler::CompileOpec(m, soc, config, machine.board().board);
  opec_monitor::Monitor monitor(machine, compile.policy, soc);
  opec_compiler::LoadGlobals(machine, m, compile.layout);
  opec_rt::ExecutionEngine engine(machine, m, compile.layout, &monitor);
  opec_rt::RunResult r = engine.Run("main");
  if (!r.ok) {
    std::fprintf(stderr, "run failed: %s\n", r.violation.c_str());
    return 0;
  }
  return r.cycles / static_cast<uint64_t>(switches);
}

}  // namespace

int main() {
  opec_metrics::Table table({"Shared bytes", "Cycles per enter+exit pair"});
  for (uint32_t bytes : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    table.AddRow({std::to_string(bytes), std::to_string(MeasureSwitchPairCycles(bytes, 50))});
  }
  std::printf("Ablation: shadow-synchronization cost vs shared-state size\n%s",
              table.ToString().c_str());
  std::printf("\nExpected shape: cost grows linearly with the shared bytes — the price\n"
              "OPEC pays (in cycles and SRAM) for driving partition-time over-privilege\n"
              "to zero, vs ACES's free-but-over-privileged merged regions.\n");
  return 0;
}
