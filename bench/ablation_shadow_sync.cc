// Ablation (DESIGN.md §3.1): the cost of global-data shadowing as the shared
// state grows. A synthetic two-operation program shares one buffer of size N;
// we report the guest-cycle cost of one enter+exit switch pair, which is
// dominated by the shadow synchronization (4 copies of the buffer per pair:
// write-back + copy-in on enter, and again on exit).
//
// The text is produced by opec_bench::AblationShadowSyncText
// (bench/figures_lib.h); `--jobs N` measures the buffer sizes concurrently
// with bit-identical output.

#include <cstdio>

#include "bench/figures_lib.h"

int main(int argc, char** argv) {
  int jobs = opec_bench::ParseJobsFlag(argc, argv, "usage: ablation_shadow_sync [--jobs N]");
  std::fputs(opec_bench::AblationShadowSyncText(jobs).c_str(), stdout);
  return 0;
}
