// Regenerates Table 3: efficiency of the indirect-call analysis — number of
// icalls, how many the points-to analysis (the SVF stand-in) resolves, solve
// time, how many fall back to type-based matching, and the average/maximum
// target counts.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/call_graph.h"
#include "src/metrics/report.h"
#include "src/support/text.h"

int main() {
  using opec_metrics::Num;
  opec_metrics::Table table(
      {"Application", "#Icall", "#SVF", "Time(s)", "#Type", "#Avg.", "#Max"});

  for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
    std::unique_ptr<opec_apps::Application> app = factory.make();
    std::unique_ptr<opec_ir::Module> module = app->BuildModule();
    opec_analysis::PointsToAnalysis pta(*module);
    opec_analysis::CallGraph cg = opec_analysis::CallGraph::Build(*module, pta);
    opec_analysis::ICallStats stats = cg.Stats();
    table.AddRow({app->name(), std::to_string(stats.num_icalls),
                  std::to_string(stats.resolved_by_pta),
                  opec_support::StrPrintf("%.4f", stats.pta_seconds),
                  std::to_string(stats.resolved_by_type), Num(stats.avg_targets),
                  std::to_string(stats.max_targets)});
  }

  std::printf("Table 3: efficiency of the icall analysis\n%s", table.ToString().c_str());
  std::printf("\nPaper reference (Table 3): most icalls resolved by the points-to\n"
              "analysis, the rest by type matching; small average target counts\n"
              "(<= 2) and small maxima (<= 5). This reproduction's applications carry\n"
              "fewer icall sites than the vendor HAL code, but exercise both\n"
              "resolution paths (see EXPERIMENTS.md).\n");
  return 0;
}
