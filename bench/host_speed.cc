// Host-speed benchmark: wall-clock cost of the simulation pipeline itself.
//
// Times image build + execution for the three hottest tier-1 workloads
// (CoreMark, FatFs-uSD, TCP-Echo) under both configurations and writes
// BENCH_host_speed.json. Modeled outputs (cycles, statements) are recorded so
// a --baseline comparison can verify that host-side optimizations never
// change the modeled numbers (the invariant documented in DESIGN.md,
// "Performance of the harness").
//
// Usage:
//   host_speed [--engine interp|bytecode] [--iters N] [--jobs N] [--out FILE]
//              [--baseline FILE] [--smoke] [--trace-out FILE] [--self-check-obs]
//              [--rv on|off|report]
//
// --engine selects the execution tier (default interp). Modeled outputs are
// bit-identical across tiers, so `--engine bytecode --baseline interp.json`
// measures the tier speedup while hard-failing on any modeled drift.
//
// --jobs N measures the workload/configuration units concurrently on the
// campaign thread pool (each unit is a fully isolated Machine/AppRun, so the
// modeled outputs are unchanged); the JSON records the job count plus total
// vs sum-of-units wall time so serial and parallel runs can be compared.
//
// With --baseline, the previous run's metrics are embedded in the output and
// per-configuration "speedup" factors (baseline wall_ns / current wall_ns)
// are computed; a modeled-cycle mismatch against the baseline is a hard
// error (exit 1).
//
// --trace-out writes a combined Chrome trace-event JSON of one recorded run
// per workload/configuration (untimed; the timed iterations always run with
// no sink attached). --self-check-obs skips the benchmark and instead runs
// each workload with and without an event sink attached, failing (exit 1) on
// any modeled cycle/statement drift — the observability overhead contract —
// and then re-runs with a Recorder sized to hold the full stream, failing on
// any dropped event (truncated traces must never pass silently).
//
// --rv on adds a second timed pass per unit with the runtime-verification
// monitors (src/rv) attached, emitting <unit>.rv_exec_ns and
// <unit>.rv_overhead_pct so the RV cost is tracked next to the base numbers
// (EXPERIMENTS.md pins the CoreMark-OPEC budget). --rv report additionally
// prints each unit's deterministic RV report. Default off: baseline files
// from earlier versions stay comparable.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/campaign/campaign.h"
#include "src/obs/export.h"
#include "src/obs/recorder.h"
#include "src/traffic/traffic.h"
#include "src/support/check.h"

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

struct Sample {
  uint64_t build_ns = 0;  // AppRun construction: compile/analysis + image load
  uint64_t exec_ns = 0;   // Execute(): the interpreter + monitor
  uint64_t cycles = 0;    // modeled machine cycles (must be host-invariant)
  uint64_t statements = 0;
  uint64_t wall_ns() const { return build_ns + exec_ns; }
};

Sample RunOnce(const opec_apps::Application& app, opec_apps::BuildMode mode,
               opec_apps::EngineKind engine, opec_obs::Sink* sink = nullptr,
               bool rv = false, std::string* rv_report = nullptr) {
  Sample s;
  Clock::time_point t0 = Clock::now();
  opec_apps::AppRun run(app, mode, engine);
  s.build_ns = NsSince(t0);
  if (sink != nullptr) {
    run.AttachSink(sink);
  }
  if (rv) {
    run.EnableRv();
  }
  Clock::time_point t1 = Clock::now();
  opec_rt::RunResult r = run.Execute();
  s.exec_ns = NsSince(t1);
  OPEC_CHECK_MSG(r.ok, app.name() + " run failed: " + r.violation);
  OPEC_CHECK_MSG(run.Check().empty(), app.name() + ": " + run.Check());
  if (rv) {
    OPEC_CHECK_MSG(run.rv()->total_violations() == 0,
                   app.name() + ": rv violation on a clean benchmark run:\n" +
                       run.rv()->Report());
    if (rv_report != nullptr) {
      *rv_report = run.rv()->Report();
    }
  }
  s.cycles = r.cycles;
  s.statements = r.statements;
  return s;
}

// A sink that only counts, so the with-sink self-check run observes every
// event while keeping memory flat on the long workloads.
class CountingSink : public opec_obs::Sink {
 public:
  void OnEvent(const opec_obs::Event&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

std::string KeyName(const std::string& app_name) {
  std::string key;
  for (char c : app_name) {
    if (c == '-') {
      key += '_';
    } else {
      key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return key;
}

// Parses the flat "metrics" section of a previous host_speed output. The
// format is line-oriented by construction: every metric is emitted on its own
// line as `"<key>": <integer-or-float>,` so a full JSON parser is not needed.
std::map<std::string, double> LoadBaseline(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  OPEC_CHECK_MSG(in.good(), "cannot open baseline file: " + path);
  std::string line;
  bool in_metrics = false;
  while (std::getline(in, line)) {
    if (line.find("\"metrics\"") != std::string::npos) {
      in_metrics = true;
      continue;
    }
    if (!in_metrics) {
      continue;
    }
    if (line.find('}') != std::string::npos && line.find(':') == std::string::npos) {
      break;  // end of the metrics object
    }
    size_t k0 = line.find('"');
    size_t k1 = line.find('"', k0 + 1);
    size_t colon = line.find(':', k1 == std::string::npos ? 0 : k1);
    if (k0 == std::string::npos || k1 == std::string::npos || colon == std::string::npos) {
      continue;
    }
    std::string key = line.substr(k0 + 1, k1 - k0 - 1);
    out[key] = std::strtod(line.c_str() + colon + 1, nullptr);
  }
  return out;
}

struct Config {
  const char* name;
  opec_apps::BuildMode mode;
};
constexpr Config kConfigs[] = {{"vanilla", opec_apps::BuildMode::kVanilla},
                               {"opec", opec_apps::BuildMode::kOpec}};

// The observability overhead contract (DESIGN.md Section 9): an attached sink
// must not change any modeled output. Runs every workload/configuration with
// no sink and with a counting sink; any cycle/statement drift is a failure.
// The printed lines carry no engine name on purpose: CI diffs the interp and
// bytecode outputs byte for byte, which doubles as the cross-tier
// modeled-output check.
// AllApps() ∪ TrafficApps(): the wanted-name filter picks the measured set.
std::vector<opec_apps::AppFactory> BenchRegistry() {
  std::vector<opec_apps::AppFactory> apps = opec_apps::AllApps();
  for (opec_apps::AppFactory& factory : opec_apps::TrafficApps()) {
    apps.push_back(std::move(factory));
  }
  return apps;
}

int SelfCheckObs(const std::vector<std::string>& wanted, opec_apps::EngineKind engine) {
  bool drift = false;
  bool lost = false;
  for (const opec_apps::AppFactory& factory : BenchRegistry()) {
    if (std::find(wanted.begin(), wanted.end(), factory.name) == wanted.end()) {
      continue;
    }
    std::unique_ptr<opec_apps::Application> app = factory.make();
    for (const Config& cfg : kConfigs) {
      Sample plain = RunOnce(*app, cfg.mode, engine);
      CountingSink sink;
      Sample observed = RunOnce(*app, cfg.mode, engine, &sink);
      bool same =
          plain.cycles == observed.cycles && plain.statements == observed.statements;
      std::printf("self-check %-12s %-8s cycles %llu/%llu statements %llu/%llu "
                  "(%llu events)  %s\n",
                  factory.name.c_str(), cfg.name,
                  static_cast<unsigned long long>(plain.cycles),
                  static_cast<unsigned long long>(observed.cycles),
                  static_cast<unsigned long long>(plain.statements),
                  static_cast<unsigned long long>(observed.statements),
                  static_cast<unsigned long long>(sink.count()), same ? "OK" : "DRIFT");
      if (!same) {
        drift = true;
      }
      // Loss check: a Recorder sized from the counting run must retain the
      // entire stream. Any drop here means a truncated trace export would
      // have claimed to be complete.
      opec_obs::Recorder recorder(
          std::max<size_t>(opec_obs::Recorder::kDefaultCapacity, sink.count()));
      RunOnce(*app, cfg.mode, engine, &recorder);
      std::printf("self-check %-12s %-8s recorded %zu/%llu events dropped %llu  %s\n",
                  factory.name.c_str(), cfg.name, recorder.size(),
                  static_cast<unsigned long long>(recorder.total()),
                  static_cast<unsigned long long>(recorder.dropped()),
                  recorder.dropped() == 0 ? "OK" : "LOSS");
      if (recorder.dropped() != 0) {
        lost = true;
      }
    }
  }
  if (drift) {
    std::fprintf(stderr, "FAIL: attached sink changed modeled outputs\n");
  }
  if (lost) {
    std::fprintf(stderr, "FAIL: a full-capacity recorder dropped events\n");
  }
  if (drift || lost) {
    return 1;
  }
  std::printf("self-check passed: event sinks leave modeled outputs bit-identical "
              "and lose no events\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 5;
  int jobs = 1;
  opec_apps::EngineKind engine = opec_apps::EngineKind::kInterp;
  std::string out_path = "BENCH_host_speed.json";
  std::string baseline_path;
  std::string trace_path;
  std::string rv_arg = "off";
  bool self_check_obs = false;
  bool measure_traffic = false;
  for (int i = 1; i < argc; ++i) {
    // Flags accept both `--flag value` and `--flag=value`.
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    bool has_value = eq != std::string::npos;
    if (has_value) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto take = [&]() -> const char* {
      if (has_value) {
        return value.c_str();
      }
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--iters") {
      const char* v = take();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1000000, &iters)) {
        std::fprintf(stderr, "invalid --iters '%s'; expected an integer >= 1\n",
                     v == nullptr ? "" : v);
        return 2;
      }
    } else if (arg == "--jobs") {
      const char* v = take();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1024, &jobs)) {
        std::fprintf(stderr, "invalid --jobs '%s'; expected an integer in [1, 1024]\n",
                     v == nullptr ? "" : v);
        return 2;
      }
    } else if (arg == "--engine") {
      const char* v = take();
      if (v != nullptr && std::strcmp(v, "interp") == 0) {
        engine = opec_apps::EngineKind::kInterp;
      } else if (v != nullptr && std::strcmp(v, "bytecode") == 0) {
        engine = opec_apps::EngineKind::kBytecode;
      } else {
        std::fprintf(stderr, "invalid --engine '%s'; valid tiers are: interp bytecode\n",
                     v == nullptr ? "" : v);
        return 2;
      }
    } else if (arg == "--out") {
      const char* v = take();
      if (v == nullptr) return 2;
      out_path = v;
    } else if (arg == "--baseline") {
      const char* v = take();
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--trace-out") {
      const char* v = take();
      if (v == nullptr) return 2;
      trace_path = v;
    } else if (arg == "--rv") {
      const char* v = take();
      if (v == nullptr || (std::strcmp(v, "on") != 0 && std::strcmp(v, "off") != 0 &&
                           std::strcmp(v, "report") != 0)) {
        std::fprintf(stderr, "invalid --rv '%s'; expected on, off or report\n",
                     v == nullptr ? "" : v);
        return 2;
      }
      rv_arg = v;
    } else if (arg == "--self-check-obs") {
      self_check_obs = true;
    } else if (arg == "--smoke") {
      iters = 1;
    } else if (arg == "--traffic") {
      const char* v = take();
      opec_traffic::TrafficSpec traffic_spec;
      std::string error;
      if (v == nullptr || !opec_traffic::ParseTrafficSpec(v, &traffic_spec, &error)) {
        std::fprintf(stderr, "invalid --traffic '%s': %s\n", v == nullptr ? "" : v,
                     error.c_str());
        return 2;
      }
      opec_traffic::SetDefaultLoadSpec(traffic_spec);
      measure_traffic = true;
    } else {
      std::fprintf(stderr,
                   "usage: host_speed [--engine interp|bytecode] [--iters N] [--jobs N] "
                   "[--out FILE] [--baseline FILE] [--trace-out FILE] [--self-check-obs] "
                   "[--rv on|off|report] [--traffic rate=N,conns=M,seed=S[,...]]\n");
      return 2;
    }
  }
  OPEC_CHECK_MSG(iters >= 1, "--iters must be >= 1");
  OPEC_CHECK_MSG(jobs >= 1, "--jobs must be >= 1");

  std::vector<std::string> wanted = {"CoreMark", "FatFs-uSD", "TCP-Echo"};
  if (measure_traffic) {
    // --traffic adds the long-running load variants to the measured set; the
    // paper-line-up units and their metric keys stay untouched.
    wanted.push_back("TCP-Echo-Load");
    wanted.push_back("TCP-Echo-DMA");
  }
  if (self_check_obs) {
    return SelfCheckObs(wanted, engine);
  }
  std::vector<opec_obs::TraceProcess> trace_processes;

  // key -> value, in insertion order for stable output.
  std::vector<std::pair<std::string, double>> metrics;
  auto emit = [&](const std::string& key, double v) { metrics.emplace_back(key, v); };

  // One measurement unit per (workload, configuration). Units run inline with
  // --jobs 1 or concurrently on the campaign pool; every unit builds its own
  // Application/AppRun, so the modeled outputs are identical either way.
  // Printing and metric emission happen on the main thread afterwards, in
  // unit order, so the report is also identical.
  struct Unit {
    const opec_apps::AppFactory* factory;
    const Config* cfg;
  };
  struct UnitResult {
    Sample best;
    uint64_t unit_wall_ns = 0;  // elapsed inside this unit (all iterations)
    bool has_trace = false;
    opec_obs::TraceProcess trace;
    bool has_rv = false;
    Sample best_rv;
    std::string rv_report;
  };
  const std::vector<opec_apps::AppFactory> all_apps = BenchRegistry();
  std::vector<Unit> units;
  for (const opec_apps::AppFactory& factory : all_apps) {
    if (std::find(wanted.begin(), wanted.end(), factory.name) == wanted.end()) {
      continue;
    }
    for (const Config& cfg : kConfigs) {
      units.push_back({&factory, &cfg});
    }
  }

  Clock::time_point total_t0 = Clock::now();
  std::vector<UnitResult> unit_results =
      opec_campaign::ParallelMap(jobs, units.size(), [&](size_t u) {
        const opec_apps::AppFactory& factory = *units[u].factory;
        const Config& cfg = *units[u].cfg;
        std::unique_ptr<opec_apps::Application> app = factory.make();
        UnitResult out;
        Clock::time_point u0 = Clock::now();
        for (int it = 0; it < iters; ++it) {
          Sample s = RunOnce(*app, cfg.mode, engine);
          if (it == 0 || s.wall_ns() < out.best.wall_ns()) {
            out.best = s;
          }
          if (it > 0) {
            OPEC_CHECK_MSG(s.cycles == out.best.cycles,
                           factory.name + ": modeled cycles vary across iterations");
          }
        }
        if (rv_arg != "off") {
          // Second timed pass with the runtime-verification monitors attached.
          // Modeled outputs must not move: RV is an observer.
          for (int it = 0; it < iters; ++it) {
            Sample s = RunOnce(*app, cfg.mode, engine, nullptr, /*rv=*/true,
                               it == 0 ? &out.rv_report : nullptr);
            OPEC_CHECK_MSG(s.cycles == out.best.cycles,
                           factory.name + ": rv monitors changed modeled cycles");
            OPEC_CHECK_MSG(s.statements == out.best.statements,
                           factory.name + ": rv monitors changed statement count");
            if (it == 0 || s.wall_ns() < out.best_rv.wall_ns()) {
              out.best_rv = s;
            }
          }
          out.has_rv = true;
        }
        if (!trace_path.empty()) {
          // Untimed recorded run; one process track per workload/configuration.
          opec_apps::AppRun run(*app, cfg.mode, engine);
          run.EnableEventRecording();
          opec_rt::RunResult r = run.Execute();
          OPEC_CHECK_MSG(r.ok, factory.name + " trace run failed: " + r.violation);
          OPEC_CHECK_MSG(r.cycles == out.best.cycles,
                         factory.name + ": recorded run changed modeled cycles");
          out.has_trace = true;
          out.trace = {KeyName(factory.name) + "." + cfg.name, run.recorder()->Snapshot(),
                       run.EventNaming(), run.recorder()->dropped()};
        }
        out.unit_wall_ns = NsSince(u0);
        return out;
      });
  uint64_t total_wall_ns = NsSince(total_t0);
  uint64_t units_wall_ns = 0;

  for (size_t u = 0; u < units.size(); ++u) {
    const opec_apps::AppFactory& factory = *units[u].factory;
    const Config& cfg = *units[u].cfg;
    const Sample& best = unit_results[u].best;
    units_wall_ns += unit_results[u].unit_wall_ns;
    std::string prefix = KeyName(factory.name) + "." + cfg.name + ".";
    emit(prefix + "wall_ns", static_cast<double>(best.wall_ns()));
    emit(prefix + "build_ns", static_cast<double>(best.build_ns));
    emit(prefix + "exec_ns", static_cast<double>(best.exec_ns));
    emit(prefix + "cycles", static_cast<double>(best.cycles));
    emit(prefix + "statements", static_cast<double>(best.statements));
    emit(prefix + "ns_per_statement",
         opec_bench::NsPerStatement(best.exec_ns, best.statements));
    std::printf("%-12s %-8s wall %8.2f ms  (build %6.2f ms, exec %8.2f ms)  "
                "%.1f ns/stmt  cycles=%llu\n",
                factory.name.c_str(), cfg.name, best.wall_ns() / 1e6, best.build_ns / 1e6,
                best.exec_ns / 1e6,
                opec_bench::NsPerStatement(best.exec_ns, best.statements),
                static_cast<unsigned long long>(best.cycles));
    if (unit_results[u].has_rv) {
      const Sample& rv = unit_results[u].best_rv;
      double overhead_pct =
          best.exec_ns == 0
              ? 0.0
              : (static_cast<double>(rv.exec_ns) - static_cast<double>(best.exec_ns)) *
                    100.0 / static_cast<double>(best.exec_ns);
      emit(prefix + "rv_exec_ns", static_cast<double>(rv.exec_ns));
      emit(prefix + "rv_overhead_pct", overhead_pct);
      std::printf("%-12s %-8s   rv exec %8.2f ms  (overhead %+.1f%%)\n",
                  factory.name.c_str(), cfg.name, rv.exec_ns / 1e6, overhead_pct);
    }
    if (unit_results[u].has_trace) {
      trace_processes.push_back(std::move(unit_results[u].trace));
    }
  }
  if (rv_arg == "report") {
    for (size_t u = 0; u < units.size(); ++u) {
      if (!unit_results[u].has_rv) {
        continue;
      }
      std::printf("--- %s.%s\n%s", KeyName(units[u].factory->name).c_str(),
                  units[u].cfg->name, unit_results[u].rv_report.c_str());
    }
  }
  std::printf("jobs %d: total wall %.2f ms, sum of units %.2f ms (%.2fx)\n", jobs,
              total_wall_ns / 1e6, units_wall_ns / 1e6,
              static_cast<double>(units_wall_ns) / static_cast<double>(total_wall_ns));

  if (!trace_path.empty()) {
    OPEC_CHECK_MSG(opec_obs::WriteFile(trace_path, opec_obs::ChromeTraceJson(trace_processes)),
                   "cannot write " + trace_path);
    std::printf("wrote %s (%zu process tracks)\n", trace_path.c_str(),
                trace_processes.size());
  }

  std::map<std::string, double> baseline;
  bool modeled_mismatch = false;
  if (!baseline_path.empty()) {
    baseline = LoadBaseline(baseline_path);
    OPEC_CHECK_MSG(!baseline.empty(), "baseline file has no metrics: " + baseline_path);
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"schema\": \"opec-host-speed-v1\",\n";
  json << "  \"engine\": \"" << opec_apps::EngineKindName(engine) << "\",\n";
  json << "  \"iterations\": " << iters << ",\n";
  json << "  \"jobs\": " << jobs << ",\n";
  json << "  \"metrics\": {\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", metrics[i].second);
    json << "    \"" << metrics[i].first << "\": " << buf
         << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  json << "  }";
  {
    // Serial-vs-parallel accounting: `units_wall_ns` is what the same
    // measurement costs end to end on one thread; `total_wall_ns` is what
    // this run actually took with `jobs` workers.
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"timing\": {\n"
                  "    \"total_wall_ns\": %llu,\n"
                  "    \"units_wall_ns\": %llu,\n"
                  "    \"parallel_speedup\": %.2f\n  }",
                  static_cast<unsigned long long>(total_wall_ns),
                  static_cast<unsigned long long>(units_wall_ns),
                  static_cast<double>(units_wall_ns) / static_cast<double>(total_wall_ns));
    json << buf;
  }
  if (!baseline.empty()) {
    json << ",\n  \"baseline\": {\n";
    size_t i = 0;
    for (const auto& [key, value] : baseline) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", value);
      json << "    \"" << key << "\": " << buf << (++i < baseline.size() ? ",\n" : "\n");
    }
    json << "  },\n  \"speedup\": {\n";
    std::vector<std::string> lines;
    for (const auto& [key, value] : metrics) {
      const std::string suffix = ".wall_ns";
      if (key.size() <= suffix.size() ||
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
        // Modeled outputs must be bit-identical to the baseline.
        if ((key.find(".cycles") != std::string::npos ||
             key.find(".statements") != std::string::npos) &&
            baseline.count(key) != 0 && baseline[key] != value) {
          std::fprintf(stderr, "MODELED OUTPUT CHANGED: %s baseline=%.0f now=%.0f\n",
                       key.c_str(), baseline[key], value);
          modeled_mismatch = true;
        }
        continue;
      }
      if (baseline.count(key) == 0) {
        continue;
      }
      std::string name = key.substr(0, key.size() - suffix.size());
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f", baseline[key] / value);
      lines.push_back("    \"" + name + "\": " + buf);
      std::printf("speedup %-22s %sx\n", name.c_str(), buf);
    }
    for (size_t j = 0; j < lines.size(); ++j) {
      json << lines[j] << (j + 1 < lines.size() ? ",\n" : "\n");
    }
    json << "  }";
  }
  json << "\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::printf("wrote %s\n", out_path.c_str());
  if (modeled_mismatch) {
    std::fprintf(stderr, "FAIL: modeled outputs changed relative to baseline\n");
    return 1;
  }
  return 0;
}
