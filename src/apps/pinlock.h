// PinLock (Listing 1): a smart lock on the STM32F4-Discovery board. Six
// developer-designated operations (System_Init, Uart_Init, Key_Init,
// Init_Lock, Unlock_Task, Lock_Task) plus the default main operation.
//
// Guest structure mirrors the paper's case study:
//   * PinRxBuffer (u8[16]) is shared: both Unlock_Task and Lock_Task receive
//     input through HAL_UART_Receive_IT, which writes the buffer through the
//     huart2 handle's pointer field.
//   * KEY (u32) is written by Key_Init and read by Unlock_Task — and is NOT
//     in Lock_Task's operation data section, which is what defeats the
//     Section 6.1 attack.
//   * lock_state is sanitized to [0, 1].
//   * Unlock_Task takes a pointer argument (the prompt buffer on main's
//     stack), exercising the Figure 8 stack relocation.

#ifndef SRC_APPS_PINLOCK_H_
#define SRC_APPS_PINLOCK_H_

#include "src/apps/app.h"
#include "src/hw/devices/gpio.h"
#include "src/hw/devices/rcc.h"
#include "src/hw/devices/uart.h"

namespace opec_apps {

struct PinLockDevices : AppDevices {
  opec_hw::Uart* uart = nullptr;
  opec_hw::Gpio* lock_gpio = nullptr;
  opec_hw::Rcc* rcc = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

class PinLockApp : public Application {
 public:
  // Number of (correct pin, lock, wrong pin, lock) rounds in the scenario.
  explicit PinLockApp(int rounds = 100) : rounds_(rounds) {}

  std::string name() const override { return "PinLock"; }
  opec_hw::Board board() const override { return opec_hw::Board::kStm32F4Discovery; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(AppDevices& devices) const override;
  std::string CheckScenario(const AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

 private:
  int rounds_;
};

}  // namespace opec_apps

#endif  // SRC_APPS_PINLOCK_H_
