// CoreMark-like benchmark: list processing, matrix manipulation, a finite
// state machine and CRC-16, all in guest IR — the compute-bound workload with
// the paper's highest runtime overhead (no I/O waits to hide monitor work).
// Nine operations: System_Init, Bench_Init, List_Bench, Matrix_Bench,
// State_Bench, Crc_Bench, Validate, Report + main.

#ifndef SRC_APPS_COREMARK_H_
#define SRC_APPS_COREMARK_H_

#include "src/apps/app.h"
#include "src/hw/devices/rcc.h"
#include "src/hw/devices/uart.h"

namespace opec_apps {

struct CoreMarkDevices : AppDevices {
  opec_hw::Uart* uart = nullptr;
  opec_hw::Rcc* rcc = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

class CoreMarkApp : public Application {
 public:
  explicit CoreMarkApp(int iterations = 10) : iterations_(iterations) {}

  std::string name() const override { return "CoreMark"; }
  opec_hw::Board board() const override { return opec_hw::Board::kStm32F4Discovery; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(AppDevices& devices) const override;
  std::string CheckScenario(const AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

 private:
  int iterations_;
};

}  // namespace opec_apps

#endif  // SRC_APPS_COREMARK_H_
