// AppRun: builds an application image (vanilla or OPEC), loads it into a
// machine, runs the scenario and exposes everything for inspection. This is
// what the tests, examples and benches drive.

#ifndef SRC_APPS_RUNNER_H_
#define SRC_APPS_RUNNER_H_

#include <memory>
#include <string>

#include <vector>

#include "src/apps/app.h"
#include "src/compiler/opec_compiler.h"
#include "src/monitor/monitor.h"
#include "src/obs/export.h"
#include "src/obs/recorder.h"
#include "src/rt/engine.h"
#include "src/rt/trace.h"
#include "src/rv/rv.h"
#include "src/snapshot/probe.h"
#include "src/snapshot/snapshot.h"

namespace opec_apps {

enum class BuildMode {
  kVanilla,  // no isolation, everything privileged (the baseline binary)
  kOpec,     // OPEC-compiled, monitor-enforced
};

// Which execution tier runs the guest. Both produce bit-identical modeled
// cycles, statements and obs events (src/rt/engine.h); the bytecode VM is the
// fast tier, the interpreter the reference oracle.
enum class EngineKind {
  kInterp,    // tree-walking ExecutionEngine
  kBytecode,  // lowered bytecode VM
};

const char* EngineKindName(EngineKind kind);

class AppRun {
 public:
  AppRun(const Application& app, BuildMode mode,
         EngineKind engine_kind = EngineKind::kInterp);
  ~AppRun();

  AppRun(const AppRun&) = delete;
  AppRun& operator=(const AppRun&) = delete;

  // Optional instrumentation; call before Execute().
  void AddAttack(const opec_rt::AttackSpec& attack);
  void EnableTrace() { trace_enabled_ = true; }
  // Records the full structured event stream of Execute() into a ring buffer
  // (see recorder()), for exporters / the per-operation profiler.
  void EnableEventRecording(size_t capacity = opec_obs::Recorder::kDefaultCapacity);
  // Attaches an additional event sink (not owned) for the duration of
  // Execute(); call before Execute().
  void AttachSink(opec_obs::Sink* sink) { extra_sinks_.push_back(sink); }
  // Attaches the runtime-verification monitors (src/rv, DESIGN.md §15) for
  // Execute(): the standard safety automata built over this run's MPU and —
  // in OPEC mode — the policy's shadow-ownership map. Also forced on for
  // every Execute() when the OPEC_RV environment variable is set non-zero.
  void EnableRv();

  // Loads the image, feeds the scenario and runs main.
  opec_rt::RunResult Execute();

  // --- Snapshot integration (DESIGN.md §13) ---
  // Captures the post-build, pre-run machine state (globals loaded, devices
  // reset, scenario not yet fed). RestoreBoot() rewinds to it and rebuilds
  // the monitor and engine fresh — everything Execute() needs, without
  // re-running BuildModule/CompileOpec/LoadGlobals. This is the warm-start
  // path campaign jobs fork from.
  void CaptureBoot();
  // Adopts a boot snapshot captured by another AppRun of the same (app, mode)
  // — possibly in another process (the dist artifact cache, DESIGN.md §16) —
  // instead of capturing one: restores it into this machine, arms the
  // dirty-page baseline, and rebuilds monitor + engine exactly as RestoreBoot
  // does. Provenance (board sizes, module entry table) is checked by the
  // section LoadState methods; a cross-provenance snapshot is an OPEC_CHECK
  // error, never silent corruption.
  void AdoptBootSnapshot(opec_snapshot::Snapshot snapshot);
  bool has_boot_snapshot() const { return boot_snapshot_ != nullptr; }
  const opec_snapshot::Snapshot& boot_snapshot() const { return *boot_snapshot_; }
  void RestoreBoot();
  // Wraps the engine's supervisor in a RoundTripProbe (fuzz oracle 5): every
  // SVC boundary capture→restores the full state in place. Call before
  // Execute(); reset by RestoreBoot().
  void EnableSnapshotProbe();
  const opec_snapshot::RoundTripProbe* probe() const { return probe_.get(); }
  // Full machine+monitor+engine snapshot of the current state. Only valid at
  // quiescent points (see Engine::SaveState).
  opec_snapshot::Snapshot CaptureState() const;

  // Scenario output verification (valid after Execute()).
  std::string Check() const;

  // --- Inspection ---
  opec_hw::Machine& machine() { return *machine_; }
  AppDevices& devices() { return *devices_; }
  opec_ir::Module& module() { return *module_; }
  const opec_rt::ExecutionTrace& trace() const { return trace_; }
  // Null unless EnableEventRecording() was called.
  opec_obs::Recorder* recorder() { return recorder_.get(); }
  // Null unless EnableRv() was called (or OPEC_RV forced it during Execute()).
  opec_rv::RvSink* rv() { return rv_.get(); }
  // Ordinal/id -> name resolution for exporters (function names from the
  // module; operation names from the policy in OPEC mode).
  opec_obs::Naming EventNaming() const;
  opec_rt::Engine& engine() { return *engine_; }
  EngineKind engine_kind() const { return engine_kind_; }
  // The address assignment in effect: the OPEC layout in OPEC mode, the flat
  // vanilla layout otherwise.
  const opec_rt::AddressAssignment& layout() const {
    return compile_ != nullptr ? compile_->layout : vanilla_layout_;
  }
  // OPEC-only (null in vanilla mode).
  const opec_compiler::CompileResult* compile() const { return compile_.get(); }
  const opec_monitor::Monitor* monitor() const { return monitor_.get(); }

  const opec_compiler::MemoryAccounting& accounting() const { return accounting_; }

 private:
  // Builds the engine of the selected kind (also used by RestoreBoot to
  // recreate it against the restored machine).
  std::unique_ptr<opec_rt::Engine> MakeEngine();

  const Application& app_;
  BuildMode mode_;
  EngineKind engine_kind_;
  opec_hw::SocDescription soc_;
  std::unique_ptr<opec_ir::Module> module_;
  std::unique_ptr<opec_hw::Machine> machine_;
  std::unique_ptr<AppDevices> devices_;
  std::unique_ptr<opec_compiler::CompileResult> compile_;
  std::unique_ptr<opec_monitor::Monitor> monitor_;
  std::unique_ptr<opec_rt::Engine> engine_;
  opec_rt::AddressAssignment vanilla_layout_;
  opec_compiler::MemoryAccounting accounting_;
  std::unique_ptr<opec_snapshot::Snapshot> boot_snapshot_;
  std::unique_ptr<opec_snapshot::RoundTripProbe> probe_;
  opec_rt::ExecutionTrace trace_;
  bool trace_enabled_ = false;
  std::unique_ptr<opec_obs::Recorder> recorder_;
  std::unique_ptr<opec_rv::RvSink> rv_;
  std::vector<opec_obs::Sink*> extra_sinks_;
  opec_rt::RunResult last_result_;
};

}  // namespace opec_apps

#endif  // SRC_APPS_RUNNER_H_
