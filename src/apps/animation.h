// Animation (STM32479I-EVAL): reads 11 picture frames from the SD card and
// displays them on the LCD with fade-in/fade-out — a moving butterfly in the
// original. Eight operations: System_Init, Sd_Init, Lcd_Init, Load_Picture,
// Display_Picture, Fade_In, Fade_Out + the default main operation.

#ifndef SRC_APPS_ANIMATION_H_
#define SRC_APPS_ANIMATION_H_

#include "src/apps/app.h"
#include "src/hw/devices/block_device.h"
#include "src/hw/devices/lcd.h"
#include "src/hw/devices/rcc.h"

namespace opec_apps {

struct AnimationDevices : AppDevices {
  opec_hw::BlockDevice* sd = nullptr;
  opec_hw::Lcd* lcd = nullptr;
  opec_hw::Rcc* rcc = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

class AnimationApp : public Application {
 public:
  static constexpr int kPictures = 11;
  static constexpr uint32_t kPictureBytes = 2048;  // 4 sectors per frame

  std::string name() const override { return "Animation"; }
  opec_hw::Board board() const override { return opec_hw::Board::kStm32479iEval; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(AppDevices& devices) const override;
  std::string CheckScenario(const AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

  // Deterministic pixel pattern of frame `index` at byte `offset`.
  static uint8_t PictureByte(int index, uint32_t offset);
};

}  // namespace opec_apps

#endif  // SRC_APPS_ANIMATION_H_
