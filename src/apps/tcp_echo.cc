#include "src/apps/tcp_echo.h"

#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/text.h"
#include "src/traffic/net_host.h"

namespace opec_apps {

using opec_traffic::BuildTcpFrame;
using opec_traffic::FrameCorruption;
using opec_traffic::kEchoPort;
using opec_traffic::kTcpFlagAck;
using opec_traffic::kTcpFlagFin;
using opec_traffic::kTcpFlagPsh;
using opec_traffic::kTcpFlagSyn;
using opec_traffic::ParseTcpFrame;
using opec_traffic::TcpSegment;

using opec_hw::kDwtCyccnt;
using opec_hw::kEthBase;
using opec_hw::kRccBase;
using opec_hw::kUsart1Base;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::StructField;
using opec_ir::Type;
using opec_ir::Val;

namespace {
constexpr uint32_t kEthStatus = kEthBase + 0x00;
constexpr uint32_t kEthRxLen = kEthBase + 0x04;
constexpr uint32_t kEthRxData = kEthBase + 0x08;
constexpr uint32_t kEthTxLen = kEthBase + 0x0C;
constexpr uint32_t kEthTxData = kEthBase + 0x10;
constexpr uint32_t kEthCmd = kEthBase + 0x14;
constexpr uint32_t kFrameCap = 256;

// EthernetDma registers (same ETH peripheral block, different map).
constexpr uint32_t kDmaRxRing = kEthBase + 0x04;
constexpr uint32_t kDmaRxCnt = kEthBase + 0x08;
constexpr uint32_t kDmaCoalesce = kEthBase + 0x0C;
constexpr uint32_t kDmaTxAddr = kEthBase + 0x10;
constexpr uint32_t kDmaTxLen = kEthBase + 0x14;
constexpr uint32_t kDmaCmd = kEthBase + 0x18;
constexpr uint32_t kRingLen = 8;
}  // namespace

TcpEchoApp::TcpEchoApp(opec_traffic::TrafficSpec spec, EthVariant variant)
    : traffic_mode_(true),
      spec_(spec),
      variant_(variant),
      name_(variant == EthVariant::kDma ? "TCP-Echo-DMA" : "TCP-Echo-Load") {}

std::vector<uint8_t> TcpEchoApp::PayloadFor(int index) {
  std::string s = opec_support::StrPrintf("echo-payload-%02d!", index);
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::unique_ptr<Module> TcpEchoApp::BuildModule() const {
  auto m = std::make_unique<Module>("tcp_echo");
  auto& tt = m->types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* p_u8 = tt.PointerTo(u8);
  const Type* p_u32 = tt.PointerTo(u32);
  const Type* void_ty = tt.VoidTy();

  const Type* pcb_ty = tt.StructTy("TcpPcb", {{"state", u32, 0},
                                              {"local_port", u32, 0},
                                              {"remote_port", u32, 0},
                                              {"rcv_nxt", u32, 0},
                                              {"snd_nxt", u32, 0}});

  const Type* handler_sig = tt.FunctionTy(u32, {});
  const Type* log_sig = tt.FunctionTy(void_ty, {u32});
  // Protocol handler table (lwIP-style dispatch): [0]=TCP, [1]=UDP.
  m->AddGlobal("proto_handlers", tt.ArrayOf(tt.PointerTo(handler_sig), 2));
  // Diagnostic hook that is never registered: its indirect call cannot be
  // resolved by the points-to analysis and falls back to type matching —
  // the paper's source of spurious icall targets (Section 6.5).
  m->AddGlobal("log_fn", tt.PointerTo(log_sig));

  m->AddGlobal("rx_frame", tt.ArrayOf(u8, kFrameCap));
  m->AddGlobal("tx_frame", tt.ArrayOf(u8, kFrameCap));
  m->AddGlobal("rx_len", u32);
  m->AddGlobal("ip_data_off", u32);
  m->AddGlobal("tcp_pcb", pcb_ty);
  m->AddGlobal("pbuf_pool", tt.ArrayOf(u8, 1024));  // 4 buffers x 256 bytes
  m->AddGlobal("pool_used", tt.ArrayOf(u32, 4));
  m->AddGlobal("rx_count", u32);
  m->AddGlobal("valid_count", u32);
  m->AddGlobal("invalid_count", u32);
  m->AddGlobal("echo_count", u32);
  m->AddGlobal("tick_count", u32);
  // Only udp_input touches this; udp_input is a (points-to-resolved but never
  // executed) icall target inside Tcp_Task — the spurious-target source of
  // OPEC's nonzero ET in Figure 11.
  m->AddGlobal("udp_drop_count", u32);
  m->AddGlobal("sys_clock", u32);
  m->AddGlobal("profile_cycles", u32);

  if (variant_ == EthVariant::kDma) {
    // DMA driver state. Everything the DMA engine reads or writes is touched
    // only by Rx_Task members, so these stay *internal* globals with one
    // stable address in both build modes — no shadow copies for bus-master
    // writes to go stale against.
    m->AddGlobal("rx_ring", tt.ArrayOf(u32, 2 * kRingLen));
    m->AddGlobal("dma_bufs", tt.ArrayOf(u8, kRingLen * kFrameCap));
    m->AddGlobal("ring_cursor", u32);
    m->AddGlobal("ring_inited", u32);
  }

  auto pcb = [&](FunctionBuilder& b, const char* f) { return b.Fld(b.G("tcp_pcb"), f); };

  // --- inet.c: byte-order + checksum helpers ---
  {
    auto* fn = m->AddFunction("get_be16", tt.FunctionTy(u32, {p_u8}), {"p"});
    fn->set_source_file("inet.c");
    FunctionBuilder b(*m, fn);
    b.Ret((b.CastTo(u32, b.Idx(b.L("p"), 0u)) << b.U32(8)) |
          b.CastTo(u32, b.Idx(b.L("p"), 1u)));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("get_be32", tt.FunctionTy(u32, {p_u8}), {"p"});
    fn->set_source_file("inet.c");
    FunctionBuilder b(*m, fn);
    b.Ret((b.CallV("get_be16", {b.L("p")}) << b.U32(16)) |
          b.CallV("get_be16", {b.Addr(b.Idx(b.L("p"), 2u))}));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("put_be16", tt.FunctionTy(void_ty, {p_u8, u32}), {"p", "v"});
    fn->set_source_file("inet.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Idx(b.L("p"), 0u), b.L("v") >> b.U32(8));
    b.Assign(b.Idx(b.L("p"), 1u), b.L("v"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("put_be32", tt.FunctionTy(void_ty, {p_u8, u32}), {"p", "v"});
    fn->set_source_file("inet.c");
    FunctionBuilder b(*m, fn);
    b.Call("put_be16", {b.L("p"), b.L("v") >> b.U32(16)});
    b.Call("put_be16", {b.Addr(b.Idx(b.L("p"), 2u)), b.L("v") & b.U32(0xFFFF)});
    b.RetVoid();
    b.Finish();
  }
  {
    // Folded 16-bit one's-complement sum (NOT inverted): a valid header sums
    // to 0xFFFF when the checksum field is included.
    auto* fn = m->AddFunction("checksum16", tt.FunctionTy(u32, {p_u8, u32}), {"p", "len"});
    fn->set_source_file("inet.c");
    FunctionBuilder b(*m, fn);
    Val sum = b.Local("sum", u32);
    Val i = b.Local("i", u32);
    b.Assign(sum, b.U32(0));
    b.Assign(i, b.U32(0));
    b.While(i + b.U32(1) < b.L("len"));
    {
      b.Assign(sum, sum + b.CallV("get_be16", {b.Addr(b.Idx(b.L("p"), i))}));
      b.Assign(i, i + b.U32(2));
    }
    b.End();
    b.If(i < b.L("len"));
    b.Assign(sum, sum + (b.CastTo(u32, b.Idx(b.L("p"), i)) << b.U32(8)));
    b.End();
    b.While((sum >> b.U32(16)) != b.U32(0));
    b.Assign(sum, (sum & b.U32(0xFFFF)) + (sum >> b.U32(16)));
    b.End();
    b.Ret(sum);
    b.Finish();
  }

  // --- ethernetif.c: frame I/O (PIO or DMA driver, same interface) ---
  if (variant_ == EthVariant::kPio) {
    auto* fn = m->AddFunction("eth_poll", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("ethernetif.c");
    FunctionBuilder b(*m, fn);
    b.If((b.Mmio32(kEthStatus) & b.U32(1)) == b.U32(0));
    b.Ret(b.U32(0));
    b.End();
    Val len = b.Local("len", u32);
    b.Assign(len, b.Mmio32(kEthRxLen));
    b.If(len > b.U32(kFrameCap));
    b.Assign(len, b.U32(kFrameCap));
    b.End();
    Val w = b.Local("w", p_u32);
    Val i = b.Local("i", u32);
    b.Assign(w, b.CastTo(p_u32, b.Addr(b.Idx(b.G("rx_frame"), 0u))));
    b.Assign(i, b.U32(0));
    b.While(i * b.U32(4) < len);
    {
      b.Assign(b.Idx(w, i), b.Mmio32(kEthRxData));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.Mmio32(kEthCmd), b.U32(1));  // done with this rx frame
    b.Assign(b.G("rx_len"), len);
    b.Assign(b.G("rx_count"), b.G("rx_count") + b.U32(1));
    b.Ret(len);
    b.Finish();
  } else {
    auto* fn = m->AddFunction("eth_poll", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("ethernetif.c");
    FunctionBuilder b(*m, fn);
    // Lazy ring setup on first poll keeps every DMA-visible global inside
    // Rx_Task (Eth_Init belongs to a different operation).
    b.If(b.G("ring_inited") == b.U32(0));
    {
      Val j = b.Local("j", u32);
      b.Assign(j, b.U32(0));
      b.While(j < b.U32(kRingLen));
      {
        b.Assign(b.Idx(b.G("rx_ring"), j * b.U32(2)),
                 b.CastTo(u32, b.Addr(b.Idx(b.G("dma_bufs"), j * b.U32(kFrameCap)))));
        b.Assign(b.Idx(b.G("rx_ring"), j * b.U32(2) + b.U32(1)), b.U32(0x80000000));
        b.Assign(j, j + b.U32(1));
      }
      b.End();
      b.Assign(b.Mmio32(kDmaRxRing), b.CastTo(u32, b.Addr(b.Idx(b.G("rx_ring"), 0u))));
      b.Assign(b.Mmio32(kDmaRxCnt), b.U32(kRingLen));
      b.Assign(b.Mmio32(kDmaCoalesce), b.U32(4));
      b.Assign(b.G("ring_cursor"), b.U32(0));
      b.Assign(b.G("ring_inited"), b.U32(1));
    }
    b.End();
    b.If((b.Mmio32(kEthStatus) & b.U32(1)) == b.U32(0));
    b.Ret(b.U32(0));
    b.End();
    b.Assign(b.Mmio32(kDmaCmd), b.U32(1));  // wait for + DMA-deliver a batch
    Val w1 = b.Local("w1", u32);
    b.Assign(w1, b.Idx(b.G("rx_ring"), b.G("ring_cursor") * b.U32(2) + b.U32(1)));
    b.If((w1 & b.U32(0x80000000)) != b.U32(0));
    b.Ret(b.U32(0));  // descriptor still device-owned: nothing delivered
    b.End();
    Val len = b.Local("len", u32);
    b.Assign(len, w1 & b.U32(0xFFFF));
    b.If(len > b.U32(kFrameCap));
    b.Assign(len, b.U32(kFrameCap));
    b.End();
    // Copy-in from the descriptor's buffer, word-granular like the PIO path.
    Val src = b.Local("src", p_u32);
    Val dst = b.Local("dst", p_u32);
    Val i = b.Local("i", u32);
    b.Assign(src, b.CastTo(p_u32,
                           b.Addr(b.Idx(b.G("dma_bufs"), b.G("ring_cursor") * b.U32(kFrameCap)))));
    b.Assign(dst, b.CastTo(p_u32, b.Addr(b.Idx(b.G("rx_frame"), 0u))));
    b.Assign(i, b.U32(0));
    b.While(i * b.U32(4) < len);
    {
      b.Assign(b.Idx(dst, i), b.Idx(src, i));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    // Return the descriptor to the device and advance.
    b.Assign(b.Idx(b.G("rx_ring"), b.G("ring_cursor") * b.U32(2) + b.U32(1)),
             b.U32(0x80000000));
    b.Assign(b.G("ring_cursor"), b.G("ring_cursor") + b.U32(1));
    b.If(b.G("ring_cursor") == b.U32(kRingLen));
    b.Assign(b.G("ring_cursor"), b.U32(0));
    b.End();
    b.Assign(b.G("rx_len"), len);
    b.Assign(b.G("rx_count"), b.G("rx_count") + b.U32(1));
    b.Ret(len);
    b.Finish();
  }
  if (variant_ == EthVariant::kPio) {
    auto* fn = m->AddFunction("eth_send", tt.FunctionTy(void_ty, {u32}), {"len"});
    fn->set_source_file("ethernetif.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kEthTxLen), b.L("len"));
    Val w = b.Local("w", p_u32);
    Val i = b.Local("i", u32);
    b.Assign(w, b.CastTo(p_u32, b.Addr(b.Idx(b.G("tx_frame"), 0u))));
    b.Assign(i, b.U32(0));
    b.While(i * b.U32(4) < b.L("len"));
    {
      b.Assign(b.Mmio32(kEthTxData), b.Idx(w, i));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.Mmio32(kEthCmd), b.U32(2));  // commit
    b.RetVoid();
    b.Finish();
  } else {
    auto* fn = m->AddFunction("eth_send", tt.FunctionTy(void_ty, {u32}), {"len"});
    fn->set_source_file("ethernetif.c");
    FunctionBuilder b(*m, fn);
    // Hand the device the frame's address; under OPEC the rewritten access
    // resolves to the live shadow, so the DMA read sees current bytes.
    b.Assign(b.Mmio32(kDmaTxAddr), b.CastTo(u32, b.Addr(b.Idx(b.G("tx_frame"), 0u))));
    b.Assign(b.Mmio32(kDmaTxLen), b.L("len"));
    b.Assign(b.Mmio32(kDmaCmd), b.U32(2));  // DMA-read + commit
    b.RetVoid();
    b.Finish();
  }

  // --- ip.c: IPv4 input validation ---
  {
    auto* fn = m->AddFunction("ip_input", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("ip.c");
    FunctionBuilder b(*m, fn);
    b.If(b.G("rx_len") < b.U32(54));
    b.Ret(b.U32(0));
    b.End();
    // Ethertype must be IPv4.
    b.If((b.CastTo(u32, b.Idx(b.G("rx_frame"), 12u)) != b.U32(0x08)) ||
         (b.CastTo(u32, b.Idx(b.G("rx_frame"), 13u)) != b.U32(0x00)));
    b.Ret(b.U32(0));
    b.End();
    // Version/IHL, protocol, header checksum.
    b.If(b.CastTo(u32, b.Idx(b.G("rx_frame"), 14u)) != b.U32(0x45));
    b.Ret(b.U32(0));
    b.End();
    b.If(b.CastTo(u32, b.Idx(b.G("rx_frame"), 23u)) != b.U32(6));
    b.Ret(b.U32(0));
    b.End();
    b.If(b.CallV("checksum16", {b.Addr(b.Idx(b.G("rx_frame"), 14u)), b.U32(20)}) !=
         b.U32(0xFFFF));
    b.Ret(b.U32(0));
    b.End();
    b.Ret(b.U32(34));  // TCP header offset within the frame
    b.Finish();
  }

  // --- echo.c: pbuf pool ---
  {
    auto* fn = m->AddFunction("pbuf_alloc", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("echo.c");
    FunctionBuilder b(*m, fn);
    Val i = b.Local("i", u32);
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(4));
    {
      b.If(b.Idx(b.G("pool_used"), i) == b.U32(0));
      {
        b.Assign(b.Idx(b.G("pool_used"), i), b.U32(1));
        b.Ret(i);
      }
      b.End();
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Ret(b.U32(0xFFFFFFFF));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("pbuf_free", tt.FunctionTy(void_ty, {u32}), {"idx"});
    fn->set_source_file("echo.c");
    FunctionBuilder b(*m, fn);
    b.If(b.L("idx") < b.U32(4));
    b.Assign(b.Idx(b.G("pool_used"), b.L("idx")), b.U32(0));
    b.End();
    b.RetVoid();
    b.Finish();
  }

  // --- tcp_out.c: segment construction + transmit ---
  {
    // tcp_output(flags, payload_len, pbuf_idx): payload (if any) comes from
    // the pool buffer pbuf_idx.
    auto* fn = m->AddFunction("tcp_output", tt.FunctionTy(void_ty, {u32, u32, u32}),
                              {"flags", "payload_len", "pbuf_idx"});
    fn->set_source_file("tcp_out.c");
    FunctionBuilder b(*m, fn);
    Val i = b.Local("i", u32);
    // Ethernet: swap roles of the fixed MACs.
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(6));
    {
      b.Assign(b.Idx(b.G("tx_frame"), i), b.U8(0x04));
      b.Assign(b.Idx(b.G("tx_frame"), i + b.U32(6)), b.U8(0x02));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.Idx(b.G("tx_frame"), 12u), b.U8(0x08));
    b.Assign(b.Idx(b.G("tx_frame"), 13u), b.U8(0x00));
    // IPv4 header.
    Val ip = b.Local("ip", p_u8);
    b.Assign(ip, b.Addr(b.Idx(b.G("tx_frame"), 14u)));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(20));
    {
      b.Assign(b.Idx(ip, i), b.U8(0));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.Idx(ip, 0u), b.U8(0x45));
    b.Call("put_be16", {b.Addr(b.Idx(ip, 2u)), b.U32(40) + b.L("payload_len")});
    b.Assign(b.Idx(ip, 8u), b.U8(64));
    b.Assign(b.Idx(ip, 9u), b.U8(6));
    b.Call("put_be32", {b.Addr(b.Idx(ip, 12u)), b.U32(0xC0A80001)});
    b.Call("put_be32", {b.Addr(b.Idx(ip, 16u)), b.U32(0xC0A80002)});
    Val sum = b.Local("sum", u32);
    b.Assign(sum, b.CallV("checksum16", {ip, b.U32(20)}));
    b.Call("put_be16", {b.Addr(b.Idx(ip, 10u)), ~sum & b.U32(0xFFFF)});
    // TCP header.
    Val tcp = b.Local("tcp", p_u8);
    b.Assign(tcp, b.Addr(b.Idx(b.G("tx_frame"), 34u)));
    b.Call("put_be16", {b.Addr(b.Idx(tcp, 0u)), pcb(b, "local_port")});
    b.Call("put_be16", {b.Addr(b.Idx(tcp, 2u)), pcb(b, "remote_port")});
    b.Call("put_be32", {b.Addr(b.Idx(tcp, 4u)), pcb(b, "snd_nxt")});
    b.Call("put_be32", {b.Addr(b.Idx(tcp, 8u)), pcb(b, "rcv_nxt")});
    b.Call("put_be16", {b.Addr(b.Idx(tcp, 12u)), (b.U32(5) << b.U32(12)) | b.L("flags")});
    b.Call("put_be16", {b.Addr(b.Idx(tcp, 14u)), b.U32(0xFFFF)});
    b.Call("put_be16", {b.Addr(b.Idx(tcp, 16u)), b.U32(0)});
    b.Call("put_be16", {b.Addr(b.Idx(tcp, 18u)), b.U32(0)});
    // Payload from the pool.
    b.Assign(i, b.U32(0));
    b.While(i < b.L("payload_len"));
    {
      b.Assign(b.Idx(b.G("tx_frame"), b.U32(54) + i),
               b.Idx(b.G("pbuf_pool"), b.L("pbuf_idx") * b.U32(256) + i));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Call("eth_send", {b.U32(54) + b.L("payload_len")});
    b.RetVoid();
    b.Finish();
  }

  // --- tcp_in.c: the state machine ---
  {
    auto* fn = m->AddFunction("tcp_input", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("tcp_in.c");
    FunctionBuilder b(*m, fn);
    Val tcp = b.Local("tcp", p_u8);
    b.Assign(tcp, b.Addr(b.Idx(b.G("rx_frame"), 34u)));
    b.If(b.CallV("get_be16", {b.Addr(b.Idx(tcp, 2u))}) != pcb(b, "local_port"));
    b.Ret(b.U32(0));
    b.End();
    Val flags = b.Local("flags", u32);
    Val seq = b.Local("seq", u32);
    Val payload_len = b.Local("payload_len", u32);
    b.Assign(flags, b.CallV("get_be16", {b.Addr(b.Idx(tcp, 12u))}) & b.U32(0x3F));
    b.Assign(seq, b.CallV("get_be32", {b.Addr(b.Idx(tcp, 4u))}));
    b.Assign(payload_len,
             b.CallV("get_be16", {b.Addr(b.Idx(b.G("rx_frame"), 16u))}) - b.U32(40));

    b.If((flags & b.U32(0x02)) != b.U32(0));  // SYN
    {
      b.Assign(pcb(b, "remote_port"), b.CallV("get_be16", {b.Addr(b.Idx(tcp, 0u))}));
      b.Assign(pcb(b, "rcv_nxt"), seq + b.U32(1));
      b.Assign(pcb(b, "snd_nxt"), b.U32(1000));
      b.Assign(pcb(b, "state"), b.U32(1));
      b.Call("tcp_output", {b.U32(0x12), b.U32(0), b.U32(0)});  // SYN|ACK
      b.Assign(pcb(b, "snd_nxt"), pcb(b, "snd_nxt") + b.U32(1));
      b.Ret(b.U32(1));
    }
    b.End();
    b.If((flags & b.U32(0x01)) != b.U32(0));  // FIN
    {
      b.Assign(pcb(b, "rcv_nxt"), seq + b.U32(1));
      b.Call("tcp_output", {b.U32(0x10), b.U32(0), b.U32(0)});  // ACK
      b.Assign(pcb(b, "state"), b.U32(0));
      b.Ret(b.U32(1));
    }
    b.End();
    b.If((pcb(b, "state") == b.U32(1)) && ((flags & b.U32(0x10)) != b.U32(0)));
    {
      b.Assign(pcb(b, "state"), b.U32(2));  // ESTABLISHED
    }
    b.End();
    b.If((pcb(b, "state") == b.U32(2)) && (payload_len > b.U32(0)));
    {
      Val idx = b.Local("idx", u32);
      Val i = b.Local("i", u32);
      b.Assign(idx, b.CallV("pbuf_alloc", {}));
      b.If(idx == b.U32(0xFFFFFFFF));
      b.Ret(b.U32(0));
      b.End();
      b.Assign(i, b.U32(0));
      b.While(i < payload_len);
      {
        b.Assign(b.Idx(b.G("pbuf_pool"), idx * b.U32(256) + i),
                 b.Idx(b.G("rx_frame"), b.U32(54) + i));
        b.Assign(i, i + b.U32(1));
      }
      b.End();
      b.Assign(pcb(b, "rcv_nxt"), seq + payload_len);
      b.Call("tcp_output", {b.U32(0x18), payload_len, idx});  // PSH|ACK echo
      b.Assign(pcb(b, "snd_nxt"), pcb(b, "snd_nxt") + payload_len);
      b.Call("pbuf_free", {idx});
      b.Assign(b.G("echo_count"), b.G("echo_count") + b.U32(1));
      b.Ret(b.U32(1));
    }
    b.End();
    b.Ret(b.U32(0));
    b.Finish();
  }

  // --- udp_input: present in the image, reached only through the handler
  // table (TCP-Echo never receives UDP in this scenario) ---
  {
    auto* fn = m->AddFunction("udp_input", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("udp.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("udp_drop_count"), b.G("udp_drop_count") + b.U32(1));
    b.Ret(b.U32(0));
    b.Finish();
  }

  // --- Task wrappers (the operation entries) + main ---
  {
    auto* fn = m->AddFunction("System_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("system.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kRccBase + 0x00), b.U32(1u << 24));
    b.While((b.Mmio32(kRccBase + 0x00) & b.U32(1u << 25)) == b.U32(0));
    b.End();
    b.Assign(b.G("sys_clock"), b.U32(180000000));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Eth_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("ethernetif.c");
    FunctionBuilder b(*m, fn);
    Val status = b.Local("status", u32);
    b.Assign(status, b.Mmio32(kEthStatus));  // link check
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Net_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("tcp_in.c");
    FunctionBuilder b(*m, fn);
    b.Assign(pcb(b, "state"), b.U32(0));
    b.Assign(pcb(b, "local_port"), b.U32(kEchoPort));
    b.Assign(pcb(b, "snd_nxt"), b.U32(1000));
    b.Assign(pcb(b, "rcv_nxt"), b.U32(0));
    b.Assign(b.Idx(b.G("proto_handlers"), 0u), b.FnPtr("tcp_input"));
    b.Assign(b.Idx(b.G("proto_handlers"), 1u), b.FnPtr("udp_input"));
    Val i = b.Local("i", u32);
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(4));
    {
      b.Assign(b.Idx(b.G("pool_used"), i), b.U32(0));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Rx_Task", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    b.Ret(b.CallV("eth_poll", {}));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Ip_Task", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("ip_data_off"), b.CallV("ip_input", {}));
    b.If(b.G("ip_data_off") != b.U32(0));
    b.Assign(b.G("valid_count"), b.G("valid_count") + b.U32(1));
    b.Else();
    b.Assign(b.G("invalid_count"), b.G("invalid_count") + b.U32(1));
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Tcp_Task", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    b.If(b.G("ip_data_off") != b.U32(0));
    {
      // Dispatch through the protocol handler table (frame byte 23 is the IP
      // protocol; ip_input only accepts TCP, so index 0 in practice).
      Val idx = b.Local("idx", u32);
      b.Assign(idx, b.U32(0));
      b.If(b.CastTo(u32, b.Idx(b.G("rx_frame"), 23u)) != b.U32(6));
      b.Assign(idx, b.U32(1));
      b.End();
      b.Do(b.ICallV(handler_sig, b.Idx(b.G("proto_handlers"), idx), {}));
      // Never-registered diagnostic hook: guarded, so it never fires.
      b.If(b.CastTo(u32, b.G("log_fn")) != b.U32(0));
      b.ICall(log_sig, b.G("log_fn"), {b.G("rx_len")});
      b.End();
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Timer_Task", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("timer.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("tick_count"), b.G("tick_count") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Stats_Task", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("report.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kUsart1Base + 0x08), b.U32(0x16D));
    b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('N'));
    b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('T'));
    b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('0') + b.G("echo_count"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    Val start = b.Local("start", u32);
    b.Assign(start, b.Mmio32(kDwtCyccnt));
    b.Call("System_Init", {});
    b.Call("Eth_Init", {});
    b.Call("Net_Init", {});
    b.While((b.Mmio32(kEthStatus) & b.U32(1)) != b.U32(0));
    {
      b.Do(b.CallV("Rx_Task", {}));
      b.Call("Ip_Task", {});
      b.Call("Tcp_Task", {});
    }
    b.End();
    b.Call("Timer_Task", {});
    b.Call("Stats_Task", {});
    b.Assign(b.G("profile_cycles"), b.Mmio32(kDwtCyccnt) - start);
    b.Ret(b.G("echo_count"));
    b.Finish();
  }
  return m;
}

opec_compiler::PartitionConfig TcpEchoApp::Partition() const {
  opec_compiler::PartitionConfig config;
  for (const char* entry : {"System_Init", "Eth_Init", "Net_Init", "Rx_Task", "Ip_Task",
                            "Tcp_Task", "Timer_Task", "Stats_Task"}) {
    config.entries.push_back({entry, {}});
  }
  config.sanitize.push_back({"tcp_pcb", 0, 0xFFFFFFFF});  // struct: no range limit
  config.sanitize.push_back({"ip_data_off", 0, 256});
  return config;
}

opec_hw::SocDescription TcpEchoApp::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"RCC", kRccBase, 0x400, false});
  soc.AddPeripheral({"ETH", kEthBase, 0x400, false});
  soc.AddPeripheral({"USART1", kUsart1Base, 0x400, false});
  return soc;
}

std::unique_ptr<AppDevices> TcpEchoApp::CreateDevices(opec_hw::Machine& machine) const {
  auto devices = std::make_unique<TcpEchoDevices>();
  if (variant_ == EthVariant::kDma) {
    auto eth = std::make_unique<opec_hw::EthernetDma>("ETH", kEthBase, &machine);
    devices->eth_dma = eth.get();
    machine.bus().AttachDevice(eth.get());
    devices->owned.push_back(std::move(eth));
  } else {
    auto eth = std::make_unique<opec_hw::Ethernet>("ETH", kEthBase);
    devices->eth = eth.get();
    machine.bus().AttachDevice(eth.get());
    devices->owned.push_back(std::move(eth));
  }
  auto uart = std::make_unique<opec_hw::Uart>("USART1", kUsart1Base);
  auto rcc = std::make_unique<opec_hw::Rcc>("RCC", kRccBase);
  devices->uart = uart.get();
  devices->rcc = rcc.get();
  machine.bus().AttachDevice(uart.get());
  machine.bus().AttachDevice(rcc.get());
  devices->owned.push_back(std::move(uart));
  devices->owned.push_back(std::move(rcc));
  return devices;
}

void TcpEchoApp::PrepareScenario(AppDevices& devices) const {
  auto& d = static_cast<TcpEchoDevices&>(devices);
  if (traffic_mode_) {
    // Long-running mode: thousands of frames through one boot. Cap the tx
    // retention window so memory stays bounded; the digest covers every
    // committed frame regardless.
    opec_traffic::GeneratedTraffic gen = opec_traffic::Generate(spec_);
    if (variant_ == EthVariant::kDma) {
      d.eth_dma->set_tx_retention_cap(64);
      for (opec_traffic::TrafficFrame& f : gen.frames) {
        d.eth_dma->QueueRxFrame(std::move(f.bytes), f.gap_cycles);
      }
    } else {
      d.eth->set_tx_retention_cap(64);
      for (opec_traffic::TrafficFrame& f : gen.frames) {
        d.eth->QueueRxFrame(std::move(f.bytes), f.gap_cycles);
      }
    }
    return;
  }
  uint32_t client_seq = 100;

  TcpSegment syn;
  syn.seq = client_seq;
  syn.flags = kTcpFlagSyn;
  d.eth->QueueRxFrame(BuildTcpFrame(syn));
  ++client_seq;

  TcpSegment ack;
  ack.seq = client_seq;
  ack.ack = 1001;
  ack.flags = kTcpFlagAck;
  d.eth->QueueRxFrame(BuildTcpFrame(ack));

  // 5 valid payload segments, each followed by 9 invalid frames.
  for (int i = 0; i < kValidPayloads; ++i) {
    TcpSegment data;
    data.seq = client_seq;
    data.ack = 1001;
    data.flags = kTcpFlagAck | kTcpFlagPsh;
    data.payload = PayloadFor(i);
    client_seq += static_cast<uint32_t>(data.payload.size());
    d.eth->QueueRxFrame(BuildTcpFrame(data));

    for (int k = 0; k < kInvalidFrames / kValidPayloads; ++k) {
      TcpSegment junk;
      junk.seq = 777;
      junk.flags = kTcpFlagAck | kTcpFlagPsh;
      junk.payload = PayloadFor(99);
      FrameCorruption corruption;
      switch (k % 4) {
        case 0:
          corruption.bad_ethertype = true;
          break;
        case 1:
          corruption.bad_protocol = true;
          break;
        case 2:
          corruption.bad_checksum = true;
          break;
        default:
          corruption.wrong_port = true;
          break;
      }
      d.eth->QueueRxFrame(BuildTcpFrame(junk, corruption));
    }
  }
}

std::string TcpEchoApp::CheckScenario(const AppDevices& devices,
                                      const opec_rt::RunResult& result) const {
  const auto& d = static_cast<const TcpEchoDevices&>(devices);
  if (!result.ok) {
    return "run failed: " + result.violation;
  }
  if (traffic_mode_) {
    // Re-derive the expectations from the spec (Generate is deterministic)
    // and compare against the device's full-history counters and digest.
    opec_traffic::GeneratedTraffic gen = opec_traffic::Generate(spec_);
    uint64_t committed = variant_ == EthVariant::kDma ? d.eth_dma->tx_committed()
                                                      : d.eth->tx_committed();
    uint64_t digest =
        variant_ == EthVariant::kDma ? d.eth_dma->tx_digest() : d.eth->tx_digest();
    if (result.return_value != gen.expected_echoes) {
      return opec_support::StrPrintf("expected %u echoes, got %u", gen.expected_echoes,
                                     result.return_value);
    }
    if (committed != gen.expected_tx_frames) {
      return opec_support::StrPrintf("expected %llu tx frames, got %llu",
                                     static_cast<unsigned long long>(gen.expected_tx_frames),
                                     static_cast<unsigned long long>(committed));
    }
    if (digest != gen.expected_tx_digest) {
      return opec_support::StrPrintf("tx digest mismatch: %016llx vs %016llx",
                                     static_cast<unsigned long long>(digest),
                                     static_cast<unsigned long long>(gen.expected_tx_digest));
    }
    if (d.uart->TxString() != gen.expected_uart) {
      return "stats report mismatch: " + d.uart->TxString();
    }
    return "";
  }
  if (result.return_value != static_cast<uint32_t>(kValidPayloads)) {
    return opec_support::StrPrintf("expected %d echoes, got %u", kValidPayloads,
                                   result.return_value);
  }
  const auto& tx = d.eth->tx_frames();
  if (tx.size() != static_cast<size_t>(1 + kValidPayloads)) {
    return opec_support::StrPrintf("expected %d tx frames, got %zu", 1 + kValidPayloads,
                                   tx.size());
  }
  TcpSegment synack;
  if (!ParseTcpFrame(tx[0], &synack) || synack.flags != (kTcpFlagSyn | kTcpFlagAck) ||
      synack.ack != 101) {
    return "first reply is not a correct SYN-ACK";
  }
  for (int i = 0; i < kValidPayloads; ++i) {
    TcpSegment echo;
    if (!ParseTcpFrame(tx[static_cast<size_t>(i + 1)], &echo)) {
      return opec_support::StrPrintf("echo %d unparseable", i);
    }
    if (echo.payload != PayloadFor(i)) {
      return opec_support::StrPrintf("echo %d payload mismatch", i);
    }
  }
  // But the invalid packets were counted and dropped.
  if (d.uart->TxString() != opec_support::StrPrintf("NT%d", kValidPayloads)) {
    return "stats report mismatch: " + d.uart->TxString();
  }
  return "";
}

}  // namespace opec_apps
