#include "src/apps/coremark.h"

#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/text.h"

namespace opec_apps {

using opec_hw::kDwtCyccnt;
using opec_hw::kRccBase;
using opec_hw::kUsart2Base;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

namespace {
constexpr uint32_t kListLen = 36;
constexpr uint32_t kMatrixDim = 8;
}  // namespace

std::unique_ptr<Module> CoreMarkApp::BuildModule() const {
  auto m = std::make_unique<Module>("coremark");
  auto& tt = m->types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* void_ty = tt.VoidTy();

  const Type* mix_sig = tt.FunctionTy(u32, {u32, u32});
  // Mixer function table: classic CoreMark drives its list comparisons
  // through function pointers; both entries are feasible icall targets.
  m->AddGlobal("mix_fns", tt.ArrayOf(tt.PointerTo(mix_sig), 2));

  // The two large shared buffers the paper mentions for CoreMark.
  m->AddGlobal("list_data", tt.ArrayOf(u32, kListLen));
  m->AddGlobal("list_next", tt.ArrayOf(u32, kListLen));
  m->AddGlobal("matrix_a", tt.ArrayOf(u32, kMatrixDim * kMatrixDim));
  m->AddGlobal("matrix_b", tt.ArrayOf(u32, kMatrixDim * kMatrixDim));
  m->AddGlobal("matrix_c", tt.ArrayOf(u32, kMatrixDim * kMatrixDim));
  m->AddGlobal("state_input", tt.ArrayOf(u8, 64));
  m->AddGlobal("list_result", u32);
  m->AddGlobal("matrix_result", u32);
  m->AddGlobal("state_result", u32);
  m->AddGlobal("crc_result", u32);
  m->AddGlobal("crc_check", u32);
  m->AddGlobal("bench_ok", u32);
  auto* iters = m->AddGlobal("iterations", u32);
  uint32_t n = static_cast<uint32_t>(iterations_);
  iters->set_initial_data({static_cast<uint8_t>(n), static_cast<uint8_t>(n >> 8),
                           static_cast<uint8_t>(n >> 16), static_cast<uint8_t>(n >> 24)});
  m->AddGlobal("sys_clock", u32);
  m->AddGlobal("profile_cycles", u32);

  // --- core_util.c: crc16 step ---
  {
    auto* fn = m->AddFunction("crc16_step", tt.FunctionTy(u32, {u32, u32}), {"crc", "value"});
    fn->set_source_file("core_util.c");
    FunctionBuilder b(*m, fn);
    Val crc = b.Local("c", u32);
    Val i = b.Local("i", u32);
    b.Assign(crc, b.L("crc") ^ (b.L("value") & b.U32(0xFFFF)));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(16));
    {
      b.If((crc & b.U32(1)) != b.U32(0));
      b.Assign(crc, (crc >> b.U32(1)) ^ b.U32(0xA001));
      b.Else();
      b.Assign(crc, crc >> b.U32(1));
      b.End();
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Ret(crc & b.U32(0xFFFF));
    b.Finish();
  }

  {
    auto* fn = m->AddFunction("sum_step", tt.FunctionTy(u32, {u32, u32}), {"acc", "value"});
    fn->set_source_file("core_util.c");
    FunctionBuilder b(*m, fn);
    b.Ret((b.L("acc") + b.L("value")) & b.U32(0xFFFF));
    b.Finish();
  }

  {
    auto* fn = m->AddFunction("System_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("system.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kRccBase + 0x00), b.U32(1u << 24));
    b.While((b.Mmio32(kRccBase + 0x00) & b.U32(1u << 25)) == b.U32(0));
    b.End();
    b.Assign(b.G("sys_clock"), b.U32(168000000));
    b.RetVoid();
    b.Finish();
  }

  // --- core_main.c: Bench_Init ---
  {
    auto* fn = m->AddFunction("Bench_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("core_main.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Idx(b.G("mix_fns"), 0u), b.FnPtr("crc16_step"));
    b.Assign(b.Idx(b.G("mix_fns"), 1u), b.FnPtr("sum_step"));
    Val i = b.Local("i", u32);
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(kListLen));
    {
      b.Assign(b.Idx(b.G("list_data"), i), (i * b.U32(2909) + b.U32(7)) & b.U32(0x7FFF));
      b.Assign(b.Idx(b.G("list_next"), i), (i + b.U32(1)) % b.U32(kListLen));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(kMatrixDim * kMatrixDim));
    {
      b.Assign(b.Idx(b.G("matrix_a"), i), (i * b.U32(13) + b.U32(5)) & b.U32(0xFF));
      b.Assign(b.Idx(b.G("matrix_b"), i), (i * b.U32(7) + b.U32(3)) & b.U32(0xFF));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(64));
    {
      // Cycle through digits, signs and separators for the state machine.
      b.Assign(b.Idx(b.G("state_input"), i), b.U32('0') + (i % b.U32(12)));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }

  // --- core_list_join.c: List_Bench ---
  {
    auto* fn = m->AddFunction("List_Bench", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("core_list_join.c");
    FunctionBuilder b(*m, fn);
    const Type* p_u32 = tt.PointerTo(u32);
    Val rep = b.Local("rep", u32);
    Val node = b.Local("node", u32);
    Val count = b.Local("count", u32);
    Val sum = b.Local("sum", u32);
    // Base pointers resolved once per call (real CoreMark passes list
    // pointers; this also bounds the relocation-indirection cost).
    Val data = b.Local("data", p_u32);
    Val nxt = b.Local("nxt", p_u32);
    b.Assign(data, b.Addr(b.Idx(b.G("list_data"), 0u)));
    b.Assign(nxt, b.Addr(b.Idx(b.G("list_next"), 0u)));
    b.Assign(sum, b.U32(0));
    b.Assign(rep, b.U32(0));
    b.While(rep < b.U32(64));
    {
      // Walk the ring list, rotating data values and accumulating.
      b.Assign(node, b.U32(0));
      b.Assign(count, b.U32(0));
      b.While(count < b.U32(kListLen));
      {
        b.Assign(sum, sum + b.Idx(data, node));
        b.Assign(b.Idx(data, node), (b.Idx(data, node) * b.U32(3) + b.U32(1)) & b.U32(0x7FFF));
        b.Assign(node, b.Idx(nxt, node));
        b.Assign(count, count + b.U32(1));
      }
      b.End();
      b.Assign(rep, rep + b.U32(1));
    }
    b.End();
    b.Assign(b.G("list_result"), sum);
    b.RetVoid();
    b.Finish();
  }

  // --- core_matrix.c: Matrix_Bench ---
  {
    auto* fn = m->AddFunction("Matrix_Bench", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("core_matrix.c");
    FunctionBuilder b(*m, fn);
    Val i = b.Local("i", u32);
    Val j = b.Local("j", u32);
    Val k = b.Local("k", u32);
    const Type* p_u32 = tt.PointerTo(u32);
    Val acc = b.Local("acc", u32);
    Val total = b.Local("total", u32);
    Val mrep = b.Local("mrep", u32);
    Val ma = b.Local("ma", p_u32);
    Val mb = b.Local("mb", p_u32);
    Val mc = b.Local("mc", p_u32);
    b.Assign(ma, b.Addr(b.Idx(b.G("matrix_a"), 0u)));
    b.Assign(mb, b.Addr(b.Idx(b.G("matrix_b"), 0u)));
    b.Assign(mc, b.Addr(b.Idx(b.G("matrix_c"), 0u)));
    b.Assign(total, b.U32(0));
    b.Assign(mrep, b.U32(0));
    b.While(mrep < b.U32(16));
    {
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(kMatrixDim));
    {
      b.Assign(j, b.U32(0));
      b.While(j < b.U32(kMatrixDim));
      {
        b.Assign(acc, b.U32(0));
        b.Assign(k, b.U32(0));
        b.While(k < b.U32(kMatrixDim));
        {
          b.Assign(acc, acc + b.Idx(ma, i * b.U32(kMatrixDim) + k) *
                                  b.Idx(mb, k * b.U32(kMatrixDim) + j));
          b.Assign(k, k + b.U32(1));
        }
        b.End();
        b.Assign(b.Idx(mc, i * b.U32(kMatrixDim) + j), acc);
        b.Assign(total, total + acc);
        b.Assign(j, j + b.U32(1));
      }
      b.End();
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(mrep, mrep + b.U32(1));
    }
    b.End();
    b.Assign(b.G("matrix_result"), total);
    b.RetVoid();
    b.Finish();
  }

  // --- core_state.c: State_Bench (number-format scanner) ---
  {
    auto* fn = m->AddFunction("State_Bench", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("core_state.c");
    FunctionBuilder b(*m, fn);
    Val i = b.Local("i", u32);
    Val state = b.Local("state", u32);  // 0=start 1=int 2=other
    Val transitions = b.Local("transitions", u32);
    Val ch = b.Local("ch", u32);
    b.Assign(state, b.U32(0));
    b.Assign(transitions, b.U32(0));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(64));
    {
      b.Assign(ch, b.CastTo(u32, b.Idx(b.G("state_input"), i)));
      b.If((ch >= b.U32('0')) && (ch <= b.U32('9')));
      {
        b.If(state != b.U32(1));
        b.Assign(transitions, transitions + b.U32(1));
        b.End();
        b.Assign(state, b.U32(1));
      }
      b.Else();
      {
        b.If(state != b.U32(2));
        b.Assign(transitions, transitions + b.U32(1));
        b.End();
        b.Assign(state, b.U32(2));
      }
      b.End();
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.G("state_result"), transitions);
    b.RetVoid();
    b.Finish();
  }

  // --- core_util.c: Crc_Bench ---
  {
    auto* fn = m->AddFunction("Crc_Bench", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("core_util.c");
    FunctionBuilder b(*m, fn);
    Val crc = b.Local("crc", u32);
    b.Assign(crc, b.U32(0xFFFF));
    // Mix through the function-pointer table (entry 0 is the CRC step).
    b.Assign(crc, b.ICallV(mix_sig, b.Idx(b.G("mix_fns"), 0u), {crc, b.G("list_result")}));
    b.Assign(crc, b.ICallV(mix_sig, b.Idx(b.G("mix_fns"), 0u), {crc, b.G("matrix_result")}));
    b.Assign(crc, b.CallV("crc16_step", {crc, b.G("state_result")}));
    b.Assign(b.G("crc_result"), crc);
    b.RetVoid();
    b.Finish();
  }

  // --- core_main.c: Validate — recompute the CRC independently ---
  {
    auto* fn = m->AddFunction("Validate", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("core_main.c");
    FunctionBuilder b(*m, fn);
    Val crc = b.Local("crc", u32);
    b.Assign(crc, b.U32(0xFFFF));
    b.Assign(crc, b.CallV("crc16_step", {crc, b.G("list_result")}));
    b.Assign(crc, b.CallV("crc16_step", {crc, b.G("matrix_result")}));
    b.Assign(crc, b.CallV("crc16_step", {crc, b.G("state_result")}));
    b.Assign(b.G("crc_check"), crc);
    b.If((b.G("crc_check") == b.G("crc_result")) && (b.G("crc_result") != b.U32(0)));
    b.Assign(b.G("bench_ok"), b.U32(1));
    b.Else();
    b.Assign(b.G("bench_ok"), b.U32(0));
    b.End();
    b.RetVoid();
    b.Finish();
  }

  // --- report.c: Report ---
  {
    auto* fn = m->AddFunction("Report", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("report.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kUsart2Base + 0x08), b.U32(0x16D));
    b.If(b.G("bench_ok") != b.U32(0));
    {
      b.Assign(b.Mmio32(kUsart2Base + 0x04), b.U32('C'));
      b.Assign(b.Mmio32(kUsart2Base + 0x04), b.U32('M'));
      b.Assign(b.Mmio32(kUsart2Base + 0x04), b.U32('O'));
      b.Assign(b.Mmio32(kUsart2Base + 0x04), b.U32('K'));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("core_main.c");
    FunctionBuilder b(*m, fn);
    Val start = b.Local("start", u32);
    Val it = b.Local("it", u32);
    b.Assign(start, b.Mmio32(kDwtCyccnt));
    b.Call("System_Init", {});
    b.Call("Bench_Init", {});
    b.Assign(it, b.U32(0));
    b.While(it < b.G("iterations"));
    {
      b.Call("List_Bench", {});
      b.Call("Matrix_Bench", {});
      b.Call("State_Bench", {});
      b.Call("Crc_Bench", {});
      b.Assign(it, it + b.U32(1));
    }
    b.End();
    b.Call("Validate", {});
    b.Call("Report", {});
    b.Assign(b.G("profile_cycles"), b.Mmio32(kDwtCyccnt) - start);
    b.Ret(b.G("bench_ok"));
    b.Finish();
  }
  return m;
}

opec_compiler::PartitionConfig CoreMarkApp::Partition() const {
  opec_compiler::PartitionConfig config;
  for (const char* entry : {"System_Init", "Bench_Init", "List_Bench", "Matrix_Bench",
                            "State_Bench", "Crc_Bench", "Validate", "Report"}) {
    config.entries.push_back({entry, {}});
  }
  config.sanitize.push_back({"bench_ok", 0, 1});
  return config;
}

opec_hw::SocDescription CoreMarkApp::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"RCC", kRccBase, 0x400, false});
  soc.AddPeripheral({"USART2", kUsart2Base, 0x400, false});
  return soc;
}

std::unique_ptr<AppDevices> CoreMarkApp::CreateDevices(opec_hw::Machine& machine) const {
  auto devices = std::make_unique<CoreMarkDevices>();
  auto uart = std::make_unique<opec_hw::Uart>("USART2", kUsart2Base);
  auto rcc = std::make_unique<opec_hw::Rcc>("RCC", kRccBase);
  devices->uart = uart.get();
  devices->rcc = rcc.get();
  machine.bus().AttachDevice(uart.get());
  machine.bus().AttachDevice(rcc.get());
  devices->owned.push_back(std::move(uart));
  devices->owned.push_back(std::move(rcc));
  return devices;
}

void CoreMarkApp::PrepareScenario(AppDevices& devices) const {
  (void)devices;  // compute-bound: iterations come from the module image
}

std::string CoreMarkApp::CheckScenario(const AppDevices& devices,
                                       const opec_rt::RunResult& result) const {
  const auto& d = static_cast<const CoreMarkDevices&>(devices);
  if (!result.ok) {
    return "run failed: " + result.violation;
  }
  if (result.return_value != 1 || d.uart->TxString() != "CMOK") {
    return "benchmark self-validation failed";
  }
  return "";
}

}  // namespace opec_apps
