// FatFs-uSD (STM32479I-EVAL): formats a FAT16-lite volume on the SD card,
// creates a file, writes fixed content, reads it back and verifies it
// (Section 6's description). Ten operations: System_Init, Sd_Init, Fs_Format,
// Fs_Mount, Create_File, Write_File, Read_File, Verify_File, Report + main.
// The file object MyFile and filesystem object SDFatFs are the two large
// shared structs the paper calls out for this application's Table 1 numbers.

#ifndef SRC_APPS_FATFS_USD_H_
#define SRC_APPS_FATFS_USD_H_

#include "src/apps/app.h"
#include "src/hw/devices/block_device.h"
#include "src/hw/devices/rcc.h"
#include "src/hw/devices/uart.h"

namespace opec_apps {

struct FatFsUsdDevices : AppDevices {
  opec_hw::BlockDevice* sd = nullptr;
  opec_hw::Uart* uart = nullptr;
  opec_hw::Rcc* rcc = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

class FatFsUsdApp : public Application {
 public:
  static constexpr uint32_t kFileBytes = 1000;

  std::string name() const override { return "FatFs-uSD"; }
  opec_hw::Board board() const override { return opec_hw::Board::kStm32479iEval; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(AppDevices& devices) const override;
  std::string CheckScenario(const AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

  static uint8_t FileByte(uint32_t offset) {
    return static_cast<uint8_t>((offset * 7 + 3) & 0xFF);
  }
};

}  // namespace opec_apps

#endif  // SRC_APPS_FATFS_USD_H_
