#include "src/apps/guest/lcd_driver.h"

#include "src/ir/builder.h"

namespace opec_apps {

using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

void EmitLcdDriver(Module& m, uint32_t lcd_base) {
  auto& tt = m.types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* p_u8 = tt.PointerTo(u8);
  const Type* void_ty = tt.VoidTy();

  const uint32_t kCtrl = lcd_base + 0x00;
  const uint32_t kX = lcd_base + 0x04;
  const uint32_t kY = lcd_base + 0x08;
  const uint32_t kGram = lcd_base + 0x0C;
  const uint32_t kBrightness = lcd_base + 0x10;

  {
    auto* fn = m.AddFunction("lcd_init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("lcd_driver.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Mmio32(kCtrl), b.U32(1));
    b.Assign(b.Mmio32(kBrightness), b.U32(0));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("lcd_set_brightness", tt.FunctionTy(void_ty, {u32}), {"level"});
    fn->set_source_file("lcd_driver.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Mmio32(kBrightness), b.L("level"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("lcd_draw", tt.FunctionTy(void_ty, {p_u8, u32}),
                             {"pixels", "count"});
    fn->set_source_file("lcd_driver.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Mmio32(kX), b.U32(0));
    b.Assign(b.Mmio32(kY), b.U32(0));
    Val i = b.Local("i", u32);
    b.Assign(i, b.U32(0));
    b.While(i < b.L("count"));
    {
      b.Assign(b.Mmio32(kGram), b.Idx(b.L("pixels"), i));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
}

}  // namespace opec_apps
