// Guest-side LCD driver routines, shared by Animation and LCD-uSD.

#ifndef SRC_APPS_GUEST_LCD_DRIVER_H_
#define SRC_APPS_GUEST_LCD_DRIVER_H_

#include <cstdint>

#include "src/ir/module.h"

namespace opec_apps {

// Emits (source file "lcd_driver.c"):
//   void lcd_init()
//   void lcd_set_brightness(u32 level)
//   void lcd_draw(u8* pixels, u32 count)  — streams pixels to GRAM from (0,0)
void EmitLcdDriver(opec_ir::Module& m, uint32_t lcd_base);

}  // namespace opec_apps

#endif  // SRC_APPS_GUEST_LCD_DRIVER_H_
