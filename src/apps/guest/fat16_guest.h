// Guest-side FAT16-lite filesystem driver (the paper's FatFs stand-in),
// emitted into an application module. Operates on the shared global file
// object `MyFile` and filesystem object `SDFatFs` — the two large structs
// that drive FatFs-uSD's high shared-variable ratio in Table 1.
//
// Requires the SD driver (EmitSdDriver) to be emitted into the same module
// first. On-disk format: see fat16_host.h.

#ifndef SRC_APPS_GUEST_FAT16_GUEST_H_
#define SRC_APPS_GUEST_FAT16_GUEST_H_

#include "src/ir/module.h"

namespace opec_apps {

// Emits (source file "ff.c"):
//   globals: SDFatFs, MyFile, fat_buf[512], dir_buf[512]
//   u32 f_format()            — writes a fresh volume
//   u32 f_mount()             — 0 on success
//   u32 fat_get(u32 c) / void fat_set(u32 c, u32 v) / u32 fat_alloc()
//   u32 f_create(u32 name)    — creates + opens MyFile for writing
//   u32 f_open(u32 name)      — opens MyFile for reading; 0 on success
//   u32 f_append(u8* src, u32 len)  — appends one cluster (len <= 512)
//   u32 f_read_next(u8* dst)  — reads the next cluster; returns bytes or 0
//   void f_close()            — flushes MyFile's directory entry
void EmitFat16Guest(opec_ir::Module& m);

}  // namespace opec_apps

#endif  // SRC_APPS_GUEST_FAT16_GUEST_H_
