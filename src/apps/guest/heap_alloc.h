// Guest-side heap allocator (first-fit free list), the paper's "secure heap
// allocator" extension (Sections 5.2 and 7). The heap lives in its own
// section (placed deterministically by ComputeHeapPlacement); the monitor
// demand-maps it only for operations whose code uses the allocator.

#ifndef SRC_APPS_GUEST_HEAP_ALLOC_H_
#define SRC_APPS_GUEST_HEAP_ALLOC_H_

#include <cstdint>

#include "src/ir/module.h"

namespace opec_apps {

// Emits (source file "heap.c"):
//   globals: heap_free_head, heap_initialized, heap_allocs, heap_frees
//   u8* malloc(u32 size)  — 8-byte-aligned first-fit; null when exhausted
//   void free(u8* p)      — push-front onto the free list (no coalescing)
//
// Block format: [size u32][next u32][payload...]; `size` excludes the header.
// heap_base/heap_size must match the compiler's ComputeHeapPlacement result.
void EmitHeapAllocator(opec_ir::Module& m, uint32_t heap_base, uint32_t heap_size);

}  // namespace opec_apps

#endif  // SRC_APPS_GUEST_HEAP_ALLOC_H_
