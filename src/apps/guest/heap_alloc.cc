#include "src/apps/guest/heap_alloc.h"

#include "src/ir/builder.h"

namespace opec_apps {

using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

void EmitHeapAllocator(Module& m, uint32_t heap_base, uint32_t heap_size) {
  auto& tt = m.types();
  const Type* u32 = tt.U32();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  const Type* p_u32 = tt.PointerTo(u32);
  const Type* void_ty = tt.VoidTy();

  m.AddGlobal("heap_free_head", u32);
  m.AddGlobal("heap_initialized", u32);
  m.AddGlobal("heap_allocs", u32);
  m.AddGlobal("heap_frees", u32);

  // Word access at a computed heap address.
  auto mem32 = [&](FunctionBuilder& b, const Val& addr) {
    return b.Deref(b.CastTo(p_u32, addr));
  };

  {
    auto* fn = m.AddFunction("malloc", tt.FunctionTy(p_u8, {u32}), {"size"});
    fn->set_source_file("heap.c");
    FunctionBuilder b(m, fn);
    Val size = b.Local("sz", u32);
    Val prev = b.Local("prev", u32);
    Val cur = b.Local("cur", u32);
    Val csize = b.Local("csize", u32);
    Val follow = b.Local("follow", u32);  // the free block replacing `cur`

    // Lazy initialization: one big free block spanning the heap section.
    b.If(b.G("heap_initialized") == b.U32(0));
    {
      b.Assign(mem32(b, b.U32(heap_base)), b.U32(heap_size - 8));
      b.Assign(mem32(b, b.U32(heap_base + 4)), b.U32(0));
      b.Assign(b.G("heap_free_head"), b.U32(heap_base));
      b.Assign(b.G("heap_initialized"), b.U32(1));
    }
    b.End();

    b.Assign(size, (b.L("size") + b.U32(7)) & ~b.U32(7));
    b.If(size == b.U32(0));
    b.Assign(size, b.U32(8));
    b.End();

    b.Assign(prev, b.U32(0));
    b.Assign(cur, b.G("heap_free_head"));
    b.While(cur != b.U32(0));
    {
      b.Assign(csize, mem32(b, cur));
      b.If(csize >= size);
      {
        // Split when the remainder can hold a header + minimal payload.
        b.If(csize - size >= b.U32(16));
        {
          Val nb = b.Local("nb", u32);
          b.Assign(nb, cur + b.U32(8) + size);
          b.Assign(mem32(b, nb), csize - size - b.U32(8));
          b.Assign(mem32(b, nb + b.U32(4)), mem32(b, cur + b.U32(4)));
          b.Assign(mem32(b, cur), size);
          b.Assign(follow, nb);
        }
        b.Else();
        b.Assign(follow, mem32(b, cur + b.U32(4)));
        b.End();
        // Unlink `cur` from the free list.
        b.If(prev == b.U32(0));
        b.Assign(b.G("heap_free_head"), follow);
        b.Else();
        b.Assign(mem32(b, prev + b.U32(4)), follow);
        b.End();
        b.Assign(b.G("heap_allocs"), b.G("heap_allocs") + b.U32(1));
        b.Ret(b.CastTo(p_u8, cur + b.U32(8)));
      }
      b.End();
      b.Assign(prev, cur);
      b.Assign(cur, mem32(b, cur + b.U32(4)));
    }
    b.End();
    b.Ret(b.Null(p_u8));  // exhausted
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("free", tt.FunctionTy(void_ty, {p_u8}), {"p"});
    fn->set_source_file("heap.c");
    FunctionBuilder b(m, fn);
    b.If(b.CastTo(u32, b.L("p")) == b.U32(0));
    b.RetVoid();
    b.End();
    Val blk = b.Local("blk", u32);
    b.Assign(blk, b.CastTo(u32, b.L("p")) - b.U32(8));
    b.Assign(mem32(b, blk + b.U32(4)), b.G("heap_free_head"));
    b.Assign(b.G("heap_free_head"), blk);
    b.Assign(b.G("heap_frees"), b.G("heap_frees") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
}

}  // namespace opec_apps
