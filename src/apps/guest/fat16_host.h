// Host-side tooling for the FAT16-lite on-disk format used by FatFs-uSD and
// LCD-uSD. The format is implemented twice — here in host C++ (to preload SD
// cards and to verify guest-written volumes) and in guest IR
// (fat16_guest.h) — and the two are cross-validated by tests.
//
// On-disk format ("F16L"):
//   Sector 0 (boot):  u32[0]=0x4631364C magic, [1]=fat_start, [2]=fat_sectors,
//                     [3]=root_start, [4]=data_start, [5]=total_sectors
//   FAT:              u16 per cluster: 0 = free, 0xFFFE = end-of-chain,
//                     otherwise next cluster index; cluster 0 is reserved
//   Root directory:   1 sector of 32 entries x 16 bytes:
//                     {u32 name, u32 size, u32 first_cluster, u32 used}
//   Data:             cluster c (c >= 1) occupies sector data_start + c - 1

#ifndef SRC_APPS_GUEST_FAT16_HOST_H_
#define SRC_APPS_GUEST_FAT16_HOST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/devices/block_device.h"

namespace opec_apps {

struct Fat16Geometry {
  uint32_t fat_start = 1;
  uint32_t fat_sectors = 2;
  uint32_t root_start = 3;
  uint32_t data_start = 4;
  uint32_t total_sectors = 256;
};

inline constexpr uint32_t kFat16Magic = 0x4631364C;  // "L61F" little-endian
inline constexpr uint32_t kFatEof = 0xFFFE;
inline constexpr uint32_t kRootEntries = 32;

// Packs up to 4 characters into the u32 directory-entry name.
uint32_t PackFatName(const std::string& name);

class Fat16Host {
 public:
  explicit Fat16Host(opec_hw::BlockDevice& disk) : disk_(disk) {}

  // Writes a fresh volume.
  void Format(const Fat16Geometry& geometry = {});

  // Reads and validates the boot sector; returns false if not a volume.
  bool Mount();

  // Creates a file with the given content. Requires Mount() (or Format()).
  void AddFile(const std::string& name, const std::vector<uint8_t>& content);

  // Reads a file's full content; empty optional-style: ok=false if missing.
  bool ReadFile(const std::string& name, std::vector<uint8_t>* out);

  std::vector<std::string> ListFiles();

  const Fat16Geometry& geometry() const { return geometry_; }

 private:
  uint32_t FatGet(uint32_t cluster);
  void FatSet(uint32_t cluster, uint32_t value);
  uint32_t FatAlloc();

  opec_hw::BlockDevice& disk_;
  Fat16Geometry geometry_;
};

}  // namespace opec_apps

#endif  // SRC_APPS_GUEST_FAT16_HOST_H_
