#include "src/apps/guest/fat16_guest.h"

#include "src/apps/guest/fat16_host.h"  // shared format constants
#include "src/ir/builder.h"

namespace opec_apps {

using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::StructField;
using opec_ir::Type;
using opec_ir::Val;

void EmitFat16Guest(Module& m) {
  auto& tt = m.types();
  const Type* u8 = tt.U8();
  const Type* u16 = tt.U16();
  const Type* u32 = tt.U32();
  const Type* p_u8 = tt.PointerTo(u8);
  const Type* p_u16 = tt.PointerTo(u16);
  const Type* p_u32 = tt.PointerTo(u32);
  const Type* void_ty = tt.VoidTy();

  const Type* fatfs_ty = tt.StructTy("FatFs", {{"magic", u32, 0},
                                               {"fat_start", u32, 0},
                                               {"fat_sectors", u32, 0},
                                               {"root_start", u32, 0},
                                               {"data_start", u32, 0},
                                               {"total_sectors", u32, 0},
                                               {"mounted", u32, 0}});
  const Type* file_ty = tt.StructTy("FatFile", {{"name", u32, 0},
                                                {"size", u32, 0},
                                                {"first_cluster", u32, 0},
                                                {"cur_cluster", u32, 0},
                                                {"last_cluster", u32, 0},
                                                {"pos", u32, 0},
                                                {"entry_idx", u32, 0},
                                                {"open", u32, 0}});

  m.AddGlobal("SDFatFs", fatfs_ty);
  m.AddGlobal("MyFile", file_ty);
  m.AddGlobal("fat_buf", tt.ArrayOf(u8, 512));
  m.AddGlobal("dir_buf", tt.ArrayOf(u8, 512));

  // Error bookkeeping: the handler only runs on I/O failures, which the
  // normal scenarios never hit — an "untaken branch" that contributes
  // execution-time over-privilege to the operations containing it (Fig. 11).
  m.AddGlobal("fs_err_count", u32);
  m.AddGlobal("fs_err_code", u32);

  // Disk-I/O dispatch table (FatFs's diskio layer): [0]=read, [1]=write.
  const Type* diskio_sig = tt.FunctionTy(void_ty, {u32, p_u8});
  m.AddGlobal("disk_io", tt.ArrayOf(tt.PointerTo(diskio_sig), 2));

  {
    auto* fn = m.AddFunction("fs_panic", tt.FunctionTy(void_ty, {u32}), {"code"});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.G("fs_err_count"), b.G("fs_err_count") + b.U32(1));
    b.Assign(b.G("fs_err_code"), b.L("code"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("disk_init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("diskio.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Idx(b.G("disk_io"), 0u), b.FnPtr("sd_read_sector"));
    b.Assign(b.Idx(b.G("disk_io"), 1u), b.FnPtr("sd_write_sector"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("disk_read", tt.FunctionTy(void_ty, {u32, p_u8}),
                             {"sector", "buf"});
    fn->set_source_file("diskio.c");
    FunctionBuilder b(m, fn);
    b.ICall(diskio_sig, b.Idx(b.G("disk_io"), 0u), {b.L("sector"), b.L("buf")});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("disk_write", tt.FunctionTy(void_ty, {u32, p_u8}),
                             {"sector", "buf"});
    fn->set_source_file("diskio.c");
    FunctionBuilder b(m, fn);
    b.ICall(diskio_sig, b.Idx(b.G("disk_io"), 1u), {b.L("sector"), b.L("buf")});
    b.RetVoid();
    b.Finish();
  }

  auto fs = [&](FunctionBuilder& b, const char* field) { return b.Fld(b.G("SDFatFs"), field); };
  auto file = [&](FunctionBuilder& b, const char* field) { return b.Fld(b.G("MyFile"), field); };
  auto fat_words = [&](FunctionBuilder& b) {
    return b.CastTo(p_u16, b.Addr(b.Idx(b.G("fat_buf"), 0u)));
  };
  auto dir_words = [&](FunctionBuilder& b) {
    return b.CastTo(p_u32, b.Addr(b.Idx(b.G("dir_buf"), 0u)));
  };

  // --- u32 f_format() ---
  {
    auto* fn = m.AddFunction("f_format", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    b.Call("disk_init", {});
    Val w = b.Local("w", p_u32);
    Val i = b.Local("i", u32);
    // Build the boot sector in dir_buf.
    b.Assign(w, dir_words(b));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(128));
    {
      b.Assign(b.Idx(w, i), b.U32(0));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.Idx(w, 0u), b.U32(kFat16Magic));
    b.Assign(b.Idx(w, 1u), b.U32(1));    // fat_start
    b.Assign(b.Idx(w, 2u), b.U32(2));    // fat_sectors
    b.Assign(b.Idx(w, 3u), b.U32(3));    // root_start
    b.Assign(b.Idx(w, 4u), b.U32(4));    // data_start
    b.Assign(b.Idx(w, 5u), b.U32(256));  // total_sectors
    b.Call("disk_write", {b.U32(0), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    // Zero the FAT sectors, reserving cluster 0 in the first.
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(128));
    {
      b.Assign(b.Idx(w, i), b.U32(0));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Call("disk_write", {b.U32(2), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    b.Call("disk_write", {b.U32(3), b.Addr(b.Idx(b.G("dir_buf"), 0u))});  // root
    b.Assign(b.Idx(w, 0u), b.U32(0x0000FFFF));  // cluster 0 reserved
    b.Call("disk_write", {b.U32(1), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    b.Ret(b.U32(0));
    b.Finish();
  }

  // --- u32 f_mount() ---
  {
    auto* fn = m.AddFunction("f_mount", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    b.Call("disk_init", {});
    b.Call("disk_read", {b.U32(0), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    Val w = b.Local("w", p_u32);
    b.Assign(w, dir_words(b));
    b.If(b.Idx(w, 0u) != b.U32(kFat16Magic));
    {
      b.Call("fs_panic", {b.U32(1)});  // corrupt volume: never hit in scenarios
      b.Ret(b.U32(1));
    }
    b.End();
    b.Assign(fs(b, "magic"), b.Idx(w, 0u));
    b.Assign(fs(b, "fat_start"), b.Idx(w, 1u));
    b.Assign(fs(b, "fat_sectors"), b.Idx(w, 2u));
    b.Assign(fs(b, "root_start"), b.Idx(w, 3u));
    b.Assign(fs(b, "data_start"), b.Idx(w, 4u));
    b.Assign(fs(b, "total_sectors"), b.Idx(w, 5u));
    b.Assign(fs(b, "mounted"), b.U32(1));
    b.Ret(b.U32(0));
    b.Finish();
  }

  // --- u32 fat_get(u32 c) ---
  {
    auto* fn = m.AddFunction("fat_get", tt.FunctionTy(u32, {u32}), {"c"});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    b.Call("disk_read",
           {fs(b, "fat_start") + b.L("c") / b.U32(256), b.Addr(b.Idx(b.G("fat_buf"), 0u))});
    b.Ret(b.CastTo(u32, b.Idx(fat_words(b), b.L("c") % b.U32(256))));
    b.Finish();
  }

  // --- void fat_set(u32 c, u32 v) ---
  {
    auto* fn = m.AddFunction("fat_set", tt.FunctionTy(void_ty, {u32, u32}), {"c", "v"});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    Val sector = b.Local("sector", u32);
    b.Assign(sector, fs(b, "fat_start") + b.L("c") / b.U32(256));
    b.Call("disk_read", {sector, b.Addr(b.Idx(b.G("fat_buf"), 0u))});
    b.Assign(b.Idx(fat_words(b), b.L("c") % b.U32(256)), b.CastTo(u16, b.L("v")));
    b.Call("disk_write", {sector, b.Addr(b.Idx(b.G("fat_buf"), 0u))});
    b.RetVoid();
    b.Finish();
  }

  // --- u32 fat_alloc() ---
  {
    auto* fn = m.AddFunction("fat_alloc", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    Val max = b.Local("max", u32);
    Val c = b.Local("c", u32);
    b.Assign(max, fs(b, "fat_sectors") * b.U32(256));
    Val avail = b.Local("avail", u32);
    b.Assign(avail, fs(b, "total_sectors") - fs(b, "data_start") + b.U32(1));
    b.If(avail < max);
    b.Assign(max, avail);
    b.End();
    b.Assign(c, b.U32(1));
    b.While(c < max);
    {
      b.If(b.CallV("fat_get", {c}) == b.U32(0));
      {
        b.Call("fat_set", {c, b.U32(kFatEof)});
        b.Ret(c);
      }
      b.End();
      b.Assign(c, c + b.U32(1));
    }
    b.End();
    b.Ret(b.U32(0));  // volume full
    b.Finish();
  }

  // --- u32 f_create(u32 name) ---
  {
    auto* fn = m.AddFunction("f_create", tt.FunctionTy(u32, {u32}), {"name"});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    b.Call("disk_read", {fs(b, "root_start"), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    Val w = b.Local("w", p_u32);
    Val e = b.Local("e", u32);
    b.Assign(w, dir_words(b));
    b.Assign(e, b.U32(0));
    b.While(e < b.U32(kRootEntries));
    {
      b.If(b.Idx(w, e * b.U32(4) + b.U32(3)) == b.U32(0));  // unused slot
      {
        b.Assign(b.Idx(w, e * b.U32(4) + b.U32(0)), b.L("name"));
        b.Assign(b.Idx(w, e * b.U32(4) + b.U32(1)), b.U32(0));
        b.Assign(b.Idx(w, e * b.U32(4) + b.U32(2)), b.U32(0));
        b.Assign(b.Idx(w, e * b.U32(4) + b.U32(3)), b.U32(1));
        b.Call("disk_write", {fs(b, "root_start"), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
        b.Assign(file(b, "name"), b.L("name"));
        b.Assign(file(b, "size"), b.U32(0));
        b.Assign(file(b, "first_cluster"), b.U32(0));
        b.Assign(file(b, "cur_cluster"), b.U32(0));
        b.Assign(file(b, "last_cluster"), b.U32(0));
        b.Assign(file(b, "pos"), b.U32(0));
        b.Assign(file(b, "entry_idx"), e);
        b.Assign(file(b, "open"), b.U32(1));
        b.Ret(b.U32(0));
      }
      b.End();
      b.Assign(e, e + b.U32(1));
    }
    b.End();
    b.Ret(b.U32(1));  // root directory full
    b.Finish();
  }

  // --- u32 f_open(u32 name) ---
  {
    auto* fn = m.AddFunction("f_open", tt.FunctionTy(u32, {u32}), {"name"});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    b.Call("disk_read", {fs(b, "root_start"), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    Val w = b.Local("w", p_u32);
    Val e = b.Local("e", u32);
    b.Assign(w, dir_words(b));
    b.Assign(e, b.U32(0));
    b.While(e < b.U32(kRootEntries));
    {
      b.If((b.Idx(w, e * b.U32(4) + b.U32(3)) != b.U32(0)) &&
           (b.Idx(w, e * b.U32(4) + b.U32(0)) == b.L("name")));
      {
        b.Assign(file(b, "name"), b.L("name"));
        b.Assign(file(b, "size"), b.Idx(w, e * b.U32(4) + b.U32(1)));
        b.Assign(file(b, "first_cluster"), b.Idx(w, e * b.U32(4) + b.U32(2)));
        b.Assign(file(b, "cur_cluster"), file(b, "first_cluster"));
        b.Assign(file(b, "last_cluster"), b.U32(0));
        b.Assign(file(b, "pos"), b.U32(0));
        b.Assign(file(b, "entry_idx"), e);
        b.Assign(file(b, "open"), b.U32(1));
        b.Ret(b.U32(0));
      }
      b.End();
      b.Assign(e, e + b.U32(1));
    }
    b.End();
    b.Ret(b.U32(1));  // not found
    b.Finish();
  }

  // --- u32 f_append(u8* src, u32 len) ---
  {
    auto* fn = m.AddFunction("f_append", tt.FunctionTy(u32, {p_u8, u32}), {"src", "len"});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    Val c = b.Local("c", u32);
    b.Assign(c, b.CallV("fat_alloc", {}));
    b.If(c == b.U32(0));
    {
      b.Call("fs_panic", {b.U32(2)});  // volume full: never hit in scenarios
      b.Ret(b.U32(1));
    }
    b.End();
    b.If(file(b, "first_cluster") == b.U32(0));
    b.Assign(file(b, "first_cluster"), c);
    b.Else();
    b.Call("fat_set", {file(b, "last_cluster"), c});
    b.End();
    b.Assign(file(b, "last_cluster"), c);
    b.Call("disk_write", {fs(b, "data_start") + c - b.U32(1), b.L("src")});
    b.Assign(file(b, "size"), file(b, "size") + b.L("len"));
    b.Ret(b.U32(0));
    b.Finish();
  }

  // --- u32 f_read_next(u8* dst) ---
  {
    auto* fn = m.AddFunction("f_read_next", tt.FunctionTy(u32, {p_u8}), {"dst"});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    Val c = b.Local("c", u32);
    b.Assign(c, file(b, "cur_cluster"));
    b.If((c == b.U32(0)) || (c == b.U32(kFatEof)) || (file(b, "pos") >= file(b, "size")));
    b.Ret(b.U32(0));
    b.End();
    b.Call("disk_read", {fs(b, "data_start") + c - b.U32(1), b.L("dst")});
    Val n = b.Local("n", u32);
    b.Assign(n, file(b, "size") - file(b, "pos"));
    b.If(n > b.U32(512));
    b.Assign(n, b.U32(512));
    b.End();
    b.Assign(file(b, "pos"), file(b, "pos") + n);
    b.Assign(file(b, "cur_cluster"), b.CallV("fat_get", {c}));
    b.Ret(n);
    b.Finish();
  }

  // --- void f_close() ---
  {
    auto* fn = m.AddFunction("f_close", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("ff.c");
    FunctionBuilder b(m, fn);
    b.Call("disk_read", {fs(b, "root_start"), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    Val w = b.Local("w", p_u32);
    Val e = b.Local("e", u32);
    b.Assign(w, dir_words(b));
    b.Assign(e, file(b, "entry_idx"));
    b.Assign(b.Idx(w, e * b.U32(4) + b.U32(0)), file(b, "name"));
    b.Assign(b.Idx(w, e * b.U32(4) + b.U32(1)), file(b, "size"));
    b.Assign(b.Idx(w, e * b.U32(4) + b.U32(2)), file(b, "first_cluster"));
    b.Assign(b.Idx(w, e * b.U32(4) + b.U32(3)), b.U32(1));
    b.Call("disk_write", {fs(b, "root_start"), b.Addr(b.Idx(b.G("dir_buf"), 0u))});
    b.Assign(file(b, "open"), b.U32(0));
    b.RetVoid();
    b.Finish();
  }
}

}  // namespace opec_apps
