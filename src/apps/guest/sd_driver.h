// Guest-side SD-card (SDIO) driver: emits sector read/write routines into an
// application module. Shared by Animation, FatFs-uSD and LCD-uSD.

#ifndef SRC_APPS_GUEST_SD_DRIVER_H_
#define SRC_APPS_GUEST_SD_DRIVER_H_

#include <cstdint>

#include "src/ir/module.h"

namespace opec_apps {

// Emits (source file "sd_driver.c"):
//   void sd_init()                       — configures the controller
//   void sd_read_sector(u32 sector, u8* dst)   — dst must hold 512 bytes
//   void sd_write_sector(u32 sector, u8* src)
void EmitSdDriver(opec_ir::Module& m, uint32_t sdio_base);

}  // namespace opec_apps

#endif  // SRC_APPS_GUEST_SD_DRIVER_H_
