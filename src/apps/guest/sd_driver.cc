#include "src/apps/guest/sd_driver.h"

#include "src/ir/builder.h"

namespace opec_apps {

using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

void EmitSdDriver(Module& m, uint32_t sdio_base) {
  auto& tt = m.types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* p_u8 = tt.PointerTo(u8);
  const Type* p_u32 = tt.PointerTo(u32);
  const Type* void_ty = tt.VoidTy();

  const uint32_t kCmd = sdio_base + 0x00;
  const uint32_t kArg = sdio_base + 0x04;
  const uint32_t kStatus = sdio_base + 0x08;
  const uint32_t kData = sdio_base + 0x0C;

  {
    auto* fn = m.AddFunction("sd_init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("sd_driver.c");
    FunctionBuilder b(m, fn);
    // Wait until the controller reports ready.
    b.While((b.Mmio32(kStatus) & b.U32(1)) == b.U32(0));
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("sd_read_sector", tt.FunctionTy(void_ty, {u32, p_u8}),
                             {"sector", "dst"});
    fn->set_source_file("sd_driver.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Mmio32(kArg), b.L("sector"));
    b.Assign(b.Mmio32(kCmd), b.U32(1));
    Val w = b.Local("w", p_u32);
    Val i = b.Local("i", u32);
    b.Assign(w, b.CastTo(p_u32, b.L("dst")));
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(128));
    {
      b.Assign(b.Idx(w, i), b.Mmio32(kData));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m.AddFunction("sd_write_sector", tt.FunctionTy(void_ty, {u32, p_u8}),
                             {"sector", "src"});
    fn->set_source_file("sd_driver.c");
    FunctionBuilder b(m, fn);
    b.Assign(b.Mmio32(kArg), b.L("sector"));
    Val w = b.Local("w", p_u32);
    Val i = b.Local("i", u32);
    b.Assign(w, b.CastTo(p_u32, b.L("src")));
    b.Assign(i, b.U32(0));
    // CMD first resets the device's buffer cursor for writes, then data words
    // stream in, then the commit command stores the sector.
    b.Assign(b.Mmio32(kCmd), b.U32(0));
    b.While(i < b.U32(128));
    {
      b.Assign(b.Mmio32(kData), b.Idx(w, i));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.Mmio32(kCmd), b.U32(2));
    b.RetVoid();
    b.Finish();
  }
}

}  // namespace opec_apps
