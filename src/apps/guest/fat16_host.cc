#include "src/apps/guest/fat16_host.h"

#include <cstring>

#include "src/support/check.h"

namespace opec_apps {

using opec_hw::BlockDevice;

namespace {

uint32_t ReadU32(const std::vector<uint8_t>& sector, uint32_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, sector.data() + offset, 4);
  return v;
}

void WriteU32(std::vector<uint8_t>& sector, uint32_t offset, uint32_t value) {
  std::memcpy(sector.data() + offset, &value, 4);
}

}  // namespace

uint32_t PackFatName(const std::string& name) {
  uint32_t packed = 0;
  for (size_t i = 0; i < 4 && i < name.size(); ++i) {
    packed |= static_cast<uint32_t>(static_cast<uint8_t>(name[i])) << (8 * i);
  }
  return packed;
}

void Fat16Host::Format(const Fat16Geometry& geometry) {
  geometry_ = geometry;
  std::vector<uint8_t> boot(BlockDevice::kSectorSize, 0);
  WriteU32(boot, 0, kFat16Magic);
  WriteU32(boot, 4, geometry.fat_start);
  WriteU32(boot, 8, geometry.fat_sectors);
  WriteU32(boot, 12, geometry.root_start);
  WriteU32(boot, 16, geometry.data_start);
  WriteU32(boot, 20, geometry.total_sectors);
  disk_.WriteSectorDirect(0, boot);

  std::vector<uint8_t> zero(BlockDevice::kSectorSize, 0);
  for (uint32_t s = 0; s < geometry.fat_sectors; ++s) {
    disk_.WriteSectorDirect(geometry.fat_start + s, zero);
  }
  // Reserve cluster 0.
  std::vector<uint8_t> fat0 = disk_.ReadSectorDirect(geometry.fat_start);
  fat0[0] = 0xFF;
  fat0[1] = 0xFF;
  disk_.WriteSectorDirect(geometry.fat_start, fat0);
  disk_.WriteSectorDirect(geometry.root_start, zero);
}

bool Fat16Host::Mount() {
  std::vector<uint8_t> boot = disk_.ReadSectorDirect(0);
  if (ReadU32(boot, 0) != kFat16Magic) {
    return false;
  }
  geometry_.fat_start = ReadU32(boot, 4);
  geometry_.fat_sectors = ReadU32(boot, 8);
  geometry_.root_start = ReadU32(boot, 12);
  geometry_.data_start = ReadU32(boot, 16);
  geometry_.total_sectors = ReadU32(boot, 20);
  return true;
}

uint32_t Fat16Host::FatGet(uint32_t cluster) {
  uint32_t sector = geometry_.fat_start + cluster / 256;
  std::vector<uint8_t> fat = disk_.ReadSectorDirect(sector);
  uint32_t off = (cluster % 256) * 2;
  return fat[off] | (static_cast<uint32_t>(fat[off + 1]) << 8);
}

void Fat16Host::FatSet(uint32_t cluster, uint32_t value) {
  uint32_t sector = geometry_.fat_start + cluster / 256;
  std::vector<uint8_t> fat = disk_.ReadSectorDirect(sector);
  uint32_t off = (cluster % 256) * 2;
  fat[off] = static_cast<uint8_t>(value);
  fat[off + 1] = static_cast<uint8_t>(value >> 8);
  disk_.WriteSectorDirect(sector, fat);
}

uint32_t Fat16Host::FatAlloc() {
  uint32_t max_cluster =
      std::min(geometry_.fat_sectors * 256, geometry_.total_sectors - geometry_.data_start + 1);
  for (uint32_t c = 1; c < max_cluster; ++c) {
    if (FatGet(c) == 0) {
      FatSet(c, kFatEof);
      return c;
    }
  }
  OPEC_UNREACHABLE("FAT16-lite volume full");
}

void Fat16Host::AddFile(const std::string& name, const std::vector<uint8_t>& content) {
  std::vector<uint8_t> root = disk_.ReadSectorDirect(geometry_.root_start);
  int slot = -1;
  for (uint32_t e = 0; e < kRootEntries; ++e) {
    if (ReadU32(root, e * 16 + 12) == 0) {
      slot = static_cast<int>(e);
      break;
    }
  }
  OPEC_CHECK_MSG(slot >= 0, "root directory full");

  uint32_t first = 0;
  uint32_t prev = 0;
  for (size_t off = 0; off < content.size() || (off == 0 && content.empty()); off += 512) {
    uint32_t c = FatAlloc();
    if (first == 0) {
      first = c;
    } else {
      FatSet(prev, c);
    }
    prev = c;
    std::vector<uint8_t> sector(BlockDevice::kSectorSize, 0);
    size_t n = std::min<size_t>(512, content.size() - off);
    std::memcpy(sector.data(), content.data() + off, n);
    disk_.WriteSectorDirect(geometry_.data_start + c - 1, sector);
    if (content.empty()) {
      break;
    }
  }
  uint32_t base = static_cast<uint32_t>(slot) * 16;
  WriteU32(root, base + 0, PackFatName(name));
  WriteU32(root, base + 4, static_cast<uint32_t>(content.size()));
  WriteU32(root, base + 8, first);
  WriteU32(root, base + 12, 1);
  disk_.WriteSectorDirect(geometry_.root_start, root);
}

bool Fat16Host::ReadFile(const std::string& name, std::vector<uint8_t>* out) {
  std::vector<uint8_t> root = disk_.ReadSectorDirect(geometry_.root_start);
  uint32_t want = PackFatName(name);
  for (uint32_t e = 0; e < kRootEntries; ++e) {
    uint32_t base = e * 16;
    if (ReadU32(root, base + 12) == 0 || ReadU32(root, base + 0) != want) {
      continue;
    }
    uint32_t size = ReadU32(root, base + 4);
    uint32_t cluster = ReadU32(root, base + 8);
    out->clear();
    while (cluster != 0 && cluster != kFatEof && out->size() < size) {
      std::vector<uint8_t> sector = disk_.ReadSectorDirect(geometry_.data_start + cluster - 1);
      size_t n = std::min<size_t>(512, size - out->size());
      out->insert(out->end(), sector.begin(), sector.begin() + static_cast<long>(n));
      cluster = FatGet(cluster);
    }
    return true;
  }
  return false;
}

std::vector<std::string> Fat16Host::ListFiles() {
  std::vector<std::string> names;
  std::vector<uint8_t> root = disk_.ReadSectorDirect(geometry_.root_start);
  for (uint32_t e = 0; e < kRootEntries; ++e) {
    uint32_t base = e * 16;
    if (ReadU32(root, base + 12) == 0) {
      continue;
    }
    uint32_t packed = ReadU32(root, base + 0);
    std::string name;
    for (int i = 0; i < 4; ++i) {
      char ch = static_cast<char>((packed >> (8 * i)) & 0xFF);
      if (ch != 0) {
        name += ch;
      }
    }
    names.push_back(name);
  }
  return names;
}

}  // namespace opec_apps
