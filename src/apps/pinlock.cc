#include "src/apps/pinlock.h"

#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/text.h"

namespace opec_apps {

using opec_hw::kDwtCyccnt;
using opec_hw::kGpioABase;
using opec_hw::kRccBase;
using opec_hw::kUsart2Base;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::StructField;
using opec_ir::Type;
using opec_ir::Val;

namespace {
constexpr uint32_t kUartSr = kUsart2Base + 0x00;
constexpr uint32_t kUartDr = kUsart2Base + 0x04;
constexpr uint32_t kUartBrr = kUsart2Base + 0x08;
constexpr uint32_t kGpioModer = kGpioABase + 0x00;
constexpr uint32_t kGpioOdr = kGpioABase + 0x14;
}  // namespace

std::unique_ptr<Module> PinLockApp::BuildModule() const {
  auto m = std::make_unique<Module>("pinlock");
  auto& tt = m->types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* p_u8 = tt.PointerTo(u8);
  const Type* void_ty = tt.VoidTy();

  // --- Types & globals ---
  const Type* uart_handle = tt.StructTy(
      "UartHandle", {{"rx_buf", p_u8, 0}, {"rx_len", u32, 0}, {"configured", u32, 0}});

  const Type* verify_sig = tt.FunctionTy(u32, {u32, u32});
  m->AddGlobal("verify_fn", tt.PointerTo(verify_sig));

  m->AddGlobal("PinRxBuffer", tt.ArrayOf(u8, 16));
  m->AddGlobal("KEY", u32);
  m->AddGlobal("result", u32);
  m->AddGlobal("lock_state", u32);
  m->AddGlobal("huart2", uart_handle);
  m->AddGlobal("sys_clock", u32);
  m->AddGlobal("attempts", u32);
  m->AddGlobal("alarm_count", u32);  // only written by the never-taken alarm path
  m->AddGlobal("profile_cycles", u32);

  auto* correct_pin = m->AddGlobal("CORRECT_PIN", tt.ArrayOf(u8, 4), /*is_const=*/true);
  correct_pin->set_initial_data({'1', '2', '3', '4'});
  auto* msg_ok = m->AddGlobal("MSG_OK", tt.ArrayOf(u8, 3), /*is_const=*/true);
  msg_ok->set_initial_data({'O', 'K', '\n'});
  auto* msg_err = m->AddGlobal("MSG_ERR", tt.ArrayOf(u8, 3), /*is_const=*/true);
  msg_err->set_initial_data({'E', 'R', '\n'});
  auto* msg_lk = m->AddGlobal("MSG_LK", tt.ArrayOf(u8, 3), /*is_const=*/true);
  msg_lk->set_initial_data({'L', 'K', '\n'});

  // --- system.c: System_Init ---
  {
    auto* fn = m->AddFunction("System_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("system.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kRccBase + 0x00), b.U32(1u << 24));  // PLL on
    // Wait for PLL ready (bit 25).
    b.While((b.Mmio32(kRccBase + 0x00) & b.U32(1u << 25)) == b.U32(0));
    b.End();
    b.Assign(b.Mmio32(kRccBase + 0x30), b.U32(0x7));  // enable GPIO/UART clocks
    b.Assign(b.G("sys_clock"), b.U32(168000000));
    b.RetVoid();
    b.Finish();
  }

  // --- uart.c: Uart_Init, uart_send ---
  {
    auto* fn = m->AddFunction("Uart_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("uart.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kUartBrr), b.U32(0x16D));  // 115200 @ 42 MHz APB
    b.Assign(b.Mmio32(kUsart2Base + 0x0C), b.U32(1));
    b.Assign(b.Fld(b.G("huart2"), "rx_buf"), b.Addr(b.Idx(b.G("PinRxBuffer"), 0u)));
    b.Assign(b.Fld(b.G("huart2"), "rx_len"), b.U32(0));
    b.Assign(b.Fld(b.G("huart2"), "configured"), b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("uart_send", tt.FunctionTy(void_ty, {p_u8, u32}), {"s", "len"});
    fn->set_source_file("uart.c");
    FunctionBuilder b(*m, fn);
    Val i = b.Local("i", u32);
    b.Assign(i, b.U32(0));
    b.While(i < b.L("len"));
    {
      // Wait for TXE, then write the data register.
      b.While((b.Mmio32(kUartSr) & b.U32(2)) == b.U32(0));
      b.End();
      b.Assign(b.Mmio32(kUartDr), b.Idx(b.L("s"), i));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }

  // --- hal_uart.c: HAL_UART_Receive_IT (the "buggy" HAL routine) ---
  {
    const Type* p_handle = tt.PointerTo(uart_handle);
    auto* fn = m->AddFunction("HAL_UART_Receive_IT", tt.FunctionTy(u32, {p_handle, u32}),
                              {"h", "maxlen"});
    fn->set_source_file("hal_uart.c");
    FunctionBuilder b(*m, fn);
    Val h = b.Deref(b.L("h"));
    b.Assign(b.Fld(h, "rx_len"), b.U32(0));
    Val ch = b.Local("ch", u32);
    b.While(b.U32(1));
    {
      b.If((b.Mmio32(kUartSr) & b.U32(1)) == b.U32(0));
      b.Break();
      b.End();
      b.Assign(ch, b.Mmio32(kUartDr));
      b.If(b.Fld(h, "rx_len") < b.L("maxlen"));
      {
        b.Assign(b.Idx(b.Fld(h, "rx_buf"), b.Fld(h, "rx_len")), ch);
        b.Assign(b.Fld(h, "rx_len"), b.Fld(h, "rx_len") + b.U32(1));
      }
      b.End();
      b.If(ch == b.U32('\n'));
      b.Break();
      b.End();
    }
    b.End();
    b.Ret(b.Fld(h, "rx_len"));
    b.Finish();
  }

  // --- hash.c: hash (FNV-1a), compare ---
  {
    auto* fn = m->AddFunction("hash", tt.FunctionTy(u32, {p_u8, u32}), {"buf", "len"});
    fn->set_source_file("hash.c");
    FunctionBuilder b(*m, fn);
    Val h = b.Local("h", u32);
    Val i = b.Local("i", u32);
    b.Assign(h, b.U32(2166136261u));
    b.Assign(i, b.U32(0));
    b.While(i < b.L("len"));
    {
      b.Assign(h, (h ^ b.CastTo(u32, b.Idx(b.L("buf"), i))) * b.U32(16777619u));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Ret(h);
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("compare", tt.FunctionTy(u32, {u32, u32}), {"a", "b"});
    fn->set_source_file("hash.c");
    FunctionBuilder b(*m, fn);
    b.Ret(b.L("a") == b.L("b"));
    b.Finish();
  }

  // --- key.c: Key_Init ---
  {
    auto* fn = m->AddFunction("Key_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("key.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("KEY"), b.CallV("hash", {b.Addr(b.Idx(b.G("CORRECT_PIN"), 0u)), b.U32(4)}));
    // Register the verification callback (PinLock's one indirect call).
    b.Assign(b.G("verify_fn"), b.FnPtr("compare"));
    b.RetVoid();
    b.Finish();
  }

  // --- lock.c: Init_Lock, do_lock, do_unlock ---
  {
    auto* fn = m->AddFunction("do_lock", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("lock.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kGpioOdr), b.U32(0));
    b.Assign(b.G("lock_state"), b.U32(0));
    b.Call("uart_send", {b.CastTo(p_u8, b.Addr(b.Idx(b.G("MSG_LK"), 0u))), b.U32(3)});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("do_unlock", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("lock.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kGpioOdr), b.U32(1));
    b.Assign(b.G("lock_state"), b.U32(1));
    b.Call("uart_send", {b.CastTo(p_u8, b.Addr(b.Idx(b.G("MSG_OK"), 0u))), b.U32(3)});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Init_Lock", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("lock.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kGpioModer), b.U32(0x1));  // PA0 output
    b.Call("do_lock", {});
    b.RetVoid();
    b.Finish();
  }

  // --- alarm.c: brute-force alarm, never triggered in the scenarios ---
  {
    auto* fn = m->AddFunction("trigger_alarm", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("alarm.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("alarm_count"), b.G("alarm_count") + b.U32(1));
    b.Assign(b.Mmio32(kGpioOdr), b.U32(0x80000000));  // sound the buzzer pin
    b.RetVoid();
    b.Finish();
  }

  // --- main.c: Unlock_Task, Lock_Task, main ---
  {
    auto* fn = m->AddFunction("Unlock_Task", tt.FunctionTy(void_ty, {p_u8, u32}),
                              {"prompt", "plen"});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    b.Call("uart_send", {b.L("prompt"), b.L("plen")});
    Val n = b.Local("n", u32);
    b.Assign(n, b.CallV("HAL_UART_Receive_IT", {b.Addr(b.G("huart2")), b.U32(15)}));
    b.If(n > b.U32(1));
    {
      b.Assign(b.G("attempts"), b.G("attempts") + b.U32(1));
      b.If(b.G("attempts") > b.U32(100000));
      b.Call("trigger_alarm", {});  // untaken branch (brute-force defense)
      b.End();
      b.Assign(b.G("result"),
               b.CallV("hash", {b.Addr(b.Idx(b.G("PinRxBuffer"), 0u)), n - b.U32(1)}));
      b.If(b.ICallV(verify_sig, b.G("verify_fn"), {b.G("result"), b.G("KEY")}) != b.U32(0));
      b.Call("do_unlock", {});
      b.Else();
      b.Call("uart_send", {b.CastTo(p_u8, b.Addr(b.Idx(b.G("MSG_ERR"), 0u))), b.U32(3)});
      b.End();
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Lock_Task", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    Val n = b.Local("n", u32);
    b.Assign(n, b.CallV("HAL_UART_Receive_IT", {b.Addr(b.G("huart2")), b.U32(15)}));
    b.If((n > b.U32(0)) && (b.CastTo(u32, b.Idx(b.G("PinRxBuffer"), 0u)) == b.U32('0')));
    b.Call("do_lock", {});
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    Val start = b.Local("start", u32);
    b.Assign(start, b.Mmio32(kDwtCyccnt));  // DWT profiling: core peripheral
    b.Call("System_Init", {});
    b.Call("Uart_Init", {});
    b.Call("Key_Init", {});
    b.Call("Init_Lock", {});
    Val prompt = b.Local("prompt", tt.ArrayOf(u8, 8));
    b.Assign(b.Idx(prompt, 0u), b.U8('P'));
    b.Assign(b.Idx(prompt, 1u), b.U8('I'));
    b.Assign(b.Idx(prompt, 2u), b.U8('N'));
    b.Assign(b.Idx(prompt, 3u), b.U8('?'));
    // Process pairs of (pin attempt, lock command) while input is pending.
    b.While((b.Mmio32(kUartSr) & b.U32(1)) != b.U32(0));
    {
      b.Call("Unlock_Task", {b.Addr(b.Idx(prompt, 0u)), b.U32(4)});
      b.Call("Lock_Task", {});
    }
    b.End();
    b.Assign(b.G("profile_cycles"), b.Mmio32(kDwtCyccnt) - start);
    b.Ret(b.G("lock_state"));
    b.Finish();
  }

  return m;
}

opec_compiler::PartitionConfig PinLockApp::Partition() const {
  opec_compiler::PartitionConfig config;
  config.entries.push_back({"System_Init", {}});
  config.entries.push_back({"Uart_Init", {}});
  config.entries.push_back({"Key_Init", {}});
  config.entries.push_back({"Init_Lock", {}});
  // Stack info: argument 0 of Unlock_Task points to an 8-byte buffer on the
  // caller's stack (Figure 8 relocation).
  config.entries.push_back({"Unlock_Task", {{0, 8}}});
  config.entries.push_back({"Lock_Task", {}});
  config.sanitize.push_back({"lock_state", 0, 1});
  return config;
}

opec_hw::SocDescription PinLockApp::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"USART2", kUsart2Base, 0x400, false});
  soc.AddPeripheral({"GPIOA", kGpioABase, 0x400, false});
  soc.AddPeripheral({"RCC", kRccBase, 0x400, false});
  return soc;
}

std::unique_ptr<AppDevices> PinLockApp::CreateDevices(opec_hw::Machine& machine) const {
  auto devices = std::make_unique<PinLockDevices>();
  auto uart = std::make_unique<opec_hw::Uart>("USART2", kUsart2Base);
  auto gpio = std::make_unique<opec_hw::Gpio>("GPIOA", kGpioABase);
  auto rcc = std::make_unique<opec_hw::Rcc>("RCC", kRccBase);
  devices->uart = uart.get();
  devices->lock_gpio = gpio.get();
  devices->rcc = rcc.get();
  machine.bus().AttachDevice(uart.get());
  machine.bus().AttachDevice(gpio.get());
  machine.bus().AttachDevice(rcc.get());
  devices->owned.push_back(std::move(uart));
  devices->owned.push_back(std::move(gpio));
  devices->owned.push_back(std::move(rcc));
  return devices;
}

void PinLockApp::PrepareScenario(AppDevices& devices) const {
  auto& d = static_cast<PinLockDevices&>(devices);
  for (int i = 0; i < rounds_; ++i) {
    d.uart->PushRxString("1234\n");  // correct pin -> unlock
    d.uart->PushRxString("0\n");     // lock command
    d.uart->PushRxString("9999\n");  // wrong pin -> error
    d.uart->PushRxString("0\n");     // lock command
  }
}

std::string PinLockApp::CheckScenario(const AppDevices& devices,
                                      const opec_rt::RunResult& result) const {
  const auto& d = static_cast<const PinLockDevices&>(devices);
  if (!result.ok) {
    return "run failed: " + result.violation;
  }
  std::string tx = d.uart->TxString();
  auto count = [&](const std::string& needle) {
    int n = 0;
    for (size_t pos = tx.find(needle); pos != std::string::npos; pos = tx.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  int oks = count("OK\n");
  int errs = count("ER\n");
  if (oks != rounds_ || errs != rounds_) {
    return opec_support::StrPrintf("expected %d OK / %d ER, got %d / %d", rounds_, rounds_, oks,
                                   errs);
  }
  if (!d.lock_gpio->configured()) {
    return "lock GPIO was never configured";
  }
  // The scenario ends with a lock command: final state must be locked.
  if (d.lock_gpio->output() != 0 || result.return_value != 0) {
    return "lock did not end in the locked state";
  }
  return "";
}

}  // namespace opec_apps
