#include "src/apps/camera.h"

#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/text.h"

namespace opec_apps {

using opec_hw::kDcmiBase;
using opec_hw::kDwtCyccnt;
using opec_hw::kGpioABase;
using opec_hw::kRccBase;
using opec_hw::kUsart1Base;
using opec_hw::kUsbOtgBase;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

namespace {
constexpr uint32_t kUsbCmd = kUsbOtgBase + 0x00;
constexpr uint32_t kUsbArg = kUsbOtgBase + 0x04;
constexpr uint32_t kUsbData = kUsbOtgBase + 0x0C;
constexpr uint32_t kDcmiCtrl = kDcmiBase + 0x00;
constexpr uint32_t kDcmiStatus = kDcmiBase + 0x04;
constexpr uint32_t kDcmiData = kDcmiBase + 0x08;
constexpr uint32_t kDcmiLen = kDcmiBase + 0x0C;
constexpr uint32_t kButtonIdr = kGpioABase + 0x10;
}  // namespace

std::unique_ptr<Module> CameraApp::BuildModule() const {
  auto m = std::make_unique<Module>("camera");
  auto& tt = m->types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* p_u32 = tt.PointerTo(u32);
  const Type* void_ty = tt.VoidTy();

  const Type* notify_sig = tt.FunctionTy(void_ty, {});
  // HAL-style completion callbacks, registered during init.
  m->AddGlobal("capture_done_fn", tt.PointerTo(notify_sig));
  m->AddGlobal("save_done_fn", tt.PointerTo(notify_sig));

  m->AddGlobal("photo_buf", tt.ArrayOf(u8, kFrameBytes));
  m->AddGlobal("photo_len", u32);
  m->AddGlobal("save_status", u32);
  m->AddGlobal("button_pressed", u32);
  m->AddGlobal("sys_clock", u32);
  m->AddGlobal("profile_cycles", u32);

  {
    auto* fn = m->AddFunction("System_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("system.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kRccBase + 0x00), b.U32(1u << 24));
    b.While((b.Mmio32(kRccBase + 0x00) & b.U32(1u << 25)) == b.U32(0));
    b.End();
    b.Assign(b.G("sys_clock"), b.U32(180000000));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Button_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_button.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kGpioABase + 0x00), b.U32(0));  // PA0 input
    b.Assign(b.G("button_pressed"), b.U32(0));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("on_capture_done", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_camera.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("button_pressed"), b.U32(0));  // re-arm the trigger
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("on_save_done", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("usbh_msc.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("save_status"), b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Camera_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_camera.c");
    FunctionBuilder b(*m, fn);
    Val len = b.Local("len", u32);
    b.Assign(len, b.Mmio32(kDcmiLen));  // probe the sensor
    b.Assign(b.G("capture_done_fn"), b.FnPtr("on_capture_done"));
    b.Assign(b.G("save_done_fn"), b.FnPtr("on_save_done"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Usb_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("usbh_msc.c");
    FunctionBuilder b(*m, fn);
    b.While((b.Mmio32(kUsbOtgBase + 0x08) & b.U32(1)) == b.U32(0));
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Wait_Button", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    b.While((b.Mmio32(kButtonIdr) & b.U32(1)) == b.U32(0));
    b.End();
    b.Assign(b.G("button_pressed"), b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Capture_Photo", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_camera.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kDcmiCtrl), b.U32(1));  // start capture
    b.While((b.Mmio32(kDcmiStatus) & b.U32(1)) == b.U32(0));
    b.End();
    Val len = b.Local("len", u32);
    b.Assign(len, b.Mmio32(kDcmiLen));
    b.If(len > b.U32(kFrameBytes));
    b.Assign(len, b.U32(kFrameBytes));
    b.End();
    Val w = b.Local("w", p_u32);
    Val i = b.Local("i", u32);
    b.Assign(w, b.CastTo(p_u32, b.Addr(b.Idx(b.G("photo_buf"), 0u))));
    b.Assign(i, b.U32(0));
    b.While(i * b.U32(4) < len);
    {
      b.Assign(b.Idx(w, i), b.Mmio32(kDcmiData));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.G("photo_len"), len);
    b.ICall(notify_sig, b.G("capture_done_fn"), {});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Save_Photo", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("usbh_msc.c");
    FunctionBuilder b(*m, fn);
    // Header sector 0: magic + length; data from sector 1 on.
    Val w = b.Local("w", p_u32);
    Val i = b.Local("i", u32);
    Val s = b.Local("s", u32);
    b.Assign(b.Mmio32(kUsbArg), b.U32(0));
    b.Assign(b.Mmio32(kUsbCmd), b.U32(0));
    b.Assign(b.Mmio32(kUsbData), b.U32(0x50484F54));  // "PHOT"
    b.Assign(b.Mmio32(kUsbData), b.G("photo_len"));
    b.Assign(i, b.U32(2));
    b.While(i < b.U32(128));
    {
      b.Assign(b.Mmio32(kUsbData), b.U32(0));
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.Mmio32(kUsbCmd), b.U32(2));
    // Data sectors.
    b.Assign(w, b.CastTo(p_u32, b.Addr(b.Idx(b.G("photo_buf"), 0u))));
    b.Assign(s, b.U32(0));
    b.While(s * b.U32(512) < b.G("photo_len"));
    {
      b.Assign(b.Mmio32(kUsbArg), s + b.U32(1));
      b.Assign(b.Mmio32(kUsbCmd), b.U32(0));
      b.Assign(i, b.U32(0));
      b.While(i < b.U32(128));
      {
        b.Assign(b.Mmio32(kUsbData), b.Idx(w, s * b.U32(128) + i));
        b.Assign(i, i + b.U32(1));
      }
      b.End();
      b.Assign(b.Mmio32(kUsbCmd), b.U32(2));
      b.Assign(s, s + b.U32(1));
    }
    b.End();
    b.ICall(notify_sig, b.G("save_done_fn"), {});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Report_Status", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("report.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kUsart1Base + 0x08), b.U32(0x16D));
    b.If(b.G("save_status") != b.U32(0));
    {
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('P'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('H'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('O'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('K'));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    Val start = b.Local("start", u32);
    b.Assign(start, b.Mmio32(kDwtCyccnt));
    b.Call("System_Init", {});
    b.Call("Button_Init", {});
    b.Call("Camera_Init", {});
    b.Call("Usb_Init", {});
    b.Call("Wait_Button", {});
    b.Call("Capture_Photo", {});
    b.Call("Save_Photo", {});
    b.Call("Report_Status", {});
    b.Assign(b.G("profile_cycles"), b.Mmio32(kDwtCyccnt) - start);
    b.Ret(b.G("save_status"));
    b.Finish();
  }
  return m;
}

opec_compiler::PartitionConfig CameraApp::Partition() const {
  opec_compiler::PartitionConfig config;
  for (const char* entry : {"System_Init", "Button_Init", "Camera_Init", "Usb_Init",
                            "Wait_Button", "Capture_Photo", "Save_Photo", "Report_Status"}) {
    config.entries.push_back({entry, {}});
  }
  config.sanitize.push_back({"save_status", 0, 1});
  config.sanitize.push_back({"photo_len", 0, kFrameBytes});
  return config;
}

opec_hw::SocDescription CameraApp::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"RCC", kRccBase, 0x400, false});
  soc.AddPeripheral({"GPIOA", kGpioABase, 0x400, false});
  soc.AddPeripheral({"DCMI", kDcmiBase, 0x400, false});
  soc.AddPeripheral({"USB_OTG", kUsbOtgBase, 0x400, false});
  soc.AddPeripheral({"USART1", kUsart1Base, 0x400, false});
  return soc;
}

std::unique_ptr<AppDevices> CameraApp::CreateDevices(opec_hw::Machine& machine) const {
  auto devices = std::make_unique<CameraDevices>();
  auto camera = std::make_unique<opec_hw::Camera>("DCMI", kDcmiBase);
  auto button = std::make_unique<opec_hw::Gpio>("GPIOA", kGpioABase);
  auto usb = std::make_unique<opec_hw::BlockDevice>("USB_OTG", kUsbOtgBase, 64);
  auto uart = std::make_unique<opec_hw::Uart>("USART1", kUsart1Base);
  auto rcc = std::make_unique<opec_hw::Rcc>("RCC", kRccBase);
  devices->camera = camera.get();
  devices->button = button.get();
  devices->usb = usb.get();
  devices->uart = uart.get();
  devices->rcc = rcc.get();
  for (opec_hw::MmioDevice* d : {static_cast<opec_hw::MmioDevice*>(camera.get()),
                                 static_cast<opec_hw::MmioDevice*>(button.get()),
                                 static_cast<opec_hw::MmioDevice*>(usb.get()),
                                 static_cast<opec_hw::MmioDevice*>(uart.get()),
                                 static_cast<opec_hw::MmioDevice*>(rcc.get())}) {
    machine.bus().AttachDevice(d);
  }
  devices->owned.push_back(std::move(camera));
  devices->owned.push_back(std::move(button));
  devices->owned.push_back(std::move(usb));
  devices->owned.push_back(std::move(uart));
  devices->owned.push_back(std::move(rcc));
  return devices;
}

void CameraApp::PrepareScenario(AppDevices& devices) const {
  auto& d = static_cast<CameraDevices&>(devices);
  std::vector<uint8_t> frame(kFrameBytes);
  for (uint32_t i = 0; i < kFrameBytes; ++i) {
    frame[i] = FrameByte(i);
  }
  d.camera->SetFrame(std::move(frame));
  d.button->SetInput(1);  // the user presses the button before the poll
}

std::string CameraApp::CheckScenario(const AppDevices& devices,
                                     const opec_rt::RunResult& result) const {
  const auto& d = static_cast<const CameraDevices&>(devices);
  if (!result.ok) {
    return "run failed: " + result.violation;
  }
  if (result.return_value != 1 || d.uart->TxString() != "PHOK") {
    return "save did not complete";
  }
  if (d.camera->captures() == 0) {
    return "no capture was triggered";
  }
  std::vector<uint8_t> header = d.usb->ReadSectorDirect(0);
  uint32_t magic = header[0] | (header[1] << 8) | (header[2] << 16) |
                   (static_cast<uint32_t>(header[3]) << 24);
  uint32_t len = header[4] | (header[5] << 8) | (header[6] << 16) |
                 (static_cast<uint32_t>(header[7]) << 24);
  if (magic != 0x50484F54 || len != kFrameBytes) {
    return "bad photo header on the USB disk";
  }
  for (uint32_t s = 0; s * 512 < kFrameBytes; ++s) {
    std::vector<uint8_t> sector = d.usb->ReadSectorDirect(s + 1);
    for (uint32_t i = 0; i < 512; ++i) {
      if (sector[i] != FrameByte(s * 512 + i)) {
        return opec_support::StrPrintf("photo byte %u mismatch", s * 512 + i);
      }
    }
  }
  return "";
}

}  // namespace opec_apps
