// Application interface: one implementation per tested workload (the paper's
// six IoT applications + CoreMark, Section 6). An Application supplies
//   * a fresh guest IR module (the "source code"),
//   * the developer inputs (operation entries, stack info, sanitize ranges),
//   * the SoC datasheet and device models,
//   * a scenario: the I/O the testbench feeds in, and the expected outputs.

#ifndef SRC_APPS_APP_H_
#define SRC_APPS_APP_H_

#include <memory>
#include <string>

#include "src/compiler/partition_config.h"
#include "src/hw/machine.h"
#include "src/hw/soc.h"
#include "src/ir/module.h"
#include "src/rt/engine.h"

namespace opec_apps {

// Typed handle to the device models attached to a machine; each application
// defines a subclass with its own devices.
struct AppDevices {
  virtual ~AppDevices() = default;
};

class Application {
 public:
  virtual ~Application() = default;

  virtual std::string name() const = 0;
  virtual opec_hw::Board board() const = 0;

  // Builds a pristine guest module. Called fresh for every image build (the
  // OPEC compile mutates the module).
  virtual std::unique_ptr<opec_ir::Module> BuildModule() const = 0;

  // Developer inputs to OPEC-Compiler (entries, stack info, sanitization).
  virtual opec_compiler::PartitionConfig Partition() const = 0;

  // The SoC datasheet (always includes the ARMv7-M core peripherals).
  virtual opec_hw::SocDescription Soc() const = 0;

  // Creates the device models and attaches them to the machine's bus. The
  // returned handle owns the devices.
  virtual std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const = 0;

  // Feeds the scenario's external inputs (UART bytes, frames, SD content...)
  // before the run.
  virtual void PrepareScenario(AppDevices& devices) const = 0;

  // Verifies the scenario's outputs after the run; returns an empty string on
  // success, a diagnostic otherwise.
  virtual std::string CheckScenario(const AppDevices& devices,
                                    const opec_rt::RunResult& result) const = 0;
};

}  // namespace opec_apps

#endif  // SRC_APPS_APP_H_
