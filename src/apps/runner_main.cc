// runner: command-line driver around AppRun with the observability layer
// attached — runs one workload, optionally exporting the recorded event
// stream (Chrome trace-event JSON for Perfetto / chrome://tracing, or JSONL
// for scripting), printing the per-operation profile table, and rendering
// fault forensic reports for any denied access.
//
//   $ ./build/src/apps/runner --app pinlock --trace-out=trace.json --profile
//
// Flags accept both `--flag value` and `--flag=value` spellings.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/obs/export.h"
#include "src/obs/profile.h"
#include "src/traffic/traffic.h"

namespace {

// Canonical app key: lower-case, '-' folded to '_' (matches host_speed keys).
std::string KeyName(const std::string& name) {
  std::string key;
  for (char c : name) {
    key += c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return key;
}

int Usage() {
  std::fprintf(stderr,
               "usage: runner [--app NAME] [--mode opec|vanilla] [--engine interp|bytecode]\n"
               "              [--rv on|off|report] [--trace-out FILE] [--jsonl-out FILE]\n"
               "              [--traffic rate=N,conns=M,seed=S[,requests=R,...]]\n"
               "              [--profile] [--list]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name = "pinlock";
  std::string mode_name = "opec";
  std::string engine_name = "interp";
  std::string trace_out;
  std::string jsonl_out;
  std::string rv_name = "on";
  bool profile = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    bool has_value = eq != std::string::npos;
    if (has_value) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto take = [&]() -> std::string {
      if (has_value) {
        return value;
      }
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--app") {
      app_name = take();
    } else if (arg == "--mode") {
      mode_name = take();
    } else if (arg == "--engine") {
      engine_name = take();
    } else if (arg == "--trace-out") {
      trace_out = take();
    } else if (arg == "--jsonl-out") {
      jsonl_out = take();
    } else if (arg == "--rv") {
      rv_name = take();
    } else if (arg == "--traffic") {
      opec_traffic::TrafficSpec spec;
      std::string error;
      if (!opec_traffic::ParseTrafficSpec(take(), &spec, &error)) {
        std::fprintf(stderr, "bad --traffic: %s\n", error.c_str());
        return 2;
      }
      opec_traffic::SetDefaultLoadSpec(spec);
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--list") {
      for (const opec_apps::AppFactory& f : opec_apps::AllApps()) {
        std::printf("%s\n", KeyName(f.name).c_str());
      }
      for (const opec_apps::AppFactory& f : opec_apps::TrafficApps()) {
        std::printf("%s\n", KeyName(f.name).c_str());
      }
      return 0;
    } else {
      return Usage();
    }
  }

  opec_apps::BuildMode mode;
  if (mode_name == "opec") {
    mode = opec_apps::BuildMode::kOpec;
  } else if (mode_name == "vanilla") {
    mode = opec_apps::BuildMode::kVanilla;
  } else {
    std::fprintf(stderr, "unknown --mode '%s'; valid modes are: opec vanilla\n",
                 mode_name.c_str());
    return 2;
  }

  opec_apps::EngineKind engine_kind;
  if (engine_name == "interp") {
    engine_kind = opec_apps::EngineKind::kInterp;
  } else if (engine_name == "bytecode") {
    engine_kind = opec_apps::EngineKind::kBytecode;
  } else {
    std::fprintf(stderr, "unknown --engine '%s'; valid tiers are: interp bytecode\n",
                 engine_name.c_str());
    return 2;
  }

  std::unique_ptr<opec_apps::Application> app;
  if (std::optional<opec_apps::AppFactory> factory = opec_apps::FindAppFactory(app_name)) {
    app = factory->make();
  }
  if (app == nullptr) {
    std::fprintf(stderr, "unknown --app '%s'; valid apps are:", app_name.c_str());
    for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
      std::fprintf(stderr, " %s", KeyName(factory.name).c_str());
    }
    for (const opec_apps::AppFactory& factory : opec_apps::TrafficApps()) {
      std::fprintf(stderr, " %s", KeyName(factory.name).c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  if (rv_name != "on" && rv_name != "off" && rv_name != "report") {
    std::fprintf(stderr, "unknown --rv '%s'; valid settings are: on off report\n",
                 rv_name.c_str());
    return 2;
  }

  opec_apps::AppRun run(*app, mode, engine_kind);
  run.EnableEventRecording();
  if (rv_name != "off") {
    run.EnableRv();
  }
  opec_rt::RunResult result = run.Execute();
  std::string check = run.Check();
  std::printf("%s [%s/%s]: ok=%d cycles=%llu statements=%llu\n", app->name().c_str(),
              mode_name.c_str(), opec_apps::EngineKindName(engine_kind), result.ok,
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.statements));
  if (!result.ok) {
    std::printf("violation: %s\n", result.violation.c_str());
  }
  if (!check.empty()) {
    std::printf("scenario check: %s\n", check.c_str());
  }
  if (run.rv() != nullptr) {
    if (rv_name == "report") {
      std::printf("%s", run.rv()->Report().c_str());
    } else if (run.rv()->total_violations() != 0) {
      std::printf("rv: %llu violation(s) — rerun with --rv report for details\n",
                  static_cast<unsigned long long>(run.rv()->total_violations()));
    }
  }

  const opec_obs::Recorder* recorder = run.recorder();
  std::vector<opec_obs::Event> events = recorder->Snapshot();
  opec_obs::Naming naming = run.EventNaming();
  if (recorder->dropped() != 0) {
    std::printf("note: ring buffer wrapped, %llu oldest events dropped from exports\n",
                static_cast<unsigned long long>(recorder->dropped()));
  }

  if (!trace_out.empty()) {
    if (!opec_obs::WriteFile(trace_out, opec_obs::ChromeTraceJson(events, naming,
                                                                  app->name(),
                                                                  recorder->dropped()))) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events, Chrome trace-event JSON)\n", trace_out.c_str(),
                events.size());
  }
  if (!jsonl_out.empty()) {
    if (!opec_obs::WriteFile(jsonl_out,
                             opec_obs::JsonLines(events, naming, recorder->dropped()))) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_out.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events, JSONL)\n", jsonl_out.c_str(), events.size());
  }
  if (profile) {
    std::printf("%s", opec_obs::RenderProfileTable(opec_obs::AggregateProfiles(events), naming)
                          .c_str());
  }
  for (const opec_obs::FaultReport& report : run.engine().fault_reports()) {
    std::printf("\n%s", report.Render().c_str());
  }
  return result.ok && check.empty() ? 0 : 1;
}
