// TCP-Echo (STM32479I-EVAL): a TCP echo server over a netstack-lite (the
// lwIP stand-in) written in guest IR — ethernet framing, IPv4 header
// validation with checksum, and a minimal TCP state machine. Nine operations:
// System_Init, Eth_Init, Net_Init, Rx_Task, Ip_Task, Tcp_Task, Timer_Task,
// Stats_Task + main. The rx/tx frame buffers and the pbuf memory pool are
// shared across the packet-path operations, mirroring the paper's note that
// TCP-Echo's large packet buffers and memory pools are shared among several
// operations.
//
// Default scenario: a TCP handshake, then 5 valid payload segments
// interleaved with 45 invalid frames (bad ethertype / protocol / IP checksum
// / port); the server must emit a SYN-ACK plus 5 exact echoes.
//
// Traffic mode (ROADMAP item 2): constructed with a TrafficSpec, the app
// becomes a long-running server — one firmware boot services the spec's whole
// seeded many-connection workload, and the scenario check compares echo
// count, committed-tx digest and UART stats against the generator's
// guest-replica expectations. The EthVariant picks the device model: the PIO
// Ethernet with its per-frame arrival gaps, or EthernetDma with descriptor
// rings, interrupt coalescing and a load-dependent arrival schedule. Both
// variants keep the same nine-operation partition; only the driver internals
// (eth_poll / eth_send) differ.

#ifndef SRC_APPS_TCP_ECHO_H_
#define SRC_APPS_TCP_ECHO_H_

#include "src/apps/app.h"
#include "src/hw/devices/ethernet.h"
#include "src/hw/devices/ethernet_dma.h"
#include "src/hw/devices/rcc.h"
#include "src/hw/devices/uart.h"
#include "src/traffic/traffic.h"

namespace opec_apps {

struct TcpEchoDevices : AppDevices {
  opec_hw::Ethernet* eth = nullptr;          // PIO variant
  opec_hw::EthernetDma* eth_dma = nullptr;   // DMA variant
  opec_hw::Uart* uart = nullptr;
  opec_hw::Rcc* rcc = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

class TcpEchoApp : public Application {
 public:
  static constexpr int kValidPayloads = 5;
  static constexpr int kInvalidFrames = 45;

  enum class EthVariant { kPio, kDma };

  // The paper's scripted 50-frame scenario over the PIO device.
  TcpEchoApp() = default;
  // Generated traffic; the name distinguishes the registry variants.
  TcpEchoApp(opec_traffic::TrafficSpec spec, EthVariant variant);

  std::string name() const override { return name_; }
  opec_hw::Board board() const override { return opec_hw::Board::kStm32479iEval; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(AppDevices& devices) const override;
  std::string CheckScenario(const AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

  static std::vector<uint8_t> PayloadFor(int index);

 private:
  bool traffic_mode_ = false;
  opec_traffic::TrafficSpec spec_;
  EthVariant variant_ = EthVariant::kPio;
  std::string name_ = "TCP-Echo";
};

}  // namespace opec_apps

#endif  // SRC_APPS_TCP_ECHO_H_
