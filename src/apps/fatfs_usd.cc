#include "src/apps/fatfs_usd.h"

#include "src/apps/guest/fat16_guest.h"
#include "src/apps/guest/fat16_host.h"
#include "src/apps/guest/sd_driver.h"
#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/text.h"

namespace opec_apps {

using opec_hw::kDwtCyccnt;
using opec_hw::kRccBase;
using opec_hw::kSdioBase;
using opec_hw::kUsart1Base;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

namespace {
constexpr uint32_t kFileName = 0x00474F4C;  // "LOG"
}

std::unique_ptr<Module> FatFsUsdApp::BuildModule() const {
  auto m = std::make_unique<Module>("fatfs_usd");
  auto& tt = m->types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* void_ty = tt.VoidTy();

  m->AddGlobal("write_buf", tt.ArrayOf(u8, 512));
  m->AddGlobal("read_buf", tt.ArrayOf(u8, 512));
  m->AddGlobal("write_sum", u32);
  m->AddGlobal("read_sum", u32);
  m->AddGlobal("verify_ok", u32);
  m->AddGlobal("sys_clock", u32);
  m->AddGlobal("profile_cycles", u32);

  EmitSdDriver(*m, kSdioBase);
  EmitFat16Guest(*m);

  {
    auto* fn = m->AddFunction("System_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("system.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kRccBase + 0x00), b.U32(1u << 24));
    b.While((b.Mmio32(kRccBase + 0x00) & b.U32(1u << 25)) == b.U32(0));
    b.End();
    b.Assign(b.Mmio32(kRccBase + 0x30), b.U32(0xFF));
    b.Assign(b.G("sys_clock"), b.U32(180000000));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Sd_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_sd.c");
    FunctionBuilder b(*m, fn);
    b.Call("sd_init", {});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Fs_Format", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("app_fatfs.c");
    FunctionBuilder b(*m, fn);
    b.Ret(b.CallV("f_format", {}));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Fs_Mount", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("app_fatfs.c");
    FunctionBuilder b(*m, fn);
    b.Ret(b.CallV("f_mount", {}));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Create_File", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("app_fatfs.c");
    FunctionBuilder b(*m, fn);
    b.Ret(b.CallV("f_create", {b.U32(kFileName)}));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Write_File", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("app_fatfs.c");
    FunctionBuilder b(*m, fn);
    Val off = b.Local("off", u32);
    Val j = b.Local("j", u32);
    Val chunk = b.Local("chunk", u32);
    b.Assign(b.G("write_sum"), b.U32(0));
    b.Assign(off, b.U32(0));
    b.While(off < b.U32(kFileBytes));
    {
      b.Assign(chunk, b.U32(kFileBytes) - off);
      b.If(chunk > b.U32(512));
      b.Assign(chunk, b.U32(512));
      b.End();
      b.Assign(j, b.U32(0));
      b.While(j < chunk);
      {
        Val byte = (off + j) * b.U32(7) + b.U32(3);
        b.Assign(b.Idx(b.G("write_buf"), j), byte);
        b.Assign(b.G("write_sum"), b.G("write_sum") + (byte & b.U32(0xFF)));
        b.Assign(j, j + b.U32(1));
      }
      b.End();
      b.If(b.CallV("f_append", {b.Addr(b.Idx(b.G("write_buf"), 0u)), chunk}) != b.U32(0));
      b.Ret(b.U32(1));
      b.End();
      b.Assign(off, off + chunk);
    }
    b.End();
    b.Call("f_close", {});
    b.Ret(b.U32(0));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Read_File", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("app_fatfs.c");
    FunctionBuilder b(*m, fn);
    b.If(b.CallV("f_open", {b.U32(kFileName)}) != b.U32(0));
    b.Ret(b.U32(1));
    b.End();
    b.Assign(b.G("read_sum"), b.U32(0));
    Val n = b.Local("n", u32);
    Val j = b.Local("j", u32);
    b.Assign(n, b.CallV("f_read_next", {b.Addr(b.Idx(b.G("read_buf"), 0u))}));
    b.While(n > b.U32(0));
    {
      b.Assign(j, b.U32(0));
      b.While(j < n);
      {
        b.Assign(b.G("read_sum"), b.G("read_sum") + b.CastTo(u32, b.Idx(b.G("read_buf"), j)));
        b.Assign(j, j + b.U32(1));
      }
      b.End();
      b.Assign(n, b.CallV("f_read_next", {b.Addr(b.Idx(b.G("read_buf"), 0u))}));
    }
    b.End();
    b.Ret(b.U32(0));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Verify_File", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("app_fatfs.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("verify_ok"),
             (b.G("read_sum") == b.G("write_sum")) &&
                 (b.Fld(b.G("MyFile"), "size") == b.U32(kFileBytes)));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Report", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("report.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kUsart1Base + 0x08), b.U32(0x16D));  // BRR
    b.If(b.G("verify_ok") != b.U32(0));
    {
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('F'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('S'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('O'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('K'));
    }
    b.Else();
    {
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('F'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('S'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('E'));
      b.Assign(b.Mmio32(kUsart1Base + 0x04), b.U32('R'));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    Val start = b.Local("start", u32);
    b.Assign(start, b.Mmio32(kDwtCyccnt));
    b.Call("System_Init", {});
    b.Call("Sd_Init", {});
    b.Do(b.CallV("Fs_Format", {}));
    b.Do(b.CallV("Fs_Mount", {}));
    b.Do(b.CallV("Create_File", {}));
    b.Do(b.CallV("Write_File", {}));
    b.Do(b.CallV("Read_File", {}));
    b.Call("Verify_File", {});
    b.Call("Report", {});
    b.Assign(b.G("profile_cycles"), b.Mmio32(kDwtCyccnt) - start);
    b.Ret(b.G("verify_ok"));
    b.Finish();
  }
  return m;
}

opec_compiler::PartitionConfig FatFsUsdApp::Partition() const {
  opec_compiler::PartitionConfig config;
  for (const char* entry : {"System_Init", "Sd_Init", "Fs_Format", "Fs_Mount", "Create_File",
                            "Write_File", "Read_File", "Verify_File", "Report"}) {
    config.entries.push_back({entry, {}});
  }
  config.sanitize.push_back({"verify_ok", 0, 1});
  return config;
}

opec_hw::SocDescription FatFsUsdApp::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"RCC", kRccBase, 0x400, false});
  soc.AddPeripheral({"SDIO", kSdioBase, 0x400, false});
  soc.AddPeripheral({"USART1", kUsart1Base, 0x400, false});
  return soc;
}

std::unique_ptr<AppDevices> FatFsUsdApp::CreateDevices(opec_hw::Machine& machine) const {
  auto devices = std::make_unique<FatFsUsdDevices>();
  auto sd = std::make_unique<opec_hw::BlockDevice>("SDIO", kSdioBase, 256);
  auto uart = std::make_unique<opec_hw::Uart>("USART1", kUsart1Base);
  auto rcc = std::make_unique<opec_hw::Rcc>("RCC", kRccBase);
  devices->sd = sd.get();
  devices->uart = uart.get();
  devices->rcc = rcc.get();
  machine.bus().AttachDevice(sd.get());
  machine.bus().AttachDevice(uart.get());
  machine.bus().AttachDevice(rcc.get());
  devices->owned.push_back(std::move(sd));
  devices->owned.push_back(std::move(uart));
  devices->owned.push_back(std::move(rcc));
  return devices;
}

void FatFsUsdApp::PrepareScenario(AppDevices& devices) const {
  (void)devices;  // the guest formats the card itself
}

std::string FatFsUsdApp::CheckScenario(const AppDevices& devices,
                                       const opec_rt::RunResult& result) const {
  const auto& d = static_cast<const FatFsUsdDevices&>(devices);
  if (!result.ok) {
    return "run failed: " + result.violation;
  }
  if (d.uart->TxString() != "FSOK") {
    return "guest verification failed: UART says '" + d.uart->TxString() + "'";
  }
  // Cross-validate: the guest-written volume must be readable by the host
  // FAT16-lite implementation, byte for byte.
  Fat16Host host(*d.sd);
  if (!host.Mount()) {
    return "host cannot mount the guest-formatted volume";
  }
  std::vector<uint8_t> content;
  if (!host.ReadFile("LOG", &content)) {
    return "host cannot find the guest-created file";
  }
  if (content.size() != kFileBytes) {
    return opec_support::StrPrintf("file size %zu != %u", content.size(), kFileBytes);
  }
  for (uint32_t i = 0; i < kFileBytes; ++i) {
    if (content[i] != FileByte(i)) {
      return opec_support::StrPrintf("file byte %u mismatch", i);
    }
  }
  return "";
}

}  // namespace opec_apps
