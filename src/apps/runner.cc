#include "src/apps/runner.h"

#include "src/compiler/image.h"
#include "src/support/check.h"

namespace opec_apps {

AppRun::AppRun(const Application& app, BuildMode mode) : app_(app), mode_(mode) {
  soc_ = app.Soc();
  module_ = app.BuildModule();
  machine_ = std::make_unique<opec_hw::Machine>(app.board());
  devices_ = app.CreateDevices(*machine_);

  if (mode == BuildMode::kOpec) {
    compile_ = std::make_unique<opec_compiler::CompileResult>(
        opec_compiler::CompileOpec(*module_, soc_, app.Partition(), app.board()));
    accounting_ = compile_->policy.accounting;
    monitor_ = std::make_unique<opec_monitor::Monitor>(*machine_, compile_->policy, soc_);
    opec_compiler::LoadGlobals(*machine_, *module_, compile_->layout);
    engine_ = std::make_unique<opec_rt::ExecutionEngine>(*machine_, *module_, compile_->layout,
                                                         monitor_.get());
  } else {
    opec_compiler::VanillaImage image = opec_compiler::BuildVanillaImage(*module_, app.board());
    vanilla_layout_ = image.layout;
    accounting_ = image.accounting;
    opec_compiler::LoadGlobals(*machine_, *module_, vanilla_layout_);
    engine_ = std::make_unique<opec_rt::ExecutionEngine>(*machine_, *module_, vanilla_layout_,
                                                         nullptr);
  }
}

AppRun::~AppRun() = default;

void AppRun::AddAttack(const opec_rt::AttackSpec& attack) { engine_->AddAttack(attack); }

opec_rt::RunResult AppRun::Execute() {
  if (trace_enabled_) {
    engine_->set_trace(&trace_);
  }
  app_.PrepareScenario(*devices_);
  last_result_ = engine_->Run("main");
  return last_result_;
}

std::string AppRun::Check() const { return app_.CheckScenario(*devices_, last_result_); }

}  // namespace opec_apps
