#include "src/apps/runner.h"

#include <cstdlib>

#include "src/compiler/image.h"
#include "src/rt/bytecode/vm.h"
#include "src/support/check.h"

namespace opec_apps {

const char* EngineKindName(EngineKind kind) {
  return kind == EngineKind::kBytecode ? "bytecode" : "interp";
}

std::unique_ptr<opec_rt::Engine> AppRun::MakeEngine() {
  const opec_rt::AddressAssignment& lay = layout();
  opec_rt::Supervisor* sup = monitor_.get();
  if (engine_kind_ == EngineKind::kBytecode) {
    return std::make_unique<opec_rt::bytecode::VM>(*machine_, *module_, lay, sup);
  }
  return std::make_unique<opec_rt::ExecutionEngine>(*machine_, *module_, lay, sup);
}

AppRun::AppRun(const Application& app, BuildMode mode, EngineKind engine_kind)
    : app_(app), mode_(mode), engine_kind_(engine_kind) {
  soc_ = app.Soc();
  module_ = app.BuildModule();
  machine_ = std::make_unique<opec_hw::Machine>(app.board());
  devices_ = app.CreateDevices(*machine_);

  if (mode == BuildMode::kOpec) {
    compile_ = std::make_unique<opec_compiler::CompileResult>(
        opec_compiler::CompileOpec(*module_, soc_, app.Partition(), app.board()));
    accounting_ = compile_->policy.accounting;
    monitor_ = std::make_unique<opec_monitor::Monitor>(*machine_, compile_->policy, soc_);
    opec_compiler::LoadGlobals(*machine_, *module_, compile_->layout);
  } else {
    opec_compiler::VanillaImage image = opec_compiler::BuildVanillaImage(*module_, app.board());
    vanilla_layout_ = image.layout;
    accounting_ = image.accounting;
    opec_compiler::LoadGlobals(*machine_, *module_, vanilla_layout_);
  }
  engine_ = MakeEngine();
}

AppRun::~AppRun() = default;

void AppRun::AddAttack(const opec_rt::AttackSpec& attack) { engine_->AddAttack(attack); }

void AppRun::CaptureBoot() {
  boot_snapshot_ = std::make_unique<opec_snapshot::Snapshot>(
      opec_snapshot::Snapshot::Capture(*machine_));
  // Arm the dirty-page fast path: from here on the bus tracks written pages,
  // and RestoreBoot copies back only those instead of full memory images.
  machine_->bus().CaptureMemoryBaseline();
}

void AppRun::AdoptBootSnapshot(opec_snapshot::Snapshot snapshot) {
  boot_snapshot_ = std::make_unique<opec_snapshot::Snapshot>(std::move(snapshot));
  // Full restore first (the snapshot's memory image replaces whatever the
  // build left), then arm the dirty-page baseline at this — now canonical —
  // quiescent point so later RestoreBoot() calls ride the fast path.
  boot_snapshot_->Restore(*machine_);
  machine_->bus().CaptureMemoryBaseline();
  if (mode_ == BuildMode::kOpec) {
    monitor_ = std::make_unique<opec_monitor::Monitor>(*machine_, compile_->policy, soc_);
  }
  engine_ = MakeEngine();
  probe_.reset();
  trace_.Clear();
  trace_enabled_ = false;
  recorder_.reset();
  rv_.reset();
  extra_sinks_.clear();
  last_result_ = {};
}

void AppRun::RestoreBoot() {
  OPEC_CHECK_MSG(boot_snapshot_ != nullptr, "RestoreBoot() without CaptureBoot()");
  if (machine_->bus().has_memory_baseline()) {
    boot_snapshot_->RestoreFast(*machine_);
  } else {
    boot_snapshot_->Restore(*machine_);
  }
  // The monitor's and engine's pre-run state is entirely constructor-derived
  // (from the immutable policy/module), so fresh objects are equivalent to —
  // and simpler than — rolling back attacks, counters and fault reports.
  if (mode_ == BuildMode::kOpec) {
    monitor_ = std::make_unique<opec_monitor::Monitor>(*machine_, compile_->policy, soc_);
  }
  engine_ = MakeEngine();
  probe_.reset();
  trace_.Clear();
  trace_enabled_ = false;
  recorder_.reset();
  rv_.reset();
  extra_sinks_.clear();
  last_result_ = {};
}

void AppRun::EnableSnapshotProbe() {
  probe_ = std::make_unique<opec_snapshot::RoundTripProbe>(*machine_, monitor_.get(),
                                                           engine_.get());
  engine_->set_supervisor(probe_.get());
}

opec_snapshot::Snapshot AppRun::CaptureState() const {
  return opec_snapshot::Snapshot::Capture(*machine_, monitor_.get(), engine_.get());
}

void AppRun::EnableEventRecording(size_t capacity) {
  if (recorder_ == nullptr) {
    recorder_ = std::make_unique<opec_obs::Recorder>(capacity);
  }
}

void AppRun::EnableRv() {
  if (rv_ != nullptr) {
    return;
  }
  opec_rv::RvEnv env;
  env.mpu = &machine_->mpu();
  env.opec_mode = mode_ == BuildMode::kOpec;
  if (compile_ != nullptr) {
    for (const opec_compiler::OperationPolicy& op : compile_->policy.operations) {
      for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
        env.shadow_owners.emplace_back(op.id, static_cast<uint32_t>(sp.var_index));
      }
    }
  }
  rv_ = opec_rv::MakeStandardRvSink(env);
}

opec_obs::Naming AppRun::EventNaming() const {
  opec_obs::Naming naming;
  naming.functions.reserve(module_->functions().size());
  for (const auto& fn : module_->functions()) {
    naming.functions.push_back(fn->name());
  }
  if (compile_ != nullptr) {
    naming.operations.reserve(compile_->policy.operations.size());
    for (const auto& op : compile_->policy.operations) {
      naming.operations.push_back(op.name);
    }
  }
  return naming;
}

opec_rt::RunResult AppRun::Execute() {
  trace_.Bind(module_.get());
  if (rv_ == nullptr) {
    const char* force = std::getenv("OPEC_RV");
    if (force != nullptr && force[0] != '\0' && force[0] != '0') {
      EnableRv();
    }
  }
  // Sink order (DESIGN.md §15): trace, recorder, extra sinks, then RV — so
  // the recorder (and therefore a violation's `recent` context) has seen
  // every event by the time a monitor fires on it.
  opec_obs::ScopedSink trace_sink(trace_enabled_ ? &trace_ : nullptr);
  opec_obs::ScopedSink recorder_sink(recorder_.get());
  std::vector<std::unique_ptr<opec_obs::ScopedSink>> extra;
  extra.reserve(extra_sinks_.size());
  for (opec_obs::Sink* sink : extra_sinks_) {
    extra.push_back(std::make_unique<opec_obs::ScopedSink>(sink));
  }
  opec_obs::ScopedSink rv_sink(rv_.get());
  app_.PrepareScenario(*devices_);
  last_result_ = engine_->Run("main");
  if (rv_ != nullptr) {
    rv_->Finish(!last_result_.ok);
  }
  return last_result_;
}

std::string AppRun::Check() const { return app_.CheckScenario(*devices_, last_result_); }

}  // namespace opec_apps
