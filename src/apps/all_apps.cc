#include "src/apps/all_apps.h"

#include "src/apps/animation.h"
#include "src/apps/camera.h"
#include "src/apps/coremark.h"
#include "src/apps/fatfs_usd.h"
#include "src/apps/lcd_usd.h"
#include "src/apps/pinlock.h"
#include "src/apps/tcp_echo.h"

namespace opec_apps {

std::vector<AppFactory> AllApps() {
  return {
      {"PinLock", [] { return std::unique_ptr<Application>(new PinLockApp()); }, true},
      {"Animation", [] { return std::unique_ptr<Application>(new AnimationApp()); }, true},
      {"FatFs-uSD", [] { return std::unique_ptr<Application>(new FatFsUsdApp()); }, true},
      {"LCD-uSD", [] { return std::unique_ptr<Application>(new LcdUsdApp()); }, true},
      {"TCP-Echo", [] { return std::unique_ptr<Application>(new TcpEchoApp()); }, true},
      {"Camera", [] { return std::unique_ptr<Application>(new CameraApp()); }, false},
      {"CoreMark", [] { return std::unique_ptr<Application>(new CoreMarkApp()); }, false},
  };
}

}  // namespace opec_apps
