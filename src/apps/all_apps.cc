#include "src/apps/all_apps.h"

#include <cctype>

#include "src/apps/animation.h"
#include "src/apps/camera.h"
#include "src/apps/coremark.h"
#include "src/apps/fatfs_usd.h"
#include "src/apps/lcd_usd.h"
#include "src/apps/pinlock.h"
#include "src/apps/tcp_echo.h"

namespace opec_apps {

std::vector<AppFactory> AllApps() {
  return {
      {"PinLock", [] { return std::unique_ptr<Application>(new PinLockApp()); }, true},
      {"Animation", [] { return std::unique_ptr<Application>(new AnimationApp()); }, true},
      {"FatFs-uSD", [] { return std::unique_ptr<Application>(new FatFsUsdApp()); }, true},
      {"LCD-uSD", [] { return std::unique_ptr<Application>(new LcdUsdApp()); }, true},
      {"TCP-Echo", [] { return std::unique_ptr<Application>(new TcpEchoApp()); }, true},
      {"Camera", [] { return std::unique_ptr<Application>(new CameraApp()); }, false},
      {"CoreMark", [] { return std::unique_ptr<Application>(new CoreMarkApp()); }, false},
  };
}

std::vector<AppFactory> TrafficApps() {
  return {
      {"TCP-Echo-Load",
       [] {
         return std::unique_ptr<Application>(new TcpEchoApp(
             opec_traffic::DefaultLoadSpec(), TcpEchoApp::EthVariant::kPio));
       },
       false},
      {"TCP-Echo-DMA",
       [] {
         return std::unique_ptr<Application>(new TcpEchoApp(
             opec_traffic::DefaultLoadSpec(), TcpEchoApp::EthVariant::kDma));
       },
       false},
  };
}

namespace {
// "TCP-Echo-Load", "tcp_echo_load" and "tcp-echo-load" all name the same app
// (same folding the runner and campaign CLIs apply).
std::string FoldName(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}
}  // namespace

std::optional<AppFactory> FindAppFactory(const std::string& name) {
  const std::string folded = FoldName(name);
  for (const std::vector<AppFactory>& registry : {AllApps(), TrafficApps()}) {
    for (const AppFactory& app : registry) {
      if (app.name == name || FoldName(app.name) == folded) {
        return app;
      }
    }
  }
  return std::nullopt;
}

}  // namespace opec_apps
