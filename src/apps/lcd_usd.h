// LCD-uSD (STM32479I-EVAL): presents pictures pre-stored on a FAT16-lite SD
// volume with fade-in/fade-out effects. Eleven operations: System_Init,
// Sd_Init, Lcd_Init, Fs_Mount, Open_Picture, Load_Chunk, Display_Chunk,
// Fade_In, Fade_Out, Close_Picture + main.

#ifndef SRC_APPS_LCD_USD_H_
#define SRC_APPS_LCD_USD_H_

#include "src/apps/app.h"
#include "src/hw/devices/block_device.h"
#include "src/hw/devices/lcd.h"
#include "src/hw/devices/rcc.h"

namespace opec_apps {

struct LcdUsdDevices : AppDevices {
  opec_hw::BlockDevice* sd = nullptr;
  opec_hw::Lcd* lcd = nullptr;
  opec_hw::Rcc* rcc = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

class LcdUsdApp : public Application {
 public:
  static constexpr int kPictures = 6;
  static constexpr uint32_t kPictureBytes = 1024;  // 2 clusters per picture

  std::string name() const override { return "LCD-uSD"; }
  opec_hw::Board board() const override { return opec_hw::Board::kStm32479iEval; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(AppDevices& devices) const override;
  std::string CheckScenario(const AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

  static uint8_t PictureByte(int index, uint32_t offset) {
    return static_cast<uint8_t>((static_cast<uint32_t>(index) * 53 + offset * 13 + 9) & 0xFF);
  }
};

}  // namespace opec_apps

#endif  // SRC_APPS_LCD_USD_H_
