#include "src/apps/animation.h"

#include "src/apps/guest/lcd_driver.h"
#include "src/apps/guest/sd_driver.h"
#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/text.h"

namespace opec_apps {

using opec_hw::kDcmiBase;
using opec_hw::kDwtCyccnt;
using opec_hw::kLcdBase;
using opec_hw::kRccBase;
using opec_hw::kSdioBase;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

uint8_t AnimationApp::PictureByte(int index, uint32_t offset) {
  return static_cast<uint8_t>((static_cast<uint32_t>(index) * 37 + offset * 11 + 5) & 0xFF);
}

std::unique_ptr<Module> AnimationApp::BuildModule() const {
  auto m = std::make_unique<Module>("animation");
  auto& tt = m->types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* void_ty = tt.VoidTy();

  const Type* p_u8 = tt.PointerTo(u8);
  const Type* brightness_sig = tt.FunctionTy(void_ty, {u32});
  const Type* draw_sig = tt.FunctionTy(void_ty, {p_u8, u32});
  m->AddGlobal("brightness_fn", tt.PointerTo(brightness_sig));
  m->AddGlobal("draw_fn", tt.PointerTo(draw_sig));

  m->AddGlobal("pic_buf", tt.ArrayOf(u8, kPictureBytes));
  m->AddGlobal("frame_count", u32);
  m->AddGlobal("brightness", u32);
  m->AddGlobal("sys_clock", u32);
  m->AddGlobal("profile_cycles", u32);

  EmitSdDriver(*m, kSdioBase);
  EmitLcdDriver(*m, kLcdBase);

  {
    auto* fn = m->AddFunction("System_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("system.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kRccBase + 0x00), b.U32(1u << 24));
    b.While((b.Mmio32(kRccBase + 0x00) & b.U32(1u << 25)) == b.U32(0));
    b.End();
    b.Assign(b.Mmio32(kRccBase + 0x30), b.U32(0xFF));
    b.Assign(b.G("sys_clock"), b.U32(180000000));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Sd_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_sd.c");
    FunctionBuilder b(*m, fn);
    b.Call("sd_init", {});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Lcd_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_lcd.c");
    FunctionBuilder b(*m, fn);
    b.Call("lcd_init", {});
    b.Assign(b.G("brightness"), b.U32(0));
    // HAL-style callback registration (the app's indirect-call sites).
    b.Assign(b.G("brightness_fn"), b.FnPtr("lcd_set_brightness"));
    b.Assign(b.G("draw_fn"), b.FnPtr("lcd_draw"));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Load_Picture", tt.FunctionTy(void_ty, {u32}), {"index"});
    fn->set_source_file("animation.c");
    FunctionBuilder b(*m, fn);
    Val s = b.Local("s", u32);
    b.Assign(s, b.U32(0));
    b.While(s < b.U32(kPictureBytes / 512));
    {
      b.Call("sd_read_sector", {b.L("index") * b.U32(kPictureBytes / 512) + s,
                                b.Addr(b.Idx(b.G("pic_buf"), s * b.U32(512)))});
      b.Assign(s, s + b.U32(1));
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Display_Picture", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("animation.c");
    FunctionBuilder b(*m, fn);
    b.ICall(draw_sig, b.G("draw_fn"),
            {b.Addr(b.Idx(b.G("pic_buf"), 0u)), b.U32(kPictureBytes)});
    b.Assign(b.G("frame_count"), b.G("frame_count") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Fade_In", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("animation.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("brightness"), b.U32(0));
    b.While(b.G("brightness") < b.U32(255));
    {
      b.Assign(b.G("brightness"), b.G("brightness") + b.U32(51));
      b.ICall(brightness_sig, b.G("brightness_fn"), {b.G("brightness")});
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Fade_Out", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("animation.c");
    FunctionBuilder b(*m, fn);
    b.While(b.G("brightness") > b.U32(0));
    {
      b.Assign(b.G("brightness"), b.G("brightness") - b.U32(51));
      b.ICall(brightness_sig, b.G("brightness_fn"), {b.G("brightness")});
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    Val start = b.Local("start", u32);
    b.Assign(start, b.Mmio32(kDwtCyccnt));
    b.Call("System_Init", {});
    b.Call("Sd_Init", {});
    b.Call("Lcd_Init", {});
    Val i = b.Local("i", u32);
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(kPictures));
    {
      b.Call("Fade_Out", {});
      b.Call("Load_Picture", {i});
      b.Call("Display_Picture", {});
      b.Call("Fade_In", {});
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.G("profile_cycles"), b.Mmio32(kDwtCyccnt) - start);
    b.Ret(b.G("frame_count"));
    b.Finish();
  }
  return m;
}

opec_compiler::PartitionConfig AnimationApp::Partition() const {
  opec_compiler::PartitionConfig config;
  config.entries.push_back({"System_Init", {}});
  config.entries.push_back({"Sd_Init", {}});
  config.entries.push_back({"Lcd_Init", {}});
  config.entries.push_back({"Load_Picture", {}});
  config.entries.push_back({"Display_Picture", {}});
  config.entries.push_back({"Fade_In", {}});
  config.entries.push_back({"Fade_Out", {}});
  config.sanitize.push_back({"brightness", 0, 255});
  return config;
}

opec_hw::SocDescription AnimationApp::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"RCC", kRccBase, 0x400, false});
  soc.AddPeripheral({"SDIO", kSdioBase, 0x400, false});
  soc.AddPeripheral({"LCD", kLcdBase, 0x400, false});
  return soc;
}

std::unique_ptr<AppDevices> AnimationApp::CreateDevices(opec_hw::Machine& machine) const {
  auto devices = std::make_unique<AnimationDevices>();
  auto sd = std::make_unique<opec_hw::BlockDevice>("SDIO", kSdioBase, 256);
  auto lcd = std::make_unique<opec_hw::Lcd>("LCD", kLcdBase);
  auto rcc = std::make_unique<opec_hw::Rcc>("RCC", kRccBase);
  devices->sd = sd.get();
  devices->lcd = lcd.get();
  devices->rcc = rcc.get();
  machine.bus().AttachDevice(sd.get());
  machine.bus().AttachDevice(lcd.get());
  machine.bus().AttachDevice(rcc.get());
  devices->owned.push_back(std::move(sd));
  devices->owned.push_back(std::move(lcd));
  devices->owned.push_back(std::move(rcc));
  return devices;
}

void AnimationApp::PrepareScenario(AppDevices& devices) const {
  auto& d = static_cast<AnimationDevices&>(devices);
  for (int pic = 0; pic < kPictures; ++pic) {
    for (uint32_t s = 0; s < kPictureBytes / 512; ++s) {
      std::vector<uint8_t> sector(512);
      for (uint32_t i = 0; i < 512; ++i) {
        sector[i] = PictureByte(pic, s * 512 + i);
      }
      d.sd->WriteSectorDirect(static_cast<uint32_t>(pic) * (kPictureBytes / 512) + s, sector);
    }
  }
}

std::string AnimationApp::CheckScenario(const AppDevices& devices,
                                        const opec_rt::RunResult& result) const {
  const auto& d = static_cast<const AnimationDevices&>(devices);
  if (!result.ok) {
    return "run failed: " + result.violation;
  }
  if (result.return_value != kPictures) {
    return opec_support::StrPrintf("expected %d frames displayed, got %u", kPictures,
                                   result.return_value);
  }
  if (d.lcd->pixels_written() != static_cast<uint64_t>(kPictures) * kPictureBytes) {
    return "wrong number of pixels drawn";
  }
  // The framebuffer must hold the last picture.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t expected = PictureByte(kPictures - 1, i);
    if (d.lcd->PixelAt(i % opec_hw::Lcd::kWidth, i / opec_hw::Lcd::kWidth) != expected) {
      return opec_support::StrPrintf("pixel %u mismatch", i);
    }
  }
  // Fades happened: 5 brightness steps up per frame + 5 down between frames
  // (the first Fade_Out is a no-op at brightness 0).
  if (d.lcd->brightness_history().size() < static_cast<size_t>(kPictures) * 10 - 5) {
    return "missing fade transitions";
  }
  return "";
}

}  // namespace opec_apps
