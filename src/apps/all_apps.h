// Registry of every evaluated workload (the paper's Section 6 line-up).

#ifndef SRC_APPS_ALL_APPS_H_
#define SRC_APPS_ALL_APPS_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/app.h"

namespace opec_apps {

struct AppFactory {
  std::string name;
  std::function<std::unique_ptr<Application>()> make;
  // The five applications ACES also evaluated (used by Figures 10/11 and
  // Table 2's comparison).
  bool in_aces_comparison = false;
};

// All seven workloads, in the paper's order: PinLock, Animation, FatFs-uSD,
// LCD-uSD, TCP-Echo, Camera, CoreMark.
std::vector<AppFactory> AllApps();

// Traffic-mode variants of the net apps (TCP-Echo-Load over the PIO device,
// TCP-Echo-DMA over the descriptor-ring device). Kept out of AllApps() so
// figure/table output over the paper line-up stays stable; the specs come
// from opec_traffic::DefaultLoadSpec() at make() time.
std::vector<AppFactory> TrafficApps();

// Looks up `name` (exact or case/sep-folded, as the CLIs accept) across
// AllApps() ∪ TrafficApps(). Returns nullopt if unknown.
std::optional<AppFactory> FindAppFactory(const std::string& name);

}  // namespace opec_apps

#endif  // SRC_APPS_ALL_APPS_H_
