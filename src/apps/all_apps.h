// Registry of every evaluated workload (the paper's Section 6 line-up).

#ifndef SRC_APPS_ALL_APPS_H_
#define SRC_APPS_ALL_APPS_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/apps/app.h"

namespace opec_apps {

struct AppFactory {
  std::string name;
  std::function<std::unique_ptr<Application>()> make;
  // The five applications ACES also evaluated (used by Figures 10/11 and
  // Table 2's comparison).
  bool in_aces_comparison = false;
};

// All seven workloads, in the paper's order: PinLock, Animation, FatFs-uSD,
// LCD-uSD, TCP-Echo, Camera, CoreMark.
std::vector<AppFactory> AllApps();

}  // namespace opec_apps

#endif  // SRC_APPS_ALL_APPS_H_
