#include "src/apps/lcd_usd.h"

#include "src/apps/guest/fat16_guest.h"
#include "src/apps/guest/fat16_host.h"
#include "src/apps/guest/lcd_driver.h"
#include "src/apps/guest/sd_driver.h"
#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/text.h"

namespace opec_apps {

using opec_hw::kDwtCyccnt;
using opec_hw::kLcdBase;
using opec_hw::kRccBase;
using opec_hw::kSdioBase;
using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::Val;

std::unique_ptr<Module> LcdUsdApp::BuildModule() const {
  auto m = std::make_unique<Module>("lcd_usd");
  auto& tt = m->types();
  const Type* u8 = tt.U8();
  const Type* u32 = tt.U32();
  const Type* void_ty = tt.VoidTy();

  m->AddGlobal("chunk_buf", tt.ArrayOf(u8, 512));
  m->AddGlobal("chunk_len", u32);
  m->AddGlobal("brightness", u32);
  m->AddGlobal("pictures_shown", u32);
  m->AddGlobal("sys_clock", u32);
  m->AddGlobal("profile_cycles", u32);

  EmitSdDriver(*m, kSdioBase);
  EmitLcdDriver(*m, kLcdBase);
  EmitFat16Guest(*m);

  {
    auto* fn = m->AddFunction("System_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("system.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Mmio32(kRccBase + 0x00), b.U32(1u << 24));
    b.While((b.Mmio32(kRccBase + 0x00) & b.U32(1u << 25)) == b.U32(0));
    b.End();
    b.Assign(b.G("sys_clock"), b.U32(180000000));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Sd_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_sd.c");
    FunctionBuilder b(*m, fn);
    b.Call("sd_init", {});
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Lcd_Init", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("bsp_lcd.c");
    FunctionBuilder b(*m, fn);
    b.Call("lcd_init", {});
    b.Assign(b.G("brightness"), b.U32(0));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Fs_Mount", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("app_fatfs.c");
    FunctionBuilder b(*m, fn);
    b.Ret(b.CallV("f_mount", {}));
    b.Finish();
  }
  {
    // Opens picture file "PICn" (names are "PIC0".."PIC5" packed into u32).
    auto* fn = m->AddFunction("Open_Picture", tt.FunctionTy(u32, {u32}), {"index"});
    fn->set_source_file("viewer.c");
    FunctionBuilder b(*m, fn);
    Val name = b.Local("pic_name", u32);
    b.Assign(name, b.U32(0x00434950) | ((b.U32('0') + b.L("index")) << b.U32(24)));
    b.Ret(b.CallV("f_open", {name}));
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Load_Chunk", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("viewer.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("chunk_len"), b.CallV("f_read_next", {b.Addr(b.Idx(b.G("chunk_buf"), 0u))}));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Display_Chunk", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("viewer.c");
    FunctionBuilder b(*m, fn);
    b.If(b.G("chunk_len") > b.U32(0));
    b.Call("lcd_draw", {b.Addr(b.Idx(b.G("chunk_buf"), 0u)), b.G("chunk_len")});
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Fade_In", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("viewer.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.G("brightness"), b.U32(0));
    b.While(b.G("brightness") < b.U32(255));
    {
      b.Assign(b.G("brightness"), b.G("brightness") + b.U32(51));
      b.Call("lcd_set_brightness", {b.G("brightness")});
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Fade_Out", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("viewer.c");
    FunctionBuilder b(*m, fn);
    b.While(b.G("brightness") > b.U32(0));
    {
      b.Assign(b.G("brightness"), b.G("brightness") - b.U32(51));
      b.Call("lcd_set_brightness", {b.G("brightness")});
    }
    b.End();
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("Close_Picture", tt.FunctionTy(void_ty, {}), {});
    fn->set_source_file("viewer.c");
    FunctionBuilder b(*m, fn);
    b.Assign(b.Fld(b.G("MyFile"), "open"), b.U32(0));
    b.Assign(b.G("pictures_shown"), b.G("pictures_shown") + b.U32(1));
    b.RetVoid();
    b.Finish();
  }
  {
    auto* fn = m->AddFunction("main", tt.FunctionTy(u32, {}), {});
    fn->set_source_file("main.c");
    FunctionBuilder b(*m, fn);
    Val start = b.Local("start", u32);
    b.Assign(start, b.Mmio32(kDwtCyccnt));
    b.Call("System_Init", {});
    b.Call("Sd_Init", {});
    b.Call("Lcd_Init", {});
    b.If(b.CallV("Fs_Mount", {}) != b.U32(0));
    b.Ret(b.U32(0));
    b.End();
    Val i = b.Local("i", u32);
    b.Assign(i, b.U32(0));
    b.While(i < b.U32(kPictures));
    {
      b.Call("Fade_Out", {});
      b.If(b.CallV("Open_Picture", {i}) == b.U32(0));
      {
        b.Call("Load_Chunk", {});
        b.While(b.G("chunk_len") > b.U32(0));
        {
          b.Call("Display_Chunk", {});
          b.Call("Load_Chunk", {});
        }
        b.End();
        b.Call("Close_Picture", {});
      }
      b.End();
      b.Call("Fade_In", {});
      b.Assign(i, i + b.U32(1));
    }
    b.End();
    b.Assign(b.G("profile_cycles"), b.Mmio32(kDwtCyccnt) - start);
    b.Ret(b.G("pictures_shown"));
    b.Finish();
  }
  return m;
}

opec_compiler::PartitionConfig LcdUsdApp::Partition() const {
  opec_compiler::PartitionConfig config;
  for (const char* entry : {"System_Init", "Sd_Init", "Lcd_Init", "Fs_Mount", "Open_Picture",
                            "Load_Chunk", "Display_Chunk", "Fade_In", "Fade_Out",
                            "Close_Picture"}) {
    config.entries.push_back({entry, {}});
  }
  config.sanitize.push_back({"brightness", 0, 255});
  config.sanitize.push_back({"chunk_len", 0, 512});
  return config;
}

opec_hw::SocDescription LcdUsdApp::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"RCC", kRccBase, 0x400, false});
  soc.AddPeripheral({"SDIO", kSdioBase, 0x400, false});
  soc.AddPeripheral({"LCD", kLcdBase, 0x400, false});
  return soc;
}

std::unique_ptr<AppDevices> LcdUsdApp::CreateDevices(opec_hw::Machine& machine) const {
  auto devices = std::make_unique<LcdUsdDevices>();
  auto sd = std::make_unique<opec_hw::BlockDevice>("SDIO", kSdioBase, 256);
  auto lcd = std::make_unique<opec_hw::Lcd>("LCD", kLcdBase);
  auto rcc = std::make_unique<opec_hw::Rcc>("RCC", kRccBase);
  devices->sd = sd.get();
  devices->lcd = lcd.get();
  devices->rcc = rcc.get();
  machine.bus().AttachDevice(sd.get());
  machine.bus().AttachDevice(lcd.get());
  machine.bus().AttachDevice(rcc.get());
  devices->owned.push_back(std::move(sd));
  devices->owned.push_back(std::move(lcd));
  devices->owned.push_back(std::move(rcc));
  return devices;
}

void LcdUsdApp::PrepareScenario(AppDevices& devices) const {
  auto& d = static_cast<LcdUsdDevices&>(devices);
  // Pre-store the pictures on a freshly formatted FAT16-lite volume.
  Fat16Host host(*d.sd);
  host.Format();
  for (int pic = 0; pic < kPictures; ++pic) {
    std::vector<uint8_t> content(kPictureBytes);
    for (uint32_t i = 0; i < kPictureBytes; ++i) {
      content[i] = PictureByte(pic, i);
    }
    host.AddFile(opec_support::StrPrintf("PIC%d", pic), content);
  }
}

std::string LcdUsdApp::CheckScenario(const AppDevices& devices,
                                     const opec_rt::RunResult& result) const {
  const auto& d = static_cast<const LcdUsdDevices&>(devices);
  if (!result.ok) {
    return "run failed: " + result.violation;
  }
  if (result.return_value != kPictures) {
    return opec_support::StrPrintf("expected %d pictures shown, got %u", kPictures,
                                   result.return_value);
  }
  if (d.lcd->pixels_written() != static_cast<uint64_t>(kPictures) * kPictureBytes) {
    return "wrong number of pixels drawn";
  }
  // lcd_draw restarts at (0,0) per chunk, so the framebuffer holds the last
  // picture's final 512-byte chunk.
  for (uint32_t i = 0; i < 128; ++i) {
    uint32_t expected = PictureByte(kPictures - 1, 512 + i);
    if (d.lcd->PixelAt(i % opec_hw::Lcd::kWidth, i / opec_hw::Lcd::kWidth) != expected) {
      return opec_support::StrPrintf("pixel %u mismatch", i);
    }
  }
  return "";
}

}  // namespace opec_apps
