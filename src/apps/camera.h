// Camera (STM32479I-EVAL): waits for a button press, captures a photo from
// the camera interface and saves it to a USB mass-storage disk. Nine
// operations: System_Init, Button_Init, Camera_Init, Usb_Init, Wait_Button,
// Capture_Photo, Save_Photo, Report_Status + main.

#ifndef SRC_APPS_CAMERA_H_
#define SRC_APPS_CAMERA_H_

#include "src/apps/app.h"
#include "src/hw/devices/block_device.h"
#include "src/hw/devices/camera.h"
#include "src/hw/devices/gpio.h"
#include "src/hw/devices/rcc.h"
#include "src/hw/devices/uart.h"

namespace opec_apps {

struct CameraDevices : AppDevices {
  opec_hw::Camera* camera = nullptr;
  opec_hw::Gpio* button = nullptr;
  opec_hw::BlockDevice* usb = nullptr;
  opec_hw::Uart* uart = nullptr;
  opec_hw::Rcc* rcc = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

class CameraApp : public Application {
 public:
  static constexpr uint32_t kFrameBytes = 2048;

  std::string name() const override { return "Camera"; }
  opec_hw::Board board() const override { return opec_hw::Board::kStm32479iEval; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(AppDevices& devices) const override;
  std::string CheckScenario(const AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

  static uint8_t FrameByte(uint32_t offset) {
    return static_cast<uint8_t>((offset * 31 + 17) & 0xFF);
  }
};

}  // namespace opec_apps

#endif  // SRC_APPS_CAMERA_H_
