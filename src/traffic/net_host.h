// Host-side Ethernet/IPv4/TCP frame construction and parsing for the TCP-Echo
// scenario — the "desktop client" of Section 6. Mirrors the guest
// netstack-lite's wire format (standard layouts, IP header checksum checked,
// TCP checksum unused).

#ifndef SRC_TRAFFIC_NET_HOST_H_
#define SRC_TRAFFIC_NET_HOST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opec_traffic {

inline constexpr uint16_t kTcpFlagFin = 0x01;
inline constexpr uint16_t kTcpFlagSyn = 0x02;
inline constexpr uint16_t kTcpFlagAck = 0x10;
inline constexpr uint16_t kTcpFlagPsh = 0x08;
inline constexpr uint16_t kEchoPort = 7;

struct TcpSegment {
  uint16_t src_port = 40000;
  uint16_t dst_port = kEchoPort;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint16_t flags = 0;
  std::vector<uint8_t> payload;
};

// 16-bit one's-complement sum over `len` bytes (IP header checksum).
uint16_t IpChecksum(const uint8_t* data, size_t len);

// Builds a full ethernet frame around the segment. Corruption knobs produce
// the scenario's invalid packets.
struct FrameCorruption {
  bool bad_ethertype = false;
  bool bad_protocol = false;   // not TCP
  bool bad_checksum = false;   // IP header checksum off by one
  bool wrong_port = false;     // not the echo port
};
std::vector<uint8_t> BuildTcpFrame(const TcpSegment& segment,
                                   const FrameCorruption& corruption = {});

// Parses a guest-emitted frame back into a segment; returns false if the
// frame is not a valid TCP/IP frame.
bool ParseTcpFrame(const std::vector<uint8_t>& frame, TcpSegment* out);

}  // namespace opec_traffic

#endif  // SRC_TRAFFIC_NET_HOST_H_
