// Host-side traffic layer (ROADMAP item 2): deterministic, seeded
// many-connection workloads for the networked apps.
//
// A TrafficSpec describes a load profile (request rate, connection count,
// seed, malformed/split/reconnect mix). Generate() expands it into a concrete
// frame schedule — every frame paired with an inter-arrival gap in modeled
// cycles — together with the *expected* guest behaviour, computed by a
// host-side replica of the guest netstack-lite's single-PCB state machine:
// expected echo count, expected reply frames, the expected committed-tx
// digest and the expected UART stats line. Scenario checks compare the run
// against these expectations, so a generated workload is as strictly checked
// as the scripted one.
//
// Determinism: generation is a pure function of the spec (SplitMix64 PRNG,
// no wall clock, no host state), and the expectations are modeled data, so
// load scenarios stay byte-identical across engines, serial/parallel
// campaigns and warm/cold boots. The generator never emits a frame whose IP
// total-length field claims more payload than the frame carries; such frames
// would make the guest echo stale buffer residue, which is well-defined but
// couples the expectation model to device copy granularity (the PIO model
// zero-pads the tail word, the DMA model leaves descriptor-slot residue).
// Truncated frames below the 54-byte minimum exercise the partial-read drop
// path instead.

#ifndef SRC_TRAFFIC_TRAFFIC_H_
#define SRC_TRAFFIC_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opec_traffic {

struct TrafficSpec {
  uint32_t rate_rps = 20000;  // client request rate; sets the mean arrival gap
  uint32_t conns = 4;         // interleaved logical client connections
  uint32_t requests = 256;    // payload requests attempted across all conns
  uint64_t seed = 1;
  // Mix knobs, per-mille of request slots.
  uint32_t malformed_permille = 150;  // corrupt/truncated junk frames
  uint32_t split_permille = 200;      // payload split across two segments
  uint32_t reconnect_permille = 30;   // connection re-handshakes mid-run

  bool operator==(const TrafficSpec&) const = default;
};

// Parses "rate=N,conns=M,seed=S[,requests=R][,malformed=P][,split=P]
// [,reconnect=P]" (any subset, any order) over the defaults above. Returns
// false and sets *error on junk keys, junk numbers or out-of-range values.
bool ParseTrafficSpec(const std::string& text, TrafficSpec* spec, std::string* error);
std::string TrafficSpecToString(const TrafficSpec& spec);

// Mean inter-arrival gap in modeled cycles for a request rate (168 MHz core).
uint64_t GapCyclesForRate(uint32_t rate_rps);

struct TrafficFrame {
  std::vector<uint8_t> bytes;
  uint64_t gap_cycles = 0;  // arrival gap after the previous frame
};

struct GeneratedTraffic {
  std::vector<TrafficFrame> frames;
  // Expectations from the guest-replica state machine.
  uint32_t expected_echoes = 0;
  std::vector<std::vector<uint8_t>> expected_tx;  // every reply, in order
  uint64_t expected_tx_frames = 0;
  uint64_t expected_tx_digest = 0;  // chained FNV-1a, matches TxLog::digest
  std::string expected_uart;
};

GeneratedTraffic Generate(const TrafficSpec& spec);

// Process-wide default spec used by the registry-made traffic apps
// (TCP-Echo-Load / TCP-Echo-DMA) when no explicit spec is given. Set it from
// CLI `--traffic` flags *before* spawning campaign workers; reads during a
// parallel run are lock-free.
const TrafficSpec& DefaultLoadSpec();
void SetDefaultLoadSpec(const TrafficSpec& spec);

}  // namespace opec_traffic

#endif  // SRC_TRAFFIC_TRAFFIC_H_
