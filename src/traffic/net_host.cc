#include "src/traffic/net_host.h"

namespace opec_traffic {

namespace {

void PutBe16(std::vector<uint8_t>& buf, size_t off, uint16_t v) {
  buf[off] = static_cast<uint8_t>(v >> 8);
  buf[off + 1] = static_cast<uint8_t>(v);
}

void PutBe32(std::vector<uint8_t>& buf, size_t off, uint32_t v) {
  buf[off] = static_cast<uint8_t>(v >> 24);
  buf[off + 1] = static_cast<uint8_t>(v >> 16);
  buf[off + 2] = static_cast<uint8_t>(v >> 8);
  buf[off + 3] = static_cast<uint8_t>(v);
}

uint16_t GetBe16(const std::vector<uint8_t>& buf, size_t off) {
  return static_cast<uint16_t>((buf[off] << 8) | buf[off + 1]);
}

uint32_t GetBe32(const std::vector<uint8_t>& buf, size_t off) {
  return (static_cast<uint32_t>(buf[off]) << 24) | (static_cast<uint32_t>(buf[off + 1]) << 16) |
         (static_cast<uint32_t>(buf[off + 2]) << 8) | buf[off + 3];
}

}  // namespace

uint16_t IpChecksum(const uint8_t* data, size_t len) {
  uint32_t sum = 0;
  for (size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<uint32_t>(data[i] << 8) | data[i + 1];
  }
  if (len % 2 != 0) {
    sum += static_cast<uint32_t>(data[len - 1]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

std::vector<uint8_t> BuildTcpFrame(const TcpSegment& segment,
                                   const FrameCorruption& corruption) {
  size_t payload_len = segment.payload.size();
  std::vector<uint8_t> frame(14 + 20 + 20 + payload_len, 0);

  // Ethernet header: fixed MACs + ethertype.
  for (int i = 0; i < 6; ++i) {
    frame[static_cast<size_t>(i)] = 0x02;        // dst: the device
    frame[static_cast<size_t>(6 + i)] = 0x04;    // src: the desktop
  }
  frame[12] = 0x08;
  frame[13] = corruption.bad_ethertype ? 0x06 : 0x00;  // IPv4 (or ARP if corrupt)

  // IPv4 header.
  size_t ip = 14;
  frame[ip + 0] = 0x45;
  PutBe16(frame, ip + 2, static_cast<uint16_t>(20 + 20 + payload_len));
  frame[ip + 8] = 64;                                   // TTL
  frame[ip + 9] = corruption.bad_protocol ? 17 : 6;     // TCP (or UDP if corrupt)
  PutBe32(frame, ip + 12, 0xC0A80002);                  // 192.168.0.2
  PutBe32(frame, ip + 16, 0xC0A80001);                  // 192.168.0.1
  uint16_t checksum = IpChecksum(frame.data() + ip, 20);
  if (corruption.bad_checksum) {
    checksum = static_cast<uint16_t>(checksum + 1);
  }
  PutBe16(frame, ip + 10, checksum);

  // TCP header.
  size_t tcp = ip + 20;
  PutBe16(frame, tcp + 0, segment.src_port);
  PutBe16(frame, tcp + 2,
          corruption.wrong_port ? static_cast<uint16_t>(segment.dst_port + 1)
                                : segment.dst_port);
  PutBe32(frame, tcp + 4, segment.seq);
  PutBe32(frame, tcp + 8, segment.ack);
  PutBe16(frame, tcp + 12, static_cast<uint16_t>((5u << 12) | segment.flags));
  PutBe16(frame, tcp + 14, 0xFFFF);  // window

  for (size_t i = 0; i < payload_len; ++i) {
    frame[tcp + 20 + i] = segment.payload[i];
  }
  return frame;
}

bool ParseTcpFrame(const std::vector<uint8_t>& frame, TcpSegment* out) {
  if (frame.size() < 54 || frame[12] != 0x08 || frame[13] != 0x00) {
    return false;
  }
  size_t ip = 14;
  if (frame[ip + 0] != 0x45 || frame[ip + 9] != 6) {
    return false;
  }
  uint16_t total_len = GetBe16(frame, ip + 2);
  if (total_len < 40 || 14u + total_len > frame.size()) {
    return false;
  }
  size_t tcp = ip + 20;
  out->src_port = GetBe16(frame, tcp + 0);
  out->dst_port = GetBe16(frame, tcp + 2);
  out->seq = GetBe32(frame, tcp + 4);
  out->ack = GetBe32(frame, tcp + 8);
  out->flags = GetBe16(frame, tcp + 12) & 0x3F;
  size_t payload_len = static_cast<size_t>(total_len) - 40;
  out->payload.assign(frame.begin() + static_cast<long>(tcp + 20),
                      frame.begin() + static_cast<long>(tcp + 20 + payload_len));
  return true;
}

}  // namespace opec_traffic
