#include "src/traffic/traffic.h"

#include <algorithm>

#include "src/support/text.h"
#include "src/traffic/net_host.h"

namespace opec_traffic {

namespace {

// Same generator the campaign layer uses for job seeds; duplicated here so
// the traffic library stays below opec_campaign in the dependency order.
struct SplitMix64 {
  uint64_t state;
  explicit SplitMix64(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Uniform-enough draw in [0, n); n > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }
};

uint64_t Fnv1a(const uint8_t* data, size_t n, uint64_t h) {
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 0x100000001B3ull;
  }
  return h;
}

uint16_t GetBe16(const std::vector<uint8_t>& f, size_t off) {
  return static_cast<uint16_t>((f[off] << 8) | f[off + 1]);
}

uint32_t GetBe32(const std::vector<uint8_t>& f, size_t off) {
  return (static_cast<uint32_t>(f[off]) << 24) | (static_cast<uint32_t>(f[off + 1]) << 16) |
         (static_cast<uint32_t>(f[off + 2]) << 8) | f[off + 3];
}

void PutBe16(std::vector<uint8_t>& f, size_t off, uint16_t v) {
  f[off] = static_cast<uint8_t>(v >> 8);
  f[off + 1] = static_cast<uint8_t>(v);
}

void PutBe32(std::vector<uint8_t>& f, size_t off, uint32_t v) {
  f[off] = static_cast<uint8_t>(v >> 24);
  f[off + 1] = static_cast<uint8_t>(v >> 16);
  f[off + 2] = static_cast<uint8_t>(v >> 8);
  f[off + 3] = static_cast<uint8_t>(v);
}

// The guest's checksum16: folded 16-bit one's-complement sum, NOT inverted.
// A valid header (checksum field included) sums to 0xFFFF.
uint32_t Fold16(const uint8_t* p, size_t len) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += (static_cast<uint32_t>(p[i]) << 8) | p[i + 1];
  }
  if (i < len) {
    sum += static_cast<uint32_t>(p[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return sum;
}

// Replica of the guest netstack-lite (src/apps/tcp_echo.cc): one PCB, no
// sequence validation, SYN rebinds, every in-order byte-for-byte decision the
// guest's ip_input/tcp_input/tcp_output make. Any drift between this model
// and the guest IR shows up as a scenario-check failure, which the traffic
// fuzz sweep hammers on.
class GuestModel {
 public:
  void Input(const std::vector<uint8_t>& raw, GeneratedTraffic* out) {
    // eth_poll: frames are capped at the guest's 256-byte rx buffer.
    size_t len = std::min<size_t>(raw.size(), 256);
    // ip_input.
    if (len < 54) {
      return;
    }
    const std::vector<uint8_t>& f = raw;
    if (f[12] != 0x08 || f[13] != 0x00) {
      return;
    }
    if (f[14] != 0x45 || f[23] != 6) {
      return;
    }
    if (Fold16(f.data() + 14, 20) != 0xFFFF) {
      return;
    }
    // tcp_input.
    if (GetBe16(f, 36) != (local_port_ & 0xFFFF)) {
      return;
    }
    uint32_t flags = GetBe16(f, 46) & 0x3F;
    uint32_t seq = GetBe32(f, 38);
    uint32_t payload_len = static_cast<uint32_t>(GetBe16(f, 16)) - 40;
    if ((flags & 0x02) != 0) {  // SYN: rebind
      remote_port_ = GetBe16(f, 34);
      rcv_nxt_ = seq + 1;
      snd_nxt_ = 1000;
      state_ = 1;
      Reply(0x12, {}, out);
      snd_nxt_ += 1;
      return;
    }
    if ((flags & 0x01) != 0) {  // FIN
      rcv_nxt_ = seq + 1;
      Reply(0x10, {}, out);
      state_ = 0;
      return;
    }
    if (state_ == 1 && (flags & 0x10) != 0) {
      state_ = 2;
    }
    if (state_ == 2 && payload_len > 0) {
      std::vector<uint8_t> payload(f.begin() + 54, f.begin() + 54 + payload_len);
      rcv_nxt_ = seq + payload_len;
      Reply(0x18, payload, out);
      snd_nxt_ += payload_len;
      ++echo_count_;
    }
  }

  uint32_t echo_count() const { return echo_count_; }

 private:
  // Mirrors tcp_output + eth_send: the exact bytes the guest commits.
  void Reply(uint32_t flags, const std::vector<uint8_t>& payload, GeneratedTraffic* out) {
    std::vector<uint8_t> f(54 + payload.size(), 0);
    for (size_t i = 0; i < 6; ++i) {
      f[i] = 0x04;      // dst: the desktop
      f[6 + i] = 0x02;  // src: the device
    }
    f[12] = 0x08;
    f[13] = 0x00;
    size_t ip = 14;
    f[ip + 0] = 0x45;
    PutBe16(f, ip + 2, static_cast<uint16_t>(40 + payload.size()));
    f[ip + 8] = 64;
    f[ip + 9] = 6;
    PutBe32(f, ip + 12, 0xC0A80001);
    PutBe32(f, ip + 16, 0xC0A80002);
    PutBe16(f, ip + 10, static_cast<uint16_t>(~Fold16(f.data() + ip, 20) & 0xFFFF));
    size_t tcp = 34;
    PutBe16(f, tcp + 0, static_cast<uint16_t>(local_port_));
    PutBe16(f, tcp + 2, static_cast<uint16_t>(remote_port_));
    PutBe32(f, tcp + 4, snd_nxt_);
    PutBe32(f, tcp + 8, rcv_nxt_);
    PutBe16(f, tcp + 12, static_cast<uint16_t>((5u << 12) | flags));
    PutBe16(f, tcp + 14, 0xFFFF);
    std::copy(payload.begin(), payload.end(), f.begin() + 54);

    uint8_t len_le[4];
    for (int i = 0; i < 4; ++i) {
      len_le[i] = static_cast<uint8_t>(f.size() >> (8 * i));
    }
    out->expected_tx_digest = Fnv1a(len_le, 4, out->expected_tx_digest);
    out->expected_tx_digest = Fnv1a(f.data(), f.size(), out->expected_tx_digest);
    ++out->expected_tx_frames;
    out->expected_tx.push_back(std::move(f));
  }

  uint32_t state_ = 0;
  uint32_t local_port_ = kEchoPort;
  uint32_t remote_port_ = 0;
  uint32_t rcv_nxt_ = 0;
  uint32_t snd_nxt_ = 1000;
  uint32_t echo_count_ = 0;
};

bool ParseField(const std::string& key, const std::string& value, TrafficSpec* spec,
                std::string* error) {
  uint64_t v = 0;
  if (value.empty() || value.size() > 10) {
    *error = "bad value for '" + key + "': '" + value + "'";
    return false;
  }
  for (char c : value) {
    if (c < '0' || c > '9') {
      *error = "bad value for '" + key + "': '" + value + "'";
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  auto range = [&](uint64_t lo, uint64_t hi) {
    if (v < lo || v > hi) {
      *error = opec_support::StrPrintf("'%s' out of range [%llu, %llu]", key.c_str(),
                                       static_cast<unsigned long long>(lo),
                                       static_cast<unsigned long long>(hi));
      return false;
    }
    return true;
  };
  if (key == "rate") {
    if (!range(1, 10'000'000)) return false;
    spec->rate_rps = static_cast<uint32_t>(v);
  } else if (key == "conns") {
    if (!range(1, 16)) return false;
    spec->conns = static_cast<uint32_t>(v);
  } else if (key == "requests") {
    if (!range(1, 1'000'000)) return false;
    spec->requests = static_cast<uint32_t>(v);
  } else if (key == "seed") {
    spec->seed = v;
  } else if (key == "malformed") {
    if (!range(0, 1000)) return false;
    spec->malformed_permille = static_cast<uint32_t>(v);
  } else if (key == "split") {
    if (!range(0, 1000)) return false;
    spec->split_permille = static_cast<uint32_t>(v);
  } else if (key == "reconnect") {
    if (!range(0, 1000)) return false;
    spec->reconnect_permille = static_cast<uint32_t>(v);
  } else {
    *error = "unknown traffic key '" + key + "'";
    return false;
  }
  return true;
}

TrafficSpec g_default_load_spec;

}  // namespace

bool ParseTrafficSpec(const std::string& text, TrafficSpec* spec, std::string* error) {
  TrafficSpec parsed;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    std::string field = text.substr(pos, comma - pos);
    size_t eq = field.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + field + "'";
      return false;
    }
    if (!ParseField(field.substr(0, eq), field.substr(eq + 1), &parsed, error)) {
      return false;
    }
    pos = comma + 1;
  }
  *spec = parsed;
  return true;
}

std::string TrafficSpecToString(const TrafficSpec& spec) {
  return opec_support::StrPrintf(
      "rate=%u,conns=%u,requests=%u,seed=%llu,malformed=%u,split=%u,reconnect=%u",
      spec.rate_rps, spec.conns, spec.requests, static_cast<unsigned long long>(spec.seed),
      spec.malformed_permille, spec.split_permille, spec.reconnect_permille);
}

uint64_t GapCyclesForRate(uint32_t rate_rps) {
  if (rate_rps == 0) {
    return 168'000'000;
  }
  uint64_t gap = 168'000'000ull / rate_rps;
  return gap == 0 ? 1 : gap;
}

GeneratedTraffic Generate(const TrafficSpec& spec) {
  GeneratedTraffic out;
  out.expected_tx_digest = 0xCBF29CE484222325ull;  // FNV offset basis (TxLog seed)
  GuestModel guest;
  SplitMix64 rng(spec.seed ^ 0x7261666669636Bull);

  uint64_t base_gap = GapCyclesForRate(spec.rate_rps);
  auto next_gap = [&]() { return base_gap / 2 + rng.Below(base_gap + 1); };
  auto push = [&](std::vector<uint8_t> frame) {
    guest.Input(frame, &out);
    out.frames.push_back(TrafficFrame{std::move(frame), next_gap()});
  };

  struct Conn {
    uint16_t port = 0;
    uint32_t seq = 0;
    bool handshaked = false;
  };
  std::vector<Conn> conns(spec.conns);
  for (uint32_t i = 0; i < spec.conns; ++i) {
    conns[i].port = static_cast<uint16_t>(40000 + i);
    conns[i].seq = 100 + i * 1000;
  }

  for (uint32_t req = 0; req < spec.requests; ++req) {
    Conn& c = conns[rng.Below(spec.conns)];

    if (rng.Below(1000) < spec.reconnect_permille) {
      c.handshaked = false;  // client dropped; next slot re-handshakes
    }
    if (!c.handshaked) {
      TcpSegment syn;
      syn.src_port = c.port;
      syn.seq = c.seq;
      syn.flags = kTcpFlagSyn;
      push(BuildTcpFrame(syn));
      ++c.seq;
      TcpSegment ack;
      ack.src_port = c.port;
      ack.seq = c.seq;
      ack.ack = 1001;
      ack.flags = kTcpFlagAck;
      push(BuildTcpFrame(ack));
      c.handshaked = true;
    }

    if (rng.Below(1000) < spec.malformed_permille) {
      TcpSegment junk;
      junk.src_port = c.port;
      junk.seq = 777;
      junk.flags = kTcpFlagAck | kTcpFlagPsh;
      junk.payload.assign(12, static_cast<uint8_t>('x'));
      uint64_t kind = rng.Below(5);
      if (kind == 4) {
        // Truncated below the 54-byte minimum: the partial-read drop path.
        std::vector<uint8_t> frame = BuildTcpFrame(junk);
        frame.resize(20 + rng.Below(34));
        push(std::move(frame));
      } else {
        FrameCorruption corruption;
        switch (kind) {
          case 0: corruption.bad_ethertype = true; break;
          case 1: corruption.bad_protocol = true; break;
          case 2: corruption.bad_checksum = true; break;
          default: corruption.wrong_port = true; break;
        }
        push(BuildTcpFrame(junk, corruption));
      }
    }

    // The request payload: printable, deterministic, 8..64 bytes.
    size_t payload_len = 8 + rng.Below(57);
    std::vector<uint8_t> payload(payload_len);
    for (size_t i = 0; i < payload_len; ++i) {
      payload[i] = static_cast<uint8_t>('a' + (req * 7 + c.port * 13 + i) % 26);
    }

    bool split = payload_len >= 16 && rng.Below(1000) < spec.split_permille;
    if (split) {
      size_t cut = 4 + rng.Below(payload_len - 8);
      TcpSegment first;
      first.src_port = c.port;
      first.seq = c.seq;
      first.ack = 1001;
      first.flags = kTcpFlagAck;
      first.payload.assign(payload.begin(), payload.begin() + cut);
      push(BuildTcpFrame(first));
      TcpSegment second;
      second.src_port = c.port;
      second.seq = c.seq + static_cast<uint32_t>(cut);
      second.ack = 1001;
      second.flags = kTcpFlagAck | kTcpFlagPsh;
      second.payload.assign(payload.begin() + cut, payload.end());
      push(BuildTcpFrame(second));
    } else {
      TcpSegment data;
      data.src_port = c.port;
      data.seq = c.seq;
      data.ack = 1001;
      data.flags = kTcpFlagAck | kTcpFlagPsh;
      data.payload = payload;
      push(BuildTcpFrame(data));
    }
    c.seq += static_cast<uint32_t>(payload_len);
  }

  // Close the last active session; exercises the FIN/ACK path every run.
  TcpSegment fin;
  fin.src_port = conns[0].port;
  fin.seq = conns[0].seq;
  fin.flags = kTcpFlagFin | kTcpFlagAck;
  push(BuildTcpFrame(fin));

  out.expected_echoes = guest.echo_count();
  out.expected_uart = std::string("NT") +
                      static_cast<char>(static_cast<uint8_t>('0' + out.expected_echoes));
  return out;
}

const TrafficSpec& DefaultLoadSpec() { return g_default_load_spec; }

void SetDefaultLoadSpec(const TrafficSpec& spec) { g_default_load_spec = spec; }

}  // namespace opec_traffic
