// Seeded random guest-program generator (DESIGN.md Section 12.1).
//
// GenerateProgram(seed) is a pure function of the seed: the same seed always
// yields the same ProgramSpec, so a diverging case is reproducible from its
// seed alone. The grammar draws typed globals (scalars of all four widths,
// arrays, structs with pointer fields, pointer and function-pointer globals,
// const data), helper functions, 2-4 operation-entry tasks that share a "hot"
// global pool (to force externals and stress shadow synchronization), direct
// and indirect calls, MMIO touches on USART2/GPIOA, and a main routine that
// wires pointers, passes a stack buffer into an entry, runs the tasks and
// folds the observable state into a checksum.

#ifndef SRC_FUZZ_GENERATOR_H_
#define SRC_FUZZ_GENERATOR_H_

#include <cstdint>

#include "src/fuzz/program.h"

namespace opec_fuzz {

ProgramSpec GenerateProgram(uint64_t seed);

}  // namespace opec_fuzz

#endif  // SRC_FUZZ_GENERATOR_H_
