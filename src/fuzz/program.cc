#include "src/fuzz/program.h"

#include <utility>

#include "src/hw/address_map.h"
#include "src/ir/builder.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_fuzz {

using opec_ir::FunctionBuilder;
using opec_ir::Module;
using opec_ir::StructField;
using opec_ir::Type;
using opec_ir::TypeTable;
using opec_ir::Val;

const char* ScalarName(Scalar s) {
  switch (s) {
    case Scalar::kU8:
      return "u8";
    case Scalar::kU16:
      return "u16";
    case Scalar::kU32:
      return "u32";
    case Scalar::kI32:
      return "i32";
  }
  return "?";
}

namespace {

const Type* ScalarTy(TypeTable& tt, Scalar s) {
  switch (s) {
    case Scalar::kU8:
      return tt.U8();
    case Scalar::kU16:
      return tt.U16();
    case Scalar::kU32:
      return tt.U32();
    case Scalar::kI32:
      return tt.I32();
  }
  OPEC_UNREACHABLE("bad scalar");
}

struct BuildCtx {
  Module* m = nullptr;
  FunctionBuilder* b = nullptr;
  const Type* icall_sig = nullptr;
};

Val BuildVal(BuildCtx& ctx, const FExpr& e) {
  FunctionBuilder& b = *ctx.b;
  TypeTable& tt = ctx.m->types();
  switch (e.k) {
    case FExpr::K::kConst:
      return b.C(ScalarTy(tt, e.scalar), static_cast<int64_t>(e.value));
    case FExpr::K::kGlobal:
      return b.G(e.name);
    case FExpr::K::kLocal:
      return b.L(e.name);
    case FExpr::K::kBin: {
      Val l = BuildVal(ctx, e.kids[0]);
      Val r = BuildVal(ctx, e.kids[1]);
      switch (e.bin) {
        case FBinOp::kAdd:
          return l + r;
        case FBinOp::kSub:
          return l - r;
        case FBinOp::kMul:
          return l * r;
        case FBinOp::kDiv:
          return l / r;
        case FBinOp::kRem:
          return l % r;
        case FBinOp::kAnd:
          return l & r;
        case FBinOp::kOr:
          return l | r;
        case FBinOp::kXor:
          return l ^ r;
        case FBinOp::kShl:
          return l << r;
        case FBinOp::kShr:
          return l >> r;
        case FBinOp::kEq:
          return l == r;
        case FBinOp::kNe:
          return l != r;
        case FBinOp::kLt:
          return l < r;
        case FBinOp::kLe:
          return l <= r;
        case FBinOp::kGt:
          return l > r;
        case FBinOp::kGe:
          return l >= r;
        case FBinOp::kLAnd:
          return l && r;
        case FBinOp::kLOr:
          return l || r;
      }
      OPEC_UNREACHABLE("bad binop");
    }
    case FExpr::K::kUn: {
      Val v = BuildVal(ctx, e.kids[0]);
      switch (e.un) {
        case FUnOp::kNeg:
          return -v;
        case FUnOp::kLogNot:
          return !v;
        case FUnOp::kBitNot:
          return ~v;
      }
      OPEC_UNREACHABLE("bad unop");
    }
    case FExpr::K::kIdx:
      return b.Idx(BuildVal(ctx, e.kids[0]), BuildVal(ctx, e.kids[1]));
    case FExpr::K::kFld:
      return b.Fld(BuildVal(ctx, e.kids[0]), e.name);
    case FExpr::K::kAddr: {
      Val v = BuildVal(ctx, e.kids[0]);
      return b.Addr(v);
    }
    case FExpr::K::kDeref:
      return b.Deref(BuildVal(ctx, e.kids[0]));
    case FExpr::K::kMmio:
      return b.Mmio32(e.addr);
    case FExpr::K::kCall: {
      std::vector<Val> args;
      args.reserve(e.kids.size());
      for (const FExpr& kid : e.kids) {
        args.push_back(BuildVal(ctx, kid));
      }
      return b.CallV(e.name, std::move(args));
    }
    case FExpr::K::kICall: {
      std::vector<Val> args;
      args.reserve(e.kids.size());
      for (const FExpr& kid : e.kids) {
        args.push_back(BuildVal(ctx, kid));
      }
      return b.ICallV(ctx.icall_sig, b.G(e.name), std::move(args));
    }
    case FExpr::K::kCast:
      return b.CastTo(ScalarTy(tt, e.scalar), BuildVal(ctx, e.kids[0]));
    case FExpr::K::kFnAddr:
      return b.FnPtr(e.name);
  }
  OPEC_UNREACHABLE("bad expr kind");
}

void BuildStmts(BuildCtx& ctx, const std::vector<FStmt>& body) {
  FunctionBuilder& b = *ctx.b;
  for (const FStmt& s : body) {
    switch (s.k) {
      case FStmt::K::kAssign:
        b.Assign(BuildVal(ctx, s.lhs), BuildVal(ctx, s.rhs));
        break;
      case FStmt::K::kExpr:
        b.Do(BuildVal(ctx, s.rhs));
        break;
      case FStmt::K::kIf:
        b.If(BuildVal(ctx, s.rhs));
        BuildStmts(ctx, s.body);
        if (!s.orelse.empty()) {
          b.Else();
          BuildStmts(ctx, s.orelse);
        }
        b.End();
        break;
      case FStmt::K::kLoop:
        b.Assign(b.L(s.loop_var), b.U32(0));
        b.While(b.L(s.loop_var) < b.U32(s.loop_count));
        BuildStmts(ctx, s.body);
        b.Assign(b.L(s.loop_var), b.L(s.loop_var) + b.U32(1));
        b.End();
        break;
      case FStmt::K::kCall: {
        std::vector<Val> args;
        args.reserve(s.args.size());
        for (const FExpr& a : s.args) {
          args.push_back(BuildVal(ctx, a));
        }
        b.Call(s.callee, std::move(args));
        break;
      }
      case FStmt::K::kRet:
        b.Ret(BuildVal(ctx, s.rhs));
        break;
    }
  }
}

}  // namespace

std::unique_ptr<Module> BuildModule(const ProgramSpec& spec) {
  auto m = std::make_unique<Module>("fuzz");
  TypeTable& tt = m->types();
  const Type* u32 = tt.U32();
  const Type* p_u8 = tt.PointerTo(tt.U8());
  const Type* icall_sig = tt.FunctionTy(u32, {u32, u32});

  // --- Globals ---
  for (const FGlobal& g : spec.globals) {
    switch (g.k) {
      case FGlobal::K::kScalar:
        m->AddGlobal(g.name, ScalarTy(tt, g.scalar));
        break;
      case FGlobal::K::kArray:
        m->AddGlobal(g.name, tt.ArrayOf(ScalarTy(tt, g.scalar), g.count));
        break;
      case FGlobal::K::kStruct: {
        std::vector<StructField> fields;
        for (const FField& f : g.fields) {
          fields.push_back({f.name, f.is_ptr_u8 ? p_u8 : ScalarTy(tt, f.scalar), 0});
        }
        m->AddGlobal(g.name, tt.StructTy(g.struct_name, fields));
        break;
      }
      case FGlobal::K::kPtr:
        m->AddGlobal(g.name, tt.PointerTo(ScalarTy(tt, g.ptr_elem)));
        break;
      case FGlobal::K::kFnPtr:
        m->AddGlobal(g.name, tt.PointerTo(icall_sig));
        break;
      case FGlobal::K::kConstArray: {
        auto* gv =
            m->AddGlobal(g.name, tt.ArrayOf(ScalarTy(tt, g.scalar), g.count), /*is_const=*/true);
        gv->set_initial_data(g.init);
        break;
      }
    }
  }

  // --- Function declarations first (bodies may call forward) ---
  for (const FFunc& f : spec.funcs) {
    std::vector<const Type*> params;
    std::vector<std::string> names;
    for (const FParam& p : f.params) {
      params.push_back(p.is_ptr_u8 ? p_u8 : u32);
      names.push_back(p.name);
    }
    const Type* ret = f.returns_u32 ? u32 : tt.VoidTy();
    auto* fn = m->AddFunction(f.name, tt.FunctionTy(ret, params), names);
    fn->set_source_file(f.is_entry ? "tasks.c" : (f.name == "main" ? "main.c" : "lib.c"));
  }

  // --- Bodies ---
  for (const FFunc& f : spec.funcs) {
    FunctionBuilder b(*m, m->FindFunction(f.name));
    BuildCtx ctx{m.get(), &b, icall_sig};
    for (const auto& [name, scalar] : f.locals) {
      Val l = b.Local(name, ScalarTy(tt, scalar));
      b.Assign(l, b.C(ScalarTy(tt, scalar), 0));
    }
    for (const auto& [name, count] : f.u8_array_locals) {
      Val buf = b.Local(name, tt.ArrayOf(tt.U8(), count));
      for (uint32_t i = 0; i < count; ++i) {
        b.Assign(b.Idx(buf, i), b.U8(0));
      }
    }
    BuildStmts(ctx, f.body);
    // Always end with an explicit return so shrinking any recipe statement
    // (including a trailing kRet) keeps the function well-formed.
    if (f.returns_u32) {
      b.Ret(b.U32(0));
    } else {
      b.RetVoid();
    }
    b.Finish();
  }
  return m;
}

size_t CountStatements(const std::vector<FStmt>& body) {
  size_t n = 0;
  for (const FStmt& s : body) {
    n += 1 + CountStatements(s.body) + CountStatements(s.orelse);
  }
  return n;
}

size_t CountStatements(const ProgramSpec& spec) {
  size_t n = 0;
  for (const FFunc& f : spec.funcs) {
    n += CountStatements(f.body);
  }
  return n;
}

namespace {

void ScanExpr(const FExpr& e, std::map<std::string, int>* callees,
              std::map<std::string, int>* globals) {
  if (callees != nullptr && (e.k == FExpr::K::kCall || e.k == FExpr::K::kFnAddr)) {
    ++(*callees)[e.name];
  }
  if (globals != nullptr && (e.k == FExpr::K::kGlobal || e.k == FExpr::K::kICall)) {
    ++(*globals)[e.name];
  }
  for (const FExpr& kid : e.kids) {
    ScanExpr(kid, callees, globals);
  }
}

void ScanStmts(const std::vector<FStmt>& body, std::map<std::string, int>* callees,
               std::map<std::string, int>* globals) {
  for (const FStmt& s : body) {
    ScanExpr(s.lhs, callees, globals);
    ScanExpr(s.rhs, callees, globals);
    for (const FExpr& a : s.args) {
      ScanExpr(a, callees, globals);
    }
    if (callees != nullptr && s.k == FStmt::K::kCall) {
      ++(*callees)[s.callee];
    }
    ScanStmts(s.body, callees, globals);
    ScanStmts(s.orelse, callees, globals);
  }
}

}  // namespace

void CollectCalleeRefs(const ProgramSpec& spec, std::map<std::string, int>* refs) {
  for (const FFunc& f : spec.funcs) {
    ScanStmts(f.body, refs, nullptr);
  }
}

void CollectGlobalRefs(const ProgramSpec& spec, std::map<std::string, int>* refs) {
  for (const FFunc& f : spec.funcs) {
    ScanStmts(f.body, nullptr, refs);
  }
  for (const FSanitize& s : spec.sanitize) {
    ++(*refs)[s.global];
  }
}

std::string SpecSummary(const ProgramSpec& spec) {
  size_t entries = 0;
  for (const FFunc& f : spec.funcs) {
    entries += f.is_entry ? 1 : 0;
  }
  return opec_support::StrPrintf(
      "seed=%llu globals=%zu funcs=%zu entries=%zu stmts=%zu rx=%zu sanitize=%zu",
      static_cast<unsigned long long>(spec.seed), spec.globals.size(), spec.funcs.size(), entries,
      CountStatements(spec), spec.rx_input.size(), spec.sanitize.size());
}

// --- FuzzApplication -------------------------------------------------------

std::string FuzzApplication::name() const {
  return "fuzz_" + std::to_string(spec_.seed);
}

std::unique_ptr<opec_ir::Module> FuzzApplication::BuildModule() const {
  return opec_fuzz::BuildModule(spec_);
}

opec_compiler::PartitionConfig FuzzApplication::Partition() const {
  opec_compiler::PartitionConfig config;
  for (const FFunc& f : spec_.funcs) {
    if (f.is_entry) {
      opec_compiler::EntrySpec entry;
      entry.function = f.name;
      entry.pointer_arg_sizes = f.pointer_arg_sizes;
      config.entries.push_back(std::move(entry));
    }
  }
  for (const FSanitize& s : spec_.sanitize) {
    config.sanitize.push_back({s.global, s.min, s.max});
  }
  return config;
}

opec_hw::SocDescription FuzzApplication::Soc() const {
  opec_hw::SocDescription soc = opec_hw::SocDescription::WithCorePeripherals();
  soc.AddPeripheral({"USART2", opec_hw::kUsart2Base, 0x400, false});
  soc.AddPeripheral({"GPIOA", opec_hw::kGpioABase, 0x400, false});
  return soc;
}

std::unique_ptr<opec_apps::AppDevices> FuzzApplication::CreateDevices(
    opec_hw::Machine& machine) const {
  auto devices = std::make_unique<FuzzDevices>();
  auto uart = std::make_unique<opec_hw::Uart>("USART2", opec_hw::kUsart2Base);
  auto gpio = std::make_unique<opec_hw::Gpio>("GPIOA", opec_hw::kGpioABase);
  devices->uart = uart.get();
  devices->gpio = gpio.get();
  machine.bus().AttachDevice(uart.get());
  machine.bus().AttachDevice(gpio.get());
  devices->owned.push_back(std::move(uart));
  devices->owned.push_back(std::move(gpio));
  return devices;
}

void FuzzApplication::PrepareScenario(opec_apps::AppDevices& devices) const {
  auto& d = static_cast<FuzzDevices&>(devices);
  if (!spec_.rx_input.empty()) {
    d.uart->PushRxString(spec_.rx_input);
  }
}

std::string FuzzApplication::CheckScenario(const opec_apps::AppDevices& devices,
                                           const opec_rt::RunResult& result) const {
  (void)devices;
  (void)result;
  return "";  // the differential oracles judge the outputs
}

}  // namespace opec_fuzz
