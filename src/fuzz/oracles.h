// The seven differential oracles (DESIGN.md Section 12.2).
//
//  1. Execution:    vanilla vs OPEC-partitioned runs of the same recipe must
//                   agree on return value, UART output, GPIO effects and the
//                   final value of every global.
//  2. Points-to:    worklist vs exhaustive Andersen solving must yield
//                   identical query answers on the recipe's module and on
//                   randomized injected constraint graphs.
//  3. MPU cache:    the decision-cached CheckAccess must agree with the
//                   uncached region walk on every probe of a randomized
//                   configure/probe sequence.
//  4. Parallelism:  a campaign of cases run with --jobs N must produce
//                   digests bit-identical to the serial run (checked by the
//                   CLI / tests via RunCase's deterministic digest).
//  5. Snapshot:     an OPEC run whose full state is captured, serialized,
//                   deserialized and restored in place at every SVC boundary
//                   (RoundTripProbe) must observe exactly what the
//                   uninterrupted run observes, and every round trip must
//                   recapture to an identical digest.
//  6. Bytecode:     the compiled bytecode tier must agree with the
//                   tree-walking interpreter on every observation of the
//                   recipe — externally visible outputs AND modeled cycles,
//                   statement counts and the obs-event stream digest — in
//                   both build modes.
//  7. RV monitors:  clean recipes must run with zero runtime-verification
//                   violations in both build modes under both engines, the
//                   deterministic RV report must be byte-identical between
//                   engines, and a blocked cross-section attack write must
//                   trip a monitor (DESIGN.md §15).

#ifndef SRC_FUZZ_ORACLES_H_
#define SRC_FUZZ_ORACLES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/apps/runner.h"
#include "src/fuzz/program.h"

namespace opec_fuzz {

// What one execution of a recipe looks like from the outside.
struct ExecObservation {
  // A host CHECK fired while building or running the image (captured via
  // ScopedCheckThrow). Generated programs are valid by construction, so this
  // is always reportable.
  bool build_error = false;
  std::string build_error_msg;
  bool run_ok = false;
  std::string violation;  // engine diagnosis when !run_ok
  uint32_t return_value = 0;
  std::string uart_tx;
  std::vector<uint32_t> odr_history;
  // Final value of every non-const global, by name, rendered to a
  // layout-independent string: plain data renders as hex bytes, while
  // pointer-valued slots (pointer globals, function-pointer globals, pointer
  // struct fields) resolve to the *symbolic* target ("g0+0", "fn:helper1") —
  // raw addresses legitimately differ between the vanilla and OPEC layouts.
  // Under OPEC the address read honors the end-of-run shadow policy (see
  // FinalAddrOf in oracles.cc).
  std::map<std::string, std::string> finals;
  // Modeled outputs and the obs-event stream digest. Compared by the bytecode
  // oracle only — deliberately NOT part of FormatObservation, so case digests
  // (and the pinned regression corpus) are unchanged by their addition.
  uint64_t cycles = 0;
  uint64_t statements = 0;
  uint64_t events_digest = 0;
  // Runtime-verification outputs (oracle 7). Like the modeled outputs above,
  // not part of FormatObservation: the pinned corpus digests stay stable.
  uint64_t rv_violations = 0;
  std::string rv_report;
};

ExecObservation RunOnce(const ProgramSpec& spec, opec_apps::BuildMode mode,
                        opec_apps::EngineKind engine = opec_apps::EngineKind::kInterp);

std::string FormatObservation(const ExecObservation& obs);

enum class Oracle : uint8_t {
  kExecDiff,
  kPointsTo,
  kMpuCache,
  kParallel,
  kSnapshot,
  kBytecodeTier,
  kRv,
};
const char* OracleName(Oracle o);

struct Divergence {
  Oracle oracle = Oracle::kExecDiff;
  std::string detail;
};

// Oracle 1: compares the two observations of one recipe.
std::vector<Divergence> CompareExec(const ProgramSpec& spec, const ExecObservation& vanilla,
                                    const ExecObservation& opec);

// Oracle 2a: solver modes over the recipe's module — every icall target set
// and pointer-query answer must match.
std::vector<Divergence> DiffPointsTo(const ProgramSpec& spec);
// Oracle 2b: solver modes over a seeded random injected constraint graph.
std::vector<Divergence> DiffInjectedPointsTo(uint64_t seed);

// Oracle 3: seeded random MPU configure/probe sequence, cached vs uncached.
std::vector<Divergence> DiffMpuCache(uint64_t seed);

// Oracle 5: reruns the recipe under the snapshot RoundTripProbe and compares
// against `opec`, the uninterrupted OPEC observation of the same recipe.
std::vector<Divergence> DiffSnapshotRoundTrip(const ProgramSpec& spec,
                                              const ExecObservation& opec);

// Oracle 6: reruns the recipe on the bytecode VM in both build modes and
// compares against the interpreter observations — outputs, modeled cycles,
// statement counts and obs-event digests must all be bit-identical. The
// bytecode observations are exposed via the optional out-params so callers
// (oracle 7) can reuse them without re-running the VM.
std::vector<Divergence> DiffBytecodeTier(const ProgramSpec& spec,
                                         const ExecObservation& vanilla,
                                         const ExecObservation& opec,
                                         ExecObservation* bc_vanilla_out = nullptr,
                                         ExecObservation* bc_opec_out = nullptr);

// Oracle 7: runtime-verification monitors. Checks that every clean (run_ok)
// observation carries zero violations, that the deterministic RV report is
// byte-identical between the interpreter and bytecode observations of the
// same mode, and that a blocked cross-section attack write (a deterministic
// recipe derived from the spec's first two sectioned operations; skipped when
// the recipe has fewer) trips at least one monitor.
std::vector<Divergence> DiffRvMonitors(const ProgramSpec& spec,
                                       const ExecObservation& vanilla,
                                       const ExecObservation& opec,
                                       const ExecObservation& bc_vanilla,
                                       const ExecObservation& bc_opec);

// One fuzz case: generate the recipe for `seed` and run every recipe-level
// oracle on it (1, 2, 3, 5, 6 and 7; oracle 4 is the serial-vs-parallel digest
// comparison done by the CLI / CI).
// `digest` is a deterministic fingerprint of everything observed — byte-equal
// between serial and parallel campaigns (oracle 4) and across reruns.
struct CaseResult {
  uint64_t seed = 0;
  std::string summary;  // recipe shape, for logs
  std::vector<Divergence> divergences;
  std::string digest;
};

CaseResult RunCase(uint64_t seed);

}  // namespace opec_fuzz

#endif  // SRC_FUZZ_ORACLES_H_
