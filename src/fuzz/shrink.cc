#include "src/fuzz/shrink.h"

#include <utility>

namespace opec_fuzz {

namespace {

// Removes the k-th statement in pre-order (counting compound statements
// before their bodies, matching CountStatements). Returns true once removed;
// decrements *k while scanning.
bool RemoveNth(std::vector<FStmt>* body, size_t* k) {
  for (size_t i = 0; i < body->size(); ++i) {
    if (*k == 0) {
      body->erase(body->begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
    --*k;
    if (RemoveNth(&(*body)[i].body, k)) {
      return true;
    }
    if (RemoveNth(&(*body)[i].orelse, k)) {
      return true;
    }
  }
  return false;
}

// Replaces the k-th statement with the contents of its body + orelse (only
// meaningful for kIf / kLoop: unwraps the control structure but keeps the
// inner statements so the shrinker can reach into them).
bool FlattenNth(std::vector<FStmt>* body, size_t* k) {
  for (size_t i = 0; i < body->size(); ++i) {
    if (*k == 0) {
      FStmt s = std::move((*body)[i]);
      if (s.k != FStmt::K::kIf && s.k != FStmt::K::kLoop) {
        return true;  // located but nothing to flatten; caller sees no change
      }
      body->erase(body->begin() + static_cast<std::ptrdiff_t>(i));
      std::vector<FStmt> inner = std::move(s.body);
      for (FStmt& e : s.orelse) {
        inner.push_back(std::move(e));
      }
      body->insert(body->begin() + static_cast<std::ptrdiff_t>(i),
                   std::make_move_iterator(inner.begin()), std::make_move_iterator(inner.end()));
      return true;
    }
    --*k;
    if (FlattenNth(&(*body)[i].body, k)) {
      return true;
    }
    if (FlattenNth(&(*body)[i].orelse, k)) {
      return true;
    }
  }
  return false;
}

}  // namespace

ProgramSpec ShrinkProgram(const ProgramSpec& spec, const DivergePredicate& diverges,
                          ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st.initial_statements = CountStatements(spec);

  ProgramSpec cur = spec;
  auto probe = [&](const ProgramSpec& cand) {
    ++st.probes;
    return diverges(cand);
  };

  bool progress = true;
  while (progress) {
    progress = false;

    // 1. Statement removal (with compound flattening as the fallback), one
    //    function at a time, pre-order. After an accepted removal the scan
    //    stays at the same index — the next statement slid into it.
    for (size_t f = 0; f < cur.funcs.size(); ++f) {
      size_t total = CountStatements(cur.funcs[f].body);
      size_t k = 0;
      while (k < total) {
        ProgramSpec cand = cur;
        size_t kk = k;
        RemoveNth(&cand.funcs[f].body, &kk);
        if (probe(cand)) {
          cur = std::move(cand);
          total = CountStatements(cur.funcs[f].body);
          ++st.accepted;
          progress = true;
          continue;
        }
        cand = cur;
        kk = k;
        FlattenNth(&cand.funcs[f].body, &kk);
        if (CountStatements(cand.funcs[f].body) < total && probe(cand)) {
          cur = std::move(cand);
          total = CountStatements(cur.funcs[f].body);
          ++st.accepted;
          progress = true;
          continue;
        }
        ++k;
      }
    }

    // 2. Unreferenced-function removal. Entries shape the partition even when
    //    uncalled, so each removal is re-validated through the predicate.
    for (size_t f = 0; f < cur.funcs.size();) {
      if (cur.funcs[f].name == "main") {
        ++f;
        continue;
      }
      std::map<std::string, int> refs;
      CollectCalleeRefs(cur, &refs);
      if (refs.count(cur.funcs[f].name) != 0) {
        ++f;
        continue;
      }
      ProgramSpec cand = cur;
      cand.funcs.erase(cand.funcs.begin() + static_cast<std::ptrdiff_t>(f));
      if (probe(cand)) {
        cur = std::move(cand);
        ++st.accepted;
        progress = true;
      } else {
        ++f;
      }
    }

    // 3. Unreferenced-global removal.
    for (size_t g = 0; g < cur.globals.size();) {
      std::map<std::string, int> refs;
      CollectGlobalRefs(cur, &refs);
      if (refs.count(cur.globals[g].name) != 0) {
        ++g;
        continue;
      }
      ProgramSpec cand = cur;
      cand.globals.erase(cand.globals.begin() + static_cast<std::ptrdiff_t>(g));
      if (probe(cand)) {
        cur = std::move(cand);
        ++st.accepted;
        progress = true;
      } else {
        ++g;
      }
    }

    // 4. Sanitize-entry removal.
    for (size_t s = 0; s < cur.sanitize.size();) {
      ProgramSpec cand = cur;
      cand.sanitize.erase(cand.sanitize.begin() + static_cast<std::ptrdiff_t>(s));
      if (probe(cand)) {
        cur = std::move(cand);
        ++st.accepted;
        progress = true;
      } else {
        ++s;
      }
    }

    // 5. UART-input truncation: all at once, then byte by byte off the end.
    if (!cur.rx_input.empty()) {
      ProgramSpec cand = cur;
      cand.rx_input.clear();
      if (probe(cand)) {
        cur = std::move(cand);
        ++st.accepted;
        progress = true;
      } else {
        while (!cur.rx_input.empty()) {
          cand = cur;
          cand.rx_input.pop_back();
          if (!probe(cand)) {
            break;
          }
          cur = std::move(cand);
          ++st.accepted;
          progress = true;
        }
      }
    }
  }

  st.final_statements = CountStatements(cur);
  return cur;
}

}  // namespace opec_fuzz
