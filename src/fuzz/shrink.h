// Greedy deterministic program shrinker (DESIGN.md Section 12.3).
//
// Given a recipe and a predicate ("still diverges"), repeatedly tries
// structure-preserving reductions in a fixed order — drop a statement,
// flatten a compound statement into its body, drop an unreferenced function
// or global, drop a sanitize entry, truncate the UART input — keeping each
// candidate iff the predicate still holds, until a fixpoint. No randomness:
// the same input recipe and predicate always minimize to the same recipe.

#ifndef SRC_FUZZ_SHRINK_H_
#define SRC_FUZZ_SHRINK_H_

#include <cstdint>
#include <functional>

#include "src/fuzz/program.h"

namespace opec_fuzz {

struct ShrinkStats {
  size_t probes = 0;      // predicate evaluations
  size_t accepted = 0;    // reductions kept
  size_t initial_statements = 0;
  size_t final_statements = 0;
};

using DivergePredicate = std::function<bool(const ProgramSpec&)>;

ProgramSpec ShrinkProgram(const ProgramSpec& spec, const DivergePredicate& diverges,
                          ShrinkStats* stats = nullptr);

}  // namespace opec_fuzz

#endif  // SRC_FUZZ_SHRINK_H_
