// Traffic fuzzing (DESIGN.md Section 12, extended by the traffic layer): one
// case derives a random TrafficSpec from its seed, runs the long-running
// TCP-Echo server (PIO or DMA device, seed-picked) under vanilla and OPEC
// builds on both execution tiers with the RV monitors attached, and checks
//
//  - the scenario check (echo count, committed-tx digest, UART stats against
//    the generator's guest-replica expectations) passes in every
//    configuration,
//  - modeled cycles / statement counts are bit-identical between the
//    interpreter and bytecode tiers per build mode,
//  - vanilla and OPEC agree on the echo count,
//  - clean runs carry zero RV violations,
//
// then micro-fuzzes the two ethernet device models directly with a seeded
// random register/op sequence (RXDATA on an empty queue, oversize TXLEN,
// bogus ring configs, partial tx commits, mid-stream snapshot round trips)
// and folds every observation into the case digest, so serial and parallel
// sweeps can be compared byte-for-byte like the recipe fuzzer's.

#ifndef SRC_FUZZ_TRAFFIC_FUZZ_H_
#define SRC_FUZZ_TRAFFIC_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/traffic/traffic.h"

namespace opec_fuzz {

struct TrafficCaseResult {
  uint64_t seed = 0;
  opec_traffic::TrafficSpec spec;
  std::vector<std::string> divergences;
  std::string digest;  // deterministic one-line fingerprint
};

TrafficCaseResult RunTrafficCase(uint64_t seed);

// The device-model micro-fuzz alone (also exercised inside RunTrafficCase);
// returns the op-sequence digest and appends any invariant violations.
uint64_t MicroFuzzEthernetDevices(uint64_t seed, std::vector<std::string>* divergences);

}  // namespace opec_fuzz

#endif  // SRC_FUZZ_TRAFFIC_FUZZ_H_
