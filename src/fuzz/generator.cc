#include "src/fuzz/generator.h"

#include <string>
#include <utility>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/hw/address_map.h"

namespace opec_fuzz {

namespace {

using opec_campaign::SplitMix64;

constexpr uint32_t kUartSr = opec_hw::kUsart2Base + 0x00;
constexpr uint32_t kUartDr = opec_hw::kUsart2Base + 0x04;
constexpr uint32_t kUartBrr = opec_hw::kUsart2Base + 0x08;
constexpr uint32_t kUartCr1 = opec_hw::kUsart2Base + 0x0C;
constexpr uint32_t kGpioModer = opec_hw::kGpioABase + 0x00;
constexpr uint32_t kGpioIdr = opec_hw::kGpioABase + 0x10;
constexpr uint32_t kGpioOdr = opec_hw::kGpioABase + 0x14;

// --- FExpr construction helpers -------------------------------------------

FExpr EConst(Scalar s, uint64_t v) {
  FExpr e;
  e.k = FExpr::K::kConst;
  e.scalar = s;
  e.value = v;
  return e;
}
FExpr EU32(uint32_t v) { return EConst(Scalar::kU32, v); }
FExpr EGlobal(const std::string& name) {
  FExpr e;
  e.k = FExpr::K::kGlobal;
  e.name = name;
  return e;
}
FExpr ELocal(const std::string& name) {
  FExpr e;
  e.k = FExpr::K::kLocal;
  e.name = name;
  return e;
}
FExpr EBin(FBinOp op, FExpr a, FExpr b) {
  FExpr e;
  e.k = FExpr::K::kBin;
  e.bin = op;
  e.kids.push_back(std::move(a));
  e.kids.push_back(std::move(b));
  return e;
}
FExpr EUn(FUnOp op, FExpr a) {
  FExpr e;
  e.k = FExpr::K::kUn;
  e.un = op;
  e.kids.push_back(std::move(a));
  return e;
}
FExpr EIdx(FExpr base, FExpr idx) {
  FExpr e;
  e.k = FExpr::K::kIdx;
  e.kids.push_back(std::move(base));
  e.kids.push_back(std::move(idx));
  return e;
}
FExpr EFld(FExpr base, const std::string& field) {
  FExpr e;
  e.k = FExpr::K::kFld;
  e.name = field;
  e.kids.push_back(std::move(base));
  return e;
}
FExpr EAddr(FExpr lv) {
  FExpr e;
  e.k = FExpr::K::kAddr;
  e.kids.push_back(std::move(lv));
  return e;
}
FExpr EDeref(FExpr p) {
  FExpr e;
  e.k = FExpr::K::kDeref;
  e.kids.push_back(std::move(p));
  return e;
}
FExpr EMmio(uint32_t addr) {
  FExpr e;
  e.k = FExpr::K::kMmio;
  e.addr = addr;
  return e;
}
FExpr ECast(Scalar s, FExpr v) {
  FExpr e;
  e.k = FExpr::K::kCast;
  e.scalar = s;
  e.kids.push_back(std::move(v));
  return e;
}
FExpr ECall(const std::string& fn, std::vector<FExpr> args) {
  FExpr e;
  e.k = FExpr::K::kCall;
  e.name = fn;
  e.kids = std::move(args);
  return e;
}
FExpr EICall(const std::string& fnptr_global, std::vector<FExpr> args) {
  FExpr e;
  e.k = FExpr::K::kICall;
  e.name = fnptr_global;
  e.kids = std::move(args);
  return e;
}
FExpr EFnAddr(const std::string& fn) {
  FExpr e;
  e.k = FExpr::K::kFnAddr;
  e.name = fn;
  return e;
}

FStmt SAssign(FExpr lhs, FExpr rhs) {
  FStmt s;
  s.k = FStmt::K::kAssign;
  s.lhs = std::move(lhs);
  s.rhs = std::move(rhs);
  return s;
}
FStmt SCall(const std::string& callee, std::vector<FExpr> args) {
  FStmt s;
  s.k = FStmt::K::kCall;
  s.callee = callee;
  s.args = std::move(args);
  return s;
}

// --- Generation context ---------------------------------------------------

struct ScalarGlobal {
  std::string name;
  Scalar scalar = Scalar::kU32;
};
struct ArrayGlobal {
  std::string name;
  Scalar elem = Scalar::kU8;
  uint32_t count = 8;  // always a power of two (indices are masked)
};

struct GenCtx {
  SplitMix64 rng;
  explicit GenCtx(uint64_t seed) : rng(seed) {}

  std::vector<ScalarGlobal> scalars;
  std::vector<size_t> hot;  // indices into `scalars` shared across tasks
  std::vector<ArrayGlobal> arrays;
  bool has_struct = false;
  std::vector<FField> struct_fields;
  bool struct_has_ptr = false;
  std::string ptr_u8_array;  // the u8 array the struct's pointer field aims at
  bool has_ptr = false;      // "ptr0", pointer to u32
  bool has_fnptr = false;    // "fp0"
  bool has_rodata = false;
  uint32_t rodata_count = 0;
  std::vector<std::string> helpers;

  uint64_t Roll(uint64_t bound) { return rng.Below(bound); }
  bool Chance(uint64_t percent) { return rng.Below(100) < percent; }
};

struct FuncCtx {
  FFunc* fn = nullptr;
  bool allow_mmio = false;
  bool allow_calls = false;
  bool has_buf = false;  // p_u8 parameter "buf" + u32 parameter "len"
  uint32_t buf_len = 0;
  int next_loop = 0;
  int depth = 0;
  // Locals generated stores may target. Loop counters are deliberately
  // excluded: a generated `i0 = ...` inside the loop body would reset the
  // counter and turn a bounded loop into an infinite one.
  std::vector<std::string> writable_locals;
};

const ScalarGlobal& PickScalar(GenCtx& g) {
  // Bias toward the hot pool so several operations touch the same globals
  // (that is what makes them external and exercises shadow sync).
  if (!g.hot.empty() && g.Chance(60)) {
    return g.scalars[g.hot[g.Roll(g.hot.size())]];
  }
  return g.scalars[g.Roll(g.scalars.size())];
}

// A value expression that is safe as an array index once masked: the mask is
// applied by the caller with kAnd against (count - 1) after a u32 cast.
FExpr GenValue(GenCtx& g, FuncCtx& f, int depth);

FExpr MaskedIndex(GenCtx& g, FuncCtx& f, uint32_t count) {
  if (g.Chance(55)) {
    return EU32(static_cast<uint32_t>(g.Roll(count)));
  }
  return EBin(FBinOp::kAnd, ECast(Scalar::kU32, GenValue(g, f, 0)), EU32(count - 1));
}

FExpr GenLeaf(GenCtx& g, FuncCtx& f) {
  for (;;) {
    switch (g.Roll(9)) {
      case 0:  // small constant
        return EConst(g.Chance(30) ? Scalar::kI32 : Scalar::kU32, g.Roll(16));
      case 1:  // wide constant
        return EU32(g.rng.Next32());
      case 2:  // scalar global read
        return EGlobal(PickScalar(g).name);
      case 3: {  // array element read
        if (g.arrays.empty()) {
          break;
        }
        const ArrayGlobal& a = g.arrays[g.Roll(g.arrays.size())];
        return EIdx(EGlobal(a.name), MaskedIndex(g, f, a.count));
      }
      case 4: {  // struct scalar field read
        if (!g.has_struct) {
          break;
        }
        size_t pick = g.Roll(g.struct_fields.size());
        if (g.struct_fields[pick].is_ptr_u8) {
          break;
        }
        return EFld(EGlobal("st0"), g.struct_fields[pick].name);
      }
      case 5:  // read through the pointer global
        if (!g.has_ptr) {
          break;
        }
        return EDeref(EGlobal("ptr0"));
      case 6:  // local / parameter
        if (f.fn->locals.empty()) {
          break;
        }
        return ELocal(f.fn->locals[g.Roll(f.fn->locals.size())].first);
      case 7: {  // MMIO read
        if (!f.allow_mmio) {
          break;
        }
        static constexpr uint32_t kReads[] = {kUartSr, kUartDr, kGpioIdr, kGpioOdr};
        return EMmio(kReads[g.Roll(4)]);
      }
      case 8: {  // stack buffer element read
        if (!f.has_buf) {
          break;
        }
        return EIdx(ELocal("buf"), MaskedIndex(g, f, f.buf_len));
      }
    }
  }
}

FExpr GenValue(GenCtx& g, FuncCtx& f, int depth) {
  if (depth <= 0 || g.Chance(35)) {
    return GenLeaf(g, f);
  }
  switch (g.Roll(7)) {
    case 0: {  // plain binary op
      static constexpr FBinOp kOps[] = {FBinOp::kAdd, FBinOp::kSub, FBinOp::kMul,
                                        FBinOp::kAnd, FBinOp::kOr,  FBinOp::kXor};
      return EBin(kOps[g.Roll(6)], GenValue(g, f, depth - 1), GenValue(g, f, depth - 1));
    }
    case 1:  // division / remainder by a non-zero constant (never traps)
      return EBin(g.Chance(50) ? FBinOp::kDiv : FBinOp::kRem, GenValue(g, f, depth - 1),
                  EU32(1 + static_cast<uint32_t>(g.Roll(7))));
    case 2:  // shift by a small constant
      return EBin(g.Chance(50) ? FBinOp::kShl : FBinOp::kShr, GenValue(g, f, depth - 1),
                  EU32(g.Roll(8)));
    case 3:
      return EUn(g.Chance(50) ? FUnOp::kBitNot : FUnOp::kNeg, GenValue(g, f, depth - 1));
    case 4: {
      static constexpr Scalar kCasts[] = {Scalar::kU8, Scalar::kU16, Scalar::kU32, Scalar::kI32};
      return ECast(kCasts[g.Roll(4)], GenValue(g, f, depth - 1));
    }
    case 5:  // direct helper call
      if (f.allow_calls && !g.helpers.empty()) {
        return ECall(g.helpers[g.Roll(g.helpers.size())],
                     {GenValue(g, f, depth - 1), GenValue(g, f, depth - 1)});
      }
      return GenLeaf(g, f);
    case 6:  // indirect call through the function-pointer global
      if (f.allow_calls && g.has_fnptr) {
        return EICall("fp0", {GenValue(g, f, depth - 1), GenValue(g, f, depth - 1)});
      }
      return GenLeaf(g, f);
  }
  return GenLeaf(g, f);
}

FExpr GenCond(GenCtx& g, FuncCtx& f) {
  if (f.allow_mmio && g.Chance(20)) {
    // The RXNE poll idiom: data-register reads elsewhere pop the queue.
    return EBin(FBinOp::kNe, EBin(FBinOp::kAnd, EMmio(kUartSr), EU32(1)), EU32(0));
  }
  static constexpr FBinOp kCmp[] = {FBinOp::kEq, FBinOp::kNe, FBinOp::kLt,
                                    FBinOp::kLe, FBinOp::kGt, FBinOp::kGe};
  FExpr cmp = EBin(kCmp[g.Roll(6)], GenValue(g, f, 1), GenValue(g, f, 1));
  if (g.Chance(20)) {
    return EBin(g.Chance(50) ? FBinOp::kLAnd : FBinOp::kLOr, std::move(cmp),
                EBin(kCmp[g.Roll(6)], GenValue(g, f, 1), GenValue(g, f, 1)));
  }
  return cmp;
}

FExpr GenLValue(GenCtx& g, FuncCtx& f) {
  for (;;) {
    switch (g.Roll(8)) {
      case 0:
      case 1:  // scalar global (hot-biased): the main shadow-sync stressor
        return EGlobal(PickScalar(g).name);
      case 2: {  // array element
        if (g.arrays.empty()) {
          break;
        }
        const ArrayGlobal& a = g.arrays[g.Roll(g.arrays.size())];
        return EIdx(EGlobal(a.name), MaskedIndex(g, f, a.count));
      }
      case 3: {  // struct scalar field
        if (!g.has_struct) {
          break;
        }
        size_t pick = g.Roll(g.struct_fields.size());
        if (g.struct_fields[pick].is_ptr_u8) {
          break;
        }
        return EFld(EGlobal("st0"), g.struct_fields[pick].name);
      }
      case 4:  // write through the pointer global
        if (!g.has_ptr || !g.Chance(50)) {
          break;
        }
        return EDeref(EGlobal("ptr0"));
      case 5:  // local (writable ones only; never a loop counter)
        if (f.writable_locals.empty()) {
          break;
        }
        return ELocal(f.writable_locals[g.Roll(f.writable_locals.size())]);
      case 6: {  // MMIO write
        if (!f.allow_mmio) {
          break;
        }
        static constexpr uint32_t kWrites[] = {kUartDr, kGpioOdr, kGpioModer};
        return EMmio(kWrites[g.Roll(3)]);
      }
      case 7:  // stack buffer element
        if (!f.has_buf) {
          break;
        }
        return EIdx(ELocal("buf"), MaskedIndex(g, f, f.buf_len));
    }
  }
}

void GenStmts(GenCtx& g, FuncCtx& f, std::vector<FStmt>* out, size_t count);

FStmt GenStmt(GenCtx& g, FuncCtx& f) {
  switch (g.Roll(10)) {
    case 0:
    case 1:
    case 2:
    case 3:
      return SAssign(GenLValue(g, f), GenValue(g, f, 2));
    case 4:
    case 5: {  // if / if-else
      FStmt s;
      s.k = FStmt::K::kIf;
      s.rhs = GenCond(g, f);
      ++f.depth;
      GenStmts(g, f, &s.body, 1 + g.Roll(3));
      if (g.Chance(40)) {
        GenStmts(g, f, &s.orelse, 1 + g.Roll(2));
      }
      --f.depth;
      return s;
    }
    case 6: {  // bounded counter loop
      if (f.depth >= 2) {
        return SAssign(GenLValue(g, f), GenValue(g, f, 2));
      }
      FStmt s;
      s.k = FStmt::K::kLoop;
      s.loop_var = "i" + std::to_string(f.next_loop++);
      f.fn->locals.emplace_back(s.loop_var, Scalar::kU32);
      s.loop_count = 2 + static_cast<uint32_t>(g.Roll(3));
      ++f.depth;
      GenStmts(g, f, &s.body, 1 + g.Roll(3));
      --f.depth;
      return s;
    }
    case 7:  // UART transmit
      if (f.allow_mmio) {
        return SAssign(EMmio(kUartDr), GenValue(g, f, 1));
      }
      return SAssign(GenLValue(g, f), GenValue(g, f, 2));
    case 8:  // helper result into a global
      if (f.allow_calls && !g.helpers.empty()) {
        return SAssign(EGlobal(PickScalar(g).name),
                       ECall(g.helpers[g.Roll(g.helpers.size())],
                             {GenValue(g, f, 1), GenValue(g, f, 1)}));
      }
      return SAssign(GenLValue(g, f), GenValue(g, f, 2));
    case 9:  // indirect-call result into a global
      if (f.allow_calls && g.has_fnptr) {
        return SAssign(EGlobal(PickScalar(g).name),
                       EICall("fp0", {GenValue(g, f, 1), GenValue(g, f, 1)}));
      }
      return SAssign(GenLValue(g, f), GenValue(g, f, 2));
  }
  return SAssign(GenLValue(g, f), GenValue(g, f, 2));
}

void GenStmts(GenCtx& g, FuncCtx& f, std::vector<FStmt>* out, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    out->push_back(GenStmt(g, f));
  }
}

}  // namespace

ProgramSpec GenerateProgram(uint64_t seed) {
  GenCtx g(seed);
  ProgramSpec spec;
  spec.seed = seed;

  // --- Global pool ---
  // g0 is always a u32 scalar (the checksum sink and default pointer target).
  static constexpr Scalar kScalars[] = {Scalar::kU8, Scalar::kU16, Scalar::kU32, Scalar::kI32};
  size_t num_scalars = 3 + g.Roll(4);
  for (size_t i = 0; i < num_scalars; ++i) {
    ScalarGlobal sg{"g" + std::to_string(i), i == 0 ? Scalar::kU32 : kScalars[g.Roll(4)]};
    g.scalars.push_back(sg);
    FGlobal fg;
    fg.k = FGlobal::K::kScalar;
    fg.name = sg.name;
    fg.scalar = sg.scalar;
    spec.globals.push_back(fg);
  }
  size_t num_hot = 2 + g.Roll(2);
  for (size_t i = 0; i < num_hot && i < g.scalars.size(); ++i) {
    g.hot.push_back(i);
  }

  {
    ArrayGlobal a{"arr0", Scalar::kU8, g.Chance(50) ? 8u : 16u};
    g.arrays.push_back(a);
    FGlobal fg;
    fg.k = FGlobal::K::kArray;
    fg.name = a.name;
    fg.scalar = a.elem;
    fg.count = a.count;
    spec.globals.push_back(fg);
  }
  if (g.Chance(50)) {
    ArrayGlobal a{"arr1", Scalar::kU32, g.Chance(50) ? 4u : 8u};
    g.arrays.push_back(a);
    FGlobal fg;
    fg.k = FGlobal::K::kArray;
    fg.name = a.name;
    fg.scalar = a.elem;
    fg.count = a.count;
    spec.globals.push_back(fg);
  }

  if (g.Chance(60)) {
    g.has_struct = true;
    size_t nfields = 2 + g.Roll(2);
    for (size_t i = 0; i < nfields; ++i) {
      FField f;
      f.name = "f" + std::to_string(i);
      f.scalar = kScalars[g.Roll(4)];
      g.struct_fields.push_back(f);
    }
    if (g.Chance(50)) {
      FField f;
      f.name = "fp";
      f.is_ptr_u8 = true;
      g.struct_fields.push_back(f);
      g.struct_has_ptr = true;
      g.ptr_u8_array = "arr0";
    }
    FGlobal fg;
    fg.k = FGlobal::K::kStruct;
    fg.name = "st0";
    fg.struct_name = "S0";
    fg.fields = g.struct_fields;
    spec.globals.push_back(fg);
  }

  if (g.Chance(60)) {
    g.has_ptr = true;
    FGlobal fg;
    fg.k = FGlobal::K::kPtr;
    fg.name = "ptr0";
    fg.ptr_elem = Scalar::kU32;
    spec.globals.push_back(fg);
  }

  size_t num_helpers = 1 + g.Roll(2);
  for (size_t i = 0; i < num_helpers; ++i) {
    g.helpers.push_back("helper" + std::to_string(i));
  }
  if (g.Chance(70)) {
    g.has_fnptr = true;
    FGlobal fg;
    fg.k = FGlobal::K::kFnPtr;
    fg.name = "fp0";
    spec.globals.push_back(fg);
  }

  if (g.Chance(50)) {
    g.has_rodata = true;
    g.rodata_count = 4;
    FGlobal fg;
    fg.k = FGlobal::K::kConstArray;
    fg.name = "rodata0";
    fg.scalar = Scalar::kU8;
    fg.count = g.rodata_count;
    for (uint32_t i = 0; i < g.rodata_count; ++i) {
      fg.init.push_back(static_cast<uint8_t>('A' + g.Roll(26)));
    }
    spec.globals.push_back(fg);
  }

  // --- Helpers: u32(u32 a, u32 b) leaves, some with global side effects ---
  for (const std::string& name : g.helpers) {
    FFunc fn;
    fn.name = name;
    fn.returns_u32 = true;
    fn.params.push_back({"a", false});
    fn.params.push_back({"b", false});
    fn.locals.emplace_back("t", Scalar::kU32);
    FuncCtx fc;
    fc.fn = &fn;
    static constexpr FBinOp kOps[] = {FBinOp::kAdd, FBinOp::kSub, FBinOp::kMul, FBinOp::kXor};
    fn.body.push_back(SAssign(ELocal("t"), EBin(kOps[g.Roll(4)], ELocal("a"), ELocal("b"))));
    if (g.Chance(60)) {
      fn.body.push_back(SAssign(
          ELocal("t"), EBin(kOps[g.Roll(4)], ELocal("t"), EGlobal(PickScalar(g).name))));
    }
    if (g.Chance(30)) {
      // A helper that writes a global: every operation calling it shares the
      // global, so it goes external.
      fn.body.push_back(SAssign(EGlobal(PickScalar(g).name), ELocal("t")));
    }
    FStmt ret;
    ret.k = FStmt::K::kRet;
    ret.rhs = ELocal("t");
    fn.body.push_back(ret);
    spec.funcs.push_back(std::move(fn));
  }

  // --- Tasks (operation entries) ---
  size_t num_tasks = 2 + g.Roll(3);
  int buf_task = g.Chance(60) ? static_cast<int>(g.Roll(num_tasks)) : -1;
  uint32_t buf_len = g.Chance(50) ? 8u : 16u;
  std::vector<std::string> task_names;
  for (size_t t = 0; t < num_tasks; ++t) {
    FFunc fn;
    fn.name = "Task" + std::to_string(t);
    fn.is_entry = true;
    FuncCtx fc;
    fc.fn = &fn;
    fc.allow_mmio = g.Chance(70);
    fc.allow_calls = true;
    if (static_cast<int>(t) == buf_task) {
      fn.params.push_back({"buf", true});
      fn.params.push_back({"len", false});
      fn.pointer_arg_sizes[0] = buf_len;
      fc.has_buf = true;
      fc.buf_len = buf_len;
      fc.writable_locals.push_back("len");
    }
    fn.locals.emplace_back("v", Scalar::kU32);
    fc.writable_locals.push_back("v");
    GenStmts(g, fc, &fn.body, 3 + g.Roll(6));
    // Occasionally chain into another (parameterless) entry: a nested
    // operation switch.
    if (t + 1 == num_tasks && num_tasks >= 2 && g.Chance(25)) {
      for (size_t other = 0; other < num_tasks - 1; ++other) {
        if (static_cast<int>(other) != buf_task) {
          fn.body.push_back(SCall("Task" + std::to_string(other), {}));
          break;
        }
      }
    }
    task_names.push_back(fn.name);
    spec.funcs.push_back(std::move(fn));
  }

  // --- main ---
  {
    FFunc fn;
    fn.name = "main";
    fn.returns_u32 = true;
    FuncCtx fc;
    fc.fn = &fn;
    fc.allow_mmio = true;
    fc.allow_calls = !g.helpers.empty();
    fn.body.push_back(SAssign(EMmio(kUartBrr), EU32(0x16D)));
    fn.body.push_back(SAssign(EMmio(kUartCr1), EU32(1)));
    if (g.Chance(50)) {
      fn.body.push_back(SAssign(EMmio(kGpioModer), EU32(1)));
    }
    if (g.has_fnptr) {
      fn.body.push_back(
          SAssign(EGlobal("fp0"), EFnAddr(g.helpers[g.Roll(g.helpers.size())])));
    }
    if (g.has_ptr) {
      bool via_array = g.arrays.size() > 1 && g.Chance(40);
      if (via_array) {
        fn.body.push_back(SAssign(
            EGlobal("ptr0"),
            EAddr(EIdx(EGlobal("arr1"), EU32(static_cast<uint32_t>(g.Roll(4)))))));
      } else {
        // Aim at a u32 scalar global (g0 always qualifies).
        std::string target = "g0";
        for (const ScalarGlobal& sg : g.scalars) {
          if (sg.scalar == Scalar::kU32 && g.Chance(40)) {
            target = sg.name;
            break;
          }
        }
        fn.body.push_back(SAssign(EGlobal("ptr0"), EAddr(EGlobal(target))));
      }
    }
    if (g.struct_has_ptr) {
      fn.body.push_back(
          SAssign(EFld(EGlobal("st0"), "fp"), EAddr(EIdx(EGlobal(g.ptr_u8_array), EU32(0)))));
    }
    if (g.has_struct) {
      for (const FField& f : g.struct_fields) {
        if (!f.is_ptr_u8 && g.Chance(60)) {
          fn.body.push_back(
              SAssign(EFld(EGlobal("st0"), f.name), EConst(f.scalar, g.Roll(256))));
        }
      }
    }
    if (buf_task >= 0) {
      fn.u8_array_locals.emplace_back("mbuf", buf_len);
      size_t inits = 2 + g.Roll(2);
      for (size_t i = 0; i < inits; ++i) {
        fn.body.push_back(
            SAssign(EIdx(ELocal("mbuf"), EU32(static_cast<uint32_t>(g.Roll(buf_len)))),
                    EConst(Scalar::kU8, g.Roll(256))));
      }
    }

    // Call every task; one call may be wrapped in a bounded loop.
    int looped = g.Chance(40) ? static_cast<int>(g.Roll(num_tasks)) : -1;
    for (size_t t = 0; t < num_tasks; ++t) {
      FStmt call;
      if (static_cast<int>(t) == buf_task) {
        call = SCall(task_names[t],
                     {EAddr(EIdx(ELocal("mbuf"), EU32(0))), EU32(buf_len)});
      } else {
        call = SCall(task_names[t], {});
      }
      if (static_cast<int>(t) == looped) {
        FStmt loop;
        loop.k = FStmt::K::kLoop;
        loop.loop_var = "iz";
        fn.locals.emplace_back("iz", Scalar::kU32);
        loop.loop_count = 2;
        loop.body.push_back(std::move(call));
        fn.body.push_back(std::move(loop));
      } else {
        fn.body.push_back(std::move(call));
      }
    }

    // Fold observable state into the checksum global, then return it.
    FExpr sum = EGlobal("g0");
    for (size_t i = 1; i < g.scalars.size(); ++i) {
      sum = EBin(FBinOp::kAdd, std::move(sum), ECast(Scalar::kU32, EGlobal(g.scalars[i].name)));
    }
    if (buf_task >= 0) {
      sum = EBin(FBinOp::kAdd, std::move(sum),
                 ECast(Scalar::kU32,
                       EIdx(ELocal("mbuf"), EU32(static_cast<uint32_t>(g.Roll(buf_len))))));
    }
    if (g.has_ptr) {
      sum = EBin(FBinOp::kAdd, std::move(sum), EDeref(EGlobal("ptr0")));
    }
    fn.body.push_back(SAssign(EGlobal("g0"), std::move(sum)));
    FStmt ret;
    ret.k = FStmt::K::kRet;
    ret.rhs = EGlobal("g0");
    fn.body.push_back(ret);
    spec.funcs.push_back(std::move(fn));
  }

  // Sanitization on one shared u32 global, always full-range: the machinery
  // runs on every switch but can never legitimately fail, so any sanitize
  // denial on a generated program is a divergence.
  if (g.Chance(50)) {
    for (size_t i : g.hot) {
      if (g.scalars[i].scalar == Scalar::kU32) {
        spec.sanitize.push_back({g.scalars[i].name, 0, 0xFFFFFFFFu});
        break;
      }
    }
  }

  size_t rx = g.Roll(11);
  for (size_t i = 0; i < rx; ++i) {
    spec.rx_input.push_back(static_cast<char>('0' + g.Roll(75)));
  }
  return spec;
}

}  // namespace opec_fuzz
