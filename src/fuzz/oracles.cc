#include "src/fuzz/oracles.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/analysis/points_to.h"
#include "src/campaign/campaign.h"
#include "src/fuzz/generator.h"
#include "src/hw/machine.h"
#include "src/hw/mpu.h"
#include "src/obs/event.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_fuzz {

namespace {

using opec_campaign::SplitMix64;
using opec_support::StrPrintf;

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}
uint64_t Fnv1a(uint64_t h, const std::string& s) { return Fnv1a(h, s.data(), s.size()); }
constexpr uint64_t kFnvBasis = 0xCBF29CE484222325ull;

// Where to read a global's final value. Vanilla: its one home address. OPEC:
// the engine ends the run inside the default operation, whose shadows are the
// freshest copy and are NOT written back to the public section at program
// end; externals the default op does not shadow were last synced to their
// public copy at the preceding operation exit.
uint32_t FinalAddrOf(opec_apps::AppRun& run, const opec_ir::GlobalVariable* gv) {
  const opec_compiler::CompileResult* cr = run.compile();
  if (cr == nullptr) {
    return run.layout().AddrOf(gv);
  }
  const opec_compiler::Policy& policy = cr->policy;
  int ext = policy.FindExternalIndex(gv);
  if (ext < 0) {
    return run.layout().AddrOf(gv);
  }
  for (const opec_compiler::OperationPolicy& op : policy.operations) {
    if (op.id != policy.default_op_id) {
      continue;
    }
    for (const opec_compiler::ShadowPlacement& sh : op.shadows) {
      if (sh.var_index == ext) {
        return sh.addr;
      }
    }
  }
  return policy.externals[static_cast<size_t>(ext)].public_addr;
}

std::string BytesHex(const std::vector<uint8_t>& bytes, size_t off = 0,
                     size_t len = SIZE_MAX) {
  std::string out;
  for (size_t i = off; i < bytes.size() && i - off < len; ++i) {
    out += StrPrintf("%02X", bytes[i]);
  }
  return out;
}

// Resolves a guest data address to "global+offset", looking through every
// copy of a variable (vanilla home, OPEC public copy, every operation's
// shadow placement). Pointer values stored in guest memory are only
// comparable across builds symbolically.
class SymbolResolver {
 public:
  explicit SymbolResolver(opec_apps::AppRun& run) {
    for (const auto& gv : run.module().globals()) {
      uint32_t addr = run.layout().AddrOf(gv.get());
      if (addr != 0 && gv->size() != 0) {
        ranges_.push_back({addr, gv->size(), gv->name()});
      }
    }
    const opec_compiler::CompileResult* cr = run.compile();
    if (cr != nullptr) {
      for (const opec_compiler::OperationPolicy& op : cr->policy.operations) {
        for (const opec_compiler::ShadowPlacement& sh : op.shadows) {
          const opec_compiler::ExternalVar& ev =
              cr->policy.externals[static_cast<size_t>(sh.var_index)];
          ranges_.push_back({sh.addr, ev.size, ev.gv->name()});
        }
      }
    }
  }

  std::string Resolve(uint32_t addr) const {
    if (addr == 0) {
      return "null";
    }
    for (const Range& r : ranges_) {
      if (addr >= r.base && addr - r.base < r.size) {
        return StrPrintf("%s+%u", r.name.c_str(), addr - r.base);
      }
    }
    return "raw:" + opec_support::HexAddr(addr);
  }

 private:
  struct Range {
    uint32_t base = 0;
    uint32_t size = 0;
    std::string name;
  };
  std::vector<Range> ranges_;
};

std::string ResolveFuncAddr(opec_apps::AppRun& run, uint32_t addr) {
  if (addr == 0) {
    return "null";
  }
  for (const auto& fn : run.module().functions()) {
    if (run.engine().FuncAddr(fn.get()) == addr) {
      return fn->name();
    }
  }
  return "raw:" + opec_support::HexAddr(addr);
}

uint32_t U32At(const std::vector<uint8_t>& bytes, size_t off) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4 && off + i < bytes.size(); ++i) {
    v |= static_cast<uint32_t>(bytes[off + i]) << (8 * i);
  }
  return v;
}

// Renders a global's final bytes with pointer slots resolved symbolically.
std::string RenderFinal(const FGlobal* fg, const opec_ir::GlobalVariable* gv,
                        const std::vector<uint8_t>& bytes, const SymbolResolver& resolver,
                        opec_apps::AppRun& run) {
  if (fg == nullptr) {
    return BytesHex(bytes);
  }
  switch (fg->k) {
    case FGlobal::K::kPtr:
      return "ptr:" + resolver.Resolve(U32At(bytes, 0));
    case FGlobal::K::kFnPtr:
      return "fn:" + ResolveFuncAddr(run, U32At(bytes, 0));
    case FGlobal::K::kStruct: {
      const auto& fields = gv->type()->fields();
      std::string out;
      for (size_t i = 0; i < fg->fields.size() && i < fields.size(); ++i) {
        if (!out.empty()) {
          out += " ";
        }
        out += fg->fields[i].name + "=";
        if (fg->fields[i].is_ptr_u8) {
          out += "ptr:" + resolver.Resolve(U32At(bytes, fields[i].offset));
        } else {
          out += BytesHex(bytes, fields[i].offset, fields[i].type->size());
        }
      }
      return out;
    }
    default:
      return BytesHex(bytes);
  }
}

}  // namespace

const char* OracleName(Oracle o) {
  switch (o) {
    case Oracle::kExecDiff:
      return "exec-diff";
    case Oracle::kPointsTo:
      return "points-to";
    case Oracle::kMpuCache:
      return "mpu-cache";
    case Oracle::kParallel:
      return "parallel";
    case Oracle::kSnapshot:
      return "snapshot";
    case Oracle::kBytecodeTier:
      return "bytecode-tier";
    case Oracle::kRv:
      return "rv";
  }
  return "?";
}

namespace {

// FNV digest over every field of every dispatched obs event: a compact,
// order-sensitive fingerprint of the full event stream. Attached to every
// oracle run so the bytecode tier's event stream can be compared against the
// interpreter's without retaining the events.
class EventDigestSink : public opec_obs::Sink {
 public:
  void OnEvent(const opec_obs::Event& e) override {
    h_ = Fnv1a(h_, &e.kind, sizeof(e.kind));
    h_ = Fnv1a(h_, &e.operation_id, sizeof(e.operation_id));
    h_ = Fnv1a(h_, &e.depth, sizeof(e.depth));
    h_ = Fnv1a(h_, &e.cycle, sizeof(e.cycle));
    h_ = Fnv1a(h_, &e.arg0, sizeof(e.arg0));
    h_ = Fnv1a(h_, &e.arg1, sizeof(e.arg1));
    h_ = Fnv1a(h_, &e.arg2, sizeof(e.arg2));
  }
  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = kFnvBasis;
};

// Shared by RunOnce (plain) and DiffSnapshotRoundTrip (probed). With `probe`
// set, the run executes under the snapshot RoundTripProbe; the probe's check
// count and error list are copied out before the run is torn down.
ExecObservation RunOnceImpl(const ProgramSpec& spec, opec_apps::BuildMode mode,
                            opec_apps::EngineKind engine, bool probe, uint64_t* probes,
                            std::vector<std::string>* probe_errors) {
  ExecObservation obs;
  FuzzApplication app(spec);
  opec_support::ScopedCheckThrow capture;
  try {
    opec_apps::AppRun run(app, mode, engine);
    EventDigestSink events;
    run.AttachSink(&events);
    if (probe) {
      run.EnableSnapshotProbe();
    }
    run.EnableRv();
    opec_rt::RunResult result = run.Execute();
    obs.cycles = result.cycles;
    obs.statements = result.statements;
    obs.events_digest = events.digest();
    obs.rv_violations = run.rv()->total_violations();
    obs.rv_report = run.rv()->Report();
    if (probe && run.probe() != nullptr) {
      if (probes != nullptr) {
        *probes = run.probe()->probes();
      }
      if (probe_errors != nullptr) {
        *probe_errors = run.probe()->errors();
      }
    }
    obs.run_ok = result.ok;
    obs.violation = result.violation;
    obs.return_value = result.return_value;
    auto& devs = static_cast<FuzzDevices&>(run.devices());
    obs.uart_tx = devs.uart->TxString();
    obs.odr_history = devs.gpio->odr_history();
    SymbolResolver resolver(run);
    for (const auto& gv : run.module().globals()) {
      if (gv->is_const()) {
        continue;
      }
      const FGlobal* fg = nullptr;
      for (const FGlobal& cand : spec.globals) {
        if (cand.name == gv->name()) {
          fg = &cand;
          break;
        }
      }
      uint32_t addr = FinalAddrOf(run, gv.get());
      std::vector<uint8_t> bytes = run.machine().bus().DebugReadBytes(addr, gv->size());
      obs.finals[gv->name()] = RenderFinal(fg, gv.get(), bytes, resolver, run);
    }
  } catch (const opec_support::CheckError& e) {
    obs.build_error = true;
    obs.build_error_msg = e.what();
  }
  return obs;
}

}  // namespace

ExecObservation RunOnce(const ProgramSpec& spec, opec_apps::BuildMode mode,
                        opec_apps::EngineKind engine) {
  return RunOnceImpl(spec, mode, engine, /*probe=*/false, nullptr, nullptr);
}

std::string FormatObservation(const ExecObservation& obs) {
  if (obs.build_error) {
    return "build-error: " + obs.build_error_msg;
  }
  std::string out = StrPrintf("ok=%d ret=0x%08X", obs.run_ok ? 1 : 0, obs.return_value);
  if (!obs.run_ok) {
    out += " violation=[" + obs.violation + "]";
  }
  out += StrPrintf(" uart=%zuB odr=%zu", obs.uart_tx.size(), obs.odr_history.size());
  for (const auto& [name, rendered] : obs.finals) {
    out += " " + name + "=" + rendered;
  }
  return out;
}

std::vector<Divergence> CompareExec(const ProgramSpec& spec, const ExecObservation& vanilla,
                                    const ExecObservation& opec) {
  (void)spec;
  std::vector<Divergence> divs;
  auto add = [&divs](std::string detail) {
    divs.push_back({Oracle::kExecDiff, std::move(detail)});
  };
  if (vanilla.build_error || opec.build_error) {
    // Recipes are valid by construction: any CHECK out of either build is a
    // harness/compiler defect, not an expected outcome.
    if (vanilla.build_error) {
      add("vanilla build error: " + vanilla.build_error_msg);
    }
    if (opec.build_error) {
      add("opec build error: " + opec.build_error_msg);
    }
    return divs;
  }
  if (!vanilla.run_ok) {
    add("vanilla run failed: " + vanilla.violation);
    return divs;
  }
  if (!opec.run_ok) {
    add("opec run failed (vanilla succeeded): " + opec.violation);
    return divs;
  }
  if (vanilla.return_value != opec.return_value) {
    add(StrPrintf("return value: vanilla 0x%08X, opec 0x%08X", vanilla.return_value,
                  opec.return_value));
  }
  if (vanilla.uart_tx != opec.uart_tx) {
    add(StrPrintf("uart tx: vanilla %zuB [%s], opec %zuB [%s]", vanilla.uart_tx.size(),
                  BytesHex(std::vector<uint8_t>(vanilla.uart_tx.begin(), vanilla.uart_tx.end()))
                      .c_str(),
                  opec.uart_tx.size(),
                  BytesHex(std::vector<uint8_t>(opec.uart_tx.begin(), opec.uart_tx.end()))
                      .c_str()));
  }
  if (vanilla.odr_history != opec.odr_history) {
    add(StrPrintf("gpio odr history: vanilla %zu writes, opec %zu writes",
                  vanilla.odr_history.size(), opec.odr_history.size()));
  }
  for (const auto& [name, vrendered] : vanilla.finals) {
    auto it = opec.finals.find(name);
    if (it == opec.finals.end()) {
      add("global " + name + " missing from opec observation");
      continue;
    }
    if (vrendered != it->second) {
      add("final state of " + name + ": vanilla [" + vrendered + "], opec [" + it->second +
          "]");
    }
  }
  return divs;
}

// --- Oracle 2 -------------------------------------------------------------

namespace {

void CollectExprs(const opec_ir::ExprPtr& e, std::vector<const opec_ir::Expr*>* out) {
  if (e == nullptr) {
    return;
  }
  out->push_back(e.get());
  for (const opec_ir::ExprPtr& kid : e->operands) {
    CollectExprs(kid, out);
  }
}

void CollectStmtExprs(const std::vector<opec_ir::StmtPtr>& body,
                      std::vector<const opec_ir::Expr*>* out) {
  for (const opec_ir::StmtPtr& s : body) {
    CollectExprs(s->lhs, out);
    CollectExprs(s->expr, out);
    CollectStmtExprs(s->body, out);
    CollectStmtExprs(s->orelse, out);
  }
}

std::set<std::string> FuncNames(const std::set<const opec_ir::Function*>& fns) {
  std::set<std::string> names;
  for (const opec_ir::Function* f : fns) {
    names.insert(f->name());
  }
  return names;
}

std::set<std::string> GlobalNames(const std::set<const opec_ir::GlobalVariable*>& gvs) {
  std::set<std::string> names;
  for (const opec_ir::GlobalVariable* g : gvs) {
    names.insert(g->name());
  }
  return names;
}

std::string JoinSet(const std::set<std::string>& s) {
  std::string out;
  for (const std::string& e : s) {
    out += (out.empty() ? "" : ",") + e;
  }
  return "{" + out + "}";
}

}  // namespace

std::vector<Divergence> DiffPointsTo(const ProgramSpec& spec) {
  std::vector<Divergence> divs;
  auto add = [&divs](std::string detail) {
    divs.push_back({Oracle::kPointsTo, std::move(detail)});
  };
  std::unique_ptr<opec_ir::Module> module = BuildModule(spec);
  opec_analysis::PointsToAnalysis worklist(*module, opec_analysis::SolverMode::kWorklist);
  opec_analysis::PointsToAnalysis exhaustive(*module, opec_analysis::SolverMode::kExhaustive);
  worklist.Run();
  exhaustive.Run();
  for (const auto& fn : module->functions()) {
    std::vector<const opec_ir::Expr*> exprs;
    CollectStmtExprs(fn->body(), &exprs);
    for (size_t i = 0; i < exprs.size(); ++i) {
      const opec_ir::Expr* e = exprs[i];
      std::string where = StrPrintf("%s expr#%zu", fn->name().c_str(), i);
      if (e->kind == opec_ir::ExprKind::kICall) {
        std::set<std::string> a = FuncNames(worklist.ICallTargets(e));
        std::set<std::string> b = FuncNames(exhaustive.ICallTargets(e));
        if (a != b) {
          add(where + " icall targets: worklist " + JoinSet(a) + ", exhaustive " + JoinSet(b));
        }
      }
      std::set<std::string> ga = GlobalNames(worklist.PointeeGlobals(e));
      std::set<std::string> gb = GlobalNames(exhaustive.PointeeGlobals(e));
      if (ga != gb) {
        add(where + " pointee globals: worklist " + JoinSet(ga) + ", exhaustive " + JoinSet(gb));
      }
      std::set<uint32_t> ca = worklist.PointeeConstAddrs(e);
      std::set<uint32_t> cb = exhaustive.PointeeConstAddrs(e);
      if (ca != cb) {
        add(where + StrPrintf(" pointee const addrs differ (%zu vs %zu)", ca.size(), cb.size()));
      }
      if (worklist.MayPointToLocal(e) != exhaustive.MayPointToLocal(e)) {
        add(where + " may-point-to-local verdicts differ");
      }
    }
  }
  return divs;
}

std::vector<Divergence> DiffInjectedPointsTo(uint64_t seed) {
  std::vector<Divergence> divs;
  SplitMix64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  opec_ir::Module dummy("injected");
  opec_analysis::PointsToAnalysis worklist(dummy, opec_analysis::SolverMode::kWorklist);
  opec_analysis::PointsToAnalysis exhaustive(dummy, opec_analysis::SolverMode::kExhaustive);
  int n = 8 + static_cast<int>(rng.Below(17));
  for (int i = 0; i < n; ++i) {
    int a = worklist.InjectNode();
    int b = exhaustive.InjectNode();
    if (a != b) {
      divs.push_back({Oracle::kPointsTo, "injected node ids diverged"});
      return divs;
    }
  }
  size_t edges = static_cast<size_t>(n) * 2 + rng.Below(static_cast<uint64_t>(n) * 2);
  for (size_t i = 0; i < edges; ++i) {
    int x = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
    int y = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
    switch (rng.Below(4)) {
      case 0:
        worklist.InjectBase(x, y);
        exhaustive.InjectBase(x, y);
        break;
      case 1:
        worklist.InjectCopy(x, y);
        exhaustive.InjectCopy(x, y);
        break;
      case 2:
        worklist.InjectLoad(x, y);
        exhaustive.InjectLoad(x, y);
        break;
      default:
        worklist.InjectStore(x, y);
        exhaustive.InjectStore(x, y);
        break;
    }
  }
  worklist.SolveInjected();
  exhaustive.SolveInjected();
  for (int i = 0; i < n; ++i) {
    const std::set<int>& a = worklist.PointsToSetOf(i);
    const std::set<int>& b = exhaustive.PointsToSetOf(i);
    if (a != b) {
      divs.push_back(
          {Oracle::kPointsTo,
           StrPrintf("injected graph (%d nodes, %zu edges): pts(%d) worklist |%zu| != "
                     "exhaustive |%zu|",
                     n, edges, i, a.size(), b.size())});
    }
  }
  return divs;
}

// --- Oracle 3 -------------------------------------------------------------

std::vector<Divergence> DiffMpuCache(uint64_t seed) {
  std::vector<Divergence> divs;
  SplitMix64 rng(seed ^ 0xD6E8FEB86659FD93ull);
  opec_hw::Mpu mpu;
  mpu.set_enabled(true);
  opec_support::ScopedCheckThrow capture;  // ConfigureRegion CHECKs validity
  static constexpr uint32_t kBases[] = {0x00000000u, 0x08000000u, 0x20000000u, 0x40000000u};
  auto random_addr = [&rng]() -> uint32_t {
    uint32_t base = kBases[rng.Below(4)];
    return base + (rng.Next32() & 0x000FFFFFu);
  };
  for (int step = 0; step < 300; ++step) {
    uint64_t action = rng.Below(8);
    if (action == 0) {
      opec_hw::MpuRegionConfig cfg;
      cfg.enabled = true;
      cfg.size_log2 = static_cast<uint8_t>(5 + rng.Below(12));  // 32B .. 64KB
      cfg.base = random_addr() & ~(cfg.size() - 1);
      if (cfg.size_log2 >= 8 && rng.Below(2) == 0) {
        cfg.srd = static_cast<uint8_t>(rng.Next32() & 0xFF);
      }
      cfg.ap = static_cast<opec_hw::AccessPerm>(rng.Below(6));
      cfg.xn = rng.Below(2) == 0;
      mpu.ConfigureRegion(static_cast<int>(rng.Below(8)), cfg);
      continue;
    }
    if (action == 1) {
      mpu.DisableRegion(static_cast<int>(rng.Below(8)));
      continue;
    }
    // Probe. Half the probes aim near an enabled region's boundaries, where
    // window transitions (and bugs) live.
    uint32_t addr = random_addr();
    int r = static_cast<int>(rng.Below(8));
    if (rng.Below(2) == 0 && mpu.region(r).enabled) {
      const opec_hw::MpuRegionConfig& cfg = mpu.region(r);
      uint32_t span = cfg.size() + 64;
      addr = cfg.base - 32 + static_cast<uint32_t>(rng.Below(span));
    }
    opec_hw::AccessKind kind =
        rng.Below(2) == 0 ? opec_hw::AccessKind::kRead : opec_hw::AccessKind::kWrite;
    bool priv = rng.Below(2) == 0;
    if (action < 6) {
      uint32_t size = 1u << rng.Below(3);
      bool cached = mpu.CheckAccess(addr, size, kind, priv);
      bool direct = mpu.CheckAccessUncached(addr, size, kind, priv);
      if (cached != direct) {
        divs.push_back({Oracle::kMpuCache,
                        StrPrintf("step %d: CheckAccess(%s, size=%u, %s, %s) cached=%d "
                                  "uncached=%d",
                                  step, opec_support::HexAddr(addr).c_str(), size,
                                  kind == opec_hw::AccessKind::kWrite ? "write" : "read",
                                  priv ? "priv" : "unpriv", cached ? 1 : 0, direct ? 1 : 0)});
      }
      // The bytecode tier's verdict-cache primitive: AllowedRange's verdict
      // must equal the uncached single-byte walk, the interval must contain
      // the probe, and the verdict must be uniform across it — checked at
      // both interval ends and at a random interior point.
      uint32_t lo = 0;
      uint32_t hi = 0;
      bool range_verdict = mpu.AllowedRange(addr, kind, priv, &lo, &hi);
      bool byte_direct = mpu.CheckAccessUncached(addr, 1, kind, priv);
      if (range_verdict != byte_direct || lo > addr || hi < addr) {
        divs.push_back(
            {Oracle::kMpuCache,
             StrPrintf("step %d: AllowedRange(%s, %s, %s) verdict=%d uncached=%d "
                       "interval=[%s, %s]",
                       step, opec_support::HexAddr(addr).c_str(),
                       kind == opec_hw::AccessKind::kWrite ? "write" : "read",
                       priv ? "priv" : "unpriv", range_verdict ? 1 : 0, byte_direct ? 1 : 0,
                       opec_support::HexAddr(lo).c_str(), opec_support::HexAddr(hi).c_str())});
      } else {
        uint32_t interior =
            lo + static_cast<uint32_t>(rng.Next() %
                                       (static_cast<uint64_t>(hi) - lo + 1));
        for (uint32_t probe : {lo, hi, interior}) {
          if (mpu.CheckAccessUncached(probe, 1, kind, priv) != range_verdict) {
            divs.push_back(
                {Oracle::kMpuCache,
                 StrPrintf("step %d: AllowedRange(%s) interval [%s, %s] not uniform: "
                           "verdict=%d but probe %s disagrees",
                           step, opec_support::HexAddr(addr).c_str(),
                           opec_support::HexAddr(lo).c_str(),
                           opec_support::HexAddr(hi).c_str(), range_verdict ? 1 : 0,
                           opec_support::HexAddr(probe).c_str())});
            break;
          }
        }
      }
    } else {
      uint32_t len = 1 + static_cast<uint32_t>(rng.Below(200));
      bool ranged = mpu.CheckRange(addr, len, kind, priv);
      bool direct = true;
      for (uint32_t b = 0; b < len && direct; ++b) {
        direct = mpu.CheckAccessUncached(addr + b, 1, kind, priv);
      }
      if (ranged != direct) {
        divs.push_back({Oracle::kMpuCache,
                        StrPrintf("step %d: CheckRange(%s, len=%u, %s, %s) ranged=%d "
                                  "per-byte=%d",
                                  step, opec_support::HexAddr(addr).c_str(), len,
                                  kind == opec_hw::AccessKind::kWrite ? "write" : "read",
                                  priv ? "priv" : "unpriv", ranged ? 1 : 0, direct ? 1 : 0)});
      }
    }
  }
  return divs;
}

// --- Oracle 5: snapshot round trip ----------------------------------------

std::vector<Divergence> DiffSnapshotRoundTrip(const ProgramSpec& spec,
                                              const ExecObservation& opec) {
  std::vector<Divergence> divs;
  uint64_t probes = 0;
  std::vector<std::string> errors;
  ExecObservation probed = RunOnceImpl(spec, opec_apps::BuildMode::kOpec,
                                       opec_apps::EngineKind::kInterp, /*probe=*/true,
                                       &probes, &errors);
  for (const std::string& e : errors) {
    divs.push_back({Oracle::kSnapshot, e});
  }
  // Capture→serialize→restore at every SVC boundary must be invisible: the
  // probed run's observation is compared against the uninterrupted run's.
  std::string want = FormatObservation(opec);
  std::string got = FormatObservation(probed);
  if (want != got) {
    divs.push_back({Oracle::kSnapshot,
                    StrPrintf("probed run diverged after %llu round trips: probed [%s] "
                              "uninterrupted [%s]",
                              static_cast<unsigned long long>(probes), got.c_str(),
                              want.c_str())});
  }
  return divs;
}

// --- Oracle 6: bytecode tier ----------------------------------------------

namespace {

// One mode's interp-vs-bytecode comparison. The external observation must
// render identically, and the tier contract is stricter than the exec-diff
// oracle: modeled cycles, statement counts and the obs-event stream digest
// must also be bit-identical.
void CompareTier(const char* mode_name, const ExecObservation& interp,
                 const ExecObservation& bytecode, std::vector<Divergence>* divs) {
  auto add = [&](std::string detail) {
    divs->push_back({Oracle::kBytecodeTier, std::move(detail)});
  };
  std::string want = FormatObservation(interp);
  std::string got = FormatObservation(bytecode);
  if (want != got) {
    add(StrPrintf("%s observation: interp [%s], bytecode [%s]", mode_name, want.c_str(),
                  got.c_str()));
    return;
  }
  if (interp.cycles != bytecode.cycles) {
    add(StrPrintf("%s modeled cycles: interp %llu, bytecode %llu", mode_name,
                  static_cast<unsigned long long>(interp.cycles),
                  static_cast<unsigned long long>(bytecode.cycles)));
  }
  if (interp.statements != bytecode.statements) {
    add(StrPrintf("%s statements: interp %llu, bytecode %llu", mode_name,
                  static_cast<unsigned long long>(interp.statements),
                  static_cast<unsigned long long>(bytecode.statements)));
  }
  if (interp.events_digest != bytecode.events_digest) {
    add(StrPrintf("%s obs-event digest: interp %016llX, bytecode %016llX", mode_name,
                  static_cast<unsigned long long>(interp.events_digest),
                  static_cast<unsigned long long>(bytecode.events_digest)));
  }
}

}  // namespace

std::vector<Divergence> DiffBytecodeTier(const ProgramSpec& spec,
                                         const ExecObservation& vanilla,
                                         const ExecObservation& opec,
                                         ExecObservation* bc_vanilla_out,
                                         ExecObservation* bc_opec_out) {
  std::vector<Divergence> divs;
  ExecObservation bc_vanilla =
      RunOnce(spec, opec_apps::BuildMode::kVanilla, opec_apps::EngineKind::kBytecode);
  ExecObservation bc_opec =
      RunOnce(spec, opec_apps::BuildMode::kOpec, opec_apps::EngineKind::kBytecode);
  CompareTier("vanilla", vanilla, bc_vanilla, &divs);
  CompareTier("opec", opec, bc_opec, &divs);
  if (bc_vanilla_out != nullptr) {
    *bc_vanilla_out = std::move(bc_vanilla);
  }
  if (bc_opec_out != nullptr) {
    *bc_opec_out = std::move(bc_opec);
  }
  return divs;
}

// --- Oracle 7: runtime-verification monitors -------------------------------

namespace {

// First line(s) of an RV report that carry violation details, for divergence
// messages that stay readable in a one-line log.
std::string ReportHead(const std::string& report) {
  size_t cut = 0;
  for (int lines = 0; lines < 4 && cut != std::string::npos; ++lines) {
    cut = report.find('\n', cut + 1);
  }
  std::string head = cut == std::string::npos ? report : report.substr(0, cut);
  for (char& c : head) {
    if (c == '\n') {
      c = ';';
    }
  }
  return head;
}

void CheckCleanObservation(const char* label, const ExecObservation& obs,
                           std::vector<Divergence>* divs) {
  // Violations are only meaningful on runs that completed cleanly: an aborted
  // or unbuildable recipe legitimately ends mid-protocol.
  if (obs.build_error || !obs.run_ok) {
    return;
  }
  if (obs.rv_violations != 0) {
    divs->push_back({Oracle::kRv,
                     StrPrintf("%s: clean run tripped %llu rv violation(s): %s", label,
                               static_cast<unsigned long long>(obs.rv_violations),
                               ReportHead(obs.rv_report).c_str())});
  }
}

}  // namespace

std::vector<Divergence> DiffRvMonitors(const ProgramSpec& spec,
                                       const ExecObservation& vanilla,
                                       const ExecObservation& opec,
                                       const ExecObservation& bc_vanilla,
                                       const ExecObservation& bc_opec) {
  std::vector<Divergence> divs;
  CheckCleanObservation("vanilla/interp", vanilla, &divs);
  CheckCleanObservation("opec/interp", opec, &divs);
  CheckCleanObservation("vanilla/bytecode", bc_vanilla, &divs);
  CheckCleanObservation("opec/bytecode", bc_opec, &divs);

  // The report is derived purely from the obs-event stream, so like the event
  // digest it must be byte-identical between execution tiers.
  if (!vanilla.build_error && !bc_vanilla.build_error &&
      vanilla.rv_report != bc_vanilla.rv_report) {
    divs.push_back({Oracle::kRv,
                    StrPrintf("vanilla rv report differs between tiers: interp [%s] "
                              "bytecode [%s]",
                              ReportHead(vanilla.rv_report).c_str(),
                              ReportHead(bc_vanilla.rv_report).c_str())});
  }
  if (!opec.build_error && !bc_opec.build_error && opec.rv_report != bc_opec.rv_report) {
    divs.push_back({Oracle::kRv,
                    StrPrintf("opec rv report differs between tiers: interp [%s] "
                              "bytecode [%s]",
                              ReportHead(opec.rv_report).c_str(),
                              ReportHead(bc_opec.rv_report).c_str())});
  }

  // A blocked cross-section write must be flagged: inject a deterministic
  // attack — first sectioned non-default operation writes one byte into the
  // second's section — and require that, when the MPU blocks it, at least one
  // monitor fired. Recipes with fewer than two sectioned operations skip this.
  opec_support::ScopedCheckThrow capture;
  try {
    FuzzApplication app(spec);
    opec_apps::AppRun run(app, opec_apps::BuildMode::kOpec,
                          opec_apps::EngineKind::kInterp);
    const opec_compiler::CompileResult* cr = run.compile();
    if (cr == nullptr) {
      return divs;
    }
    const opec_compiler::OperationPolicy* victim = nullptr;
    const opec_compiler::OperationPolicy* attacker = nullptr;
    for (const opec_compiler::OperationPolicy& op : cr->policy.operations) {
      if (!op.has_section || op.id == cr->policy.default_op_id || op.entry.empty()) {
        continue;
      }
      if (attacker == nullptr) {
        attacker = &op;
      } else if (victim == nullptr) {
        victim = &op;
        break;
      }
    }
    if (attacker == nullptr || victim == nullptr) {
      return divs;
    }
    opec_rt::AttackSpec attack;
    attack.function = attacker->entry;
    attack.occurrence = 1;
    attack.addr = victim->section_base;
    attack.size = 1;
    attack.value = 0x01;
    attack.xor_with_old = true;
    run.AddAttack(attack);
    run.EnableRv();
    run.Execute();
    const opec_rt::AttackSpec& echoed = run.engine().attacks().front();
    if (echoed.fired && echoed.blocked && run.rv()->total_violations() == 0) {
      divs.push_back({Oracle::kRv,
                      StrPrintf("blocked cross-section write (%s -> %s section @0x%08X) "
                                "tripped no monitor",
                                attacker->name.c_str(), victim->name.c_str(),
                                victim->section_base)});
    }
  } catch (const opec_support::CheckError&) {
    // An attack run that dies in a host CHECK is the concern of other
    // oracles; the RV oracle only judges runs that the engine survived.
  }
  return divs;
}

// --- One full case --------------------------------------------------------

CaseResult RunCase(uint64_t seed) {
  CaseResult result;
  result.seed = seed;
  ProgramSpec spec = GenerateProgram(seed);
  result.summary = SpecSummary(spec);

  ExecObservation vanilla = RunOnce(spec, opec_apps::BuildMode::kVanilla);
  ExecObservation opec = RunOnce(spec, opec_apps::BuildMode::kOpec);
  std::vector<Divergence> divs = CompareExec(spec, vanilla, opec);
  for (Divergence& d : DiffPointsTo(spec)) {
    divs.push_back(std::move(d));
  }
  for (Divergence& d : DiffInjectedPointsTo(seed)) {
    divs.push_back(std::move(d));
  }
  for (Divergence& d : DiffMpuCache(seed)) {
    divs.push_back(std::move(d));
  }
  for (Divergence& d : DiffSnapshotRoundTrip(spec, opec)) {
    divs.push_back(std::move(d));
  }
  ExecObservation bc_vanilla;
  ExecObservation bc_opec;
  for (Divergence& d : DiffBytecodeTier(spec, vanilla, opec, &bc_vanilla, &bc_opec)) {
    divs.push_back(std::move(d));
  }
  for (Divergence& d : DiffRvMonitors(spec, vanilla, opec, bc_vanilla, bc_opec)) {
    divs.push_back(std::move(d));
  }
  result.divergences = std::move(divs);

  uint64_t h = kFnvBasis;
  h = Fnv1a(h, &seed, sizeof(seed));
  h = Fnv1a(h, result.summary);
  h = Fnv1a(h, FormatObservation(vanilla));
  h = Fnv1a(h, FormatObservation(opec));
  for (const Divergence& d : result.divergences) {
    h = Fnv1a(h, OracleName(d.oracle));
    h = Fnv1a(h, d.detail);
  }
  result.digest = StrPrintf("seed=%llu digest=%016llX divs=%zu",
                            static_cast<unsigned long long>(seed),
                            static_cast<unsigned long long>(h), result.divergences.size());
  return result;
}

}  // namespace opec_fuzz
