// Fuzz program recipes (DESIGN.md Section 12).
//
// A ProgramSpec is a small, self-contained AST over the opec_ir eDSL: typed
// globals (scalars, arrays, structs with pointer fields, pointer and
// function-pointer globals), helper functions, operation-entry tasks and a
// main routine. The recipe — not a built module — is the unit the fuzzer
// passes around, because the OPEC compile mutates modules: every build
// (vanilla image, OPEC image, shrink probe) must start from pristine IR, so
// BuildModule() reconstructs a fresh module from the recipe each time.
//
// The grammar is restricted so every generated program terminates and is
// deterministic: loops are bounded counter loops, division is by non-zero
// constants, there is no recursion, and all device input comes from the
// scenario's pinned UART bytes.

#ifndef SRC_FUZZ_PROGRAM_H_
#define SRC_FUZZ_PROGRAM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/hw/devices/gpio.h"
#include "src/hw/devices/uart.h"
#include "src/ir/module.h"

namespace opec_fuzz {

// Scalar value types the generator draws from.
enum class Scalar : uint8_t { kU8, kU16, kU32, kI32 };

const char* ScalarName(Scalar s);

// Operators, mirroring the FunctionBuilder overloads.
enum class FBinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem, kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe, kLAnd, kLOr,
};
enum class FUnOp : uint8_t { kNeg, kLogNot, kBitNot };

// Expression node. Children live in `kids` (vector of incomplete type is
// fine since C++17): unary/Addr/Deref/Cast use kids[0]; binary and Idx use
// kids[0..1]; Fld uses kids[0]; calls use kids as the argument list.
struct FExpr {
  enum class K : uint8_t {
    kConst,   // integer literal of type `scalar`
    kGlobal,  // module global `name`
    kLocal,   // local or parameter `name`
    kBin,     // kids[0] <bin> kids[1]
    kUn,      // <un> kids[0]
    kIdx,     // kids[0][kids[1]]
    kFld,     // kids[0].name
    kAddr,    // &kids[0]
    kDeref,   // *kids[0]
    kMmio,    // 32-bit MMIO register at constant `addr`
    kCall,    // direct call of `name` with kids as args (u32-returning helper)
    kICall,   // indirect call through fn-ptr global `name` with kids as args
    kCast,    // (scalar)kids[0]
    kFnAddr,  // &function `name`, as a function-pointer value
  };
  K k = K::kConst;
  Scalar scalar = Scalar::kU32;  // kConst value type / kCast target
  uint64_t value = 0;            // kConst
  std::string name;              // kGlobal/kLocal: variable; kFld: field; kCall/kICall
  FBinOp bin = FBinOp::kAdd;
  FUnOp un = FUnOp::kNeg;
  uint32_t addr = 0;  // kMmio
  std::vector<FExpr> kids;
};

// Statement node. Bounded loops carry their own counter variable so the
// shrinker can never separate a loop from its increment.
struct FStmt {
  enum class K : uint8_t {
    kAssign,  // lhs = rhs
    kExpr,    // rhs evaluated for effect (a call, usually)
    kIf,      // if (rhs) body [else orelse]
    kLoop,    // for (loop_var = 0; loop_var < loop_count; ++loop_var) body
    kCall,    // void call of `callee` with args
    kRet,     // return rhs (u32 functions only)
  };
  K k = K::kAssign;
  FExpr lhs;
  FExpr rhs;
  std::string callee;
  std::vector<FExpr> args;
  std::string loop_var;
  uint32_t loop_count = 0;
  std::vector<FStmt> body;
  std::vector<FStmt> orelse;
};

struct FField {
  std::string name;
  Scalar scalar = Scalar::kU32;
  bool is_ptr_u8 = false;  // pointer-to-u8 field (shadow pointer redirection)
};

struct FGlobal {
  enum class K : uint8_t { kScalar, kArray, kStruct, kPtr, kFnPtr, kConstArray };
  K k = K::kScalar;
  std::string name;
  Scalar scalar = Scalar::kU32;  // kScalar type / kArray & kConstArray element
  uint32_t count = 0;            // kArray / kConstArray length
  std::string struct_name;       // kStruct nominal type name
  std::vector<FField> fields;    // kStruct
  Scalar ptr_elem = Scalar::kU32;  // kPtr pointee
  std::vector<uint8_t> init;       // kConstArray initial bytes
};

struct FParam {
  std::string name;
  bool is_ptr_u8 = false;  // pointer-to-u8 parameter, else u32
};

struct FFunc {
  std::string name;
  bool returns_u32 = false;  // else void
  std::vector<FParam> params;
  // Locals are all pre-declared and zero-initialized at function entry, so
  // removing any body statement keeps the function well-formed.
  std::vector<std::pair<std::string, Scalar>> locals;
  // u8 stack buffers (name, length), zero-filled at entry; passed by address
  // into entry functions to exercise the monitor's stack relocation.
  std::vector<std::pair<std::string, uint32_t>> u8_array_locals;
  std::vector<FStmt> body;
  bool is_entry = false;                      // operation entry function
  std::map<int, uint32_t> pointer_arg_sizes;  // entry stack info
};

struct FSanitize {
  std::string global;
  uint32_t min = 0;
  uint32_t max = 0xFFFFFFFFu;
};

struct ProgramSpec {
  uint64_t seed = 0;
  std::vector<FGlobal> globals;
  std::vector<FFunc> funcs;  // helpers and tasks; the last entry must be "main"
  std::vector<FSanitize> sanitize;
  std::string rx_input;  // UART bytes the scenario feeds in
};

// Builds a fresh pristine module from the recipe. Deterministic: the same
// spec always produces structurally identical IR.
std::unique_ptr<opec_ir::Module> BuildModule(const ProgramSpec& spec);

// Total number of recipe statements (recursing into if/loop bodies) — the
// shrinker's size metric.
size_t CountStatements(const ProgramSpec& spec);
size_t CountStatements(const std::vector<FStmt>& body);

// Names of functions referenced by any remaining call/icall/fn-ptr use, and
// of globals referenced by any remaining expression. The shrinker uses these
// to drop dead declarations safely.
void CollectCalleeRefs(const ProgramSpec& spec, std::map<std::string, int>* refs);
void CollectGlobalRefs(const ProgramSpec& spec, std::map<std::string, int>* refs);

// One-line structural summary (counts), for logs and corpus dumps.
std::string SpecSummary(const ProgramSpec& spec);

// --- Application wrapper -------------------------------------------------

struct FuzzDevices : public opec_apps::AppDevices {
  opec_hw::Uart* uart = nullptr;
  opec_hw::Gpio* gpio = nullptr;
  std::vector<std::unique_ptr<opec_hw::MmioDevice>> owned;
};

// Adapts a recipe to the AppRun harness: STM32F4-Discovery board, USART2 +
// GPIOA devices, scenario input = spec.rx_input. CheckScenario is empty —
// the differential oracles judge the outputs.
class FuzzApplication : public opec_apps::Application {
 public:
  explicit FuzzApplication(ProgramSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override;
  opec_hw::Board board() const override { return opec_hw::Board::kStm32F4Discovery; }
  std::unique_ptr<opec_ir::Module> BuildModule() const override;
  opec_compiler::PartitionConfig Partition() const override;
  opec_hw::SocDescription Soc() const override;
  std::unique_ptr<opec_apps::AppDevices> CreateDevices(opec_hw::Machine& machine) const override;
  void PrepareScenario(opec_apps::AppDevices& devices) const override;
  std::string CheckScenario(const opec_apps::AppDevices& devices,
                            const opec_rt::RunResult& result) const override;

  const ProgramSpec& spec() const { return spec_; }

 private:
  ProgramSpec spec_;
};

}  // namespace opec_fuzz

#endif  // SRC_FUZZ_PROGRAM_H_
