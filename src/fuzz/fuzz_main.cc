// Differential fuzzing CLI (DESIGN.md Section 12).
//
//   fuzz --seed 1 --count 1000 [--jobs N] [--shrink] [--corpus-dir DIR]
//
// Case i runs the full oracle stack on program seed (--seed + i), fanned out
// over the campaign ParallelMap. Stdout is one deterministic digest line per
// case plus divergence details — byte-identical for any --jobs value, which
// is oracle 4 (CI runs the same sweep serial and parallel and cmps). Exit
// status: 0 clean, 1 divergences found, 2 usage error.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/program.h"
#include "src/fuzz/shrink.h"
#include "src/fuzz/traffic_fuzz.h"
#include "src/ir/printer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fuzz [--seed S] [--count N] [--jobs N] [--shrink] "
               "[--corpus-dir DIR]\n"
               "            [--traffic-count N] [--traffic-seed S]\n"
               "  --seed S           base program seed (default 1)\n"
               "  --count N          number of programs (default 100; 0 = skip)\n"
               "  --jobs N           worker threads (default 1; serial == parallel)\n"
               "  --shrink           minimize each diverging program\n"
               "  --corpus-dir D     write diverging recipes (IR + oracle report) to D\n"
               "  --traffic-count N  traffic cases over the net apps + ethernet\n"
               "                     device models (default 0)\n"
               "  --traffic-seed S   base traffic-case seed (default 1)\n");
  return 2;
}

// Full-string unsigned parse; rejects empty, trailing junk and overflow.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || std::strchr(s, '-') != nullptr) {
    return false;
  }
  *out = v;
  return true;
}

// The shrink predicate covers the recipe-level oracles (execution and
// points-to); the MPU and injected-graph oracles are seed-driven and have
// nothing to shrink.
bool SpecDiverges(const opec_fuzz::ProgramSpec& spec) {
  opec_fuzz::ExecObservation vanilla =
      opec_fuzz::RunOnce(spec, opec_apps::BuildMode::kVanilla);
  opec_fuzz::ExecObservation opec = opec_fuzz::RunOnce(spec, opec_apps::BuildMode::kOpec);
  if (!opec_fuzz::CompareExec(spec, vanilla, opec).empty()) {
    return true;
  }
  return !opec_fuzz::DiffPointsTo(spec).empty();
}

void DumpCorpusEntry(const std::string& dir, const opec_fuzz::CaseResult& result,
                     const opec_fuzz::ProgramSpec& spec, const char* suffix) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = dir + "/seed_" + std::to_string(result.seed) + suffix + ".txt";
  std::ofstream out(path);
  out << "# fuzz divergence, program seed " << result.seed << "\n";
  out << "# " << result.summary << "\n";
  for (const opec_fuzz::Divergence& d : result.divergences) {
    out << "# [" << opec_fuzz::OracleName(d.oracle) << "] " << d.detail << "\n";
  }
  out << "\n" << opec_ir::PrintModule(*opec_fuzz::BuildModule(spec));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t count = 100;
  uint64_t jobs = 1;
  uint64_t traffic_count = 0;
  uint64_t traffic_seed = 1;
  bool shrink = false;
  std::string corpus_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = value("--seed");
      if (v == nullptr || !ParseU64(v, &seed)) {
        std::fprintf(stderr, "invalid --seed '%s'; expected an unsigned integer\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--count") {
      const char* v = value("--count");
      if (v == nullptr || !ParseU64(v, &count)) {
        std::fprintf(stderr, "invalid --count '%s'; expected an integer >= 0\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--traffic-count") {
      const char* v = value("--traffic-count");
      if (v == nullptr || !ParseU64(v, &traffic_count)) {
        std::fprintf(stderr, "invalid --traffic-count '%s'; expected an integer >= 0\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--traffic-seed") {
      const char* v = value("--traffic-seed");
      if (v == nullptr || !ParseU64(v, &traffic_seed)) {
        std::fprintf(stderr, "invalid --traffic-seed '%s'; expected an unsigned integer\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--jobs") {
      const char* v = value("--jobs");
      if (v == nullptr || !ParseU64(v, &jobs) || jobs < 1 || jobs > 1024) {
        std::fprintf(stderr, "invalid --jobs '%s'; expected an integer in [1, 1024]\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--corpus-dir") {
      const char* v = value("--corpus-dir");
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "invalid --corpus-dir: expected a directory path\n");
        return Usage();
      }
      corpus_dir = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }

  std::vector<opec_fuzz::CaseResult> results = opec_campaign::ParallelMap(
      static_cast<int>(jobs), static_cast<size_t>(count),
      [seed](size_t i) { return opec_fuzz::RunCase(seed + i); });

  size_t diverging_cases = 0;
  size_t divergences = 0;
  for (const opec_fuzz::CaseResult& result : results) {
    std::printf("%s\n", result.digest.c_str());
    if (result.divergences.empty()) {
      continue;
    }
    ++diverging_cases;
    divergences += result.divergences.size();
    std::printf("  program: %s\n", result.summary.c_str());
    for (const opec_fuzz::Divergence& d : result.divergences) {
      std::printf("  [%s] %s\n", opec_fuzz::OracleName(d.oracle), d.detail.c_str());
    }
    opec_fuzz::ProgramSpec spec = opec_fuzz::GenerateProgram(result.seed);
    if (!corpus_dir.empty()) {
      DumpCorpusEntry(corpus_dir, result, spec, "");
    }
    if (shrink && SpecDiverges(spec)) {
      opec_fuzz::ShrinkStats stats;
      opec_fuzz::ProgramSpec small = opec_fuzz::ShrinkProgram(spec, SpecDiverges, &stats);
      std::printf("  shrunk: %zu -> %zu statements (%zu probes)\n", stats.initial_statements,
                  stats.final_statements, stats.probes);
      if (!corpus_dir.empty()) {
        opec_fuzz::CaseResult small_report = result;
        small_report.summary = opec_fuzz::SpecSummary(small);
        DumpCorpusEntry(corpus_dir, small_report, small, "_min");
      }
    }
  }

  std::printf("fuzz: %llu cases, %zu diverging, %zu divergences\n",
              static_cast<unsigned long long>(count), diverging_cases, divergences);

  size_t traffic_diverging = 0;
  if (traffic_count > 0) {
    std::vector<opec_fuzz::TrafficCaseResult> traffic_results = opec_campaign::ParallelMap(
        static_cast<int>(jobs), static_cast<size_t>(traffic_count),
        [traffic_seed](size_t i) { return opec_fuzz::RunTrafficCase(traffic_seed + i); });
    for (const opec_fuzz::TrafficCaseResult& result : traffic_results) {
      std::printf("%s\n", result.digest.c_str());
      if (result.divergences.empty()) {
        continue;
      }
      ++traffic_diverging;
      divergences += result.divergences.size();
      for (const std::string& d : result.divergences) {
        std::printf("  %s\n", d.c_str());
      }
    }
    std::printf("traffic fuzz: %llu cases, %zu diverging\n",
                static_cast<unsigned long long>(traffic_count), traffic_diverging);
  }
  return divergences == 0 ? 0 : 1;
}
