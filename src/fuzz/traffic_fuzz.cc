#include "src/fuzz/traffic_fuzz.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/apps/runner.h"
#include "src/apps/tcp_echo.h"
#include "src/hw/address_map.h"
#include "src/hw/devices/ethernet.h"
#include "src/hw/devices/ethernet_dma.h"
#include "src/hw/machine.h"
#include "src/hw/state_io.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_fuzz {
namespace {

struct SplitMix64 {
  explicit SplitMix64(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  uint64_t state;
};

uint64_t Fold(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ static_cast<uint8_t>(v >> (8 * i))) * 0x100000001B3ull;
  }
  return h;
}

uint64_t FoldStr(uint64_t h, const std::string& s) {
  return opec_hw::Fnv1a64(reinterpret_cast<const uint8_t*>(s.data()), s.size(), h);
}

// What one configuration's run looks like; every field enters the digest.
struct RunObservation {
  bool ok = false;
  uint32_t return_value = 0;
  uint64_t cycles = 0;
  uint64_t statements = 0;
  uint64_t rv_violations = 0;
  std::string check;  // scenario-check failure, empty when clean
};

RunObservation RunConfig(const opec_apps::TcpEchoApp& app, opec_apps::BuildMode mode,
                         opec_apps::EngineKind engine) {
  RunObservation obs;
  opec_support::ScopedCheckThrow capture;
  try {
    opec_apps::AppRun run(app, mode, engine);
    run.EnableRv();
    opec_rt::RunResult result = run.Execute();
    obs.ok = result.ok;
    obs.return_value = result.return_value;
    obs.cycles = result.cycles;
    obs.statements = result.statements;
    obs.rv_violations = run.rv()->total_violations();
    obs.check = result.ok ? run.Check() : "run failed: " + result.violation;
  } catch (const opec_support::CheckError& e) {
    obs.check = std::string("host check fired: ") + e.what();
  }
  return obs;
}

std::string SerializeDevice(const opec_hw::MmioDevice& device) {
  opec_hw::StateWriter w;
  device.SaveState(w);
  return std::string(w.data().begin(), w.data().end());
}

std::vector<uint8_t> RandomFrame(SplitMix64& rng) {
  std::vector<uint8_t> frame(rng.Below(81));
  for (uint8_t& b : frame) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return frame;
}

}  // namespace

uint64_t MicroFuzzEthernetDevices(uint64_t seed, std::vector<std::string>* divergences) {
  SplitMix64 rng(seed ^ 0xE7BE57F0D15C0DE5ull);
  opec_hw::Machine machine(opec_hw::Board::kStm32479iEval);
  auto eth = std::make_unique<opec_hw::Ethernet>("ETH", 0x40028000);
  auto dma = std::make_unique<opec_hw::EthernetDma>("ETH2", 0x40029000, &machine);
  const uint32_t ring_base = opec_hw::kSramBase + 0x1000;
  const uint32_t buf_base = opec_hw::kSramBase + 0x2000;
  uint64_t h = 0xCBF29CE484222325ull;
  const int ops = 96;
  for (int op = 0; op < ops; ++op) {
    uint64_t cycles = 0;
    uint32_t value = 0;
    bool ok = true;
    switch (rng.Below(12)) {
      case 0:
        eth->QueueRxFrame(RandomFrame(rng), rng.Below(2'000'000));
        break;
      case 1:
        ok = eth->Read(rng.Below(2) == 0 ? 0x00 : 0x04, &value, &cycles);
        break;
      case 2: {
        bool was_empty = eth->rx_pending() == 0;
        ok = eth->Read(0x08, &value, &cycles);
        if (was_empty && (!ok || value != 0 || cycles != 0)) {
          divergences->push_back(opec_support::StrPrintf(
              "RXDATA on empty queue: ok=%d value=%u cycles=%llu (want ok, 0, 0)", ok,
              value, static_cast<unsigned long long>(cycles)));
        }
        break;
      }
      case 3: {
        uint32_t len = static_cast<uint32_t>(rng.Below(4096));
        ok = eth->Write(0x0C, len, &cycles);
        if ((len > opec_hw::Ethernet::kMaxFrameBytes) == ok) {
          divergences->push_back(opec_support::StrPrintf(
              "TXLEN=%u: ok=%d (oversize must fault, in-range must not)", len, ok));
        }
        break;
      }
      case 4:
        ok = eth->Write(0x10, static_cast<uint32_t>(rng.Next()), &cycles);
        break;
      case 5:
        ok = eth->Write(0x14, 1 + static_cast<uint32_t>(rng.Below(2)), &cycles);
        break;
      case 6: {
        // Configure the DMA ring; occasionally point it somewhere bogus.
        bool bogus = rng.Below(8) == 0;
        uint32_t base = bogus ? 0x70000000u : ring_base;
        uint32_t count = 1 + static_cast<uint32_t>(rng.Below(8));
        ok = dma->Write(0x04, base, &cycles) && dma->Write(0x08, count, &cycles);
        if (!bogus) {
          for (uint32_t i = 0; i < count; ++i) {
            machine.bus().DebugWrite(ring_base + i * 8, 4, buf_base + i * 256);
            machine.bus().DebugWrite(ring_base + i * 8 + 4, 4, 0x80000000u);
          }
        }
        break;
      }
      case 7:
        ok = dma->Write(0x0C, static_cast<uint32_t>(rng.Below(20)), &cycles);
        break;
      case 8:
        dma->QueueRxFrame(RandomFrame(rng), rng.Below(2'000'000));
        break;
      case 9:
        machine.AddCycles(rng.Below(4'000'000));
        ok = dma->Write(0x18, 1, &cycles);
        break;
      case 10: {
        // Seed a tx frame in SRAM, then DMA it out; sometimes from a bogus
        // address, which must surface as a device fault, not an abort.
        bool bogus = rng.Below(8) == 0;
        uint32_t len = static_cast<uint32_t>(rng.Below(200));
        for (uint32_t i = 0; i < len; ++i) {
          machine.bus().DebugWrite(buf_base + 0x4000 + i, 1,
                                   static_cast<uint32_t>(rng.Next() & 0xFF));
        }
        ok = dma->Write(0x10, bogus ? 0x70000000u : buf_base + 0x4000, &cycles) &&
             dma->Write(0x14, len, &cycles);
        if (ok) {
          ok = dma->Write(0x18, 2, &cycles);
          if (bogus && len > 0 && ok) {
            divergences->push_back("DMA tx from an unmapped address did not fault");
          }
        }
        break;
      }
      default:
        ok = dma->Read(rng.Below(2) == 0 ? 0x00 : 0x1C, &value, &cycles);
        break;
    }
    h = Fold(h, static_cast<uint64_t>(op));
    h = Fold(h, ok ? 1 : 0);
    h = Fold(h, value);
    h = Fold(h, cycles);

    if (op == ops / 2) {
      // Mid-stream snapshot round trip: state must survive serialization with
      // queued frames, partial tx buffers and half-configured rings in flight.
      std::string eth_state = SerializeDevice(*eth);
      std::string dma_state = SerializeDevice(*dma);
      auto eth2 = std::make_unique<opec_hw::Ethernet>("ETH", 0x40028000);
      auto dma2 = std::make_unique<opec_hw::EthernetDma>("ETH2", 0x40029000, &machine);
      opec_hw::StateReader er(reinterpret_cast<const uint8_t*>(eth_state.data()),
                              eth_state.size());
      opec_hw::StateReader dr(reinterpret_cast<const uint8_t*>(dma_state.data()),
                              dma_state.size());
      eth2->LoadState(er);
      dma2->LoadState(dr);
      if (SerializeDevice(*eth2) != eth_state) {
        divergences->push_back("PIO ethernet state changed across a save/load round trip");
      }
      if (SerializeDevice(*dma2) != dma_state) {
        divergences->push_back("DMA ethernet state changed across a save/load round trip");
      }
      if (eth2->tx_digest() != eth->tx_digest() || dma2->tx_digest() != dma->tx_digest()) {
        divergences->push_back("tx digest not preserved across a save/load round trip");
      }
      // Continue the op stream on the restored devices.
      eth = std::move(eth2);
      dma = std::move(dma2);
    }
  }
  h = Fold(h, eth->tx_digest());
  h = Fold(h, dma->tx_digest());
  h = Fold(h, eth->tx_committed());
  h = Fold(h, dma->tx_committed());
  h = Fold(h, dma->delivered());
  return h;
}

TrafficCaseResult RunTrafficCase(uint64_t seed) {
  TrafficCaseResult result;
  result.seed = seed;
  SplitMix64 rng(seed ^ 0x7452414646494Bull);
  result.spec.rate_rps = 1 + static_cast<uint32_t>(rng.Below(1'000'000));
  result.spec.conns = 1 + static_cast<uint32_t>(rng.Below(8));
  result.spec.requests = 6 + static_cast<uint32_t>(rng.Below(27));
  result.spec.seed = rng.Next();
  result.spec.malformed_permille = static_cast<uint32_t>(rng.Below(401));
  result.spec.split_permille = static_cast<uint32_t>(rng.Below(401));
  result.spec.reconnect_permille = static_cast<uint32_t>(rng.Below(101));
  const bool use_dma = rng.Below(2) == 0;
  opec_apps::TcpEchoApp app(result.spec,
                            use_dma ? opec_apps::TcpEchoApp::EthVariant::kDma
                                    : opec_apps::TcpEchoApp::EthVariant::kPio);

  // modes × engines: [vanilla/interp, vanilla/bytecode, opec/interp,
  // opec/bytecode].
  RunObservation obs[4];
  uint64_t h = 0xCBF29CE484222325ull;
  int idx = 0;
  for (opec_apps::BuildMode mode :
       {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec}) {
    for (opec_apps::EngineKind engine :
         {opec_apps::EngineKind::kInterp, opec_apps::EngineKind::kBytecode}) {
      RunObservation& o = obs[idx++];
      o = RunConfig(app, mode, engine);
      const char* label = mode == opec_apps::BuildMode::kOpec ? "opec" : "vanilla";
      if (!o.check.empty()) {
        result.divergences.push_back(opec_support::StrPrintf(
            "[%s/%s] %s", label, opec_apps::EngineKindName(engine), o.check.c_str()));
      }
      if (o.rv_violations != 0) {
        result.divergences.push_back(opec_support::StrPrintf(
            "[%s/%s] %llu rv violation(s) on a clean traffic run", label,
            opec_apps::EngineKindName(engine),
            static_cast<unsigned long long>(o.rv_violations)));
      }
      h = Fold(h, o.ok ? 1 : 0);
      h = Fold(h, o.return_value);
      h = Fold(h, o.cycles);
      h = Fold(h, o.statements);
      h = Fold(h, o.rv_violations);
      h = FoldStr(h, o.check);
    }
  }
  // Cross-tier: modeled outputs must be bit-identical per build mode.
  for (int mode = 0; mode < 2; ++mode) {
    const RunObservation& a = obs[mode * 2];
    const RunObservation& b = obs[mode * 2 + 1];
    if (a.cycles != b.cycles || a.statements != b.statements) {
      result.divergences.push_back(opec_support::StrPrintf(
          "[%s] interp/bytecode modeled drift: cycles %llu vs %llu, statements %llu vs "
          "%llu",
          mode == 1 ? "opec" : "vanilla", static_cast<unsigned long long>(a.cycles),
          static_cast<unsigned long long>(b.cycles),
          static_cast<unsigned long long>(a.statements),
          static_cast<unsigned long long>(b.statements)));
    }
  }
  // Cross-mode: the isolation monitor must not change the server's behaviour.
  if (obs[0].return_value != obs[2].return_value) {
    result.divergences.push_back(opec_support::StrPrintf(
        "vanilla echoed %u requests, opec %u", obs[0].return_value, obs[2].return_value));
  }

  h = Fold(h, MicroFuzzEthernetDevices(seed, &result.divergences));
  result.digest = opec_support::StrPrintf(
      "traffic seed=%llu dev=%s %s digest=%016llx%s",
      static_cast<unsigned long long>(seed), use_dma ? "dma" : "pio",
      opec_traffic::TrafficSpecToString(result.spec).c_str(),
      static_cast<unsigned long long>(h), result.divergences.empty() ? "" : " DIVERGED");
  return result;
}

}  // namespace opec_fuzz
