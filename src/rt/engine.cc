#include "src/rt/engine.h"

#include <algorithm>

#include "src/hw/address_map.h"
#include "src/obs/event.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_rt {

using opec_hw::AccessKind;
using opec_hw::AccessResult;
using opec_hw::AccessStatus;
using opec_ir::BinaryOp;
using opec_ir::Expr;
using opec_ir::ExprKind;
using opec_ir::Function;
using opec_ir::Stmt;
using opec_ir::StmtKind;
using opec_ir::StmtPtr;
using opec_ir::Type;
using opec_ir::UnaryOp;

namespace {

uint32_t AlignUp(uint32_t v, uint32_t a) { return (v + a - 1) & ~(a - 1); }

}  // namespace

Engine::Engine(opec_hw::Machine& machine, const opec_ir::Module& module,
               const AddressAssignment& layout, Supervisor* supervisor)
    : machine_(machine), module_(module), layout_(layout), supervisor_(supervisor) {
  // Precompute dense per-function indices once, so the interpreter's per-call
  // and per-access paths are flat array reads instead of map lookups. Pseudo
  // code addresses (for function pointers / icalls) are pure arithmetic on
  // the function ordinal inside the flash code region.
  const auto& fns = module.functions();
  frame_layouts_.resize(fns.size());
  entry_counts_.assign(fns.size(), 0);
  for (size_t i = 0; i < fns.size(); ++i) {
    OPEC_CHECK_MSG(fns[i]->ordinal() == static_cast<int>(i), "non-dense function ordinals");
    FrameLayout& fl = frame_layouts_[i];
    uint32_t offset = 0;
    for (const opec_ir::LocalVariable& lv : fns[i]->locals()) {
      offset = AlignUp(offset, lv.type->alignment());
      fl.offsets.push_back(offset);
      offset += lv.type->size();
    }
    fl.size = AlignUp(offset, 8);
  }
  const auto& gvs = module.globals();
  global_addrs_.resize(gvs.size());
  for (size_t i = 0; i < gvs.size(); ++i) {
    OPEC_CHECK_MSG(gvs[i]->ordinal() == static_cast<int>(i), "non-dense global ordinals");
    global_addrs_[i] = layout.AddrOf(gvs[i].get());
  }
}

uint32_t Engine::FuncAddr(const Function* fn) const {
  int ord = fn->ordinal();
  OPEC_CHECK_MSG(ord >= 0 && static_cast<size_t>(ord) < module_.functions().size() &&
                     module_.functions()[static_cast<size_t>(ord)].get() == fn,
                 "function not in module: " + fn->name());
  return opec_hw::kFlashBase + 0x1000 + static_cast<uint32_t>(ord) * kFuncAddrStride;
}

const Function* Engine::FuncAt(uint32_t addr) const {
  constexpr uint32_t base = opec_hw::kFlashBase + 0x1000;
  if (addr < base || (addr - base) % kFuncAddrStride != 0) {
    return nullptr;
  }
  size_t idx = (addr - base) / kFuncAddrStride;
  return idx < module_.functions().size() ? module_.functions()[idx].get() : nullptr;
}

const Engine::FrameLayout& Engine::LayoutOf(const Function* fn) const {
  int ord = fn->ordinal();
  OPEC_CHECK_MSG(ord >= 0 && static_cast<size_t>(ord) < frame_layouts_.size(),
                 "function not in module: " + fn->name());
  return frame_layouts_[static_cast<size_t>(ord)];
}

uint32_t Engine::GlobalAddrOf(const opec_ir::GlobalVariable* gv) const {
  int ord = gv->ordinal();
  return (ord >= 0 && static_cast<size_t>(ord) < global_addrs_.size())
             ? global_addrs_[static_cast<size_t>(ord)]
             : layout_.AddrOf(gv);
}

void Engine::ResetRunState() {
  sp_ = layout_.stack_top;
  depth_ = 0;
  statements_ = 0;
  current_operation_ = -1;
  current_fn_ = nullptr;
  fault_reports_.clear();
  std::fill(entry_counts_.begin(), entry_counts_.end(), 0);
  for (AttackSpec& a : attacks_) {
    a.fired = false;
    a.blocked = false;
  }
  arg_entry_counts_.clear();
  for (ArgAttackSpec& a : arg_attacks_) {
    a.fired = false;
  }
}

ExecutionEngine::ExecutionEngine(opec_hw::Machine& machine, const opec_ir::Module& module,
                                 const AddressAssignment& layout, Supervisor* supervisor)
    : Engine(machine, module, layout, supervisor) {}

uint32_t ExecutionEngine::GlobalAddr(const Expr& e) const {
  int ord = e.global->ordinal();
  uint32_t addr = (ord >= 0 && static_cast<size_t>(ord) < global_addrs_.size())
                      ? global_addrs_[static_cast<size_t>(ord)]
                      : layout_.AddrOf(e.global);
  if (addr == 0) {
    throw ExecutionAborted{"global has no assigned address: " + e.global->name()};
  }
  return addr;
}

uint32_t Engine::MemRead(uint32_t addr, uint32_t size) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    AccessResult r = machine_.bus().Read(addr, size, machine_.privileged());
    Charge(costs_.memory);
    if (r.ok()) {
      return r.value;
    }
    if (r.status == AccessStatus::kMemFault && supervisor_ != nullptr &&
        supervisor_->OnMemFault(addr, AccessKind::kRead)) {
      OPEC_OBS_EVENT(opec_obs::EventKind::kMemFault, machine_.cycles(), current_operation_,
                     depth_, addr, size, opec_obs::kFaultResolved);
      continue;  // resolved (e.g. peripheral region virtualized in); retry
    }
    if (r.status == AccessStatus::kBusFault && supervisor_ != nullptr) {
      uint32_t value = 0;
      if (supervisor_->OnBusFault(addr, size, AccessKind::kRead, 0, &value)) {
        OPEC_OBS_EVENT(opec_obs::EventKind::kBusFault, machine_.cycles(), current_operation_,
                       depth_, addr, size, opec_obs::kFaultResolved);
        return value;  // emulated core-peripheral load
      }
    }
    OPEC_OBS_EVENT(r.status == AccessStatus::kMemFault ? opec_obs::EventKind::kMemFault
                                                       : opec_obs::EventKind::kBusFault,
                   machine_.cycles(), current_operation_, depth_, addr, size, 0);
    throw ExecutionAborted{
        CaptureFault(addr, size, AccessKind::kRead, r.status, /*attack=*/false).Summary()};
  }
  throw ExecutionAborted{"unresolvable fault loop on read at " + opec_support::HexAddr(addr)};
}

void Engine::MemWrite(uint32_t addr, uint32_t size, uint32_t value) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    AccessResult r = machine_.bus().Write(addr, size, value, machine_.privileged());
    Charge(costs_.memory);
    if (r.ok()) {
      return;
    }
    if (r.status == AccessStatus::kMemFault && supervisor_ != nullptr &&
        supervisor_->OnMemFault(addr, AccessKind::kWrite)) {
      OPEC_OBS_EVENT(opec_obs::EventKind::kMemFault, machine_.cycles(), current_operation_,
                     depth_, addr, size, opec_obs::kFaultWrite | opec_obs::kFaultResolved);
      continue;
    }
    if (r.status == AccessStatus::kBusFault && supervisor_ != nullptr) {
      if (supervisor_->OnBusFault(addr, size, AccessKind::kWrite, value, nullptr)) {
        OPEC_OBS_EVENT(opec_obs::EventKind::kBusFault, machine_.cycles(), current_operation_,
                       depth_, addr, size, opec_obs::kFaultWrite | opec_obs::kFaultResolved);
        return;  // emulated core-peripheral store
      }
    }
    OPEC_OBS_EVENT(r.status == AccessStatus::kMemFault ? opec_obs::EventKind::kMemFault
                                                       : opec_obs::EventKind::kBusFault,
                   machine_.cycles(), current_operation_, depth_, addr, size,
                   opec_obs::kFaultWrite);
    throw ExecutionAborted{
        CaptureFault(addr, size, AccessKind::kWrite, r.status, /*attack=*/false).Summary()};
  }
  throw ExecutionAborted{"unresolvable fault loop on write at " + opec_support::HexAddr(addr)};
}

const opec_obs::FaultReport& Engine::CaptureFault(uint32_t addr, uint32_t size,
                                                           AccessKind kind, AccessStatus status,
                                                           bool attack) {
  opec_obs::FaultReport report;
  report.bus_fault = status == AccessStatus::kBusFault;
  report.write = kind == AccessKind::kWrite;
  report.attack = attack;
  report.addr = addr;
  report.size = size;
  report.privileged = machine_.privileged();
  report.operation_id = current_operation_;
  report.function = current_fn_ != nullptr ? current_fn_->name() : "(no function)";
  report.depth = depth_;
  report.cycle = machine_.cycles();
  report.deny_reason =
      report.bus_fault ? machine_.bus().ExplainFault(addr, size, kind, report.privileged)
                       : machine_.mpu().ExplainAccess(addr, size, kind, report.privileged);
  if (!report.bus_fault) {
    for (int i = 0; i < opec_hw::Mpu::kNumRegions; ++i) {
      report.mpu_regions.push_back(opec_support::StrPrintf(
          "region %d: %s", i, machine_.mpu().region(i).ToString().c_str()));
    }
  }
  if (fault_state_capture_) {
    opec_hw::StateWriter w;
    machine_.SaveState(w);
    auto blob = std::make_shared<const std::vector<uint8_t>>(w.Take());
    report.machine_state_digest = opec_hw::Fnv1a64(blob->data(), blob->size());
    report.machine_state = std::move(blob);
  }
  fault_reports_.push_back(std::move(report));
  return fault_reports_.back();
}

void Engine::SaveState(opec_hw::StateWriter& w) const {
  w.U32(sp_);
  w.U32(static_cast<uint32_t>(depth_));
  w.U32(static_cast<uint32_t>(current_operation_));
  w.U64(statements_);
  w.U64(entry_counts_.size());
  for (int c : entry_counts_) {
    w.U32(static_cast<uint32_t>(c));
  }
  w.U64(arg_entry_counts_.size());
  for (const auto& [op, count] : arg_entry_counts_) {
    w.U32(static_cast<uint32_t>(op));
    w.U32(static_cast<uint32_t>(count));
  }
}

void Engine::LoadState(opec_hw::StateReader& r) {
  sp_ = r.U32();
  depth_ = static_cast<int>(r.U32());
  current_operation_ = static_cast<int>(r.U32());
  statements_ = r.U64();
  uint64_t n = r.U64();
  OPEC_CHECK_MSG(n == entry_counts_.size(),
                 "engine snapshot entry-count table does not match the module");
  for (int& c : entry_counts_) {
    c = static_cast<int>(r.U32());
  }
  arg_entry_counts_.clear();
  uint64_t m = r.U64();
  for (uint64_t i = 0; i < m; ++i) {
    int op = static_cast<int>(r.U32());
    arg_entry_counts_[op] = static_cast<int>(r.U32());
  }
}

uint32_t Engine::Truncate(const Type* type, uint32_t value) const {
  if (type->IsPointer() || type->size() == 4) {
    return value;
  }
  uint32_t bits = type->size() * 8;
  return value & ((1u << bits) - 1);
}

uint32_t ExecutionEngine::EvalAddr(const Expr& e, const Frame& frame) {
  Charge(costs_.op);
  switch (e.kind) {
    case ExprKind::kLocal:
      return frame.base + frame.layout->offsets[static_cast<size_t>(e.local_slot)];
    case ExprKind::kGlobal:
      return GlobalAddr(e);
    case ExprKind::kDeref:
      return EvalOperand(*e.operands[0], frame);
    case ExprKind::kIndex: {
      const Expr& base = *e.operands[0];
      uint32_t base_addr = base.type->IsPointer() ? Eval(base, frame) : EvalAddr(base, frame);
      uint32_t idx = EvalOperand(*e.operands[1], frame);
      return base_addr + idx * e.type->size();
    }
    case ExprKind::kField: {
      uint32_t base_addr = EvalAddr(*e.operands[0], frame);
      const auto& fields = e.operands[0]->type->fields();
      return base_addr + fields[static_cast<size_t>(e.field_index)].offset;
    }
    default:
      throw ExecutionAborted{"EvalAddr on non-lvalue expression"};
  }
}

uint32_t ExecutionEngine::EvalOperand(const Expr& e, const Frame& frame) {
  // Mirrors Eval exactly for the handled shapes: same statement count, same
  // charges in the same order (Charge is a plain accumulator, so the two op
  // charges of the local-load path fold into one call losslessly).
  if (e.kind == ExprKind::kIntConst) {
    if (++statements_ > statement_limit_) {
      throw ExecutionAborted{"statement limit exceeded (possible guest infinite loop)"};
    }
    return static_cast<uint32_t>(e.int_value);
  }
  if ((e.kind == ExprKind::kLocal || e.kind == ExprKind::kGlobal) &&
      (e.type->IsInt() || e.type->IsPointer())) {
    if (++statements_ > statement_limit_) {
      throw ExecutionAborted{"statement limit exceeded (possible guest infinite loop)"};
    }
    Charge(costs_.op * 2);  // Eval's operation charge + EvalAddr's charge
    uint32_t addr = e.kind == ExprKind::kLocal
                        ? frame.base + frame.layout->offsets[static_cast<size_t>(e.local_slot)]
                        : GlobalAddr(e);
    return MemRead(addr, e.type->size());
  }
  return Eval(e, frame);
}

uint32_t ExecutionEngine::EvalBinary(const Expr& e, const Frame& frame) {
  // Short-circuit logical operators.
  if (e.binary_op == BinaryOp::kLogAnd) {
    return (EvalOperand(*e.operands[0], frame) != 0 && EvalOperand(*e.operands[1], frame) != 0)
               ? 1
               : 0;
  }
  if (e.binary_op == BinaryOp::kLogOr) {
    return (EvalOperand(*e.operands[0], frame) != 0 || EvalOperand(*e.operands[1], frame) != 0)
               ? 1
               : 0;
  }
  uint32_t a = EvalOperand(*e.operands[0], frame);
  uint32_t b = EvalOperand(*e.operands[1], frame);
  const Type* t = e.operands[0]->type;
  bool sign = t->IsInt() && t->is_signed();
  // Sign-extend sub-word signed operands to 32 bits for the operation.
  auto sext = [&](uint32_t v) -> int32_t {
    uint32_t bits = t->size() * 8;
    if (bits == 32) {
      return static_cast<int32_t>(v);
    }
    uint32_t m = 1u << (bits - 1);
    return static_cast<int32_t>((v ^ m) - m);
  };
  int32_t sa = sign ? sext(a) : 0;
  int32_t sb = sign ? sext(b) : 0;
  uint32_t r = 0;
  switch (e.binary_op) {
    case BinaryOp::kAdd:
      r = a + b;
      break;
    case BinaryOp::kSub:
      r = a - b;
      break;
    case BinaryOp::kMul:
      r = a * b;
      break;
    case BinaryOp::kDiv:
      if (b == 0) {
        throw ExecutionAborted{"division by zero"};
      }
      r = sign ? static_cast<uint32_t>(sa / sb) : a / b;
      break;
    case BinaryOp::kRem:
      if (b == 0) {
        throw ExecutionAborted{"remainder by zero"};
      }
      r = sign ? static_cast<uint32_t>(sa % sb) : a % b;
      break;
    case BinaryOp::kAnd:
      r = a & b;
      break;
    case BinaryOp::kOr:
      r = a | b;
      break;
    case BinaryOp::kXor:
      r = a ^ b;
      break;
    case BinaryOp::kShl:
      r = a << (b & 31);
      break;
    case BinaryOp::kShr:
      r = sign ? static_cast<uint32_t>(sa >> (b & 31)) : a >> (b & 31);
      break;
    case BinaryOp::kEq:
      r = a == b;
      break;
    case BinaryOp::kNe:
      r = a != b;
      break;
    case BinaryOp::kLt:
      r = sign ? (sa < sb) : (a < b);
      break;
    case BinaryOp::kLe:
      r = sign ? (sa <= sb) : (a <= b);
      break;
    case BinaryOp::kGt:
      r = sign ? (sa > sb) : (a > b);
      break;
    case BinaryOp::kGe:
      r = sign ? (sa >= sb) : (a >= b);
      break;
    case BinaryOp::kLogAnd:
    case BinaryOp::kLogOr:
      OPEC_UNREACHABLE("handled above");
  }
  return Truncate(e.type, r);
}

uint32_t ExecutionEngine::Eval(const Expr& e, const Frame& frame) {
  if (++statements_ > statement_limit_) {
    throw ExecutionAborted{"statement limit exceeded (possible guest infinite loop)"};
  }
  // Immediates, casts and address-of fold into the consuming instruction on
  // Thumb-2 (literal operands / addressing modes); only real operations and
  // memory traffic cost cycles.
  if (e.kind != ExprKind::kIntConst && e.kind != ExprKind::kCast &&
      e.kind != ExprKind::kAddrOf) {
    Charge(costs_.op);
  }
  switch (e.kind) {
    case ExprKind::kIntConst:
      return static_cast<uint32_t>(e.int_value);
    case ExprKind::kFuncAddr:
      return FuncAddr(e.func);
    case ExprKind::kLocal:
    case ExprKind::kGlobal:
    case ExprKind::kDeref:
    case ExprKind::kIndex:
    case ExprKind::kField: {
      if (!e.type->IsInt() && !e.type->IsPointer()) {
        throw ExecutionAborted{"rvalue load of aggregate type " + e.type->ToString()};
      }
      // Flattened fast paths for the two dominant load shapes: the address is
      // one array read, with the same cycle charge EvalAddr would make.
      uint32_t addr;
      if (e.kind == ExprKind::kLocal) {
        Charge(costs_.op);
        addr = frame.base + frame.layout->offsets[static_cast<size_t>(e.local_slot)];
      } else if (e.kind == ExprKind::kGlobal) {
        Charge(costs_.op);
        addr = GlobalAddr(e);
      } else {
        addr = EvalAddr(e, frame);
      }
      return MemRead(addr, e.type->size());
    }
    case ExprKind::kAddrOf:
      return EvalAddr(*e.operands[0], frame);
    case ExprKind::kUnary: {
      uint32_t v = EvalOperand(*e.operands[0], frame);
      switch (e.unary_op) {
        case UnaryOp::kNeg:
          return Truncate(e.type, 0u - v);
        case UnaryOp::kBitNot:
          return Truncate(e.type, ~v);
        case UnaryOp::kLogNot:
          return v == 0 ? 1 : 0;
      }
      OPEC_UNREACHABLE("bad UnaryOp");
    }
    case ExprKind::kBinary:
      return EvalBinary(e, frame);
    case ExprKind::kCast: {
      uint32_t v = EvalOperand(*e.operands[0], frame);
      const Type* from = e.operands[0]->type;
      // Sign-extend when widening a signed source.
      if (from->IsInt() && from->is_signed() && from->size() < e.type->size()) {
        uint32_t bits = from->size() * 8;
        uint32_t m = 1u << (bits - 1);
        v = static_cast<uint32_t>(static_cast<int32_t>((v ^ m) - m));
      }
      return Truncate(e.type, v);
    }
    case ExprKind::kCall: {
      std::vector<uint32_t> args;
      args.reserve(e.operands.size());
      for (const opec_ir::ExprPtr& a : e.operands) {
        args.push_back(EvalOperand(*a, frame));
      }
      return CallFunction(e.func, std::move(args), e.operation_entry_id);
    }
    case ExprKind::kICall: {
      uint32_t target = Eval(*e.operands[0], frame);
      const Function* fn = FuncAt(target);
      if (fn == nullptr) {
        throw ExecutionAborted{"indirect call to non-function address " +
                               opec_support::HexAddr(target)};
      }
      if (fn->type()->params().size() != e.signature->params().size()) {
        throw ExecutionAborted{"indirect call signature mismatch calling " + fn->name()};
      }
      std::vector<uint32_t> args;
      for (size_t i = 1; i < e.operands.size(); ++i) {
        args.push_back(EvalOperand(*e.operands[i], frame));
      }
      return CallFunction(fn, std::move(args), e.operation_entry_id);
    }
  }
  OPEC_UNREACHABLE("bad ExprKind");
}

void Engine::MaybeFireAttacks(const Function* fn) {
  if (attacks_.empty()) {
    return;
  }
  int count = ++entry_counts_[static_cast<size_t>(fn->ordinal())];
  for (AttackSpec& a : attacks_) {
    if (a.fired || a.function != fn->name() || a.occurrence != count) {
      continue;
    }
    a.fired = true;
    // The exploited code performs an arbitrary write at its own (unprivileged)
    // level. The MPU decides whether it lands. In xor_with_old mode the value
    // is a bit-flip mask over the current contents (read via the debug port so
    // the probe itself cannot fault; only the write is subject to the MPU).
    uint32_t write_value = a.value;
    if (a.xor_with_old) {
      uint32_t old = 0;
      machine_.bus().DebugRead(a.addr, a.size, &old);  // unreadable -> flips over 0
      write_value = old ^ a.value;
    }
    AccessResult r = machine_.bus().Write(a.addr, a.size, write_value, machine_.privileged());
    if (!r.ok()) {
      // If a supervisor is installed, give it the chance to (wrongly) resolve
      // it — a correctly configured monitor only virtualizes allowlisted
      // peripherals, so illegal writes stay blocked.
      bool resolved = false;
      if (r.status == AccessStatus::kMemFault && supervisor_ != nullptr &&
          supervisor_->OnMemFault(a.addr, AccessKind::kWrite)) {
        resolved = machine_.bus().Write(a.addr, a.size, write_value, machine_.privileged()).ok();
      }
      a.blocked = !resolved;
      if (a.blocked) {
        OPEC_OBS_EVENT(r.status == AccessStatus::kMemFault ? opec_obs::EventKind::kMemFault
                                                           : opec_obs::EventKind::kBusFault,
                       machine_.cycles(), current_operation_, depth_, a.addr, a.size,
                       opec_obs::kFaultWrite | opec_obs::kFaultAttack);
        // The denied exploit write does not abort the run (the guest carries
        // on), but it leaves a forensic report behind.
        CaptureFault(a.addr, a.size, AccessKind::kWrite, r.status, /*attack=*/true);
      }
    }
  }
}

uint32_t ExecutionEngine::CallFunction(const Function* fn, std::vector<uint32_t> args,
                                       int operation_entry_id) {
  Charge(costs_.call + costs_.op * args.size());
  bool is_operation_entry = operation_entry_id >= 0 && supervisor_ != nullptr;
  int saved_operation = current_operation_;

  if (is_operation_entry) {
    // Injected malformed-argument attacks corrupt the entry call's argument
    // list before the SVC is raised, so the monitor sees the forged value —
    // its relocation/validation of entry arguments is what is under test.
    if (!arg_attacks_.empty()) {
      int count = ++arg_entry_counts_[operation_entry_id];
      for (ArgAttackSpec& a : arg_attacks_) {
        if (a.fired || a.op_id != operation_entry_id || a.occurrence != count ||
            a.arg_index >= args.size()) {
          continue;
        }
        a.fired = true;
        args[a.arg_index] = a.value;
      }
    }
    Charge(costs_.svc);  // SVC before the call site
    OPEC_OBS_EVENT(opec_obs::EventKind::kSvc, machine_.cycles(), saved_operation, depth_,
                   static_cast<uint32_t>(operation_entry_id), 0);
    if (!supervisor_->OnOperationEnter(operation_entry_id, args)) {
      throw ExecutionAborted{opec_support::StrPrintf(
          "monitor rejected entry into operation %d (%s)", operation_entry_id,
          fn->name().c_str())};
    }
    current_operation_ = operation_entry_id;
    OPEC_OBS_EVENT(opec_obs::EventKind::kOperationEnter, machine_.cycles(), current_operation_,
                   depth_, static_cast<uint32_t>(operation_entry_id),
                   static_cast<uint32_t>(saved_operation));
  } else if (supervisor_ != nullptr) {
    if (!supervisor_->OnFunctionCall(fn)) {
      throw ExecutionAborted{"supervisor rejected call to " + fn->name()};
    }
  }

  uint32_t ret = 0;
  try {
    ret = DoCall(fn, args);
  } catch (...) {
    current_operation_ = saved_operation;
    throw;
  }

  if (is_operation_entry) {
    Charge(costs_.svc);  // SVC after the call site
    OPEC_OBS_EVENT(opec_obs::EventKind::kSvc, machine_.cycles(), operation_entry_id, depth_,
                   static_cast<uint32_t>(operation_entry_id), 1);
    current_operation_ = saved_operation;
    if (!supervisor_->OnOperationExit(operation_entry_id)) {
      throw ExecutionAborted{opec_support::StrPrintf(
          "monitor aborted at exit of operation %d (%s) — data sanitization failed",
          operation_entry_id, fn->name().c_str())};
    }
    OPEC_OBS_EVENT(opec_obs::EventKind::kOperationExit, machine_.cycles(), current_operation_,
                   depth_, static_cast<uint32_t>(operation_entry_id),
                   static_cast<uint32_t>(saved_operation));
  } else if (supervisor_ != nullptr) {
    if (!supervisor_->OnFunctionReturn(fn)) {
      throw ExecutionAborted{"supervisor rejected return from " + fn->name()};
    }
  }
  return ret;
}

uint32_t ExecutionEngine::DoCall(const Function* fn, const std::vector<uint32_t>& args) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    throw ExecutionAborted{"call depth limit exceeded in " + fn->name()};
  }
  OPEC_CHECK_MSG(static_cast<int>(args.size()) == fn->param_count(),
                 "arity mismatch calling " + fn->name());

  const FrameLayout& fl = LayoutOf(fn);
  uint32_t saved_sp = sp_;
  uint32_t base = (sp_ - fl.size) & ~7u;
  if (base < layout_.stack_base) {
    --depth_;
    throw ExecutionAborted{"guest stack overflow in " + fn->name()};
  }
  sp_ = base;
  Frame frame{fn, &fl, base};

  const Function* saved_fn = current_fn_;
  current_fn_ = fn;
  OPEC_OBS_EVENT(opec_obs::EventKind::kFunctionEnter, machine_.cycles(), current_operation_,
                 depth_, static_cast<uint32_t>(fn->ordinal()));
  MaybeFireAttacks(fn);

  uint32_t ret_value = 0;
  try {
    // Spill parameters into their stack slots (through the checked bus: a
    // disabled stack sub-region faults here, which is the stack protection).
    for (size_t i = 0; i < args.size(); ++i) {
      const Type* pt = fn->locals()[i].type;
      MemWrite(base + fl.offsets[i], pt->size(), Truncate(pt, args[i]));
    }
    ExecBlock(fn->body(), frame, &ret_value);
  } catch (...) {
    OPEC_OBS_EVENT(opec_obs::EventKind::kFunctionExit, machine_.cycles(), current_operation_,
                   depth_, static_cast<uint32_t>(fn->ordinal()));
    current_fn_ = saved_fn;
    --depth_;
    sp_ = saved_sp;
    throw;
  }
  Charge(costs_.ret);
  OPEC_OBS_EVENT(opec_obs::EventKind::kFunctionExit, machine_.cycles(), current_operation_,
                 depth_, static_cast<uint32_t>(fn->ordinal()));
  current_fn_ = saved_fn;
  --depth_;
  sp_ = saved_sp;
  return ret_value;
}

ExecutionEngine::Flow ExecutionEngine::ExecBlock(const std::vector<StmtPtr>& body,
                                                 const Frame& frame, uint32_t* ret_value) {
  for (const StmtPtr& s : body) {
    Flow flow = ExecStmt(*s, frame, ret_value);
    if (flow != Flow::kNext) {
      return flow;
    }
  }
  return Flow::kNext;
}

ExecutionEngine::Flow ExecutionEngine::ExecStmt(const Stmt& s, const Frame& frame,
                                                uint32_t* ret_value) {
  if (++statements_ > statement_limit_) {
    throw ExecutionAborted{"statement limit exceeded (possible guest infinite loop)"};
  }
  // Poll external cancellation every 8192 statements: cheap enough to be
  // invisible on the hot path, frequent enough that a campaign watchdog can
  // bound a runaway job's wall clock to milliseconds past its deadline.
  if ((statements_ & 0x1FFF) == 0 && cancel_ != nullptr &&
      cancel_->load(std::memory_order_relaxed)) [[unlikely]] {
    throw ExecutionAborted{"canceled: wall-clock deadline exceeded"};
  }
  switch (s.kind) {
    case StmtKind::kAssign: {
      uint32_t value = EvalOperand(*s.expr, frame);
      const Expr& lhs = *s.lhs;
      // Same flattened store fast paths as the load side of Eval.
      uint32_t addr;
      if (lhs.kind == ExprKind::kLocal) {
        Charge(costs_.op);
        addr = frame.base + frame.layout->offsets[static_cast<size_t>(lhs.local_slot)];
      } else if (lhs.kind == ExprKind::kGlobal) {
        Charge(costs_.op);
        addr = GlobalAddr(lhs);
      } else {
        addr = EvalAddr(lhs, frame);
      }
      MemWrite(addr, lhs.type->size(), Truncate(lhs.type, value));
      return Flow::kNext;
    }
    case StmtKind::kExpr:
      Eval(*s.expr, frame);
      return Flow::kNext;
    case StmtKind::kIf: {
      Charge(costs_.branch);
      if (EvalOperand(*s.expr, frame) != 0) {
        return ExecBlock(s.body, frame, ret_value);
      }
      return ExecBlock(s.orelse, frame, ret_value);
    }
    case StmtKind::kWhile: {
      while (true) {
        Charge(costs_.branch);
        if (EvalOperand(*s.expr, frame) == 0) {
          return Flow::kNext;
        }
        Flow flow = ExecBlock(s.body, frame, ret_value);
        if (flow == Flow::kBreak) {
          return Flow::kNext;
        }
        if (flow == Flow::kReturn) {
          return Flow::kReturn;
        }
        // kContinue and kNext both loop.
      }
    }
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
    case StmtKind::kReturn:
      if (s.expr != nullptr) {
        *ret_value = Eval(*s.expr, frame);
      }
      return Flow::kReturn;
  }
  OPEC_UNREACHABLE("bad StmtKind");
}

RunResult ExecutionEngine::Run(const std::string& entry, const std::vector<uint32_t>& args) {
  RunResult result;
  const Function* fn = module_.FindFunction(entry);
  if (fn == nullptr) {
    result.violation = "no such entry function: " + entry;
    return result;
  }
  ResetRunState();

  uint64_t start_cycles = machine_.cycles();
  if (supervisor_ != nullptr) {
    supervisor_->OnProgramStart(this);
  }
  try {
    result.return_value = DoCall(fn, args);
    result.ok = true;
    if (supervisor_ != nullptr) {
      supervisor_->OnProgramEnd();
    }
  } catch (const ExecutionAborted& aborted) {
    result.ok = false;
    result.violation = aborted.reason;
  }
  result.cycles = machine_.cycles() - start_cycles;
  result.statements = statements_;
  return result;
}

}  // namespace opec_rt
