// Supervisor: the execution engine's hook interface for privileged runtime
// monitors. opec_monitor::Monitor implements it for OPEC; opec_aces implements
// a compartment-switching variant for the baseline. A null supervisor runs the
// vanilla (fully privileged, no isolation) configuration.

#ifndef SRC_RT_SUPERVISOR_H_
#define SRC_RT_SUPERVISOR_H_

#include <cstdint>
#include <vector>

#include "src/hw/fault.h"
#include "src/ir/module.h"

namespace opec_rt {

class EngineControl;

class Supervisor {
 public:
  virtual ~Supervisor() = default;

  // Called once before `main` runs; gives the supervisor its engine handle
  // (stack pointer control) and lets it initialize (shadow sections, MPU,
  // privilege drop).
  virtual void OnProgramStart(EngineControl* engine) = 0;

  // Called when the program finishes normally.
  virtual void OnProgramEnd() {}

  // Operation-entry call site, before the callee frame is created (the SVC
  // inserted before the call). `args` are the evaluated argument raw values;
  // the supervisor may rewrite pointer arguments (stack relocation). Returns
  // false to abort the program (recorded as a security violation).
  virtual bool OnOperationEnter(int op_id, std::vector<uint32_t>& args) = 0;

  // Operation-entry call site, after the callee returned (the SVC after the
  // call). Returns false to abort (e.g. failed data sanitization).
  virtual bool OnOperationExit(int op_id) = 0;

  // Plain (non-entry) direct call/return, used by the ACES baseline to switch
  // compartments at cross-compartment edges. Default: no action.
  virtual bool OnFunctionCall(const opec_ir::Function* callee) {
    (void)callee;
    return true;
  }
  virtual bool OnFunctionReturn(const opec_ir::Function* callee) {
    (void)callee;
    return true;
  }

  // Memory-management fault (MPU denial). Returning true means the fault was
  // resolved (e.g. a peripheral MPU region was virtualized in) and the access
  // should be retried.
  virtual bool OnMemFault(uint32_t addr, opec_hw::AccessKind kind) {
    (void)addr;
    (void)kind;
    return false;
  }

  // Bus fault. For unprivileged core-peripheral accesses the OPEC monitor
  // emulates the load/store: on success it performs the access itself and,
  // for reads, stores the value into *read_value. Returning true means the
  // access is complete (do not retry).
  virtual bool OnBusFault(uint32_t addr, uint32_t size, opec_hw::AccessKind kind,
                          uint32_t write_value, uint32_t* read_value) {
    (void)addr;
    (void)size;
    (void)kind;
    (void)write_value;
    (void)read_value;
    return false;
  }
};

}  // namespace opec_rt

#endif  // SRC_RT_SUPERVISOR_H_
