// Engine: runs guest IR on the machine model.
//
// Two execution tiers implement the same contract:
//   * ExecutionEngine — the tree-walking interpreter over the IR AST. This is
//     the reference semantics: every modeled cycle, statement count and obs
//     event is defined by what this engine does.
//   * bytecode::VM (src/rt/bytecode) — a register-based bytecode tier lowered
//     from the same IR, required to be bit-identical to the interpreter in
//     modeled cycles, statements, obs events, fault reports and results. The
//     interpreter stays as the differential oracle for it.
//
// Fidelity properties that matter for OPEC (both tiers):
//   * Local variables live in frames on the emulated stack in guest SRAM; the
//     frame layout is deterministic, so the monitor's stack sub-region
//     protection and argument relocation act on real addresses.
//   * Every load and store — locals, globals, MMIO — goes through the bus and
//     therefore through the MPU at the machine's current privilege level.
//   * MemManage/BusFaults are delivered to the installed Supervisor, which
//     may resolve them (MPU virtualization, core-peripheral emulation); an
//     unresolved fault aborts the run with a diagnosis.
//   * Operation-entry call sites marked by OPEC-Compiler instrumentation
//     raise the SVC-based operation switch around the call.
//   * A calibrated cycle-cost model charges each construct, and devices add
//     transfer latencies, which is what the DWT cycle counter reads.

#ifndef SRC_RT_ENGINE_H_
#define SRC_RT_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/ir/module.h"
#include "src/obs/forensics.h"
#include "src/rt/address_assignment.h"
#include "src/rt/supervisor.h"

namespace opec_rt {

// Stack-pointer and machine control handed to the Supervisor.
class EngineControl {
 public:
  virtual ~EngineControl() = default;
  virtual uint32_t sp() const = 0;
  virtual void set_sp(uint32_t sp) = 0;
  virtual opec_hw::Machine& machine() = 0;
  virtual const AddressAssignment& layout() const = 0;
};

// An injected exploit: when `fn` is entered for the `occurrence`-th time
// (1-based), perform an arbitrary unprivileged write — the paper's threat
// model primitive (Section 3.3). If the MPU/privilege rules block the write,
// `blocked` is set and the write is discarded.
struct AttackSpec {
  std::string function;
  int occurrence = 1;
  uint32_t addr = 0;
  uint32_t value = 0;
  uint32_t size = 4;
  // When set, the write is `old ^ value` instead of `value`: `value` acts as
  // a bit-flip mask over the current memory contents (campaign fault mode).
  bool xor_with_old = false;
  // Outputs:
  bool fired = false;
  bool blocked = false;
};

// An injected malformed operation-switch argument: on the `occurrence`-th
// entry (1-based) into operation `op_id`, argument `arg_index` of the entry
// call is replaced with `value` *before* the SVC is raised — modeling an
// attacker (or corrupted caller state) handing the monitor a forged pointer
// or out-of-range scalar. The monitor's argument relocation / validation is
// what stands between this and a cross-operation write.
struct ArgAttackSpec {
  int op_id = -1;
  int occurrence = 1;
  size_t arg_index = 0;
  uint32_t value = 0;
  // Output:
  bool fired = false;
};

struct RunResult {
  bool ok = false;
  std::string violation;        // diagnosis when !ok
  uint32_t return_value = 0;    // entry function's return value
  uint64_t cycles = 0;          // machine cycles consumed by the run
  uint64_t statements = 0;      // interpreter statements executed
};

// Per-construct cycle costs (calibrated to Thumb-2 orders of magnitude).
struct CostModel {
  uint64_t op = 1;            // ALU op / operand fetch
  uint64_t memory = 2;        // load/store
  uint64_t branch = 2;        // taken branch
  uint64_t call = 6;          // call + prologue
  uint64_t ret = 4;           // epilogue + return
  uint64_t svc = 40;          // exception entry + exit for one SVC

  // The bytecode tier bakes costs into instructions at lowering time and
  // re-lowers when the model changes; equality is how it detects that.
  bool operator==(const CostModel&) const = default;
};

// Internal unwinding for guest failures (faults, supervisor aborts, limits).
// Shared between the execution tiers so the common memory/call helpers can
// throw it from either.
struct ExecutionAborted {
  std::string reason;
};

// The common engine contract and all state shared between execution tiers.
// Everything observable across a run — attack bookkeeping, entry counters,
// cost model, fault reports, the serialized snapshot payload — lives here so
// the tiers cannot drift apart on it.
class Engine : public EngineControl {
 public:
  Engine(opec_hw::Machine& machine, const opec_ir::Module& module,
         const AddressAssignment& layout, Supervisor* supervisor);
  ~Engine() override = default;

  // Optional instrumentation. Function-level tracing is event-based: attach
  // an ExecutionTrace (or any obs sink) to the opec_obs::Hub around Run().
  void AddAttack(const AttackSpec& attack) { attacks_.push_back(attack); }
  const std::vector<AttackSpec>& attacks() const { return attacks_; }
  void AddArgAttack(const ArgAttackSpec& attack) { arg_attacks_.push_back(attack); }
  const std::vector<ArgAttackSpec>& arg_attacks() const { return arg_attacks_; }
  void set_statement_limit(uint64_t limit) { statement_limit_ = limit; }
  void set_cost_model(const CostModel& costs) { costs_ = costs; }
  // External cancellation (e.g. a campaign watchdog): when the pointed-to
  // flag becomes true, the run aborts within a bounded number of statements.
  // The flag is polled, never written; it may be set from another thread.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }
  // Replaces the supervisor (not owned). Lets a decorator interpose on the
  // SVC hooks — the snapshot round-trip probe wraps the monitor this way.
  void set_supervisor(Supervisor* supervisor) { supervisor_ = supervisor; }
  Supervisor* supervisor() const { return supervisor_; }
  // When enabled, every FaultReport captured during Run() carries the full
  // serialized machine state at the instant of the fault (see
  // opec_obs::FaultReport::machine_state). Off by default: the blob is
  // machine-memory-sized.
  void set_fault_state_capture(bool on) { fault_state_capture_ = on; }

  // Runs `entry` (default "main") to completion. Never throws; failures are
  // reported in the result.
  virtual RunResult Run(const std::string& entry = "main",
                        const std::vector<uint32_t>& args = {}) = 0;

  // --- EngineControl ---
  uint32_t sp() const override { return sp_; }
  void set_sp(uint32_t sp) override { sp_ = sp; }
  opec_hw::Machine& machine() override { return machine_; }
  const AddressAssignment& layout() const override { return layout_; }

  // Pseudo code addresses for functions (for function pointers / icalls).
  uint32_t FuncAddr(const opec_ir::Function* fn) const;
  const opec_ir::Function* FuncAt(uint32_t addr) const;

  // The operation id the engine is currently executing in (-1 = default /
  // vanilla). Maintained around operation-entry calls; used by the tracer.
  int current_operation() const { return current_operation_; }

  // Fault forensics captured during the last Run(): one report per denied
  // access — blocked attack writes (the run continues) and the unresolved
  // fault that aborted the run (always last, when the run failed).
  const std::vector<opec_obs::FaultReport>& fault_reports() const { return fault_reports_; }

  // Snapshot support (DESIGN.md §13): the engine's machine-visible register
  // state — stack pointer, call depth, active operation, statement count and
  // the per-function/per-operation entry counters. The host-recursive
  // interpreter call stack is NOT serializable, so Save/LoadState are only
  // meaningful at quiescent points: before Run(), after Run() returns, or
  // in-place at an SVC boundary where the state is restored into the same
  // engine whose host recursion is still live (the snapshot probe's
  // capture→restore→resume oracle). Non-virtual on purpose: both tiers
  // serialize the identical shared fields, so snapshot payloads (and their
  // digests) cannot differ between tiers.
  void SaveState(opec_hw::StateWriter& w) const;
  void LoadState(opec_hw::StateReader& r);

  struct FrameLayout {
    std::vector<uint32_t> offsets;  // per local slot, from frame base
    uint32_t size = 0;              // total frame bytes (8-aligned)
  };

  // Lowering-time introspection (src/rt/bytecode): the deterministic frame
  // layouts, module and global placement both tiers agree on. The bytecode
  // lowerer bakes these into instructions; the interpreter reads them live.
  const opec_ir::Module& module() const { return module_; }
  const std::vector<FrameLayout>& frame_layouts() const { return frame_layouts_; }
  const CostModel& cost_model() const { return costs_; }
  // Guest address of a global, 0 when unassigned (the engines abort only when
  // an unassigned global's address is actually needed at execution time).
  uint32_t GlobalAddrOf(const opec_ir::GlobalVariable* gv) const;

 protected:
  const FrameLayout& LayoutOf(const opec_ir::Function* fn) const;

  uint32_t MemRead(uint32_t addr, uint32_t size);
  void MemWrite(uint32_t addr, uint32_t size, uint32_t value);

  uint32_t Truncate(const opec_ir::Type* type, uint32_t value) const;

  void MaybeFireAttacks(const opec_ir::Function* fn);
  void Charge(uint64_t cycles) { machine_.AddCycles(cycles); }

  // Resets all per-run state so a second Run() on the same engine starts
  // clean: attack occurrence counts and the fired/blocked outputs of a
  // previous run must not leak into this one.
  void ResetRunState();

  // Captures a forensic report for a denied access (MPU/bus decision, active
  // operation and function, MPU region dump) and appends it to
  // fault_reports_; returns the stored report.
  const opec_obs::FaultReport& CaptureFault(uint32_t addr, uint32_t size,
                                            opec_hw::AccessKind kind,
                                            opec_hw::AccessStatus status, bool attack);

  opec_hw::Machine& machine_;
  const opec_ir::Module& module_;
  const AddressAssignment& layout_;
  Supervisor* supervisor_;

  // Dense per-function state, indexed by Function::ordinal(). Precomputed at
  // construction; the hot paths never touch a map. Function code addresses
  // are arithmetic on the ordinal (kFuncAddrBase + ordinal * kFuncAddrStride),
  // so FuncAddr/FuncAt are O(1) both ways.
  std::vector<FrameLayout> frame_layouts_;
  std::vector<int> entry_counts_;
  // Guest address per global ordinal (0 = unassigned), mirroring layout_.
  std::vector<uint32_t> global_addrs_;
  std::vector<AttackSpec> attacks_;
  std::vector<ArgAttackSpec> arg_attacks_;
  // Entries observed per operation id during the current run; drives
  // ArgAttackSpec occurrence matching. Sparse (few ops per app), reset by
  // Run().
  std::map<int, int> arg_entry_counts_;

  uint32_t sp_ = 0;
  int depth_ = 0;
  int current_operation_ = -1;
  const opec_ir::Function* current_fn_ = nullptr;  // innermost active function
  uint64_t statements_ = 0;
  uint64_t statement_limit_ = 200'000'000;
  const std::atomic<bool>* cancel_ = nullptr;
  CostModel costs_;
  bool fault_state_capture_ = false;
  std::vector<opec_obs::FaultReport> fault_reports_;

  static constexpr int kMaxDepth = 256;
  static constexpr uint32_t kFuncAddrStride = 0x40;
};

// The tree-walking interpreter tier — the reference semantics.
class ExecutionEngine : public Engine {
 public:
  ExecutionEngine(opec_hw::Machine& machine, const opec_ir::Module& module,
                  const AddressAssignment& layout, Supervisor* supervisor = nullptr);

  RunResult Run(const std::string& entry = "main",
                const std::vector<uint32_t>& args = {}) override;

 private:
  struct Frame {
    const opec_ir::Function* fn = nullptr;
    const FrameLayout* layout = nullptr;  // precomputed; avoids per-access lookup
    uint32_t base = 0;                    // lowest address of the frame
  };

  // Control-flow signal from statement execution.
  enum class Flow { kNext, kBreak, kContinue, kReturn };

  uint32_t GlobalAddr(const opec_ir::Expr& e) const;

  uint32_t Eval(const opec_ir::Expr& e, const Frame& frame);
  // Flattened Eval for operand position: handles the two dominant operand
  // shapes (integer constant, scalar local) without re-entering the full
  // dispatch switch, with accounting identical to Eval's.
  uint32_t EvalOperand(const opec_ir::Expr& e, const Frame& frame);
  uint32_t EvalAddr(const opec_ir::Expr& e, const Frame& frame);
  uint32_t EvalBinary(const opec_ir::Expr& e, const Frame& frame);

  uint32_t CallFunction(const opec_ir::Function* fn, std::vector<uint32_t> args,
                        int operation_entry_id);
  uint32_t DoCall(const opec_ir::Function* fn, const std::vector<uint32_t>& args);

  Flow ExecBlock(const std::vector<opec_ir::StmtPtr>& body, const Frame& frame,
                 uint32_t* ret_value);
  Flow ExecStmt(const opec_ir::Stmt& s, const Frame& frame, uint32_t* ret_value);
};

}  // namespace opec_rt

#endif  // SRC_RT_ENGINE_H_
