// The bytecode execution tier: a register VM over the code produced by
// Lowerer, implementing the same Engine contract as the tree-walking
// interpreter with bit-identical modeled cycles, statement counts, obs events
// and fault reports (the interpreter remains the differential oracle).
//
// Dispatch is direct-threaded (computed goto) on GCC/Clang with a portable
// switch fallback. Each memory instruction owns an MPU verdict cache slot:
// after a successful access to plain memory whose verdict is an allow, the
// maximal uniform-verdict interval around the address (Mpu::AllowedRange,
// clipped to the backing store) is cached together with the privilege level
// and backing kind against Mpu::generation(); later executions of the same
// instruction landing anywhere inside the interval skip the shared bus/MPU
// path and touch the backing store directly (plus the identical memory-cycle
// charge). Intervals span whole (sub-)regions, so streaming accesses that
// walk an array stay cached instead of missing at every 32-byte window. Any
// MPU reconfiguration bumps the generation, invalidating every cached verdict
// at once.

#ifndef SRC_RT_BYTECODE_VM_H_
#define SRC_RT_BYTECODE_VM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rt/bytecode/bytecode.h"
#include "src/rt/engine.h"

namespace opec_rt {
namespace bytecode {

class VM : public Engine {
 public:
  VM(opec_hw::Machine& machine, const opec_ir::Module& module,
     const AddressAssignment& layout, Supervisor* supervisor = nullptr);

  RunResult Run(const std::string& entry = "main",
                const std::vector<uint32_t>& args = {}) override;

  // The lowered module (lowering happens lazily at first Run and again
  // whenever the cost model changed). For tests and disassembly.
  const BytecodeModule& Bytecode();

  // Adopts a pre-lowered module — the distributed artifact cache (DESIGN.md
  // §16) ships these between workers so a warm worker never re-lowers.
  // Refused (returns false) unless `costs` equals this engine's current cost
  // model and the function table matches this module; lowering is
  // deterministic, so an accepted adoption executes bit-identically to
  // EnsureLowered()'s own output.
  bool AdoptBytecode(BytecodeModule bc, const CostModel& costs);

 private:
  // One active call frame. Registers live in one preallocated file; each
  // frame's window starts where its caller's ends, so pointers stay stable
  // for the whole run.
  struct VFrame {
    const opec_ir::Function* fn = nullptr;
    const opec_ir::Function* saved_fn = nullptr;
    uint32_t return_pc = 0;
    uint32_t reg_base = 0;
    uint32_t frame_base = 0;
    uint32_t saved_sp = 0;
    uint16_t ret_dst = 0;       // caller register receiving the return value
    bool is_op = false;         // operation-entry call (SVC protocol applies)
    bool via_call = false;      // false only for the entry frame
    int op_id = -1;             // operation entry id when is_op
    int caller_operation = -1;  // restored on exit and on unwind
  };

  // Per-instruction MPU verdict cache entry: an allow interval [lo, hi]
  // (inclusive, already clipped to the backing store) valid under one MPU
  // generation and privilege level. gen 0 never matches (Mpu::generation()
  // starts at 1).
  struct VCache {
    uint64_t gen = 0;
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint8_t priv = 0;
    uint8_t backing = 0;  // 0 = SRAM, 1 = flash (loads only)
  };

  void EnsureLowered();
  uint32_t Execute(const opec_ir::Function* entry_fn, const std::vector<uint32_t>& args);

  // Call protocol split (mirrors CallFunction/DoCall): EnterCall performs the
  // pre-side (arg gathering and attacks, SVC charge/events, supervisor entry
  // hooks) and pushes the callee frame; the kRet handler performs the exit
  // side. PushFrame throws with no frame pushed (depth, stack overflow);
  // parameter spill faults happen with the frame pushed, so the unwinder
  // emits this frame's exit event exactly like the interpreter's nested
  // try/catch does.
  void EnterCall(const Insn& ins, const opec_ir::Function* fn, uint32_t ret_pc,
                 const uint32_t* R);
  void PushFrame(const opec_ir::Function* fn, size_t nargs, uint32_t return_pc,
                 uint16_t ret_dst, int op_id, bool is_op, bool via_call,
                 int caller_operation);
  void SpillParams(const uint32_t* args, size_t nargs);
  void UnwindAllFrames();

  uint32_t CachedLoad(uint32_t pc_index, uint32_t addr, uint32_t size);
  void CachedStore(uint32_t pc_index, uint32_t addr, uint32_t size, uint32_t value);

  // Replays the accounting script of the instruction at `pc` node by node
  // after its statement batch crossed the limit, reproducing the exact
  // interpreter-side cycle count and statements_ == limit + 1 at the abort.
  [[noreturn]] void ReplayAcct(uint32_t pc);

  BytecodeModule bc_;
  bool lowered_ = false;
  CostModel lowered_costs_;

  std::vector<VCache> vcache_;     // one slot per instruction
  std::vector<uint32_t> regs_;     // (kMaxDepth + 1) frame windows
  std::vector<VFrame> frames_;
  std::vector<uint32_t> call_args_;  // scratch; rewritten by OnOperationEnter
};

}  // namespace bytecode
}  // namespace opec_rt

#endif  // SRC_RT_BYTECODE_VM_H_
