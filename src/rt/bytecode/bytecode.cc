#include "src/rt/bytecode/bytecode.h"

#include "src/support/text.h"

namespace opec_rt {
namespace bytecode {

const char* OpName(Op op) {
  switch (op) {
    case Op::kConst:      return "const";
    case Op::kMove:       return "move";
    case Op::kUnary:      return "unary";
    case Op::kBinary:     return "binary";
    case Op::kBinaryImm:  return "binary.imm";
    case Op::kLea:        return "lea";
    case Op::kAddImm:     return "addimm";
    case Op::kIndexAddr:  return "indexaddr";
    case Op::kSext:       return "sext";
    case Op::kAndImm:     return "andimm";
    case Op::kAcct:       return "acct";
    case Op::kDivRem:     return "divrem";
    case Op::kLoadLocal:  return "load.local";
    case Op::kStoreLocal: return "store.local";
    case Op::kLoadAbs:    return "load.abs";
    case Op::kStoreAbs:   return "store.abs";
    case Op::kLoadInd:    return "load.ind";
    case Op::kStoreInd:   return "store.ind";
    case Op::kLoadIdx:    return "load.idx";
    case Op::kStoreIdx:   return "store.idx";
    case Op::kJump:       return "jump";
    case Op::kBrFalse:    return "brfalse";
    case Op::kBrTrue:     return "brtrue";
    case Op::kBrCmpFalse:    return "brcmp.false";
    case Op::kBrCmpTrue:     return "brcmp.true";
    case Op::kBrCmpImmFalse: return "brcmpi.false";
    case Op::kBrCmpImmTrue:  return "brcmpi.true";
    case Op::kCall:       return "call";
    case Op::kCallInd:    return "call.ind";
    case Op::kICallCheck: return "icall.check";
    case Op::kRet:        return "ret";
    case Op::kAbort:      return "abort";
  }
  return "?";
}

std::string BytecodeModule::Disassemble(int func_ordinal) const {
  if (func_ordinal < 0 || static_cast<size_t>(func_ordinal) >= funcs.size()) {
    return "(no such function)";
  }
  // Functions are lowered in ordinal order into one contiguous stream, so a
  // function ends where the next one begins.
  uint32_t begin = funcs[static_cast<size_t>(func_ordinal)].entry;
  uint32_t end = static_cast<size_t>(func_ordinal) + 1 < funcs.size()
                     ? funcs[static_cast<size_t>(func_ordinal) + 1].entry
                     : static_cast<uint32_t>(code.size());
  std::string out = opec_support::StrPrintf(
      "func %d: entry=%u nregs=%u\n", func_ordinal, begin,
      funcs[static_cast<size_t>(func_ordinal)].nregs);
  for (uint32_t pc = begin; pc < end; ++pc) {
    const Insn& x = code[pc];
    out += opec_support::StrPrintf(
        "  %5u: %-11s a=%u b=%u c=%u sub=%u imm=0x%x imm2=0x%x", pc, OpName(x.op),
        x.a, x.b, x.c, x.sub, x.imm, x.imm2);
    if (x.stmt != 0 || x.charge != 0) {
      out += opec_support::StrPrintf("  [stmt+%u charge+%llu]", x.stmt,
                                     static_cast<unsigned long long>(x.charge));
    }
    out += "\n";
  }
  return out;
}

}  // namespace bytecode
}  // namespace opec_rt
