#include "src/rt/bytecode/vm.h"

#include <algorithm>

#include "src/obs/event.h"
#include "src/rt/bytecode/lowerer.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_rt {
namespace bytecode {

using opec_hw::AccessKind;
using opec_ir::BinaryOp;
using opec_ir::Function;
using opec_ir::Type;
using opec_ir::UnaryOp;

namespace {

// Sentinel return_pc of the entry frame: returning from it ends the run.
constexpr uint32_t kHaltPc = 0xFFFFFFFFu;

inline int32_t SextBits(uint32_t v, uint32_t bits) {
  if (bits == 32) {
    return static_cast<int32_t>(v);
  }
  uint32_t m = 1u << (bits - 1);
  return static_cast<int32_t>((v ^ m) - m);
}

// Shared arithmetic/comparison core of kBinary, kBinaryImm and the fused
// kBrCmp* branches. imm2 carries (signed << 8) | operand bit width.
inline uint32_t EvalBinary(BinaryOp op, uint32_t x, uint32_t y, uint32_t imm2) {
  uint32_t bits = imm2 & 0xFFu;
  bool sign = (imm2 & 0x100u) != 0;
  switch (op) {
    case BinaryOp::kAdd:
      return x + y;
    case BinaryOp::kSub:
      return x - y;
    case BinaryOp::kMul:
      return x * y;
    case BinaryOp::kAnd:
      return x & y;
    case BinaryOp::kOr:
      return x | y;
    case BinaryOp::kXor:
      return x ^ y;
    case BinaryOp::kShl:
      return x << (y & 31);
    case BinaryOp::kShr:
      return sign ? static_cast<uint32_t>(SextBits(x, bits) >> (y & 31)) : x >> (y & 31);
    case BinaryOp::kEq:
      return x == y;
    case BinaryOp::kNe:
      return x != y;
    case BinaryOp::kLt:
      return sign ? SextBits(x, bits) < SextBits(y, bits) : x < y;
    case BinaryOp::kLe:
      return sign ? SextBits(x, bits) <= SextBits(y, bits) : x <= y;
    case BinaryOp::kGt:
      return sign ? SextBits(x, bits) > SextBits(y, bits) : x > y;
    case BinaryOp::kGe:
      return sign ? SextBits(x, bits) >= SextBits(y, bits) : x >= y;
    case BinaryOp::kDiv:
    case BinaryOp::kRem:
    case BinaryOp::kLogAnd:
    case BinaryOp::kLogOr:
      break;  // lowered to kDivRem / branches
  }
  OPEC_UNREACHABLE("lowered to kDivRem / branches");
}

// kBinaryImm result masks, selected by imm2 bits 10:9.
constexpr uint32_t kMaskTab[4] = {0xFFu, 0xFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu};

}  // namespace

VM::VM(opec_hw::Machine& machine, const opec_ir::Module& module,
       const AddressAssignment& layout, Supervisor* supervisor)
    : Engine(machine, module, layout, supervisor) {}

const BytecodeModule& VM::Bytecode() {
  EnsureLowered();
  return bc_;
}

void VM::EnsureLowered() {
  if (lowered_ && lowered_costs_ == costs_) {
    return;
  }
  bc_ = Lowerer::Lower(*this, costs_);
  vcache_.assign(bc_.code.size(), VCache{});
  // One register window per possible frame, preallocated so register pointers
  // never move mid-run. Zero-filled once: register values are never
  // observable, but deterministic contents keep any latent read-before-write
  // lowering bug deterministic too.
  size_t window = std::max<size_t>(bc_.max_regs, 1);
  regs_.assign(static_cast<size_t>(kMaxDepth + 1) * window + 16, 0);
  frames_.reserve(kMaxDepth + 1);
  lowered_ = true;
  lowered_costs_ = costs_;
}

bool VM::AdoptBytecode(BytecodeModule bc, const CostModel& costs) {
  if (!(costs == costs_) || bc.funcs.size() != module_.functions().size() ||
      bc.acct.size() != bc.code.size()) {
    return false;
  }
  for (const BytecodeFunction& fn : bc.funcs) {
    if (fn.entry >= bc.code.size()) {
      return false;
    }
  }
  bc_ = std::move(bc);
  vcache_.assign(bc_.code.size(), VCache{});
  size_t window = std::max<size_t>(bc_.max_regs, 1);
  regs_.assign(static_cast<size_t>(kMaxDepth + 1) * window + 16, 0);
  frames_.reserve(kMaxDepth + 1);
  lowered_ = true;
  lowered_costs_ = costs_;
  return true;
}

void VM::PushFrame(const Function* fn, size_t nargs, uint32_t return_pc,
                   uint16_t ret_dst, int op_id, bool is_op, bool via_call,
                   int caller_operation) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    throw ExecutionAborted{"call depth limit exceeded in " + fn->name()};
  }
  OPEC_CHECK_MSG(static_cast<int>(nargs) == fn->param_count(),
                 "arity mismatch calling " + fn->name());
  const FrameLayout& fl = frame_layouts_[static_cast<size_t>(fn->ordinal())];
  uint32_t saved_sp = sp_;
  uint32_t base = (sp_ - fl.size) & ~7u;
  if (base < layout_.stack_base) {
    --depth_;
    throw ExecutionAborted{"guest stack overflow in " + fn->name()};
  }
  sp_ = base;
  const Function* saved_fn = current_fn_;
  current_fn_ = fn;
  OPEC_OBS_EVENT(opec_obs::EventKind::kFunctionEnter, machine_.cycles(), current_operation_,
                 depth_, static_cast<uint32_t>(fn->ordinal()));
  MaybeFireAttacks(fn);

  VFrame fr;
  fr.fn = fn;
  fr.saved_fn = saved_fn;
  fr.return_pc = return_pc;
  fr.reg_base = frames_.empty()
                    ? 0
                    : frames_.back().reg_base +
                          bc_.funcs[static_cast<size_t>(frames_.back().fn->ordinal())].nregs;
  fr.frame_base = base;
  fr.saved_sp = saved_sp;
  fr.ret_dst = ret_dst;
  fr.is_op = is_op;
  fr.via_call = via_call;
  fr.op_id = op_id;
  fr.caller_operation = caller_operation;
  frames_.push_back(fr);
}

void VM::SpillParams(const uint32_t* args, size_t nargs) {
  // Through the checked bus, like the interpreter: a disabled stack
  // sub-region faults right here — that is the stack protection.
  const VFrame& fr = frames_.back();
  const FrameLayout& fl = frame_layouts_[static_cast<size_t>(fr.fn->ordinal())];
  for (size_t i = 0; i < nargs; ++i) {
    const Type* pt = fr.fn->locals()[i].type;
    MemWrite(fr.frame_base + fl.offsets[i], pt->size(), Truncate(pt, args[i]));
  }
}

void VM::EnterCall(const Insn& ins, const Function* fn, uint32_t ret_pc,
                   const uint32_t* R) {
  size_t nargs = ins.sub;
  call_args_.clear();
  const uint16_t* pool = bc_.arg_pool.data() + ins.b;
  for (size_t i = 0; i < nargs; ++i) {
    call_args_.push_back(R[pool[i]]);
  }

  Charge(costs_.call + costs_.op * nargs);
  int op_entry = static_cast<int>(ins.imm2) - 1;
  bool is_op = op_entry >= 0 && supervisor_ != nullptr;
  int saved_operation = current_operation_;

  if (is_op) {
    if (!arg_attacks_.empty()) {
      int count = ++arg_entry_counts_[op_entry];
      for (ArgAttackSpec& a : arg_attacks_) {
        if (a.fired || a.op_id != op_entry || a.occurrence != count ||
            a.arg_index >= call_args_.size()) {
          continue;
        }
        a.fired = true;
        call_args_[a.arg_index] = a.value;
      }
    }
    Charge(costs_.svc);  // SVC before the call site
    OPEC_OBS_EVENT(opec_obs::EventKind::kSvc, machine_.cycles(), saved_operation, depth_,
                   static_cast<uint32_t>(op_entry), 0);
    if (!supervisor_->OnOperationEnter(op_entry, call_args_)) {
      throw ExecutionAborted{opec_support::StrPrintf(
          "monitor rejected entry into operation %d (%s)", op_entry, fn->name().c_str())};
    }
    current_operation_ = op_entry;
    OPEC_OBS_EVENT(opec_obs::EventKind::kOperationEnter, machine_.cycles(), current_operation_,
                   depth_, static_cast<uint32_t>(op_entry),
                   static_cast<uint32_t>(saved_operation));
  } else if (supervisor_ != nullptr) {
    if (!supervisor_->OnFunctionCall(fn)) {
      throw ExecutionAborted{"supervisor rejected call to " + fn->name()};
    }
  }

  try {
    PushFrame(fn, nargs, ret_pc, ins.a, op_entry, is_op, /*via_call=*/true,
              saved_operation);
  } catch (...) {
    // Depth/overflow rejections throw before the frame exists; restore the
    // operation like CallFunction's catch would. Spill faults below happen
    // with the frame pushed and are restored by the unwinder instead.
    current_operation_ = saved_operation;
    throw;
  }
  SpillParams(call_args_.data(), nargs);
}

void VM::UnwindAllFrames() {
  // Mirrors the interpreter's nested DoCall/CallFunction catch blocks,
  // innermost out: exit event (operation and depth still the frame's), state
  // restore, then the caller's operation.
  while (!frames_.empty()) {
    VFrame& fr = frames_.back();
    OPEC_OBS_EVENT(opec_obs::EventKind::kFunctionExit, machine_.cycles(), current_operation_,
                   depth_, static_cast<uint32_t>(fr.fn->ordinal()));
    current_fn_ = fr.saved_fn;
    --depth_;
    sp_ = fr.saved_sp;
    current_operation_ = fr.caller_operation;
    frames_.pop_back();
  }
}

void VM::ReplayAcct(uint32_t pc) {
  auto [ofs, len] = bc_.acct[pc];
  OPEC_CHECK_MSG(len != 0, "statement batch crossed the limit without a replay script");
  for (uint32_t i = 0; i < len; ++i) {
    int64_t e = bc_.acct_pool[ofs + i];
    if (e == kAcctStmt) {
      if (++statements_ > statement_limit_) {
        throw ExecutionAborted{"statement limit exceeded (possible guest infinite loop)"};
      }
    } else {
      Charge(static_cast<uint64_t>(e));
    }
  }
  OPEC_UNREACHABLE("statement batch crossed the limit but the replay did not");
}

uint32_t VM::CachedLoad(uint32_t pc_index, uint32_t addr, uint32_t size) {
  VCache& vc = vcache_[pc_index];
  uint64_t last = addr + static_cast<uint64_t>(size) - 1;
  if (vc.gen == machine_.mpu().generation() && addr >= vc.lo && last <= vc.hi &&
      vc.priv == static_cast<uint8_t>(machine_.privileged())) {
    uint32_t v = vc.backing == 0 ? machine_.bus().RawSramRead(addr, size)
                                 : machine_.bus().RawFlashRead(addr, size);
    Charge(costs_.memory);
    return v;
  }
  // Miss: one region walk decides the verdict and yields the uniform-verdict
  // interval. An allow whose clipped interval covers the whole access fills
  // the slot and completes through the raw backing path (same single memory
  // charge the shared path makes for an allowed plain-memory access). Denies,
  // devices, PPB and boundary-straddling accesses fall back to MemRead's full
  // fault/route semantics and are never cached.
  bool priv = machine_.privileged();
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (machine_.mpu().AllowedRange(addr, AccessKind::kRead, priv, &lo, &hi)) {
    const opec_hw::Bus& bus = machine_.bus();
    uint8_t backing = 2;  // 2 = not plain memory
    if (bus.InSram(addr, size)) {
      backing = 0;
      lo = std::max(lo, opec_hw::kSramBase);
      hi = std::min<uint64_t>(hi, static_cast<uint64_t>(bus.sram_end()) - 1);
    } else if (bus.InFlash(addr, size)) {
      backing = 1;
      lo = std::max(lo, opec_hw::kFlashBase);
      hi = std::min<uint64_t>(hi, static_cast<uint64_t>(bus.flash_end()) - 1);
    }
    if (backing != 2 && addr >= lo && last <= hi) {
      vc = VCache{machine_.mpu().generation(), lo, hi, static_cast<uint8_t>(priv), backing};
      uint32_t v = backing == 0 ? bus.RawSramRead(addr, size) : bus.RawFlashRead(addr, size);
      Charge(costs_.memory);
      return v;
    }
  }
  return MemRead(addr, size);  // shared slow path: full fault semantics
}

void VM::CachedStore(uint32_t pc_index, uint32_t addr, uint32_t size, uint32_t value) {
  VCache& vc = vcache_[pc_index];
  uint64_t last = addr + static_cast<uint64_t>(size) - 1;
  if (vc.gen == machine_.mpu().generation() && addr >= vc.lo && last <= vc.hi &&
      vc.priv == static_cast<uint8_t>(machine_.privileged())) {
    machine_.bus().RawSramWrite(addr, size, value);
    Charge(costs_.memory);
    return;
  }
  bool priv = machine_.privileged();
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (machine_.mpu().AllowedRange(addr, AccessKind::kWrite, priv, &lo, &hi) &&
      machine_.bus().InSram(addr, size)) {
    lo = std::max(lo, opec_hw::kSramBase);
    hi = std::min<uint64_t>(hi, static_cast<uint64_t>(machine_.bus().sram_end()) - 1);
    if (addr >= lo && last <= hi) {
      vc = VCache{machine_.mpu().generation(), lo, hi, static_cast<uint8_t>(priv), 0};
      machine_.bus().RawSramWrite(addr, size, value);
      Charge(costs_.memory);
      return;
    }
  }
  MemWrite(addr, size, value);
}

// Direct-threaded dispatch on GCC/Clang; portable switch loop elsewhere. The
// handler bodies are written once and shared between the two modes.
#if defined(__GNUC__) || defined(__clang__)
#define OPEC_VM_THREADED 1
#endif

#ifdef OPEC_VM_THREADED
#define OPEC_VM_CASE(name) L_##name:
#define OPEC_VM_NEXT()                        \
  do {                                        \
    I = &code[pc];                            \
    goto* kDispatch[static_cast<int>(I->op)]; \
  } while (0)
#else
#define OPEC_VM_CASE(name) case Op::name:
#define OPEC_VM_NEXT() break
#endif

// Applies a flushing instruction's batched accounting: statement increments
// (with exact limit replay on crossing and the interpreter's 8192-statement
// cancellation poll cadence), then the batched cycle charge.
#define OPEC_VM_FLUSH()                                                      \
  do {                                                                       \
    if (I->stmt != 0) {                                                      \
      uint64_t before_ = statements_;                                        \
      statements_ += I->stmt;                                                \
      if (statements_ > statement_limit_) [[unlikely]] {                     \
        statements_ = before_;                                               \
        ReplayAcct(static_cast<uint32_t>(I - code));                         \
      }                                                                      \
      if (cancel_ != nullptr && ((before_ ^ statements_) & ~0x1FFFull) != 0) \
          [[unlikely]] {                                                     \
        if (cancel_->load(std::memory_order_relaxed)) {                      \
          throw ExecutionAborted{"canceled: wall-clock deadline exceeded"};  \
        }                                                                    \
      }                                                                      \
    }                                                                        \
    if (I->charge != 0) {                                                    \
      Charge(I->charge);                                                     \
    }                                                                        \
  } while (0)

uint32_t VM::Execute(const Function* entry_fn, const std::vector<uint32_t>& args) {
  const Insn* const code = bc_.code.data();

  // Entry frame: pushed directly, like Run -> DoCall in the interpreter — no
  // call charge, no operation-entry protocol, no supervisor call hooks.
  PushFrame(entry_fn, args.size(), kHaltPc, 0, /*op_id=*/-1, /*is_op=*/false,
            /*via_call=*/false, current_operation_);
  SpillParams(args.data(), args.size());

  uint32_t pc = bc_.funcs[static_cast<size_t>(entry_fn->ordinal())].entry;
  uint32_t* R = regs_.data() + frames_.back().reg_base;
  uint32_t fp = frames_.back().frame_base;
  const Insn* I = nullptr;

#ifdef OPEC_VM_THREADED
  static const void* const kDispatch[] = {
      &&L_kConst,     &&L_kMove,       &&L_kUnary,      &&L_kBinary,
      &&L_kBinaryImm, &&L_kLea,        &&L_kAddImm,     &&L_kIndexAddr,
      &&L_kSext,      &&L_kAndImm,     &&L_kAcct,       &&L_kDivRem,
      &&L_kLoadLocal, &&L_kStoreLocal, &&L_kLoadAbs,    &&L_kStoreAbs,
      &&L_kLoadInd,   &&L_kStoreInd,   &&L_kLoadIdx,    &&L_kStoreIdx,
      &&L_kJump,      &&L_kBrFalse,    &&L_kBrTrue,     &&L_kBrCmpFalse,
      &&L_kBrCmpTrue, &&L_kBrCmpImmFalse, &&L_kBrCmpImmTrue, &&L_kCall,
      &&L_kCallInd,   &&L_kICallCheck, &&L_kRet,        &&L_kAbort,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                static_cast<size_t>(Op::kAbort) + 1);
  OPEC_VM_NEXT();
#else
  for (;;) {
    I = &code[pc];
    switch (I->op) {
#endif

      OPEC_VM_CASE(kConst) {
        R[I->a] = I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kMove) {
        R[I->a] = R[I->b];
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kUnary) {
        uint32_t v = R[I->b];
        uint32_t r = 0;
        switch (static_cast<UnaryOp>(I->sub)) {
          case UnaryOp::kNeg:
            r = 0u - v;
            break;
          case UnaryOp::kBitNot:
            r = ~v;
            break;
          case UnaryOp::kLogNot:
            r = v == 0 ? 1u : 0u;
            break;
        }
        R[I->a] = r & I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBinary) {
        R[I->a] =
            EvalBinary(static_cast<BinaryOp>(I->sub), R[I->b], R[I->c], I->imm2) & I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBinaryImm) {
        R[I->a] = EvalBinary(static_cast<BinaryOp>(I->sub), R[I->b], I->imm, I->imm2) &
                  kMaskTab[(I->imm2 >> 9) & 3];
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kLea) {
        R[I->a] = fp + I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kAddImm) {
        R[I->a] = R[I->b] + I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kIndexAddr) {
        R[I->a] = R[I->b] + R[I->c] * I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kSext) {
        R[I->a] = static_cast<uint32_t>(SextBits(R[I->b], I->imm2)) & I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kAndImm) {
        R[I->a] = R[I->b] & I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kAcct) {
        OPEC_VM_FLUSH();
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kDivRem) {
        OPEC_VM_FLUSH();
        uint32_t x = R[I->b];
        uint32_t y = R[I->c];
        bool div = static_cast<BinaryOp>(I->sub) == BinaryOp::kDiv;
        if (y == 0) {
          throw ExecutionAborted{div ? "division by zero" : "remainder by zero"};
        }
        uint32_t r;
        if ((I->imm2 & 0x100u) != 0) {
          uint32_t bits = I->imm2 & 0xFFu;
          int32_t sx = SextBits(x, bits);
          int32_t sy = SextBits(y, bits);
          r = static_cast<uint32_t>(div ? sx / sy : sx % sy);
        } else {
          r = div ? x / y : x % y;
        }
        R[I->a] = r & I->imm;
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kLoadLocal) {
        OPEC_VM_FLUSH();
        R[I->a] = CachedLoad(static_cast<uint32_t>(I - code), fp + I->imm, I->sub);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kStoreLocal) {
        OPEC_VM_FLUSH();
        CachedStore(static_cast<uint32_t>(I - code), fp + I->imm, I->sub,
                    R[I->a] & I->imm2);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kLoadAbs) {
        OPEC_VM_FLUSH();
        R[I->a] = CachedLoad(static_cast<uint32_t>(I - code), I->imm, I->sub);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kStoreAbs) {
        OPEC_VM_FLUSH();
        CachedStore(static_cast<uint32_t>(I - code), I->imm, I->sub, R[I->a] & I->imm2);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kLoadInd) {
        OPEC_VM_FLUSH();
        R[I->a] = CachedLoad(static_cast<uint32_t>(I - code), R[I->b] + I->imm, I->sub);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kStoreInd) {
        OPEC_VM_FLUSH();
        CachedStore(static_cast<uint32_t>(I - code), R[I->b] + I->imm, I->sub,
                    R[I->a] & I->imm2);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kLoadIdx) {
        OPEC_VM_FLUSH();
        R[I->a] =
            CachedLoad(static_cast<uint32_t>(I - code), R[I->b] + R[I->c] * I->imm, I->sub);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kStoreIdx) {
        OPEC_VM_FLUSH();
        CachedStore(static_cast<uint32_t>(I - code), R[I->b] + R[I->c] * I->imm, I->sub,
                    R[I->a] & I->imm2);
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kJump) {
        OPEC_VM_FLUSH();
        pc = I->imm;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBrFalse) {
        OPEC_VM_FLUSH();
        pc = R[I->a] == 0 ? I->imm : pc + 1;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBrTrue) {
        OPEC_VM_FLUSH();
        pc = R[I->a] != 0 ? I->imm : pc + 1;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBrCmpFalse) {
        OPEC_VM_FLUSH();
        pc = EvalBinary(static_cast<BinaryOp>(I->sub), R[I->b], R[I->c], I->imm2) == 0
                 ? I->imm
                 : pc + 1;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBrCmpTrue) {
        OPEC_VM_FLUSH();
        pc = EvalBinary(static_cast<BinaryOp>(I->sub), R[I->b], R[I->c], I->imm2) != 0
                 ? I->imm
                 : pc + 1;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBrCmpImmFalse) {
        OPEC_VM_FLUSH();
        uint32_t y = I->a | static_cast<uint32_t>(I->c) << 16;
        pc = EvalBinary(static_cast<BinaryOp>(I->sub), R[I->b], y, I->imm2) == 0
                 ? I->imm
                 : pc + 1;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kBrCmpImmTrue) {
        OPEC_VM_FLUSH();
        uint32_t y = I->a | static_cast<uint32_t>(I->c) << 16;
        pc = EvalBinary(static_cast<BinaryOp>(I->sub), R[I->b], y, I->imm2) != 0
                 ? I->imm
                 : pc + 1;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kCall) {
        OPEC_VM_FLUSH();
        const Function* fn = module_.functions()[I->imm].get();
        EnterCall(*I, fn, pc + 1, R);
        const VFrame& fr = frames_.back();
        R = regs_.data() + fr.reg_base;
        fp = fr.frame_base;
        pc = bc_.funcs[static_cast<size_t>(fn->ordinal())].entry;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kCallInd) {
        OPEC_VM_FLUSH();
        const Function* fn = module_.functions()[R[I->c]].get();
        EnterCall(*I, fn, pc + 1, R);
        const VFrame& fr = frames_.back();
        R = regs_.data() + fr.reg_base;
        fp = fr.frame_base;
        pc = bc_.funcs[static_cast<size_t>(fn->ordinal())].entry;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kICallCheck) {
        OPEC_VM_FLUSH();
        uint32_t target = R[I->b];
        const Function* fn = FuncAt(target);
        if (fn == nullptr) {
          throw ExecutionAborted{"indirect call to non-function address " +
                                 opec_support::HexAddr(target)};
        }
        if (fn->type()->params().size() != I->imm) {
          throw ExecutionAborted{"indirect call signature mismatch calling " + fn->name()};
        }
        R[I->a] = static_cast<uint32_t>(fn->ordinal());
        ++pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kRet) {
        OPEC_VM_FLUSH();
        uint32_t rv = I->sub != 0 ? R[I->a] : 0;
        VFrame fr = frames_.back();
        Charge(costs_.ret);
        OPEC_OBS_EVENT(opec_obs::EventKind::kFunctionExit, machine_.cycles(),
                       current_operation_, depth_, static_cast<uint32_t>(fr.fn->ordinal()));
        current_fn_ = fr.saved_fn;
        --depth_;
        sp_ = fr.saved_sp;
        frames_.pop_back();
        if (fr.is_op) {
          Charge(costs_.svc);  // SVC after the call site
          OPEC_OBS_EVENT(opec_obs::EventKind::kSvc, machine_.cycles(), fr.op_id, depth_,
                         static_cast<uint32_t>(fr.op_id), 1);
          current_operation_ = fr.caller_operation;
          if (!supervisor_->OnOperationExit(fr.op_id)) {
            throw ExecutionAborted{opec_support::StrPrintf(
                "monitor aborted at exit of operation %d (%s) — data sanitization failed",
                fr.op_id, fr.fn->name().c_str())};
          }
          OPEC_OBS_EVENT(opec_obs::EventKind::kOperationExit, machine_.cycles(),
                         current_operation_, depth_, static_cast<uint32_t>(fr.op_id),
                         static_cast<uint32_t>(fr.caller_operation));
        } else if (fr.via_call && supervisor_ != nullptr) {
          if (!supervisor_->OnFunctionReturn(fr.fn)) {
            throw ExecutionAborted{"supervisor rejected return from " + fr.fn->name()};
          }
        }
        if (frames_.empty()) {
          return rv;
        }
        const VFrame& caller = frames_.back();
        R = regs_.data() + caller.reg_base;
        fp = caller.frame_base;
        R[fr.ret_dst] = rv;
        pc = fr.return_pc;
        OPEC_VM_NEXT();
      }
      OPEC_VM_CASE(kAbort) {
        OPEC_VM_FLUSH();
        throw ExecutionAborted{bc_.messages[I->imm]};
      }

#ifndef OPEC_VM_THREADED
    }
  }
#endif
}

#undef OPEC_VM_FLUSH
#undef OPEC_VM_CASE
#undef OPEC_VM_NEXT

RunResult VM::Run(const std::string& entry, const std::vector<uint32_t>& args) {
  EnsureLowered();
  RunResult result;
  const Function* fn = module_.FindFunction(entry);
  if (fn == nullptr) {
    result.violation = "no such entry function: " + entry;
    return result;
  }
  ResetRunState();
  frames_.clear();

  uint64_t start_cycles = machine_.cycles();
  if (supervisor_ != nullptr) {
    supervisor_->OnProgramStart(this);
  }
  try {
    result.return_value = Execute(fn, args);
    result.ok = true;
    if (supervisor_ != nullptr) {
      supervisor_->OnProgramEnd();
    }
  } catch (const ExecutionAborted& aborted) {
    UnwindAllFrames();
    result.ok = false;
    result.violation = aborted.reason;
  }
  result.cycles = machine_.cycles() - start_cycles;
  result.statements = statements_;
  return result;
}

}  // namespace bytecode
}  // namespace opec_rt
