#include "src/rt/bytecode/lowerer.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_rt {
namespace bytecode {

using opec_ir::BinaryOp;
using opec_ir::Expr;
using opec_ir::ExprKind;
using opec_ir::Function;
using opec_ir::Stmt;
using opec_ir::StmtKind;
using opec_ir::StmtPtr;
using opec_ir::Type;
using opec_ir::UnaryOp;

namespace {

// Lowers one function at a time into the shared BytecodeModule. The pending
// accounting state (stmt/charge batch plus the interpreter-order replay
// script) accumulates across pure instructions and drains into the next
// flushing instruction; see bytecode.h for the model and the invariants.
class FnLowerer {
 public:
  FnLowerer(const Engine& engine, const CostModel& costs, BytecodeModule& bc)
      : eng_(engine), costs_(costs), bc_(bc) {}

  void LowerFunction(const Function& fn) {
    fn_ = &fn;
    fl_ = &eng_.frame_layouts()[static_cast<size_t>(fn.ordinal())];
    fuse_barrier_ = Here();
    next_reg_ = 0;
    free_.clear();
    loops_.clear();
    fnend_jumps_.clear();
    script_.clear();
    pend_stmt_ = 0;
    pend_charge_ = 0;

    uint32_t entry = Here();
    LowerBlock(fn.body());
    // Implicit `return 0` at function end; break/continue outside any loop
    // fall out of the body in the interpreter and land here too. Jumps arrive
    // with their pending flushed, so a pending-carrying fallthrough must
    // drain before the shared kRet.
    if (!fnend_jumps_.empty()) {
      FlushIfPending();
    }
    uint32_t end_pc = EmitFlush(I(Op::kRet));
    for (uint32_t pc : fnend_jumps_) {
      Patch(pc, end_pc);
    }

    BytecodeFunction& bf = bc_.funcs[static_cast<size_t>(fn.ordinal())];
    bf.entry = entry;
    bf.nregs = next_reg_;
    bc_.max_regs = std::max(bc_.max_regs, bf.nregs);
  }

 private:
  static Insn I(Op op) {
    Insn x;
    x.op = op;
    return x;
  }

  uint32_t Here() const { return static_cast<uint32_t>(bc_.code.size()); }
  void Patch(uint32_t pc, uint32_t target) { bc_.code[pc].imm = target; }

  // --- peephole fusion ---
  //
  // A pure producer (kConst, kLea, kAddImm, kIndexAddr, a comparison kBinary)
  // whose sole consumer is the next instruction can be popped and folded into
  // it. Validity rests on two rules. First, the replacement is emitted at the
  // producer's pc and subsumes its effect, so any control transfer landing on
  // that pc (a call's return address always points just past the kCall, i.e.
  // at the producer slot) still computes the same thing. Second, no *label*
  // may point between producer and consumer: every point whose pc is captured
  // as a branch target calls MarkLabel(), and fusion never pops an
  // instruction emitted at or before the barrier. Only EmitPure instructions
  // are popped, so accounting batches and replay scripts are untouched.

  void MarkLabel() { fuse_barrier_ = Here(); }

  // True when the last emitted instruction is a poppable `op` producing
  // register `dst` past the label barrier. Callers only ask about registers
  // they are about to consume and free, so the producer's value is dead once
  // folded.
  bool CanPop(Op op, uint16_t dst) const {
    return Here() > fuse_barrier_ && !bc_.code.empty() &&
           bc_.code.back().op == op && bc_.code.back().a == dst;
  }

  Insn PopLast() {
    Insn k = bc_.code.back();
    bc_.code.pop_back();
    bc_.acct.pop_back();
    return k;
  }

  static bool IsCmp(uint8_t sub) {
    BinaryOp b = static_cast<BinaryOp>(sub);
    return b >= BinaryOp::kEq && b <= BinaryOp::kGe;
  }

  // Emits the conditional branch on register `c`, fusing an immediately
  // preceding comparison that produced `c` into a kBrCmp* superinstruction.
  // `plain` is kBrFalse or kBrTrue; returns the branch pc for patching.
  uint32_t EmitCondBranch(Op plain, uint16_t c) {
    bool jump_if_true = plain == Op::kBrTrue;
    if (CanPop(Op::kBinary, c) && IsCmp(bc_.code.back().sub)) {
      Insn k = PopLast();
      Insn br = I(jump_if_true ? Op::kBrCmpTrue : Op::kBrCmpFalse);
      br.b = k.b;
      br.c = k.c;
      br.sub = k.sub;
      br.imm2 = k.imm2;
      return EmitFlush(br);
    }
    if (CanPop(Op::kBinaryImm, c) && IsCmp(bc_.code.back().sub)) {
      Insn k = PopLast();
      Insn br = I(jump_if_true ? Op::kBrCmpImmTrue : Op::kBrCmpImmFalse);
      br.b = k.b;
      br.a = static_cast<uint16_t>(k.imm & 0xFFFFu);  // constant, split a|c<<16
      br.c = static_cast<uint16_t>(k.imm >> 16);
      br.sub = k.sub;
      br.imm2 = k.imm2;
      return EmitFlush(br);
    }
    Insn br = I(plain);
    br.a = c;
    return EmitFlush(br);
  }

  // --- pending accounting ---

  void PendStmt() {
    // Keep the batch far under the uint16 field limit; an early kAcct flush
    // is always sound (it only moves accounting earlier between observables).
    if (pend_stmt_ >= 60000) {
      FlushIfPending();
    }
    script_.push_back(kAcctStmt);
    ++pend_stmt_;
  }

  void PendCharge(uint64_t c) {
    if (c != 0) {
      script_.push_back(static_cast<int64_t>(c));
      pend_charge_ += c;
    }
  }

  uint32_t EmitPure(Insn insn) {
    uint32_t pc = Here();
    bc_.code.push_back(insn);
    bc_.acct.emplace_back(0, 0);
    return pc;
  }

  uint32_t EmitFlush(Insn insn) {
    insn.stmt = static_cast<uint16_t>(pend_stmt_);
    insn.charge = pend_charge_;
    uint32_t pc = Here();
    bc_.code.push_back(insn);
    if (pend_stmt_ > 0) {
      // The replay script is only consulted when a statement batch can cross
      // the limit; charge-only batches can never newly cross it.
      uint32_t ofs = static_cast<uint32_t>(bc_.acct_pool.size());
      bc_.acct_pool.insert(bc_.acct_pool.end(), script_.begin(), script_.end());
      bc_.acct.emplace_back(ofs, static_cast<uint32_t>(script_.size()));
    } else {
      bc_.acct.emplace_back(0, 0);
    }
    script_.clear();
    pend_stmt_ = 0;
    pend_charge_ = 0;
    return pc;
  }

  void FlushIfPending() {
    if (pend_stmt_ != 0 || pend_charge_ != 0) {
      EmitFlush(I(Op::kAcct));
    }
  }

  // --- registers ---

  uint16_t AllocReg() {
    if (!free_.empty()) {
      uint16_t r = free_.back();
      free_.pop_back();
      return r;
    }
    OPEC_CHECK_MSG(next_reg_ < 60000, "bytecode register overflow in " + fn_->name());
    return next_reg_++;
  }

  void FreeReg(uint16_t r) { free_.push_back(r); }

  // --- aborts / messages ---

  uint32_t MsgIndex(const std::string& msg) {
    auto it = msg_index_.find(msg);
    if (it != msg_index_.end()) {
      return it->second;
    }
    uint32_t idx = static_cast<uint32_t>(bc_.messages.size());
    bc_.messages.push_back(msg);
    msg_index_.emplace(msg, idx);
    return idx;
  }

  // Emits an unconditional abort carrying the current pending batch (so the
  // cycles/statements charged up to the throw point match the interpreter)
  // and returns a fresh register to keep callers shape-correct; execution
  // never continues past the kAbort, so its value is never read.
  uint16_t EmitAbort(const std::string& msg) {
    Insn x = I(Op::kAbort);
    x.imm = MsgIndex(msg);
    EmitFlush(x);
    return AllocReg();
  }

  static uint32_t TruncMask(const Type* t) {
    if (t->IsPointer() || t->size() == 4) {
      return 0xFFFFFFFFu;
    }
    return (1u << (t->size() * 8)) - 1;
  }

  // --- statements (mirrors ExecStmt) ---

  void LowerBlock(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& s : body) {
      LowerStmt(*s);
    }
  }

  void LowerStmt(const Stmt& s) {
    PendStmt();  // ExecStmt entry
    switch (s.kind) {
      case StmtKind::kAssign: {
        uint16_t v = LowerOperand(*s.expr);
        const Expr& lhs = *s.lhs;
        uint32_t mask = TruncMask(lhs.type);
        uint8_t size = static_cast<uint8_t>(lhs.type->size());
        if (lhs.kind == ExprKind::kLocal) {
          PendCharge(costs_.op);
          Insn x = I(Op::kStoreLocal);
          x.a = v;
          x.sub = size;
          x.imm = fl_->offsets[static_cast<size_t>(lhs.local_slot)];
          x.imm2 = mask;
          EmitFlush(x);
        } else if (lhs.kind == ExprKind::kGlobal) {
          PendCharge(costs_.op);
          uint32_t addr = eng_.GlobalAddrOf(lhs.global);
          if (addr == 0) {
            FreeReg(EmitAbort("global has no assigned address: " + lhs.global->name()));
          } else {
            Insn x = I(Op::kStoreAbs);
            x.a = v;
            x.sub = size;
            x.imm = addr;
            x.imm2 = mask;
            EmitFlush(x);
          }
        } else {
          uint16_t ad = LowerAddr(lhs);
          Insn x = I(Op::kStoreInd);
          if (CanPop(Op::kIndexAddr, ad)) {
            Insn k = PopLast();
            x.op = Op::kStoreIdx;
            x.b = k.b;
            x.c = k.c;
            x.imm = k.imm;
          } else if (CanPop(Op::kAddImm, ad)) {
            Insn k = PopLast();
            x.b = k.b;
            x.imm = k.imm;
          } else {
            x.b = ad;
          }
          x.a = v;
          x.sub = size;
          x.imm2 = mask;
          EmitFlush(x);
          FreeReg(ad);
        }
        FreeReg(v);
        return;
      }
      case StmtKind::kExpr:
        FreeReg(LowerExpr(*s.expr));
        return;
      case StmtKind::kIf: {
        PendCharge(costs_.branch);
        uint16_t c = LowerOperand(*s.expr);
        uint32_t brpc = EmitCondBranch(Op::kBrFalse, c);
        FreeReg(c);
        LowerBlock(s.body);
        if (s.orelse.empty()) {
          FlushIfPending();
          MarkLabel();
          Patch(brpc, Here());
        } else {
          uint32_t jpc = EmitFlush(I(Op::kJump));
          MarkLabel();
          Patch(brpc, Here());
          LowerBlock(s.orelse);
          FlushIfPending();
          MarkLabel();
          Patch(jpc, Here());
        }
        return;
      }
      case StmtKind::kWhile: {
        // The while statement itself counts once (ExecStmt entry, flushed
        // here); the branch charge recurs at the loop head every iteration.
        FlushIfPending();
        MarkLabel();
        uint32_t head = Here();
        PendCharge(costs_.branch);
        uint16_t c = LowerOperand(*s.expr);
        uint32_t exitpc = EmitCondBranch(Op::kBrFalse, c);
        FreeReg(c);
        loops_.push_back({head, {}});
        LowerBlock(s.body);
        Insn j = I(Op::kJump);
        j.imm = head;
        EmitFlush(j);  // the backedge carries the body tail's pending batch
        MarkLabel();
        uint32_t end = Here();
        Patch(exitpc, end);
        for (uint32_t pc : loops_.back().breaks) {
          Patch(pc, end);
        }
        loops_.pop_back();
        return;
      }
      case StmtKind::kBreak:
        if (loops_.empty()) {
          fnend_jumps_.push_back(EmitFlush(I(Op::kJump)));
        } else {
          loops_.back().breaks.push_back(EmitFlush(I(Op::kJump)));
        }
        return;
      case StmtKind::kContinue:
        if (loops_.empty()) {
          fnend_jumps_.push_back(EmitFlush(I(Op::kJump)));
        } else {
          Insn j = I(Op::kJump);
          j.imm = loops_.back().head;
          EmitFlush(j);
        }
        return;
      case StmtKind::kReturn: {
        Insn r = I(Op::kRet);
        if (s.expr != nullptr) {
          uint16_t v = LowerExpr(*s.expr);
          r.sub = 1;
          r.a = v;
          EmitFlush(r);
          FreeReg(v);
        } else {
          EmitFlush(r);
        }
        return;
      }
    }
    OPEC_UNREACHABLE("bad StmtKind");
  }

  // --- expressions (mirrors Eval) ---

  uint16_t LowerExpr(const Expr& e) {
    PendStmt();
    if (e.kind != ExprKind::kIntConst && e.kind != ExprKind::kCast &&
        e.kind != ExprKind::kAddrOf) {
      PendCharge(costs_.op);
    }
    switch (e.kind) {
      case ExprKind::kIntConst: {
        uint16_t r = AllocReg();
        Insn x = I(Op::kConst);
        x.a = r;
        x.imm = static_cast<uint32_t>(e.int_value);
        EmitPure(x);
        return r;
      }
      case ExprKind::kFuncAddr: {
        uint16_t r = AllocReg();
        Insn x = I(Op::kConst);
        x.a = r;
        x.imm = eng_.FuncAddr(e.func);
        EmitPure(x);
        return r;
      }
      case ExprKind::kLocal:
      case ExprKind::kGlobal:
      case ExprKind::kDeref:
      case ExprKind::kIndex:
      case ExprKind::kField: {
        if (!e.type->IsInt() && !e.type->IsPointer()) {
          return EmitAbort("rvalue load of aggregate type " + e.type->ToString());
        }
        uint8_t size = static_cast<uint8_t>(e.type->size());
        if (e.kind == ExprKind::kLocal) {
          PendCharge(costs_.op);  // the flattened EvalAddr charge
          uint16_t r = AllocReg();
          Insn x = I(Op::kLoadLocal);
          x.a = r;
          x.sub = size;
          x.imm = fl_->offsets[static_cast<size_t>(e.local_slot)];
          EmitFlush(x);
          return r;
        }
        if (e.kind == ExprKind::kGlobal) {
          PendCharge(costs_.op);
          uint32_t addr = eng_.GlobalAddrOf(e.global);
          if (addr == 0) {
            return EmitAbort("global has no assigned address: " + e.global->name());
          }
          uint16_t r = AllocReg();
          Insn x = I(Op::kLoadAbs);
          x.a = r;
          x.sub = size;
          x.imm = addr;
          EmitFlush(x);
          return r;
        }
        uint16_t ad = LowerAddr(e);
        FreeReg(ad);
        uint16_t r = AllocReg();
        Insn x = I(Op::kLoadInd);
        if (CanPop(Op::kIndexAddr, ad)) {
          Insn k = PopLast();  // fold base + index*size into the load
          x.op = Op::kLoadIdx;
          x.b = k.b;
          x.c = k.c;
          x.imm = k.imm;
        } else if (CanPop(Op::kAddImm, ad)) {
          Insn k = PopLast();  // fold the field offset into the load
          x.b = k.b;
          x.imm = k.imm;
        } else {
          x.b = ad;
        }
        x.a = r;
        x.sub = size;
        EmitFlush(x);
        return r;
      }
      case ExprKind::kAddrOf:
        return LowerAddr(*e.operands[0]);
      case ExprKind::kUnary: {
        uint16_t v = LowerOperand(*e.operands[0]);
        FreeReg(v);
        uint16_t r = AllocReg();
        Insn x = I(Op::kUnary);
        x.a = r;
        x.b = v;
        x.sub = static_cast<uint8_t>(e.unary_op);
        x.imm = e.unary_op == UnaryOp::kLogNot ? 0xFFFFFFFFu : TruncMask(e.type);
        EmitPure(x);
        return r;
      }
      case ExprKind::kBinary:
        return LowerBinary(e);
      case ExprKind::kCast: {
        uint16_t v = LowerOperand(*e.operands[0]);
        const Type* from = e.operands[0]->type;
        uint32_t mask = TruncMask(e.type);
        if (from->IsInt() && from->is_signed() && from->size() < e.type->size()) {
          FreeReg(v);
          uint16_t r = AllocReg();
          Insn x = I(Op::kSext);
          x.a = r;
          x.b = v;
          x.imm2 = from->size() * 8;
          x.imm = mask;
          EmitPure(x);
          return r;
        }
        if (mask == 0xFFFFFFFFu) {
          return v;  // identity cast: reuse the operand register
        }
        FreeReg(v);
        uint16_t r = AllocReg();
        Insn x = I(Op::kAndImm);
        x.a = r;
        x.b = v;
        x.imm = mask;
        EmitPure(x);
        return r;
      }
      case ExprKind::kCall:
        return LowerCall(e, /*indirect=*/false);
      case ExprKind::kICall:
        return LowerCall(e, /*indirect=*/true);
    }
    OPEC_UNREACHABLE("bad ExprKind");
  }

  uint16_t LowerOperand(const Expr& e) {
    if (e.kind == ExprKind::kIntConst) {
      PendStmt();
      uint16_t r = AllocReg();
      Insn x = I(Op::kConst);
      x.a = r;
      x.imm = static_cast<uint32_t>(e.int_value);
      EmitPure(x);
      return r;
    }
    if ((e.kind == ExprKind::kLocal || e.kind == ExprKind::kGlobal) &&
        (e.type->IsInt() || e.type->IsPointer())) {
      PendStmt();
      PendCharge(costs_.op * 2);  // EvalOperand's single fused charge
      uint8_t size = static_cast<uint8_t>(e.type->size());
      if (e.kind == ExprKind::kLocal) {
        uint16_t r = AllocReg();
        Insn x = I(Op::kLoadLocal);
        x.a = r;
        x.sub = size;
        x.imm = fl_->offsets[static_cast<size_t>(e.local_slot)];
        EmitFlush(x);
        return r;
      }
      uint32_t addr = eng_.GlobalAddrOf(e.global);
      if (addr == 0) {
        return EmitAbort("global has no assigned address: " + e.global->name());
      }
      uint16_t r = AllocReg();
      Insn x = I(Op::kLoadAbs);
      x.a = r;
      x.sub = size;
      x.imm = addr;
      EmitFlush(x);
      return r;
    }
    return LowerExpr(e);
  }

  uint16_t LowerAddr(const Expr& e) {
    PendCharge(costs_.op);  // EvalAddr entry charge (no statement count)
    switch (e.kind) {
      case ExprKind::kLocal: {
        uint16_t r = AllocReg();
        Insn x = I(Op::kLea);
        x.a = r;
        x.imm = fl_->offsets[static_cast<size_t>(e.local_slot)];
        EmitPure(x);
        return r;
      }
      case ExprKind::kGlobal: {
        uint32_t addr = eng_.GlobalAddrOf(e.global);
        if (addr == 0) {
          return EmitAbort("global has no assigned address: " + e.global->name());
        }
        uint16_t r = AllocReg();
        Insn x = I(Op::kConst);
        x.a = r;
        x.imm = addr;
        EmitPure(x);
        return r;
      }
      case ExprKind::kDeref:
        return LowerOperand(*e.operands[0]);
      case ExprKind::kIndex: {
        const Expr& base = *e.operands[0];
        uint16_t ba = base.type->IsPointer() ? LowerExpr(base) : LowerAddr(base);
        uint16_t idx = LowerOperand(*e.operands[1]);
        FreeReg(ba);
        FreeReg(idx);
        uint16_t r = AllocReg();
        Insn x = I(Op::kIndexAddr);
        x.a = r;
        x.b = ba;
        x.c = idx;
        x.imm = e.type->size();
        EmitPure(x);
        return r;
      }
      case ExprKind::kField: {
        uint16_t ba = LowerAddr(*e.operands[0]);
        uint32_t off =
            e.operands[0]->type->fields()[static_cast<size_t>(e.field_index)].offset;
        if (off == 0) {
          return ba;
        }
        // Nested field paths collapse into one address instruction: the
        // offset folds directly into a kLea/kConst/kAddImm base producer.
        if (CanPop(Op::kAddImm, ba) || CanPop(Op::kLea, ba) || CanPop(Op::kConst, ba)) {
          Insn k = PopLast();
          FreeReg(ba);
          uint16_t r = AllocReg();
          k.a = r;
          k.imm += off;
          EmitPure(k);
          return r;
        }
        FreeReg(ba);
        uint16_t r = AllocReg();
        Insn x = I(Op::kAddImm);
        x.a = r;
        x.b = ba;
        x.imm = off;
        EmitPure(x);
        return r;
      }
      default:
        return EmitAbort("EvalAddr on non-lvalue expression");
    }
  }

  uint16_t LowerBinary(const Expr& e) {
    // Eval has already pended this node's statement and operation charge.
    if (e.binary_op == BinaryOp::kLogAnd || e.binary_op == BinaryOp::kLogOr) {
      bool is_and = e.binary_op == BinaryOp::kLogAnd;
      uint16_t a = LowerOperand(*e.operands[0]);
      uint32_t p1 = EmitCondBranch(is_and ? Op::kBrFalse : Op::kBrTrue, a);
      FreeReg(a);
      uint16_t b = LowerOperand(*e.operands[1]);
      uint32_t p2 = EmitCondBranch(is_and ? Op::kBrFalse : Op::kBrTrue, b);
      FreeReg(b);
      uint16_t dst = AllocReg();
      Insn c1 = I(Op::kConst);
      c1.a = dst;
      c1.imm = is_and ? 1 : 0;
      EmitPure(c1);
      uint32_t j = EmitFlush(I(Op::kJump));
      MarkLabel();
      uint32_t shortcut = Here();
      Insn c2 = I(Op::kConst);
      c2.a = dst;
      c2.imm = is_and ? 0 : 1;
      EmitPure(c2);
      Patch(p1, shortcut);
      Patch(p2, shortcut);
      MarkLabel();
      Patch(j, Here());
      return dst;
    }

    uint16_t a = LowerOperand(*e.operands[0]);
    uint16_t b = LowerOperand(*e.operands[1]);
    const Type* t = e.operands[0]->type;
    bool sign = t->IsInt() && t->is_signed();
    FreeReg(a);
    FreeReg(b);
    uint16_t r = AllocReg();
    Insn x = I(Op::kBinary);
    x.a = r;
    x.b = a;
    x.c = b;
    x.sub = static_cast<uint8_t>(e.binary_op);
    x.imm = TruncMask(e.type);
    x.imm2 = (sign ? 0x100u : 0u) | (t->size() * 8);
    if (e.binary_op == BinaryOp::kDiv || e.binary_op == BinaryOp::kRem) {
      x.op = Op::kDivRem;
      EmitFlush(x);  // can abort on a zero divisor
      return r;
    }
    // Right-hand constant: fold the producing kConst into a kBinaryImm. The
    // result mask moves into a 2-bit selector so imm can carry the constant.
    if (CanPop(Op::kConst, b)) {
      uint32_t mask_sel = e.type->size() == 1 ? 0u : e.type->size() == 2 ? 1u : 2u;
      Insn k = PopLast();
      x.op = Op::kBinaryImm;
      x.c = 0;
      x.imm = k.imm;
      x.imm2 |= mask_sel << 9;
    }
    EmitPure(x);
    return r;
  }

  uint16_t LowerCall(const Expr& e, bool indirect) {
    uint16_t ordr = 0;
    size_t first_arg = 0;
    if (indirect) {
      // Eval(kICall): the target is a full Eval, then the function/signature
      // checks happen before any argument is evaluated.
      uint16_t t = LowerExpr(*e.operands[0]);
      FreeReg(t);
      ordr = AllocReg();
      Insn chk = I(Op::kICallCheck);
      chk.a = ordr;
      chk.b = t;
      chk.imm = static_cast<uint32_t>(e.signature->params().size());
      EmitFlush(chk);
      first_arg = 1;
    }
    std::vector<uint16_t> argregs;
    for (size_t i = first_arg; i < e.operands.size(); ++i) {
      argregs.push_back(LowerOperand(*e.operands[i]));
    }
    OPEC_CHECK_MSG(argregs.size() <= 255, "too many call arguments in " + fn_->name());
    uint32_t pool = static_cast<uint32_t>(bc_.arg_pool.size());
    OPEC_CHECK_MSG(pool + argregs.size() <= 0xFFFF, "bytecode argument pool overflow");
    for (uint16_t r : argregs) {
      bc_.arg_pool.push_back(r);
    }
    for (uint16_t r : argregs) {
      FreeReg(r);
    }
    uint16_t dst = AllocReg();
    Insn c = I(indirect ? Op::kCallInd : Op::kCall);
    c.a = dst;
    c.b = static_cast<uint16_t>(pool);
    c.sub = static_cast<uint8_t>(argregs.size());
    c.imm2 = static_cast<uint32_t>(e.operation_entry_id + 1);
    if (indirect) {
      c.c = ordr;
    } else {
      c.imm = static_cast<uint32_t>(e.func->ordinal());
    }
    EmitFlush(c);
    if (indirect) {
      FreeReg(ordr);
    }
    return dst;
  }

  const Engine& eng_;
  const CostModel& costs_;
  BytecodeModule& bc_;

  const Function* fn_ = nullptr;
  const Engine::FrameLayout* fl_ = nullptr;
  uint32_t fuse_barrier_ = 0;  // no fusion across instructions at pc < barrier
  uint16_t next_reg_ = 0;
  std::vector<uint16_t> free_;

  std::vector<int64_t> script_;
  uint32_t pend_stmt_ = 0;
  uint64_t pend_charge_ = 0;

  struct Loop {
    uint32_t head = 0;
    std::vector<uint32_t> breaks;
  };
  std::vector<Loop> loops_;
  std::vector<uint32_t> fnend_jumps_;

  std::map<std::string, uint32_t> msg_index_;
};

}  // namespace

BytecodeModule Lowerer::Lower(const Engine& engine, const CostModel& costs) {
  BytecodeModule bc;
  const auto& fns = engine.module().functions();
  bc.funcs.resize(fns.size());
  FnLowerer fl(engine, costs, bc);
  for (const auto& f : fns) {
    fl.LowerFunction(*f);
  }
  return bc;
}

}  // namespace bytecode
}  // namespace opec_rt
