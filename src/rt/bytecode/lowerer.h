// Lowers an opec_ir::Module into the flat bytecode of bytecode.h.
//
// The lowerer mirrors the interpreter's accounting node for node (see the
// bytecode.h header comment): pure expression work becomes register
// instructions whose statement counts and cycle charges are batched into the
// next flushing instruction, together with a replay script for exact
// statement-limit aborts.

#ifndef SRC_RT_BYTECODE_LOWERER_H_
#define SRC_RT_BYTECODE_LOWERER_H_

#include "src/rt/bytecode/bytecode.h"
#include "src/rt/engine.h"

namespace opec_rt {
namespace bytecode {

class Lowerer {
 public:
  // `engine` supplies the module, frame layouts, function and global
  // addresses; `costs` is the cost model to bake into the instruction stream
  // (passed separately because the VM re-lowers when its model changes).
  static BytecodeModule Lower(const Engine& engine, const CostModel& costs);
};

}  // namespace bytecode
}  // namespace opec_rt

#endif  // SRC_RT_BYTECODE_LOWERER_H_
