// Flat register-based bytecode for the OPEC guest IR (DESIGN.md §14).
//
// The Lowerer translates an opec_ir::Module into one linear instruction
// stream; the VM executes it with direct-threaded dispatch. The design
// constraint that shapes everything here is *bit-identical accounting* with
// the tree-walking interpreter: modeled cycles, statement counts, obs events
// and fault reports must be indistinguishable between tiers.
//
// Accounting model. The interpreter charges cycles and counts statements at
// every AST node, but those accumulators are only observable at three kinds
// of points: bus accesses (devices read the cycle counter), obs-event
// emissions, and run end/abort. Between observables the order of accumulation
// is free. The lowerer therefore folds the per-node accounting of pure
// expression nodes into the *next* instruction that can reach an observable —
// any instruction that touches memory, transfers control, or can abort.
// Those "flushing" instructions carry the batched counts in their `stmt` and
// `charge` fields and apply them before doing their own work. Pure register
// instructions carry none.
//
// Statement-limit exactness. A batched increment can overshoot the statement
// limit mid-batch. Each flushing instruction also records an accounting
// script (the per-node interleaving of increments and charges, in interpreter
// order) in a cold side table; when a batch would cross the limit the VM
// replays the script node by node, reproducing the interpreter's exact cycle
// count and `limit + 1` statement count at the abort.
//
// Superinstructions. The memory opcodes fuse the interpreter's multi-step
// load/store sequence — address formation, MPU access check, bus routing,
// backing access and the memory-cycle charge — into one dispatch, backed by a
// per-instruction MPU verdict cache (see vm.h) keyed on Mpu::generation().
// The lowerer additionally peephole-fuses pure producers into their sole
// consumer at emission time: a kConst feeding a kBinary becomes kBinaryImm, a
// comparison feeding a conditional branch becomes kBrCmp*, and address
// arithmetic (kAddImm field offsets, kIndexAddr array indexing) folds into
// the indirect load/store addressing modes. Only pure instructions are ever
// fused away, so the accounting batches (and hence every modeled output) are
// unchanged; see lowerer.cc for the label-barrier rule that keeps branch
// targets valid.

#ifndef SRC_RT_BYTECODE_BYTECODE_H_
#define SRC_RT_BYTECODE_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opec_rt {
namespace bytecode {

enum class Op : uint8_t {
  // --- pure register ops (never flush, no accounting fields) ---
  kConst,      // r[a] = imm
  kMove,       // r[a] = r[b]
  kUnary,      // r[a] = unop<sub>(r[b]), result masked by imm (0xFFFFFFFF = none)
  kBinary,     // r[a] = binop<sub>(r[b], r[c]); imm = result mask,
               // imm2 = (signed << 8) | operand bit width (sign-extension)
  kBinaryImm,  // r[a] = binop<sub>(r[b], imm); imm2 = (mask-sel << 9) |
               // (signed << 8) | bits; result mask = {0xFF,0xFFFF,~0}[mask-sel]
  kLea,        // r[a] = frame_base + imm (address of a local slot)
  kAddImm,     // r[a] = r[b] + imm (field offsets, folded constants)
  kIndexAddr,  // r[a] = r[b] + r[c] * imm (array indexing; imm = element size)
  kSext,       // r[a] = sign_extend<imm2 bits>(r[b]) & imm (widening casts)
  kAndImm,     // r[a] = r[b] & imm (truncating casts)

  // --- flushing ops (apply stmt/charge, then execute; may abort) ---
  kAcct,       // accounting only (join-point flush); falls through
  kDivRem,     // like kBinary but sub ∈ {kDiv, kRem}: aborts on zero divisor
  kLoadLocal,  // r[a] = Mem[frame_base + imm]; sub = size  (verdict-cached)
  kStoreLocal, // Mem[frame_base + imm] = r[a] & imm2; sub = size
  kLoadAbs,    // r[a] = Mem[imm]; sub = size (globals)     (verdict-cached)
  kStoreAbs,   // Mem[imm] = r[a] & imm2; sub = size
  kLoadInd,    // r[a] = Mem[r[b] + imm]; sub = size        (verdict-cached)
  kStoreInd,   // Mem[r[b] + imm] = r[a] & imm2; sub = size
  kLoadIdx,    // r[a] = Mem[r[b] + r[c]*imm]; sub = size   (verdict-cached)
  kStoreIdx,   // Mem[r[b] + r[c]*imm] = r[a] & imm2; sub = size
  kJump,       // pc = imm
  kBrFalse,    // if (r[a] == 0) pc = imm
  kBrTrue,     // if (r[a] != 0) pc = imm
  kBrCmpFalse,     // if (!cmp<sub>(r[b], r[c])) pc = imm; imm2 = sign|bits
  kBrCmpTrue,      // if ( cmp<sub>(r[b], r[c])) pc = imm; imm2 = sign|bits
  kBrCmpImmFalse,  // if (!cmp<sub>(r[b], a | c<<16)) pc = imm; imm2 = sign|bits
  kBrCmpImmTrue,   // if ( cmp<sub>(r[b], a | c<<16)) pc = imm; imm2 = sign|bits
  kCall,       // r[a] = call functions[imm](arg_pool[b .. b+sub));
               // imm2 = operation_entry_id + 1 (0 = plain call)
  kCallInd,    // r[a] = call functions[r[c]](arg_pool[b .. b+sub)); imm2 as kCall
  kICallCheck, // r[a] = ordinal of FuncAt(r[b]); imm = expected param count;
               // aborts on non-function target or signature mismatch
  kRet,        // return r[a] (sub = 1) or 0 (sub = 0) from the current frame
  kAbort,      // abort the run with messages[imm]
};

const char* OpName(Op op);

// One instruction. 32 bytes, 8-aligned; the accounting script lives in the
// cold side table (BytecodeModule::acct), not here.
struct Insn {
  Op op = Op::kAbort;
  uint8_t sub = 0;      // access size / UnaryOp / BinaryOp, per opcode doc
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  uint16_t stmt = 0;    // statement increments to apply (flushing ops only)
  uint16_t pad_ = 0;
  uint32_t imm = 0;
  uint32_t imm2 = 0;
  uint64_t charge = 0;  // cycles to charge (flushing ops only)
};
static_assert(sizeof(Insn) == 32, "Insn packs to 32 bytes");

struct BytecodeFunction {
  uint32_t entry = 0;   // pc of the first instruction
  uint16_t nregs = 0;   // virtual registers used
};

// The accounting-script side table entry kinds (see header comment): -1 is
// one statement increment (with limit check); any other value is a charge.
inline constexpr int64_t kAcctStmt = -1;

struct BytecodeModule {
  std::vector<Insn> code;
  std::vector<BytecodeFunction> funcs;   // by Function::ordinal()
  std::vector<uint16_t> arg_pool;        // call argument registers
  std::vector<std::string> messages;     // kAbort reasons
  // Per-instruction accounting scripts: acct[pc] = (offset, length) into
  // acct_pool; length 0 = no script (pure op or empty batch).
  std::vector<std::pair<uint32_t, uint32_t>> acct;
  std::vector<int64_t> acct_pool;
  uint16_t max_regs = 0;                 // max nregs over all functions

  // Human-readable listing of one function (for tests and debugging).
  std::string Disassemble(int func_ordinal) const;
};

}  // namespace bytecode
}  // namespace opec_rt

#endif  // SRC_RT_BYTECODE_BYTECODE_H_
