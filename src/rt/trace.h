// Execution tracing: the reproduction's replacement for the paper's GDB
// single-stepping (Section 6.4). Records the sequence of executed functions,
// which drives the execution-time over-privilege (ET) metric and the
// compartment-switch counting of the ACES baseline.
//
// The trace is an observability sink: the engine emits kFunctionEnter events
// through the obs hub and the trace reconstructs function records from them,
// so ET/ACES metrics and the exporters consume one event source. Bind() the
// module whose ordinals the events refer to, then attach the trace for the
// duration of the run (obs::ScopedSink).

#ifndef SRC_RT_TRACE_H_
#define SRC_RT_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/ir/module.h"
#include "src/obs/event.h"

namespace opec_rt {

struct TraceEvent {
  const opec_ir::Function* fn = nullptr;
  int depth = 0;
  uint64_t cycle = 0;
  // Operation id active when the function was entered (-1 before the first
  // operation entry / in vanilla runs).
  int operation_id = -1;
};

class ExecutionTrace : public opec_obs::Sink {
 public:
  explicit ExecutionTrace(const opec_ir::Module* module = nullptr) : module_(module) {}

  // Sets the module whose function ordinals incoming events refer to.
  void Bind(const opec_ir::Module* module) { module_ = module; }

  void OnEvent(const opec_obs::Event& event) override {
    if (event.kind != opec_obs::EventKind::kFunctionEnter || module_ == nullptr) {
      return;
    }
    const auto& fns = module_->functions();
    if (event.arg0 < fns.size()) {
      RecordEntry(fns[event.arg0].get(), event.depth, event.cycle, event.operation_id);
    }
  }

  void RecordEntry(const opec_ir::Function* fn, int depth, uint64_t cycle, int operation_id) {
    events_.push_back({fn, depth, cycle, operation_id});
    // Flat membership by function ordinal: this sits on the per-function-entry
    // hot path of every traced run, where the old std::set insert dominated.
    size_t ord = static_cast<size_t>(fn->ordinal());
    if (ord >= executed_bits_.size()) {
      executed_bits_.resize(ord + 1, 0);
    }
    executed_bits_[ord] = 1;
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool WasExecuted(const opec_ir::Function* fn) const {
    size_t ord = static_cast<size_t>(fn->ordinal());
    return ord < executed_bits_.size() && executed_bits_[ord] != 0;
  }
  size_t executed_count() const {
    size_t n = 0;
    for (uint8_t b : executed_bits_) {
      n += b;
    }
    return n;
  }
  void Clear() {
    events_.clear();
    executed_bits_.clear();
  }

 private:
  const opec_ir::Module* module_ = nullptr;
  std::vector<TraceEvent> events_;
  std::vector<uint8_t> executed_bits_;  // indexed by function ordinal
};

}  // namespace opec_rt

#endif  // SRC_RT_TRACE_H_
