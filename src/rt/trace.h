// Execution tracing: the reproduction's replacement for the paper's GDB
// single-stepping (Section 6.4). Records the sequence of executed functions,
// which drives the execution-time over-privilege (ET) metric and the
// compartment-switch counting of the ACES baseline.

#ifndef SRC_RT_TRACE_H_
#define SRC_RT_TRACE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/ir/module.h"

namespace opec_rt {

struct TraceEvent {
  const opec_ir::Function* fn = nullptr;
  int depth = 0;
  uint64_t cycle = 0;
  // Operation id active when the function was entered (-1 before the first
  // operation entry / in vanilla runs).
  int operation_id = -1;
};

class ExecutionTrace {
 public:
  void RecordEntry(const opec_ir::Function* fn, int depth, uint64_t cycle, int operation_id) {
    events_.push_back({fn, depth, cycle, operation_id});
    executed_.insert(fn);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::set<const opec_ir::Function*>& executed_functions() const { return executed_; }
  bool WasExecuted(const opec_ir::Function* fn) const { return executed_.count(fn) > 0; }
  void Clear() {
    events_.clear();
    executed_.clear();
  }

 private:
  std::vector<TraceEvent> events_;
  std::set<const opec_ir::Function*> executed_;
};

}  // namespace opec_rt

#endif  // SRC_RT_TRACE_H_
