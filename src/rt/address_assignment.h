// AddressAssignment: where the image builder placed every global variable and
// the stack. The execution engine consumes this; the OPEC image builder
// (src/compiler) and the vanilla image builder produce it.

#ifndef SRC_RT_ADDRESS_ASSIGNMENT_H_
#define SRC_RT_ADDRESS_ASSIGNMENT_H_

#include <cstdint>
#include <map>

#include "src/ir/module.h"

namespace opec_rt {

struct AddressAssignment {
  // Guest address of each global variable. For OPEC images, external
  // (shared) globals map to their *public* copy; guest code reaches the
  // per-operation shadow copies through the relocation table indirection the
  // compiler rewrites into the IR, so the engine itself never needs to know
  // about shadows.
  std::map<const opec_ir::GlobalVariable*, uint32_t> global_addr;

  // Application stack: grows down from stack_top (exclusive) to stack_base.
  uint32_t stack_top = 0;
  uint32_t stack_base = 0;

  // Heap section (optional; 0 size when the program has no heap).
  uint32_t heap_base = 0;
  uint32_t heap_size = 0;

  uint32_t AddrOf(const opec_ir::GlobalVariable* gv) const {
    auto it = global_addr.find(gv);
    return it == global_addr.end() ? 0 : it->second;
  }
};

}  // namespace opec_rt

#endif  // SRC_RT_ADDRESS_ASSIGNMENT_H_
