#include "src/snapshot/probe.h"

#include "src/hw/machine.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"
#include "src/support/check.h"

namespace opec_snapshot {

RoundTripProbe::RoundTripProbe(opec_hw::Machine& machine, opec_monitor::Monitor* monitor,
                               opec_rt::Engine* engine)
    : machine_(machine), monitor_(monitor), engine_(engine) {}

void RoundTripProbe::OnProgramStart(opec_rt::EngineControl* engine) {
  if (monitor_ != nullptr) {
    monitor_->OnProgramStart(engine);
  }
  // Baseline after monitor init: the post-boot state warm-start campaigns
  // fork from; mid-run probes delta against it.
  baseline_ = Snapshot::Capture(machine_, monitor_, engine_);
  have_baseline_ = true;
  Probe("program-start", -1);
}

void RoundTripProbe::OnProgramEnd() {
  Probe("program-end", -1);
  if (monitor_ != nullptr) {
    monitor_->OnProgramEnd();
  }
}

bool RoundTripProbe::OnOperationEnter(int op_id, std::vector<uint32_t>& args) {
  bool ok = monitor_ == nullptr || monitor_->OnOperationEnter(op_id, args);
  // Probe after the switch: the monitor's context stack, SRD and relocations
  // are at their most interesting right here.
  Probe("operation-enter", op_id);
  return ok;
}

bool RoundTripProbe::OnOperationExit(int op_id) {
  bool ok = monitor_ == nullptr || monitor_->OnOperationExit(op_id);
  Probe("operation-exit", op_id);
  return ok;
}

bool RoundTripProbe::OnFunctionCall(const opec_ir::Function* callee) {
  return monitor_ == nullptr || monitor_->OnFunctionCall(callee);
}

bool RoundTripProbe::OnFunctionReturn(const opec_ir::Function* callee) {
  return monitor_ == nullptr || monitor_->OnFunctionReturn(callee);
}

bool RoundTripProbe::OnMemFault(uint32_t addr, opec_hw::AccessKind kind) {
  return monitor_ != nullptr && monitor_->OnMemFault(addr, kind);
}

bool RoundTripProbe::OnBusFault(uint32_t addr, uint32_t size, opec_hw::AccessKind kind,
                                uint32_t write_value, uint32_t* read_value) {
  return monitor_ != nullptr &&
         monitor_->OnBusFault(addr, size, kind, write_value, read_value);
}

void RoundTripProbe::Probe(const char* where, int op_id) {
  ++probes_;
  std::string at = std::string(where) + " op=" + std::to_string(op_id) +
                   " cycle=" + std::to_string(machine_.cycles());

  Snapshot before = Snapshot::Capture(machine_, monitor_, engine_);
  uint64_t want = before.Digest();

  // Full round trip through the wire format, then restore in place.
  std::vector<uint8_t> bytes = before.Serialize();
  full_bytes_ += bytes.size();
  Snapshot reloaded = Snapshot::Deserialize(bytes);
  reloaded.Restore(machine_, monitor_, engine_);

  Snapshot after = Snapshot::Capture(machine_, monitor_, engine_);
  if (after.Digest() != want) {
    errors_.push_back("round-trip digest mismatch at " + at);
  }

  // Delta round trip against the program-start baseline.
  if (have_baseline_) {
    SnapshotDelta delta = before.DeltaFrom(baseline_);
    delta_bytes_ += delta.PayloadBytes();
    SnapshotDelta rewire = SnapshotDelta::Deserialize(delta.Serialize());
    Snapshot rebuilt = Snapshot::ApplyDelta(baseline_, rewire);
    if (rebuilt.Digest() != want) {
      errors_.push_back("delta round-trip digest mismatch at " + at);
    }
  }
}

}  // namespace opec_snapshot
