// RoundTripProbe: a Supervisor decorator that exercises capture → serialize →
// deserialize → restore → recapture at every SVC boundary (operation enter and
// exit), in place, while the run is live. The engine's host-recursive call
// stack never unwinds, so this is the strongest restore check the interpreter
// architecture allows: if any component's SaveState/LoadState pair drops,
// reorders or mangles a field, the recaptured digest diverges immediately —
// and because the machine really was torn down and rebuilt from bytes, a bug
// would also perturb the rest of the run, which the fuzz harness's fifth
// oracle (probed run vs plain run observation compare) detects.
//
// Each probe also round-trips a delta against the program-start baseline
// (DeltaFrom → Serialize → Deserialize → ApplyDelta), covering the warm-start
// campaign path's delta mode on real mid-run states.

#ifndef SRC_SNAPSHOT_PROBE_H_
#define SRC_SNAPSHOT_PROBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/rt/supervisor.h"
#include "src/snapshot/snapshot.h"

namespace opec_hw {
class Machine;
}
namespace opec_monitor {
class Monitor;
}
namespace opec_rt {
class Engine;
}

namespace opec_snapshot {

class RoundTripProbe : public opec_rt::Supervisor {
 public:
  // `monitor` may be null (vanilla mode: no supervisor to wrap, machine-only
  // snapshots). The monitor doubles as the wrapped supervisor.
  RoundTripProbe(opec_hw::Machine& machine, opec_monitor::Monitor* monitor,
                 opec_rt::Engine* engine);

  // --- opec_rt::Supervisor (every hook forwards to the wrapped monitor) ---
  void OnProgramStart(opec_rt::EngineControl* engine) override;
  void OnProgramEnd() override;
  bool OnOperationEnter(int op_id, std::vector<uint32_t>& args) override;
  bool OnOperationExit(int op_id) override;
  bool OnFunctionCall(const opec_ir::Function* callee) override;
  bool OnFunctionReturn(const opec_ir::Function* callee) override;
  bool OnMemFault(uint32_t addr, opec_hw::AccessKind kind) override;
  bool OnBusFault(uint32_t addr, uint32_t size, opec_hw::AccessKind kind, uint32_t write_value,
                  uint32_t* read_value) override;

  // Results.
  uint64_t probes() const { return probes_; }
  const std::vector<std::string>& errors() const { return errors_; }
  // Cumulative delta payload bytes vs. cumulative full-image bytes — how much
  // the delta encoding saves on real mid-run states.
  uint64_t delta_bytes() const { return delta_bytes_; }
  uint64_t full_bytes() const { return full_bytes_; }

 private:
  void Probe(const char* where, int op_id);

  opec_hw::Machine& machine_;
  opec_monitor::Monitor* monitor_;
  opec_rt::Engine* engine_;

  bool have_baseline_ = false;
  Snapshot baseline_;

  uint64_t probes_ = 0;
  uint64_t delta_bytes_ = 0;
  uint64_t full_bytes_ = 0;
  std::vector<std::string> errors_;
};

}  // namespace opec_snapshot

#endif  // SRC_SNAPSHOT_PROBE_H_
