// Machine snapshot/restore (DESIGN.md §13).
//
// A Snapshot is a versioned container of named sections, each holding one
// component's serialized state in the src/hw/state_io.h wire format:
//
//   "machine"  — cycles, privilege, MPU region registers, bus/peripherals
//   "monitor"  — operation context stack, SRD, round-robin cursor, stats
//   "engine"   — SP, depth, active operation, statement + entry counters
//
// Sections are tagged by name so a reader can skip or reject components it
// does not know; field layout *inside* a section is position-based and owned
// by that component's SaveState/LoadState pair. The container stamps a magic
// and a format version — bumping any section's field layout bumps kVersion.
//
// Restore() only makes sense into objects of the same provenance: the same
// board (flash/SRAM sizes checked by Bus::LoadState), the same module
// (entry-count table checked by Engine::LoadState), the same policy
// (the monitor's policy is immutable compile output and is not serialized).
// Cross-provenance restores fail an OPEC_CHECK rather than corrupting state.
//
// Delta mode: DeltaFrom(base) encodes this snapshot as a chunked binary diff
// against a baseline's serialized bytes — the warm-start campaign path stores
// one post-boot baseline per (app, mode) and per-job crash states as small
// deltas instead of megabyte full images.

#ifndef SRC_SNAPSHOT_SNAPSHOT_H_
#define SRC_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/state_io.h"

namespace opec_hw {
class Machine;
}
namespace opec_monitor {
class Monitor;
}
namespace opec_rt {
class Engine;
}

namespace opec_snapshot {

// Chunked binary diff between two serialized snapshots. Self-describing:
// carries the base digest (so ApplyTo can detect a wrong baseline) and the
// target size (deltas may grow or shrink the image).
struct SnapshotDelta {
  static constexpr uint32_t kChunk = 64;  // diff granularity, bytes

  uint64_t base_digest = 0;    // Fnv1a64 of the base serialized bytes
  uint64_t target_size = 0;    // serialized size of the target snapshot
  uint64_t target_digest = 0;  // Fnv1a64 of the target serialized bytes
  struct Patch {
    uint64_t offset = 0;
    std::vector<uint8_t> bytes;
  };
  std::vector<Patch> patches;

  // Total patch payload bytes — the "size" of the delta for accounting.
  size_t PayloadBytes() const;

  std::vector<uint8_t> Serialize() const;
  static SnapshotDelta Deserialize(const std::vector<uint8_t>& bytes);
};

class Snapshot {
 public:
  static constexpr uint32_t kMagic = 0x4E53504Fu;  // "OPSN" little-endian
  static constexpr uint32_t kVersion = 1;

  // Section names (stable identifiers, part of the wire format).
  static constexpr const char* kMachineSection = "machine";
  static constexpr const char* kMonitorSection = "monitor";
  static constexpr const char* kEngineSection = "engine";

  Snapshot() = default;

  // Captures the machine and, when non-null, the monitor bookkeeping and the
  // engine register state. Pass monitor/engine only at quiescent points (see
  // Engine::SaveState).
  static Snapshot Capture(const opec_hw::Machine& machine,
                          const opec_monitor::Monitor* monitor = nullptr,
                          const opec_rt::Engine* engine = nullptr);

  // Restores captured sections into the given objects. A section captured but
  // passed as null here is skipped; a null-captured section with a non-null
  // target is a hard error (the target would keep stale state silently).
  void Restore(opec_hw::Machine& machine, opec_monitor::Monitor* monitor = nullptr,
               opec_rt::Engine* engine = nullptr) const;

  // Fast machine restore for the warm-start path (DESIGN.md §13.3): restores
  // flash/SRAM through the bus's dirty-page baseline instead of copying the
  // full memory images out of the snapshot, then replays the (small) register
  // state. Only valid when Bus::CaptureMemoryBaseline() was taken at the same
  // quiescent point this snapshot was captured at — i.e. baseline memory and
  // snapshot memory are the same image. Registers/devices restore exactly as
  // Restore() would.
  void RestoreFast(opec_hw::Machine& machine) const;

  bool HasSection(const std::string& name) const;
  size_t SectionCount() const { return sections_.size(); }

  // Container wire format: magic, version, section count, then per section
  // name + length-prefixed payload.
  std::vector<uint8_t> Serialize() const;
  static Snapshot Deserialize(const uint8_t* data, size_t size);
  static Snapshot Deserialize(const std::vector<uint8_t>& bytes) {
    return Deserialize(bytes.data(), bytes.size());
  }

  // FNV-1a 64 of Serialize() — the snapshot's identity. Two snapshots with
  // equal digests restore to indistinguishable states.
  uint64_t Digest() const;

  // Delta mode (see header comment).
  SnapshotDelta DeltaFrom(const Snapshot& base) const;
  static Snapshot ApplyDelta(const Snapshot& base, const SnapshotDelta& delta);

  // File I/O (the container wire format, verbatim). WriteFile is atomic-ish:
  // writes `path`.tmp then renames, so concurrent readers never see a torn
  // snapshot. Failures are OPEC_CHECK errors.
  void WriteFile(const std::string& path) const;
  static Snapshot ReadFile(const std::string& path);

 private:
  struct Section {
    std::string name;
    std::vector<uint8_t> payload;
  };

  const Section* Find(const std::string& name) const;

  std::vector<Section> sections_;
};

}  // namespace opec_snapshot

#endif  // SRC_SNAPSHOT_SNAPSHOT_H_
