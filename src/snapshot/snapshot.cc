#include "src/snapshot/snapshot.h"

#include <cstdio>
#include <cstring>

#include "src/hw/machine.h"
#include "src/monitor/monitor.h"
#include "src/rt/engine.h"
#include "src/support/check.h"

namespace opec_snapshot {

using opec_hw::StateReader;
using opec_hw::StateWriter;

// --- SnapshotDelta ---

size_t SnapshotDelta::PayloadBytes() const {
  size_t n = 0;
  for (const Patch& p : patches) {
    n += p.bytes.size();
  }
  return n;
}

std::vector<uint8_t> SnapshotDelta::Serialize() const {
  StateWriter w;
  w.U64(base_digest);
  w.U64(target_size);
  w.U64(target_digest);
  w.U64(patches.size());
  for (const Patch& p : patches) {
    w.U64(p.offset);
    w.Blob(p.bytes);
  }
  return w.Take();
}

SnapshotDelta SnapshotDelta::Deserialize(const std::vector<uint8_t>& bytes) {
  StateReader r(bytes);
  SnapshotDelta d;
  d.base_digest = r.U64();
  d.target_size = r.U64();
  d.target_digest = r.U64();
  uint64_t n = r.U64();
  d.patches.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Patch p;
    p.offset = r.U64();
    p.bytes = r.Blob();
    d.patches.push_back(std::move(p));
  }
  OPEC_CHECK_MSG(r.AtEnd(), "snapshot delta has trailing bytes");
  return d;
}

// --- Snapshot ---

Snapshot Snapshot::Capture(const opec_hw::Machine& machine,
                           const opec_monitor::Monitor* monitor,
                           const opec_rt::Engine* engine) {
  Snapshot s;
  {
    StateWriter w;
    machine.SaveState(w);
    s.sections_.push_back({kMachineSection, w.Take()});
  }
  if (monitor != nullptr) {
    StateWriter w;
    monitor->SaveState(w);
    s.sections_.push_back({kMonitorSection, w.Take()});
  }
  if (engine != nullptr) {
    StateWriter w;
    engine->SaveState(w);
    s.sections_.push_back({kEngineSection, w.Take()});
  }
  return s;
}

void Snapshot::Restore(opec_hw::Machine& machine, opec_monitor::Monitor* monitor,
                       opec_rt::Engine* engine) const {
  const Section* m = Find(kMachineSection);
  OPEC_CHECK_MSG(m != nullptr, "snapshot has no machine section");
  {
    StateReader r(m->payload);
    machine.LoadState(r);
    OPEC_CHECK_MSG(r.AtEnd(), "machine section has trailing bytes");
  }
  if (monitor != nullptr) {
    const Section* sec = Find(kMonitorSection);
    OPEC_CHECK_MSG(sec != nullptr,
                   "restore target has a monitor but the snapshot captured none");
    StateReader r(sec->payload);
    monitor->LoadState(r);
    OPEC_CHECK_MSG(r.AtEnd(), "monitor section has trailing bytes");
  }
  if (engine != nullptr) {
    const Section* sec = Find(kEngineSection);
    OPEC_CHECK_MSG(sec != nullptr,
                   "restore target has an engine but the snapshot captured none");
    StateReader r(sec->payload);
    engine->LoadState(r);
    OPEC_CHECK_MSG(r.AtEnd(), "engine section has trailing bytes");
  }
}

void Snapshot::RestoreFast(opec_hw::Machine& machine) const {
  const Section* m = Find(kMachineSection);
  OPEC_CHECK_MSG(m != nullptr, "snapshot has no machine section");
  machine.bus().RestoreMemoryBaseline();
  StateReader r(m->payload);
  machine.LoadState(r, /*skip_memory=*/true);
  OPEC_CHECK_MSG(r.AtEnd(), "machine section has trailing bytes");
}

bool Snapshot::HasSection(const std::string& name) const { return Find(name) != nullptr; }

const Snapshot::Section* Snapshot::Find(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<uint8_t> Snapshot::Serialize() const {
  StateWriter w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(sections_.size());
  for (const Section& s : sections_) {
    w.Str(s.name);
    w.Blob(s.payload);
  }
  return w.Take();
}

Snapshot Snapshot::Deserialize(const uint8_t* data, size_t size) {
  StateReader r(data, size);
  OPEC_CHECK_MSG(r.U32() == kMagic, "not a snapshot (bad magic)");
  uint32_t version = r.U32();
  OPEC_CHECK_MSG(version == kVersion,
                 "unsupported snapshot version " + std::to_string(version) + " (expected " +
                     std::to_string(kVersion) + ")");
  Snapshot s;
  uint64_t n = r.U64();
  s.sections_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Section sec;
    sec.name = r.Str();
    sec.payload = r.Blob();
    s.sections_.push_back(std::move(sec));
  }
  OPEC_CHECK_MSG(r.AtEnd(), "snapshot has trailing bytes");
  return s;
}

uint64_t Snapshot::Digest() const {
  std::vector<uint8_t> bytes = Serialize();
  return opec_hw::Fnv1a64(bytes.data(), bytes.size());
}

SnapshotDelta Snapshot::DeltaFrom(const Snapshot& base) const {
  std::vector<uint8_t> from = base.Serialize();
  std::vector<uint8_t> to = Serialize();

  SnapshotDelta d;
  d.base_digest = opec_hw::Fnv1a64(from.data(), from.size());
  d.target_size = to.size();
  d.target_digest = opec_hw::Fnv1a64(to.data(), to.size());

  // Chunk-by-chunk compare over the common prefix; everything past the base's
  // end (when the target grew) is one final patch. Adjacent differing chunks
  // coalesce into a single patch.
  size_t common = std::min(from.size(), to.size());
  size_t i = 0;
  while (i < common) {
    size_t len = std::min<size_t>(SnapshotDelta::kChunk, common - i);
    if (std::memcmp(from.data() + i, to.data() + i, len) != 0) {
      size_t start = i;
      while (i < common) {
        size_t l = std::min<size_t>(SnapshotDelta::kChunk, common - i);
        if (std::memcmp(from.data() + i, to.data() + i, l) == 0) {
          break;
        }
        i += l;
      }
      d.patches.push_back({start, {to.begin() + static_cast<ptrdiff_t>(start),
                                   to.begin() + static_cast<ptrdiff_t>(i)}});
    } else {
      i += len;
    }
  }
  if (to.size() > common) {
    d.patches.push_back(
        {common, {to.begin() + static_cast<ptrdiff_t>(common), to.end()}});
  }
  return d;
}

Snapshot Snapshot::ApplyDelta(const Snapshot& base, const SnapshotDelta& delta) {
  std::vector<uint8_t> bytes = base.Serialize();
  OPEC_CHECK_MSG(opec_hw::Fnv1a64(bytes.data(), bytes.size()) == delta.base_digest,
                 "snapshot delta applied to the wrong baseline");
  bytes.resize(delta.target_size);
  for (const SnapshotDelta::Patch& p : delta.patches) {
    OPEC_CHECK_MSG(p.offset + p.bytes.size() <= bytes.size(),
                   "snapshot delta patch out of range");
    std::memcpy(bytes.data() + p.offset, p.bytes.data(), p.bytes.size());
  }
  OPEC_CHECK_MSG(opec_hw::Fnv1a64(bytes.data(), bytes.size()) == delta.target_digest,
                 "snapshot delta reconstruction digest mismatch");
  return Deserialize(bytes);
}

void Snapshot::WriteFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  OPEC_CHECK_MSG(f != nullptr, "cannot open snapshot file for writing: " + tmp);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_err = std::fclose(f);
  OPEC_CHECK_MSG(written == bytes.size() && close_err == 0,
                 "short write to snapshot file: " + tmp);
  OPEC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot rename snapshot file into place: " + path);
}

Snapshot Snapshot::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  OPEC_CHECK_MSG(f != nullptr, "cannot open snapshot file: " + path);
  std::vector<uint8_t> bytes;
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return Deserialize(bytes);
}

}  // namespace opec_snapshot
