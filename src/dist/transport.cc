#include "src/dist/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace opec_dist {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

// Runs read()/write() with O_NONBLOCK temporarily set — the fallback for
// stream fds that reject send()/recv() with ENOTSOCK (plain pipes).
ssize_t NonBlockingFdIo(int fd, void* buf, size_t n, bool is_read) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return -1;
  }
  bool toggle = (flags & O_NONBLOCK) == 0;
  if (toggle) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  ssize_t rc = is_read ? ::read(fd, buf, n) : ::write(fd, buf, n);
  int saved_errno = errno;
  if (toggle) {
    ::fcntl(fd, F_SETFL, flags);
  }
  errno = saved_errno;
  return rc;
}

}  // namespace

FdTransport::FdTransport(int fd, uint32_t max_payload)
    : fd_(fd), max_payload_(max_payload) {}

FdTransport::~FdTransport() { Close(); }

void FdTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FdTransport::WriteAll(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Pipes from socketpair(AF_UNIX) accept send(); plain fds would need
      // write() — keep a fallback so FdTransport works on any stream fd.
      if (errno == ENOTSOCK) {
        ssize_t pw = ::write(fd_, data + off, n - off);
        if (pw < 0) {
          if (errno == EINTR) {
            continue;
          }
          error_ = std::string("write: ") + std::strerror(errno);
          return false;
        }
        off += static_cast<size_t>(pw);
        continue;
      }
      error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

int FdTransport::SendSome(const uint8_t* data, size_t n) {
  if (fd_ < 0) {
    error_ = "transport closed";
    return -1;
  }
  if (n == 0) {
    return 0;
  }
  for (;;) {
    ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w >= 0) {
      return static_cast<int>(w);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return 0;
    }
    if (errno == ENOTSOCK) {
      ssize_t pw = NonBlockingFdIo(fd_, const_cast<uint8_t*>(data), n, /*is_read=*/false);
      if (pw >= 0) {
        return static_cast<int>(pw);
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return 0;
      }
      error_ = std::string("write: ") + std::strerror(errno);
      return -1;
    }
    error_ = std::string("send: ") + std::strerror(errno);
    return -1;
  }
}

int FdTransport::FillBuffer(bool blocking) {
  // Compact the consumed prefix before growing the buffer.
  if (rpos_ > 0 && (rpos_ == rbuf_.size() || rpos_ >= kReadChunk)) {
    rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<ptrdiff_t>(rpos_));
    rpos_ = 0;
  }
  uint8_t tmp[kReadChunk];
  for (;;) {
    ssize_t r = ::recv(fd_, tmp, sizeof(tmp), blocking ? 0 : MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return -2;
      }
      if (errno == ENOTSOCK) {
        ssize_t pr = blocking ? ::read(fd_, tmp, sizeof(tmp))
                              : NonBlockingFdIo(fd_, tmp, sizeof(tmp), /*is_read=*/true);
        if (pr < 0) {
          if (errno == EINTR) {
            continue;
          }
          if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            return -2;
          }
          error_ = std::string("read: ") + std::strerror(errno);
          return -1;
        }
        if (pr == 0) {
          return 0;
        }
        rbuf_.insert(rbuf_.end(), tmp, tmp + pr);
        return 1;
      }
      error_ = std::string("recv: ") + std::strerror(errno);
      return -1;
    }
    if (r == 0) {
      return 0;
    }
    rbuf_.insert(rbuf_.end(), tmp, tmp + r);
    return 1;
  }
}

int FdTransport::TryExtract(Frame* frame) {
  size_t avail = rbuf_.size() - rpos_;
  if (avail < 5) {
    return 0;
  }
  const uint8_t* h = rbuf_.data() + rpos_;
  uint32_t len = static_cast<uint32_t>(h[0]) | (static_cast<uint32_t>(h[1]) << 8) |
                 (static_cast<uint32_t>(h[2]) << 16) | (static_cast<uint32_t>(h[3]) << 24);
  if (len > max_payload_) {
    // Reject before allocating: a corrupt length prefix must not drive an
    // allocation of its own claimed size.
    error_ = "frame payload too large";
    return -1;
  }
  if (h[4] > static_cast<uint8_t>(FrameType::kArtifactChunk)) {
    error_ = "unknown frame type";
    return -1;
  }
  if (avail < 5 + static_cast<size_t>(len)) {
    return 0;
  }
  frame->type = static_cast<FrameType>(h[4]);
  frame->payload.assign(h + 5, h + 5 + len);
  rpos_ += 5 + static_cast<size_t>(len);
  return 1;
}

Transport::Status FdTransport::Send(const Frame& frame) {
  if (fd_ < 0) {
    error_ = "transport closed";
    return Status::kError;
  }
  if (frame.payload.size() > max_payload_) {
    error_ = "frame payload too large";
    return Status::kError;
  }
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  uint8_t header[5];
  header[0] = static_cast<uint8_t>(len);
  header[1] = static_cast<uint8_t>(len >> 8);
  header[2] = static_cast<uint8_t>(len >> 16);
  header[3] = static_cast<uint8_t>(len >> 24);
  header[4] = static_cast<uint8_t>(frame.type);
  if (!WriteAll(header, sizeof(header))) {
    return Status::kError;
  }
  if (len > 0 && !WriteAll(frame.payload.data(), frame.payload.size())) {
    return Status::kError;
  }
  return Status::kOk;
}

Transport::Status FdTransport::Recv(Frame* frame) {
  if (fd_ < 0) {
    error_ = "transport closed";
    return Status::kError;
  }
  for (;;) {
    int te = TryExtract(frame);
    if (te == 1) {
      return Status::kOk;
    }
    if (te < 0) {
      return Status::kError;
    }
    int fill = FillBuffer(/*blocking=*/true);
    if (fill == 0) {
      if (rbuf_.size() == rpos_) {
        return Status::kEof;  // clean EOF at a frame boundary
      }
      error_ = "truncated frame";
      return Status::kError;
    }
    if (fill < 0) {
      return Status::kError;
    }
  }
}

Transport::Status FdTransport::RecvAsync(Frame* frame, bool* got) {
  *got = false;
  if (fd_ < 0) {
    error_ = "transport closed";
    return Status::kError;
  }
  for (;;) {
    int te = TryExtract(frame);
    if (te == 1) {
      *got = true;
      return Status::kOk;
    }
    if (te < 0) {
      return Status::kError;
    }
    int fill = FillBuffer(/*blocking=*/false);
    if (fill == -2) {
      return Status::kOk;  // no complete frame yet
    }
    if (fill == 0) {
      if (rbuf_.size() == rpos_) {
        return Status::kEof;
      }
      error_ = "truncated frame";
      return Status::kError;
    }
    if (fill < 0) {
      return Status::kError;
    }
  }
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> LocalPair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return {nullptr, nullptr};
  }
  return {std::make_unique<FdTransport>(fds[0]), std::make_unique<FdTransport>(fds[1])};
}

bool ParseCidrList(const std::string& list, std::vector<Cidr>* out, std::string* error) {
  out->clear();
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string entry = comma == std::string::npos ? list.substr(start)
                                                   : list.substr(start, comma - start);
    if (entry.empty()) {
      *error = "empty CIDR entry in '" + list + "'";
      return false;
    }
    std::string addr = entry;
    int bits = 32;
    size_t slash = entry.find('/');
    if (slash != std::string::npos) {
      addr = entry.substr(0, slash);
      std::string bits_str = entry.substr(slash + 1);
      if (bits_str.empty() || bits_str.size() > 2 ||
          bits_str.find_first_not_of("0123456789") != std::string::npos) {
        *error = "bad prefix length in '" + entry + "'";
        return false;
      }
      bits = std::atoi(bits_str.c_str());
      if (bits < 0 || bits > 32) {
        *error = "bad prefix length in '" + entry + "'";
        return false;
      }
    }
    in_addr parsed;
    if (::inet_pton(AF_INET, addr.c_str(), &parsed) != 1) {
      *error = "bad IPv4 address in '" + entry + "'";
      return false;
    }
    Cidr c;
    c.addr = ntohl(parsed.s_addr);
    c.bits = bits;
    out->push_back(c);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return true;
}

bool CidrMatch(const std::vector<Cidr>& allow, uint32_t ip) {
  if (allow.empty()) {
    return true;
  }
  for (const Cidr& c : allow) {
    uint32_t mask = c.bits == 0 ? 0 : ~uint32_t{0} << (32 - c.bits);
    if ((ip & mask) == (c.addr & mask)) {
      return true;
    }
  }
  return false;
}

int TcpListen(uint16_t port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

uint16_t TcpBoundPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int TcpAccept(int listen_fd, std::string* error, uint32_t* peer_ip) {
  for (;;) {
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    std::memset(&addr, 0, sizeof(addr));
    int fd = ::accept(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (peer_ip != nullptr) {
        *peer_ip = addr.sin_family == AF_INET ? ntohl(addr.sin_addr.s_addr) : 0;
      }
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    *error = std::string("accept: ") + std::strerror(errno);
    return -1;
  }
}

int TcpConnect(const std::string& host_port, std::string* error) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 >= host_port.size()) {
    *error = "expected host:port, got '" + host_port + "'";
    return -1;
  }
  std::string host = host_port.substr(0, colon);
  std::string port = host_port.substr(colon + 1);
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    *error = std::string("resolve '") + host_port + "': " + ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    *error = "connect '" + host_port + "': " + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace opec_dist
