#include "src/dist/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace opec_dist {

FdTransport::FdTransport(int fd, uint32_t max_payload)
    : fd_(fd), max_payload_(max_payload) {}

FdTransport::~FdTransport() { Close(); }

void FdTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FdTransport::WriteAll(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Pipes from socketpair(AF_UNIX) accept send(); plain fds would need
      // write() — keep a fallback so FdTransport works on any stream fd.
      if (errno == ENOTSOCK) {
        ssize_t pw = ::write(fd_, data + off, n - off);
        if (pw < 0) {
          if (errno == EINTR) {
            continue;
          }
          error_ = std::string("write: ") + std::strerror(errno);
          return false;
        }
        off += static_cast<size_t>(pw);
        continue;
      }
      error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

int FdTransport::ReadAll(uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::recv(fd_, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == ENOTSOCK) {
        ssize_t pr = ::read(fd_, data + off, n - off);
        if (pr < 0) {
          if (errno == EINTR) {
            continue;
          }
          error_ = std::string("read: ") + std::strerror(errno);
          return -1;
        }
        if (pr == 0) {
          if (off == 0) {
            return 0;
          }
          error_ = "truncated frame";
          return -1;
        }
        off += static_cast<size_t>(pr);
        continue;
      }
      error_ = std::string("recv: ") + std::strerror(errno);
      return -1;
    }
    if (r == 0) {
      if (off == 0) {
        return 0;  // clean EOF at a frame boundary
      }
      error_ = "truncated frame";
      return -1;
    }
    off += static_cast<size_t>(r);
  }
  return 1;
}

Transport::Status FdTransport::Send(const Frame& frame) {
  if (fd_ < 0) {
    error_ = "transport closed";
    return Status::kError;
  }
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  if (frame.payload.size() > max_payload_) {
    error_ = "frame payload too large";
    return Status::kError;
  }
  uint8_t header[5];
  header[0] = static_cast<uint8_t>(len);
  header[1] = static_cast<uint8_t>(len >> 8);
  header[2] = static_cast<uint8_t>(len >> 16);
  header[3] = static_cast<uint8_t>(len >> 24);
  header[4] = static_cast<uint8_t>(frame.type);
  if (!WriteAll(header, sizeof(header))) {
    return Status::kError;
  }
  if (len > 0 && !WriteAll(frame.payload.data(), frame.payload.size())) {
    return Status::kError;
  }
  return Status::kOk;
}

Transport::Status FdTransport::Recv(Frame* frame) {
  if (fd_ < 0) {
    error_ = "transport closed";
    return Status::kError;
  }
  uint8_t header[5];
  int got = ReadAll(header, sizeof(header));
  if (got == 0) {
    return Status::kEof;
  }
  if (got < 0) {
    return Status::kError;
  }
  uint32_t len = static_cast<uint32_t>(header[0]) | (static_cast<uint32_t>(header[1]) << 8) |
                 (static_cast<uint32_t>(header[2]) << 16) |
                 (static_cast<uint32_t>(header[3]) << 24);
  if (len > max_payload_) {
    // Reject before allocating: a corrupt length prefix must not drive an
    // allocation of its own claimed size.
    error_ = "frame payload too large";
    return Status::kError;
  }
  if (header[4] > static_cast<uint8_t>(FrameType::kArtifactAnnounce)) {
    error_ = "unknown frame type";
    return Status::kError;
  }
  frame->type = static_cast<FrameType>(header[4]);
  frame->payload.resize(len);
  if (len > 0 && ReadAll(frame->payload.data(), len) <= 0) {
    if (error_.empty()) {
      error_ = "truncated frame";
    }
    return Status::kError;
  }
  return Status::kOk;
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> LocalPair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return {nullptr, nullptr};
  }
  return {std::make_unique<FdTransport>(fds[0]), std::make_unique<FdTransport>(fds[1])};
}

int TcpListen(uint16_t port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int TcpAccept(int listen_fd, std::string* error) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    *error = std::string("accept: ") + std::strerror(errno);
    return -1;
  }
}

int TcpConnect(const std::string& host_port, std::string* error) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 >= host_port.size()) {
    *error = "expected host:port, got '" + host_port + "'";
    return -1;
  }
  std::string host = host_port.substr(0, colon);
  std::string port = host_port.substr(colon + 1);
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    *error = std::string("resolve '") + host_port + "': " + ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    *error = "connect '" + host_port + "': " + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace opec_dist
