// Wire protocol of the distributed campaign service (DESIGN.md §16).
//
// Framing: every message on a transport is one length-prefixed binary frame
//
//   u32 payload_len (LE) | u8 type | payload[payload_len]
//
// `payload_len` counts only the payload bytes (not the length field or the
// type byte) and is capped at kMaxFramePayload — a corrupt length prefix is
// rejected before any allocation. Payloads are serialized with the snapshot
// subsystem's StateWriter/StateReader (src/hw/state_io.h): little-endian,
// position-based, bounds-checked. A truncated payload is a clean decode
// error, never a hang or an over-read.
//
// The protocol is deliberately small and worker-driven: workers request work
// units, the server leases them out, results flow back keyed by job index.
// Artifact messages implement the content-addressed cache handshake — keys
// map to Fnv1a64 digests server-side, bytes live in per-host cache
// directories and can be streamed through the server for cache-cold hosts.
//
// Versioning: the hello frame leads with `u32 version` so the layout of the
// rest of the handshake can evolve. Version 1 is the original loopback
// protocol (version + worker name). Version 2 adds fleet hardening: a shared
// auth token (checked before the server sends a single byte), a stable
// worker id plus resume cursor for reconnect-and-resume, and chunked
// artifact streaming (kArtifactChunk) bounded by the threshold the server
// advertises in its welcome. A server negotiates
// `min(kProtocolVersion, hello.version)` and refuses peers whose
// `min_version` it cannot meet; v1 hellos keep working (with empty token —
// refused when the server requires one).

#ifndef SRC_DIST_WIRE_H_
#define SRC_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/fuzz/oracles.h"
#include "src/hw/state_io.h"
#include "src/rt/bytecode/bytecode.h"
#include "src/rt/engine.h"

namespace opec_dist {

inline constexpr uint32_t kProtocolVersion = 2;
inline constexpr uint32_t kMinProtocolVersion = 1;

// "No unit" sentinel for HelloMsg::resume_unit.
inline constexpr uint64_t kNoResumeUnit = ~0ull;

// Frame size cap. The largest real payloads are boot-snapshot artifacts
// (machine memory images, single-digit MiB); the cap is a defense against
// corrupt length prefixes, not a tuning knob.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

// Artifact payloads above this stream as kArtifactChunk frames on v2
// connections, so one snapshot-sized reply never monopolizes a link.
inline constexpr uint32_t kDefaultChunkThreshold = 1u << 20;

enum class FrameType : uint8_t {
  // Handshake.
  kHello,    // worker -> server: protocol version, auth token, worker id
  kWelcome,  // server -> worker: negotiated version, sweep kind, environment
  // Work loop.
  kRequestWork,  // worker -> server
  kAssign,       // server -> worker: one leased unit of resolved jobs
  kNoWork,       // server -> worker: queue momentarily empty, retry after hint
  kResult,       // worker -> server: completed job results + cache counters
  kShutdown,     // server -> worker: sweep complete, disconnect
  // Content-addressed artifact cache.
  kArtifactQuery,     // worker -> server: key -> digest?
  kArtifactInfo,      // server -> worker: key, known?, digest, size
  kArtifactFetch,     // worker -> server: digest -> bytes?
  kArtifactData,      // server -> worker: digest, found?, bytes
  kArtifactAnnounce,  // worker -> server: key, digest, optional bytes upload
  kArtifactChunk,     // server -> worker: one bounded slice of a big artifact
};

const char* FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<uint8_t> payload;
};

// The exact byte sequence Transport::Send puts on the wire for `frame`
// (5-byte header + payload). Shared by the server's outbox and by tests that
// need to truncate frames at arbitrary byte offsets.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// What a campaignd instance is sweeping: a campaign job matrix or a
// differential-fuzz seed range. The unit/lease machinery is shared.
enum class SweepKind : uint8_t {
  kCampaign,
  kFuzz,
};

// ---------------------------------------------------------------------------
// Message payloads. Each Write* appends to a StateWriter; each Read* consumes
// from a StateReader and OPEC_CHECKs on truncation (callers run decode under
// ScopedCheckThrow and turn failures into connection errors).

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  // v2+ fields (v1 hellos carry only version + worker_name).
  uint32_t min_version = kMinProtocolVersion;  // oldest dialect peer speaks
  std::string worker_name;
  std::string token;      // shared secret; must match the server's --auth-token
  std::string worker_id;  // stable across reconnects ("" = not resumable)
  bool resumable = false;
  // Resume cursor: the unit this worker was executing when its link dropped
  // and how many of its jobs it had finished. Informational — the server
  // derives the authoritative remainder from its own recorded rows.
  uint64_t resume_unit = kNoResumeUnit;
  uint64_t resume_done = 0;
};

struct WelcomeMsg {
  uint32_t version = kProtocolVersion;  // negotiated: min(server, hello)
  SweepKind sweep = SweepKind::kCampaign;
  bool cold_boot = false;
  std::string snapshot_dir;
  // v2+: artifact replies larger than this arrive as kArtifactChunk frames.
  uint32_t chunk_threshold = kDefaultChunkThreshold;
};

// Returns the version the server should speak with a peer that sent `hello`,
// or 0 if no common dialect exists.
uint32_t NegotiateVersion(const HelloMsg& hello);

struct NoWorkMsg {
  uint32_t retry_ms = 20;
};

// One leased work unit: job indexes with their payloads, fully resolved
// server-side (seeds, timeouts, trace paths) so every worker executes exactly
// what `campaign --jobs 1` would. A resume assign re-uses the original
// unit_id with only the still-unrecorded indexes.
struct AssignMsg {
  uint64_t unit_id = 0;
  std::vector<uint64_t> indexes;
  std::vector<opec_campaign::JobSpec> jobs;  // campaign sweeps
  std::vector<uint64_t> fuzz_seeds;          // fuzz sweeps
};

// Worker-side artifact-cache counters, cumulative for the worker session
// (they survive reconnects); the server keeps the latest sample per worker id
// and sums them into DistStats.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t digest_mismatches = 0;
};

struct ResultMsg {
  uint64_t unit_id = 0;
  std::vector<uint64_t> indexes;
  std::vector<opec_campaign::JobResult> jobs;  // campaign sweeps
  std::vector<opec_fuzz::CaseResult> cases;    // fuzz sweeps
  CacheCounters cache;
};

struct ArtifactQueryMsg {
  std::string key;
};

struct ArtifactInfoMsg {
  std::string key;
  bool known = false;
  uint64_t digest = 0;
  uint64_t size = 0;
};

struct ArtifactFetchMsg {
  uint64_t digest = 0;
};

struct ArtifactDataMsg {
  uint64_t digest = 0;
  bool found = false;
  std::vector<uint8_t> bytes;
};

// One slice of an oversized artifact reply. Slices arrive in order; the
// reply is complete when offset + bytes.size() == total. total == 0 with
// offset == 0 signals "not found" (the chunked analogue of found=false).
struct ArtifactChunkMsg {
  uint64_t digest = 0;
  uint64_t total = 0;
  uint64_t offset = 0;
  std::vector<uint8_t> bytes;
};

struct ArtifactAnnounceMsg {
  std::string key;
  uint64_t digest = 0;
  bool with_bytes = false;
  std::vector<uint8_t> bytes;
};

void WriteHello(opec_hw::StateWriter& w, const HelloMsg& m);
HelloMsg ReadHello(opec_hw::StateReader& r);
void WriteWelcome(opec_hw::StateWriter& w, const WelcomeMsg& m);
WelcomeMsg ReadWelcome(opec_hw::StateReader& r);
void WriteNoWork(opec_hw::StateWriter& w, const NoWorkMsg& m);
NoWorkMsg ReadNoWork(opec_hw::StateReader& r);
void WriteAssign(opec_hw::StateWriter& w, SweepKind sweep, const AssignMsg& m);
AssignMsg ReadAssign(opec_hw::StateReader& r, SweepKind sweep);
void WriteResult(opec_hw::StateWriter& w, SweepKind sweep, const ResultMsg& m);
ResultMsg ReadResult(opec_hw::StateReader& r, SweepKind sweep);
void WriteArtifactQuery(opec_hw::StateWriter& w, const ArtifactQueryMsg& m);
ArtifactQueryMsg ReadArtifactQuery(opec_hw::StateReader& r);
void WriteArtifactInfo(opec_hw::StateWriter& w, const ArtifactInfoMsg& m);
ArtifactInfoMsg ReadArtifactInfo(opec_hw::StateReader& r);
void WriteArtifactFetch(opec_hw::StateWriter& w, const ArtifactFetchMsg& m);
ArtifactFetchMsg ReadArtifactFetch(opec_hw::StateReader& r);
void WriteArtifactData(opec_hw::StateWriter& w, const ArtifactDataMsg& m);
ArtifactDataMsg ReadArtifactData(opec_hw::StateReader& r);
void WriteArtifactChunk(opec_hw::StateWriter& w, const ArtifactChunkMsg& m);
ArtifactChunkMsg ReadArtifactChunk(opec_hw::StateReader& r);
void WriteArtifactAnnounce(opec_hw::StateWriter& w, const ArtifactAnnounceMsg& m);
ArtifactAnnounceMsg ReadArtifactAnnounce(opec_hw::StateReader& r);

// Single-struct serialization shared by AssignMsg/ResultMsg and the tests.
void WriteJobSpec(opec_hw::StateWriter& w, const opec_campaign::JobSpec& spec);
opec_campaign::JobSpec ReadJobSpec(opec_hw::StateReader& r);
void WriteJobResult(opec_hw::StateWriter& w, const opec_campaign::JobResult& result);
opec_campaign::JobResult ReadJobResult(opec_hw::StateReader& r);
void WriteCaseResult(opec_hw::StateWriter& w, const opec_fuzz::CaseResult& result);
opec_fuzz::CaseResult ReadCaseResult(opec_hw::StateReader& r);

// Compiled-module artifact payload: a lowered bytecode module together with
// the cost model baked into it (VM::AdoptBytecode refuses a model mismatch).
void WriteBytecodeArtifact(opec_hw::StateWriter& w,
                           const opec_rt::bytecode::BytecodeModule& bc,
                           const opec_rt::CostModel& costs);
bool ReadBytecodeArtifact(opec_hw::StateReader& r, opec_rt::bytecode::BytecodeModule* bc,
                          opec_rt::CostModel* costs);

// Helper: encode a payload-writing closure into a Frame.
template <typename Fn>
Frame MakeFrame(FrameType type, Fn&& fill) {
  opec_hw::StateWriter w;
  fill(w);
  Frame f;
  f.type = type;
  f.payload = w.Take();
  return f;
}

inline Frame MakeFrame(FrameType type) {
  Frame f;
  f.type = type;
  return f;
}

}  // namespace opec_dist

#endif  // SRC_DIST_WIRE_H_
