#include "src/dist/cache.h"

#include <cstdio>
#include <utility>

#include "src/hw/state_io.h"
#include "src/support/fs.h"

namespace opec_dist {

ArtifactCache::ArtifactCache(std::string dir, uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  if (!dir_.empty()) {
    std::string err = opec_support::EnsureDirs(dir_);
    if (!err.empty()) {
      error_ = "artifact cache directory unusable: " + err;
      dir_.clear();  // degrade to memory backing; caller decides how loud to be
    }
  }
}

std::string ArtifactCache::DigestFileName(uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx.art", static_cast<unsigned long long>(digest));
  return buf;
}

std::string ArtifactCache::PathFor(uint64_t digest) const {
  return dir_ + "/" + DigestFileName(digest);
}

void ArtifactCache::Touch(uint64_t digest, uint64_t size) {
  auto it = entries_.find(digest);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_it);
    it->second.lru_it = lru_.insert(lru_.begin(), digest);
    return;
  }
  Entry entry;
  entry.size = size;
  entry.lru_it = lru_.insert(lru_.begin(), digest);
  entries_.emplace(digest, std::move(entry));
  resident_bytes_ += size;
}

void ArtifactCache::Forget(uint64_t digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    return;
  }
  resident_bytes_ -= it->second.size;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ArtifactCache::EvictIfNeeded() {
  if (max_bytes_ == 0) {
    return;
  }
  while (resident_bytes_ > max_bytes_ && lru_.size() > 1) {
    uint64_t victim = lru_.back();  // least recently used; never the newest
    if (!dir_.empty()) {
      std::remove(PathFor(victim).c_str());
    }
    Forget(victim);
    ++stats_.evictions;
  }
}

uint64_t ArtifactCache::Put(const std::vector<uint8_t>& bytes) {
  uint64_t digest = opec_hw::Fnv1a64(bytes.data(), bytes.size());
  auto it = entries_.find(digest);
  if (it != entries_.end()) {
    Touch(digest, it->second.size);
    return digest;
  }
  if (dir_.empty()) {
    Entry entry;
    entry.size = bytes.size();
    entry.bytes = bytes;
    entry.lru_it = lru_.insert(lru_.begin(), digest);
    entries_.emplace(digest, std::move(entry));
    resident_bytes_ += bytes.size();
  } else {
    std::string err = opec_support::WriteFileAtomic(PathFor(digest), bytes);
    if (!err.empty()) {
      error_ = "artifact write failed: " + err;
      return digest;  // digest is still valid; the artifact just isn't cached
    }
    Touch(digest, bytes.size());
  }
  EvictIfNeeded();
  return digest;
}

bool ArtifactCache::Get(uint64_t digest, std::vector<uint8_t>* out) {
  out->clear();
  if (dir_.empty()) {
    auto it = entries_.find(digest);
    if (it == entries_.end()) {
      ++stats_.misses;
      return false;
    }
    *out = it->second.bytes;
    Touch(digest, it->second.size);
    ++stats_.hits;
    return true;
  }
  if (!opec_support::ReadFileBytes(PathFor(digest), out)) {
    Forget(digest);  // stale index entry (evicted externally)
    ++stats_.misses;
    return false;
  }
  uint64_t actual = opec_hw::Fnv1a64(out->data(), out->size());
  if (actual != digest) {
    // Content does not hash to its address: corrupt or tampered. Expunge so
    // the next Put can repopulate; report a miss, never the bad bytes.
    std::remove(PathFor(digest).c_str());
    Forget(digest);
    out->clear();
    ++stats_.digest_mismatches;
    ++stats_.misses;
    return false;
  }
  Touch(digest, out->size());
  ++stats_.hits;
  return true;
}

bool ArtifactCache::GetRef(const std::string& key, uint64_t* digest) {
  if (dir_.empty()) {
    auto it = refs_.find(key);
    if (it == refs_.end()) {
      return false;
    }
    *digest = it->second;
    return true;
  }
  std::vector<uint8_t> bytes;
  if (!opec_support::ReadFileBytes(RefPathFor(key), &bytes) || bytes.size() < 8) {
    return false;
  }
  uint64_t d = 0;
  for (int i = 0; i < 8; ++i) {
    d |= static_cast<uint64_t>(bytes[static_cast<size_t>(i)]) << (8 * i);
  }
  // The ref file carries the full key after the digest; a hash collision in
  // the file name must not resolve to the wrong artifact.
  if (std::string(bytes.begin() + 8, bytes.end()) != key) {
    return false;
  }
  *digest = d;
  return true;
}

void ArtifactCache::PutRef(const std::string& key, uint64_t digest) {
  if (dir_.empty()) {
    refs_[key] = digest;
    return;
  }
  std::vector<uint8_t> bytes;
  bytes.reserve(8 + key.size());
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<uint8_t>(digest >> (8 * i)));
  }
  bytes.insert(bytes.end(), key.begin(), key.end());
  std::string err = opec_support::WriteFileAtomic(RefPathFor(key), bytes);
  if (!err.empty()) {
    error_ = "artifact ref write failed: " + err;
  }
}

std::string ArtifactCache::RefPathFor(const std::string& key) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ref_%016llx.ref",
                static_cast<unsigned long long>(opec_hw::Fnv1a64(
                    reinterpret_cast<const uint8_t*>(key.data()), key.size())));
  return dir_ + "/" + buf;
}

bool ArtifactCache::Contains(uint64_t digest) {
  if (dir_.empty()) {
    return entries_.find(digest) != entries_.end();
  }
  if (entries_.find(digest) != entries_.end()) {
    return true;
  }
  std::vector<uint8_t> bytes;
  if (!opec_support::ReadFileBytes(PathFor(digest), &bytes)) {
    return false;
  }
  return opec_hw::Fnv1a64(bytes.data(), bytes.size()) == digest;
}

}  // namespace opec_dist
