// The campaign worker (DESIGN.md §16): connects to a campaignd server over
// any Transport, executes leased work units through the exact per-job path
// the in-process executor uses (opec_campaign::JobRunner), and streams
// results back. Single-threaded; self-hosted mode forks one process per
// worker, remote mode runs one per `campaignd --worker` invocation.
//
// Warm starts ride the content-addressed artifact cache: the worker's warm
// pool resolves `boot/<app>/<mode>` (post-boot machine snapshot) and
// `bcmod/<app>/<mode>` (lowered bytecode module + cost model) through the
// local cache first, then the server; on a miss it builds cold, captures the
// artifact, and announces it so every later worker skips the work. Adopted
// artifacts are verified by digest and by the adoption preconditions
// (snapshot provenance checks, VM::AdoptBytecode's module/cost-model match);
// any rejection falls back to the cold path — wrong bytes can slow a worker
// down, never change its results.
//
// Reconnect-and-resume (protocol v2): a worker with a stable `worker_id`
// that loses the link mid-unit keeps its session state — warm pool, cache,
// and the rows of the current unit it already finished — redials through
// RunWorkerLoop, presents its resume cursor in the hello, delivers the
// partial result, and the server re-assigns only the remainder under the
// original unit id.

#ifndef SRC_DIST_WORKER_H_
#define SRC_DIST_WORKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/dist/transport.h"
#include "src/dist/wire.h"

namespace opec_dist {

struct WorkerOptions {
  std::string name;       // for server logs
  std::string cache_dir;  // local artifact cache ("" = in-memory, per-process)
  uint64_t cache_max_bytes = 0;
  // Fleet hardening (protocol v2).
  std::string token;      // shared secret; must match the server's --auth-token
  std::string worker_id;  // stable across reconnects; "" = not resumable
  // Reconnect policy for RunWorkerLoop: how many times to redial after a
  // lost link, and how long to back off between attempts.
  uint32_t reconnect_max = 0;
  uint32_t reconnect_delay_ms = 100;
  // Test/chaos hook: drop the connection (keeping session state, so the
  // reconnect path resumes the unit) after this many completed jobs. Fires
  // once. 0 = never.
  uint64_t chaos_drop_after = 0;
  // Test hook: exit the work loop (cleanly, without sending the pending
  // result) after this many completed jobs. 0 = run to shutdown.
  uint64_t die_after_jobs = 0;
};

// Runs the worker loop on one connection until the server sends kShutdown
// (returns "") or the connection/protocol fails (returns the error). No
// reconnects. Blocking; owns no threads.
std::string RunWorker(Transport& transport, const WorkerOptions& options);

// Runs the worker loop with reconnect-and-resume: `connect` dials the server
// (returns nullptr on failure). Session state — artifact cache, warm pool,
// partially-executed unit — survives across connections. Returns "" after a
// server shutdown, else the last error once `reconnect_max` is exhausted.
std::string RunWorkerLoop(const std::function<std::unique_ptr<Transport>()>& connect,
                          const WorkerOptions& options);

}  // namespace opec_dist

#endif  // SRC_DIST_WORKER_H_
