// The campaign worker (DESIGN.md §16): connects to a campaignd server over
// any Transport, executes leased work units through the exact per-job path
// the in-process executor uses (opec_campaign::JobRunner), and streams
// results back. Single-threaded; self-hosted mode forks one process per
// worker, remote mode runs one per `campaignd --worker` invocation.
//
// Warm starts ride the content-addressed artifact cache: the worker's warm
// pool resolves `boot/<app>/<mode>` (post-boot machine snapshot) and
// `bcmod/<app>/<mode>` (lowered bytecode module + cost model) through the
// local cache first, then the server; on a miss it builds cold, captures the
// artifact, and announces it so every later worker skips the work. Adopted
// artifacts are verified by digest and by the adoption preconditions
// (snapshot provenance checks, VM::AdoptBytecode's module/cost-model match);
// any rejection falls back to the cold path — wrong bytes can slow a worker
// down, never change its results.

#ifndef SRC_DIST_WORKER_H_
#define SRC_DIST_WORKER_H_

#include <cstdint>
#include <string>

#include "src/dist/transport.h"
#include "src/dist/wire.h"

namespace opec_dist {

struct WorkerOptions {
  std::string name;       // for server logs
  std::string cache_dir;  // local artifact cache ("" = in-memory, per-process)
  uint64_t cache_max_bytes = 0;
  // Test hook: exit the work loop (cleanly, without sending the pending
  // result) after this many completed jobs. 0 = run to shutdown.
  uint64_t die_after_jobs = 0;
};

// Runs the worker loop until the server sends kShutdown (returns "") or the
// connection/protocol fails (returns the error). Blocking; owns no threads.
std::string RunWorker(Transport& transport, const WorkerOptions& options);

}  // namespace opec_dist

#endif  // SRC_DIST_WORKER_H_
