#include "src/dist/wire.h"

#include "src/support/check.h"

namespace opec_dist {

namespace {

using opec_hw::StateReader;
using opec_hw::StateWriter;

void WriteU64Vec(StateWriter& w, const std::vector<uint64_t>& v) {
  w.U64(v.size());
  for (uint64_t x : v) {
    w.U64(x);
  }
}

std::vector<uint64_t> ReadU64Vec(StateReader& r) {
  uint64_t n = r.U64();
  std::vector<uint64_t> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    v.push_back(r.U64());
  }
  return v;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kWelcome:
      return "welcome";
    case FrameType::kRequestWork:
      return "request-work";
    case FrameType::kAssign:
      return "assign";
    case FrameType::kNoWork:
      return "no-work";
    case FrameType::kResult:
      return "result";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kArtifactQuery:
      return "artifact-query";
    case FrameType::kArtifactInfo:
      return "artifact-info";
    case FrameType::kArtifactFetch:
      return "artifact-fetch";
    case FrameType::kArtifactData:
      return "artifact-data";
    case FrameType::kArtifactAnnounce:
      return "artifact-announce";
    case FrameType::kArtifactChunk:
      return "artifact-chunk";
  }
  return "?";
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  std::vector<uint8_t> out;
  out.reserve(5 + frame.payload.size());
  out.push_back(static_cast<uint8_t>(len));
  out.push_back(static_cast<uint8_t>(len >> 8));
  out.push_back(static_cast<uint8_t>(len >> 16));
  out.push_back(static_cast<uint8_t>(len >> 24));
  out.push_back(static_cast<uint8_t>(frame.type));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

uint32_t NegotiateVersion(const HelloMsg& hello) {
  uint32_t effective = hello.version < kProtocolVersion ? hello.version : kProtocolVersion;
  if (effective < kMinProtocolVersion || effective < hello.min_version) {
    return 0;
  }
  return effective;
}

void WriteHello(StateWriter& w, const HelloMsg& m) {
  w.U32(m.version);
  if (m.version == 1) {
    w.Str(m.worker_name);
    return;
  }
  w.U32(m.min_version);
  w.Str(m.worker_name);
  w.Str(m.token);
  w.Str(m.worker_id);
  w.Bool(m.resumable);
  w.U64(m.resume_unit);
  w.U64(m.resume_done);
}

HelloMsg ReadHello(StateReader& r) {
  HelloMsg m;
  m.version = r.U32();
  if (m.version == 1) {
    // v1 layout: version + name. No token, no resume state.
    m.min_version = 1;
    m.worker_name = r.Str();
    m.token.clear();
    m.worker_id.clear();
    m.resumable = false;
    m.resume_unit = kNoResumeUnit;
    m.resume_done = 0;
    return m;
  }
  m.min_version = r.U32();
  m.worker_name = r.Str();
  m.token = r.Str();
  m.worker_id = r.Str();
  m.resumable = r.Bool();
  m.resume_unit = r.U64();
  m.resume_done = r.U64();
  return m;
}

void WriteWelcome(StateWriter& w, const WelcomeMsg& m) {
  w.U32(m.version);
  w.U8(static_cast<uint8_t>(m.sweep));
  w.Bool(m.cold_boot);
  w.Str(m.snapshot_dir);
  if (m.version >= 2) {
    w.U32(m.chunk_threshold);
  }
}

WelcomeMsg ReadWelcome(StateReader& r) {
  WelcomeMsg m;
  m.version = r.U32();
  uint8_t sweep = r.U8();
  OPEC_CHECK_MSG(sweep <= static_cast<uint8_t>(SweepKind::kFuzz), "bad sweep kind");
  m.sweep = static_cast<SweepKind>(sweep);
  m.cold_boot = r.Bool();
  m.snapshot_dir = r.Str();
  if (m.version >= 2) {
    m.chunk_threshold = r.U32();
  } else {
    m.chunk_threshold = 0;  // v1 servers never chunk
  }
  return m;
}

void WriteNoWork(StateWriter& w, const NoWorkMsg& m) { w.U32(m.retry_ms); }

NoWorkMsg ReadNoWork(StateReader& r) {
  NoWorkMsg m;
  m.retry_ms = r.U32();
  return m;
}

void WriteJobSpec(StateWriter& w, const opec_campaign::JobSpec& spec) {
  w.U8(static_cast<uint8_t>(spec.kind));
  w.Str(spec.app);
  w.U8(static_cast<uint8_t>(spec.mode));
  w.U8(static_cast<uint8_t>(spec.engine));
  w.U64(spec.seed);
  w.U8(static_cast<uint8_t>(spec.fault));
  w.U64(spec.timeout_ms);
  w.Str(spec.trace_path);
  w.Bool(spec.attach_counting_sink);
  w.Bool(spec.rv);
}

opec_campaign::JobSpec ReadJobSpec(StateReader& r) {
  opec_campaign::JobSpec spec;
  uint8_t kind = r.U8();
  OPEC_CHECK_MSG(kind <= static_cast<uint8_t>(opec_campaign::JobKind::kFault),
                 "bad job kind");
  spec.kind = static_cast<opec_campaign::JobKind>(kind);
  spec.app = r.Str();
  uint8_t mode = r.U8();
  OPEC_CHECK_MSG(mode <= static_cast<uint8_t>(opec_apps::BuildMode::kOpec), "bad mode");
  spec.mode = static_cast<opec_apps::BuildMode>(mode);
  uint8_t engine = r.U8();
  OPEC_CHECK_MSG(engine <= static_cast<uint8_t>(opec_apps::EngineKind::kBytecode),
                 "bad engine kind");
  spec.engine = static_cast<opec_apps::EngineKind>(engine);
  spec.seed = r.U64();
  uint8_t fault = r.U8();
  OPEC_CHECK_MSG(fault <= static_cast<uint8_t>(opec_campaign::FaultClass::kIcallForge),
                 "bad fault class");
  spec.fault = static_cast<opec_campaign::FaultClass>(fault);
  spec.timeout_ms = r.U64();
  spec.trace_path = r.Str();
  spec.attach_counting_sink = r.Bool();
  spec.rv = r.Bool();
  return spec;
}

void WriteJobResult(StateWriter& w, const opec_campaign::JobResult& result) {
  w.U64(result.index);
  WriteJobSpec(w, result.spec);
  w.Bool(result.ok);
  w.U8(static_cast<uint8_t>(result.outcome));
  w.Str(result.detail);
  w.U64(result.cycles);
  w.U64(result.statements);
  w.U32(result.return_value);
  w.Bool(result.attack_fired);
  w.Bool(result.attack_blocked);
  w.U64(result.events);
  w.U64(result.rv_states);
  w.U64(result.rv_violations);
  WriteU64Vec(w, result.rv_by_automaton);
  w.U64(result.snapshot_digest);
  w.U64(result.wall_ns);
}

opec_campaign::JobResult ReadJobResult(StateReader& r) {
  opec_campaign::JobResult result;
  result.index = static_cast<size_t>(r.U64());
  result.spec = ReadJobSpec(r);
  result.ok = r.Bool();
  uint8_t outcome = r.U8();
  OPEC_CHECK_MSG(outcome <= static_cast<uint8_t>(opec_campaign::Outcome::kRvViolation),
                 "bad outcome");
  result.outcome = static_cast<opec_campaign::Outcome>(outcome);
  result.detail = r.Str();
  result.cycles = r.U64();
  result.statements = r.U64();
  result.return_value = r.U32();
  result.attack_fired = r.Bool();
  result.attack_blocked = r.Bool();
  result.events = r.U64();
  result.rv_states = r.U64();
  result.rv_violations = r.U64();
  result.rv_by_automaton = ReadU64Vec(r);
  result.snapshot_digest = r.U64();
  result.wall_ns = r.U64();
  return result;
}

void WriteCaseResult(StateWriter& w, const opec_fuzz::CaseResult& result) {
  w.U64(result.seed);
  w.Str(result.summary);
  w.Str(result.digest);
  w.U64(result.divergences.size());
  for (const opec_fuzz::Divergence& d : result.divergences) {
    w.U8(static_cast<uint8_t>(d.oracle));
    w.Str(d.detail);
  }
}

opec_fuzz::CaseResult ReadCaseResult(StateReader& r) {
  opec_fuzz::CaseResult result;
  result.seed = r.U64();
  result.summary = r.Str();
  result.digest = r.Str();
  uint64_t n = r.U64();
  result.divergences.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    opec_fuzz::Divergence d;
    uint8_t oracle = r.U8();
    OPEC_CHECK_MSG(oracle <= static_cast<uint8_t>(opec_fuzz::Oracle::kRv), "bad oracle");
    d.oracle = static_cast<opec_fuzz::Oracle>(oracle);
    d.detail = r.Str();
    result.divergences.push_back(std::move(d));
  }
  return result;
}

void WriteAssign(StateWriter& w, SweepKind sweep, const AssignMsg& m) {
  w.U64(m.unit_id);
  WriteU64Vec(w, m.indexes);
  if (sweep == SweepKind::kCampaign) {
    w.U64(m.jobs.size());
    for (const opec_campaign::JobSpec& spec : m.jobs) {
      WriteJobSpec(w, spec);
    }
  } else {
    WriteU64Vec(w, m.fuzz_seeds);
  }
}

AssignMsg ReadAssign(StateReader& r, SweepKind sweep) {
  AssignMsg m;
  m.unit_id = r.U64();
  m.indexes = ReadU64Vec(r);
  if (sweep == SweepKind::kCampaign) {
    uint64_t n = r.U64();
    m.jobs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      m.jobs.push_back(ReadJobSpec(r));
    }
  } else {
    m.fuzz_seeds = ReadU64Vec(r);
  }
  return m;
}

void WriteResult(StateWriter& w, SweepKind sweep, const ResultMsg& m) {
  w.U64(m.unit_id);
  WriteU64Vec(w, m.indexes);
  if (sweep == SweepKind::kCampaign) {
    w.U64(m.jobs.size());
    for (const opec_campaign::JobResult& result : m.jobs) {
      WriteJobResult(w, result);
    }
  } else {
    w.U64(m.cases.size());
    for (const opec_fuzz::CaseResult& result : m.cases) {
      WriteCaseResult(w, result);
    }
  }
  w.U64(m.cache.hits);
  w.U64(m.cache.misses);
  w.U64(m.cache.evictions);
  w.U64(m.cache.digest_mismatches);
}

ResultMsg ReadResult(StateReader& r, SweepKind sweep) {
  ResultMsg m;
  m.unit_id = r.U64();
  m.indexes = ReadU64Vec(r);
  uint64_t n = r.U64();
  if (sweep == SweepKind::kCampaign) {
    m.jobs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      m.jobs.push_back(ReadJobResult(r));
    }
  } else {
    m.cases.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      m.cases.push_back(ReadCaseResult(r));
    }
  }
  m.cache.hits = r.U64();
  m.cache.misses = r.U64();
  m.cache.evictions = r.U64();
  m.cache.digest_mismatches = r.U64();
  return m;
}

void WriteArtifactQuery(StateWriter& w, const ArtifactQueryMsg& m) { w.Str(m.key); }

ArtifactQueryMsg ReadArtifactQuery(StateReader& r) {
  ArtifactQueryMsg m;
  m.key = r.Str();
  return m;
}

void WriteArtifactInfo(StateWriter& w, const ArtifactInfoMsg& m) {
  w.Str(m.key);
  w.Bool(m.known);
  w.U64(m.digest);
  w.U64(m.size);
}

ArtifactInfoMsg ReadArtifactInfo(StateReader& r) {
  ArtifactInfoMsg m;
  m.key = r.Str();
  m.known = r.Bool();
  m.digest = r.U64();
  m.size = r.U64();
  return m;
}

void WriteArtifactFetch(StateWriter& w, const ArtifactFetchMsg& m) { w.U64(m.digest); }

ArtifactFetchMsg ReadArtifactFetch(StateReader& r) {
  ArtifactFetchMsg m;
  m.digest = r.U64();
  return m;
}

void WriteArtifactData(StateWriter& w, const ArtifactDataMsg& m) {
  w.U64(m.digest);
  w.Bool(m.found);
  w.Blob(m.bytes);
}

ArtifactDataMsg ReadArtifactData(StateReader& r) {
  ArtifactDataMsg m;
  m.digest = r.U64();
  m.found = r.Bool();
  m.bytes = r.Blob();
  return m;
}

void WriteArtifactChunk(StateWriter& w, const ArtifactChunkMsg& m) {
  w.U64(m.digest);
  w.U64(m.total);
  w.U64(m.offset);
  w.Blob(m.bytes);
}

ArtifactChunkMsg ReadArtifactChunk(StateReader& r) {
  ArtifactChunkMsg m;
  m.digest = r.U64();
  m.total = r.U64();
  m.offset = r.U64();
  m.bytes = r.Blob();
  return m;
}

void WriteArtifactAnnounce(StateWriter& w, const ArtifactAnnounceMsg& m) {
  w.Str(m.key);
  w.U64(m.digest);
  w.Bool(m.with_bytes);
  if (m.with_bytes) {
    w.Blob(m.bytes);
  }
}

ArtifactAnnounceMsg ReadArtifactAnnounce(StateReader& r) {
  ArtifactAnnounceMsg m;
  m.key = r.Str();
  m.digest = r.U64();
  m.with_bytes = r.Bool();
  if (m.with_bytes) {
    m.bytes = r.Blob();
  }
  return m;
}

// Field-by-field (not memcpy of the POD): the wire format must be
// byte-identical across hosts regardless of endianness or struct padding —
// artifact digests are compared across processes.
void WriteBytecodeArtifact(StateWriter& w, const opec_rt::bytecode::BytecodeModule& bc,
                           const opec_rt::CostModel& costs) {
  w.U64(costs.op);
  w.U64(costs.memory);
  w.U64(costs.branch);
  w.U64(costs.call);
  w.U64(costs.ret);
  w.U64(costs.svc);
  w.U64(bc.code.size());
  for (const opec_rt::bytecode::Insn& ins : bc.code) {
    w.U8(static_cast<uint8_t>(ins.op));
    w.U8(ins.sub);
    w.U32(ins.a);
    w.U32(ins.b);
    w.U32(ins.c);
    w.U32(ins.stmt);
    w.U32(ins.imm);
    w.U32(ins.imm2);
    w.U64(ins.charge);
  }
  w.U64(bc.funcs.size());
  for (const opec_rt::bytecode::BytecodeFunction& fn : bc.funcs) {
    w.U32(fn.entry);
    w.U32(fn.nregs);
  }
  w.U64(bc.arg_pool.size());
  for (uint16_t reg : bc.arg_pool) {
    w.U32(reg);
  }
  w.U64(bc.messages.size());
  for (const std::string& msg : bc.messages) {
    w.Str(msg);
  }
  w.U64(bc.acct.size());
  for (const auto& [offset, length] : bc.acct) {
    w.U32(offset);
    w.U32(length);
  }
  w.U64(bc.acct_pool.size());
  for (int64_t entry : bc.acct_pool) {
    w.U64(static_cast<uint64_t>(entry));
  }
  w.U32(bc.max_regs);
}

bool ReadBytecodeArtifact(StateReader& r, opec_rt::bytecode::BytecodeModule* bc,
                          opec_rt::CostModel* costs) {
  costs->op = r.U64();
  costs->memory = r.U64();
  costs->branch = r.U64();
  costs->call = r.U64();
  costs->ret = r.U64();
  costs->svc = r.U64();
  uint64_t ncode = r.U64();
  bc->code.clear();
  bc->code.reserve(ncode);
  for (uint64_t i = 0; i < ncode; ++i) {
    opec_rt::bytecode::Insn ins;
    uint8_t op = r.U8();
    if (op > static_cast<uint8_t>(opec_rt::bytecode::Op::kAbort)) {
      return false;
    }
    ins.op = static_cast<opec_rt::bytecode::Op>(op);
    ins.sub = r.U8();
    uint32_t a = r.U32(), b = r.U32(), c = r.U32(), stmt = r.U32();
    if (a > 0xFFFF || b > 0xFFFF || c > 0xFFFF || stmt > 0xFFFF) {
      return false;
    }
    ins.a = static_cast<uint16_t>(a);
    ins.b = static_cast<uint16_t>(b);
    ins.c = static_cast<uint16_t>(c);
    ins.stmt = static_cast<uint16_t>(stmt);
    ins.imm = r.U32();
    ins.imm2 = r.U32();
    ins.charge = r.U64();
    bc->code.push_back(ins);
  }
  uint64_t nfuncs = r.U64();
  bc->funcs.clear();
  bc->funcs.reserve(nfuncs);
  for (uint64_t i = 0; i < nfuncs; ++i) {
    opec_rt::bytecode::BytecodeFunction fn;
    fn.entry = r.U32();
    uint32_t nregs = r.U32();
    if (nregs > 0xFFFF) {
      return false;
    }
    fn.nregs = static_cast<uint16_t>(nregs);
    bc->funcs.push_back(fn);
  }
  uint64_t nargs = r.U64();
  bc->arg_pool.clear();
  bc->arg_pool.reserve(nargs);
  for (uint64_t i = 0; i < nargs; ++i) {
    uint32_t reg = r.U32();
    if (reg > 0xFFFF) {
      return false;
    }
    bc->arg_pool.push_back(static_cast<uint16_t>(reg));
  }
  uint64_t nmsgs = r.U64();
  bc->messages.clear();
  bc->messages.reserve(nmsgs);
  for (uint64_t i = 0; i < nmsgs; ++i) {
    bc->messages.push_back(r.Str());
  }
  uint64_t nacct = r.U64();
  bc->acct.clear();
  bc->acct.reserve(nacct);
  for (uint64_t i = 0; i < nacct; ++i) {
    uint32_t offset = r.U32();
    uint32_t length = r.U32();
    bc->acct.emplace_back(offset, length);
  }
  uint64_t npool = r.U64();
  bc->acct_pool.clear();
  bc->acct_pool.reserve(npool);
  for (uint64_t i = 0; i < npool; ++i) {
    bc->acct_pool.push_back(static_cast<int64_t>(r.U64()));
  }
  uint32_t max_regs = r.U32();
  if (max_regs > 0xFFFF) {
    return false;
  }
  bc->max_regs = static_cast<uint16_t>(max_regs);
  return true;
}

}  // namespace opec_dist
