#include "src/dist/worker.h"

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <utility>

#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/campaign/campaign.h"
#include "src/dist/cache.h"
#include "src/fuzz/oracles.h"
#include "src/rt/bytecode/vm.h"
#include "src/snapshot/snapshot.h"
#include "src/support/check.h"
#include "src/support/fs.h"

namespace opec_dist {

namespace {

const char* ModeKey(opec_apps::BuildMode mode) {
  return mode == opec_apps::BuildMode::kOpec ? "opec" : "vanilla";
}

// Synchronous artifact RPC over the worker's transport. The worker drives a
// strict request/response rhythm, so issuing these between work frames is
// safe; every failure is swallowed into "not available" — artifact trouble
// degrades to a cold build, it never fails a job. The transport is rebound
// per connection (Bind), so the cache/warm-pool state it feeds survives
// reconnects.
class ServerArtifacts {
 public:
  ServerArtifacts() = default;

  void Bind(Transport* t) {
    t_ = t;
    broken_ = false;
  }

  bool Query(const std::string& key, uint64_t* digest) {
    if (broken_ || t_ == nullptr) {
      return false;
    }
    Frame f = MakeFrame(FrameType::kArtifactQuery, [&](opec_hw::StateWriter& w) {
      WriteArtifactQuery(w, ArtifactQueryMsg{key});
    });
    Frame reply;
    if (!RoundTrip(f, FrameType::kArtifactInfo, &reply)) {
      return false;
    }
    try {
      opec_support::ScopedCheckThrow capture;
      opec_hw::StateReader r(reply.payload);
      ArtifactInfoMsg info = ReadArtifactInfo(r);
      if (!info.known) {
        return false;
      }
      *digest = info.digest;
      return true;
    } catch (const std::exception&) {
      broken_ = true;
      return false;
    }
  }

  // Handles both reply shapes: one kArtifactData frame (small artifacts, v1
  // servers) or an in-order kArtifactChunk stream (v2 servers, big replies).
  bool Fetch(uint64_t digest, std::vector<uint8_t>* out) {
    if (broken_ || t_ == nullptr) {
      return false;
    }
    Frame f = MakeFrame(FrameType::kArtifactFetch, [&](opec_hw::StateWriter& w) {
      WriteArtifactFetch(w, ArtifactFetchMsg{digest});
    });
    if (t_->Send(f) != Transport::Status::kOk) {
      broken_ = true;
      return false;
    }
    Frame reply;
    if (t_->Recv(&reply) != Transport::Status::kOk) {
      broken_ = true;
      return false;
    }
    try {
      opec_support::ScopedCheckThrow capture;
      if (reply.type == FrameType::kArtifactData) {
        opec_hw::StateReader r(reply.payload);
        ArtifactDataMsg data = ReadArtifactData(r);
        if (!data.found || data.digest != digest) {
          return false;
        }
        *out = std::move(data.bytes);
        return true;
      }
      if (reply.type != FrameType::kArtifactChunk) {
        broken_ = true;
        return false;
      }
      std::vector<uint8_t> buf;
      for (;;) {
        opec_hw::StateReader r(reply.payload);
        ArtifactChunkMsg chunk = ReadArtifactChunk(r);
        if (chunk.total == 0 && chunk.offset == 0) {
          return false;  // chunked analogue of found=false
        }
        if (chunk.digest != digest || chunk.offset != buf.size() ||
            chunk.offset + chunk.bytes.size() > chunk.total) {
          broken_ = true;  // out-of-order or oversized slice: protocol breach
          return false;
        }
        buf.insert(buf.end(), chunk.bytes.begin(), chunk.bytes.end());
        if (buf.size() == chunk.total) {
          break;
        }
        if (t_->Recv(&reply) != Transport::Status::kOk ||
            reply.type != FrameType::kArtifactChunk) {
          broken_ = true;
          return false;
        }
      }
      *out = std::move(buf);
      return true;
    } catch (const std::exception&) {
      broken_ = true;
      return false;
    }
  }

  void Announce(const std::string& key, uint64_t digest,
                const std::vector<uint8_t>& bytes) {
    if (broken_ || t_ == nullptr) {
      return;
    }
    ArtifactAnnounceMsg msg;
    msg.key = key;
    msg.digest = digest;
    msg.with_bytes = true;
    msg.bytes = bytes;
    Frame f = MakeFrame(FrameType::kArtifactAnnounce, [&](opec_hw::StateWriter& w) {
      WriteArtifactAnnounce(w, msg);
    });
    if (t_->Send(f) != Transport::Status::kOk) {
      broken_ = true;
    }
  }

 private:
  bool RoundTrip(const Frame& request, FrameType expect, Frame* reply) {
    if (t_->Send(request) != Transport::Status::kOk) {
      broken_ = true;
      return false;
    }
    if (t_->Recv(reply) != Transport::Status::kOk || reply->type != expect) {
      broken_ = true;
      return false;
    }
    return true;
  }

  Transport* t_ = nullptr;
  bool broken_ = false;
};

// The worker's warm-start pool: one booted AppRun per (app, mode, engine),
// artifact-cache-backed. Mirrors the executor's thread-local WarmRun but
// resolves the post-boot snapshot and the lowered bytecode module through
// the local cache / the server before paying for a cold build.
class DistWarmPool {
 public:
  DistWarmPool(ServerArtifacts& server, ArtifactCache& cache)
      : server_(server), cache_(cache) {}

  opec_apps::AppRun* Get(const opec_apps::AppFactory& factory, opec_apps::BuildMode mode,
                         opec_apps::EngineKind engine) {
    auto key = std::make_tuple(factory.name, static_cast<int>(mode),
                               static_cast<int>(engine));
    auto it = pool_.find(key);
    if (it != pool_.end()) {
      it->second.run->RestoreBoot();
      ReAdoptBytecode(it->second);
      return it->second.run.get();
    }

    Entry e;
    e.app = factory.make();
    e.run = std::make_unique<opec_apps::AppRun>(*e.app, mode, engine);
    ProvideBootSnapshot(e, factory.name, mode);
    if (engine == opec_apps::EngineKind::kBytecode) {
      ProvideBytecode(e, factory.name, mode);
    }
    it = pool_.emplace(std::move(key), std::move(e)).first;
    return it->second.run.get();
  }

  CacheCounters Counters() const {
    const ArtifactCache::Stats& s = cache_.stats();
    return CacheCounters{s.hits, s.misses, s.evictions, s.digest_mismatches};
  }

 private:
  struct Entry {
    std::unique_ptr<opec_apps::Application> app;
    std::unique_ptr<opec_apps::AppRun> run;
    bool have_bc = false;
    opec_rt::bytecode::BytecodeModule bc;
    opec_rt::CostModel bc_costs;
  };

  // Local cache first, then the server (caching what it returns).
  bool Obtain(uint64_t digest, std::vector<uint8_t>* bytes) {
    if (cache_.Get(digest, bytes)) {
      return true;
    }
    if (!server_.Fetch(digest, bytes)) {
      return false;
    }
    if (opec_hw::Fnv1a64(bytes->data(), bytes->size()) != digest) {
      return false;  // server sent bytes that don't match their address
    }
    cache_.Put(*bytes);
    return true;
  }

  // Key resolution order: the server's registry (fresh digests announced
  // this sweep), then the local cache's refs (a warm --cache-dir surviving
  // from an earlier run, which a fresh server knows nothing about).
  // `server_knew` lets callers skip the bytes re-upload when the server
  // already holds the mapping.
  bool ResolveKey(const std::string& key, uint64_t* digest, bool* server_knew) {
    if (server_.Query(key, digest)) {
      *server_knew = true;
      return true;
    }
    *server_knew = false;
    return cache_.GetRef(key, digest);
  }

  void ProvideBootSnapshot(Entry& e, const std::string& app_name,
                           opec_apps::BuildMode mode) {
    std::string key = "boot/" + app_name + "/" + ModeKey(mode);
    uint64_t digest = 0;
    bool server_knew = false;
    if (ResolveKey(key, &digest, &server_knew)) {
      std::vector<uint8_t> bytes;
      if (Obtain(digest, &bytes)) {
        try {
          opec_support::ScopedCheckThrow capture;
          e.run->AdoptBootSnapshot(opec_snapshot::Snapshot::Deserialize(bytes));
          cache_.PutRef(key, digest);
          if (!server_knew) {
            server_.Announce(key, digest, bytes);
          }
          return;
        } catch (const std::exception&) {
          // Provenance or decode rejection: fall through to the cold capture.
        }
      }
    }
    e.run->CaptureBoot();
    std::vector<uint8_t> bytes = e.run->boot_snapshot().Serialize();
    uint64_t actual = cache_.Put(bytes);
    cache_.PutRef(key, actual);
    server_.Announce(key, actual, bytes);
  }

  void ProvideBytecode(Entry& e, const std::string& app_name, opec_apps::BuildMode mode) {
    auto* vm = dynamic_cast<opec_rt::bytecode::VM*>(&e.run->engine());
    if (vm == nullptr) {
      return;
    }
    std::string key = std::string("bcmod/") + app_name + "/" + ModeKey(mode);
    uint64_t digest = 0;
    bool server_knew = false;
    if (ResolveKey(key, &digest, &server_knew)) {
      std::vector<uint8_t> bytes;
      if (Obtain(digest, &bytes)) {
        try {
          opec_support::ScopedCheckThrow capture;
          opec_hw::StateReader r(bytes);
          opec_rt::bytecode::BytecodeModule bc;
          opec_rt::CostModel costs;
          if (ReadBytecodeArtifact(r, &bc, &costs) &&
              vm->AdoptBytecode(bc, costs)) {
            e.have_bc = true;
            e.bc = std::move(bc);
            e.bc_costs = costs;
            cache_.PutRef(key, digest);
            if (!server_knew) {
              server_.Announce(key, digest, bytes);
            }
            return;
          }
        } catch (const std::exception&) {
          // Corrupt artifact; lower locally below.
        }
      }
    }
    // Lower locally (Bytecode() forces it) and publish the result.
    try {
      opec_support::ScopedCheckThrow capture;
      e.bc = vm->Bytecode();
      e.bc_costs = e.run->engine().cost_model();
      e.have_bc = true;
    } catch (const std::exception&) {
      return;  // lowering failure surfaces when the job runs; don't publish
    }
    opec_hw::StateWriter w;
    WriteBytecodeArtifact(w, e.bc, e.bc_costs);
    std::vector<uint8_t> bytes = w.Take();
    uint64_t actual = cache_.Put(bytes);
    cache_.PutRef(key, actual);
    server_.Announce(key, actual, bytes);
  }

  // RestoreBoot rebuilds the engine, dropping its lowered code; hand the
  // retained module back so warm jobs never re-lower.
  void ReAdoptBytecode(Entry& e) {
    if (!e.have_bc) {
      return;
    }
    auto* vm = dynamic_cast<opec_rt::bytecode::VM*>(&e.run->engine());
    if (vm != nullptr) {
      vm->AdoptBytecode(e.bc, e.bc_costs);
    }
  }

  ServerArtifacts& server_;
  ArtifactCache& cache_;
  std::map<std::tuple<std::string, int, int>, Entry> pool_;
};

// Everything that must survive a dropped link: the artifact cache, the warm
// pool, the job runner, and — the resume cursor — the finished rows of the
// unit that was in flight when the connection died.
struct WorkerSession {
  explicit WorkerSession(const WorkerOptions& options)
      : cache(options.cache_dir, options.cache_max_bytes),
        pool(arts, cache),
        chaos_drop_after(options.chaos_drop_after) {}

  ArtifactCache cache;
  ServerArtifacts arts;
  DistWarmPool pool;
  opec_campaign::JobRunner runner;
  uint64_t jobs_done = 0;
  uint64_t chaos_drop_after;  // zeroed once fired
  bool have_partial = false;
  ResultMsg partial;  // rows finished of the in-flight unit
};

enum class ConnStatus {
  kDone,      // server sent kShutdown (or die_after_jobs fired): clean exit
  kLinkLost,  // connection-level failure; redialing may recover
  kFatal,     // config/protocol failure; redialing cannot help
};

ConnStatus RunConnection(Transport& transport, const WorkerOptions& options,
                         WorkerSession& s, std::string* error) {
  // Close on every exit path: the server's drain phase waits for worker EOF,
  // and embeddings (threads, tests) may keep the transport object alive well
  // past the worker loop.
  struct Closer {
    Transport& t;
    ~Closer() { t.Close(); }
  } closer{transport};
  HelloMsg hello;
  hello.worker_name = options.name;
  hello.token = options.token;
  hello.worker_id = options.worker_id;
  hello.resumable = !options.worker_id.empty();
  if (s.have_partial) {
    hello.resume_unit = s.partial.unit_id;
    hello.resume_done = s.partial.indexes.size();
  }
  if (transport.Send(MakeFrame(FrameType::kHello, [&](opec_hw::StateWriter& w) {
        WriteHello(w, hello);
      })) != Transport::Status::kOk) {
    *error = "hello failed: " + transport.error();
    return ConnStatus::kLinkLost;
  }
  Frame frame;
  if (transport.Recv(&frame) != Transport::Status::kOk ||
      frame.type != FrameType::kWelcome) {
    // An auth/allow-list refusal is a silent hangup right here —
    // indistinguishable from a crashed server, so the reconnect budget bounds
    // both.
    *error = "no welcome from server: " + transport.error();
    return ConnStatus::kLinkLost;
  }
  WelcomeMsg welcome;
  try {
    opec_support::ScopedCheckThrow capture;
    opec_hw::StateReader r(frame.payload);
    welcome = ReadWelcome(r);
  } catch (const std::exception& e) {
    *error = std::string("bad welcome frame: ") + e.what();
    return ConnStatus::kFatal;
  }
  if (welcome.version < kMinProtocolVersion || welcome.version > kProtocolVersion) {
    *error = "protocol version mismatch";
    return ConnStatus::kFatal;
  }
  if (!welcome.snapshot_dir.empty()) {
    std::string err = opec_support::EnsureDirs(welcome.snapshot_dir);
    if (!err.empty()) {
      *error = "campaign output directory unusable: " + err;
      return ConnStatus::kFatal;
    }
  }

  s.arts.Bind(&transport);

  opec_campaign::JobEnv env;
  env.cold_boot = welcome.cold_boot;
  env.snapshot_dir = welcome.snapshot_dir;
  if (!env.cold_boot) {
    env.warm_provider = [&s](const opec_apps::AppFactory& factory,
                             opec_apps::BuildMode mode, opec_apps::EngineKind engine) {
      return s.pool.Get(factory, mode, engine);
    };
  }

  if (s.have_partial) {
    // Deliver what we finished before the drop; the server records the rows
    // (first write wins) and answers the next request with the remainder of
    // the same unit.
    s.partial.cache = s.pool.Counters();
    if (transport.Send(MakeFrame(FrameType::kResult, [&](opec_hw::StateWriter& w) {
          WriteResult(w, welcome.sweep, s.partial);
        })) != Transport::Status::kOk) {
      *error = "partial result send failed: " + transport.error();
      return ConnStatus::kLinkLost;
    }
    s.have_partial = false;
  }

  for (;;) {
    if (transport.Send(MakeFrame(FrameType::kRequestWork)) != Transport::Status::kOk) {
      *error = "request failed: " + transport.error();
      return ConnStatus::kLinkLost;
    }
    Transport::Status st = transport.Recv(&frame);
    if (st == Transport::Status::kEof) {
      *error = "server disconnected";
      return ConnStatus::kLinkLost;
    }
    if (st == Transport::Status::kError) {
      *error = "recv failed: " + transport.error();
      return ConnStatus::kLinkLost;
    }
    switch (frame.type) {
      case FrameType::kShutdown:
        return ConnStatus::kDone;
      case FrameType::kNoWork: {
        uint32_t retry_ms = 20;
        try {
          opec_support::ScopedCheckThrow capture;
          opec_hw::StateReader r(frame.payload);
          retry_ms = ReadNoWork(r).retry_ms;
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(retry_ms));
        break;
      }
      case FrameType::kAssign: {
        AssignMsg assign;
        try {
          opec_support::ScopedCheckThrow capture;
          opec_hw::StateReader r(frame.payload);
          assign = ReadAssign(r, welcome.sweep);
        } catch (const std::exception& e) {
          *error = std::string("bad assign frame: ") + e.what();
          return ConnStatus::kFatal;
        }
        // Accumulate rows into the session's partial result as they finish,
        // so a dropped link mid-unit loses the connection, not the work.
        s.partial = ResultMsg{};
        s.partial.unit_id = assign.unit_id;
        s.have_partial = true;
        for (size_t k = 0; k < assign.indexes.size(); ++k) {
          size_t index = static_cast<size_t>(assign.indexes[k]);
          s.partial.indexes.push_back(assign.indexes[k]);
          if (welcome.sweep == SweepKind::kCampaign) {
            s.partial.jobs.push_back(s.runner.Run(assign.jobs[k], index, env));
          } else {
            s.partial.cases.push_back(opec_fuzz::RunCase(assign.fuzz_seeds[k]));
          }
          ++s.jobs_done;
          if (options.die_after_jobs != 0 && s.jobs_done >= options.die_after_jobs) {
            // Test hook: vanish mid-unit without delivering — the server must
            // detect the EOF and re-issue this unit elsewhere.
            transport.Close();
            return ConnStatus::kDone;
          }
          if (s.chaos_drop_after != 0 && s.jobs_done >= s.chaos_drop_after) {
            // Chaos hook: sever the link mid-unit but keep the session —
            // exercises reconnect-and-resume with a real partial unit.
            s.chaos_drop_after = 0;
            transport.Close();
            *error = "chaos: link dropped mid-unit";
            return ConnStatus::kLinkLost;
          }
        }
        s.partial.cache = s.pool.Counters();
        if (transport.Send(MakeFrame(FrameType::kResult, [&](opec_hw::StateWriter& w) {
              WriteResult(w, welcome.sweep, s.partial);
            })) != Transport::Status::kOk) {
          *error = "result send failed: " + transport.error();
          return ConnStatus::kLinkLost;
        }
        s.have_partial = false;
        break;
      }
      default:
        *error = std::string("unexpected frame: ") + FrameTypeName(frame.type);
        return ConnStatus::kFatal;
    }
  }
}

}  // namespace

std::string RunWorker(Transport& transport, const WorkerOptions& options) {
  WorkerSession session(options);
  if (!session.cache.ok()) {
    transport.Close();
    return session.cache.error();
  }
  std::string error;
  ConnStatus st = RunConnection(transport, options, session, &error);
  return st == ConnStatus::kDone ? "" : error;
}

std::string RunWorkerLoop(const std::function<std::unique_ptr<Transport>()>& connect,
                          const WorkerOptions& options) {
  WorkerSession session(options);
  if (!session.cache.ok()) {
    return session.cache.error();
  }
  uint32_t attempts = 0;
  std::string error = "never connected";
  for (;;) {
    std::unique_ptr<Transport> transport = connect();
    if (transport == nullptr) {
      error = "connect failed";
    } else {
      ConnStatus st = RunConnection(*transport, options, session, &error);
      if (st == ConnStatus::kDone) {
        return "";
      }
      if (st == ConnStatus::kFatal) {
        return error;
      }
    }
    if (attempts >= options.reconnect_max) {
      return error;
    }
    ++attempts;
    std::this_thread::sleep_for(std::chrono::milliseconds(options.reconnect_delay_ms));
  }
}

}  // namespace opec_dist
