// Content-addressed artifact cache (DESIGN.md §16).
//
// Artifacts — post-boot machine snapshots, lowered bytecode modules — are
// addressed by the Fnv1a64 digest of their bytes. The cache never trusts a
// name: Get() re-digests what it reads and rejects (and deletes) anything
// whose content does not hash to its address, so a corrupt or tampered cache
// file degrades to a miss, never to wrong bytes flowing into a worker.
//
// Two backings behind one interface:
//   * directory-backed (`dir` non-empty): one file per artifact,
//     `<dir>/<%016x digest>.art`, written atomically (tmp + rename) so
//     concurrent workers sharing a --cache-dir race benignly — same digest
//     means same bytes, and rename is last-writer-wins of identical content;
//   * memory-backed (`dir` empty): a plain map, for servers and tests.
//
// Eviction is LRU by bytes against `max_bytes` (0 = unbounded), tracked for
// entries this process created or touched; files placed by other processes
// are readable but only enter the LRU once seen.

#ifndef SRC_DIST_CACHE_H_
#define SRC_DIST_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace opec_dist {

class ArtifactCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t digest_mismatches = 0;
  };

  // `dir` empty = memory-backed. For a directory backing the directory (and
  // parents) are created eagerly; failure is reported via ok()/error() and
  // the cache degrades to memory-backed rather than aborting.
  explicit ArtifactCache(std::string dir, uint64_t max_bytes = 0);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Stores `bytes`, returns their digest. Idempotent: re-putting existing
  // content refreshes recency only.
  uint64_t Put(const std::vector<uint8_t>& bytes);
  // Fetches by digest; verifies content. False = miss (or mismatch, counted
  // and expunged).
  bool Get(uint64_t digest, std::vector<uint8_t>* out);
  bool Contains(uint64_t digest);

  // Named references: the small mutable layer over the immutable
  // content-addressed store. A ref maps a stable key ("boot/PinLock/opec") to
  // the digest of its current bytes, letting a *fresh* server/worker resolve
  // a warm cache directory without anyone remembering digests across runs.
  // Refs live as tiny files beside the artifacts; a ref naming an absent or
  // corrupt artifact simply degrades to a miss at Get() time.
  bool GetRef(const std::string& key, uint64_t* digest);
  void PutRef(const std::string& key, uint64_t digest);

  const Stats& stats() const { return stats_; }
  uint64_t resident_bytes() const { return resident_bytes_; }

  static std::string DigestFileName(uint64_t digest);

 private:
  std::string PathFor(uint64_t digest) const;
  std::string RefPathFor(const std::string& key) const;
  void Touch(uint64_t digest, uint64_t size);
  void Forget(uint64_t digest);
  void EvictIfNeeded();

  std::string dir_;
  uint64_t max_bytes_;
  std::string error_;
  Stats stats_;
  // LRU bookkeeping (front = most recent) over entries known to this process;
  // memory backing stores the bytes inline.
  struct Entry {
    uint64_t size = 0;
    std::vector<uint8_t> bytes;  // memory backing only
    std::list<uint64_t>::iterator lru_it;
  };
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // digests, most recent first
  uint64_t resident_bytes_ = 0;
  std::unordered_map<std::string, uint64_t> refs_;  // memory backing only
};

}  // namespace opec_dist

#endif  // SRC_DIST_CACHE_H_
