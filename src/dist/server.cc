#include "src/dist/server.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/support/check.h"
#include "src/support/fs.h"

namespace opec_dist {

namespace {

int DeadlineMs(std::chrono::steady_clock::time_point now,
               std::chrono::steady_clock::time_point deadline) {
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
  if (ms < 0) {
    return 0;
  }
  if (ms > 60000) {
    return 60000;
  }
  return static_cast<int>(ms);
}

}  // namespace

CampaignServer::CampaignServer(const opec_campaign::CampaignSpec& spec,
                               const Options& options)
    : options_(options),
      sweep_(SweepKind::kCampaign),
      campaign_seed_(spec.seed),
      cache_(options.cache_dir, options.cache_max_bytes) {
  resolved_.reserve(spec.jobs.size());
  for (size_t i = 0; i < spec.jobs.size(); ++i) {
    resolved_.push_back(opec_campaign::ResolveJobSpec(spec.jobs[i], i, spec.seed,
                                                      spec.timeout_ms,
                                                      options.default_timeout_ms,
                                                      options.trace_dir));
  }
  BuildUnits(spec.jobs.size());
  job_results_.resize(total_);
}

CampaignServer::CampaignServer(uint64_t fuzz_base_seed, uint64_t fuzz_count,
                               const Options& options)
    : options_(options),
      sweep_(SweepKind::kFuzz),
      fuzz_base_seed_(fuzz_base_seed),
      cache_(options.cache_dir, options.cache_max_bytes) {
  BuildUnits(static_cast<size_t>(fuzz_count));
  case_results_.resize(total_);
}

CampaignServer::~CampaignServer() = default;

void CampaignServer::BuildUnits(size_t total) {
  total_ = total;
  have_.assign(total_, 0);
  size_t unit_size = options_.unit_size == 0 ? 1 : options_.unit_size;
  for (size_t start = 0; start < total_; start += unit_size) {
    Unit u;
    u.id = units_.size();
    u.start = start;
    u.count = std::min(unit_size, total_ - start);
    units_.push_back(u);
    pending_.push_back(u.id);
  }
  stats_.queue_high_water = pending_.size();
}

void CampaignServer::AddWorker(std::unique_ptr<Transport> transport) {
  WorkerState w;
  w.transport = std::move(transport);
  workers_.push_back(std::move(w));
}

size_t CampaignServer::AliveWorkers() const {
  size_t n = 0;
  for (const WorkerState& w : workers_) {
    if (!w.dead) {
      ++n;
    }
  }
  return n;
}

void CampaignServer::SendOrKill(size_t wi, const Frame& frame) {
  WorkerState& w = workers_[wi];
  if (w.dead) {
    return;
  }
  if (w.transport->Send(frame) != Transport::Status::kOk) {
    KillWorker(wi, w.transport->error().c_str());
  }
}

void CampaignServer::KillWorker(size_t wi, const char* why) {
  WorkerState& w = workers_[wi];
  if (w.dead) {
    return;
  }
  w.dead = true;
  w.transport->Close();
  if (!w.shutdown_sent) {
    ++stats_.workers_died;
    std::fprintf(stderr, "campaignd: worker %zu (%s) lost: %s\n", wi,
                 w.name.empty() ? "?" : w.name.c_str(), why);
  }
  RequeueWorkerUnits(wi, /*expired=*/false);
}

void CampaignServer::RequeueWorkerUnits(size_t wi, bool expired) {
  std::vector<uint64_t> requeue;
  for (const auto& [unit_id, lease] : leases_) {
    if (lease.worker == wi) {
      requeue.push_back(unit_id);
    }
  }
  // Recovery work goes to the *front* of the queue so the sweep's tail is not
  // stuck behind untouched units. Sort for a deterministic requeue order.
  std::sort(requeue.begin(), requeue.end());
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    leases_.erase(*it);
    pending_.insert(pending_.begin(), *it);
    if (expired) {
      ++stats_.leases_expired;
    } else {
      ++stats_.units_reissued;
    }
  }
  workers_[wi].inflight = 0;
  stats_.queue_high_water = std::max(stats_.queue_high_water,
                                     static_cast<uint64_t>(pending_.size()));
}

void CampaignServer::ExpireLeases(Clock::time_point now) {
  if (options_.lease_ms == 0) {
    return;
  }
  std::vector<uint64_t> expired;
  for (const auto& [unit_id, lease] : leases_) {
    if (lease.deadline <= now) {
      expired.push_back(unit_id);
    }
  }
  std::sort(expired.begin(), expired.end());
  for (auto it = expired.rbegin(); it != expired.rend(); ++it) {
    size_t wi = leases_[*it].worker;
    leases_.erase(*it);
    pending_.insert(pending_.begin(), *it);
    ++stats_.leases_expired;
    if (workers_[wi].inflight > 0) {
      --workers_[wi].inflight;
    }
  }
  if (!expired.empty()) {
    stats_.queue_high_water = std::max(stats_.queue_high_water,
                                       static_cast<uint64_t>(pending_.size()));
  }
}

void CampaignServer::RecordResult(size_t wi, const ResultMsg& msg) {
  WorkerState& w = workers_[wi];
  w.cache = msg.cache;  // cumulative sample; latest wins
  auto lease_it = leases_.find(msg.unit_id);
  if (lease_it != leases_.end() && lease_it->second.worker == wi) {
    leases_.erase(lease_it);
    if (w.inflight > 0) {
      --w.inflight;
    }
  }
  size_t rows = msg.indexes.size();
  for (size_t k = 0; k < rows; ++k) {
    size_t index = static_cast<size_t>(msg.indexes[k]);
    if (index >= total_) {
      continue;  // malformed row; drop rather than corrupt the table
    }
    if (have_[index]) {
      continue;  // duplicate delivery of a re-issued unit; first write wins
    }
    if (sweep_ == SweepKind::kCampaign) {
      if (k >= msg.jobs.size()) {
        continue;
      }
      job_results_[index] = msg.jobs[k];
      job_results_[index].index = index;
    } else {
      if (k >= msg.cases.size()) {
        continue;
      }
      case_results_[index] = msg.cases[k];
    }
    have_[index] = 1;
    ++done_count_;
    if (on_progress_) {
      on_progress_(done_count_, total_);
    }
  }
}

bool CampaignServer::HandleFrame(size_t wi, const Frame& frame) {
  WorkerState& w = workers_[wi];
  opec_hw::StateReader r(frame.payload);
  switch (frame.type) {
    case FrameType::kHello: {
      HelloMsg hello = ReadHello(r);
      if (hello.version != kProtocolVersion) {
        KillWorker(wi, "protocol version mismatch");
        return false;
      }
      w.name = hello.worker_name;
      w.hello_done = true;
      ++stats_.workers;
      WelcomeMsg welcome;
      welcome.sweep = sweep_;
      welcome.cold_boot = options_.cold_boot;
      welcome.snapshot_dir = options_.snapshot_dir;
      SendOrKill(wi, MakeFrame(FrameType::kWelcome,
                               [&](opec_hw::StateWriter& sw) { WriteWelcome(sw, welcome); }));
      return true;
    }
    case FrameType::kRequestWork: {
      if (!w.hello_done) {
        KillWorker(wi, "work request before hello");
        return false;
      }
      // Drop stale queue entries first: a unit whose lease expired while its
      // worker kept (slowly) executing gets requeued, then delivered anyway —
      // re-issuing the fully-recorded copy would burn a worker on work that
      // cannot advance done_count_. When every execution outlives the lease
      // (tiny --lease-ms, slow host), those copies otherwise recycle at the
      // queue front forever and the sweep livelocks ahead of untouched units.
      while (!pending_.empty()) {
        const Unit& u = units_[pending_.front()];
        bool all_recorded = true;
        for (size_t i = u.start; i < u.start + u.count; ++i) {
          if (!have_[i]) {
            all_recorded = false;
            break;
          }
        }
        if (!all_recorded) {
          break;
        }
        pending_.erase(pending_.begin());
      }
      if (!pending_.empty()) {
        uint64_t unit_id = pending_.front();
        pending_.erase(pending_.begin());
        const Unit& unit = units_[unit_id];
        Lease lease;
        lease.worker = wi;
        lease.deadline = Clock::now() + std::chrono::milliseconds(
                                            options_.lease_ms == 0 ? 0 : options_.lease_ms);
        leases_[unit_id] = lease;
        ++stats_.units_issued;
        ++w.inflight;
        w.max_inflight = std::max(w.max_inflight, w.inflight);
        AssignMsg assign;
        assign.unit_id = unit_id;
        for (size_t i = unit.start; i < unit.start + unit.count; ++i) {
          assign.indexes.push_back(i);
          if (sweep_ == SweepKind::kCampaign) {
            assign.jobs.push_back(resolved_[i]);
          } else {
            assign.fuzz_seeds.push_back(fuzz_base_seed_ + i);
          }
        }
        SendOrKill(wi, MakeFrame(FrameType::kAssign, [&](opec_hw::StateWriter& sw) {
                     WriteAssign(sw, sweep_, assign);
                   }));
      } else if (Done()) {
        w.shutdown_sent = true;
        SendOrKill(wi, MakeFrame(FrameType::kShutdown));
      } else {
        NoWorkMsg nw;
        nw.retry_ms = options_.retry_ms;
        SendOrKill(wi, MakeFrame(FrameType::kNoWork,
                                 [&](opec_hw::StateWriter& sw) { WriteNoWork(sw, nw); }));
      }
      return true;
    }
    case FrameType::kResult: {
      ResultMsg msg = ReadResult(r, sweep_);
      RecordResult(wi, msg);
      return true;
    }
    case FrameType::kArtifactQuery: {
      ArtifactQueryMsg q = ReadArtifactQuery(r);
      ArtifactInfoMsg info;
      info.key = q.key;
      auto it = artifact_keys_.find(q.key);
      if (it != artifact_keys_.end()) {
        info.known = true;
        info.digest = it->second;
      }
      SendOrKill(wi, MakeFrame(FrameType::kArtifactInfo, [&](opec_hw::StateWriter& sw) {
                   WriteArtifactInfo(sw, info);
                 }));
      return true;
    }
    case FrameType::kArtifactFetch: {
      ArtifactFetchMsg f = ReadArtifactFetch(r);
      ArtifactDataMsg data;
      data.digest = f.digest;
      data.found = cache_.Get(f.digest, &data.bytes);
      SendOrKill(wi, MakeFrame(FrameType::kArtifactData, [&](opec_hw::StateWriter& sw) {
                   WriteArtifactData(sw, data);
                 }));
      return true;
    }
    case FrameType::kArtifactAnnounce: {
      ArtifactAnnounceMsg a = ReadArtifactAnnounce(r);
      if (a.with_bytes) {
        uint64_t actual = cache_.Put(a.bytes);
        if (actual != a.digest) {
          // Announced digest does not match the content: refuse to register
          // the key (the bytes are cached under their true digest, harmless).
          ++stats_.artifact_digest_mismatches;
          return true;
        }
      }
      // First announcement wins: every worker derives the artifact from the
      // same deterministic build, so later digests must agree; a disagreement
      // is recorded and the original mapping kept.
      auto it = artifact_keys_.find(a.key);
      if (it == artifact_keys_.end()) {
        artifact_keys_[a.key] = a.digest;
      } else if (it->second != a.digest) {
        ++stats_.artifact_digest_mismatches;
      }
      return true;
    }
    case FrameType::kWelcome:
    case FrameType::kAssign:
    case FrameType::kNoWork:
    case FrameType::kShutdown:
    case FrameType::kArtifactInfo:
    case FrameType::kArtifactData:
      break;
  }
  KillWorker(wi, "unexpected frame from worker");
  return false;
}

std::string CampaignServer::Serve() {
  // On an early bail-out, hang up on every connected worker: self-hosted
  // children block in Recv waiting for kWelcome, and the parent waitpid()s
  // them — without the EOF they would deadlock against each other.
  auto fail = [&](std::string err) {
    for (WorkerState& w : workers_) {
      w.dead = true;
      w.transport->Close();
    }
    return err;
  };
  for (const std::string& dir : {options_.snapshot_dir, options_.trace_dir}) {
    if (!dir.empty()) {
      std::string err = opec_support::EnsureDirs(dir);
      if (!err.empty()) {
        return fail("campaign output directory unusable: " + err);
      }
    }
  }
  if (!cache_.ok()) {
    return fail(cache_.error());
  }
  stats_.active = true;

  while (!Done()) {
    if (AliveWorkers() == 0 && listen_fd_ < 0) {
      return "all workers disconnected with " + std::to_string(total_ - done_count_) +
             " jobs incomplete";
    }
    Clock::time_point now = Clock::now();
    ExpireLeases(now);

    std::vector<pollfd> fds;
    std::vector<size_t> fd_worker;
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_worker.push_back(static_cast<size_t>(-1));
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].dead) {
        fds.push_back({workers_[i].transport->fd(), POLLIN, 0});
        fd_worker.push_back(i);
      }
    }

    int timeout_ms = 100;
    if (options_.lease_ms != 0 && !leases_.empty()) {
      Clock::time_point first = leases_.begin()->second.deadline;
      for (const auto& [id, lease] : leases_) {
        first = std::min(first, lease.deadline);
      }
      timeout_ms = std::min(timeout_ms, DeadlineMs(now, first) + 1);
    }
    int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return fail(std::string("poll: ") + std::strerror(errno));
    }
    for (size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) {
        continue;
      }
      if (fd_worker[k] == static_cast<size_t>(-1)) {
        std::string err;
        int cfd = TcpAccept(listen_fd_, &err);
        if (cfd >= 0) {
          AddWorker(std::make_unique<FdTransport>(cfd));
        }
        continue;
      }
      size_t wi = fd_worker[k];
      if (workers_[wi].dead) {
        continue;
      }
      Frame frame;
      Transport::Status st = workers_[wi].transport->Recv(&frame);
      if (st == Transport::Status::kEof) {
        KillWorker(wi, "disconnected");
        continue;
      }
      if (st == Transport::Status::kError) {
        KillWorker(wi, workers_[wi].transport->error().c_str());
        continue;
      }
      try {
        opec_support::ScopedCheckThrow capture;
        HandleFrame(wi, frame);
      } catch (const std::exception& e) {
        KillWorker(wi, e.what());
      }
    }
  }

  // Sweep complete: tell everyone to go home and drain stragglers (workers
  // mid-duplicate-unit still deliver a kResult + kRequestWork pair).
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].dead && workers_[i].hello_done) {
      workers_[i].shutdown_sent = true;
      SendOrKill(i, MakeFrame(FrameType::kShutdown));
    }
  }
  Clock::time_point drain_deadline = Clock::now() + std::chrono::seconds(10);
  while (AliveWorkers() > 0 && Clock::now() < drain_deadline) {
    std::vector<pollfd> fds;
    std::vector<size_t> fd_worker;
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].dead) {
        fds.push_back({workers_[i].transport->fd(), POLLIN, 0});
        fd_worker.push_back(i);
      }
    }
    int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    for (size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) {
        continue;
      }
      size_t wi = fd_worker[k];
      Frame frame;
      Transport::Status st = workers_[wi].transport->Recv(&frame);
      if (st != Transport::Status::kOk) {
        workers_[wi].dead = true;  // orderly exit after shutdown
        workers_[wi].transport->Close();
        continue;
      }
      try {
        opec_support::ScopedCheckThrow capture;
        if (frame.type == FrameType::kResult) {
          opec_hw::StateReader r(frame.payload);
          ResultMsg msg = ReadResult(r, sweep_);
          RecordResult(wi, msg);
        } else if (frame.type == FrameType::kRequestWork) {
          workers_[wi].shutdown_sent = true;
          SendOrKill(wi, MakeFrame(FrameType::kShutdown));
        }
        // Anything else during drain is ignorable.
      } catch (const std::exception&) {
        workers_[wi].dead = true;
        workers_[wi].transport->Close();
      }
    }
  }

  // Fold worker-side cache counters (cumulative samples) into the stats.
  for (const WorkerState& w : workers_) {
    if (!w.hello_done) {
      continue;
    }
    stats_.max_inflight.push_back(w.max_inflight);
    stats_.artifact_hits += w.cache.hits;
    stats_.artifact_misses += w.cache.misses;
    stats_.artifact_evictions += w.cache.evictions;
    stats_.artifact_digest_mismatches += w.cache.digest_mismatches;
  }
  return "";
}

opec_campaign::CampaignResult CampaignServer::TakeCampaignResult() {
  opec_campaign::CampaignResult result;
  result.results = std::move(job_results_);
  result.jobs_used = static_cast<int>(stats_.workers == 0 ? 1 : stats_.workers);
  result.dist = stats_;
  return result;
}

std::vector<opec_fuzz::CaseResult> CampaignServer::TakeFuzzResults() {
  return std::move(case_results_);
}

}  // namespace opec_dist
